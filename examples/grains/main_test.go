package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestGrainsSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 10, 40); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dropping 10", "bed profile", "hybrid (P=2, T=2)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}
