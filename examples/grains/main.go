// Grains: the physics behind the paper (Section 2). Instead of smooth
// spheres with empirical friction laws, the Edinburgh DEM builds
// "complex particles with simple forces": rough grains assembled from
// basic spheres glued by permanent dissipative-spring bonds, so that
// macroscopic friction emerges dynamically from microscopic
// collisions.
//
// This example drops a mixture of grain shapes under gravity onto a
// hard floor, lets the pile settle, and reports the bed profile, the
// energy dissipated by the bonds, and the bond integrity — then
// repeats the final state measurement with a hybrid run to show the
// decomposition handles grains straddling block boundaries.
package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"hybriddem"
)

func main() {
	if err := run(os.Stdout, 120, 9000); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, grains, iters int) error {
	const (
		dims    = 2
		shape   = hybriddem.Trimer
		columns = 48
	)

	cfg := hybriddem.Default(dims, shape.Size()*grains)
	cfg.L *= 3 // dilute so the grains can fall before they pile up
	cfg.BC = hybriddem.Reflecting
	cfg.Gravity = -8
	cfg.Spring.K = 40000 // stiff enough that impacts do not interpenetrate
	cfg.Spring.Damp = 25 // contact dissipation so impacts stick
	cfg.CollectState = true
	cfg.Seed = 42

	state, bonds, err := hybriddem.BuildGrains(hybriddem.GrainConfig{
		D: dims, Shape: shape, Grains: grains,
		Diameter: cfg.Spring.Diameter,
		Box:      cfg.Box(),
		Height:   0.5, // start suspended above the eventual bed
		BondK:    40000, BondDamp: 60,
		Seed: 42,
	})
	if err != nil {
		return err
	}
	cfg.Init = state
	cfg.Spring.Bonds = bonds

	fmt.Fprintf(w, "dropping %d %v grains (%d particles) onto the floor...\n\n",
		grains, shape, cfg.N)

	res, err := hybriddem.Run(cfg, iters)
	if err != nil {
		return err
	}

	// Bed profile: mean and max height, plus an ASCII histogram of
	// the column fill.
	heights := make([]float64, columns)
	maxH, sumH := 0.0, 0.0
	for _, p := range res.Pos {
		c := int(p[0] / cfg.L * columns)
		if c >= columns {
			c = columns - 1
		}
		if p[1] > heights[c] {
			heights[c] = p[1]
		}
		if p[1] > maxH {
			maxH = p[1]
		}
		sumH += p[1]
	}
	fmt.Fprintf(w, "settled after %d steps: mean height %.3f, peak %.3f (box %.3f)\n",
		iters, sumH/float64(len(res.Pos)), maxH, cfg.L)
	fmt.Fprintf(w, "kinetic energy %.4g (dissipated by the bonds), bond strain %.1f%%\n",
		res.Ekin, 100*bonds.MaxBondStrain(res.Pos, cfg.Box()))

	if obs, err := hybriddem.Measure(&cfg, res); err == nil {
		fmt.Fprintf(w, "pile observables: coordination %.2f neighbours/particle, pressure %.3g\n",
			obs.Coordination, obs.Pressure)
	}

	const rows = 8
	fmt.Fprintln(w, "\nbed profile:")
	for r := rows; r >= 1; r-- {
		line := make([]byte, columns)
		for c := range line {
			if maxH > 0 && heights[c]/maxH*rows >= float64(r) {
				line[c] = '#'
			} else {
				line[c] = ' '
			}
		}
		fmt.Fprintf(w, "  |%s|\n", line)
	}
	fmt.Fprintf(w, "  +%s+\n", strings.Repeat("-", columns))

	// The same system through the hybrid driver: grains that straddle
	// block boundaries feel their bonds through halo copies.
	hcfg := cfg
	hcfg.Mode = hybriddem.Hybrid
	hcfg.P, hcfg.T = 2, 2
	hcfg.BlocksPerProc = 2
	hcfg.Method = hybriddem.SelectedAtomic
	hres, err := hybriddem.Run(hcfg, iters)
	if err != nil {
		return err
	}
	maxDev := 0.0
	box := cfg.Box()
	for i := range res.Pos {
		if d := math.Sqrt(box.Dist2(res.Pos[i], hres.Pos[i])); d > maxDev {
			maxDev = d
		}
	}
	fmt.Fprintf(w, "\nhybrid (P=2, T=2) rerun of the same fall: max trajectory deviation %.2g\n", maxDev)
	fmt.Fprintln(w, "bonds crossing block boundaries are served by the halo exchange.")
	return nil
}
