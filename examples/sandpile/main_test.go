package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSandpileSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 800, 4, 2, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sand bed", "hybrid P=4 T=4", "best pure-MPI granularity"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}
