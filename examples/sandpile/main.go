// Sandpile: the physics that motivates the paper. Grains (spheres
// bonded by dissipative springs) settle under gravity onto a hard
// floor, so the work clusters in the bottom of the box and a naive
// one-block-per-process decomposition is badly load-imbalanced.
//
// The example runs the settled bed on the virtual Compaq cluster with
// pure MPI at increasing block-cyclic granularity B/P and shows the
// paper's central trade-off: finer granularity recovers load balance
// but pays growing parallel overheads.
package main

import (
	"fmt"
	"io"
	"os"

	"hybriddem"
)

func main() {
	if err := run(os.Stdout, 30_000, 16, 8, []int{1, 2, 4, 8, 16}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, particles, ranks, iters int, bpps []int) error {
	const dims = 2

	base := func() hybriddem.Config {
		cfg := hybriddem.Default(dims, particles)
		cfg.Platform = hybriddem.CompaqES40()
		cfg.BC = hybriddem.Reflecting // hard walls: grains pile on the floor
		cfg.FillHeight = 0.25         // the bed occupies the bottom quarter
		cfg.Gravity = -30             // keep it settled
		cfg.Spring.Damp = 2           // dissipative grain bonds
		cfg.Warmup = 2
		return cfg
	}

	fmt.Fprintf(w, "sand bed: D=%d, N=%d grains in the bottom 25%% of the box\n", dims, particles)
	fmt.Fprintf(w, "pure MPI on the virtual Compaq cluster, P=%d\n\n", ranks)
	fmt.Fprintf(w, "%6s %14s %14s %10s\n", "B/P", "model t/iter", "vs B/P=1", "links")

	var tRef float64
	bestBpp, bestT := 1, 0.0
	for i, bpp := range bpps {
		cfg := base()
		cfg.Mode = hybriddem.MPI
		cfg.P = ranks
		cfg.BlocksPerProc = bpp
		res, err := hybriddem.Run(cfg, iters)
		if err != nil {
			return err
		}
		if i == 0 {
			tRef = res.PerIter
		}
		if bestT == 0 || res.PerIter < bestT {
			bestBpp, bestT = bpp, res.PerIter
		}
		fmt.Fprintf(w, "%6d %12.4fs %13.2fx %10d\n", bpp, res.PerIter, tRef/res.PerIter, res.NLinks)
	}

	// The hybrid alternative: one process per SMP box, threads
	// balancing within, so a coarse MPI granularity suffices.
	cfg := base()
	cfg.Mode = hybriddem.Hybrid
	cfg.P = 4
	cfg.T = 4
	cfg.BlocksPerProc = bestBpp * 4 / 4 // same blocks per PROCESS as the best MPI run has per CPU
	cfg.Method = hybriddem.SelectedAtomic
	res, err := hybriddem.Run(cfg, iters)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nhybrid P=4 T=4 at B/P=%d: %.4fs per iteration (%.2fx the naive MPI run)\n",
		cfg.BlocksPerProc, res.PerIter, tRef/res.PerIter)
	fmt.Fprintf(w, "lock fraction in the hybrid force loop: %.1f%%\n", 100*res.AtomicFraction)
	fmt.Fprintf(w, "\nbest pure-MPI granularity here: B/P=%d at %.4fs per iteration\n", bestBpp, bestT)
	fmt.Fprintln(w, "a clustered bed needs finer blocks than work-per-CPU alone would suggest;")
	fmt.Fprintln(w, "the paper asks whether threads inside each box are the cheaper way to balance.")
	return nil
}
