// Quickstart: run the paper's benchmark system at laptop scale in
// every execution mode and print per-iteration modelled times on the
// Compaq ES40 cluster model, plus the energy bookkeeping that shows
// all four modes compute the same physics.
package main

import (
	"fmt"
	"io"
	"os"

	"hybriddem"
)

func main() {
	if err := run(os.Stdout, 3, 20_000, 10); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, dims, particles, iters int) error {
	type variant struct {
		name string
		tune func(*hybriddem.Config)
	}
	variants := []variant{
		{"serial", func(c *hybriddem.Config) {
			c.Mode = hybriddem.Serial
		}},
		{"openmp T=4", func(c *hybriddem.Config) {
			c.Mode = hybriddem.OpenMP
			c.T = 4
			c.Method = hybriddem.SelectedAtomic
		}},
		{"mpi P=4", func(c *hybriddem.Config) {
			c.Mode = hybriddem.MPI
			c.P = 4
		}},
		{"hybrid P=2xT=2", func(c *hybriddem.Config) {
			c.Mode = hybriddem.Hybrid
			c.P, c.T = 2, 2
			c.Method = hybriddem.SelectedAtomic
		}},
	}

	fmt.Fprintf(w, "DEM quickstart: D=%d, N=%d, %d iterations, virtual platform %q\n\n",
		dims, particles, iters, "CPQ")
	fmt.Fprintf(w, "%-16s %12s %12s %14s %14s %10s\n",
		"mode", "model t/iter", "wall t/iter", "potential E", "kinetic E", "links")

	for _, v := range variants {
		cfg := hybriddem.Default(dims, particles)
		cfg.Platform = hybriddem.CompaqES40()
		cfg.InitVel = 0.5 // start with thermal motion so the list rebuilds
		cfg.Warmup = 2
		v.tune(&cfg)
		res, err := hybriddem.Run(cfg, iters)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %10.4fs %10.4fs %14.4f %14.4f %10d\n",
			v.name,
			res.PerIter,
			res.Wall.Seconds()/float64(iters),
			res.Epot, res.Ekin, res.NLinks)
	}

	fmt.Fprintln(w, "\nAll modes integrate the same trajectories; the energies above")
	fmt.Fprintln(w, "must agree across rows to float accumulation accuracy.")
	return nil
}
