package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 2, 400, 2); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serial", "openmp T=4", "mpi P=4", "hybrid P=2xT=2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}
