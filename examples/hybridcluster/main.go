// Hybridcluster: the paper's central comparison, run as a library
// call. On the virtual Compaq ES40 cluster (5 boxes x 4 CPUs) the
// same clustered simulation is load-balanced two ways:
//
//   - pure MPI with 16 processes, refining the block-cyclic
//     granularity B/P until every CPU has equal work; and
//   - the hybrid scheme — 4 MPI processes (one per box) of 4 threads,
//     where threads balance within each box automatically and only
//     the boxes need block-cyclic balancing.
//
// The run prints the efficiency of both schemes against granularity,
// the hybrid lock fraction that the paper identifies as the real
// cost, and the Section 11 fused-loop variant that recovers most of
// the loss.
package main

import (
	"fmt"
	"io"
	"os"

	"hybriddem"
)

func main() {
	if err := run(os.Stdout, 60_000, 6, []int{1, 2, 4, 8}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, particles, iters int, bpps []int) error {
	const dims = 3

	base := func() hybriddem.Config {
		cfg := hybriddem.Default(dims, particles)
		cfg.Platform = hybriddem.CompaqES40()
		cfg.FillHeight = 0.5 // mildly clustered bed
		cfg.Warmup = 1
		return cfg
	}

	run1 := func(mode hybriddem.Mode, p, t, bpp int, fused bool) (*hybriddem.Result, error) {
		cfg := base()
		cfg.Mode = mode
		cfg.P, cfg.T = p, t
		cfg.BlocksPerProc = bpp
		cfg.Method = hybriddem.SelectedAtomic
		cfg.Fused = fused
		return hybriddem.Run(cfg, iters)
	}

	fmt.Fprintf(w, "clustered DEM on the virtual Compaq cluster: D=%d, N=%d\n\n", dims, particles)
	fmt.Fprintf(w, "%8s %16s %16s %16s %12s\n",
		"B/P", "MPI P=16", "hybrid 4x4", "hybrid fused", "lock frac")

	refRes, err := run1(hybriddem.MPI, 16, 1, 1, false)
	if err != nil {
		return err
	}
	ref := refRes.PerIter
	for _, bpp := range bpps {
		mpi, err := run1(hybriddem.MPI, 16, 1, bpp, false)
		if err != nil {
			return err
		}
		hyb, err := run1(hybriddem.Hybrid, 4, 4, bpp, false)
		if err != nil {
			return err
		}
		fus, err := run1(hybriddem.Hybrid, 4, 4, bpp, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %9.4fs(%4.2f) %9.4fs(%4.2f) %9.4fs(%4.2f) %11.1f%%\n",
			bpp,
			mpi.PerIter, ref/mpi.PerIter,
			hyb.PerIter, ref/hyb.PerIter,
			fus.PerIter, ref/fus.PerIter,
			100*hyb.AtomicFraction)
	}

	fmt.Fprintln(w, "\nparenthesised values are efficiency against MPI at B/P=1.")
	fmt.Fprintln(w, "the paper's conclusion: overall load balance is better achieved by a")
	fmt.Fprintln(w, "finer MPI granularity than by load-balancing within each SMP with")
	fmt.Fprintln(w, "threads — unless the force loop is fused across blocks (Section 11).")
	return nil
}
