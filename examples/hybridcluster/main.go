// Hybridcluster: the paper's central comparison, run as a library
// call. On the virtual Compaq ES40 cluster (5 boxes x 4 CPUs) the
// same clustered simulation is load-balanced two ways:
//
//   - pure MPI with 16 processes, refining the block-cyclic
//     granularity B/P until every CPU has equal work; and
//   - the hybrid scheme — 4 MPI processes (one per box) of 4 threads,
//     where threads balance within each box automatically and only
//     the boxes need block-cyclic balancing.
//
// The run prints the efficiency of both schemes against granularity,
// the hybrid lock fraction that the paper identifies as the real
// cost, and the Section 11 fused-loop variant that recovers most of
// the loss.
package main

import (
	"fmt"

	"hybriddem"
)

func main() {
	const (
		dims      = 3
		particles = 60_000
		iters     = 6
	)

	base := func() hybriddem.Config {
		cfg := hybriddem.Default(dims, particles)
		cfg.Platform = hybriddem.CompaqES40()
		cfg.FillHeight = 0.5 // mildly clustered bed
		cfg.Warmup = 1
		return cfg
	}

	run := func(mode hybriddem.Mode, p, t, bpp int, fused bool) *hybriddem.Result {
		cfg := base()
		cfg.Mode = mode
		cfg.P, cfg.T = p, t
		cfg.BlocksPerProc = bpp
		cfg.Method = hybriddem.SelectedAtomic
		cfg.Fused = fused
		res, err := hybriddem.Run(cfg, iters)
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Printf("clustered DEM on the virtual Compaq cluster: D=%d, N=%d\n\n", dims, particles)
	fmt.Printf("%8s %16s %16s %16s %12s\n",
		"B/P", "MPI P=16", "hybrid 4x4", "hybrid fused", "lock frac")

	ref := run(hybriddem.MPI, 16, 1, 1, false).PerIter
	for _, bpp := range []int{1, 2, 4, 8} {
		mpi := run(hybriddem.MPI, 16, 1, bpp, false)
		hyb := run(hybriddem.Hybrid, 4, 4, bpp, false)
		fus := run(hybriddem.Hybrid, 4, 4, bpp, true)
		fmt.Printf("%8d %9.4fs(%4.2f) %9.4fs(%4.2f) %9.4fs(%4.2f) %11.1f%%\n",
			bpp,
			mpi.PerIter, ref/mpi.PerIter,
			hyb.PerIter, ref/hyb.PerIter,
			fus.PerIter, ref/fus.PerIter,
			100*hyb.AtomicFraction)
	}

	fmt.Println("\nparenthesised values are efficiency against MPI at B/P=1.")
	fmt.Println("the paper's conclusion: overall load balance is better achieved by a")
	fmt.Println("finer MPI granularity than by load-balancing within each SMP with")
	fmt.Println("threads — unless the force loop is fused across blocks (Section 11).")
}
