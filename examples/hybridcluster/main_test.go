package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestHybridClusterSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 2000, 1, []int{1}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"clustered DEM", "MPI P=16", "hybrid 4x4"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}
