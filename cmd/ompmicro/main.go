// Command ompmicro is this module's analogue of the EPCC OpenMP
// Microbenchmark Suite (the paper's reference [10]): it measures the
// wall-clock overhead of the shm runtime's synchronisation primitives
// on the host, prints the modelled overheads of the three virtual
// platforms, and combines them into the paper's Section 9.3 estimate
// of OpenMP synchronisation cost per block per iteration.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// measure times fn() over reps repetitions and returns seconds per
// call, subtracting nothing: callers compare against a reference loop.
func measure(reps int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start).Seconds() / float64(reps)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ompmicro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		maxT = fs.Int("maxt", 8, "largest team size to measure")
		reps = fs.Int("reps", 2000, "repetitions per measurement")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fmt.Fprintln(stdout, "== host wall-clock overheads of the shm runtime ==")
	fmt.Fprintf(stdout, "%4s %16s %16s %16s\n", "T", "region fork/join", "barrier", "critical")
	for T := 1; T <= *maxT; T *= 2 {
		tm := shm.NewTeam(T, shm.Costs{})
		region := measure(*reps, func() {
			tm.Region(func(th *shm.Thread) {})
		})
		// EPCC style: many operations inside one region so the
		// fork/join cost amortises away.
		const inner = 200
		barrier := measure(*reps/20+1, func() {
			tm.Region(func(th *shm.Thread) {
				for i := 0; i < inner; i++ {
					th.Barrier()
				}
			})
		}) / inner
		critical := measure(*reps/20+1, func() {
			tm.Region(func(th *shm.Thread) {
				for i := 0; i < inner; i++ {
					tm.Critical(th, func() {})
				}
			})
		}) / inner
		fmt.Fprintf(stdout, "%4d %14.2fus %14.2fus %14.2fus\n",
			T, region*1e6, barrier*1e6, critical*1e6)
	}

	fmt.Fprintln(stdout, "\n== modelled per-event overheads of the virtual platforms ==")
	fmt.Fprintf(stdout, "%-5s %12s %14s %14s %14s %14s\n",
		"plat", "fork/join", "barrier(T=4)", "atomic(T=4)", "critical", "red. word(T=4)")
	for _, pf := range machine.Platforms() {
		fmt.Fprintf(stdout, "%-5s %10.1fus %12.1fus %12.3fus %12.1fus %14.1fns\n",
			pf.Name,
			pf.ForkJoin*1e6,
			pf.BarrierCost(4)*1e6,
			pf.AtomicCost(4)*1e6,
			pf.CriticalOp*1e6,
			pf.ReductionWordCost(4)*1e9)
	}

	// Section 9.3: the hybrid code enters roughly one region per block
	// (force) plus two fused regions per iteration, each with its
	// implicit join barrier. Price one block's worth on each platform.
	fmt.Fprintln(stdout, "\n== Section 9.3 estimate: OpenMP sync cost per block per iteration ==")
	for _, pf := range machine.Platforms() {
		perBlock := pf.ForkJoin + pf.BarrierCost(4)
		fmt.Fprintf(stdout, "%-5s ~%.0f us per block per iteration (paper estimates ~50 us on its hardware)\n",
			pf.Name, perBlock*1e6)
	}
	fmt.Fprintln(stdout, "\nwith B/P <= 32 this amounts to a couple of milliseconds per iteration,")
	fmt.Fprintln(stdout, "\"only ... a couple of percent\" of the >100 ms iterations — the paper's")
	fmt.Fprintln(stdout, "argument that thread synchronisation is NOT the main hybrid overhead.")
	return 0
}
