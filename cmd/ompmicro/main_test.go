package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMicroSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-maxt", "2", "-reps", "20"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, want := range []string{
		"host wall-clock overheads",
		"modelled per-event overheads",
		"Section 9.3 estimate",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunMicroBadFlagExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}
