package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hybriddem/internal/server"
)

// dialDaemon polls the unix socket until the daemon is accepting.
func dialDaemon(t *testing.T, sock string) net.Conn {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.Dial("unix", sock)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up on %s: %v", sock, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// roundTrip sends one request and decodes one response.
func roundTrip(t *testing.T, enc *json.Encoder, dec *json.Decoder, req server.Request) server.Response {
	t.Helper()
	if err := enc.Encode(&req); err != nil {
		t.Fatalf("send %q: %v", req.Cmd, err)
	}
	var resp server.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("recv %q: %v", req.Cmd, err)
	}
	return resp
}

// pollState waits until the job reaches a terminal state and returns
// its final status.
func pollState(t *testing.T, enc *json.Encoder, dec *json.Decoder, id string) *server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp := roundTrip(t, enc, dec, server.Request{Cmd: "status", ID: id})
		if !resp.OK {
			t.Fatalf("status %s: %s", id, resp.Error)
		}
		switch resp.Job.State {
		case "done", "canceled", "failed":
			return resp.Job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, resp.Job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonSmoke exercises the daemon end to end in-process: start it
// on a unix socket, run a small job to completion, cancel a long job
// mid-run (verifying it leaves a resumable checkpoint), and shut the
// daemon down over the wire.
func TestDaemonSmoke(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "demd.sock")
	var out, errb bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-socket", sock, "-workers", "1", "-quiet"}, &out, &errb)
	}()

	ctl := dialDaemon(t, sock)
	defer ctl.Close()
	enc, dec := json.NewEncoder(ctl), json.NewDecoder(ctl)

	// A small job runs to completion.
	resp := roundTrip(t, enc, dec, server.Request{Cmd: "submit", Job: &server.JobSpec{
		D: 2, N: 64, Iters: 5, Mode: "serial",
	}})
	if !resp.OK {
		t.Fatalf("submit: %s", resp.Error)
	}
	st := pollState(t, enc, dec, resp.ID)
	if st.State != "done" || st.ItersDone != 5 {
		t.Fatalf("job 1 finished %s with %d/%d iterations", st.State, st.ItersDone, st.ItersTotal)
	}

	// A long job is canceled mid-run and leaves a checkpoint behind.
	ck := filepath.Join(dir, "j2.ck")
	resp = roundTrip(t, enc, dec, server.Request{Cmd: "submit", Job: &server.JobSpec{
		D: 2, N: 500, Iters: 200000, Mode: "serial", Checkpoint: ck,
	}})
	if !resp.OK {
		t.Fatalf("submit long job: %s", resp.Error)
	}
	longID := resp.ID

	// Subscribe on a second connection and wait for the first step
	// event so the cancel provably lands mid-run.
	sub := dialDaemon(t, sock)
	defer sub.Close()
	senc, sdec := json.NewEncoder(sub), json.NewDecoder(sub)
	if r := roundTrip(t, senc, sdec, server.Request{Cmd: "subscribe", ID: longID}); !r.OK {
		t.Fatalf("subscribe: %s", r.Error)
	}
	sawStep := false
	for !sawStep {
		var ev server.Event
		if err := sdec.Decode(&ev); err != nil {
			t.Fatalf("event stream: %v", err)
		}
		if ev.Event == "eof" || ev.Event == "dropped" {
			t.Fatalf("stream ended (%s) before any step event", ev.Event)
		}
		sawStep = ev.Event == "step"
	}

	if r := roundTrip(t, enc, dec, server.Request{Cmd: "cancel", ID: longID}); !r.OK {
		t.Fatalf("cancel: %s", r.Error)
	}
	st = pollState(t, enc, dec, longID)
	if st.State != "canceled" {
		t.Fatalf("long job finished %s, want canceled", st.State)
	}
	if st.ItersDone <= 0 || st.ItersDone >= 200000 {
		t.Fatalf("canceled after %d iterations, want mid-run", st.ItersDone)
	}
	if st.Checkpoint != ck {
		t.Fatalf("canceled job reports checkpoint %q, want %q", st.Checkpoint, ck)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	// The subscriber's stream ends with the terminal state event — or
	// with a "dropped" terminator if this test goroutine fell behind
	// while the cancel/status round-trips above left the stream
	// undrained, in which case the canceled state was already confirmed
	// via status. Either way the stream must terminate; an "eof" without
	// the state event would mean the daemon lost it.
	sawCanceled, wasDropped := false, false
	for !sawCanceled && !wasDropped {
		var ev server.Event
		if err := sdec.Decode(&ev); err != nil {
			break // stream closed
		}
		switch {
		case ev.Event == "state" && ev.State == "canceled":
			sawCanceled = true
		case ev.Event == "dropped":
			wasDropped = true
		case ev.Event == "eof":
			t.Fatal("subscriber stream ended (eof) without the canceled state event")
		}
	}
	if !sawCanceled && !wasDropped {
		t.Fatal("subscriber stream closed without the canceled state event")
	}

	// Clean shutdown over the wire.
	if r := roundTrip(t, enc, dec, server.Request{Cmd: "shutdown"}); !r.OK {
		t.Fatalf("shutdown: %s", r.Error)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after shutdown")
	}
	if _, err := os.Stat(sock); !os.IsNotExist(err) {
		t.Fatalf("socket file not removed after shutdown: %v", err)
	}
}

// TestDaemonUsageErrors covers the flag-validation exits.
func TestDaemonUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no listener flag: exit %d, want 2", code)
	}
	if code := run([]string{"-socket", "a", "-listen", "b"}, &out, &errb); code != 2 {
		t.Fatalf("both listener flags: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
}
