// Command demd is the simulation daemon: a long-running process that
// accepts DEM jobs over a line-oriented JSON protocol on a unix or TCP
// socket, runs them through a bounded worker pool, and streams
// per-step events to subscribers. Jobs are cancellable at step
// boundaries; a canceled job that was given a checkpoint path writes
// its partial state crash-safely and can be resubmitted with "load" to
// resume bit-identically.
//
// Start it and talk to it with nc:
//
//	demd -socket /tmp/demd.sock &
//	echo '{"cmd":"submit","job":{"d":2,"n":400,"iters":50,"mode":"openmp","t":4}}' | nc -U /tmp/demd.sock
//	echo '{"cmd":"status","id":"j1"}' | nc -U /tmp/demd.sock
//	echo '{"cmd":"subscribe","id":"j1"}' | nc -U /tmp/demd.sock
//	echo '{"cmd":"cancel","id":"j1"}' | nc -U /tmp/demd.sock
//	echo '{"cmd":"shutdown"}' | nc -U /tmp/demd.sock
//
// The protocol verbs are submit, status, cancel, list, subscribe,
// stats and shutdown; see internal/server and DESIGN.md §15 for the
// wire format. SIGINT/SIGTERM drain cleanly — running jobs stop at
// their next step boundary and write their checkpoints — and a second
// signal force-quits.
//
// With -data-dir the job lifecycle is durable: every submit and state
// transition is fsynced to a write-ahead journal before it is
// acknowledged, running jobs checkpoint their state every
// -checkpoint-every iterations, and a daemon restarted on the same
// -data-dir (even after kill -9) re-adopts every job — re-enqueueing
// and resuming interrupted ones bit-exactly from their last durable
// checkpoint. Jobs that hit a retryable fault are re-queued with
// exponential backoff up to -max-restarts attempts. See DESIGN.md §16
// and the README's "Restarting demd" section.
//
// Exit codes: 0 clean shutdown (signal or the shutdown command); 1
// listener, recovery or serve error; 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hybriddem/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("demd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		socket  = fs.String("socket", "", "unix socket path to listen on")
		listen  = fs.String("listen", "", "TCP address to listen on (e.g. 127.0.0.1:7077)")
		workers = fs.Int("workers", 2, "jobs simulating concurrently")
		queue   = fs.Int("queue", 16, "jobs waiting for a worker before submissions are rejected")
		evbuf   = fs.Int("event-buffer", 64, "events a subscriber may fall behind before it is dropped")
		retry   = fs.Duration("retry-after", time.Second, "backoff hint attached to queue-full rejections")
		maxN    = fs.Int("max-n", 0, "per-job particle limit (0 = unlimited)")
		maxIt   = fs.Int("max-iters", 0, "per-job iteration limit (0 = unlimited)")
		dataDir = fs.String("data-dir", "", "directory for the job journal and durable checkpoints (empty = nothing survives a crash)")
		ckEvery = fs.Int("checkpoint-every", 256, "durable checkpoint cadence in measured iterations (with -data-dir)")
		maxRst  = fs.Int("max-restarts", 2, "default per-job retry budget after retryable faults (negative = no retries)")
		backoff = fs.Duration("retry-backoff", time.Second, "delay before a faulted job's first retry, doubling per restart")
		wdog    = fs.Duration("watchdog", 0, "kill a job whose communication goes silent this long (0 = off)")
		quiet   = fs.Bool("quiet", false, "suppress the job lifecycle log")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*socket == "") == (*listen == "") {
		fmt.Fprintln(stderr, "demd: exactly one of -socket or -listen is required")
		return 2
	}

	var ln net.Listener
	var err error
	if *socket != "" {
		// A previous unclean exit leaves the socket file behind; a
		// fresh daemon owns the path.
		os.Remove(*socket)
		ln, err = net.Listen("unix", *socket)
	} else {
		ln, err = net.Listen("tcp", *listen)
	}
	if err != nil {
		fmt.Fprintln(stderr, "demd:", err)
		return 1
	}

	opts := server.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		EventBuffer:     *evbuf,
		RetryAfter:      *retry,
		MaxN:            *maxN,
		MaxIters:        *maxIt,
		DataDir:         *dataDir,
		CheckpointEvery: *ckEvery,
		MaxRestarts:     *maxRst,
		RetryBackoff:    *backoff,
		Watchdog:        *wdog,
	}
	if !*quiet {
		opts.Logf = func(format string, a ...any) { fmt.Fprintf(stdout, format+"\n", a...) }
	}
	srv, err := server.New(opts)
	if err != nil {
		ln.Close()
		fmt.Fprintln(stderr, "demd:", err)
		return 1
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintln(stderr, "demd: signal received; draining (signal again to force quit)")
		go srv.Shutdown()
		<-sigc
		fmt.Fprintln(stderr, "demd: second signal; exiting immediately")
		os.Exit(130)
	}()

	fmt.Fprintf(stdout, "demd: listening on %s (%d workers, queue %d)\n", ln.Addr(), opts.Workers, opts.QueueDepth)
	err = srv.Serve(ln)
	srv.Shutdown() // no-op if a signal or the wire command already did it
	<-srv.Done()
	if *socket != "" {
		os.Remove(*socket)
	}
	if err != nil {
		fmt.Fprintln(stderr, "demd:", err)
		return 1
	}
	fmt.Fprintln(stdout, "demd: bye")
	return 0
}
