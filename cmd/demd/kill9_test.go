package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/server"
)

// TestDaemonKill9Helper is not a test: re-exec'd by TestDaemonKill9Recovery
// as the daemon child that gets SIGKILLed. It runs the real demd entry
// point on the socket and data dir passed through the environment.
func TestDaemonKill9Helper(t *testing.T) {
	sock := os.Getenv("DEMD_KILL9_SOCK")
	if sock == "" {
		t.Skip("helper process for TestDaemonKill9Recovery")
	}
	run([]string{
		"-socket", sock,
		"-data-dir", os.Getenv("DEMD_KILL9_DATA"),
		"-workers", "1",
		"-checkpoint-every", "50",
		"-quiet",
	}, os.Stdout, os.Stderr)
}

// startDaemon runs the demd entry point in-process and returns a
// control connection plus a stopper that shuts it down over the wire.
func startDaemon(t *testing.T, args ...string) (*json.Encoder, *json.Decoder, func()) {
	t.Helper()
	var out, errb bytes.Buffer
	exit := make(chan int, 1)
	go func() { exit <- run(append([]string{"-quiet"}, args...), &out, &errb) }()
	sock := args[1] // args are "-socket", path, ...
	c := dialDaemon(t, sock)
	t.Cleanup(func() { c.Close() })
	enc, dec := json.NewEncoder(c), json.NewDecoder(c)
	stop := func() {
		roundTrip(t, enc, dec, server.Request{Cmd: "shutdown"})
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("daemon exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatal("daemon did not exit after shutdown")
		}
	}
	return enc, dec, stop
}

// TestDaemonKill9Recovery is the operator-facing crash contract, end to
// end through the real binary surface: a daemon process is SIGKILLed —
// no drain, no deferred cleanup — mid-job, a new daemon on the same
// -data-dir re-adopts the job from the journal, resumes it from the
// last durable checkpoint, and finishes on exactly the bits an
// unbroken daemon of the same configuration produces.
func TestDaemonKill9Recovery(t *testing.T) {
	dir := t.TempDir()
	spec := &server.JobSpec{D: 2, N: 300, Iters: 6000, Warm: 1, Vel: 4,
		RC: 1.2, NoReorder: true}

	// Reference: the same daemon configuration, never interrupted.
	refCk := filepath.Join(dir, "ref.ck")
	refSpec := *spec
	refSpec.Checkpoint = refCk
	enc, dec, stop := startDaemon(t,
		"-socket", filepath.Join(dir, "ref.sock"),
		"-data-dir", filepath.Join(dir, "refdata"),
		"-workers", "1", "-checkpoint-every", "50")
	r := roundTrip(t, enc, dec, server.Request{Cmd: "submit", Job: &refSpec})
	if !r.OK {
		t.Fatalf("submit reference: %s", r.Error)
	}
	if st := pollState(t, enc, dec, r.ID); st.State != "done" {
		t.Fatalf("reference ended %s: %s", st.State, st.Error)
	}
	stop()

	// Victim: a child daemon process killed with SIGKILL mid-job, well
	// past a few checkpoint boundaries.
	dataDir := filepath.Join(dir, "data")
	sock := filepath.Join(dir, "victim.sock")
	child := exec.Command(os.Args[0], "-test.run=^TestDaemonKill9Helper$")
	child.Env = append(os.Environ(),
		"DEMD_KILL9_SOCK="+sock, "DEMD_KILL9_DATA="+dataDir)
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	defer child.Process.Kill()

	c := dialDaemon(t, sock)
	defer c.Close()
	venc, vdec := json.NewEncoder(c), json.NewDecoder(c)
	vSpec := *spec
	vSpec.Checkpoint = filepath.Join(dir, "victim.ck")
	rv := roundTrip(t, venc, vdec, server.Request{Cmd: "submit", Job: &vSpec})
	if !rv.OK {
		t.Fatalf("submit victim: %s", rv.Error)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := roundTrip(t, venc, vdec, server.Request{Cmd: "status", ID: rv.ID})
		if !st.OK {
			t.Fatalf("status: %s", st.Error)
		}
		if st.Job.State == "running" && st.Job.ItersDone >= 150 {
			break
		}
		if st.Job.State == "done" {
			t.Fatal("victim finished before the kill; raise Iters")
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never reached 150 iterations (state %s, %d done)",
				st.Job.State, st.Job.ItersDone)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no drain, no cleanup
		t.Fatal(err)
	}
	child.Wait()

	// Restart on the same data dir and let recovery finish the job.
	enc2, dec2, stop2 := startDaemon(t,
		"-socket", filepath.Join(dir, "restart.sock"),
		"-data-dir", dataDir,
		"-workers", "1", "-checkpoint-every", "50")
	fin := pollState(t, enc2, dec2, rv.ID)
	if fin.State != "done" {
		t.Fatalf("recovered job ended %s: %s", fin.State, fin.Error)
	}
	if !fin.Recovered {
		t.Fatal("recovered job does not report Recovered")
	}
	if fin.ItersDone != spec.Iters {
		t.Fatalf("recovered job finished at %d iterations, want %d", fin.ItersDone, spec.Iters)
	}
	if st := roundTrip(t, enc2, dec2, server.Request{Cmd: "stats"}); !st.OK || st.Stats.Recovered < 1 {
		t.Fatalf("restarted daemon stats %+v: want Recovered >= 1", st.Stats)
	}
	stop2()

	want, err := checkpoint.LoadFile(refCk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.LoadFile(vSpec.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if want.Iters != got.Iters || want.N != got.N {
		t.Fatalf("checkpoint shapes differ: %d iters/%d particles vs %d/%d",
			want.Iters, want.N, got.Iters, got.N)
	}
	for i := 0; i < want.N; i++ {
		wp, gp := want.Pos.At(i, want.D), got.Pos.At(i, want.D)
		wv, gv := want.Vel.At(i, want.D), got.Vel.At(i, want.D)
		for k := 0; k < want.D; k++ {
			if wp[k] != gp[k] || wv[k] != gv[k] {
				t.Fatalf("particle %d component %d differs after kill -9 recovery: pos %v vs %v, vel %v vs %v",
					i, k, wp[k], gp[k], wv[k], gv[k])
			}
		}
	}
}
