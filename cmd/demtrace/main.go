// Command demtrace runs a simulation with the virtual-time tracer
// enabled and renders a Paraver-style view of it: an ASCII Gantt
// chart of the per-rank phase spans, per-phase totals, and the
// load-imbalance factor per phase. This is the profiling the paper's
// Further Work section performs with OMPItrace/Paraver on the hybrid
// code.
//
// Example:
//
//	demtrace -mode hybrid -p 4 -t 4 -bpp 4 -n 30000 -fill 0.3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"hybriddem"
	"hybriddem/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("demtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		d       = fs.Int("d", 2, "spatial dimensions")
		n       = fs.Int("n", 20000, "particle count")
		mode    = fs.String("mode", "mpi", strings.Join(hybriddem.ModeNames(), " | "))
		p       = fs.Int("p", 4, "MPI ranks")
		t       = fs.Int("t", 1, "threads per rank")
		bpp     = fs.Int("bpp", 1, "blocks per process")
		iters   = fs.Int("iters", 4, "measured iterations")
		fill    = fs.Float64("fill", 0, "cluster particles into the bottom fraction (0 = uniform)")
		width   = fs.Int("width", 100, "chart width in columns")
		gravity = fs.Float64("gravity", 0, "gravity along the last dimension")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := hybriddem.Default(*d, *n)
	cfg.Platform = hybriddem.CompaqES40()
	cfg.P, cfg.T = *p, *t
	cfg.BlocksPerProc = *bpp
	cfg.Method = hybriddem.SelectedAtomic
	cfg.FillHeight = *fill
	cfg.Gravity = *gravity
	if *fill > 0 || *gravity != 0 {
		cfg.BC = hybriddem.Reflecting
	}
	m, err := hybriddem.ModeByName(*mode)
	if err != nil {
		fmt.Fprintln(stderr, "demtrace:", err)
		return 2
	}
	cfg.Mode = m
	// The -p/-t defaults suit the distributed modes; collapse the
	// counts the selected mode cannot use instead of erroring out.
	switch cfg.Mode {
	case hybriddem.Serial:
		cfg.P, cfg.T = 1, 1
	case hybriddem.OpenMP:
		cfg.P = 1
	case hybriddem.MPI, hybriddem.MPIsm:
		cfg.T = 1
	}

	tl := &trace.Timeline{}
	cfg.Timeline = tl
	res, err := hybriddem.Run(cfg, *iters)
	if err != nil {
		fmt.Fprintln(stderr, "demtrace:", err)
		return 1
	}

	fmt.Fprintf(stdout, "%v run: P=%d T=%d B/P=%d, %d iterations, %.4fs modelled per iteration\n\n",
		cfg.Mode, cfg.P, cfg.T, cfg.BlocksPerProc, res.Iters, res.PerIter)
	fmt.Fprint(stdout, tl.Render(*width))

	fmt.Fprintln(stdout, "\nper-phase totals (virtual seconds per rank):")
	totals := tl.PhaseTotals()
	phases := make([]string, 0, len(totals))
	for ph := range totals {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	imb := tl.Imbalance()
	for _, ph := range phases {
		fmt.Fprintf(stdout, "  %-8s", ph)
		for _, v := range totals[ph] {
			fmt.Fprintf(stdout, " %9.4f", v)
		}
		fmt.Fprintf(stdout, "   imbalance %.2fx\n", imb[ph])
	}
	fmt.Fprintln(stdout, "\nimbalance = max/mean across ranks; the block-cyclic granularity")
	fmt.Fprintln(stdout, "B/P exists to drive the force-phase imbalance towards 1.0.")
	return 0
}
