// Command demtrace runs a simulation with the virtual-time tracer
// enabled and renders a Paraver-style view of it: an ASCII Gantt
// chart of the per-rank phase spans, per-phase totals, and the
// load-imbalance factor per phase. This is the profiling the paper's
// Further Work section performs with OMPItrace/Paraver on the hybrid
// code.
//
// Example:
//
//	demtrace -mode hybrid -p 4 -t 4 -bpp 4 -n 30000 -fill 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hybriddem"
	"hybriddem/internal/trace"
)

func main() {
	var (
		d       = flag.Int("d", 2, "spatial dimensions")
		n       = flag.Int("n", 20000, "particle count")
		mode    = flag.String("mode", "mpi", "serial | openmp | mpi | hybrid")
		p       = flag.Int("p", 4, "MPI ranks")
		t       = flag.Int("t", 1, "threads per rank")
		bpp     = flag.Int("bpp", 1, "blocks per process")
		iters   = flag.Int("iters", 4, "measured iterations")
		fill    = flag.Float64("fill", 0, "cluster particles into the bottom fraction (0 = uniform)")
		width   = flag.Int("width", 100, "chart width in columns")
		gravity = flag.Float64("gravity", 0, "gravity along the last dimension")
	)
	flag.Parse()

	cfg := hybriddem.Default(*d, *n)
	cfg.Platform = hybriddem.CompaqES40()
	cfg.P, cfg.T = *p, *t
	cfg.BlocksPerProc = *bpp
	cfg.Method = hybriddem.SelectedAtomic
	cfg.FillHeight = *fill
	cfg.Gravity = *gravity
	if *fill > 0 || *gravity != 0 {
		cfg.BC = hybriddem.Reflecting
	}
	switch strings.ToLower(*mode) {
	case "serial":
		cfg.Mode = hybriddem.Serial
	case "openmp":
		cfg.Mode = hybriddem.OpenMP
	case "mpi":
		cfg.Mode = hybriddem.MPI
	case "hybrid":
		cfg.Mode = hybriddem.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "demtrace: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	tl := &trace.Timeline{}
	cfg.Timeline = tl
	res, err := hybriddem.Run(cfg, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demtrace:", err)
		os.Exit(1)
	}

	fmt.Printf("%v run: P=%d T=%d B/P=%d, %d iterations, %.4fs modelled per iteration\n\n",
		cfg.Mode, cfg.P, cfg.T, cfg.BlocksPerProc, res.Iters, res.PerIter)
	fmt.Print(tl.Render(*width))

	fmt.Println("\nper-phase totals (virtual seconds per rank):")
	totals := tl.PhaseTotals()
	phases := make([]string, 0, len(totals))
	for ph := range totals {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	imb := tl.Imbalance()
	for _, ph := range phases {
		fmt.Printf("  %-8s", ph)
		for _, v := range totals[ph] {
			fmt.Printf(" %9.4f", v)
		}
		fmt.Printf("   imbalance %.2fx\n", imb[ph])
	}
	fmt.Println("\nimbalance = max/mean across ranks; the block-cyclic granularity")
	fmt.Println("B/P exists to drive the force-phase imbalance towards 1.0.")
}
