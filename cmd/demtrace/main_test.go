package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTraceSmoke(t *testing.T) {
	for _, args := range [][]string{
		{"-d", "2", "-n", "400", "-mode", "mpi", "-p", "2", "-iters", "2", "-width", "60"},
		{"-d", "2", "-n", "400", "-mode", "hybrid", "-p", "2", "-t", "2", "-bpp", "2", "-iters", "2", "-width", "60"},
		{"-d", "2", "-n", "400", "-mode", "serial", "-iters", "2", "-width", "60"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d: %s", args, code, errb.String())
		}
		for _, want := range []string{"per-phase totals", "imbalance"} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("%v: output lacks %q", args, want)
			}
		}
	}
}

func TestRunTraceBadModeExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "simd"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}
