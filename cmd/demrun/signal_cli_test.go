package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"hybriddem/internal/checkpoint"
)

// TestRunInterruptSavesCheckpoint sends demrun a real SIGINT mid-run
// and checks the contract of exit code 4: the run stops at a step
// boundary, the partial state lands in the -save checkpoint, and
// resuming from it towards a larger cumulative -iters works.
func TestRunInterruptSavesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "partial.gob")

	// The iteration count is far beyond what could finish before the
	// signal lands; the armed channel guarantees the handler is
	// installed before the signal is sent.
	armed := make(chan struct{})
	testInterruptArmed = armed
	var out, errb bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-d", "2", "-n", "500", "-iters", "1000000", "-warmup", "1",
			"-vel", "1", "-save", ck}, &out, &errb)
	}()
	<-armed
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	var code int
	select {
	case code = <-exit:
	case <-time.After(60 * time.Second):
		t.Fatal("run did not stop after SIGINT")
	}
	if code != 4 {
		t.Fatalf("interrupted run exited %d, want 4\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "interrupted") {
		t.Errorf("summary lacks the interrupted line:\n%s", out.String())
	}

	snap, err := checkpoint.LoadFile(ck)
	if err != nil {
		t.Fatalf("interrupted run left no loadable checkpoint: %v", err)
	}
	if snap.Iters < 1 || snap.Iters >= 1000000 {
		t.Fatalf("checkpoint holds %d iterations, want a mid-run count", snap.Iters)
	}

	// The partial checkpoint resumes like any other: cumulative -iters
	// accounting picks up where the interrupt stopped.
	out.Reset()
	errb.Reset()
	total := snap.Iters + 2
	if code := run([]string{"-d", "2", "-n", "500", "-iters", strconv.Itoa(total), "-vel", "1",
		"-load", ck}, &out, &errb); code != 0 {
		t.Fatalf("resume exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cumulative") {
		t.Errorf("resume did not report cumulative iterations:\n%s", out.String())
	}
}
