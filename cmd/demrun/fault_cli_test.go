package main

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/geom"
)

// TestRunPeriodicCheckpointMatchesUnbroken: -checkpoint-every chains
// chunked runs through the checkpoint file; the final state must match
// one unbroken run of the same total length, and the file must hold
// the cumulative iteration count.
func TestRunPeriodicCheckpointMatchesUnbroken(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ck")
	periodic := filepath.Join(dir, "periodic.ck")
	base := []string{"-d", "2", "-n", "300", "-warmup", "1", "-vel", "1"}
	runOK := func(extra ...string) string {
		t.Helper()
		var out, errb bytes.Buffer
		if code := run(append(append([]string{}, base...), extra...), &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d: %s", extra, code, errb.String())
		}
		return out.String()
	}
	runOK("-iters", "6", "-save", full)
	out := runOK("-iters", "6", "-save", periodic, "-checkpoint-every", "2")
	if !strings.Contains(out, "(every 2 iterations)") {
		t.Errorf("periodic run did not report its cadence:\n%s", out)
	}

	want, err := checkpoint.LoadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.LoadFile(periodic)
	if err != nil {
		t.Fatal(err)
	}
	if want.Iters != 6 || got.Iters != 6 {
		t.Fatalf("cumulative counts: unbroken %d, periodic %d, want 6", want.Iters, got.Iters)
	}
	box := geom.NewBox(2, want.L, want.BC)
	maxd := 0.0
	for i := 0; i < want.N; i++ {
		if d := math.Sqrt(box.Dist2(want.Pos.At(i, want.D), got.Pos.At(i, want.D))); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-8 {
		t.Errorf("periodically checkpointed run deviates by %g", maxd)
	}
}

// TestRunPeriodicCheckpointResumes: -checkpoint-every composes with
// -load — the resumed leg continues the cumulative count.
func TestRunPeriodicCheckpointResumes(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "state.ck")
	var out, errb bytes.Buffer
	if code := run([]string{"-d", "2", "-n", "300", "-iters", "4", "-save", ck, "-checkpoint-every", "2"}, &out, &errb); code != 0 {
		t.Fatalf("first leg exit %d: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-d", "2", "-n", "300", "-iters", "8", "-load", ck, "-save", ck, "-checkpoint-every", "3"}, &out, &errb); code != 0 {
		t.Fatalf("resumed leg exit %d: %s", code, errb.String())
	}
	snap, err := checkpoint.LoadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Iters != 8 {
		t.Errorf("final checkpoint holds %d iterations, want the cumulative 8", snap.Iters)
	}
}

func TestRunCheckpointEveryNeedsSave(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-d", "2", "-n", "300", "-iters", "4", "-checkpoint-every", "2"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want usage error 2: %s", code, errb.String())
	}
}

// TestRunChaosFaultExitsThree: an injected fault with no supervisor is
// unrecoverable and must exit 3, distinct from plain errors.
func TestRunChaosFaultExitsThree(t *testing.T) {
	for _, extra := range [][]string{
		{"-chaos-kill", "1@2"},
		{"-chaos-corrupt", "1", "-chaos-max", "1"},
	} {
		args := append([]string{"-d", "2", "-n", "400", "-mode", "mpi", "-p", "2", "-iters", "4"}, extra...)
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 3 {
			t.Errorf("%v: exit %d, want 3 (stderr: %s)", extra, code, errb.String())
		}
		if !strings.Contains(errb.String(), "fault:") {
			t.Errorf("%v: stderr does not describe the fault: %s", extra, errb.String())
		}
	}
}

// TestRunSuperviseRecoversFromKill: the same kill under -supervise
// recovers (exit 0) and the final state matches an unfaulted run.
func TestRunSuperviseRecoversFromKill(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.ck")
	chaos := filepath.Join(dir, "chaos.ck")
	base := []string{"-d", "2", "-n", "400", "-mode", "mpi", "-p", "2", "-iters", "6"}
	var out, errb bytes.Buffer
	if code := run(append(append([]string{}, base...), "-save", clean), &out, &errb); code != 0 {
		t.Fatalf("clean run exit %d: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(append(append([]string{}, base...),
		"-save", chaos, "-supervise", "-chaos-kill", "1@3"), &out, &errb); code != 0 {
		t.Fatalf("supervised chaos run exit %d: %s", code, errb.String())
	}
	want, err := checkpoint.LoadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.LoadFile(chaos)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < want.N; i++ {
		if want.Pos.At(i, want.D) != got.Pos.At(i, want.D) || want.Vel.At(i, want.D) != got.Vel.At(i, want.D) {
			t.Fatalf("particle %d differs after recovery: %v vs %v", i, want.Pos.At(i, want.D), got.Pos.At(i, want.D))
		}
	}
}

func TestRunBadChaosKillExitsTwo(t *testing.T) {
	for _, kill := range []string{"nope", "1@", "@2", "-1@3", "1@-3"} {
		var out, errb bytes.Buffer
		args := []string{"-d", "2", "-n", "300", "-mode", "mpi", "-p", "2", "-chaos-kill", kill}
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("-chaos-kill %q: exit %d, want 2", kill, code)
		}
	}
}
