package main

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/geom"
)

func TestRunSerialSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-d", "2", "-n", "400", "-iters", "3", "-warmup", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"mode", "system", "energy", "counters"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunAllModesSmoke(t *testing.T) {
	for _, args := range [][]string{
		{"-d", "2", "-n", "400", "-mode", "openmp", "-t", "2", "-iters", "2"},
		{"-d", "2", "-n", "400", "-mode", "mpi", "-p", "2", "-bpp", "2", "-iters", "2"},
		{"-d", "2", "-n", "400", "-mode", "hybrid", "-p", "2", "-t", "2", "-iters", "2", "-method", "stripe"},
		{"-d", "2", "-n", "400", "-mode", "serial", "-walls", "-gravity", "-10", "-fill", "0.3", "-iters", "2"},
		{"-d", "2", "-n", "400", "-mode", "mpi", "-p", "2", "-bpp", "4", "-iters", "2",
			"-rebalance", "-walls", "-gravity", "-10", "-fill", "0.3"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Errorf("%v: exit %d, stderr: %s", args, code, errb.String())
		}
	}
}

func TestRunVerifyFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-d", "2", "-n", "200", "-iters", "3", "-verify"}, &out, &errb)
	if code != 0 {
		t.Fatalf("-verify exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "all 47 variants agree") {
		t.Errorf("conformance report missing verdict:\n%s", out.String())
	}
}

func TestRunCheckpointRoundTrip(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "state.gob")
	var out, errb bytes.Buffer
	if code := run([]string{"-d", "2", "-n", "400", "-iters", "2", "-save", ck}, &out, &errb); code != 0 {
		t.Fatalf("save exit %d: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	// -iters is cumulative: the checkpoint holds 2 iterations, so
	// resuming towards a total of 4 runs 2 more.
	if code := run([]string{"-d", "2", "-n", "400", "-iters", "4", "-load", ck}, &out, &errb); code != 0 {
		t.Fatalf("load exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "4 cumulative (2 restored + 2 new)") {
		t.Errorf("resume did not report cumulative iterations:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	// A total at or below the checkpoint's progress leaves nothing to
	// run and must be refused.
	if code := run([]string{"-d", "2", "-n", "400", "-iters", "2", "-load", ck}, &out, &errb); code != 2 {
		t.Errorf("exhausted resume exit %d, want 2: %s", code, errb.String())
	}
}

// TestRunResumeMatchesUnbrokenRun: "run 3, save, load, run to 6" must
// land on the same state as one unbroken 6-iteration run. This guards
// the -load accounting: before -iters became cumulative, the resumed
// leg re-ran the full count (and re-warmed), overshooting the
// requested trajectory.
func TestRunResumeMatchesUnbrokenRun(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.gob")
	half := filepath.Join(dir, "half.gob")
	resumed := filepath.Join(dir, "resumed.gob")
	base := []string{"-d", "2", "-n", "300", "-warmup", "1", "-vel", "1"}
	runOK := func(extra ...string) string {
		t.Helper()
		var out, errb bytes.Buffer
		if code := run(append(append([]string{}, base...), extra...), &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d: %s", extra, code, errb.String())
		}
		return out.String()
	}
	runOK("-iters", "6", "-save", full)
	runOK("-iters", "3", "-save", half)
	runOK("-iters", "6", "-load", half, "-save", resumed)

	want, err := checkpoint.LoadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.LoadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if want.Iters != 6 || got.Iters != 6 {
		t.Fatalf("cumulative iteration counts: unbroken %d, resumed %d, want 6", want.Iters, got.Iters)
	}
	box := geom.NewBox(2, want.L, want.BC)
	maxd := 0.0
	for i := 0; i < want.N; i++ {
		if d := math.Sqrt(box.Dist2(want.Pos.At(i, want.D), got.Pos.At(i, want.D))); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-8 {
		t.Errorf("resumed run deviates from the unbroken run by %g", maxd)
	}
}

// TestRunRebalanceFlagForms pins the strategy flag's surface: bare
// -rebalance keeps its historical boolean meaning (LPT), explicit
// strategy names select ORB or switch balancing off, and the run
// summary echoes the strategy by name.
func TestRunRebalanceFlagForms(t *testing.T) {
	base := []string{"-d", "2", "-n", "400", "-mode", "mpi", "-p", "2", "-bpp", "4", "-iters", "2"}
	cases := []struct {
		name string
		args []string
		want string // substring of the mode line; "" = no rebalance suffix
	}{
		{"default-off", base, ""},
		{"bare-flag-is-lpt", append([]string{"-rebalance"}, base...), "rebalance=lpt"},
		{"explicit-lpt", append([]string{"-rebalance=lpt"}, base...), "rebalance=lpt"},
		{"explicit-orb", append([]string{"-rebalance=orb"}, base...), "rebalance=orb"},
		{"explicit-off", append([]string{"-rebalance=off"}, base...), ""},
		{"bool-false", append([]string{"-rebalance=false"}, base...), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errb.String())
			}
			if tc.want == "" {
				if strings.Contains(out.String(), "rebalance") {
					t.Errorf("summary mentions rebalance for %v:\n%s", tc.args, out.String())
				}
			} else if !strings.Contains(out.String(), tc.want) {
				t.Errorf("summary lacks %q for %v:\n%s", tc.want, tc.args, out.String())
			}
		})
	}
}

func TestRunBadFlagsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "cuda"},
		{"-method", "mutex"},
		{"-platform", "PDP11"},
		{"-rebalance=bogus"},
		{"-definitely-not-a-flag"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}
