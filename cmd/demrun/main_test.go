package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSerialSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-d", "2", "-n", "400", "-iters", "3", "-warmup", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"mode", "system", "energy", "counters"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunAllModesSmoke(t *testing.T) {
	for _, args := range [][]string{
		{"-d", "2", "-n", "400", "-mode", "openmp", "-t", "2", "-iters", "2"},
		{"-d", "2", "-n", "400", "-mode", "mpi", "-p", "2", "-bpp", "2", "-iters", "2"},
		{"-d", "2", "-n", "400", "-mode", "hybrid", "-p", "2", "-t", "2", "-iters", "2", "-method", "stripe"},
		{"-d", "2", "-n", "400", "-mode", "serial", "-walls", "-gravity", "-10", "-fill", "0.3", "-iters", "2"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Errorf("%v: exit %d, stderr: %s", args, code, errb.String())
		}
	}
}

func TestRunVerifyFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-d", "2", "-n", "200", "-iters", "3", "-verify"}, &out, &errb)
	if code != 0 {
		t.Fatalf("-verify exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "all 34 variants agree") {
		t.Errorf("conformance report missing verdict:\n%s", out.String())
	}
}

func TestRunCheckpointRoundTrip(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "state.gob")
	var out, errb bytes.Buffer
	if code := run([]string{"-d", "2", "-n", "400", "-iters", "2", "-save", ck}, &out, &errb); code != 0 {
		t.Fatalf("save exit %d: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-d", "2", "-n", "400", "-iters", "2", "-load", ck}, &out, &errb); code != 0 {
		t.Fatalf("load exit %d: %s", code, errb.String())
	}
}

func TestRunBadFlagsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "cuda"},
		{"-method", "mutex"},
		{"-platform", "PDP11"},
		{"-definitely-not-a-flag"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}
