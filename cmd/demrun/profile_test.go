package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunProfilingFlags: -cpuprofile/-memprofile produce non-empty
// pprof files and -allocstats reports to stderr, leaving stdout's
// report format untouched.
func TestRunProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	code := run([]string{"-d", "2", "-n", "400", "-iters", "3",
		"-cpuprofile", cpu, "-memprofile", mem, "-allocstats"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
	if !strings.Contains(errb.String(), "allocstats:") {
		t.Errorf("stderr lacks allocation summary:\n%s", errb.String())
	}
	if strings.Contains(out.String(), "allocstats:") {
		t.Errorf("allocation summary leaked onto stdout:\n%s", out.String())
	}
}

// TestRunBadProfilePathExitTwo: an unwritable profile path fails
// before any simulation work.
func TestRunBadProfilePathExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-d", "2", "-n", "200", "-iters", "1",
		"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, errb.String())
	}
}
