// Command demrun executes one DEM simulation with explicit parameters
// and reports its modelled and wall timings, energies and counters.
//
// Examples:
//
//	demrun -d 3 -n 50000 -mode hybrid -p 4 -t 4 -bpp 2 -platform CPQ
//	demrun -d 2 -n 100000 -mode mpi -p 16 -rc 2.0 -noreorder
//	demrun -d 2 -n 30000 -mode serial -fill 0.25 -gravity -30
//	demrun -d 2 -n 250 -verify
//
// With -verify the run becomes a differential conformance check: the
// configuration is pushed through every execution mode, force-update
// strategy and reordering setting, and each trajectory is compared
// step by step against the serial baseline. The exit status is nonzero
// when any variant diverges.
//
// Fault tolerance: -supervise runs MPI/hybrid configurations under a
// supervisor that snapshots at list rebuilds and recovers from
// detected faults by rolling back (and, after a rank kill, degrading
// to P-1 ranks); the -chaos-* flags inject deterministic faults for
// testing it. -checkpoint-every N writes crash-safe on-disk
// checkpoints to the -save path every N measured iterations.
//
// Interruption: SIGINT/SIGTERM stop the run cooperatively at the next
// measured step boundary; with -save the partial state is checkpointed
// (crash-safe, resumable with -load towards the same cumulative
// -iters). A second signal exits immediately.
//
// Exit codes: 0 success; 1 run or configuration error; 2 usage error
// or nothing to do (the -load checkpoint already holds -iters
// iterations); 3 unrecoverable fault (a detected kill, corruption or
// watchdog timeout that supervision could not, or was not asked to,
// recover from); 4 interrupted by a signal (the summary and any -save
// checkpoint reflect the completed iterations).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"hybriddem"
	"hybriddem/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("demrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		d        = fs.Int("d", 3, "spatial dimensions (1-3)")
		n        = fs.Int("n", 20000, "particle count")
		mode     = fs.String("mode", "serial", strings.Join(hybriddem.ModeNames(), " | "))
		p        = fs.Int("p", 1, "MPI ranks")
		t        = fs.Int("t", 1, "threads per rank")
		bpp      = fs.Int("bpp", 1, "blocks per process (granularity B/P)")
		rc       = fs.Float64("rc", 1.5, "cutoff factor rc/rmax")
		method   = fs.String("method", "selected-atomic", "atomic | selected-atomic | critical-reduction | stripe | transpose")
		fused    = fs.Bool("fused", false, "fuse the hybrid force loop into one region (Section 11)")
		rebal    hybriddem.StrategyFlag
		platform = fs.String("platform", "CPQ", "virtual platform: Sun | T3E | CPQ | none")
		iters    = fs.Int("iters", 10, "measured iterations (cumulative total when resuming with -load)")
		warmup   = fs.Int("warmup", 2, "warm-up iterations")
		seed     = fs.Int64("seed", 1, "random seed")
		noreord  = fs.Bool("noreorder", false, "disable cache particle reordering")
		overlap  = fs.Bool("overlap", true, "split-phase halo exchange overlapping communication with the core-link pass")
		walls    = fs.Bool("walls", false, "reflecting walls instead of periodic boundaries")
		gravity  = fs.Float64("gravity", 0, "gravity along the last dimension")
		fill     = fs.Float64("fill", 0, "cluster particles into the bottom fraction of the box (0 = uniform)")
		damp     = fs.Float64("damp", 0, "dissipative spring damping")
		hertz    = fs.Bool("hertz", false, "Hertzian contact law instead of the linear spring")
		f32      = fs.Bool("float32", false, "single-precision pair kernel (serial mode only; not bit-identical)")
		initVel  = fs.Float64("vel", 0, "initial velocity scale")
		modelN   = fs.Int("modeln", 0, "model the cache behaviour of this many particles (0 = actual N)")
		save     = fs.String("save", "", "write a checkpoint of the final state to this file")
		load     = fs.String("load", "", "resume from a checkpoint file")
		ckEvery  = fs.Int("checkpoint-every", 0, "also checkpoint to the -save file every N measured iterations (crash-safe atomic writes)")
		supv     = fs.Bool("supervise", false, "run under fault supervision: snapshot, detect, roll back, degrade (MPI/hybrid)")
		snapEv   = fs.Int("snapshot-every", 1, "with -supervise, take an in-memory snapshot at every k-th list rebuild")
		maxRetry = fs.Int("max-retries", 3, "with -supervise, recovery attempts before giving up (exit 3)")
		watchdog = fs.Duration("watchdog", 0, "deadline for blocking receives/collectives; stalls surface as faults (0 = off)")
		cKill    = fs.String("chaos-kill", "", "inject a rank failure, as rank@step (e.g. 1@9)")
		cCorrupt = fs.Float64("chaos-corrupt", 0, "per-message probability of flipping one payload bit")
		cDup     = fs.Float64("chaos-dup", 0, "per-message probability of duplicating the message")
		cDelayP  = fs.Float64("chaos-delay-prob", 0, "per-message probability of delaying delivery")
		cDelay   = fs.Duration("chaos-delay", time.Millisecond, "wall-clock delay applied to delayed messages")
		cMax     = fs.Int("chaos-max", 0, "total injection budget across corrupt/dup/delay (0 = unlimited)")
		cSeed    = fs.Int64("chaos-seed", 1, "seed for the deterministic fault plan")
		export   = fs.String("export", "", "write the final state for visualisation (.vtk, .xyz or .csv)")
		verify   = fs.Bool("verify", false, "run the differential conformance matrix instead of a timing run")
		verTol   = fs.Float64("verify-tol", 0, "conformance tolerance (0 = default 1e-7)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
		aStats   = fs.Bool("allocstats", false, "print allocation statistics to stderr at exit")
	)
	fs.Var(&rebal, "rebalance",
		"dynamic load balancing at list rebuilds (MPI/hybrid): "+
			strings.Join(hybriddem.StrategyNames(), " | ")+
			" (bare flag = lpt; name a strategy with '=', e.g. -rebalance=orb)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	prof, err := profiling.Start(profiling.Options{CPUProfile: *cpuProf, MemProfile: *memProf, AllocStats: *aStats}, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "demrun:", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(stderr, "demrun:", err)
		}
	}()

	cfg := hybriddem.Default(*d, *n)
	cfg.RCFactor = *rc
	cfg.Seed = *seed
	cfg.Reorder = !*noreord
	cfg.Overlap = *overlap
	cfg.P, cfg.T = *p, *t
	cfg.BlocksPerProc = *bpp
	cfg.Fused = *fused
	cfg.Rebalance = rebal.S
	cfg.Warmup = *warmup
	cfg.Gravity = *gravity
	cfg.FillHeight = *fill
	cfg.Spring.Damp = *damp
	cfg.Spring.Hertz = *hertz
	cfg.Float32 = *f32
	cfg.InitVel = *initVel
	cfg.ModelN = *modelN
	if *walls {
		cfg.BC = hybriddem.Reflecting
	}

	m, err := hybriddem.ModeByName(*mode)
	if err != nil {
		fmt.Fprintln(stderr, "demrun:", err)
		return 2
	}
	cfg.Mode = m

	switch strings.ToLower(*method) {
	case "atomic":
		cfg.Method = hybriddem.Atomic
	case "selected-atomic":
		cfg.Method = hybriddem.SelectedAtomic
	case "critical-reduction":
		cfg.Method = hybriddem.CriticalReduction
	case "stripe":
		cfg.Method = hybriddem.Stripe
	case "transpose":
		cfg.Method = hybriddem.Transpose
	default:
		fmt.Fprintf(stderr, "demrun: unknown method %q\n", *method)
		return 2
	}

	if strings.ToLower(*platform) != "none" {
		pf, err := hybriddem.PlatformByName(*platform)
		if err != nil {
			fmt.Fprintln(stderr, "demrun:", err)
			return 2
		}
		cfg.Platform = pf
	}

	if *cKill != "" || *cCorrupt > 0 || *cDup > 0 || *cDelayP > 0 {
		plan := hybriddem.NewFaultPlan(*cSeed)
		plan.CorruptProb = *cCorrupt
		plan.DuplicateProb = *cDup
		plan.DelayProb = *cDelayP
		plan.DelayWall = *cDelay
		plan.MaxFaults = *cMax
		if *cKill != "" {
			rank, step, err := parseKill(*cKill)
			if err != nil {
				fmt.Fprintln(stderr, "demrun:", err)
				return 2
			}
			plan.ArmKill(rank, step)
		}
		cfg.Faults = plan
	}
	cfg.Watchdog = *watchdog

	if *verify {
		c, err := hybriddem.RunConformance(cfg, *iters, *verTol)
		if err != nil {
			fmt.Fprintln(stderr, "demrun:", err)
			return 1
		}
		fmt.Fprint(stdout, c)
		if len(c.Failed()) > 0 {
			return 1
		}
		return 0
	}

	// Cooperative interruption: the first SIGINT/SIGTERM asks the run to
	// stop at its next measured step boundary (the partial state stays
	// checkpointable); a second signal gives up waiting and exits hard.
	var stopRequested atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintln(stderr, "demrun: interrupted; stopping at the next step boundary (signal again to exit now)")
		stopRequested.Store(true)
		<-sigc
		fmt.Fprintln(stderr, "demrun: second signal; exiting immediately")
		os.Exit(130)
	}()
	cfg.Stop = stopRequested.Load
	if testInterruptArmed != nil {
		close(testInterruptArmed)
		testInterruptArmed = nil
	}

	if *ckEvery < 0 {
		fmt.Fprintln(stderr, "demrun: -checkpoint-every must be >= 0")
		return 2
	}
	if *ckEvery > 0 && *save == "" {
		fmt.Fprintln(stderr, "demrun: -checkpoint-every needs -save for the checkpoint path")
		return 2
	}
	if *save != "" || *export != "" {
		cfg.CollectState = true
	}
	// -iters counts cumulative iterations: a resumed run executes only
	// the remainder, so "run N; save; load; run to N+M" reproduces one
	// unbroken N+M run. The saved state already includes the original
	// warm-up, so a resume must not warm up again — extra unmeasured
	// steps would silently advance the physics past the requested total.
	done := 0
	runIters := *iters
	if *load != "" {
		snap, err := hybriddem.LoadCheckpoint(*load, &cfg)
		if err != nil {
			fmt.Fprintln(stderr, "demrun:", err)
			return 1
		}
		done = snap.Iters
		runIters = *iters - done
		if runIters <= 0 {
			fmt.Fprintf(stderr, "demrun: checkpoint %s already holds %d iterations; -iters %d leaves nothing to run\n",
				*load, done, *iters)
			return 2
		}
		cfg.Warmup = 0
	}

	runSim := func(c hybriddem.Config, n int) (*hybriddem.Result, error) {
		if *supv {
			return hybriddem.Supervise(c, n, hybriddem.FTConfig{SnapshotEvery: *snapEv, MaxRetries: *maxRetry})
		}
		return hybriddem.Run(c, n)
	}
	// Unrecoverable faults — a detected kill, corruption or timeout
	// with no supervisor, or one that survived every retry — exit 3 so
	// scripts can tell them from plain configuration errors (1).
	fail := func(err error) int {
		fmt.Fprintln(stderr, "demrun:", err)
		if hybriddem.AsFaultError(err) != nil {
			return 3
		}
		return 1
	}

	var res *hybriddem.Result
	interrupted := false
	restored := done
	if *ckEvery > 0 {
		// Periodic on-disk checkpointing: run in chunks of N measured
		// iterations, checkpointing (atomically) after each, chaining
		// the state so the pieces reproduce one unbroken run. An
		// interrupted chunk still checkpoints its completed iterations.
		for left := runIters; left > 0; {
			chunk := *ckEvery
			if chunk > left {
				chunk = left
			}
			r, err := runSim(cfg, chunk)
			if err != nil && !errors.Is(err, hybriddem.ErrCanceled) {
				return fail(err)
			}
			done += r.Iters
			left -= r.Iters
			if err := hybriddem.SaveCheckpoint(*save, &cfg, r, done); err != nil {
				fmt.Fprintln(stderr, "demrun:", err)
				return 1
			}
			cfg.Init = &hybriddem.State{Pos: r.Pos, Vel: r.Vel}
			cfg.Warmup = 0
			res = r
			if errors.Is(err, hybriddem.ErrCanceled) {
				interrupted = true
				break
			}
		}
		done -= res.Iters // reporting: earlier chunks count as restored
		fmt.Fprintf(stdout, "checkpoint     %s (every %d iterations)\n", *save, *ckEvery)
	} else {
		r, err := runSim(cfg, runIters)
		if err != nil && !errors.Is(err, hybriddem.ErrCanceled) {
			return fail(err)
		}
		interrupted = errors.Is(err, hybriddem.ErrCanceled)
		res = r
		if *save != "" {
			if err := hybriddem.SaveCheckpoint(*save, &cfg, res, done+res.Iters); err != nil {
				fmt.Fprintln(stderr, "demrun:", err)
				return 1
			}
			fmt.Fprintf(stdout, "checkpoint     %s\n", *save)
		}
	}
	if interrupted {
		fmt.Fprintf(stdout, "interrupted     stopped after %d of %d measured iterations\n",
			done+res.Iters-restored, runIters)
	}
	if *export != "" {
		if err := hybriddem.ExportState(*export, &cfg, res); err != nil {
			fmt.Fprintln(stderr, "demrun:", err)
			return 1
		}
		fmt.Fprintf(stdout, "exported       %s\n", *export)
	}

	balance := ""
	if cfg.Rebalance.Enabled() {
		balance = ", rebalance=" + cfg.Rebalance.String()
	}
	fmt.Fprintf(stdout, "mode            %v (P=%d, T=%d, B/P=%d%s)\n", cfg.Mode, cfg.P, cfg.T, cfg.BlocksPerProc, balance)
	fmt.Fprintf(stdout, "system          D=%d, N=%d, L=%.4g, rc=%.3g, %v\n", cfg.D, cfg.N, cfg.L, cfg.RC(), cfg.BC)
	if cfg.Platform != nil {
		fmt.Fprintf(stdout, "platform        %s (%d nodes x %d CPUs)\n", cfg.Platform.Name, cfg.Platform.Nodes, cfg.Platform.CPUsPerNode)
	}
	if done > 0 {
		fmt.Fprintf(stdout, "iterations      %d cumulative (%d restored + %d new)\n", done+res.Iters, done, res.Iters)
	} else {
		fmt.Fprintf(stdout, "iterations      %d measured after %d warm-up\n", res.Iters, cfg.Warmup)
	}
	fmt.Fprintf(stdout, "model time/iter %.6f s  (force %.6f, update %.6f, comm %.6f, coll %.6f)\n",
		res.PerIter, res.ForceTime, res.UpdateTime, res.CommTime, res.CollTime)
	fmt.Fprintf(stdout, "wall time/iter  %.6f s\n", res.Wall.Seconds()/float64(res.Iters))
	fmt.Fprintf(stdout, "energy          potential %.6g, kinetic %.6g\n", res.Epot, res.Ekin)
	fmt.Fprintf(stdout, "links           %d (mean index distance %.0f)\n", res.NLinks, res.MeanLinkDist)
	fmt.Fprintf(stdout, "rebuilds        %d during measurement\n", res.Rebuilds)
	if res.AtomicFraction > 0 {
		fmt.Fprintf(stdout, "lock fraction   %.2f%% of force updates\n", 100*res.AtomicFraction)
	}
	tc := res.TC
	fmt.Fprintf(stdout, "counters        %d force evals, %d contacts, %d msgs (%d bytes), %d regions\n",
		tc.ForceEvals, tc.Contacts, tc.MsgsSent, tc.BytesSent, tc.ParallelRegions)
	if interrupted {
		return 4
	}
	return 0
}

// testInterruptArmed, when a test sets it, is closed once the signal
// handler is installed — the synchronisation point after which a
// test-sent SIGINT is guaranteed to reach the stop hook.
var testInterruptArmed chan struct{}

// parseKill parses the -chaos-kill argument "rank@step".
func parseKill(s string) (rank, step int, err error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return 0, 0, fmt.Errorf("-chaos-kill %q: want rank@step", s)
	}
	rank, err = strconv.Atoi(s[:at])
	if err == nil {
		step, err = strconv.Atoi(s[at+1:])
	}
	if err != nil || rank < 0 || step < 0 {
		return 0, 0, fmt.Errorf("-chaos-kill %q: want nonnegative rank@step", s)
	}
	return rank, step, nil
}
