// Command demrun executes one DEM simulation with explicit parameters
// and reports its modelled and wall timings, energies and counters.
//
// Examples:
//
//	demrun -d 3 -n 50000 -mode hybrid -p 4 -t 4 -bpp 2 -platform CPQ
//	demrun -d 2 -n 100000 -mode mpi -p 16 -rc 2.0 -noreorder
//	demrun -d 2 -n 30000 -mode serial -fill 0.25 -gravity -30
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybriddem"
)

func main() {
	var (
		d        = flag.Int("d", 3, "spatial dimensions (1-3)")
		n        = flag.Int("n", 20000, "particle count")
		mode     = flag.String("mode", "serial", "serial | openmp | mpi | hybrid")
		p        = flag.Int("p", 1, "MPI ranks")
		t        = flag.Int("t", 1, "threads per rank")
		bpp      = flag.Int("bpp", 1, "blocks per process (granularity B/P)")
		rc       = flag.Float64("rc", 1.5, "cutoff factor rc/rmax")
		method   = flag.String("method", "selected-atomic", "atomic | selected-atomic | critical-reduction | stripe | transpose")
		fused    = flag.Bool("fused", false, "fuse the hybrid force loop into one region (Section 11)")
		platform = flag.String("platform", "CPQ", "virtual platform: Sun | T3E | CPQ | none")
		iters    = flag.Int("iters", 10, "measured iterations")
		warmup   = flag.Int("warmup", 2, "warm-up iterations")
		seed     = flag.Int64("seed", 1, "random seed")
		noreord  = flag.Bool("noreorder", false, "disable cache particle reordering")
		walls    = flag.Bool("walls", false, "reflecting walls instead of periodic boundaries")
		gravity  = flag.Float64("gravity", 0, "gravity along the last dimension")
		fill     = flag.Float64("fill", 0, "cluster particles into the bottom fraction of the box (0 = uniform)")
		damp     = flag.Float64("damp", 0, "dissipative spring damping")
		hertz    = flag.Bool("hertz", false, "Hertzian contact law instead of the linear spring")
		initVel  = flag.Float64("vel", 0, "initial velocity scale")
		modelN   = flag.Int("modeln", 0, "model the cache behaviour of this many particles (0 = actual N)")
		save     = flag.String("save", "", "write a checkpoint of the final state to this file")
		load     = flag.String("load", "", "resume from a checkpoint file")
		export   = flag.String("export", "", "write the final state for visualisation (.vtk, .xyz or .csv)")
	)
	flag.Parse()

	cfg := hybriddem.Default(*d, *n)
	cfg.RCFactor = *rc
	cfg.Seed = *seed
	cfg.Reorder = !*noreord
	cfg.P, cfg.T = *p, *t
	cfg.BlocksPerProc = *bpp
	cfg.Fused = *fused
	cfg.Warmup = *warmup
	cfg.Gravity = *gravity
	cfg.FillHeight = *fill
	cfg.Spring.Damp = *damp
	cfg.Spring.Hertz = *hertz
	cfg.InitVel = *initVel
	cfg.ModelN = *modelN
	if *walls {
		cfg.BC = hybriddem.Reflecting
	}

	switch strings.ToLower(*mode) {
	case "serial":
		cfg.Mode = hybriddem.Serial
	case "openmp":
		cfg.Mode = hybriddem.OpenMP
	case "mpi":
		cfg.Mode = hybriddem.MPI
	case "hybrid":
		cfg.Mode = hybriddem.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "demrun: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	switch strings.ToLower(*method) {
	case "atomic":
		cfg.Method = hybriddem.Atomic
	case "selected-atomic":
		cfg.Method = hybriddem.SelectedAtomic
	case "critical-reduction":
		cfg.Method = hybriddem.CriticalReduction
	case "stripe":
		cfg.Method = hybriddem.Stripe
	case "transpose":
		cfg.Method = hybriddem.Transpose
	default:
		fmt.Fprintf(os.Stderr, "demrun: unknown method %q\n", *method)
		os.Exit(2)
	}

	if strings.ToLower(*platform) != "none" {
		pf, err := hybriddem.PlatformByName(*platform)
		if err != nil {
			fmt.Fprintln(os.Stderr, "demrun:", err)
			os.Exit(2)
		}
		cfg.Platform = pf
	}

	if *save != "" || *export != "" {
		cfg.CollectState = true
	}
	if *load != "" {
		if _, err := hybriddem.LoadCheckpoint(*load, &cfg); err != nil {
			fmt.Fprintln(os.Stderr, "demrun:", err)
			os.Exit(1)
		}
	}

	res, err := hybriddem.Run(cfg, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demrun:", err)
		os.Exit(1)
	}

	if *save != "" {
		if err := hybriddem.SaveCheckpoint(*save, &cfg, res, *iters); err != nil {
			fmt.Fprintln(os.Stderr, "demrun:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint     %s\n", *save)
	}
	if *export != "" {
		if err := hybriddem.ExportState(*export, &cfg, res); err != nil {
			fmt.Fprintln(os.Stderr, "demrun:", err)
			os.Exit(1)
		}
		fmt.Printf("exported       %s\n", *export)
	}

	fmt.Printf("mode            %v (P=%d, T=%d, B/P=%d)\n", cfg.Mode, cfg.P, cfg.T, cfg.BlocksPerProc)
	fmt.Printf("system          D=%d, N=%d, L=%.4g, rc=%.3g, %v\n", cfg.D, cfg.N, cfg.L, cfg.RC(), cfg.BC)
	if cfg.Platform != nil {
		fmt.Printf("platform        %s (%d nodes x %d CPUs)\n", cfg.Platform.Name, cfg.Platform.Nodes, cfg.Platform.CPUsPerNode)
	}
	fmt.Printf("iterations      %d measured after %d warm-up\n", res.Iters, cfg.Warmup)
	fmt.Printf("model time/iter %.6f s  (force %.6f, update %.6f, comm %.6f)\n",
		res.PerIter, res.ForceTime, res.UpdateTime, res.CommTime)
	fmt.Printf("wall time/iter  %.6f s\n", res.Wall.Seconds()/float64(res.Iters))
	fmt.Printf("energy          potential %.6g, kinetic %.6g\n", res.Epot, res.Ekin)
	fmt.Printf("links           %d (mean index distance %.0f)\n", res.NLinks, res.MeanLinkDist)
	fmt.Printf("rebuilds        %d during measurement\n", res.Rebuilds)
	if res.AtomicFraction > 0 {
		fmt.Printf("lock fraction   %.2f%% of force updates\n", 100*res.AtomicFraction)
	}
	tc := res.TC
	fmt.Printf("counters        %d force evals, %d contacts, %d msgs (%d bytes), %d regions\n",
		tc.ForceEvals, tc.Contacts, tc.MsgsSent, tc.BytesSent, tc.ParallelRegions)
}
