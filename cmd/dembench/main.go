// Command dembench regenerates the paper's tables and figures on the
// virtual platforms.
//
// Usage:
//
//	dembench                 # run every experiment at the default scale
//	dembench -exp T1,F6      # run selected experiments
//	dembench -list           # list experiment IDs
//	dembench -full           # paper scale: 10^6 particles, 40/20 iterations
//	dembench -n 100000       # custom particle count
//
// Reports go to stdout; wall-clock generation times go to stderr, so
// stdout is deterministic for a fixed seed and can be diffed against a
// golden copy.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hybriddem/internal/bench"
	"hybriddem/internal/core"
	"hybriddem/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dembench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expList = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		list    = fs.Bool("list", false, "list experiments and exit")
		full    = fs.Bool("full", false, "paper scale: 10^6 particles, 40/20 iterations")
		n       = fs.Int("n", 0, "particle count (default 40000)")
		iters   = fs.Int("iters", 0, "measured iterations per run (default 8/4 for D=2/3)")
		seed    = fs.Int64("seed", 1, "random seed")
		overlap = fs.Bool("overlap", true, "split-phase halo exchange (false = the paper's synchronous swap)")
		rebal   core.StrategyFlag
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file at exit")
		aStats  = fs.Bool("allocstats", false, "print allocation statistics to stderr at exit")
	)
	fs.Var(&rebal, "rebalance",
		"dynamic load balancing in every distributed run: "+
			strings.Join(core.StrategyNames(), " | ")+
			" (bare flag = lpt; name a strategy with '=', e.g. -rebalance=orb)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	prof, err := profiling.Start(profiling.Options{CPUProfile: *cpuProf, MemProfile: *memProf, AllocStats: *aStats}, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "dembench:", err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(stderr, "dembench:", err)
		}
	}()

	if *list {
		for _, e := range bench.All {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	opts := bench.Options{N: *n, Iters: *iters, Seed: *seed, Full: *full, NoOverlap: !*overlap, Rebalance: rebal.S}

	var exps []bench.Experiment
	if *expList == "" {
		exps = bench.All
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		rep := e.Run(opts)
		fmt.Fprintln(stdout, rep.String())
		fmt.Fprintln(stdout)
		fmt.Fprintf(stderr, "(%s generated in %.1fs)\n", e.ID, time.Since(start).Seconds())
	}
	return 0
}
