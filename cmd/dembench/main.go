// Command dembench regenerates the paper's tables and figures on the
// virtual platforms.
//
// Usage:
//
//	dembench                 # run every experiment at the default scale
//	dembench -exp T1,F6      # run selected experiments
//	dembench -list           # list experiment IDs
//	dembench -full           # paper scale: 10^6 particles, 40/20 iterations
//	dembench -n 100000       # custom particle count
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hybriddem/internal/bench"
)

func main() {
	var (
		expList = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		list    = flag.Bool("list", false, "list experiments and exit")
		full    = flag.Bool("full", false, "paper scale: 10^6 particles, 40/20 iterations")
		n       = flag.Int("n", 0, "particle count (default 40000)")
		iters   = flag.Int("iters", 0, "measured iterations per run (default 8/4 for D=2/3)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}

	opts := bench.Options{N: *n, Iters: *iters, Seed: *seed, Full: *full}

	var exps []bench.Experiment
	if *expList == "" {
		exps = bench.All
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		rep := e.Run(opts)
		fmt.Println(rep.String())
		fmt.Printf("(%s generated in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
