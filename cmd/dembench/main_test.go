package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from the current output")

// goldenArgs pins the regression run: two cheap experiments (a paper
// table and a section estimate) at the smallest particle count the
// suite accepts, one iteration, fixed seed. Everything on stdout is
// virtual-clock output, so the bytes are reproducible.
var goldenArgs = []string{"-exp", "T1,X1", "-n", "40000", "-iters", "1", "-seed", "1"}

func TestListSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if n := len(strings.Split(strings.TrimSpace(out.String()), "\n")); n < 14 {
		t.Errorf("only %d experiments listed", n)
	}
}

func TestUnknownExperimentExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "T99"}, &out, &errb); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestGoldenRegression(t *testing.T) {
	golden := filepath.Join("testdata", "golden.txt")
	var out, errb bytes.Buffer
	if code := run(goldenArgs, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, out.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/dembench -run TestGoldenRegression -update)", err)
	}
	if err := diffTolerant(string(want), out.String(), 1e-9); err != nil {
		t.Errorf("output drifted from %s: %v\n(refresh with -update if the change is intended)", golden, err)
	}

	// The report must also be deterministic across two consecutive
	// runs in the same process.
	var again bytes.Buffer
	if code := run(goldenArgs, &again, &errb); code != 0 {
		t.Fatalf("second run exit %d: %s", code, errb.String())
	}
	if again.String() != out.String() {
		t.Error("two consecutive runs with the same seed produced different reports")
	}
}

// layoutColumns names report columns whose values depend on the
// particle storage layout rather than the physics: meanDist is the
// mean |i-j| link-index distance (a function of fill and reorder
// order), and links counts pairs whose enumeration order — though not
// normally their number — tracks the layout. Mismatches in these
// columns are diagnostics drift, not numeric drift, so the golden
// comparison skips them instead of forcing an -update churn every
// time the storage layout changes.
var layoutColumns = map[string]bool{"links": true, "meanDist": true}

// layoutOffsets returns the offsets-from-end of any layout-dependent
// column names in a header line (nil when there are none). Offsets
// count from the end because multi-word column titles earlier in the
// header (e.g. "P0*t(P0) [s]") make from-start indices misalign
// between the header and its data rows; the layout columns sit at the
// tail of every table that has them.
func layoutOffsets(fields []string) map[int]bool {
	var offs map[int]bool
	for j, f := range fields {
		if layoutColumns[f] {
			if offs == nil {
				offs = map[int]bool{}
			}
			offs[len(fields)-j] = true
		}
	}
	return offs
}

// diffTolerant compares two reports line by line and token by token.
// Tokens that parse as floats must agree to relative tolerance tol
// (absolute below 1e-12); everything else must match exactly, except
// in layout-dependent columns (see layoutColumns), which are skipped.
// This keeps the golden file stable against last-digit float
// formatting and storage-layout changes while still catching real
// numeric drift.
func diffTolerant(want, got string, tol float64) error {
	wl := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gl := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(wl) != len(gl) {
		return fmt.Errorf("%d lines, golden has %d", len(gl), len(wl))
	}
	var skip map[int]bool // offsets-from-end of the current table's layout columns
	for i := range wl {
		wt, gt := strings.Fields(wl[i]), strings.Fields(gl[i])
		if len(wt) != len(gt) {
			return fmt.Errorf("line %d: %q vs golden %q", i+1, gl[i], wl[i])
		}
		if strings.HasPrefix(strings.TrimSpace(wl[i]), "==") {
			skip = nil // new section: forget the previous table's columns
		}
		if offs := layoutOffsets(wt); offs != nil {
			skip = offs // header row announcing layout-dependent columns
		}
		for j := range wt {
			if wt[j] == gt[j] {
				continue
			}
			if skip != nil && skip[len(wt)-j] {
				continue // layout-dependent column: diagnostics, not physics
			}
			wf, werr := strconv.ParseFloat(strings.TrimSuffix(wt[j], "%"), 64)
			gf, gerr := strconv.ParseFloat(strings.TrimSuffix(gt[j], "%"), 64)
			if werr != nil || gerr != nil {
				return fmt.Errorf("line %d token %d: %q vs golden %q", i+1, j+1, gt[j], wt[j])
			}
			diff := wf - gf
			if diff < 0 {
				diff = -diff
			}
			scale := wf
			if scale < 0 {
				scale = -scale
			}
			if diff > 1e-12 && diff > tol*scale {
				return fmt.Errorf("line %d token %d: %v vs golden %v (rel err %g)", i+1, j+1, gf, wf, diff/scale)
			}
		}
	}
	return nil
}
