package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProfilingFlagsSmoke: profiles land in files and the allocation
// summary goes to stderr only, keeping stdout golden-diffable.
func TestProfilingFlagsSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "T1", "-n", "2000",
		"-cpuprofile", cpu, "-memprofile", mem, "-allocstats"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, f := range []string{cpu, mem} {
		if st, err := os.Stat(f); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err %v)", f, err)
		}
	}
	if !strings.Contains(errb.String(), "allocstats:") {
		t.Errorf("stderr lacks allocation summary:\n%s", errb.String())
	}
	if strings.Contains(out.String(), "allocstats:") {
		t.Errorf("allocation summary leaked onto stdout:\n%s", out.String())
	}
}
