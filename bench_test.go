// Benchmarks: one per table and figure of the paper (regenerating the
// experiment at reduced scale and reporting the modelled headline
// number as a custom metric), plus micro-benchmarks of the hot
// kernels that dominate a real run on the host machine.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package hybriddem

import (
	"math/rand"
	"strconv"
	"testing"

	"hybriddem/internal/bench"
	"hybriddem/internal/cell"
	"hybriddem/internal/core"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/machine"
	"hybriddem/internal/particle"
	"hybriddem/internal/shm"
)

// benchOpts keeps the experiment regenerations short enough for the
// benchmark harness while preserving every structural property.
func benchOpts() bench.Options {
	return bench.Options{N: 40_000, Iters: 1, Warmup: 1, Seed: 1}
}

// runExperiment benchmarks one table/figure generator and reports the
// modelled seconds of its first data cell as a metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOpts()
	var rep *bench.Report
	for i := 0; i < b.N; i++ {
		rep = e.Run(o)
	}
	if len(rep.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	if v, err := strconv.ParseFloat(rep.Rows[0][len(rep.Rows[0])-1], 64); err == nil {
		b.ReportMetric(v, "model")
	}
}

func BenchmarkTable1BaseTimes(b *testing.B)          { runExperiment(b, "T1") }
func BenchmarkTable2Reordered(b *testing.B)          { runExperiment(b, "T2") }
func BenchmarkFigure1MPIScaling(b *testing.B)        { runExperiment(b, "F1") }
func BenchmarkFigure2MPIScalingReorder(b *testing.B) { runExperiment(b, "F2") }
func BenchmarkFigure3Granularity(b *testing.B)       { runExperiment(b, "F3") }
func BenchmarkFigure4OpenMPSun(b *testing.B)         { runExperiment(b, "F4") }
func BenchmarkFigure5OpenMPCompaq(b *testing.B)      { runExperiment(b, "F5") }
func BenchmarkFigure6Crossover(b *testing.B)         { runExperiment(b, "F6") }
func BenchmarkFigure7HybridD2(b *testing.B)          { runExperiment(b, "F7") }
func BenchmarkFigure8HybridD3(b *testing.B)          { runExperiment(b, "F8") }
func BenchmarkOMPSyncOverhead(b *testing.B)          { runExperiment(b, "X1") }
func BenchmarkLockFraction(b *testing.B)             { runExperiment(b, "X2") }
func BenchmarkNoLockAblation(b *testing.B)           { runExperiment(b, "X3") }
func BenchmarkFusedRegions(b *testing.B)             { runExperiment(b, "X4") }

// --- kernel micro-benchmarks -------------------------------------

// benchSystem builds a cell-ordered store with a valid link list at
// the paper's density.
func benchSystem(b *testing.B, d, n int, rcFactor float64) (*particle.Store, *cell.List, geom.Box, force.Spring) {
	b.Helper()
	cfg := core.Default(d, n)
	box := cfg.Box()
	ps := particle.New(d, n)
	rng := rand.New(rand.NewSource(1))
	particle.FillUniform(ps, n, box, 0, rng)
	rc := rcFactor * cfg.Spring.Diameter
	g := cell.NewGrid(d, geom.Vec{}, box.Len, rc, true)
	g.Bin(&ps.Pos, n, nil)
	ps.Permute(g.Order())
	g.Bin(&ps.Pos, n, nil)
	list := g.BuildLinks(&ps.Pos, n, n, rc*rc, box, nil)
	return ps, list, box, cfg.Spring
}

func BenchmarkForceSerial2D(b *testing.B) {
	ps, list, box, sp := benchSystem(b, 2, 50_000, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.ZeroForces()
		sp.Accumulate(ps, list.Links, ps.Len(), box, 1, nil)
	}
	b.ReportMetric(float64(len(list.Links)), "links")
}

func BenchmarkForceSerial3D(b *testing.B) {
	ps, list, box, sp := benchSystem(b, 3, 50_000, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.ZeroForces()
		sp.Accumulate(ps, list.Links, ps.Len(), box, 1, nil)
	}
	b.ReportMetric(float64(len(list.Links)), "links")
}

func benchUpdater(b *testing.B, method shm.Method, threads int) {
	ps, list, box, sp := benchSystem(b, 3, 50_000, 1.5)
	tm := shm.NewTeam(threads, shm.Costs{})
	u := shm.NewUpdater(method)
	u.Prepare(list.Links, ps.Len(), ps.Len(), threads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.ZeroForces()
		u.Accumulate(tm, sp, ps, list.Links, len(list.Links), ps.Len(), box)
	}
}

func BenchmarkUpdaterAtomicT4(b *testing.B)         { benchUpdater(b, shm.Atomic, 4) }
func BenchmarkUpdaterSelectedAtomicT4(b *testing.B) { benchUpdater(b, shm.SelectedAtomic, 4) }
func BenchmarkUpdaterStripeT4(b *testing.B)         { benchUpdater(b, shm.Stripe, 4) }
func BenchmarkUpdaterTransposeT4(b *testing.B)      { benchUpdater(b, shm.Transpose, 4) }

func BenchmarkLinkListBuild3D(b *testing.B) {
	cfg := core.Default(3, 50_000)
	box := cfg.Box()
	ps := particle.New(3, cfg.N)
	rng := rand.New(rand.NewSource(1))
	particle.FillUniform(ps, cfg.N, box, 0, rng)
	rc := cfg.RC()
	g := cell.NewGrid(3, geom.Vec{}, box.Len, rc, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Bin(&ps.Pos, cfg.N, nil)
		g.BuildLinks(&ps.Pos, cfg.N, cfg.N, rc*rc, box, nil)
	}
}

func BenchmarkIntegrate3D(b *testing.B) {
	ps, _, box, _ := benchSystem(b, 3, 50_000, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		force.Integrate(ps, ps.Len(), 1e-6, box, force.WrapGlobal, nil)
	}
}

func BenchmarkConflictTableBuild(b *testing.B) {
	ps, list, _, _ := benchSystem(b, 3, 50_000, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shm.BuildConflictTable(list.Links, ps.Len(), ps.Len(), 4)
	}
}

func BenchmarkHybridIteration(b *testing.B) {
	// One full hybrid step cycle at bench scale, wall-clock.
	cfg := core.Default(3, 20_000)
	cfg.Mode = core.Hybrid
	cfg.P, cfg.T = 2, 2
	cfg.BlocksPerProc = 2
	cfg.Method = shm.SelectedAtomic
	cfg.Platform = machine.CompaqES40()
	cfg.Warmup = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, 3); err != nil {
			b.Fatal(err)
		}
	}
}
