package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecOps(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, -5, 6}
	if got := Add(a, b, 3); got != (Vec{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b, 3); got != (Vec{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 2, 3); got != (Vec{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := Dot(a, b, 3); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2(a, 2); got != 5 {
		t.Errorf("Norm2 d=2 = %v", got)
	}
	if got := Norm(Vec{3, 4}, 2); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestVecDimensionality(t *testing.T) {
	// Operations over d components must ignore the rest.
	a := Vec{1, 2, 99}
	b := Vec{5, 5, 99}
	if got := Add(a, b, 2); got[2] != 0 {
		t.Errorf("Add leaked dimension 3: %v", got)
	}
	if got := Dot(a, b, 2); got != 15 {
		t.Errorf("Dot d=2 = %v", got)
	}
}

func TestNewBoxPanics(t *testing.T) {
	for _, tc := range []struct {
		d int
		l float64
	}{{0, 1}, {4, 1}, {2, 0}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBox(%d, %g) did not panic", tc.d, tc.l)
				}
			}()
			NewBox(tc.d, tc.l, Periodic)
		}()
	}
}

func TestBoxVolumeContains(t *testing.T) {
	b := NewBox(3, 2, Periodic)
	if b.Volume() != 8 {
		t.Errorf("volume = %g", b.Volume())
	}
	if !b.Contains(Vec{0, 0, 0}) || !b.Contains(Vec{1.999, 1.999, 1.999}) {
		t.Error("Contains rejects interior points")
	}
	if b.Contains(Vec{2, 0, 0}) || b.Contains(Vec{-0.001, 0, 0}) {
		t.Error("Contains accepts exterior points")
	}
}

func TestPeriodicWrapProperty(t *testing.T) {
	b := NewBox(3, 7.5, Periodic)
	f := func(x, y, z float64) bool {
		p, _ := b.Wrap(Vec{x, y, z})
		return b.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicWrapPreservesModulo(t *testing.T) {
	b := NewBox(2, 10, Periodic)
	p, _ := b.Wrap(Vec{23, -7})
	if !almostEq(p[0], 3, 1e-12) || !almostEq(p[1], 3, 1e-12) {
		t.Errorf("wrap(23,-7) = %v", p)
	}
}

func TestReflectingWrap(t *testing.T) {
	b := NewBox(1, 10, Reflecting)
	cases := []struct {
		in, out float64
		flip    bool
	}{
		{5, 5, false},
		{12, 8, true},   // one bounce off the top
		{-3, 3, true},   // one bounce off the bottom
		{23, 3, false},  // 23 -> fold period 20 -> 3, even bounces
		{-13, 7, false}, // -13 -> 7 with two bounces
	}
	for _, c := range cases {
		p, flip := b.Wrap(Vec{c.in})
		if !almostEq(p[0], c.out, 1e-9) || flip[0] != c.flip {
			t.Errorf("reflect(%g) = %g flip=%v, want %g flip=%v", c.in, p[0], flip[0], c.out, c.flip)
		}
	}
}

func TestReflectingWrapProperty(t *testing.T) {
	b := NewBox(2, 4, Reflecting)
	f := func(x, y float64) bool {
		p, _ := b.Wrap(Vec{x, y})
		return b.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMinimumImageDisp(t *testing.T) {
	b := NewBox(2, 10, Periodic)
	d := b.Disp(Vec{9.5, 0}, Vec{0.5, 0})
	if !almostEq(d[0], 1, 1e-12) {
		t.Errorf("min image across boundary = %v", d)
	}
	d = b.Disp(Vec{0.5, 0}, Vec{9.5, 0})
	if !almostEq(d[0], -1, 1e-12) {
		t.Errorf("min image reverse = %v", d)
	}
	// Plain difference without periodicity.
	r := NewBox(2, 10, Reflecting)
	d = r.Disp(Vec{9.5, 0}, Vec{0.5, 0})
	if !almostEq(d[0], -9, 1e-12) {
		t.Errorf("plain disp = %v", d)
	}
}

func TestDispAntisymmetryProperty(t *testing.T) {
	b := NewBox(3, 6, Periodic)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		var p, q Vec
		for k := 0; k < 3; k++ {
			p[k] = rng.Float64() * 6
			q[k] = rng.Float64() * 6
		}
		d1 := b.Disp(p, q)
		d2 := b.Disp(q, p)
		for k := 0; k < 3; k++ {
			if !almostEq(d1[k], -d2[k], 1e-12) {
				t.Fatalf("Disp not antisymmetric at %v %v: %v vs %v", p, q, d1, d2)
			}
		}
	}
}

func TestMinimumImageIsShortest(t *testing.T) {
	b := NewBox(2, 5, Periodic)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		var p, q Vec
		for k := 0; k < 2; k++ {
			p[k] = rng.Float64() * 5
			q[k] = rng.Float64() * 5
		}
		got := b.Dist2(p, q)
		// Brute force over the 9 images.
		best := math.Inf(1)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				img := Vec{q[0] + 5*float64(dx), q[1] + 5*float64(dy)}
				d := Sub(img, p, 2)
				if n := Norm2(d, 2); n < best {
					best = n
				}
			}
		}
		if !almostEq(got, best, 1e-9) {
			t.Fatalf("Dist2(%v,%v) = %g, brute force %g", p, q, got, best)
		}
	}
}

func TestBoundaryString(t *testing.T) {
	if Periodic.String() != "periodic" || Reflecting.String() != "reflecting" {
		t.Error("Boundary.String mismatch")
	}
	if Boundary(9).String() == "" {
		t.Error("unknown boundary should still format")
	}
}
