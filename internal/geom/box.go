package geom

import (
	"fmt"
	"math"
)

// Boundary selects the boundary-condition handling of a Box.
type Boundary int

const (
	// Periodic wraps coordinates modulo the box length in every
	// dimension, and displacements use the minimum-image convention.
	Periodic Boundary = iota
	// Reflecting treats every face as a hard elastic wall: positions
	// are folded back inside and the corresponding velocity component
	// is negated by the integrator.
	Reflecting
)

func (b Boundary) String() string {
	switch b {
	case Periodic:
		return "periodic"
	case Reflecting:
		return "reflecting"
	default:
		return fmt.Sprintf("Boundary(%d)", int(b))
	}
}

// Box is a D-dimensional rectangular simulation domain with its lower
// corner at the origin. The paper's benchmark uses an L^D box; we allow
// unequal edge lengths because sub-blocks of a decomposed domain are
// themselves boxes.
type Box struct {
	D   int      // active dimensionality, 1..MaxD
	Len Vec      // edge lengths; components beyond D are zero
	BC  Boundary // boundary condition on the outer walls
}

// NewBox returns a cubic L^d box with the given boundary condition.
func NewBox(d int, l float64, bc Boundary) Box {
	if d < 1 || d > MaxD {
		panic(fmt.Sprintf("geom: dimension %d out of range [1,%d]", d, MaxD))
	}
	if l <= 0 {
		panic(fmt.Sprintf("geom: non-positive box length %g", l))
	}
	var b Box
	b.D = d
	b.BC = bc
	for i := 0; i < d; i++ {
		b.Len[i] = l
	}
	return b
}

// Volume returns the D-dimensional volume of the box.
func (b Box) Volume() float64 {
	v := 1.0
	for i := 0; i < b.D; i++ {
		v *= b.Len[i]
	}
	return v
}

// Contains reports whether p lies inside the half-open box [0, Len).
func (b Box) Contains(p Vec) bool {
	for i := 0; i < b.D; i++ {
		if p[i] < 0 || p[i] >= b.Len[i] {
			return false
		}
	}
	return true
}

// Wrap folds position p back into the box according to the boundary
// condition. For Reflecting boxes it also reports, per dimension,
// whether the velocity component must be negated (an odd number of
// reflections). The returned Vec is the folded position; flip[i] is
// true when dimension i reflected an odd number of times.
func (b Box) Wrap(p Vec) (Vec, [MaxD]bool) {
	var flip [MaxD]bool
	switch b.BC {
	case Periodic:
		for i := 0; i < b.D; i++ {
			l := b.Len[i]
			x := math.Mod(p[i], l)
			if x < 0 {
				x += l
			}
			// math.Mod can return exactly l for x slightly below 0
			// due to rounding; fold once more to stay half-open.
			if x >= l {
				x -= l
			}
			p[i] = x
		}
	case Reflecting:
		for i := 0; i < b.D; i++ {
			l := b.Len[i]
			x := p[i]
			// Fold into [0, 2l) with period 2l, then reflect the
			// upper half. Using the analytic fold keeps this O(1)
			// for arbitrarily distant coordinates.
			period := 2 * l
			x = math.Mod(x, period)
			if x < 0 {
				x += period
			}
			if x >= l {
				x = period - x
				flip[i] = true
			}
			// Guard against x == l from rounding at the fold point.
			if x >= l {
				x = math.Nextafter(l, 0)
			}
			p[i] = x
		}
	}
	return p, flip
}

// Disp returns the displacement from a to b honouring the boundary
// condition: for Periodic boxes this is the minimum-image displacement,
// otherwise the plain difference.
func (b Box) Disp(from, to Vec) Vec {
	d := Sub(to, from, b.D)
	if b.BC == Periodic {
		for i := 0; i < b.D; i++ {
			l := b.Len[i]
			if d[i] > l/2 {
				d[i] -= l
			} else if d[i] < -l/2 {
				d[i] += l
			}
		}
	}
	return d
}

// Dist2 returns the squared distance between p and q under the box's
// boundary condition.
func (b Box) Dist2(p, q Vec) float64 {
	d := b.Disp(p, q)
	return Norm2(d, b.D)
}
