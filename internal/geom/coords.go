package geom

// Coords is component-major (structure-of-arrays) storage for particle
// vectors: Coords[k][i] is component k of particle i. A d-dimensional
// system populates only the first d component slices; the rest stay
// nil. The layout is the cache optimisation the paper attributes to
// memory order: a kernel that walks one component walks one contiguous
// stream of float64s, so the force loop's loads vectorise and never
// drag the other components' cache lines through the core.
//
// Coords is plain storage like Vec: every operation takes the active
// dimensionality d explicitly. Helper methods gather to and scatter
// from Vec at the boundaries; hot kernels index the component slices
// directly.
type Coords [MaxD][]float64

// MakeCoords returns component storage for d dimensions with capacity
// hint n and length zero.
func MakeCoords(d, n int) Coords {
	var c Coords
	for k := 0; k < d; k++ {
		c[k] = make([]float64, 0, n)
	}
	return c
}

// Len returns the number of stored vectors.
func (c *Coords) Len() int { return len(c[0]) }

// At gathers vector i into a Vec (components beyond d are zero).
func (c *Coords) At(i, d int) Vec {
	var v Vec
	for k := 0; k < d; k++ {
		v[k] = c[k][i]
	}
	return v
}

// Set scatters v into slot i.
func (c *Coords) Set(i int, v Vec, d int) {
	for k := 0; k < d; k++ {
		c[k][i] = v[k]
	}
}

// Append adds v at the end.
func (c *Coords) Append(v Vec, d int) {
	for k := 0; k < d; k++ {
		c[k] = append(c[k], v[k])
	}
}

// Truncate shrinks to n vectors, retaining capacity.
func (c *Coords) Truncate(n, d int) {
	for k := 0; k < d; k++ {
		c[k] = c[k][:n]
	}
}

// CopyWithin copies vector src into slot dst (the swap-delete move).
func (c *Coords) CopyWithin(dst, src, d int) {
	for k := 0; k < d; k++ {
		c[k][dst] = c[k][src]
	}
}

// AppendCoords appends the first n vectors of src.
func (c *Coords) AppendCoords(src *Coords, n, d int) {
	for k := 0; k < d; k++ {
		c[k] = append(c[k], src[k][:n]...)
	}
}

// SubAt returns vector j minus vector i over the first d components —
// the component-major equivalent of Sub(c.At(j), c.At(i), d), and
// bit-identical to it.
func SubAt(c *Coords, j, i int32, d int) Vec {
	var r Vec
	for k := 0; k < d; k++ {
		r[k] = c[k][j] - c[k][i]
	}
	return r
}

// DispAt returns the boundary-honouring displacement from vector i to
// vector j of c, bit-identical to Disp(c.At(i), c.At(j)).
func (b Box) DispAt(c *Coords, i, j int32) Vec {
	var r Vec
	if b.BC == Periodic {
		for k := 0; k < b.D; k++ {
			dx := c[k][j] - c[k][i]
			l := b.Len[k]
			if dx > l/2 {
				dx -= l
			} else if dx < -l/2 {
				dx += l
			}
			r[k] = dx
		}
	} else {
		for k := 0; k < b.D; k++ {
			r[k] = c[k][j] - c[k][i]
		}
	}
	return r
}

// Dist2At returns the squared distance between vectors i and j of c
// under the box's boundary condition, bit-identical to
// Dist2(c.At(i), c.At(j)): the minimum image is applied per component
// and the squares are summed in component order.
func (b Box) Dist2At(c *Coords, i, j int32) float64 {
	r2 := 0.0
	if b.BC == Periodic {
		for k := 0; k < b.D; k++ {
			dx := c[k][j] - c[k][i]
			l := b.Len[k]
			if dx > l/2 {
				dx -= l
			} else if dx < -l/2 {
				dx += l
			}
			r2 += dx * dx
		}
	} else {
		for k := 0; k < b.D; k++ {
			dx := c[k][j] - c[k][i]
			r2 += dx * dx
		}
	}
	return r2
}

// Dist2To returns the squared distance between vector i of a and
// vector i of c, bit-identical to Dist2(a.At(i), c.At(i)).
func (b Box) Dist2To(a, c *Coords, i int) float64 {
	r2 := 0.0
	if b.BC == Periodic {
		for k := 0; k < b.D; k++ {
			dx := c[k][i] - a[k][i]
			l := b.Len[k]
			if dx > l/2 {
				dx -= l
			} else if dx < -l/2 {
				dx += l
			}
			r2 += dx * dx
		}
	} else {
		for k := 0; k < b.D; k++ {
			dx := c[k][i] - a[k][i]
			r2 += dx * dx
		}
	}
	return r2
}

// CoordsFromVecs builds component-major storage from a slice of Vec
// values — the array-of-structures to structure-of-arrays conversion,
// used at API boundaries and in tests.
func CoordsFromVecs(vs []Vec, d int) Coords {
	c := MakeCoords(d, len(vs))
	for _, v := range vs {
		c.Append(v, d)
	}
	return c
}

// Vecs gathers the first n vectors back into a []Vec — the inverse of
// CoordsFromVecs.
func (c *Coords) Vecs(n, d int) []Vec {
	out := make([]Vec, n)
	for i := 0; i < n; i++ {
		out[i] = c.At(i, d)
	}
	return out
}
