// Package geom provides the small amount of D-dimensional geometry the
// DEM code needs: fixed-size vectors usable in 1, 2 or 3 dimensions,
// rectangular simulation boxes with periodic or reflecting walls, and
// minimum-image displacement.
//
// The paper's test code "works in an arbitrary number of dimensions D";
// in practice it is benchmarked at D=2 and D=3. We support D in [1,3]
// with a fixed-size array type so that vectors never allocate.
package geom

import (
	"fmt"
	"math"
)

// MaxD is the largest supported spatial dimensionality.
const MaxD = 3

// Vec is a point or displacement in up to MaxD dimensions. Components
// beyond the active dimensionality D must be zero; all operations take
// the active D explicitly so that a Vec is just plain storage.
type Vec [MaxD]float64

// Zero returns the zero vector.
func Zero() Vec { return Vec{} }

// Add returns a + b over the first d components.
func Add(a, b Vec, d int) Vec {
	var r Vec
	for i := 0; i < d; i++ {
		r[i] = a[i] + b[i]
	}
	return r
}

// Sub returns a - b over the first d components.
func Sub(a, b Vec, d int) Vec {
	var r Vec
	for i := 0; i < d; i++ {
		r[i] = a[i] - b[i]
	}
	return r
}

// Scale returns s*a over the first d components.
func Scale(a Vec, s float64, d int) Vec {
	var r Vec
	for i := 0; i < d; i++ {
		r[i] = s * a[i]
	}
	return r
}

// Dot returns the inner product over the first d components.
func Dot(a, b Vec, d int) float64 {
	s := 0.0
	for i := 0; i < d; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns |a|^2 over the first d components.
func Norm2(a Vec, d int) float64 { return Dot(a, a, d) }

// Norm returns |a| over the first d components.
func Norm(a Vec, d int) float64 { return math.Sqrt(Norm2(a, d)) }

// String formats the first MaxD components.
func (v Vec) String() string {
	return fmt.Sprintf("(%g, %g, %g)", v[0], v[1], v[2])
}
