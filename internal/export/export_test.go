package export

import (
	"bytes"
	"encoding/csv"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

func sampleStore() *particle.Store {
	ps := particle.New(2, 3)
	ps.Append(geom.Vec{0.1, 0.2}, geom.Vec{1, -1}, 7)
	ps.Append(geom.Vec{0.3, 0.4}, geom.Vec{0, 2}, 8)
	ps.Append(geom.Vec{0.5, 0.6}, geom.Vec{-3, 0}, 9)
	return ps
}

func TestWriteVTKStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVTK(&buf, sampleStore(), 3, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET POLYDATA",
		"POINTS 3 double",
		"0.1 0.2 0", // 2-D z padded with zero
		"VECTORS velocity double",
		"SCALARS id int 1",
		"LOOKUP_TABLE default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 5+3+2+3+2+3 {
		t.Errorf("VTK line count %d", got)
	}
}

func TestWriteXYZStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, sampleStore(), 3, [3]float64{1, 1, 0}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("XYZ has %d lines", len(lines))
	}
	if lines[0] != "3" {
		t.Errorf("count line %q", lines[0])
	}
	if !strings.Contains(lines[1], "Lattice=") || !strings.Contains(lines[1], "Properties=") {
		t.Errorf("comment line %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "P 0.1 0.2 0 1 -1 0 7") {
		t.Errorf("first particle line %q", lines[2])
	}
}

func TestWriteCSVParsesBack(t *testing.T) {
	var buf bytes.Buffer
	ps := sampleStore()
	if err := WriteCSV(&buf, ps, 3); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d CSV rows", len(rows))
	}
	if strings.Join(rows[0], ",") != "id,x0,x1,v0,v1" {
		t.Errorf("header %v", rows[0])
	}
	for i := 1; i < 4; i++ {
		id, _ := strconv.Atoi(rows[i][0])
		if int32(id) != ps.ID[i-1] {
			t.Errorf("row %d id %d", i, id)
		}
		x, _ := strconv.ParseFloat(rows[i][1], 64)
		if x != ps.Pos[0][i-1] {
			t.Errorf("row %d x %g", i, x)
		}
	}
}

func TestSaveFileByExtension(t *testing.T) {
	dir := t.TempDir()
	ps := sampleStore()
	for _, name := range []string{"a.vtk", "a.xyz", "a.csv"} {
		if err := SaveFile(filepath.Join(dir, name), ps, 3, [3]float64{1, 1, 0}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := SaveFile(filepath.Join(dir, "a.dat"), ps, 3, [3]float64{1, 1, 0}); err == nil {
		t.Error("unknown extension accepted")
	}
}
