// Package export writes particle states in the formats downstream
// visualisation tools ingest: legacy VTK polydata (ParaView),
// extended XYZ (OVITO) and CSV.
package export

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"hybriddem/internal/particle"
)

// WriteVTK writes the first n particles as legacy-ASCII VTK polydata
// with velocity vectors and particle IDs attached as point data.
func WriteVTK(w io.Writer, ps *particle.Store, n int, title string) error {
	bw := bufio.NewWriter(w)
	d := ps.D
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET POLYDATA")
	fmt.Fprintf(bw, "POINTS %d double\n", n)
	for i := 0; i < n; i++ {
		p := ps.PosAt(i)
		fmt.Fprintf(bw, "%g %g %g\n", p[0], dim(p, 1, d), dim(p, 2, d))
	}
	fmt.Fprintf(bw, "POINT_DATA %d\n", n)
	fmt.Fprintln(bw, "VECTORS velocity double")
	for i := 0; i < n; i++ {
		v := ps.VelAt(i)
		fmt.Fprintf(bw, "%g %g %g\n", v[0], dim(v, 1, d), dim(v, 2, d))
	}
	fmt.Fprintln(bw, "SCALARS id int 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "%d\n", ps.ID[i])
	}
	return bw.Flush()
}

// dim returns component k of a vector, zero beyond the active
// dimensionality.
func dim(v [3]float64, k, d int) float64 {
	if k < d {
		return v[k]
	}
	return 0
}

// WriteXYZ writes the first n particles in extended-XYZ format with a
// Lattice comment for the box and per-particle velocities.
func WriteXYZ(w io.Writer, ps *particle.Store, n int, boxLen [3]float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", n)
	fmt.Fprintf(bw, "Lattice=\"%g 0 0 0 %g 0 0 0 %g\" Properties=species:S:1:pos:R:3:velo:R:3:id:I:1\n",
		boxLen[0], boxLen[1], boxLen[2])
	d := ps.D
	for i := 0; i < n; i++ {
		p, v := ps.PosAt(i), ps.VelAt(i)
		fmt.Fprintf(bw, "P %g %g %g %g %g %g %d\n",
			p[0], dim(p, 1, d), dim(p, 2, d),
			v[0], dim(v, 1, d), dim(v, 2, d), ps.ID[i])
	}
	return bw.Flush()
}

// WriteCSV writes the first n particles as a CSV table with a header.
func WriteCSV(w io.Writer, ps *particle.Store, n int) error {
	bw := bufio.NewWriter(w)
	d := ps.D
	fmt.Fprint(bw, "id")
	for k := 0; k < d; k++ {
		fmt.Fprintf(bw, ",x%d", k)
	}
	for k := 0; k < d; k++ {
		fmt.Fprintf(bw, ",v%d", k)
	}
	fmt.Fprintln(bw)
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "%d", ps.ID[i])
		for k := 0; k < d; k++ {
			fmt.Fprintf(bw, ",%g", ps.Pos[k][i])
		}
		for k := 0; k < d; k++ {
			fmt.Fprintf(bw, ",%g", ps.Vel[k][i])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// SaveFile writes the store to path in the format chosen by the
// extension: .vtk, .xyz or .csv.
func SaveFile(path string, ps *particle.Store, n int, boxLen [3]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case hasSuffix(path, ".vtk"):
		err = WriteVTK(f, ps, n, "hybriddem state")
	case hasSuffix(path, ".xyz"):
		err = WriteXYZ(f, ps, n, boxLen)
	case hasSuffix(path, ".csv"):
		err = WriteCSV(f, ps, n)
	default:
		err = fmt.Errorf("export: unknown extension in %q (want .vtk, .xyz or .csv)", path)
	}
	if err != nil {
		return err
	}
	return f.Sync()
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
