package verify

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hybriddem/internal/geom"
)

// Golden trajectories pin the simulation's exact floating-point output
// across refactors: a file written before an invasive change (such as
// the SoA particle-store rewrite) is the executable definition of "the
// physics did not move". The format is framed like a checkpoint —
// magic, payload length, FNV-1a checksum, gob payload — so a torn or
// corrupted file surfaces as an error, never as a bogus comparison.
//
// The wire form stores per-step positions and velocities indexed by
// particle ID as plain []geom.Vec, deliberately independent of the
// particle store's in-memory layout: the golden outlives layout
// changes by construction.

var goldenMagic = [8]byte{'H', 'Y', 'D', 'E', 'M', 'G', 'T', '1'}

const goldenHeaderLen = 24

// goldenMaxPayload bounds the length field so a corrupt header cannot
// force a huge allocation.
const goldenMaxPayload = 1 << 31 // 2 GiB

func goldenFNV1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// goldenWire is the gob payload of a golden trajectory file.
type goldenWire struct {
	Box   geom.Box
	Steps []Step
}

// SaveGolden writes tr in the framed golden format.
func SaveGolden(w io.Writer, tr *Trajectory) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(goldenWire{Box: tr.Box, Steps: tr.Steps}); err != nil {
		return fmt.Errorf("verify: golden encode: %w", err)
	}
	var hdr [goldenHeaderLen]byte
	copy(hdr[:8], goldenMagic[:])
	binary.BigEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	binary.BigEndian.PutUint64(hdr[16:24], goldenFNV1a(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("verify: golden: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("verify: golden: %w", err)
	}
	return nil
}

// LoadGolden reads a trajectory written by SaveGolden, validating the
// frame before decoding.
func LoadGolden(r io.Reader) (*Trajectory, error) {
	var hdr [goldenHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("verify: golden short header: %w", err)
	}
	if !bytes.Equal(hdr[:8], goldenMagic[:]) {
		return nil, fmt.Errorf("verify: golden bad magic %q", hdr[:8])
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	if n > goldenMaxPayload {
		return nil, fmt.Errorf("verify: golden implausible payload length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("verify: golden truncated payload: %w", err)
	}
	if got, want := goldenFNV1a(payload), binary.BigEndian.Uint64(hdr[16:24]); got != want {
		return nil, fmt.Errorf("verify: golden checksum mismatch")
	}
	var wire goldenWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("verify: golden decode: %w", err)
	}
	return &Trajectory{Box: wire.Box, Steps: wire.Steps}, nil
}

// SaveGoldenFile writes tr to path atomically (temp file + rename).
func SaveGoldenFile(path string, tr *Trajectory) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = SaveGolden(f, tr); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadGoldenFile reads a golden trajectory from a file.
func LoadGoldenFile(path string) (*Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadGolden(f)
}
