package verify

import (
	"fmt"
	"math"
	"math/rand"

	"hybriddem/internal/core"
	"hybriddem/internal/geom"
	"hybriddem/internal/grain"
)

// Kind selects a scenario family for the seeded generator. The five
// families stress different parts of the machinery: uniform fills are
// the paper's benchmark, clustered fills exercise load imbalance and
// the damped halo-velocity path, bonded grains push composite IDs
// through block boundaries, degenerate grids place particles exactly
// on cell and box boundaries (and at the exact contact distance), and
// near-boundary placements crowd the periodic faces where wrapping,
// migration and halo construction are most fragile.
type Kind int

const (
	Uniform Kind = iota
	Clustered
	BondedGrains
	DegenerateGrid
	NearBoundary
)

// Kinds lists every scenario family.
var Kinds = []Kind{Uniform, Clustered, BondedGrains, DegenerateGrid, NearBoundary}

func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case BondedGrains:
		return "bonded-grains"
	case DegenerateGrid:
		return "degenerate-grid"
	case NearBoundary:
		return "near-boundary"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scenario builds a deterministic initial condition of family k with
// about n particles (BondedGrains rounds down to whole grains) in d
// dimensions at the paper's density. The returned configuration runs
// serially with a periodic box and an explicit Init state, so callers
// can transform the initial condition (metamorphic oracles) or switch
// execution modes (differential oracles) freely.
func Scenario(k Kind, d, n int, seed int64) (core.Config, error) {
	if n < 2 {
		return core.Config{}, fmt.Errorf("verify: scenario needs n >= 2, got %d", n)
	}
	cfg := core.Default(d, n)
	cfg.Seed = seed
	cfg.CollectState = true
	rng := rand.New(rand.NewSource(seed))
	box := cfg.Box()

	st := &core.State{Pos: make([]geom.Vec, n), Vel: make([]geom.Vec, n)}
	randVel := func(scale float64) geom.Vec {
		var v geom.Vec
		for i := 0; i < d; i++ {
			v[i] = (2*rng.Float64() - 1) * scale
		}
		return v
	}

	switch k {
	case Uniform:
		for p := 0; p < n; p++ {
			for i := 0; i < d; i++ {
				st.Pos[p][i] = rng.Float64() * box.Len[i]
			}
			st.Vel[p] = randVel(2)
		}

	case Clustered:
		// A bed in the bottom 30% of the box, with dissipative springs
		// so halo traffic must carry velocities.
		cfg.Spring.Damp = 1.5
		for p := 0; p < n; p++ {
			for i := 0; i < d; i++ {
				st.Pos[p][i] = rng.Float64() * box.Len[i]
			}
			st.Pos[p][d-1] *= 0.3
			st.Vel[p] = randVel(1)
		}

	case BondedGrains:
		shape := grain.Dimer
		grains := n / shape.Size()
		if grains < 1 {
			return core.Config{}, fmt.Errorf("verify: n=%d too small for %v grains", n, shape)
		}
		cfg.N = grains * shape.Size()
		cfg.L *= 2 // dilute so randomly oriented grains do not jam
		box = cfg.Box()
		gs, bonds, err := grain.Build(grain.Config{
			D: d, Shape: shape, Grains: grains,
			Diameter: cfg.Spring.Diameter,
			Box:      box,
			BondK:    cfg.Spring.K, BondDamp: 2,
			Seed: seed,
		})
		if err != nil {
			return core.Config{}, err
		}
		st = &core.State{Pos: gs.Pos, Vel: make([]geom.Vec, cfg.N)}
		for p := 0; p < cfg.N; p++ {
			st.Vel[p] = randVel(1)
		}
		cfg.Spring.Bonds = bonds
		cfg.Spring.Damp = 0.5

	case DegenerateGrid:
		// Particles exactly on a lattice whose spacing matches the mean
		// spacing at the paper's density: neighbours sit exactly at the
		// contact distance and lattice planes land exactly on cell and
		// box boundaries (coordinate 0), the >= / < edge cases of the
		// binning and the contact law.
		m := int(math.Ceil(math.Pow(float64(n), 1/float64(d))))
		spacing := box.Len[0] / float64(m)
		var c [geom.MaxD]int
		for p := 0; p < n; p++ {
			for i := 0; i < d; i++ {
				st.Pos[p][i] = float64(c[i]) * spacing
			}
			st.Vel[p] = randVel(0.5)
			for i := d - 1; i >= 0; i-- {
				c[i]++
				if c[i] < m {
					break
				}
				c[i] = 0
			}
		}

	case NearBoundary:
		// Half the particles hug a periodic face to within a hair (some
		// exactly on it), the rest fill the box; wrapping, migration
		// and halo slabs all operate right at their branch points.
		eps := 1e-9 * box.Len[0]
		for p := 0; p < n; p++ {
			for i := 0; i < d; i++ {
				st.Pos[p][i] = rng.Float64() * box.Len[i]
			}
			if p%2 == 0 {
				dim := rng.Intn(d)
				off := eps * rng.Float64()
				if p%8 == 0 {
					off = 0 // exactly on the face
				}
				if p%4 == 0 {
					st.Pos[p][dim] = off
				} else {
					st.Pos[p][dim] = box.Len[dim] - off
				}
			}
			st.Vel[p] = randVel(1)
		}

	default:
		return core.Config{}, fmt.Errorf("verify: unknown scenario kind %v", k)
	}

	// Normalise positions into [0, L) so every placement is a valid
	// home-block coordinate.
	for p := range st.Pos {
		st.Pos[p], _ = box.Wrap(st.Pos[p])
	}
	cfg.Init = st
	return cfg, nil
}
