package verify

import (
	"flag"
	"fmt"
	"path/filepath"
	"testing"

	"hybriddem/internal/core"
	"hybriddem/internal/shm"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the seed golden trajectories from the current code (only valid on a bit-exact baseline)")

// soaGoldenMode is one execution shape replayed against the seed
// goldens. The four modes cover every driver the SoA storage rewrite
// touched; the fused variant additionally covers the whole-rank fused
// kernel.
type soaGoldenMode struct {
	name   string
	mutate func(*core.Config)
}

var soaGoldenModes = []soaGoldenMode{
	{"serial", func(c *core.Config) {}},
	{"openmp", func(c *core.Config) {
		c.Mode = core.OpenMP
		c.T = 3
		c.Method = shm.SelectedAtomic
	}},
	{"mpi", func(c *core.Config) {
		c.Mode = core.MPI
		c.P = 2
		c.BlocksPerProc = 2
	}},
	{"hybrid", func(c *core.Config) {
		c.Mode = core.Hybrid
		c.P, c.T = 2, 2
		c.BlocksPerProc = 2
		c.Method = shm.SelectedAtomic
	}},
	{"hybrid-fused", func(c *core.Config) {
		c.Mode = core.Hybrid
		c.P, c.T = 2, 2
		c.BlocksPerProc = 2
		c.Method = shm.Atomic
		c.Fused = true
	}},
}

// soaGoldenCase pins one scenario family at one dimensionality. The
// time step is raised well above the default so the short captured
// window crosses at least one list rebuild — the goldens must witness
// migration, reordering and halo reconstruction, not just the smooth
// inner loop.
type soaGoldenCase struct {
	kind Kind
	d, n int
}

var soaGoldenCases = []soaGoldenCase{
	// d=3 cases need enough particles that the box still splits into
	// the 4 decomposed blocks without an edge dropping below the
	// cutoff.
	{Uniform, 2, 48},
	{Clustered, 3, 256},
	{BondedGrains, 2, 48},
	{DegenerateGrid, 2, 49},
	{NearBoundary, 3, 256},
}

const soaGoldenIters = 14

func soaGoldenConfig(t *testing.T, c soaGoldenCase) core.Config {
	t.Helper()
	cfg, err := Scenario(c.kind, c.d, c.n, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Faster motion so the 14-step window rebuilds the lists at least
	// once (skin/velocity gives roughly one rebuild per 6 steps).
	cfg.Dt = 1e-3
	return cfg
}

// TestSoABitIdenticalToSeed replays the five seeded scenario families
// through all four execution modes (plus the fused hybrid kernel) and
// demands CompareExact equality with golden trajectories captured
// before the structure-of-arrays storage refactor. Any reassociation
// of floating-point arithmetic in the particle store, the link
// builder, the pair kernel, the integrator, the halo exchange or the
// reduction strategies fails this test with the first divergent step,
// particle and component.
//
// Regenerate (only from a known bit-exact baseline!) with:
//
//	go test ./internal/verify -run TestSoABitIdenticalToSeed -update-golden
func TestSoABitIdenticalToSeed(t *testing.T) {
	for _, c := range soaGoldenCases {
		c := c
		for _, m := range soaGoldenModes {
			m := m
			name := fmt.Sprintf("%v-d%d/%s", c.kind, c.d, m.name)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := soaGoldenConfig(t, c)
				m.mutate(&cfg)
				if err := cfg.Validate(); err != nil {
					t.Fatal(err)
				}
				tr, err := Capture(cfg, soaGoldenIters)
				if err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata",
					fmt.Sprintf("soa_%v_d%d_%s.golden", c.kind, c.d, m.name))
				if *updateGolden {
					if err := SaveGoldenFile(path, tr); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d steps)", path, len(tr.Steps))
					return
				}
				want, err := LoadGoldenFile(path)
				if err != nil {
					t.Fatalf("%v (regenerate from a bit-exact baseline with -update-golden)", err)
				}
				if dv := CompareExact(want, tr); dv != nil {
					t.Fatalf("trajectory diverged from the pre-SoA seed golden: %v", dv)
				}
			})
		}
	}
}

// TestGoldenRoundTrip exercises the golden file format itself:
// save/load is lossless, and a corrupted byte is detected by the
// frame checksum rather than silently decoding.
func TestGoldenRoundTrip(t *testing.T) {
	cfg := soaGoldenConfig(t, soaGoldenCases[0])
	tr, err := Capture(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rt.golden")
	if err := SaveGoldenFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGoldenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dv := CompareExact(tr, got); dv != nil {
		t.Fatalf("round trip not lossless: %v", dv)
	}
}
