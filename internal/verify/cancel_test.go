package verify

import (
	"errors"
	"testing"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/core"
	"hybriddem/internal/geom"
)

// cancelConfig is a deliberately lively system: enough velocity and a
// tight cutoff so the link list rebuilds every handful of steps, which
// is where latched Stop requests are honoured.
func cancelConfig(d, n int) core.Config {
	cfg := core.Default(d, n)
	cfg.Seed = 17
	cfg.InitVel = 4
	cfg.RCFactor = 1.2
	cfg.Warmup = 1
	return cfg
}

// captureUntilCanceled runs cfg with a Stop hook that latches once
// reqAt steps have been recorded, returning the partial trajectory and
// result. The run is expected to end in core.ErrCanceled at the first
// rebuild boundary after the request.
func captureUntilCanceled(t *testing.T, cfg core.Config, iters, reqAt int) (*Trajectory, *core.Result) {
	t.Helper()
	tr := &Trajectory{Box: cfg.Box()}
	cfg.CollectState = true
	cfg.Probe = func(iter int, pos, vel []geom.Vec) {
		tr.Steps = append(tr.Steps, Step{Pos: pos, Vel: vel})
	}
	cfg.Stop = func() bool { return len(tr.Steps) >= reqAt }
	res, err := core.Run(cfg, iters)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("run with a firing Stop hook returned %v, want core.ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
	if res.Iters < reqAt || res.Iters >= iters {
		t.Fatalf("canceled run completed %d iterations, want mid-run in [%d, %d)", res.Iters, reqAt, iters)
	}
	if len(tr.Steps) != res.Iters {
		t.Fatalf("probe recorded %d steps, result reports %d", len(tr.Steps), res.Iters)
	}
	if res.Pos == nil {
		t.Fatal("canceled run did not collect its final state")
	}
	tr.Res = res
	return tr, res
}

// TestCancelResumeBitIdentical is the acceptance oracle for
// cancellation: in every execution mode, a run canceled mid-flight via
// Config.Stop, checkpointed from its partial Result, and resumed from
// that checkpoint must replay the remaining steps bit-identically to
// an unbroken run. This holds because cancellation lands on list
// rebuild boundaries — the canonical states from which a fresh setup
// reproduces the exact list, reference positions and rebuild cadence
// of the uninterrupted run. It is what makes daemon-side cancel (and
// demrun's SIGINT handling) lossless rather than merely graceful.
func TestCancelResumeBitIdentical(t *testing.T) {
	const total, reqAt = 120, 3
	// The shared modes run with cache reordering off: the reorder's
	// within-cell storage order depends on the order before the
	// rebuild, which a fresh setup cannot reproduce, so bit-exact
	// resume in Serial/OpenMP needs Reorder off (see Config.Stop). The
	// distributed modes canonicalise particle order during migration
	// and keep their default reordering.
	cases := []struct {
		name string
		set  func(*core.Config)
	}{
		{"serial", func(c *core.Config) { c.Mode = core.Serial; c.Reorder = false }},
		{"openmp", func(c *core.Config) { c.Mode = core.OpenMP; c.T = 2; c.Reorder = false }},
		{"mpi", func(c *core.Config) { c.Mode = core.MPI; c.P = 2; c.BlocksPerProc = 2 }},
		{"hybrid", func(c *core.Config) { c.Mode = core.Hybrid; c.P = 2; c.T = 2 }},
		{"mpism", func(c *core.Config) { c.Mode = core.MPIsm; c.P = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := cancelConfig(2, 200)
			tc.set(&base)

			ref, err := Capture(base, total)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Cancel a few steps in and checkpoint the partial state.
			ckCfg := base
			part1, res := captureUntilCanceled(t, ckCfg, total, reqAt)
			cut := res.Iters
			snap, err := checkpoint.FromResult(&ckCfg, res, cut)
			if err != nil {
				t.Fatalf("checkpoint from canceled result: %v", err)
			}

			// Resume from the checkpoint and run the remainder. The
			// restored state already includes the warm-up, so the
			// resumed leg must not warm up again.
			resumed := base
			if err := snap.Apply(&resumed); err != nil {
				t.Fatalf("apply checkpoint: %v", err)
			}
			resumed.Warmup = 0
			part2, err := Capture(resumed, total-cut)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			combined := &Trajectory{
				Box:   ref.Box,
				Steps: append(append([]Step{}, part1.Steps...), part2.Steps...),
			}
			if dv := CompareExact(ref, combined); dv != nil {
				t.Fatalf("canceled (at step %d) + resumed trajectory diverges from the unbroken run: %v", cut, dv)
			}
		})
	}
}

// TestCancelDuringWarmupWaits pins the contract that warm-up is not
// interruptible: a Stop hook already true at launch still lets the
// warm-up finish and at least one measured step complete, keeping the
// checkpoint semantics (measured iterations only) intact.
func TestCancelDuringWarmupWaits(t *testing.T) {
	cfg := cancelConfig(2, 200)
	cfg.Warmup = 2
	cfg.CollectState = true
	cfg.Stop = func() bool { return true }
	res, err := core.Run(cfg, 120)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("run returned %v, want core.ErrCanceled", err)
	}
	if res.Iters < 1 || res.Iters >= 120 {
		t.Fatalf("completed %d measured iterations, want at least 1 (stop polls only after measured steps) and fewer than requested", res.Iters)
	}
}

// TestCancelHonoredWithoutRebuilds pins the liveness bound: a system
// too settled to ever rebuild its list still honours a Stop request
// within the documented grace window instead of running to completion.
func TestCancelHonoredWithoutRebuilds(t *testing.T) {
	cfg := core.Default(2, 200) // at rest: nothing moves far enough to rebuild
	cfg.Seed = 17
	cfg.Warmup = 0
	cfg.CollectState = true
	cfg.Stop = func() bool { return true }
	res, err := core.Run(cfg, 2000)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("run returned %v, want core.ErrCanceled", err)
	}
	if res.Iters >= 2000 {
		t.Fatalf("stop request starved: run completed all %d iterations", res.Iters)
	}
}

// TestStopHookNotFiringIsFree checks that a Stop hook that never fires
// leaves the run's outcome untouched: same trajectory, clean error.
func TestStopHookNotFiringIsFree(t *testing.T) {
	base := testScenario(t, Uniform, 2, 200, 17)
	ref, err := Capture(base, 5)
	if err != nil {
		t.Fatal(err)
	}
	hooked := base
	hooked.Stop = func() bool { return false }
	got, err := Capture(hooked, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dv := CompareExact(ref, got); dv != nil {
		t.Fatalf("an idle Stop hook changed the trajectory: %v", dv)
	}
}
