package verify

import (
	"bytes"
	"fmt"
	"math"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/core"
	"hybriddem/internal/geom"
)

// Metamorphic oracles: each Check* runs cfg (and a transformed twin)
// and asserts a symmetry that any correct DEM must satisfy, with no
// reference to a second implementation. They all return nil on
// success and an error carrying the first-divergence localization on
// failure. tol <= 0 selects DefaultTol.

// CheckReorderInvariance asserts that the cache reordering is a pure
// permutation of storage: trajectories with Reorder on and off must be
// identical particle by particle.
func CheckReorderInvariance(cfg core.Config, iters int, tol float64) error {
	on, off := cfg, cfg
	on.Reorder, off.Reorder = true, false
	a, err := Capture(on, iters)
	if err != nil {
		return err
	}
	b, err := Capture(off, iters)
	if err != nil {
		return err
	}
	if div, _ := Compare(cfg.Box(), a, b, tol); div != nil {
		return fmt.Errorf("verify: reordering changed the physics: %s", div)
	}
	return nil
}

// CheckNewtonZeroSum asserts the zero-sum consequence of Newton's
// third law: with periodic boundaries and no gravity every pair force
// cancels, so total momentum must stay at its initial value for the
// whole run (pairwise damping included — it is equal and opposite
// too).
func CheckNewtonZeroSum(cfg core.Config, iters int, tol float64) error {
	if tol <= 0 {
		tol = DefaultTol
	}
	if cfg.BC != geom.Periodic {
		return fmt.Errorf("verify: zero-sum oracle needs periodic boundaries, got %v", cfg.BC)
	}
	if cfg.Gravity != 0 {
		return fmt.Errorf("verify: zero-sum oracle needs zero gravity, got %g", cfg.Gravity)
	}
	tr, err := Capture(cfg, iters)
	if err != nil {
		return err
	}
	var ref geom.Vec
	haveRef := false
	if cfg.Init != nil {
		for _, v := range cfg.Init.Vel {
			ref = geom.Add(ref, v, cfg.D)
		}
		haveRef = true
	}
	for s, st := range tr.Steps {
		var p geom.Vec
		for _, v := range st.Vel {
			p = geom.Add(p, v, cfg.D)
		}
		if !haveRef {
			ref, haveRef = p, true
			continue
		}
		for k := 0; k < cfg.D; k++ {
			if d := math.Abs(p[k] - ref[k]); d > tol {
				return fmt.Errorf("verify: momentum drifted at step %d: component %d is %.9g, initially %.9g (|Δ| = %.3g)",
					s, k, p[k], ref[k], d)
			}
		}
	}
	return nil
}

// CheckTranslationInvariance asserts homogeneity under the periodic
// boundary: translating the whole initial state by shift and
// translating the resulting trajectory back must reproduce the
// original run. The configuration must carry an explicit Init.
func CheckTranslationInvariance(cfg core.Config, iters int, shift geom.Vec, tol float64) error {
	if cfg.BC != geom.Periodic {
		return fmt.Errorf("verify: translation oracle needs periodic boundaries, got %v", cfg.BC)
	}
	if cfg.Init == nil {
		return fmt.Errorf("verify: translation oracle needs an explicit Init state")
	}
	box := cfg.Box()
	base, err := Capture(cfg, iters)
	if err != nil {
		return err
	}
	moved := cfg
	moved.Init = &core.State{Pos: make([]geom.Vec, cfg.N), Vel: cfg.Init.Vel}
	for i, p := range cfg.Init.Pos {
		moved.Init.Pos[i], _ = box.Wrap(geom.Add(p, shift, cfg.D))
	}
	tr, err := Capture(moved, iters)
	if err != nil {
		return err
	}
	for _, st := range tr.Steps {
		for i, p := range st.Pos {
			st.Pos[i], _ = box.Wrap(geom.Sub(p, shift, cfg.D))
		}
	}
	if div, _ := Compare(box, base, tr, tol); div != nil {
		return fmt.Errorf("verify: translation by %v changed the physics: %s", shift, div)
	}
	return nil
}

// CheckAxisPermutationInvariance asserts isotropy under the cubic
// periodic box's point group: permuting the coordinate axes of the
// initial state (perm[k] is the old axis landing on new axis k) and
// permuting the trajectory back must reproduce the original run. With
// gravity the permutation must fix the last axis.
func CheckAxisPermutationInvariance(cfg core.Config, iters int, perm []int, tol float64) error {
	d := cfg.D
	if len(perm) != d {
		return fmt.Errorf("verify: permutation has %d entries for D=%d", len(perm), d)
	}
	seen := make([]bool, d)
	for _, p := range perm {
		if p < 0 || p >= d || seen[p] {
			return fmt.Errorf("verify: %v is not a permutation of the %d axes", perm, d)
		}
		seen[p] = true
	}
	box := cfg.Box()
	for k := 1; k < d; k++ {
		if box.Len[k] != box.Len[0] {
			return fmt.Errorf("verify: axis-permutation oracle needs a cubic box, got %v", box.Len)
		}
	}
	if cfg.Gravity != 0 && perm[d-1] != d-1 {
		return fmt.Errorf("verify: gravity along axis %d but perm %v moves it", d-1, perm)
	}
	if cfg.Init == nil {
		return fmt.Errorf("verify: axis-permutation oracle needs an explicit Init state")
	}
	base, err := Capture(cfg, iters)
	if err != nil {
		return err
	}
	apply := func(v geom.Vec, p []int) geom.Vec {
		var out geom.Vec
		for k := 0; k < d; k++ {
			out[k] = v[p[k]]
		}
		return out
	}
	inv := make([]int, d)
	for k, p := range perm {
		inv[p] = k
	}
	turned := cfg
	turned.Init = &core.State{Pos: make([]geom.Vec, cfg.N), Vel: make([]geom.Vec, cfg.N)}
	for i := range cfg.Init.Pos {
		turned.Init.Pos[i] = apply(cfg.Init.Pos[i], perm)
		turned.Init.Vel[i] = apply(cfg.Init.Vel[i], perm)
	}
	tr, err := Capture(turned, iters)
	if err != nil {
		return err
	}
	for _, st := range tr.Steps {
		for i := range st.Pos {
			st.Pos[i] = apply(st.Pos[i], inv)
			st.Vel[i] = apply(st.Vel[i], inv)
		}
	}
	if div, _ := Compare(box, base, tr, tol); div != nil {
		return fmt.Errorf("verify: axis permutation %v changed the physics: %s", perm, div)
	}
	return nil
}

// CheckRefinementInvariance asserts that the block-cyclic granularity
// is a pure work distribution: an MPI run on p ranks with B blocks per
// process and one with 2B must compute the same trajectory.
func CheckRefinementInvariance(cfg core.Config, iters, p, bpp int, tol float64) error {
	coarse, fine := cfg, cfg
	for _, c := range []*core.Config{&coarse, &fine} {
		c.Mode = core.MPI
		c.P, c.T = p, 1
		c.Platform = nil
	}
	coarse.BlocksPerProc = bpp
	fine.BlocksPerProc = 2 * bpp
	a, err := Capture(coarse, iters)
	if err != nil {
		return fmt.Errorf("verify: B/P=%d: %w", bpp, err)
	}
	b, err := Capture(fine, iters)
	if err != nil {
		return fmt.Errorf("verify: B/P=%d: %w", 2*bpp, err)
	}
	if div, _ := Compare(cfg.Box(), a, b, tol); div != nil {
		return fmt.Errorf("verify: refining B/P=%d to %d changed the physics: %s", bpp, 2*bpp, div)
	}
	return nil
}

// CheckCheckpointRoundTrip asserts two properties of the checkpoint
// subsystem: a snapshot survives a save/load/save cycle bit for bit,
// and a run of iters1+iters2 steps equals a run of iters1 steps
// resumed from its checkpoint for iters2 more.
func CheckCheckpointRoundTrip(cfg core.Config, iters1, iters2 int, tol float64) error {
	cfg.CollectState = true
	straight, err := Capture(cfg, iters1+iters2)
	if err != nil {
		return err
	}
	first, err := core.Run(cfg, iters1)
	if err != nil {
		return err
	}
	snap, err := checkpoint.FromResult(&cfg, first, iters1)
	if err != nil {
		return err
	}
	var buf1, buf2 bytes.Buffer
	if err := checkpoint.Save(&buf1, snap); err != nil {
		return err
	}
	loaded, err := checkpoint.Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		return err
	}
	if err := checkpoint.Save(&buf2, loaded); err != nil {
		return err
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		return fmt.Errorf("verify: checkpoint save/load/save is not bit-identical (%d vs %d bytes)",
			buf1.Len(), buf2.Len())
	}
	resumed := cfg
	if err := loaded.Apply(&resumed); err != nil {
		return err
	}
	tail, err := Capture(resumed, iters2)
	if err != nil {
		return err
	}
	// The resumed trajectory's step s corresponds to the straight
	// run's step iters1+s.
	shifted := &Trajectory{Box: straight.Box, Steps: straight.Steps[iters1:]}
	if div, _ := Compare(cfg.Box(), shifted, tail, tol); div != nil {
		div.Step += iters1
		return fmt.Errorf("verify: resumed run diverged from the straight run: %s", div)
	}
	return nil
}
