package verify

import (
	"testing"

	"hybriddem/internal/core"
	"hybriddem/internal/shm"
)

// TestOverlapBitIdenticalToSync is the acceptance oracle of the
// split-phase halo exchange: overlapping communication with the
// core-link force pass reschedules work but reassociates no
// floating-point operation, so the trajectory must match the
// synchronous exchange bit for bit — not merely within tolerance.
// Shapes cover MPI at two decompositions, both deterministic hybrid
// reductions at T=2, the lock-based strategies at T=1 (their lock
// acquisition order is only deterministic single-threaded), the fused
// loop, and a damped system whose halos carry velocities.
func TestOverlapBitIdenticalToSync(t *testing.T) {
	type shape struct {
		name   string
		kind   Kind
		mutate func(*core.Config)
	}
	shapes := []shape{
		{"mpi/p2-bpp2", Uniform, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 2, 2
		}},
		{"mpi/p4", Uniform, func(c *core.Config) {
			c.Mode = core.MPI
			c.P = 4
		}},
		{"mpi/p2-damped", Clustered, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 2, 2
			c.Spring.Damp = 2
		}},
		{"hybrid/stripe-t2", Uniform, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 2, 2
			c.Method = shm.Stripe
		}},
		{"hybrid/transpose-t2", Uniform, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 2, 2
			c.Method = shm.Transpose
		}},
		{"hybrid/selected-atomic-t1", Uniform, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 1, 2
			c.Method = shm.SelectedAtomic
		}},
		{"hybrid/fused-selected-atomic-t1", Uniform, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 1, 2
			c.Method = shm.SelectedAtomic
			c.Fused = true
		}},
	}
	for _, s := range shapes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			cfg := testScenario(t, s.kind, 2, 200, 17)
			s.mutate(&cfg)
			cfg.Overlap = false
			sync, err := Capture(cfg, 20)
			if err != nil {
				t.Fatalf("sync run: %v", err)
			}
			cfg.Overlap = true
			ovl, err := Capture(cfg, 20)
			if err != nil {
				t.Fatalf("overlap run: %v", err)
			}
			if div := CompareExact(sync, ovl); div != nil {
				t.Fatalf("overlap trajectory differs from synchronous: %s", div)
			}
		})
	}
}
