package verify

import (
	"strings"
	"testing"

	"hybriddem/internal/core"
	"hybriddem/internal/geom"
)

// float32Pair captures the same scenario through the float64 serial
// kernel and the single-precision fast path.
func float32Pair(t *testing.T, k Kind, d, n int) (*Trajectory, *Trajectory, geom.Box) {
	t.Helper()
	cfg, err := Scenario(k, d, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dt = 1e-3
	ref, err := Capture(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	cfg32 := cfg
	cfg32.Float32 = true
	got, err := Capture(cfg32, 60)
	if err != nil {
		t.Fatal(err)
	}
	return ref, got, cfg.Box()
}

// TestFloat32WithinApproxTol: the single-precision kernel must track
// the float64 trajectory within the documented Float32Tol bounds on
// every scenario family the goldens cover — and must actually diverge
// bitwise, or the fast path silently fell back to the double kernel.
func TestFloat32WithinApproxTol(t *testing.T) {
	for _, tc := range []struct {
		k Kind
		d int
		n int
	}{
		{Uniform, 2, 48},
		{Clustered, 3, 256},
		{NearBoundary, 2, 48},
	} {
		t.Run(tc.k.String(), func(t *testing.T) {
			ref, got, box := float32Pair(t, tc.k, tc.d, tc.n)
			if dv := CompareExact(ref, got); dv == nil {
				t.Fatal("float32 path is bit-identical to float64 — fast path not engaged?")
			}
			if dv, max := CompareApprox(box, ref, got, Float32Tol(box)); dv != nil {
				t.Fatalf("float32 drift beyond tolerance (max dev %.3g): %v", max, dv)
			}
		})
	}
}

// TestCompareApproxRejectsTightBound: the same pair of trajectories
// must fail under a bound far below the actual single-precision
// drift — the comparator does detect the difference it is asked to.
func TestCompareApproxRejectsTightBound(t *testing.T) {
	ref, got, box := float32Pair(t, Uniform, 2, 48)
	tight := ApproxTol{Pos: FieldTol{Abs: 1e-14}, Vel: FieldTol{Abs: 1e-14}}
	dv, _ := CompareApprox(box, ref, got, tight)
	if dv == nil {
		t.Fatal("1e-14 absolute bound accepted float32 drift")
	}
	if dv.Field != "pos" && dv.Field != "vel" {
		t.Fatalf("divergence field %q", dv.Field)
	}
}

// TestCompareApproxIdenticalPasses: a trajectory compared against
// itself passes any bound, including all-zero.
func TestCompareApproxIdenticalPasses(t *testing.T) {
	ref, _, box := float32Pair(t, Uniform, 2, 48)
	if dv, max := CompareApprox(box, ref, ref, ApproxTol{}); dv != nil || max != 0 {
		t.Fatalf("self-comparison diverged: %v (max %g)", dv, max)
	}
}

// TestFloat32RejectsNonSerial: the fast path is serial-only and
// incompatible with bond tables; Validate must say so.
func TestFloat32RejectsNonSerial(t *testing.T) {
	cfg := core.Default(2, 32)
	cfg.Float32 = true
	cfg.Mode = core.OpenMP
	cfg.T = 2
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "serial-only") {
		t.Fatalf("OpenMP+Float32 validated: %v", err)
	}
}
