package verify

import (
	"hybriddem/internal/core"
	"hybriddem/internal/geom"
)

// CaptureSupervised runs a distributed configuration under fault
// supervision (core.Supervise) and records the trajectory of every
// measured iteration, exactly like Capture. The supervisor delivers
// each iteration to the probe exactly once even when a rollback
// re-executes it, so the captured trajectory is directly comparable —
// bit for bit — against an unfaulted Capture of the same
// configuration.
func CaptureSupervised(cfg core.Config, iters int, ft core.FTConfig) (*Trajectory, error) {
	tr := &Trajectory{Box: cfg.Box()}
	cfg.CollectState = true
	cfg.Probe = func(iter int, pos, vel []geom.Vec) {
		tr.Steps = append(tr.Steps, Step{Pos: pos, Vel: vel})
	}
	res, err := core.Supervise(cfg, iters, ft)
	if err != nil {
		return nil, err
	}
	tr.Res = res
	return tr, nil
}
