// Package verify is the differential and metamorphic conformance
// harness of the module. The paper's whole argument rests on the claim
// that the serial, OpenMP, MPI and hybrid drivers are the same
// simulation — differing only in cost, never in physics — and this
// package turns that claim into an executable oracle:
//
//   - Differential: RunConformance pushes one configuration through
//     every execution mode × force-update strategy × reordering
//     setting and compares whole trajectories (not just final norms)
//     against the serial baseline, localising the first divergent
//     step, particle and field when they disagree.
//   - Metamorphic: CheckNewtonZeroSum, CheckTranslationInvariance,
//     CheckAxisPermutationInvariance, CheckReorderInvariance,
//     CheckRefinementInvariance and CheckCheckpointRoundTrip assert
//     symmetries any correct DEM must satisfy without reference to a
//     second implementation.
//   - Generative: Scenario builds seeded initial conditions (uniform,
//     clustered, bonded grains, degenerate grids, near-boundary
//     placements) consumed by the package's testing/quick properties
//     and native fuzz targets.
//
// Every future performance or scaling PR is expected to keep this
// package green; cmd/demrun exposes the differential harness to users
// behind the -verify flag.
package verify

import (
	"fmt"
	"math"

	"hybriddem/internal/core"
	"hybriddem/internal/geom"
)

// DefaultTol is the trajectory agreement tolerance used when a caller
// passes 0: the same bound the repo's hand-rolled equivalence tests
// have always enforced over ~100 steps.
const DefaultTol = 1e-7

// Step is one captured iteration of a trajectory, indexed by particle
// ID.
type Step struct {
	Pos []geom.Vec
	Vel []geom.Vec
}

// Trajectory is the per-step state of one run plus its final result.
type Trajectory struct {
	Box   geom.Box
	Steps []Step
	Res   *core.Result
}

// Capture runs cfg for iters measured iterations recording the global
// state after every step. The configuration's Probe and CollectState
// fields are overwritten.
func Capture(cfg core.Config, iters int) (*Trajectory, error) {
	tr := &Trajectory{Box: cfg.Box()}
	cfg.CollectState = true
	cfg.Probe = func(iter int, pos, vel []geom.Vec) {
		tr.Steps = append(tr.Steps, Step{Pos: pos, Vel: vel})
	}
	res, err := core.Run(cfg, iters)
	if err != nil {
		return nil, err
	}
	tr.Res = res
	return tr, nil
}

// Divergence localises the first disagreement between two
// trajectories.
type Divergence struct {
	Step      int     // measured iteration index (0-based)
	Particle  int     // particle ID
	Field     string  // "pos" or "vel"
	Component int     // coordinate index of the largest difference
	A, B      float64 // the two values of that component
	Dev       float64 // Euclidean deviation of the field at that particle
}

func (dv *Divergence) String() string {
	return fmt.Sprintf("first divergence at step %d: particle %d %s[%d] = %.9g vs %.9g (|Δ%s| = %.3g)",
		dv.Step, dv.Particle, dv.Field, dv.Component, dv.A, dv.B, dv.Field, dv.Dev)
}

// Compare walks two trajectories step by step and returns the first
// divergence beyond tol (nil if none) plus the maximum deviation seen
// anywhere. Positions are compared under the box's minimum image so
// that runs which defer periodic wrapping differently still agree.
func Compare(box geom.Box, a, b *Trajectory, tol float64) (*Divergence, float64) {
	if tol <= 0 {
		tol = DefaultTol
	}
	steps := len(a.Steps)
	if len(b.Steps) < steps {
		steps = len(b.Steps)
	}
	maxDev := 0.0
	var first *Divergence
	for s := 0; s < steps; s++ {
		sa, sb := a.Steps[s], b.Steps[s]
		n := len(sa.Pos)
		if len(sb.Pos) < n {
			n = len(sb.Pos)
		}
		for i := 0; i < n; i++ {
			dp := math.Sqrt(box.Dist2(sa.Pos[i], sb.Pos[i]))
			dv := math.Sqrt(geom.Norm2(geom.Sub(sa.Vel[i], sb.Vel[i], box.D), box.D))
			if dp > maxDev {
				maxDev = dp
			}
			if dv > maxDev {
				maxDev = dv
			}
			if first == nil && (dp > tol || dv > tol) {
				first = localize(box, sa, sb, s, i, dp, dv)
			}
		}
	}
	if len(a.Steps) != len(b.Steps) && first == nil {
		first = &Divergence{Step: steps, Field: "length", Dev: math.Abs(float64(len(a.Steps) - len(b.Steps)))}
	}
	return first, maxDev
}

// CompareExact demands bitwise equality of two trajectories: every
// position and velocity component of every particle at every step must
// be the identical float64. It is the oracle for transformations that
// only reschedule work without reassociating any floating-point
// operation — the split-phase halo exchange must pass it against the
// synchronous exchange, since overlapping communication with the
// core-link pass changes when data moves, never what is computed.
func CompareExact(a, b *Trajectory) *Divergence {
	if len(a.Steps) != len(b.Steps) {
		return &Divergence{Step: min(len(a.Steps), len(b.Steps)), Field: "length",
			Dev: math.Abs(float64(len(a.Steps) - len(b.Steps)))}
	}
	for s := range a.Steps {
		sa, sb := a.Steps[s], b.Steps[s]
		if len(sa.Pos) != len(sb.Pos) {
			return &Divergence{Step: s, Field: "length"}
		}
		for i := range sa.Pos {
			for k := 0; k < geom.MaxD; k++ {
				if sa.Pos[i][k] != sb.Pos[i][k] {
					return &Divergence{Step: s, Particle: i, Field: "pos", Component: k,
						A: sa.Pos[i][k], B: sb.Pos[i][k], Dev: math.Abs(sa.Pos[i][k] - sb.Pos[i][k])}
				}
				if sa.Vel[i][k] != sb.Vel[i][k] {
					return &Divergence{Step: s, Particle: i, Field: "vel", Component: k,
						A: sa.Vel[i][k], B: sb.Vel[i][k], Dev: math.Abs(sa.Vel[i][k] - sb.Vel[i][k])}
				}
			}
		}
	}
	return nil
}

// localize pins the divergence at (step s, particle i) to the worse of
// the two fields and its largest component.
func localize(box geom.Box, sa, sb Step, s, i int, dp, dv float64) *Divergence {
	field, dev := "pos", dp
	va, vb := sa.Pos[i], sb.Pos[i]
	diff := box.Disp(vb, va) // minimum-image difference va - vb
	if dv > dp {
		field, dev = "vel", dv
		va, vb = sa.Vel[i], sb.Vel[i]
		diff = geom.Sub(va, vb, box.D)
	}
	comp := 0
	for k := 1; k < box.D; k++ {
		if math.Abs(diff[k]) > math.Abs(diff[comp]) {
			comp = k
		}
	}
	return &Divergence{Step: s, Particle: i, Field: field, Component: comp,
		A: va[comp], B: vb[comp], Dev: dev}
}

// FieldTol bounds one field's per-particle deviation for
// CompareApprox: a pair of values passes when their Euclidean
// deviation is within Abs + Rel*scale, where scale is the larger of
// the two field magnitudes at that particle. Abs alone covers values
// near zero; Rel alone covers large-magnitude fields.
type FieldTol struct {
	Rel float64 // relative bound against the field magnitude
	Abs float64 // absolute floor
}

// allows reports whether deviation dev at magnitude scale satisfies
// the bound.
func (t FieldTol) allows(dev, scale float64) bool {
	return dev <= t.Abs+t.Rel*scale
}

// ApproxTol carries the per-field bounds of CompareApprox.
type ApproxTol struct {
	Pos FieldTol
	Vel FieldTol
}

// Float32Tol is the default bound for comparing the single-precision
// kernel (core.Config.Float32) against the float64 baseline: each
// pair interaction rounds through float32 (2^-24 relative), and over
// a few hundred steps the integrator compounds that into position and
// velocity drift a few orders above one ulp. The box edge sets the
// position scale, so the position bound is mostly absolute; velocity
// scales with itself.
func Float32Tol(box geom.Box) ApproxTol {
	edge := box.Len[0]
	for k := 1; k < box.D; k++ {
		if box.Len[k] > edge {
			edge = box.Len[k]
		}
	}
	return ApproxTol{
		Pos: FieldTol{Rel: 1e-4, Abs: 1e-4 * edge},
		Vel: FieldTol{Rel: 1e-3, Abs: 1e-5},
	}
}

// CompareApprox walks two trajectories like Compare but with
// independent relative/absolute bounds per field, returning the first
// violation (nil if none) and the maximum deviation seen in either
// field. Positions are compared under the box's minimum image.
// It is the oracle for transformations that legitimately perturb the
// arithmetic — the float32 kernel path — where a single scalar
// tolerance either drowns position drift or trips on near-zero
// velocities.
func CompareApprox(box geom.Box, a, b *Trajectory, tol ApproxTol) (*Divergence, float64) {
	steps := len(a.Steps)
	if len(b.Steps) < steps {
		steps = len(b.Steps)
	}
	maxDev := 0.0
	var first *Divergence
	for s := 0; s < steps; s++ {
		sa, sb := a.Steps[s], b.Steps[s]
		n := len(sa.Pos)
		if len(sb.Pos) < n {
			n = len(sb.Pos)
		}
		for i := 0; i < n; i++ {
			dp := math.Sqrt(box.Dist2(sa.Pos[i], sb.Pos[i]))
			dv := math.Sqrt(geom.Norm2(geom.Sub(sa.Vel[i], sb.Vel[i], box.D), box.D))
			if dp > maxDev {
				maxDev = dp
			}
			if dv > maxDev {
				maxDev = dv
			}
			if first != nil {
				continue
			}
			pscale := math.Max(math.Sqrt(geom.Norm2(sa.Pos[i], box.D)), math.Sqrt(geom.Norm2(sb.Pos[i], box.D)))
			vscale := math.Max(math.Sqrt(geom.Norm2(sa.Vel[i], box.D)), math.Sqrt(geom.Norm2(sb.Vel[i], box.D)))
			if !tol.Pos.allows(dp, pscale) || !tol.Vel.allows(dv, vscale) {
				first = localize(box, sa, sb, s, i, dp, dv)
			}
		}
	}
	if len(a.Steps) != len(b.Steps) && first == nil {
		first = &Divergence{Step: steps, Field: "length", Dev: math.Abs(float64(len(a.Steps) - len(b.Steps)))}
	}
	return first, maxDev
}
