package verify

import (
	"errors"
	"testing"
	"time"

	"hybriddem/internal/core"
	"hybriddem/internal/fault"
	"hybriddem/internal/mp"
	"hybriddem/internal/shm"
)

// TestChaosRecoveryBitIdentical is the acceptance oracle of the
// fault-tolerance layer: a supervised run that loses a rank mid-flight
// and has messages corrupted and duplicated on the wire must recover —
// degrading to P-1 ranks and rolling back to the last rebuild-boundary
// snapshot — and still deliver a trajectory bit-identical to an
// unfaulted run. The matrix covers both force protocols (synchronous
// and split-phase overlap), MPI and hybrid modes, and both dynamic
// repartition strategies (LPT and the adaptive ORB tree, whose cut
// state must survive the degrade-and-rollback without poisoning the
// replay); one hybrid shape arms the watchdog so the kill is
// silent and peers discover it only through their deadlines.
func TestChaosRecoveryBitIdentical(t *testing.T) {
	type shape struct {
		name     string
		kind     Kind
		killRank int
		watchdog time.Duration
		mutate   func(*core.Config)
	}
	shapes := []shape{
		{"mpi/sync-p4", Uniform, 2, 0, func(c *core.Config) {
			c.Mode = core.MPI
			c.P = 4
			c.Overlap = false
		}},
		{"mpi/overlap-p4", Uniform, 1, 0, func(c *core.Config) {
			c.Mode = core.MPI
			c.P = 4
		}},
		{"mpi/rebalance-clustered", Clustered, 1, 0, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 2, 2
			c.Rebalance = core.RebalanceLPT
		}},
		{"mpi/orb-clustered", Clustered, 1, 0, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 2, 2
			c.Rebalance = core.RebalanceORB
		}},
		{"hybrid/stripe-t2-silent-kill", Uniform, 1, 2 * time.Second, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 2, 2
			c.Method = shm.Stripe
		}},
		{"hybrid/fused-t1", Uniform, 1, 0, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 1, 2
			c.Method = shm.SelectedAtomic
			c.Fused = true
		}},
	}
	const iters = 20
	for _, s := range shapes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			cfg := testScenario(t, s.kind, 2, 200, 17)
			s.mutate(&cfg)

			base, err := Capture(cfg, iters)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			plan := mp.NewFaultPlan(99)
			plan.CorruptProb = 0.004
			plan.DuplicateProb = 0.01
			plan.MaxFaults = 4
			plan.ArmKill(s.killRank, 9)
			faulted := cfg
			faulted.Faults = plan
			faulted.Watchdog = s.watchdog

			kills := 0
			chaos, err := CaptureSupervised(faulted, iters, core.FTConfig{
				SnapshotEvery: 1,
				MaxRetries:    8,
				OnFault: func(attempt int, fe *fault.Error) {
					t.Logf("attempt %d: %v", attempt, fe)
					if fe.Kind == fault.Killed {
						kills++
					}
				},
			})
			if err != nil {
				t.Fatalf("supervised chaos run: %v", err)
			}
			st := plan.Stats()
			if st.Killed != 1 || kills != 1 {
				t.Fatalf("kill did not fire exactly once: stats=%+v observed=%d", st, kills)
			}
			if len(chaos.Steps) != len(base.Steps) {
				t.Fatalf("chaos run delivered %d probe steps, baseline %d", len(chaos.Steps), len(base.Steps))
			}
			if div := CompareExact(base, chaos); div != nil {
				t.Fatalf("recovered trajectory differs from unfaulted baseline: %s", div)
			}
		})
	}
}

// TestChaosCorruptionAlwaysDetected: an unsupervised run with
// corruption armed must surface a typed Corrupt fault — never silently
// accept a mangled payload — for every applied corruption.
func TestChaosCorruptionAlwaysDetected(t *testing.T) {
	cfg := testScenario(t, Uniform, 2, 200, 17)
	cfg.Mode = core.MPI
	cfg.P = 2

	plan := mp.NewFaultPlan(7)
	plan.CorruptProb = 1 // first eligible message dies
	plan.MaxFaults = 1
	cfg.Faults = plan

	_, err := core.Run(cfg, 10)
	if err == nil {
		t.Fatalf("corrupted run completed without a detected fault (stats %+v)", plan.Stats())
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("error is not a typed fault: %v", err)
	}
	if fe.Kind != fault.Corrupt {
		t.Fatalf("fault kind = %v, want Corrupt (%v)", fe.Kind, err)
	}
	if plan.Stats().Corrupted != 1 {
		t.Fatalf("corruption stats %+v, want exactly 1 applied", plan.Stats())
	}
}

// TestChaosDuplicatesDiscardedSilently: duplicated messages must be
// rejected by the sequence check without disturbing the trajectory.
func TestChaosDuplicatesDiscardedSilently(t *testing.T) {
	cfg := testScenario(t, Uniform, 2, 200, 17)
	cfg.Mode = core.MPI
	cfg.P = 2
	const iters = 10

	base, err := Capture(cfg, iters)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	plan := mp.NewFaultPlan(3)
	plan.DuplicateProb = 0.2
	plan.MaxFaults = 50
	dup := cfg
	dup.Faults = plan
	got, err := Capture(dup, iters)
	if err != nil {
		t.Fatalf("duplicated run: %v", err)
	}
	st := plan.Stats()
	if st.Duplicated == 0 {
		t.Fatalf("no duplicates applied: %+v", st)
	}
	// Not every duplicate is rejected at a Recv: a copy of the last
	// message on a (src, tag) stream sits unconsumed in the mailbox.
	// But some must have been taken and discarded.
	if got.Res.TC.MsgsRejected == 0 {
		t.Fatalf("%d duplicates applied but none rejected at a receive", st.Duplicated)
	}
	if div := CompareExact(base, got); div != nil {
		t.Fatalf("duplicated-message trajectory diverged: %s", div)
	}
}

// TestChaosUnrecoverableExhaustsRetries: corruption that outlives the
// retry budget must surface as an unrecoverable error wrapping the
// typed fault.
func TestChaosUnrecoverableExhaustsRetries(t *testing.T) {
	cfg := testScenario(t, Uniform, 2, 200, 17)
	cfg.Mode = core.MPI
	cfg.P = 2

	plan := mp.NewFaultPlan(11)
	plan.CorruptProb = 1
	plan.MaxFaults = 0 // unlimited: every retry is corrupted again
	cfg.Faults = plan

	_, err := core.Supervise(cfg, 10, core.FTConfig{MaxRetries: 2})
	if err == nil {
		t.Fatal("supervised run with unlimited corruption succeeded")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("unrecoverable error does not wrap the typed fault: %v", err)
	}
	if fe.Kind != fault.Corrupt {
		t.Fatalf("fault kind = %v, want Corrupt", fe.Kind)
	}
}
