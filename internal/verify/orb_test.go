package verify

import (
	"testing"

	"hybriddem/internal/core"
	"hybriddem/internal/shm"
)

// TestORBBitIdenticalToStatic is the acceptance oracle of the adaptive
// ORB decomposition: the recursive bisection rewrites the block→rank
// ownership table at list rebuilds, but — exactly like the LPT
// rebalancer it sits beside — ownership is pure bookkeeping. The
// canonicalised halo and migration orders make every block's store
// layout a function of physics history alone, so the trajectory must
// match the static block-cyclic deal bit for bit across every exchange
// protocol (message, windowed, synchronous, hybrid) and across
// scenario families whose cost fields range from flat (Uniform) to
// strongly skewed (Clustered, NearBoundary).
func TestORBBitIdenticalToStatic(t *testing.T) {
	type shape struct {
		name   string
		kind   Kind
		mutate func(*core.Config)
	}
	shapes := []shape{
		{"mpi/p4-bpp4-clustered", Clustered, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 4, 4
		}},
		{"mpi/p4-bpp1-clustered", Clustered, func(c *core.Config) {
			c.Mode = core.MPI
			c.P = 4
		}},
		{"mpi/p2-bpp4-sync-clustered", Clustered, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 2, 4
			c.Overlap = false
		}},
		{"mpism/p2-bpp4-clustered", Clustered, func(c *core.Config) {
			c.Mode = core.MPIsm
			c.P, c.BlocksPerProc = 2, 4
		}},
		{"hybrid/stripe-t2-clustered", Clustered, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 2, 4
			c.Method = shm.Stripe
		}},
		{"hybrid/fused-t1-clustered", Clustered, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 1, 4
			c.Method = shm.SelectedAtomic
			c.Fused = true
		}},
		{"mpi/p4-bpp2-uniform", Uniform, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 4, 2
		}},
		{"mpi/p4-bpp2-nearboundary", NearBoundary, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 4, 2
		}},
	}
	movedAnywhere, shiftedAnywhere := false, false
	for _, s := range shapes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			cfg := testScenario(t, s.kind, 2, 200, 17)
			s.mutate(&cfg)
			cfg.Rebalance = core.RebalanceOff
			static, err := Capture(cfg, 20)
			if err != nil {
				t.Fatalf("static run: %v", err)
			}
			cfg.Rebalance = core.RebalanceORB
			orb, err := Capture(cfg, 20)
			if err != nil {
				t.Fatalf("orb run: %v", err)
			}
			if div := CompareExact(static, orb); div != nil {
				t.Fatalf("ORB trajectory differs from static layout: %s", div)
			}
			if static.Res.TC.CutShifts != 0 {
				t.Errorf("static run reports %d cut shifts", static.Res.TC.CutShifts)
			}
			if orb.Res.TC.BlocksMoved > 0 {
				movedAnywhere = true
			}
			if orb.Res.TC.CutShifts > 0 {
				shiftedAnywhere = true
			}
		})
	}
	if !movedAnywhere {
		t.Errorf("no shape moved any block; the oracle never exercised a transfer")
	}
	if !shiftedAnywhere {
		t.Errorf("no shape adopted a cut tree; the oracle never exercised the bisection")
	}
}

// TestORBRaceStress drives ORB repartitions and the block migrations
// they trigger under the race detector: a clustered bed at T=3 runs
// long enough for several rebuilds, catching unsynchronised access to
// migrated block storage or to the rank-private cut tree. Trajectories
// are not checked — lock order at T=3 is nondeterministic — only that
// the runs complete cleanly.
func TestORBRaceStress(t *testing.T) {
	cfg := testScenario(t, Clustered, 2, 300, 23)
	cfg.Mode = core.Hybrid
	cfg.P, cfg.T, cfg.BlocksPerProc = 2, 3, 4
	cfg.Method = shm.SelectedAtomic
	cfg.Rebalance = core.RebalanceORB
	cfg.InitVel = 2
	if _, err := core.Run(cfg, 30); err != nil {
		t.Fatalf("race stress run: %v", err)
	}

	cfg.Fused = true
	if _, err := core.Run(cfg, 30); err != nil {
		t.Fatalf("fused race stress run: %v", err)
	}
}
