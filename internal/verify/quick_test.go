package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddem/internal/cell"
	"hybriddem/internal/geom"
)

// quickCfg keeps the property runs deterministic and bounded.
func quickCfg(seed int64, count int) *quick.Config {
	return &quick.Config{MaxCount: count, Rand: rand.New(rand.NewSource(seed))}
}

// pick folds arbitrary fuzz/quick bytes into a scenario selector.
func pick(kindB, dB uint8, seed int64, n int) (Kind, int, int, int64) {
	k := Kinds[int(kindB)%len(Kinds)]
	d := 2 + int(dB)%2
	return k, d, n, seed
}

// Property: the link list built through the cell grid is exactly the
// brute-force pair set, on every scenario family.
func TestQuickLinkListMatchesBruteForce(t *testing.T) {
	prop := func(kindB, dB uint8, seed int64) bool {
		k, d, n, seed := pick(kindB, dB, seed, 48)
		cfg, err := Scenario(k, d, n, seed)
		if err != nil {
			return true // generator rejected the shape, nothing to check
		}
		box := cfg.Box()
		rc := cfg.RC()
		pos := geom.CoordsFromVecs(cfg.Init.Pos, d)
		g := cell.NewGrid(d, geom.Zero(), box.Len, rc, box.BC == geom.Periodic)
		g.Bin(&pos, cfg.N, nil)
		got := g.BuildLinks(&pos, cfg.N, cfg.N, rc*rc, box, nil)
		want := cell.BruteLinks(cfg.Init.Pos, cfg.N, cfg.N, rc*rc, box)
		gs, gdup := cell.PairSet(got.Links)
		ws, wdup := cell.PairSet(want.Links)
		if gdup != nil {
			t.Logf("%v d=%d seed=%d: duplicate link %v", k, d, seed, *gdup)
			return false
		}
		if wdup != nil {
			t.Logf("%v d=%d seed=%d: duplicate brute pair %v", k, d, seed, *wdup)
			return false
		}
		if len(gs) != len(ws) {
			t.Logf("%v d=%d seed=%d: %d links vs %d brute pairs", k, d, seed, len(gs), len(ws))
			return false
		}
		for p := range ws {
			if !gs[p] {
				t.Logf("%v d=%d seed=%d: brute pair %v missing from link list", k, d, seed, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(1, 60)); err != nil {
		t.Error(err)
	}
}

// Property: total momentum is conserved on every scenario family (all
// run with periodic boundaries and zero gravity).
func TestQuickMomentumConserved(t *testing.T) {
	prop := func(kindB, dB uint8, seed int64) bool {
		k, d, n, seed := pick(kindB, dB, seed, 40)
		cfg, err := Scenario(k, d, n, seed)
		if err != nil {
			return true
		}
		if err := CheckNewtonZeroSum(cfg, 5, 1e-9); err != nil {
			t.Logf("%v d=%d seed=%d: %v", k, d, seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(2, 15)); err != nil {
		t.Error(err)
	}
}

// Property: the cache reordering never changes the trajectory, on any
// scenario family.
func TestQuickReorderInvariant(t *testing.T) {
	prop := func(kindB, dB uint8, seed int64) bool {
		k, d, n, seed := pick(kindB, dB, seed, 40)
		cfg, err := Scenario(k, d, n, seed)
		if err != nil {
			return true
		}
		if err := CheckReorderInvariance(cfg, 4, 0); err != nil {
			t.Logf("%v d=%d seed=%d: %v", k, d, seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(3, 15)); err != nil {
		t.Error(err)
	}
}
