package verify

import (
	"fmt"
	"strings"

	"hybriddem/internal/core"
	"hybriddem/internal/shm"
)

// Variant is one cell of the differential matrix: a named
// configuration whose trajectory must match the serial baseline.
type Variant struct {
	Name string
	Cfg  core.Config
}

// Matrix expands a base configuration into the full conformance
// matrix: serial, OpenMP under all five force-update strategies, MPI,
// mpism (shared-memory windows) and hybrid under all five strategies —
// each with reordering both on and off — plus the fused hybrid loop
// for the two strategies it supports. The distributed variants run with the split-phase
// (overlapped) halo exchange, the production default; a "/sync" row
// per distributed shape repeats the run with the synchronous exchange,
// and "/rebalance" rows run with dynamic block→rank load balancing at
// B/P 1 and 4 ("/orb" rows repeat the adaptive ORB strategy at B/P 4),
// so every protocol faces the serial oracle. The base's
// physics (box, springs, bonds, gravity, initial state) is preserved;
// mode, P, T, B/P, Method, Fused, Reorder, Overlap and Rebalance are
// overridden per variant.
func Matrix(base core.Config) []Variant {
	var out []Variant
	add := func(name string, mutate func(*core.Config)) {
		cfg := base
		cfg.Mode = core.Serial
		cfg.P, cfg.T = 1, 1
		cfg.BlocksPerProc = 1
		cfg.Fused = false
		cfg.Overlap = true
		cfg.Rebalance = core.RebalanceOff
		mutate(&cfg)
		out = append(out, Variant{Name: name, Cfg: cfg})
	}
	for _, reorder := range []bool{true, false} {
		suffix := "/reorder"
		if !reorder {
			suffix = "/noreorder"
		}
		add("serial"+suffix, func(c *core.Config) {
			c.Reorder = reorder
		})
		for _, m := range shm.Methods {
			m := m
			add("openmp/"+m.String()+suffix, func(c *core.Config) {
				c.Mode = core.OpenMP
				c.T = 3
				c.Method = m
				c.Reorder = reorder
			})
		}
		add("mpi"+suffix, func(c *core.Config) {
			c.Mode = core.MPI
			c.P = 2
			c.BlocksPerProc = 2
			c.Reorder = reorder
		})
		// Correctness runs use ZeroNetwork, which places every rank on
		// one node — the mpism rows therefore exercise the fully
		// windowed exchange (every halo leg a fenced load).
		add("mpism"+suffix, func(c *core.Config) {
			c.Mode = core.MPIsm
			c.P = 2
			c.BlocksPerProc = 2
			c.Reorder = reorder
		})
		for _, m := range shm.Methods {
			m := m
			add("hybrid/"+m.String()+suffix, func(c *core.Config) {
				c.Mode = core.Hybrid
				c.P, c.T = 2, 2
				c.BlocksPerProc = 2
				c.Method = m
				c.Reorder = reorder
			})
		}
	}
	// Synchronous-exchange baselines of the distributed shapes (one
	// reorder setting suffices: the exchange protocol is orthogonal to
	// the reorder pass).
	add("mpi/sync", func(c *core.Config) {
		c.Mode = core.MPI
		c.P = 2
		c.BlocksPerProc = 2
		c.Reorder = true
		c.Overlap = false
	})
	add("mpism/sync", func(c *core.Config) {
		c.Mode = core.MPIsm
		c.P = 2
		c.BlocksPerProc = 2
		c.Reorder = true
		c.Overlap = false
	})
	for _, m := range shm.Methods {
		m := m
		add("hybrid/"+m.String()+"/sync", func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T = 2, 2
			c.BlocksPerProc = 2
			c.Method = m
			c.Reorder = true
			c.Overlap = false
		})
	}
	for _, sync := range []bool{false, true} {
		suffix := ""
		if sync {
			suffix = "/sync"
		}
		for _, m := range []shm.Method{shm.Atomic, shm.SelectedAtomic} {
			m := m
			add("hybrid/"+m.String()+"/fused"+suffix, func(c *core.Config) {
				c.Mode = core.Hybrid
				c.P, c.T = 2, 2
				c.BlocksPerProc = 2
				c.Method = m
				c.Fused = true
				c.Reorder = true
				c.Overlap = !sync
			})
		}
	}
	// Dynamic load balancing at coarse and fine granularity: ownership
	// is bookkeeping, the physics must still face the serial oracle.
	for _, bpp := range []int{1, 4} {
		bpp := bpp
		add(fmt.Sprintf("mpi/rebalance/bpp%d", bpp), func(c *core.Config) {
			c.Mode = core.MPI
			c.P = 2
			c.BlocksPerProc = bpp
			c.Reorder = true
			c.Rebalance = core.RebalanceLPT
		})
		// Rebalancing reshuffles block ownership, forcing the window
		// layout directory to re-derive offsets for a changed block set.
		add(fmt.Sprintf("mpism/rebalance/bpp%d", bpp), func(c *core.Config) {
			c.Mode = core.MPIsm
			c.P = 2
			c.BlocksPerProc = bpp
			c.Reorder = true
			c.Rebalance = core.RebalanceLPT
		})
	}
	add("hybrid/selected-atomic/rebalance", func(c *core.Config) {
		c.Mode = core.Hybrid
		c.P, c.T = 2, 2
		c.BlocksPerProc = 4
		c.Method = shm.SelectedAtomic
		c.Reorder = true
		c.Rebalance = core.RebalanceLPT
	})
	add("hybrid/selected-atomic/fused/rebalance", func(c *core.Config) {
		c.Mode = core.Hybrid
		c.P, c.T = 2, 2
		c.BlocksPerProc = 4
		c.Method = shm.SelectedAtomic
		c.Fused = true
		c.Reorder = true
		c.Rebalance = core.RebalanceLPT
	})
	// Adaptive ORB decomposition: the cut-plane tree rewrites the same
	// ownership table the LPT deal does, across the message, windowed,
	// overlapped/synchronous and hybrid exchange protocols.
	add("mpi/orb/bpp4", func(c *core.Config) {
		c.Mode = core.MPI
		c.P = 2
		c.BlocksPerProc = 4
		c.Reorder = true
		c.Rebalance = core.RebalanceORB
	})
	add("mpi/orb/sync", func(c *core.Config) {
		c.Mode = core.MPI
		c.P = 2
		c.BlocksPerProc = 4
		c.Reorder = true
		c.Overlap = false
		c.Rebalance = core.RebalanceORB
	})
	add("mpism/orb/bpp4", func(c *core.Config) {
		c.Mode = core.MPIsm
		c.P = 2
		c.BlocksPerProc = 4
		c.Reorder = true
		c.Rebalance = core.RebalanceORB
	})
	add("hybrid/selected-atomic/orb", func(c *core.Config) {
		c.Mode = core.Hybrid
		c.P, c.T = 2, 2
		c.BlocksPerProc = 4
		c.Method = shm.SelectedAtomic
		c.Reorder = true
		c.Rebalance = core.RebalanceORB
	})
	return out
}

// VariantResult is one matrix cell's outcome against the baseline.
type VariantResult struct {
	Name   string
	MaxDev float64     // largest deviation anywhere in the trajectory
	Div    *Divergence // first out-of-tolerance point, nil when agreeing
	Err    error       // run failure, nil when the variant executed
}

// OK reports whether the variant ran and stayed within tolerance.
func (v *VariantResult) OK() bool { return v.Err == nil && v.Div == nil }

// Conformance is the outcome of a differential run over the matrix.
type Conformance struct {
	Tol     float64
	Iters   int
	Results []VariantResult
}

// RunConformance captures the serial baseline trajectory of cfg and
// compares every matrix variant against it over iters steps. The
// virtual platform is stripped (correctness runs use free cost
// modelling) and tol <= 0 selects DefaultTol.
func RunConformance(cfg core.Config, iters int, tol float64) (*Conformance, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	cfg.Mode = core.Serial
	cfg.P, cfg.T = 1, 1
	cfg.Platform = nil
	cfg.Timeline = nil
	cfg.Reorder = true
	base, err := Capture(cfg, iters)
	if err != nil {
		return nil, fmt.Errorf("verify: baseline: %w", err)
	}
	c := &Conformance{Tol: tol, Iters: iters}
	box := cfg.Box()
	for _, v := range Matrix(cfg) {
		r := VariantResult{Name: v.Name}
		tr, err := Capture(v.Cfg, iters)
		if err != nil {
			r.Err = err
		} else {
			r.Div, r.MaxDev = Compare(box, base, tr, tol)
		}
		c.Results = append(c.Results, r)
	}
	return c, nil
}

// Failed returns the variants that errored or diverged.
func (c *Conformance) Failed() []VariantResult {
	var out []VariantResult
	for _, r := range c.Results {
		if !r.OK() {
			out = append(out, r)
		}
	}
	return out
}

// String renders one line per variant plus a verdict.
func (c *Conformance) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "conformance over %d variants, %d steps, tolerance %.1g\n", len(c.Results), c.Iters, c.Tol)
	for _, r := range c.Results {
		switch {
		case r.Err != nil:
			fmt.Fprintf(&sb, "  FAIL %-36s %v\n", r.Name, r.Err)
		case r.Div != nil:
			fmt.Fprintf(&sb, "  FAIL %-36s %s\n", r.Name, r.Div)
		default:
			fmt.Fprintf(&sb, "  ok   %-36s max deviation %.3g\n", r.Name, r.MaxDev)
		}
	}
	if n := len(c.Failed()); n > 0 {
		fmt.Fprintf(&sb, "%d of %d variants DIVERGED from the serial baseline\n", n, len(c.Results))
	} else {
		fmt.Fprintf(&sb, "all %d variants agree with the serial baseline\n", len(c.Results))
	}
	return sb.String()
}
