package verify

import (
	"errors"
	"testing"
	"time"

	"hybriddem/internal/core"
	"hybriddem/internal/fault"
	"hybriddem/internal/mp"
)

// TestMpismBitIdenticalToMPI is the acceptance oracle of the
// shared-window exchange: replacing every same-node halo message with
// a fenced load from the owner's window must not change a single bit
// of the trajectory. The owner packs exactly the floats the message
// path would have sent and the reader runs the same scatter, so the
// comparison is exact, across every scenario family and for shapes
// covering the split-phase and synchronous drivers, coarse and fine
// granularity, an odd rank count and the dynamic rebalancer (which
// forces the window layout directory to re-derive offsets). Captures
// run without a platform, i.e. on ZeroNetwork, which puts every rank
// on one node — the mpism runs are fully windowed.
func TestMpismBitIdenticalToMPI(t *testing.T) {
	type shape struct {
		name   string
		mutate func(*core.Config)
	}
	shapes := []shape{
		{"p4", func(c *core.Config) { c.P = 4 }},
		{"p4-bpp2", func(c *core.Config) { c.P, c.BlocksPerProc = 4, 2 }},
		{"p3-sync", func(c *core.Config) {
			c.P = 3
			c.Overlap = false
		}},
		{"p2-rebalance", func(c *core.Config) {
			c.P, c.BlocksPerProc = 2, 4
			c.Rebalance = core.RebalanceLPT
		}},
	}
	const iters = 20
	for _, k := range Kinds {
		k := k
		for _, s := range shapes {
			s := s
			t.Run(k.String()+"/"+s.name, func(t *testing.T) {
				cfg := testScenario(t, k, 2, 200, 17)
				s.mutate(&cfg)

				cfg.Mode = core.MPI
				ref, err := Capture(cfg, iters)
				if err != nil {
					t.Fatalf("mpi run: %v", err)
				}
				cfg.Mode = core.MPIsm
				win, err := Capture(cfg, iters)
				if err != nil {
					t.Fatalf("mpism run: %v", err)
				}
				if div := CompareExact(ref, win); div != nil {
					t.Fatalf("mpism trajectory differs from mpi: %s", div)
				}
				if ref.Res.TC.WinFences != 0 {
					t.Errorf("mpi run joined %d window fences, want 0", ref.Res.TC.WinFences)
				}
				if win.Res.TC.WinFences == 0 {
					t.Errorf("mpism run joined no window fences; the windowed path never ran")
				}
				if win.Res.TC.WinLoadBytes == 0 {
					t.Errorf("mpism run loaded no window bytes; halo legs still travelled as messages")
				}
				if win.Res.TC.BytesSent >= ref.Res.TC.BytesSent {
					t.Errorf("mpism sent %d message bytes, mpi %d; windows should shrink message traffic",
						win.Res.TC.BytesSent, ref.Res.TC.BytesSent)
				}
			})
		}
	}
}

// TestMpismChaosKillClassified: a rank killed mid-step on a node whose
// peers are parked in a window fence must surface as a classified
// Killed fault, not a deadlock — the fence wait carries the same
// watchdog deadline and abandoned-peer detection as a blocked receive
// or collective.
func TestMpismChaosKillClassified(t *testing.T) {
	cfg := testScenario(t, Uniform, 2, 200, 17)
	cfg.Mode = core.MPIsm
	cfg.P = 4
	cfg.Watchdog = 2 * time.Second

	plan := mp.NewFaultPlan(5)
	plan.ArmKill(1, 6)
	cfg.Faults = plan

	_, err := core.Run(cfg, 15)
	if err == nil {
		t.Fatalf("run with a killed rank completed cleanly (stats %+v)", plan.Stats())
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("error is not a typed fault: %v", err)
	}
	if fe.Kind != fault.Killed {
		t.Fatalf("fault kind = %v, want Killed (%v)", fe.Kind, err)
	}
}

// TestMpismChaosRecoveryBitIdentical: the supervisor must recover an
// mpism run from a silent kill — survivors discover the death at their
// fence deadlines, the degraded restart rebuilds node groups and
// windows over P-1 ranks — and deliver the unfaulted trajectory
// exactly.
func TestMpismChaosRecoveryBitIdentical(t *testing.T) {
	cfg := testScenario(t, Uniform, 2, 200, 17)
	cfg.Mode = core.MPIsm
	cfg.P = 4
	const iters = 20

	base, err := Capture(cfg, iters)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	plan := mp.NewFaultPlan(99)
	plan.ArmKill(1, 9)
	faulted := cfg
	faulted.Faults = plan
	faulted.Watchdog = 2 * time.Second

	chaos, err := CaptureSupervised(faulted, iters, core.FTConfig{
		SnapshotEvery: 1,
		MaxRetries:    8,
	})
	if err != nil {
		t.Fatalf("supervised chaos run: %v", err)
	}
	if plan.Stats().Killed != 1 {
		t.Fatalf("kill did not fire exactly once: %+v", plan.Stats())
	}
	if div := CompareExact(base, chaos); div != nil {
		t.Fatalf("recovered trajectory differs from unfaulted baseline: %s", div)
	}
}
