package verify

import (
	"strings"
	"testing"

	"hybriddem/internal/core"
	"hybriddem/internal/decomp"
	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
	"hybriddem/internal/shm"
)

// testScenario builds a small scenario or fails the test.
func testScenario(t *testing.T, k Kind, d, n int, seed int64) core.Config {
	t.Helper()
	cfg, err := Scenario(k, d, n, seed)
	if err != nil {
		t.Fatalf("Scenario(%v, d=%d, n=%d): %v", k, d, n, err)
	}
	return cfg
}

func TestScenarioFamiliesRunAndAreDeterministic(t *testing.T) {
	for _, k := range Kinds {
		for _, d := range []int{2, 3} {
			cfg := testScenario(t, k, d, 60, 7)
			if err := cfg.Validate(); err != nil {
				t.Errorf("%v d=%d: invalid config: %v", k, d, err)
				continue
			}
			box := cfg.Box()
			for p, pos := range cfg.Init.Pos {
				if !box.Contains(pos) {
					t.Errorf("%v d=%d: particle %d at %v outside the box", k, d, p, pos)
				}
			}
			again := testScenario(t, k, d, 60, 7)
			for p := range cfg.Init.Pos {
				if cfg.Init.Pos[p] != again.Init.Pos[p] || cfg.Init.Vel[p] != again.Init.Vel[p] {
					t.Fatalf("%v d=%d: same seed produced different particle %d", k, d, p)
				}
			}
			other := testScenario(t, k, d, 60, 8)
			same := true
			for p := range cfg.Init.Pos {
				if cfg.Init.Pos[p] != other.Init.Pos[p] {
					same = false
					break
				}
			}
			if same && k != DegenerateGrid { // the grid ignores the seed for positions
				t.Errorf("%v d=%d: different seeds produced identical positions", k, d)
			}
			if _, err := Capture(cfg, 3); err != nil {
				t.Errorf("%v d=%d: run failed: %v", k, d, err)
			}
		}
	}
}

func TestCompareLocalizesAnInjectedPerturbation(t *testing.T) {
	cfg := testScenario(t, Uniform, 2, 40, 3)
	a, err := Capture(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if div, max := Compare(cfg.Box(), a, a, 0); div != nil || max != 0 {
		t.Fatalf("trajectory differs from itself: %v (max %g)", div, max)
	}
	b, err := Capture(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb one component of one particle at one step.
	b.Steps[4].Vel[17][1] += 5e-4
	div, max := Compare(cfg.Box(), a, b, 0)
	if div == nil {
		t.Fatal("perturbation not detected")
	}
	if div.Step != 4 || div.Particle != 17 || div.Field != "vel" || div.Component != 1 {
		t.Fatalf("mislocalized: %s", div)
	}
	if max < 4e-4 {
		t.Fatalf("max deviation %g does not reflect the 5e-4 perturbation", max)
	}
}

func TestConformanceMatrixAgrees(t *testing.T) {
	cfg := testScenario(t, Uniform, 2, 220, 11)
	c, err := RunConformance(cfg, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if failed := c.Failed(); len(failed) > 0 {
		t.Fatalf("matrix diverged:\n%s", c)
	}
	if len(c.Results) != 47 {
		t.Fatalf("matrix has %d variants, expected 47", len(c.Results))
	}
	if !strings.Contains(c.String(), "all 47 variants agree") {
		t.Errorf("report did not announce agreement:\n%s", c)
	}
}

func TestConformanceMatrixClustered(t *testing.T) {
	cfg := testScenario(t, Clustered, 2, 160, 5)
	c, err := RunConformance(cfg, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if failed := c.Failed(); len(failed) > 0 {
		t.Fatalf("matrix diverged:\n%s", c)
	}
}

func TestConformanceMatrixBondedGrains(t *testing.T) {
	cfg := testScenario(t, BondedGrains, 2, 120, 9)
	c, err := RunConformance(cfg, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if failed := c.Failed(); len(failed) > 0 {
		t.Fatalf("matrix diverged:\n%s", c)
	}
}

// TestInjectedFaultIsCaughtAndLocalized is the harness's own acceptance
// test: corrupt exactly one shared-memory update strategy through the
// fault-injection hook (no shipped code edited) and demand that the
// differential matrix flags exactly the variants using that strategy,
// with a step/particle localization attached.
func TestInjectedFaultIsCaughtAndLocalized(t *testing.T) {
	shm.PairForceHook = func(m shm.Method, idI, idJ int32, fi geom.Vec) geom.Vec {
		if m == shm.Stripe {
			return geom.Scale(fi, -1, geom.MaxD) // flip the pair force
		}
		return fi
	}
	defer func() { shm.PairForceHook = nil }()

	cfg := testScenario(t, Uniform, 2, 220, 11)
	c, err := RunConformance(cfg, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Results {
		stripe := strings.Contains(r.Name, "/stripe")
		switch {
		case r.Err != nil:
			t.Errorf("%s: run failed: %v", r.Name, r.Err)
		case stripe && r.Div == nil:
			t.Errorf("%s: sign-flipped strategy not caught", r.Name)
		case !stripe && r.Div != nil:
			t.Errorf("%s: healthy variant flagged: %s", r.Name, r.Div)
		case stripe:
			d := r.Div
			if d.Step < 0 || d.Step >= 25 || d.Particle < 0 || d.Particle >= cfg.N {
				t.Errorf("%s: localization out of range: %s", r.Name, d)
			}
			if d.Field != "pos" && d.Field != "vel" {
				t.Errorf("%s: localization lacks a field: %s", r.Name, d)
			}
		}
	}
}

func TestMetamorphicOracles(t *testing.T) {
	t.Run("reorder-invariance", func(t *testing.T) {
		cfg := testScenario(t, NearBoundary, 2, 120, 21)
		if err := CheckReorderInvariance(cfg, 12, 0); err != nil {
			t.Error(err)
		}
	})
	t.Run("newton-zero-sum", func(t *testing.T) {
		cfg := testScenario(t, Uniform, 2, 120, 22)
		if err := CheckNewtonZeroSum(cfg, 20, 1e-9); err != nil {
			t.Error(err)
		}
	})
	t.Run("newton-zero-sum-damped", func(t *testing.T) {
		// Pairwise damping must also cancel in the momentum sum.
		cfg := testScenario(t, Clustered, 2, 120, 23)
		if err := CheckNewtonZeroSum(cfg, 20, 1e-9); err != nil {
			t.Error(err)
		}
	})
	t.Run("translation-invariance", func(t *testing.T) {
		cfg := testScenario(t, Uniform, 2, 120, 24)
		shift := geom.Scale(cfg.Box().Len, 0.37, cfg.D)
		if err := CheckTranslationInvariance(cfg, 12, shift, 1e-6); err != nil {
			t.Error(err)
		}
	})
	t.Run("axis-permutation-invariance", func(t *testing.T) {
		cfg := testScenario(t, Uniform, 2, 120, 25)
		if err := CheckAxisPermutationInvariance(cfg, 12, []int{1, 0}, 1e-6); err != nil {
			t.Error(err)
		}
	})
	t.Run("refinement-invariance", func(t *testing.T) {
		cfg := testScenario(t, Uniform, 2, 220, 26)
		if err := CheckRefinementInvariance(cfg, 12, 2, 1, 0); err != nil {
			t.Error(err)
		}
	})
	t.Run("checkpoint-round-trip", func(t *testing.T) {
		cfg := testScenario(t, Clustered, 2, 120, 27)
		if err := CheckCheckpointRoundTrip(cfg, 8, 8, 0); err != nil {
			t.Error(err)
		}
	})
	t.Run("checkpoint-round-trip-openmp", func(t *testing.T) {
		cfg := testScenario(t, Uniform, 2, 120, 28)
		cfg.Mode = core.OpenMP
		cfg.T = 2
		if err := CheckCheckpointRoundTrip(cfg, 8, 8, 0); err != nil {
			t.Error(err)
		}
	})
}

// runHaloCheck distributes the scenario over p ranks and runs the
// decomp halo oracle on every rank, optionally corrupting one halo
// position first. It returns the first error any rank reports.
func runHaloCheck(cfg core.Config, p, bpp int, reorder, corrupt bool) error {
	l, err := decomp.NewLayout(cfg.Box(), cfg.RC(), p, bpp)
	if err != nil {
		return err
	}
	errs := make([]error, p)
	mp.Run(p, nil, func(c *mp.Comm) {
		dm := decomp.NewDomain(l, c, true)
		for i, pos := range cfg.Init.Pos {
			dm.Place(pos, cfg.Init.Vel[i], int32(i))
		}
		dm.Rebuild(reorder)
		if corrupt && c.Rank() == 0 {
			for _, b := range dm.Blocks {
				if b.NumHalo() > 0 {
					b.PS.Pos[0][b.NCore] += 0.01 * cfg.L
					break
				}
			}
		}
		errs[c.Rank()] = dm.VerifyHalos(cfg.Init.Pos, cfg.Init.Vel, 0)
	})
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func TestVerifyHalosAcceptsRealExchange(t *testing.T) {
	for _, k := range Kinds {
		for _, reorder := range []bool{true, false} {
			cfg := testScenario(t, k, 2, 150, 31)
			if err := runHaloCheck(cfg, 2, 2, reorder, false); err != nil {
				t.Errorf("%v reorder=%v: %v", k, reorder, err)
			}
		}
	}
}

func TestVerifyHalosRejectsCorruptedHalo(t *testing.T) {
	cfg := testScenario(t, Uniform, 2, 150, 32)
	if err := runHaloCheck(cfg, 2, 2, true, true); err == nil {
		t.Fatal("corrupted halo position not detected")
	}
}
