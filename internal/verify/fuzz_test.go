package verify

import (
	"testing"

	"hybriddem/internal/cell"
	"hybriddem/internal/core"
	"hybriddem/internal/decomp"
	"hybriddem/internal/geom"
	"hybriddem/internal/shm"
)

// The native fuzz targets drive the oracles with generator parameters
// rather than raw byte soup: the fuzzer explores the scenario space
// (family, dimension, size, seed, distribution geometry) and every
// input that builds a valid configuration is checked against an
// independent reference. `go test -fuzz=FuzzX -fuzztime=10s` runs any
// of them; without -fuzz they replay the seed corpus as ordinary tests.

// FuzzLinkList cross-checks the cell-grid link builder against the
// O(n^2) brute-force pair enumeration.
func FuzzLinkList(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(30), int64(1))
	f.Add(uint8(1), uint8(1), uint16(64), int64(2))
	f.Add(uint8(2), uint8(0), uint16(50), int64(3))
	f.Add(uint8(3), uint8(1), uint16(27), int64(4))
	f.Add(uint8(4), uint8(0), uint16(90), int64(5))
	f.Fuzz(func(t *testing.T, kindB, dB uint8, nB uint16, seed int64) {
		k := Kinds[int(kindB)%len(Kinds)]
		d := 2 + int(dB)%2
		n := 8 + int(nB)%120
		cfg, err := Scenario(k, d, n, seed)
		if err != nil {
			t.Skip(err)
		}
		box := cfg.Box()
		rc := cfg.RC()
		pos := geom.CoordsFromVecs(cfg.Init.Pos, d)
		g := cell.NewGrid(d, geom.Zero(), box.Len, rc, box.BC == geom.Periodic)
		g.Bin(&pos, cfg.N, nil)
		got := g.BuildLinks(&pos, cfg.N, cfg.N, rc*rc, box, nil)
		want := cell.BruteLinks(cfg.Init.Pos, cfg.N, cfg.N, rc*rc, box)
		gs, dup := cell.PairSet(got.Links)
		if dup != nil {
			t.Fatalf("%v d=%d n=%d seed=%d: duplicate link %v", k, d, n, seed, *dup)
		}
		ws, _ := cell.PairSet(want.Links)
		if len(gs) != len(ws) {
			t.Fatalf("%v d=%d n=%d seed=%d: %d links vs %d brute pairs", k, d, n, seed, len(gs), len(ws))
		}
		for p := range ws {
			if !gs[p] {
				t.Fatalf("%v d=%d n=%d seed=%d: pair %v missing from link list", k, d, n, seed, p)
			}
		}
	})
}

// FuzzHaloExchange distributes a scenario over a fuzzed process/block
// layout, performs the real (goroutine) halo exchange, and checks every
// rank's halos against the globally reconstructed configuration with
// decomp's VerifyHalos oracle.
func FuzzHaloExchange(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(60), uint8(2), uint8(1), int64(1), true)
	f.Add(uint8(1), uint8(0), uint16(80), uint8(2), uint8(2), int64(2), false)
	f.Add(uint8(3), uint8(0), uint16(40), uint8(3), uint8(1), int64(3), true)
	f.Add(uint8(4), uint8(0), uint16(100), uint8(4), uint8(1), int64(4), true)
	f.Add(uint8(2), uint8(1), uint16(70), uint8(2), uint8(1), int64(5), false)
	f.Fuzz(func(t *testing.T, kindB, dB uint8, nB uint16, pB, bppB uint8, seed int64, reorder bool) {
		k := Kinds[int(kindB)%len(Kinds)]
		d := 2 + int(dB)%2
		n := 8 + int(nB)%120
		p := 1 + int(pB)%4
		bpp := 1 + int(bppB)%3
		cfg, err := Scenario(k, d, n, seed)
		if err != nil {
			t.Skip(err)
		}
		if _, err := decomp.NewLayout(cfg.Box(), cfg.RC(), p, bpp); err != nil {
			t.Skip(err) // blocks thinner than the cutoff: invalid layout
		}
		if err := runHaloCheck(cfg, p, bpp, reorder, false); err != nil {
			t.Fatalf("%v d=%d n=%d P=%d bpp=%d seed=%d reorder=%v: %v",
				k, d, n, p, bpp, seed, reorder, err)
		}
	})
}

// FuzzModeEquivalence runs a fuzzed scenario through a shared-memory
// and a message-passing driver and demands trajectory agreement with
// the serial baseline.
func FuzzModeEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(1), int64(1))
	f.Add(uint8(1), uint8(3), int64(2))
	f.Add(uint8(2), uint8(0), int64(3))
	f.Add(uint8(3), uint8(4), int64(4))
	f.Add(uint8(4), uint8(2), int64(5))
	f.Fuzz(func(t *testing.T, kindB, mB uint8, seed int64) {
		k := Kinds[int(kindB)%len(Kinds)]
		m := shm.Methods[int(mB)%len(shm.Methods)]
		cfg, err := Scenario(k, 2, 80, seed)
		if err != nil {
			t.Skip(err)
		}
		const iters = 4
		base, err := Capture(cfg, iters)
		if err != nil {
			t.Skip(err) // the generator built an unrunnable config
		}
		box := cfg.Box()

		omp := cfg
		omp.Mode = core.OpenMP
		omp.T = 2
		omp.Method = m
		tr, err := Capture(omp, iters)
		if err != nil {
			t.Fatalf("%v seed=%d openmp/%v: %v", k, seed, m, err)
		}
		if div, _ := Compare(box, base, tr, 0); div != nil {
			t.Fatalf("%v seed=%d: openmp/%v diverged: %s", k, seed, m, div)
		}

		mpi := cfg
		mpi.Mode = core.MPI
		mpi.P = 2
		mpi.BlocksPerProc = 1
		if _, err := decomp.NewLayout(box, cfg.RC(), mpi.P, mpi.BlocksPerProc); err == nil {
			tr, err := Capture(mpi, iters)
			if err != nil {
				t.Fatalf("%v seed=%d mpi: %v", k, seed, err)
			}
			if div, _ := Compare(box, base, tr, 0); div != nil {
				t.Fatalf("%v seed=%d: mpi diverged: %s", k, seed, div)
			}
		}
	})
}
