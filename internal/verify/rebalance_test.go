package verify

import (
	"testing"

	"hybriddem/internal/core"
	"hybriddem/internal/shm"
)

// TestRebalanceBitIdenticalToStatic is the acceptance oracle of the
// dynamic load balancer: moving a block to another rank changes which
// goroutine computes its forces, but the canonicalised halo and
// migration orders make every block's store layout a pure function of
// physics history — so the trajectory must match the static
// block-cyclic layout bit for bit, not merely within tolerance.
// Shapes cover MPI at B/P 1 and 4, the deterministic Stripe reduction
// at T=2, the lock-based strategy and the fused loop at T=1 (lock
// acquisition order and the fused global chunking are only
// ownership-independent single-threaded). Clustered beds make the
// initial deal imbalanced enough that the repartitioner actually moves
// blocks (asserted below).
func TestRebalanceBitIdenticalToStatic(t *testing.T) {
	type shape struct {
		name   string
		kind   Kind
		mutate func(*core.Config)
	}
	shapes := []shape{
		{"mpi/p4-bpp1", Clustered, func(c *core.Config) {
			c.Mode = core.MPI
			c.P = 4
		}},
		{"mpi/p4-bpp4", Clustered, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 4, 4
		}},
		{"mpi/p2-bpp2-sync", Clustered, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 2, 2
			c.Overlap = false
		}},
		{"hybrid/stripe-t2", Clustered, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 2, 4
			c.Method = shm.Stripe
		}},
		{"hybrid/selected-atomic-t1", Clustered, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 1, 4
			c.Method = shm.SelectedAtomic
		}},
		{"hybrid/fused-t1", Clustered, func(c *core.Config) {
			c.Mode = core.Hybrid
			c.P, c.T, c.BlocksPerProc = 2, 1, 4
			c.Method = shm.SelectedAtomic
			c.Fused = true
		}},
		{"mpi/p4-uniform", Uniform, func(c *core.Config) {
			c.Mode = core.MPI
			c.P, c.BlocksPerProc = 4, 2
		}},
	}
	movedAnywhere := false
	for _, s := range shapes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			cfg := testScenario(t, s.kind, 2, 200, 17)
			s.mutate(&cfg)
			cfg.Rebalance = core.RebalanceOff
			static, err := Capture(cfg, 20)
			if err != nil {
				t.Fatalf("static run: %v", err)
			}
			cfg.Rebalance = core.RebalanceLPT
			dyn, err := Capture(cfg, 20)
			if err != nil {
				t.Fatalf("rebalanced run: %v", err)
			}
			if div := CompareExact(static, dyn); div != nil {
				t.Fatalf("rebalanced trajectory differs from static layout: %s", div)
			}
			if static.Res.TC.BlocksMoved != 0 {
				t.Errorf("static run reports %d blocks moved", static.Res.TC.BlocksMoved)
			}
			if dyn.Res.TC.BlocksMoved > 0 {
				movedAnywhere = true
			}
		})
	}
	if !movedAnywhere {
		t.Errorf("no shape moved any block; the oracle never exercised a transfer")
	}
}

// TestRebalanceRaceStress drives concurrent block migration under the
// race detector: a clustered bed at T=3 with rebalancing on runs long
// enough for several rebuilds (and block transfers between rank
// goroutines), catching unsynchronised access to migrated block
// storage. The trajectory is not checked — lock order at T=3 is
// nondeterministic — only that the run completes cleanly.
func TestRebalanceRaceStress(t *testing.T) {
	cfg := testScenario(t, Clustered, 2, 300, 23)
	cfg.Mode = core.Hybrid
	cfg.P, cfg.T, cfg.BlocksPerProc = 2, 3, 4
	cfg.Method = shm.SelectedAtomic
	cfg.Rebalance = core.RebalanceLPT
	cfg.InitVel = 2
	if _, err := core.Run(cfg, 30); err != nil {
		t.Fatalf("race stress run: %v", err)
	}

	cfg.Fused = true
	if _, err := core.Run(cfg, 30); err != nil {
		t.Fatalf("fused race stress run: %v", err)
	}
}
