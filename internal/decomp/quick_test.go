package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddem/internal/geom"
)

// TestLayoutPropertiesQuick drives the layout invariants over random
// shapes: block assignment is a partition with equal shares, core
// regions tile the volume, neighbour relations are mutual, and
// BlockOfPos agrees with CoreRegion.
func TestLayoutPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		p := 1 + rng.Intn(12)
		bpp := 1 + rng.Intn(8)
		lsize := 8 + rng.Float64()*8
		bc := geom.Periodic
		if rng.Intn(2) == 0 {
			bc = geom.Reflecting
		}
		box := geom.NewBox(d, lsize, bc)
		rc := 0.2 + rng.Float64()*0.2
		l, err := NewLayout(box, rc, p, bpp)
		if err != nil {
			return true // too-fine layouts are rejected, which is fine
		}

		// Partition with equal shares.
		total := 0
		for r := 0; r < p; r++ {
			ids := l.BlocksOfRank(r)
			if len(ids) != l.B/p {
				return false
			}
			total += len(ids)
		}
		if total != l.B {
			return false
		}

		// Volume tiling.
		vol := 0.0
		for id := 0; id < l.B; id++ {
			_, span := l.CoreRegion(id)
			v := 1.0
			for k := 0; k < d; k++ {
				v *= span[k]
			}
			vol += v
		}
		if vol < box.Volume()*0.999 || vol > box.Volume()*1.001 {
			return false
		}

		// Mutual neighbours with opposite shifts.
		for id := 0; id < l.B; id++ {
			for dim := 0; dim < d; dim++ {
				for _, dir := range []int{-1, 1} {
					nb, shift, ok := l.Neighbor(id, dim, dir)
					if !ok {
						if bc == geom.Periodic {
							return false // periodic always has neighbours
						}
						continue
					}
					back, backShift, ok2 := l.Neighbor(nb, dim, -dir)
					if !ok2 || back != id {
						return false
					}
					for k := 0; k < geom.MaxD; k++ {
						if shift[k] != -backShift[k] {
							return false
						}
					}
				}
			}
		}

		// Random positions land in blocks that contain them.
		for i := 0; i < 50; i++ {
			var pnt geom.Vec
			for k := 0; k < d; k++ {
				pnt[k] = rng.Float64() * lsize
			}
			id := l.BlockOfPos(pnt)
			origin, span := l.CoreRegion(id)
			for k := 0; k < d; k++ {
				if pnt[k] < origin[k]-1e-9 || pnt[k] > origin[k]+span[k]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestExtRegionCoversCorePlusHalo: the extended region must contain
// the core grown by rc (clipped at walls).
func TestExtRegionCoversCorePlusHalo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		bc := geom.Periodic
		if rng.Intn(2) == 0 {
			bc = geom.Reflecting
		}
		box := geom.NewBox(d, 10, bc)
		l, err := NewLayout(box, 0.5, 1+rng.Intn(6), 1+rng.Intn(4))
		if err != nil {
			return true
		}
		for id := 0; id < l.B; id++ {
			co, cs := l.CoreRegion(id)
			eo, es := l.ExtRegion(id)
			for k := 0; k < d; k++ {
				wantLo := co[k] - l.RC
				wantHi := co[k] + cs[k] + l.RC
				if bc == geom.Reflecting {
					if wantLo < 0 {
						wantLo = 0
					}
					if wantHi > box.Len[k] {
						wantHi = box.Len[k]
					}
				}
				const tol = 1e-12
				if diff := eo[k] - wantLo; diff > tol || diff < -tol {
					return false
				}
				if diff := eo[k] + es[k] - wantHi; diff > tol || diff < -tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
