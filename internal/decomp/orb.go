package decomp

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybriddem/internal/geom"
)

// Orthogonal recursive bisection over the block grid.
//
// The ORB strategy replaces the LPT block deal with a binary tree of
// axis-aligned cut planes: each internal node splits its brick of
// blocks into two sub-bricks whose predicted per-rank loads are as
// equal as possible, recursing until every leaf holds exactly one
// rank's brick. Cut planes are quantised to block faces, so the block
// geometry — and with it every halo template, migration rule and the
// canonical orderings that make ownership invisible to the physics —
// is untouched: ORB only rewrites the block→rank table, exactly like
// LPT, and trajectories stay bit-identical to the static deal. Unlike
// LPT, each rank's blocks form one contiguous rectangular brick, so
// the rank's halo surface stays compact (and its same-rank interior
// legs ride the free direct-copy fast path) no matter how fine the
// granularity is refined; the cut planes recomputed from the smoothed
// cost field at every rebuild are what lets the domain shape follow a
// drifting cluster.

// orbMagic frames a serialized ORB tree inside checkpoint payloads.
const orbMagic = "HYORBT01"

// orbMaxRanks bounds P in decoded trees: far above any real layout,
// tight enough that a corrupt header cannot demand a giant allocation.
const orbMaxRanks = 1 << 16

// ORBNode is one node of the bisection tree. A node covers the brick
// of blocks with coordinates in [Lo[i], Hi[i]) and distributes the
// ranks [Rank0, Rank0+NRank). Internal nodes split at block-coordinate
// Cut along Dim; leaves (NRank == 1) have Dim, Cut, Left and Right all
// -1. Fields are int32 so the node serializes with fixed width.
type ORBNode struct {
	Lo, Hi [geom.MaxD]int32
	Rank0  int32
	NRank  int32
	Dim    int32
	Cut    int32
	Left   int32
	Right  int32
}

// ORBTree is the full bisection tree for one layout shape. Nodes is
// preallocated to exactly 2P-1 entries (a binary tree with P leaves),
// so rebuilding the cuts each epoch allocates nothing.
type ORBTree struct {
	D         int
	P         int
	BlockDims [geom.MaxD]int
	Nodes     []ORBNode

	n    int       // nodes in use; always 2P-1 after a Build
	line []float64 // per-slice cost scratch for the cut search
}

// NewORBTree returns an empty tree sized for the layout; Build fills
// it.
func NewORBTree(l *Layout) *ORBTree {
	t := &ORBTree{D: l.D, P: l.P, BlockDims: l.BlockDims}
	t.Nodes = make([]ORBNode, 2*l.P-1)
	maxDim := 1
	for i := 0; i < l.D; i++ {
		if l.BlockDims[i] > maxDim {
			maxDim = l.BlockDims[i]
		}
	}
	t.line = make([]float64, maxDim)
	return t
}

// Matches reports whether the tree was built for this layout shape;
// a tree restored from a checkpoint is only usable when it was.
func (t *ORBTree) Matches(l *Layout) bool {
	return t.D == l.D && t.P == l.P && t.BlockDims == l.BlockDims
}

// Clone returns a deep copy with private scratch.
func (t *ORBTree) Clone() *ORBTree {
	cp := &ORBTree{D: t.D, P: t.P, BlockDims: t.BlockDims, n: t.n}
	cp.Nodes = append([]ORBNode(nil), t.Nodes...)
	cp.line = make([]float64, len(t.line))
	return cp
}

// Equal reports whether two trees carry identical cuts.
func (t *ORBTree) Equal(o *ORBTree) bool {
	if t.D != o.D || t.P != o.P || t.BlockDims != o.BlockDims || t.n != o.n {
		return false
	}
	for i := 0; i < t.n; i++ {
		if t.Nodes[i] != o.Nodes[i] {
			return false
		}
	}
	return true
}

// alloc hands out the next preallocated node. Nodes never grows, so
// pointers into it stay valid across child allocation.
func (t *ORBTree) alloc() int {
	i := t.n
	t.n++
	return i
}

// Build recomputes every cut plane from the per-block cost field
// (identical on all ranks after the allreduce, so every rank derives
// the identical tree). Allocation-free after construction.
func (t *ORBTree) Build(l *Layout, cost []float64) {
	t.n = 0
	root := t.alloc()
	nd := &t.Nodes[root]
	*nd = ORBNode{Rank0: 0, NRank: int32(t.P)}
	for i := 0; i < geom.MaxD; i++ {
		nd.Lo[i] = 0
		nd.Hi[i] = int32(t.BlockDims[i])
	}
	t.split(l, cost, root)
}

// split chooses the best feasible cut of node idx and recurses. The
// rank split is chosen jointly with the plane: for each candidate cut
// the number of ranks sent left tracks the left side's cost share,
// clamped so both sides keep at least one rank and at least one block
// per rank. (A split fixed at ceil(N/2) up front has no feasible
// block-face plane on e.g. a 3x3 grid over 9 ranks; jointly chosen,
// every plane of a brick with blocks >= ranks admits some split.) The
// search is deterministic: dimensions are tried in decreasing brick
// extent (ties to the lower dimension), candidate planes in ascending
// coordinate, rank splits smallest-first, and only a strictly better
// predicted peak load replaces the incumbent.
func (t *ORBTree) split(l *Layout, cost []float64, idx int) {
	nd := &t.Nodes[idx]
	if nd.NRank == 1 {
		nd.Dim, nd.Cut, nd.Left, nd.Right = -1, -1, -1, -1
		return
	}
	nRank := int(nd.NRank)

	vol := 1
	for i := 0; i < t.D; i++ {
		vol *= int(nd.Hi[i] - nd.Lo[i])
	}

	// Dimension order: decreasing extent, ties to the lower dimension.
	var order [geom.MaxD]int
	for i := 0; i < t.D; i++ {
		order[i] = i
	}
	for i := 1; i < t.D; i++ {
		v := order[i]
		ext := nd.Hi[v] - nd.Lo[v]
		j := i - 1
		for j >= 0 && nd.Hi[order[j]]-nd.Lo[order[j]] < ext {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}

	bestDim, bestOff, bestNL := -1, -1, -1
	bestObj := math.Inf(1)
	for oi := 0; oi < t.D; oi++ {
		dim := order[oi]
		lo, hi := int(nd.Lo[dim]), int(nd.Hi[dim])
		ext := hi - lo
		if ext < 2 {
			continue
		}
		rowSize := vol / ext
		line := t.line[:ext]
		for j := range line {
			line[j] = 0
		}
		// Sum the cost of every slice of the brick perpendicular to dim
		// (odometer over the brick's block coordinates).
		var c [geom.MaxD]int
		for i := 0; i < geom.MaxD; i++ {
			c[i] = int(nd.Lo[i])
		}
		for {
			line[c[dim]-lo] += cost[l.blockID(c)]
			k := t.D - 1
			for k >= 0 {
				c[k]++
				if c[k] < int(nd.Hi[k]) {
					break
				}
				c[k] = int(nd.Lo[k])
				k--
			}
			if k < 0 {
				break
			}
		}
		total := 0.0
		for _, v := range line {
			total += v
		}
		left := 0.0
		for j := 1; j < ext; j++ {
			left += line[j-1]
			blocksL := j * rowSize
			blocksR := vol - blocksL
			// Feasible rank splits for this plane: each side gets at
			// least one rank and no more ranks than blocks. The brick
			// carries blocks >= ranks, so the range is never empty.
			nlMin, nlMax := nRank-blocksR, blocksL
			if nlMin < 1 {
				nlMin = 1
			}
			if nlMax > nRank-1 {
				nlMax = nRank - 1
			}
			// max(left/nl, right/(n-nl)) is unimodal in nl with its
			// continuous minimum at n*left/total, so the best integer
			// split is that value's floor or ceiling (clamped). A
			// zero-cost brick splits by volume instead.
			var nl int
			if total > 0 {
				nl = int(float64(nRank) * left / total)
			} else {
				nl = nRank * blocksL / vol
			}
			if nl < nlMin {
				nl = nlMin
			}
			if nl > nlMax {
				nl = nlMax
			}
			obj := t.peak(left, total-left, nl, nRank-nl)
			if nl+1 <= nlMax {
				if o := t.peak(left, total-left, nl+1, nRank-nl-1); o < obj {
					nl, obj = nl+1, o
				}
			}
			if obj < bestObj {
				bestObj, bestDim, bestOff, bestNL = obj, dim, j, nl
			}
		}
	}
	if bestDim < 0 {
		// Unreachable: a brick with blocks >= ranks >= 2 has some
		// dimension of extent >= 2, and with the rank split chosen per
		// plane every plane of such a brick is feasible. Kept as a loud
		// guard.
		panic(fmt.Sprintf("decomp: ORB found no feasible cut for brick %v-%v over %d ranks",
			nd.Lo, nd.Hi, nd.NRank))
	}

	li, ri := t.alloc(), t.alloc()
	nd.Dim = int32(bestDim)
	nd.Cut = nd.Lo[bestDim] + int32(bestOff)
	nd.Left, nd.Right = int32(li), int32(ri)
	lc, rc := &t.Nodes[li], &t.Nodes[ri]
	*lc = ORBNode{Lo: nd.Lo, Hi: nd.Hi, Rank0: nd.Rank0, NRank: int32(bestNL)}
	lc.Hi[bestDim] = nd.Cut
	*rc = ORBNode{Lo: nd.Lo, Hi: nd.Hi, Rank0: nd.Rank0 + int32(bestNL), NRank: int32(nRank - bestNL)}
	rc.Lo[bestDim] = nd.Cut
	t.split(l, cost, li)
	t.split(l, cost, ri)
}

// peak is the predicted per-rank peak load of one candidate split.
func (t *ORBTree) peak(left, right float64, nl, nr int) float64 {
	obj := left / float64(nl)
	if r := right / float64(nr); r > obj {
		obj = r
	}
	return obj
}

// Owners stamps the block→rank map the tree encodes into dst (length
// l.B). Allocation-free.
func (t *ORBTree) Owners(l *Layout, dst []int) {
	for i := 0; i < t.n; i++ {
		nd := &t.Nodes[i]
		if nd.Dim >= 0 {
			continue
		}
		var c [geom.MaxD]int
		for k := 0; k < geom.MaxD; k++ {
			c[k] = int(nd.Lo[k])
		}
		for {
			dst[l.blockID(c)] = int(nd.Rank0)
			k := t.D - 1
			for k >= 0 {
				c[k]++
				if c[k] < int(nd.Hi[k]) {
					break
				}
				c[k] = int(nd.Lo[k])
				k--
			}
			if k < 0 {
				break
			}
		}
	}
}

// ApplyOwners rewrites the layout's ownership table to the tree's map;
// used to restore a checkpointed decomposition before the domain is
// built.
func (t *ORBTree) ApplyOwners(l *Layout) {
	dst := make([]int, l.B)
	t.Owners(l, dst)
	for id, r := range dst {
		l.SetOwner(id, r)
	}
}

// cutDiff counts the cut planes that differ between two trees of the
// same shape. The comparison is structural — both trees are walked
// from their roots in lockstep — so the count does not depend on node
// allocation order (a checkpoint-restored tree may index its nodes
// differently than a fresh Build). Where the topologies diverge (the
// rank split moved, so one side is a leaf where the other still
// splits), every plane of the deeper side counts as shifted.
func cutDiff(a, b *ORBTree) int64 {
	if a.n == 0 || b.n == 0 {
		return 0
	}
	return cutDiffNode(a, b, 0, 0)
}

func cutDiffNode(a, b *ORBTree, ia, ib int32) int64 {
	na, nb := &a.Nodes[ia], &b.Nodes[ib]
	switch {
	case na.Dim < 0 && nb.Dim < 0:
		return 0
	case na.Dim < 0:
		// A subtree over N ranks has N-1 internal planes.
		return int64(nb.NRank) - 1
	case nb.Dim < 0:
		return int64(na.NRank) - 1
	}
	d := int64(0)
	if na.Dim != nb.Dim || na.Cut != nb.Cut {
		d = 1
	}
	return d + cutDiffNode(a, b, na.Left, nb.Left) + cutDiffNode(a, b, na.Right, nb.Right)
}

// Validate checks every structural invariant of the tree: header
// ranges, exactly 2P-1 nodes each reachable exactly once from the
// root, brick nesting, rank-interval propagation, and leaf/internal
// field discipline. DecodeTree runs it on every decoded payload, so a
// corrupt checkpoint surfaces as an error here rather than as a bad
// ownership table later.
func (t *ORBTree) Validate() error {
	if t.D < 1 || t.D > geom.MaxD {
		return fmt.Errorf("decomp: ORB tree dimension %d", t.D)
	}
	if t.P < 1 || t.P > orbMaxRanks {
		return fmt.Errorf("decomp: ORB tree for %d ranks", t.P)
	}
	for i := 0; i < geom.MaxD; i++ {
		if t.BlockDims[i] < 1 {
			return fmt.Errorf("decomp: ORB grid %v", t.BlockDims)
		}
		if i >= t.D && t.BlockDims[i] != 1 {
			return fmt.Errorf("decomp: ORB grid %v has extent beyond dimension %d", t.BlockDims, t.D)
		}
	}
	want := 2*t.P - 1
	if t.n != want || len(t.Nodes) < want {
		return fmt.Errorf("decomp: ORB tree has %d of %d nodes", t.n, want)
	}

	root := &t.Nodes[0]
	if root.Rank0 != 0 || int(root.NRank) != t.P {
		return fmt.Errorf("decomp: ORB root covers ranks [%d, %d)", root.Rank0, root.Rank0+root.NRank)
	}
	for i := 0; i < geom.MaxD; i++ {
		if root.Lo[i] != 0 || int(root.Hi[i]) != t.BlockDims[i] {
			return fmt.Errorf("decomp: ORB root brick %v-%v does not cover grid %v", root.Lo, root.Hi, t.BlockDims)
		}
	}

	visited := make([]bool, t.n)
	stack := make([]int, 1, t.n)
	stack[0] = 0
	leaves := 0
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if idx < 0 || idx >= t.n {
			return fmt.Errorf("decomp: ORB node index %d out of range", idx)
		}
		if visited[idx] {
			return fmt.Errorf("decomp: ORB node %d reached twice", idx)
		}
		visited[idx] = true
		nd := &t.Nodes[idx]
		vol := 1
		for i := 0; i < geom.MaxD; i++ {
			if nd.Lo[i] < 0 || int(nd.Hi[i]) > t.BlockDims[i] || nd.Lo[i] >= nd.Hi[i] {
				return fmt.Errorf("decomp: ORB node %d brick %v-%v outside grid %v", idx, nd.Lo, nd.Hi, t.BlockDims)
			}
			vol *= int(nd.Hi[i] - nd.Lo[i])
		}
		if nd.NRank < 1 || nd.Rank0 < 0 || int(nd.Rank0)+int(nd.NRank) > t.P {
			return fmt.Errorf("decomp: ORB node %d covers ranks [%d, %d) of %d", idx, nd.Rank0, nd.Rank0+nd.NRank, t.P)
		}
		if vol < int(nd.NRank) {
			return fmt.Errorf("decomp: ORB node %d has %d blocks for %d ranks", idx, vol, nd.NRank)
		}
		if nd.NRank == 1 {
			if nd.Dim != -1 || nd.Cut != -1 || nd.Left != -1 || nd.Right != -1 {
				return fmt.Errorf("decomp: ORB leaf %d carries split fields", idx)
			}
			leaves++
			continue
		}
		if nd.Dim < 0 || int(nd.Dim) >= t.D {
			return fmt.Errorf("decomp: ORB node %d splits dimension %d", idx, nd.Dim)
		}
		if nd.Cut <= nd.Lo[nd.Dim] || nd.Cut >= nd.Hi[nd.Dim] {
			return fmt.Errorf("decomp: ORB node %d cut %d outside (%d, %d)", idx, nd.Cut, nd.Lo[nd.Dim], nd.Hi[nd.Dim])
		}
		li, ri := int(nd.Left), int(nd.Right)
		if li <= 0 || li >= t.n || ri <= 0 || ri >= t.n || li == ri {
			return fmt.Errorf("decomp: ORB node %d children %d, %d", idx, li, ri)
		}
		lc, rc := &t.Nodes[li], &t.Nodes[ri]
		// The rank split is whatever Build chose for this plane, so it
		// is read from the left child and checked for consistency: both
		// sides keep at least one rank (the per-node blocks >= ranks
		// check covers the rest).
		nl := lc.NRank
		if nl < 1 || nl >= nd.NRank {
			return fmt.Errorf("decomp: ORB node %d splits %d ranks into %d + %d", idx, nd.NRank, nl, nd.NRank-nl)
		}
		wantL, wantR := *nd, *nd
		wantL.Hi[nd.Dim] = nd.Cut
		wantL.NRank = nl
		wantR.Lo[nd.Dim] = nd.Cut
		wantR.Rank0 = nd.Rank0 + nl
		wantR.NRank = nd.NRank - nl
		if lc.Lo != wantL.Lo || lc.Hi != wantL.Hi || lc.Rank0 != wantL.Rank0 || lc.NRank != wantL.NRank {
			return fmt.Errorf("decomp: ORB node %d left child mismatch", idx)
		}
		if rc.Lo != wantR.Lo || rc.Hi != wantR.Hi || rc.Rank0 != wantR.Rank0 || rc.NRank != wantR.NRank {
			return fmt.Errorf("decomp: ORB node %d right child mismatch", idx)
		}
		stack = append(stack, li, ri)
	}
	if leaves != t.P {
		return fmt.Errorf("decomp: ORB tree has %d leaves for %d ranks", leaves, t.P)
	}
	for i := 0; i < t.n; i++ {
		if !visited[i] {
			return fmt.Errorf("decomp: ORB node %d unreachable from the root", i)
		}
	}
	return nil
}

// orbNodeBytes is the fixed serialized width of one node.
const orbNodeBytes = 4 * (2*geom.MaxD + 6)

// Encode serializes the tree: the magic, a fixed header, then the
// nodes, all as big-endian int32. The result is embedded into
// checkpoint snapshots; DecodeTree inverts it.
func (t *ORBTree) Encode() []byte {
	buf := make([]byte, 0, len(orbMagic)+4*(2+geom.MaxD+1)+orbNodeBytes*t.n)
	buf = append(buf, orbMagic...)
	put := func(v int32) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(v))
	}
	put(int32(t.D))
	put(int32(t.P))
	for i := 0; i < geom.MaxD; i++ {
		put(int32(t.BlockDims[i]))
	}
	put(int32(t.n))
	for i := 0; i < t.n; i++ {
		nd := &t.Nodes[i]
		for k := 0; k < geom.MaxD; k++ {
			put(nd.Lo[k])
		}
		for k := 0; k < geom.MaxD; k++ {
			put(nd.Hi[k])
		}
		put(nd.Rank0)
		put(nd.NRank)
		put(nd.Dim)
		put(nd.Cut)
		put(nd.Left)
		put(nd.Right)
	}
	return buf
}

// DecodeTree parses and fully validates a serialized tree. It never
// panics on hostile input: every length and every structural invariant
// is checked before use.
func DecodeTree(b []byte) (*ORBTree, error) {
	headerLen := len(orbMagic) + 4*(2+geom.MaxD+1)
	if len(b) < headerLen {
		return nil, fmt.Errorf("decomp: ORB payload %d bytes, header needs %d", len(b), headerLen)
	}
	if string(b[:len(orbMagic)]) != orbMagic {
		return nil, fmt.Errorf("decomp: ORB payload magic %q", b[:len(orbMagic)])
	}
	off := len(orbMagic)
	get := func() int32 {
		v := int32(binary.BigEndian.Uint32(b[off:]))
		off += 4
		return v
	}
	t := &ORBTree{D: int(get()), P: int(get())}
	for i := 0; i < geom.MaxD; i++ {
		t.BlockDims[i] = int(get())
	}
	n := int(get())
	if t.P < 1 || t.P > orbMaxRanks || n != 2*t.P-1 {
		return nil, fmt.Errorf("decomp: ORB payload declares %d nodes for %d ranks", n, t.P)
	}
	if want := headerLen + orbNodeBytes*n; len(b) != want {
		return nil, fmt.Errorf("decomp: ORB payload %d bytes, %d nodes need %d", len(b), n, want)
	}
	t.n = n
	t.Nodes = make([]ORBNode, n)
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		for k := 0; k < geom.MaxD; k++ {
			nd.Lo[k] = get()
		}
		for k := 0; k < geom.MaxD; k++ {
			nd.Hi[k] = get()
		}
		nd.Rank0 = get()
		nd.NRank = get()
		nd.Dim = get()
		nd.Cut = get()
		nd.Left = get()
		nd.Right = get()
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	maxDim := 1
	for i := 0; i < t.D; i++ {
		if t.BlockDims[i] > maxDim {
			maxDim = t.BlockDims[i]
		}
	}
	t.line = make([]float64, maxDim)
	return t, nil
}

// repartitionORB is the ORB counterpart of repartition: rebuild the
// cut planes from the smoothed costs, compare the predicted peak load
// of the new brick map against the current ownership, and adopt the
// tree when it clears the hysteresis margin. The very first epoch
// always adopts — even at equal predicted compute, the contiguous
// bricks beat the scattered cyclic deal on halo surface, which the
// peak-load comparison cannot see. Returns whether ownership changed.
func (dm *Domain) repartitionORB() bool {
	l := dm.L
	if dm.orbNext == nil {
		dm.orbNext = NewORBTree(l)
	}
	dm.orbNext.Build(l, dm.costEWMA)
	newOwner := dm.newOwnerVec
	dm.orbNext.Owners(l, newOwner)

	load := dm.rankLoad
	for r := range load {
		load[r] = 0
	}
	curMax := 0.0
	for id := 0; id < l.B; id++ {
		load[l.RankOfBlock(id)] += dm.costEWMA[id]
	}
	for _, ld := range load {
		if ld > curMax {
			curMax = ld
		}
	}
	for r := range load {
		load[r] = 0
	}
	newMax := 0.0
	for id := 0; id < l.B; id++ {
		load[newOwner[id]] += dm.costEWMA[id]
	}
	for _, ld := range load {
		if ld > newMax {
			newMax = ld
		}
	}

	hyst := dm.RebalanceHyst
	if hyst <= 0 {
		hyst = DefaultRebalanceHyst
	}
	if dm.orb != nil && curMax <= newMax*(1+hyst) {
		return false
	}

	if dm.orb == nil {
		// First adoption: count every cut plane as placed.
		dm.TC.CutShifts += int64(l.P - 1)
		dm.orb = dm.orbNext
		dm.orbNext = NewORBTree(l)
	} else {
		dm.TC.CutShifts += cutDiff(dm.orb, dm.orbNext)
		dm.orb, dm.orbNext = dm.orbNext, dm.orb
	}

	changed := false
	for id := 0; id < l.B; id++ {
		dm.prevOwner[id] = l.RankOfBlock(id)
		if dm.prevOwner[id] != newOwner[id] {
			changed = true
		}
		l.SetOwner(id, newOwner[id])
	}
	return changed
}

// SeedORBTree installs a previously adopted tree (restored from a
// checkpoint) as the current decomposition, so the first rebalance
// epoch of a resumed run applies hysteresis against it instead of
// re-adopting from scratch. The caller must already have applied the
// tree's ownership to the layout the domain was built over. The tree
// is cloned: the config it arrives through is shared across rank
// goroutines.
func (dm *Domain) SeedORBTree(t *ORBTree) {
	dm.orb = t.Clone()
}

// ORBTreeSnapshot returns a private copy of the currently adopted
// tree, or nil when no ORB epoch has adopted one.
func (dm *Domain) ORBTreeSnapshot() *ORBTree {
	if dm.orb == nil {
		return nil
	}
	return dm.orb.Clone()
}
