package decomp

import (
	"sync"
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
)

// gatherGlobal reconstructs the global position array (indexed by ID)
// from one rank's owned blocks into the shared slice; ranks own
// disjoint IDs and mp.Run joins before the caller reads, so the writes
// never race.
func gatherGlobal(dm *Domain, global []geom.Vec) {
	for _, b := range dm.Blocks {
		for i := 0; i < b.NCore; i++ {
			global[b.PS.ID[i]] = b.PS.PosAt(i)
		}
	}
}

// TestRebalanceOwnershipInvariants: after a rebalanced Rebuild of a
// clustered bed, every rank must hold the identical ownership table,
// the blocks must still partition [0, B), no rank may be left without
// a block, every particle must live on its owner, and the halos must
// satisfy the full replication oracle.
func TestRebalanceOwnershipInvariants(t *testing.T) {
	const n = 600
	const p = 4
	const bpp = 4
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, p, bpp)

	owners := make([][]int, p)
	counts := make([]int, p)
	blocks := make([]int, p)
	global := make([]geom.Vec, n)
	errs := make([]error, p)
	var mu sync.Mutex
	moved := int64(0)
	mp.Run(p, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.Rebalance = StrategyLPT
		// Bottom quarter of the box: the cyclic deal leaves ranks
		// owning only top blocks nearly idle.
		dm.FillClustered(n, 11, 0.5, 0.25)
		gatherGlobal(dm, global)
		dm.Rebuild(true)

		own := make([]int, l.B)
		for id := 0; id < l.B; id++ {
			own[id] = dm.L.RankOfBlock(id)
		}
		owners[c.Rank()] = own
		for _, b := range dm.Blocks {
			counts[c.Rank()] += b.NCore
			for i := 0; i < b.NCore; i++ {
				if l.BlockOfPos(b.PS.PosAt(i)) != b.ID {
					t.Errorf("rank %d: particle %d in wrong block", c.Rank(), b.PS.ID[i])
				}
			}
		}
		blocks[c.Rank()] = len(dm.Blocks)
		errs[c.Rank()] = dm.VerifyHalos(global, nil, 0)
		mu.Lock()
		moved += dm.TC.BlocksMoved
		mu.Unlock()
	})

	for r := 1; r < p; r++ {
		for id := 0; id < l.B; id++ {
			if owners[r][id] != owners[0][id] {
				t.Fatalf("rank %d disagrees with rank 0 on owner of block %d: %d vs %d",
					r, id, owners[r][id], owners[0][id])
			}
		}
	}
	perRank := make([]int, p)
	for id := 0; id < l.B; id++ {
		o := owners[0][id]
		if o < 0 || o >= p {
			t.Fatalf("block %d owned by invalid rank %d", id, o)
		}
		perRank[o]++
	}
	total := 0
	for r := 0; r < p; r++ {
		if perRank[r] == 0 {
			t.Errorf("rank %d left without blocks", r)
		}
		if blocks[r] != perRank[r] {
			t.Errorf("rank %d holds %d blocks but owns %d", r, blocks[r], perRank[r])
		}
		total += counts[r]
		if errs[r] != nil {
			t.Errorf("rank %d halo oracle: %v", r, errs[r])
		}
	}
	if total != n {
		t.Fatalf("rebalance lost particles: %d of %d", total, n)
	}
	if moved == 0 {
		t.Fatalf("clustered bed moved no blocks; the repartitioner never fired")
	}
}

// TestRebalanceReducesPeakCoreCount: on the clustered bed the LPT deal
// must strictly reduce the most-loaded rank's core-particle count
// relative to the static cyclic map.
func TestRebalanceReducesPeakCoreCount(t *testing.T) {
	const n = 800
	const p = 4
	const bpp = 4
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, p, bpp)

	peak := func(rebalance Strategy) int {
		counts := make([]int, p)
		mp.Run(p, nil, func(c *mp.Comm) {
			dm := NewDomain(l, c, false)
			dm.Rebalance = rebalance
			dm.FillClustered(n, 3, 0.5, 0.25)
			dm.Rebuild(true)
			counts[c.Rank()] = dm.NumCore()
		})
		m := 0
		for _, v := range counts {
			if v > m {
				m = v
			}
		}
		return m
	}

	static := peak(StrategyOff)
	dynamic := peak(StrategyLPT)
	if dynamic >= static {
		t.Fatalf("rebalance did not reduce the peak core count: static %d, dynamic %d", static, dynamic)
	}
}

// TestRebalanceHysteresisHoldsMap: with an effectively infinite
// hysteresis threshold the repartitioner must never move a block, even
// on a badly imbalanced bed.
func TestRebalanceHysteresisHoldsMap(t *testing.T) {
	const n = 400
	const p = 4
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, p, 4)
	mp.Run(p, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.Rebalance = StrategyLPT
		dm.RebalanceHyst = 1e12
		dm.FillClustered(n, 5, 0.5, 0.25)
		dm.Rebuild(true)
		for id := 0; id < l.B; id++ {
			if dm.L.RankOfBlock(id) != l.CyclicRankOfBlock(id) {
				t.Errorf("rank %d: block %d moved despite infinite hysteresis", c.Rank(), id)
			}
		}
		if dm.TC.BlocksMoved != 0 {
			t.Errorf("rank %d: %d blocks moved despite infinite hysteresis", c.Rank(), dm.TC.BlocksMoved)
		}
	})
}

// TestRebalanceLayoutIsolation: the rebalancer must mutate only its
// rank-private clone — the layout handed to NewDomain stays on the
// static cyclic deal.
func TestRebalanceLayoutIsolation(t *testing.T) {
	const n = 400
	const p = 4
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, p, 4)
	mp.Run(p, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.Rebalance = StrategyLPT
		dm.FillClustered(n, 11, 0.5, 0.25)
		dm.Rebuild(true)
	})
	for id := 0; id < l.B; id++ {
		if l.RankOfBlock(id) != l.CyclicRankOfBlock(id) {
			t.Fatalf("shared layout mutated: block %d now on rank %d", id, l.RankOfBlock(id))
		}
	}
}

// TestRebalanceRepeatedEpochsStress drives many rebalanced rebuilds
// with particles shuffled between epochs, exercising block retirement
// and revival, re-slotting, and the transfer protocol under the race
// detector (decomp is in CI's race list). Conservation is asserted
// after every epoch.
func TestRebalanceRepeatedEpochsStress(t *testing.T) {
	const n = 500
	const p = 4
	const epochs = 8
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, p, 4)
	counts := make([]int, p)
	mp.Run(p, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.Rebalance = StrategyLPT
		dm.RebalanceHyst = 0.01 // eager: maximise churn
		dm.FillClustered(n, 29, 1, 0.25)
		for e := 0; e < epochs; e++ {
			dm.Rebuild(e%2 == 0)
			counts[c.Rank()] = dm.NumCore()
			got := dm.C.AllreduceScalar(float64(dm.NumCore()), mp.Sum)
			if int(got) != n {
				t.Errorf("epoch %d: %d particles, want %d", e, int(got), n)
			}
			// Shove every core particle by a pseudo-random kick keyed
			// by its ID so migration and the next cost vector change
			// each epoch (identical regardless of which rank computes
			// it).
			for _, b := range dm.Blocks {
				for i := 0; i < b.NCore; i++ {
					id := b.PS.ID[i]
					for k := 0; k < l.D; k++ {
						kick := 0.3 * float64((int(id)*131+k*17+e*29)%200-100) / 100
						b.PS.Pos[k][i] += kick
					}
				}
			}
		}
	})
}
