package decomp

import (
	"fmt"

	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
)

// Dynamic block→rank load balancing.
//
// The paper's static block-cyclic deal balances clustered systems only
// by refining granularity (large B), paying surface overhead on every
// block. The rebalancer instead keeps B coarse and moves whole blocks
// between ranks when the measured load drifts: at every list rebuild
// each rank prices its blocks (links + core particles, EWMA-smoothed
// across epochs), the cost vector is combined across ranks, and every
// rank runs the same deterministic longest-processing-time-first
// repartition over it. A hysteresis threshold keeps near-balanced maps
// from churning. Because the halo build and migration delivery orders
// are canonicalised to be ownership-independent, a rebalanced run is
// bit-identical to the static layout — ownership is bookkeeping, the
// physics never notices.

// DefaultRebalanceHyst is the relative peak-load improvement a new map
// must offer before blocks are moved.
const DefaultRebalanceHyst = 0.05

// rebalanceEWMA is the smoothing weight of the newest cost sample.
const rebalanceEWMA = 0.5

// blockCost prices one block for the repartitioner: its link count
// from the last list build plus its core particle count, plus a unit
// floor for the fixed per-block overhead. The floor keeps every cost
// positive, so with B >= P the LPT deal leaves no rank without blocks.
func blockCost(b *Block) float64 {
	c := float64(b.NCore) + 1
	if b.List != nil {
		c += float64(len(b.List.Links))
	}
	return c
}

// rebalance runs one load-balancing epoch. It is collective: every
// rank calls it at the same point of its communication schedule
// (inside Rebuild, between migration and the halo build, while halos
// are empty). On return the ownership table is identical on all ranks
// and every block's core particles live on its owner.
func (dm *Domain) rebalance() {
	l := dm.L
	t0 := dm.C.Clock()
	dm.rebalanced = false

	if dm.costVec == nil {
		dm.costVec = make([]float64, l.B)
		dm.costEWMA = make([]float64, l.B)
		dm.lptOrder = make([]int, l.B)
		dm.rankLoad = make([]float64, l.P)
		dm.newOwnerVec = make([]int, l.B)
		dm.prevOwner = make([]int, l.B)
		dm.retired = make(map[int]*Block)
	}

	// 1. Price owned blocks and combine: each block has exactly one
	// owner, so the rank-ordered sum is a concatenation, identical on
	// every rank (this is the allocation-free stand-in for an
	// allgather of per-rank cost slices).
	for i := range dm.costVec {
		dm.costVec[i] = 0
	}
	for _, b := range dm.Blocks {
		dm.costVec[b.ID] = blockCost(b)
	}
	dm.C.AllreduceInPlace(dm.costVec, mp.Sum)
	for id, c := range dm.costVec {
		if dm.costEWMA[id] > 0 {
			dm.costEWMA[id] = rebalanceEWMA*c + (1-rebalanceEWMA)*dm.costEWMA[id]
		} else {
			dm.costEWMA[id] = c
		}
	}

	// 2. Repartition (identical deterministic computation everywhere,
	// no further communication) with hysteresis. Both strategies write
	// the same ownership table, so everything downstream is shared.
	var changed bool
	if dm.Rebalance == StrategyORB {
		changed = dm.repartitionORB()
	} else {
		changed = dm.repartition()
	}
	if !changed {
		dm.rebalT0, dm.rebalT1 = t0, dm.C.Clock()
		return
	}

	// 3. Move whole blocks to their new owners: eager sends first,
	// then receives, both in ascending block id order, so the protocol
	// cannot deadlock and matches deterministically.
	dm.transferBlocks()

	dm.rebalT0, dm.rebalT1 = t0, dm.C.Clock()
	dm.rebalanced = true
}

// repartition computes the LPT deal over the smoothed costs: blocks
// sorted by cost descending (ties: lower id first) are assigned
// greedily to the least-loaded rank (ties: lowest rank). The new map
// is adopted only when its peak load beats the current map's by more
// than the hysteresis margin (total cost — hence mean load — is the
// same under both maps, so comparing peaks compares imbalance ratios).
// Returns whether the ownership table changed.
func (dm *Domain) repartition() bool {
	l := dm.L
	cost := dm.costEWMA

	order := dm.lptOrder
	for i := range order {
		order[i] = i
	}
	// Insertion sort: B is small and sort.Slice would allocate.
	for i := 1; i < len(order); i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && (cost[v] > cost[order[j]] || (cost[v] == cost[order[j]] && v < order[j])) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}

	load := dm.rankLoad
	for r := range load {
		load[r] = 0
	}
	curMax := 0.0
	for id := 0; id < l.B; id++ {
		load[l.RankOfBlock(id)] += cost[id]
	}
	for _, ld := range load {
		if ld > curMax {
			curMax = ld
		}
	}

	for r := range load {
		load[r] = 0
	}
	newOwner := dm.newOwnerVec
	for _, id := range order {
		r := 0
		for q := 1; q < l.P; q++ {
			if load[q] < load[r] {
				r = q
			}
		}
		newOwner[id] = r
		load[r] += cost[id]
	}
	newMax := 0.0
	for _, ld := range load {
		if ld > newMax {
			newMax = ld
		}
	}

	hyst := dm.RebalanceHyst
	if hyst <= 0 {
		hyst = DefaultRebalanceHyst
	}
	if curMax <= newMax*(1+hyst) {
		return false
	}

	changed := false
	for id := 0; id < l.B; id++ {
		dm.prevOwner[id] = l.RankOfBlock(id)
		if dm.prevOwner[id] != newOwner[id] {
			changed = true
		}
		l.SetOwner(id, newOwner[id])
	}
	return changed
}

// transferBlocks ships every block whose owner changed from its old
// owner to its new one (positions, velocities, ids of the core
// particles — halos are empty here) and re-slots dm.Blocks to the new
// ownership, keeping it sorted by ascending block id. Block structures
// sent away are retired to a cache and revived when a block returns,
// so repeated rebalances recycle their storage.
func (dm *Domain) transferBlocks() {
	l := dm.L
	d := l.D
	me := dm.C.Rank()
	perF := 2 * d

	sent := 0
	for id := 0; id < l.B; id++ {
		if dm.prevOwner[id] != me || l.RankOfBlock(id) == me {
			continue
		}
		b := dm.Blocks[dm.slot[id]]
		f := dm.xferF[:0]
		ids := dm.xferI[:0]
		for i := 0; i < b.NCore; i++ {
			p := b.PS.PosAt(i)
			v := b.PS.VelAt(i)
			for k := 0; k < d; k++ {
				f = append(f, p[k])
			}
			for k := 0; k < d; k++ {
				f = append(f, v[k])
			}
			ids = append(ids, b.PS.ID[i])
		}
		dm.xferF, dm.xferI = f, ids
		dm.C.Compute(float64(b.NCore) * dm.packCost())
		dm.C.Send(l.RankOfBlock(id), dm.tagFor(phaseXfer, id, 0, 0), f, ids)
		b.NCore = 0
		b.resetHalo()
		dm.retired[id] = b
		sent++
	}

	// Re-slot: rebuild the owned-block list in ascending id order,
	// reviving retired structures where possible.
	blocks := dm.blockScratch[:0]
	for id := 0; id < l.B; id++ {
		if l.RankOfBlock(id) != me {
			continue
		}
		if dm.prevOwner[id] == me {
			blocks = append(blocks, dm.Blocks[dm.slot[id]])
		} else if b, ok := dm.retired[id]; ok {
			delete(dm.retired, id)
			blocks = append(blocks, b)
		} else {
			blocks = append(blocks, newBlock(l, id))
		}
	}
	dm.blockScratch = dm.Blocks[:0]
	dm.Blocks = blocks
	for id := range dm.slot {
		delete(dm.slot, id)
	}
	for s, b := range dm.Blocks {
		dm.slot[b.ID] = s
	}

	for id := 0; id < l.B; id++ {
		if l.RankOfBlock(id) != me || dm.prevOwner[id] == me {
			continue
		}
		f, ids := dm.C.Recv(dm.prevOwner[id], dm.tagFor(phaseXfer, id, 0, 0))
		n := len(ids)
		if len(f) != perF*n {
			panic(fmt.Sprintf("decomp: block transfer payload %d floats for %d particles", len(f), n))
		}
		b := dm.Blocks[dm.slot[id]]
		b.NCore = 0
		b.resetHalo()
		for i := 0; i < n; i++ {
			var p, v geom.Vec
			for k := 0; k < d; k++ {
				p[k] = f[perF*i+k]
				v[k] = f[perF*i+d+k]
			}
			b.PS.Append(p, v, ids[i])
		}
		b.NCore = n
		dm.C.Compute(float64(n) * dm.packCost())
		dm.C.FreeBuffers(f, ids)
	}

	dm.TC.Rebalances++
	dm.TC.BlocksMoved += int64(sent)
}

// LastRebalance reports the virtual-time interval the most recent
// Rebuild spent in the rebalancer and whether ownership changed. With
// Rebalance off it reports a moved=false, zero-width interval.
func (dm *Domain) LastRebalance() (t0, t1 float64, moved bool) {
	return dm.rebalT0, dm.rebalT1, dm.rebalanced
}
