package decomp

import (
	"fmt"

	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
)

// Shared-window halo exchange (mpism mode): ranks sharing an SMP node
// satisfy their halo refresh by fenced loads from the owner's shared
// window instead of exchanging messages. The owner packs exactly the
// floats the message path would have sent — same templates, same
// order — into a per-leg region of its window; after a fence the
// reader runs the same overwriteSeg unpack on a direct view of that
// region. Trajectories are therefore bit-identical to the message
// path by construction. Inter-node legs, halo construction, the
// window-layout directory and migration stay message-based: they
// either cross nodes or run at rebuild time, outside the per-step
// window epochs.

// winLeg is one reader-side windowed halo leg: the segment it
// refreshes plus where the owner's window holds the packed data.
type winLeg struct {
	b    *Block
	seg  haloSeg
	peer int // owner's index within the node group
	off  int // float offset of the leg in the owner's window
}

// SetWin attaches a shared window spanning this rank's node group.
// Must be called before the first Rebuild. The domain then serves
// every same-node halo leg through the window; ranks on single-rank
// nodes simply never call this and keep the pure message path.
func (dm *Domain) SetWin(win *mp.Win) {
	dm.win = win
	if cap(dm.winIdx) < dm.L.P {
		dm.winIdx = make([]int, dm.L.P)
	}
	dm.winIdx = dm.winIdx[:dm.L.P]
	for r := range dm.winIdx {
		dm.winIdx[r] = -1
	}
	for i, r := range win.Group().Ranks() {
		dm.winIdx[r] = i
	}
	if dm.dirOut == nil {
		dm.dirOut = make([][]int32, win.Group().Size())
	}
}

// winPeer returns rank's index within the node group, or -1 when the
// rank is on another node (or no window is attached).
func (dm *Domain) winPeer(rank int) int {
	if dm.win == nil {
		return -1
	}
	return dm.winIdx[rank]
}

// buildWinExchange lays this rank's windowed halo legs out in its
// window and exchanges the layout with its node peers. Runs at every
// rebuild, after buildHalos has fixed the send templates and halo
// segments. Collective over the node group (Reserve fences inside).
//
// The reader cannot derive the owner's window layout — it depends on
// the owner's block set and its iteration order, which dynamic
// rebalancing changes — so each owner messages every node peer a
// directory of (dstBlock, dim, side, offset, count) entries for the
// legs aimed at that peer. (dstBlock, dim, side) identifies a halo
// segment uniquely: a block face has exactly one neighbour.
func (dm *Domain) buildWinExchange() {
	d := dm.L.D
	per := d
	if dm.WithVel {
		per = 2 * d
	}
	me := dm.C.Rank()

	// Owner side: walk the legs in the (dim, block, side) order the
	// refresh packs them, assigning each windowed leg a contiguous
	// region, and batch the directory entries per destination peer.
	nb := len(dm.Blocks)
	if cap(dm.winOff) < nb {
		dm.winOff = make([][geom.MaxD][2]int, nb)
	}
	dm.winOff = dm.winOff[:nb]
	for gi := range dm.dirOut {
		dm.dirOut[gi] = dm.dirOut[gi][:0]
	}
	total := 0
	for dim := 0; dim < d; dim++ {
		for bi, b := range dm.Blocks {
			for side := 0; side < 2; side++ {
				dm.winOff[bi][dim][side] = -1
				dir := 2*side - 1
				nbID, _, ok := dm.L.Neighbor(b.ID, dim, dir)
				if !ok {
					continue
				}
				dstRank := dm.L.RankOfBlock(nbID)
				gi := dm.winPeer(dstRank)
				if dstRank == me || gi < 0 {
					continue
				}
				n := len(b.sendIdx[dim][side])
				dm.winOff[bi][dim][side] = total
				dm.dirOut[gi] = append(dm.dirOut[gi],
					int32(nbID), int32(dim), int32(1-side), int32(total), int32(n))
				total += per * n
			}
		}
	}
	dm.win.Reserve(total)

	// Directory exchange: peers in ascending rank order, empty
	// payloads included so every receive has a matching send.
	for gi, q := range dm.win.Group().Ranks() {
		if q == me {
			continue
		}
		dm.C.Send(q, dm.tagFor(phaseWinDir, 0, 0, 0), nil, dm.dirOut[gi])
	}
	for dim := 0; dim < geom.MaxD; dim++ {
		dm.winLegs[dim] = dm.winLegs[dim][:0]
	}
	for gi, q := range dm.win.Group().Ranks() {
		if q == me {
			continue
		}
		_, ents := dm.C.Recv(q, dm.tagFor(phaseWinDir, 0, 0, 0))
		for k := 0; k+5 <= len(ents); k += 5 {
			blk, dim, side := int(ents[k]), int(ents[k+1]), int(ents[k+2])
			off, count := int(ents[k+3]), int(ents[k+4])
			s, ok := dm.slot[blk]
			if !ok {
				panic(fmt.Sprintf("decomp: rank %d received window directory for foreign block %d", me, blk))
			}
			b := dm.Blocks[s]
			found := false
			for _, seg := range b.segs {
				if seg.dim == dim && seg.side == side && seg.srcRank == q {
					if seg.count != count {
						panic(fmt.Sprintf("decomp: window leg for block %d dim %d side %d holds %d particles, segment expects %d",
							blk, dim, side, count, seg.count))
					}
					dm.winLegs[dim] = append(dm.winLegs[dim], winLeg{b: b, seg: seg, peer: gi, off: off})
					found = true
					break
				}
			}
			if !found {
				panic(fmt.Sprintf("decomp: no halo segment matches window leg block %d dim %d side %d from rank %d",
					blk, dim, side, q))
			}
		}
		dm.C.FreeBuffers(nil, ents)
	}
}

// packParticles gathers positions (and optionally velocities) of the
// indexed particles into dst, which must hold exactly per*len(idx)
// floats — the in-place (window region) form of appendParticles,
// emitting the identical float sequence.
func packParticles(dst []float64, b *Block, idx []int32, d int, withVel bool) {
	at := 0
	for _, i := range idx {
		for k := 0; k < d; k++ {
			dst[at] = b.PS.Pos[k][i]
			at++
		}
		if withVel {
			for k := 0; k < d; k++ {
				dst[at] = b.PS.Vel[k][i]
				at++
			}
		}
	}
}
