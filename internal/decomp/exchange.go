package decomp

import (
	"fmt"

	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
)

// boolToInt converts for payload arithmetic.
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// appendParticles gathers positions (and optionally velocities) of the
// indexed particles onto dst: D coordinates per particle, then D
// velocity components when withVel is set. Callers pass a persistent
// per-leg buffer resliced to [:0], so the gather allocates only while
// the buffer grows towards its steady-state size.
func appendParticles(dst []float64, b *Block, idx []int32, d int, withVel bool) []float64 {
	for _, i := range idx {
		for k := 0; k < d; k++ {
			dst = append(dst, b.PS.Pos[k][i])
		}
		if withVel {
			for k := 0; k < d; k++ {
				dst = append(dst, b.PS.Vel[k][i])
			}
		}
	}
	return dst
}

// localLeg stages one same-rank halo delivery so that all gathers of a
// dimension complete before any append mutates a store.
type localLeg struct {
	dst   *Block
	dim   int
	side  int
	shift geom.Vec
	src   *Block
	f     []float64
	ids   []int32
}

// buildHalos constructs the halo templates and performs the initial
// exchange, dimension by dimension so corner data propagates. Must run
// with empty halos (migrate guarantees this).
func (dm *Domain) buildHalos() {
	d := dm.L.D
	rc := dm.L.RC
	for dim := 0; dim < d; dim++ {
		locals := dm.locals[:0]
		// Gather + send for both faces of every owned block.
		for _, b := range dm.Blocks {
			for side := 0; side < 2; side++ {
				dir := 2*side - 1 // side 0 -> lower face -> dir -1
				nb, _, ok := dm.L.Neighbor(b.ID, dim, dir)
				if !ok {
					continue
				}
				idx := b.coreSlab(dim, side, rc)
				// Data sent towards dir lands on the *opposite* face
				// of the neighbour.
				dstSide := 1 - side
				f := appendParticles(b.packBuf[dim][side][:0], b, idx, d, dm.WithVel)
				b.packBuf[dim][side] = f
				ids := b.idBuf[dim][side][:0]
				for _, i := range idx {
					ids = append(ids, b.PS.ID[i])
				}
				b.idBuf[dim][side] = ids
				dm.C.Compute(float64(len(idx)) * dm.packCost())
				dstRank := dm.L.RankOfBlock(nb)
				if dstRank == dm.C.Rank() {
					dst := dm.Blocks[dm.slot[nb]]
					_, shift, _ := dm.L.Neighbor(nb, dim, -dir)
					locals = append(locals, localLeg{dst: dst, dim: dim, side: dstSide, shift: shift, src: b, f: f, ids: ids})
				} else {
					dm.C.Send(dstRank, dm.tagFor(phaseBuild, nb, dim, dstSide), f, ids)
				}
			}
		}
		// Append both faces of every owned block in one deterministic
		// (block, side) order, interleaving remote receives with the
		// staged same-rank legs. A block's halo layout is then a pure
		// function of (block id, dim, side) — independent of which
		// rank happens to own each neighbour — which is what lets the
		// dynamic rebalancer keep trajectories bit-identical to the
		// static block-cyclic layout.
		for _, b := range dm.Blocks {
			for side := 0; side < 2; side++ {
				dir := 2*side - 1
				nb, shift, ok := dm.L.Neighbor(b.ID, dim, dir)
				if !ok {
					continue
				}
				srcRank := dm.L.RankOfBlock(nb)
				if srcRank == dm.C.Rank() {
					for _, leg := range locals {
						if leg.dst == b && leg.side == side {
							dm.chargeSelf(len(leg.ids), d+boolToInt(dm.WithVel)*d)
							dm.appendHalo(b, leg.src.ID, srcRank, dim, side, leg.shift, leg.f, leg.ids)
							break
						}
					}
				} else {
					f, ids := dm.C.Recv(srcRank, dm.tagFor(phaseBuild, b.ID, dim, side))
					dm.appendHalo(b, nb, srcRank, dim, side, shift, f, ids)
					dm.C.FreeBuffers(f, ids)
				}
			}
		}
		dm.locals = locals[:0]
	}
}

// appendHalo unpacks one received leg into dst as a new halo segment.
func (dm *Domain) appendHalo(dst *Block, srcBlock, srcRank, dim, side int, shift geom.Vec, f []float64, ids []int32) {
	d := dm.L.D
	per := d
	if dm.WithVel {
		per = 2 * d
	}
	n := len(ids)
	if len(f) != per*n {
		panic(fmt.Sprintf("decomp: halo payload %d floats for %d ids", len(f), n))
	}
	seg := haloSeg{
		srcRank: srcRank, srcBlock: srcBlock,
		dim: dim, side: side,
		start: dst.PS.Len(), count: n, shift: shift,
	}
	for i := 0; i < n; i++ {
		var p, v geom.Vec
		for k := 0; k < d; k++ {
			p[k] = f[per*i+k] + shift[k]
		}
		if dm.WithVel {
			for k := 0; k < d; k++ {
				v[k] = f[per*i+d+k]
			}
		}
		dst.PS.Append(p, v, ids[i])
	}
	dst.segs = append(dst.segs, seg)
	dm.C.Compute(float64(n) * dm.packCost())
}

// pendingLeg is one in-flight receive of a split-phase halo refresh:
// the posted request plus the segment it will overwrite.
type pendingLeg struct {
	req *mp.Request
	b   *Block
	seg haloSeg
}

// RefreshHalos re-sends every halo template and overwrites the halo
// segments in place — the per-iteration halo swap. "The same MPI types
// can be used for many iterations until the list of links becomes
// invalid." It is exactly BeginRefreshHalos followed immediately by
// FinishRefreshHalos; drivers that overlap communication with the
// core-link force loop call the two halves themselves.
func (dm *Domain) RefreshHalos() {
	dm.BeginRefreshHalos()
	dm.FinishRefreshHalos()
}

// BeginRefreshHalos starts a split-phase halo refresh: it packs and
// sends the first dimension's legs and posts the matching receives,
// then returns so the caller can compute on core data while the
// messages are in flight. Only dimension 0 can be posted here — later
// dimensions' send templates include halo particles received in
// earlier dimensions (corner data propagates through faces), so
// FinishRefreshHalos stages them leg by leg as each dimension lands.
// Core positions are read (packed) only inside Begin and inside the
// per-dimension posting, never concurrently with the caller's force
// loop; halo storage is written only by FinishRefreshHalos.
func (dm *Domain) BeginRefreshHalos() {
	if dm.refreshDim >= 0 {
		panic("decomp: BeginRefreshHalos with a refresh already in flight")
	}
	dm.postRefreshDim(0)
	dm.refreshDim = 0
}

// FinishRefreshHalos drains an in-flight refresh to completion: each
// dimension in order waits its posted receives, overwrites the halo
// segments, and posts the next dimension. On return every halo
// position (and velocity) is current.
func (dm *Domain) FinishRefreshHalos() {
	if dm.refreshDim < 0 {
		panic("decomp: FinishRefreshHalos without BeginRefreshHalos")
	}
	for dm.FinishRefreshDim() {
	}
}

// FinishRefreshDim drains exactly one dimension of an in-flight
// refresh: it waits that dimension's posted receives (in the same
// deterministic block/segment order as the blocking swap), overwrites
// the halo segments, applies the staged same-rank legs, and posts the
// next dimension's legs. It returns true while later dimensions
// remain, so a driver can interleave the drain stages with compute
// that reads no halo data — posting each dimension as early as its
// inputs exist keeps a neighbour's wait on this rank short.
func (dm *Domain) FinishRefreshDim() bool {
	if dm.refreshDim < 0 {
		panic("decomp: FinishRefreshDim without BeginRefreshHalos")
	}
	d := dm.L.D
	per := d
	if dm.WithVel {
		per = 2 * d
	}
	dim := dm.refreshDim
	if dm.win != nil {
		// Close the write epoch: every node peer has packed its
		// dimension-dim legs into its window (postRefreshDim runs before
		// any blocking wait on this dimension), so after the fence the
		// windowed legs are read directly from the owners' windows —
		// same floats, same overwriteSeg unpack as the message path.
		dm.win.Fence()
		for _, wl := range dm.winLegs[dim] {
			f := dm.win.GetView(wl.peer, wl.off, per*wl.seg.count)
			dm.writeSeg(wl.b, wl.seg, f, per)
		}
	}
	for i := range dm.pending {
		pl := &dm.pending[i]
		f, ids := pl.req.Wait()
		dm.overwriteSeg(pl.b, pl.seg, f, per)
		dm.C.FreeBuffers(f, ids)
		pl.req.Release()
		*pl = pendingLeg{}
	}
	dm.pending = dm.pending[:0]
	for _, leg := range dm.locals {
		dst := leg.dst
		dm.chargeSelf(len(leg.f)/per, per)
		for _, seg := range dst.segs {
			if seg.dim == dim && seg.side == leg.side && seg.srcBlock == leg.src.ID && seg.srcRank == dm.C.Rank() {
				dm.overwriteSeg(dst, seg, leg.f, per)
				break
			}
		}
	}
	dm.locals = dm.locals[:0]
	if dim+1 < d {
		dm.postRefreshDim(dim + 1)
		dm.refreshDim = dim + 1
		return true
	}
	dm.refreshDim = -1
	return false
}

// postRefreshDim packs and sends both faces of every owned block for
// one dimension (staging same-rank legs in dm.locals) and posts the
// receives for that dimension's remote segments in the deterministic
// order FinishRefreshHalos will wait on them.
func (dm *Domain) postRefreshDim(dim int) {
	d := dm.L.D
	per := d
	if dm.WithVel {
		per = 2 * d
	}
	for bi, b := range dm.Blocks {
		for side := 0; side < 2; side++ {
			dir := 2*side - 1
			nb, _, ok := dm.L.Neighbor(b.ID, dim, dir)
			if !ok {
				continue
			}
			idx := b.sendIdx[dim][side]
			dstSide := 1 - side
			dstRank := dm.L.RankOfBlock(nb)
			if dstRank != dm.C.Rank() {
				if off := dm.winOffFor(bi, dim, side); off >= 0 {
					// Same-node neighbour: pack straight into this rank's
					// shared window at the leg's reserved offset; the
					// reader loads it after the dimension's fence.
					packParticles(dm.win.Slice(off, per*len(idx)), b, idx, d, dm.WithVel)
					dm.C.Compute(float64(len(idx)) * dm.packCost())
					continue
				}
			}
			f := appendParticles(b.packBuf[dim][side][:0], b, idx, d, dm.WithVel)
			b.packBuf[dim][side] = f
			dm.C.Compute(float64(len(idx)) * dm.packCost())
			if dstRank == dm.C.Rank() {
				dst := dm.Blocks[dm.slot[nb]]
				dm.locals = append(dm.locals, localLeg{dst: dst, dim: dim, side: dstSide, src: b, f: f})
			} else {
				dm.C.ISend(dstRank, dm.tagFor(phaseRefresh, nb, dim, dstSide), f, nil).Release()
			}
		}
	}
	for _, b := range dm.Blocks {
		for _, seg := range b.segs {
			if seg.dim != dim || seg.srcRank == dm.C.Rank() {
				continue
			}
			if dm.winPeer(seg.srcRank) >= 0 {
				continue // served by a fenced window load, not a message
			}
			req := dm.C.IRecv(seg.srcRank, dm.tagFor(phaseRefresh, b.ID, seg.dim, seg.side))
			dm.pending = append(dm.pending, pendingLeg{req: req, b: b, seg: seg})
		}
	}
}

// winOffFor returns the window offset of an owned leg, or -1 when the
// leg is not windowed (no window attached, or the destination rank is
// on another node).
func (dm *Domain) winOffFor(bi, dim, side int) int {
	if dm.win == nil {
		return -1
	}
	return dm.winOff[bi][dim][side]
}

// overwriteSeg writes refreshed coordinates (and velocities) into an
// existing halo segment and charges the receive-side scatter.
func (dm *Domain) overwriteSeg(b *Block, seg haloSeg, f []float64, per int) {
	dm.writeSeg(b, seg, f, per)
	dm.C.Compute(float64(seg.count) * dm.packCost())
}

// writeSeg is the scatter itself, uncharged: the windowed refresh uses
// it because its cost is the fenced window load (GetView) — one
// streaming pass through the owner's packed leg at load bandwidth is
// the whole transfer, with no separate receive-buffer scatter to pay.
func (dm *Domain) writeSeg(b *Block, seg haloSeg, f []float64, per int) {
	d := dm.L.D
	if len(f) != per*seg.count {
		panic(fmt.Sprintf("decomp: refresh payload %d floats for segment of %d", len(f), seg.count))
	}
	for i := 0; i < seg.count; i++ {
		at := seg.start + i
		for k := 0; k < d; k++ {
			b.PS.Pos[k][at] = f[per*i+k] + seg.shift[k]
		}
		if dm.WithVel {
			for k := 0; k < d; k++ {
				b.PS.Vel[k][at] = f[per*i+d+k]
			}
		}
	}
}

// migrate wraps core positions into the global box and moves particles
// whose home block changed, then clears halos. Movers travel in one
// all-to-all round of (possibly empty) per-rank messages carrying
// (srcBlock, dstBlock, id) triples plus pos+vel floats.
func (dm *Domain) migrate() {
	l := dm.L
	d := l.D
	me := dm.C.Rank()
	perF := 2 * d // pos + vel always travel on migration

	for _, b := range dm.Blocks {
		b.resetHalo()
	}

	if dm.migF == nil {
		dm.migF = make([][]float64, l.P)
		dm.migI = make([][]int32, l.P)
	}
	outF := dm.migF
	outI := dm.migI
	for r := 0; r < l.P; r++ {
		outF[r] = outF[r][:0]
		outI[r] = outI[r][:0]
	}
	moved := int64(0)
	for _, b := range dm.Blocks {
		for i := 0; i < b.NCore; {
			p, _ := l.Box.Wrap(b.PS.PosAt(i))
			b.PS.SetPos(i, p)
			home := l.BlockOfPos(p)
			if home == b.ID {
				i++
				continue
			}
			dst := l.RankOfBlock(home)
			outI[dst] = append(outI[dst], int32(b.ID), int32(home), b.PS.ID[i])
			v := b.PS.VelAt(i)
			buf := outF[dst]
			for k := 0; k < d; k++ {
				buf = append(buf, p[k])
			}
			for k := 0; k < d; k++ {
				buf = append(buf, v[k])
			}
			outF[dst] = buf
			b.PS.Remove(i)
			b.NCore--
			moved++
			// do not advance i: Remove swapped a new particle in
		}
	}
	dm.TC.MigratedParts += moved
	dm.C.Compute(float64(moved) * dm.packCost())

	for r := 0; r < l.P; r++ {
		if r == me {
			continue
		}
		dm.C.Send(r, dm.tagFor(phaseMigrate, 0, 0, 0), outF[r], outI[r])
	}

	// Stage every rank's payload, then deliver grouped by *source*
	// block id ascending. Each rank's payload is already sorted by
	// source block (the scan above walks blocks in ascending order), so
	// a P-way cursor merge visits migrants in (srcBlock, position in
	// source store) order — a delivery order independent of which rank
	// owned which source block, the same canonicalisation the halo
	// build applies, needed for rebalanced runs to stay bit-identical
	// to the static layout. Source blocks are disjoint across ranks, so
	// there are no merge ties.
	if dm.recvF == nil {
		dm.recvF = make([][]float64, l.P)
		dm.recvI = make([][]int32, l.P)
		dm.recvAt = make([]int, l.P)
	}
	recvF, recvI, at := dm.recvF, dm.recvI, dm.recvAt
	for r := 0; r < l.P; r++ {
		if r == me {
			recvF[r], recvI[r] = outF[me], outI[me]
		} else {
			recvF[r], recvI[r] = dm.C.Recv(r, dm.tagFor(phaseMigrate, 0, 0, 0))
		}
		at[r] = 0
	}
	for {
		src := -1
		best := int32(0)
		for r := 0; r < l.P; r++ {
			if at[r] >= len(recvI[r]) {
				continue
			}
			if blk := recvI[r][at[r]]; src < 0 || blk < best {
				src, best = r, blk
			}
		}
		if src < 0 {
			break
		}
		// Deliver the full run of entries from this source block.
		i0 := at[src]
		i := i0
		for i < len(recvI[src]) && recvI[src][i] == best {
			i += 3
		}
		dm.deliverMigrants(recvF[src][i0/3*perF:i/3*perF], recvI[src][i0:i], perF)
		at[src] = i
	}
	for r := 0; r < l.P; r++ {
		if r != me {
			dm.C.FreeBuffers(recvF[r], recvI[r])
		}
		recvF[r], recvI[r] = nil, nil
	}
}

// deliverMigrants appends a migration payload's particles to their
// home blocks. Halos are empty during migration, so appending grows
// the cores directly. ints carries (srcBlock, dstBlock, id) triples.
func (dm *Domain) deliverMigrants(f []float64, ints []int32, perF int) {
	d := dm.L.D
	n := len(ints) / 3
	if len(f) != perF*n {
		panic(fmt.Sprintf("decomp: migrate payload %d floats for %d particles", len(f), n))
	}
	for i := 0; i < n; i++ {
		home := int(ints[3*i+1])
		id := ints[3*i+2]
		s, ok := dm.slot[home]
		if !ok {
			panic(fmt.Sprintf("decomp: rank %d received migrant for foreign block %d", dm.C.Rank(), home))
		}
		var p, v geom.Vec
		for k := 0; k < d; k++ {
			p[k] = f[perF*i+k]
			v[k] = f[perF*i+d+k]
		}
		b := dm.Blocks[s]
		b.PS.Append(p, v, id)
		b.NCore++
	}
	dm.C.Compute(float64(n) * dm.packCost())
}
