package decomp

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
	"hybriddem/internal/particle"
)

func mustLayout(t *testing.T, box geom.Box, rc float64, p, bpp int) *Layout {
	t.Helper()
	l, err := NewLayout(box, rc, p, bpp)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutBlockAssignmentBijective(t *testing.T) {
	box := geom.NewBox(2, 10, geom.Periodic)
	for _, p := range []int{1, 2, 4, 6} {
		for _, bpp := range []int{1, 2, 4} {
			l := mustLayout(t, box, 0.5, p, bpp)
			if l.B != p*bpp {
				t.Errorf("P=%d bpp=%d: B=%d", p, bpp, l.B)
			}
			counts := make([]int, p)
			var all []int
			for r := 0; r < p; r++ {
				ids := l.BlocksOfRank(r)
				counts[r] = len(ids)
				all = append(all, ids...)
				for _, id := range ids {
					if l.RankOfBlock(id) != r {
						t.Errorf("block %d listed for rank %d but owned by %d", id, r, l.RankOfBlock(id))
					}
				}
			}
			sort.Ints(all)
			for i, id := range all {
				if id != i {
					t.Fatalf("P=%d bpp=%d: blocks not a partition: %v", p, bpp, all)
				}
			}
			// Block-cyclic deal: every rank gets exactly B/P blocks.
			for r, c := range counts {
				if c != bpp {
					t.Errorf("P=%d bpp=%d: rank %d owns %d blocks", p, bpp, r, c)
				}
			}
		}
	}
}

func TestLayoutRegionsTileTheBox(t *testing.T) {
	box := geom.NewBox(3, 6, geom.Periodic)
	l := mustLayout(t, box, 0.5, 4, 2)
	vol := 0.0
	for id := 0; id < l.B; id++ {
		_, span := l.CoreRegion(id)
		v := 1.0
		for k := 0; k < 3; k++ {
			v *= span[k]
		}
		vol += v
	}
	if math.Abs(vol-box.Volume()) > 1e-9 {
		t.Errorf("core regions cover %g of %g", vol, box.Volume())
	}
}

func TestLayoutBlockOfPosConsistent(t *testing.T) {
	box := geom.NewBox(2, 7, geom.Periodic)
	l := mustLayout(t, box, 0.4, 3, 3)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		p := geom.Vec{rng.Float64() * 7, rng.Float64() * 7}
		id := l.BlockOfPos(p)
		origin, span := l.CoreRegion(id)
		for k := 0; k < 2; k++ {
			if p[k] < origin[k]-1e-12 || p[k] > origin[k]+span[k]+1e-12 {
				t.Fatalf("pos %v assigned to block %d [%v,%v)", p, id, origin, span)
			}
		}
	}
}

func TestLayoutRejectsTooFineBlocks(t *testing.T) {
	box := geom.NewBox(2, 1, geom.Periodic)
	if _, err := NewLayout(box, 0.3, 4, 4); err == nil {
		t.Error("expected error when block edge < rc")
	}
	if _, err := NewLayout(box, -1, 1, 1); err == nil {
		t.Error("expected error for negative cutoff")
	}
	if _, err := NewLayout(box, 0.1, 0, 1); err == nil {
		t.Error("expected error for zero ranks")
	}
}

func TestNeighborShiftsOnlyAtWrap(t *testing.T) {
	box := geom.NewBox(1, 8, geom.Periodic)
	l := mustLayout(t, box, 0.5, 4, 1) // 4 blocks along x
	// Interior neighbour: no shift.
	nb, shift, ok := l.Neighbor(1, 0, 1)
	if !ok || nb != 2 || shift != (geom.Vec{}) {
		t.Errorf("interior neighbour: %d %v %v", nb, shift, ok)
	}
	// Wrap below: block 0's lower neighbour is 3, data shifts by -L.
	nb, shift, ok = l.Neighbor(0, 0, -1)
	if !ok || nb != 3 || shift[0] != -8 {
		t.Errorf("wrap low: %d %v %v", nb, shift, ok)
	}
	// Wrap above.
	nb, shift, ok = l.Neighbor(3, 0, 1)
	if !ok || nb != 0 || shift[0] != +8 {
		t.Errorf("wrap high: %d %v %v", nb, shift, ok)
	}
}

func TestNeighborWalledEdges(t *testing.T) {
	box := geom.NewBox(1, 8, geom.Reflecting)
	l := mustLayout(t, box, 0.5, 4, 1)
	if _, _, ok := l.Neighbor(0, 0, -1); ok {
		t.Error("walled lower edge has a neighbour")
	}
	if _, _, ok := l.Neighbor(3, 0, 1); ok {
		t.Error("walled upper edge has a neighbour")
	}
	// Ext region clipped at walls.
	origin, span := l.ExtRegion(0)
	if origin[0] != 0 || math.Abs(span[0]-2.5) > 1e-12 {
		t.Errorf("clipped ext region: %v %v", origin, span)
	}
}

// globalSystem builds a serial reference configuration.
func globalSystem(n, d int, box geom.Box, seed int64, vmax float64) *particle.Store {
	ps := particle.New(d, n)
	rng := rand.New(rand.NewSource(seed))
	if vmax > 0 {
		particle.FillUniformVel(ps, n, box, vmax, 0, rng)
	} else {
		particle.FillUniform(ps, n, box, 0, rng)
	}
	return ps
}

func TestFillUniformPartitionsExactly(t *testing.T) {
	const n = 500
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, 4, 2)
	seen := make([]int, n)
	mp.Run(4, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.FillUniform(n, 7, 0.5)
		for _, b := range dm.Blocks {
			for i := 0; i < b.NCore; i++ {
				seen[b.PS.ID[i]]++
				if l.BlockOfPos(b.PS.PosAt(i)) != b.ID {
					t.Errorf("particle %d in wrong block", b.PS.ID[i])
				}
			}
		}
	})
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("particle %d owned %d times", id, cnt)
		}
	}
}

// TestHaloReplicationExact: after Rebuild, each block's halo must
// contain exactly the foreign particles within its extended region
// (up to the half-open slab edges).
func TestHaloReplicationExact(t *testing.T) {
	const n = 800
	for _, bc := range []geom.Boundary{geom.Periodic, geom.Reflecting} {
		box := geom.NewBox(2, 10, bc)
		rc := 0.6
		l := mustLayout(t, box, rc, 4, 1)
		ref := globalSystem(n, 2, box, 3, 0)
		mp.Run(4, nil, func(c *mp.Comm) {
			dm := NewDomain(l, c, false)
			dm.FillUniform(n, 3, 0)
			dm.Rebuild(false)
			for _, b := range dm.Blocks {
				// Expected halo IDs: particles of other blocks whose
				// (possibly wrapped) image lies inside the ext region.
				want := map[int32]bool{}
				for i := 0; i < n; i++ {
					if l.BlockOfPos(ref.PosAt(i)) == b.ID {
						continue
					}
					for _, img := range images(ref.PosAt(i), box) {
						inside := true
						for k := 0; k < 2; k++ {
							if img[k] < b.ExtOrigin[k] || img[k] >= b.ExtOrigin[k]+b.ExtSpan[k] {
								inside = false
								break
							}
						}
						if inside {
							want[ref.ID[i]] = true
						}
					}
				}
				got := map[int32]bool{}
				for i := b.NCore; i < b.PS.Len(); i++ {
					got[b.PS.ID[i]] = true
				}
				for id := range want {
					if !got[id] {
						t.Errorf("bc=%v block %d: missing halo particle %d", bc, b.ID, id)
					}
				}
				for id := range got {
					if !want[id] {
						t.Errorf("bc=%v block %d: spurious halo particle %d", bc, b.ID, id)
					}
				}
			}
		})
	}
}

// images returns the periodic images of p relevant for halo overlap
// (the position itself plus ±L shifts per dimension).
func images(p geom.Vec, box geom.Box) []geom.Vec {
	out := []geom.Vec{p}
	if box.BC != geom.Periodic {
		return out
	}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			q := p
			q[0] += float64(dx) * box.Len[0]
			q[1] += float64(dy) * box.Len[1]
			out = append(out, q)
		}
	}
	return out
}

// TestDecomposedEnergyMatchesSerial: core links at weight 1 plus halo
// links at weight 1/2, summed over all blocks and ranks, must equal
// the serial potential energy.
func TestDecomposedEnergyMatchesSerial(t *testing.T) {
	const n = 600
	for _, p := range []int{1, 2, 4} {
		for _, bpp := range []int{1, 2} {
			box := geom.NewBox(2, 10, geom.Periodic)
			rc := 0.55
			sp := force.Spring{Diameter: rc / 1.5, K: 30}
			l := mustLayout(t, box, rc, p, bpp)

			// Serial reference energy.
			ref := globalSystem(n, 2, box, 5, 0)
			g := cell.NewGrid(2, geom.Vec{}, box.Len, rc, true)
			g.Bin(&ref.Pos, n, nil)
			list := g.BuildLinks(&ref.Pos, n, n, rc*rc, box, nil)
			ref.ZeroForces()
			eSerial := sp.Accumulate(ref, list.Links, n, box, 1, nil)

			var eGlobal float64
			mp.Run(p, nil, func(c *mp.Comm) {
				dm := NewDomain(l, c, false)
				dm.FillUniform(n, 5, 0)
				dm.Rebuild(true)
				e := 0.0
				for _, b := range dm.Blocks {
					b.PS.ZeroForces()
					e += sp.Accumulate(b.PS, b.List.CoreLinks(), b.NCore, dm.PlainBox(), 1, nil)
					e += sp.Accumulate(b.PS, b.List.HaloLinks(), b.NCore, dm.PlainBox(), 0.5, nil)
				}
				tot := c.AllreduceScalar(e, mp.Sum)
				if c.Rank() == 0 {
					eGlobal = tot
				}
			})
			if math.Abs(eGlobal-eSerial) > 1e-9*math.Abs(eSerial) {
				t.Errorf("P=%d bpp=%d: energy %g vs serial %g", p, bpp, eGlobal, eSerial)
			}
		}
	}
}

func TestRefreshHalosTracksMotion(t *testing.T) {
	const n = 400
	box := geom.NewBox(2, 10, geom.Periodic)
	rc := 0.6
	l := mustLayout(t, box, rc, 4, 1)
	mp.Run(4, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.FillUniform(n, 9, 0)
		dm.Rebuild(false)
		// Move every core particle deterministically by a small,
		// ID-dependent offset, then refresh.
		shift := func(id int32) float64 { return 1e-3 * float64(id%17) }
		for _, b := range dm.Blocks {
			for i := 0; i < b.NCore; i++ {
				b.PS.Pos[0][i] += shift(b.PS.ID[i])
			}
		}
		dm.RefreshHalos()
		// Every halo copy must now match its home particle's new
		// position modulo the periodic shift.
		ref := globalSystem(n, 2, box, 9, 0)
		for _, b := range dm.Blocks {
			for i := b.NCore; i < b.PS.Len(); i++ {
				id := b.PS.ID[i]
				wantX := ref.Pos[0][id] + shift(id)
				gotX := b.PS.Pos[0][i]
				// Remove any ±L ghost shift.
				diff := math.Mod(math.Abs(gotX-wantX), box.Len[0])
				if diff > 1e-9 && math.Abs(diff-box.Len[0]) > 1e-9 {
					t.Errorf("halo copy of %d at x=%g, want %g (mod L)", id, gotX, wantX)
				}
			}
		}
	})
}

func TestMigrationConservesParticles(t *testing.T) {
	const n = 500
	box := geom.NewBox(2, 10, geom.Periodic)
	rc := 0.6
	l := mustLayout(t, box, rc, 4, 2)
	counts := make(chan int, 4)
	mp.Run(4, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.FillUniform(n, 11, 0)
		dm.Rebuild(false)
		// Kick particles far enough that many change blocks.
		rng := rand.New(rand.NewSource(int64(100)))
		for _, b := range dm.Blocks {
			for i := 0; i < b.NCore; i++ {
				b.PS.Pos[0][i] += (rng.Float64() - 0.5) * 5
				b.PS.Pos[1][i] += (rng.Float64() - 0.5) * 5
			}
		}
		dm.Rebuild(false)
		local := 0
		ids := map[int32]bool{}
		for _, b := range dm.Blocks {
			local += b.NCore
			for i := 0; i < b.NCore; i++ {
				if ids[b.PS.ID[i]] {
					t.Errorf("duplicate particle %d on rank %d", b.PS.ID[i], c.Rank())
				}
				ids[b.PS.ID[i]] = true
				if l.BlockOfPos(b.PS.PosAt(i)) != b.ID {
					t.Errorf("particle %d not in home block after migration", b.PS.ID[i])
				}
				if !box.Contains(b.PS.PosAt(i)) {
					t.Errorf("particle %d not wrapped: %v", b.PS.ID[i], b.PS.PosAt(i))
				}
			}
		}
		counts <- local
	})
	close(counts)
	total := 0
	for c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("migration lost particles: %d of %d", total, n)
	}
}

func TestReorderPreservesIdentity(t *testing.T) {
	const n = 300
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.6, 2, 1)
	mp.Run(2, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.FillUniform(n, 13, 0)
		before := map[int32]geom.Vec{}
		for _, b := range dm.Blocks {
			for i := 0; i < b.NCore; i++ {
				before[b.PS.ID[i]] = b.PS.PosAt(i)
			}
		}
		dm.Rebuild(true) // with reordering
		after := map[int32]geom.Vec{}
		for _, b := range dm.Blocks {
			for i := 0; i < b.NCore; i++ {
				after[b.PS.ID[i]] = b.PS.PosAt(i)
			}
		}
		if len(before) != len(after) {
			t.Fatalf("reorder changed particle count: %d vs %d", len(before), len(after))
		}
		for id, p := range before {
			if after[id] != p {
				t.Errorf("reorder moved particle %d: %v -> %v", id, p, after[id])
			}
		}
	})
}

func TestReorderImprovesLocality(t *testing.T) {
	const n = 5000
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.3, 1, 1)
	meanDist := func(reorder bool) float64 {
		var out float64
		mp.Run(1, nil, func(c *mp.Comm) {
			dm := NewDomain(l, c, false)
			dm.FillUniform(n, 17, 0)
			dm.Rebuild(reorder)
			var sum, cnt int64
			for _, b := range dm.Blocks {
				for _, lk := range b.List.Links {
					d := int64(lk.I) - int64(lk.J)
					if d < 0 {
						d = -d
					}
					sum += d
					cnt++
				}
			}
			out = float64(sum) / float64(cnt)
		})
		return out
	}
	unordered := meanDist(false)
	ordered := meanDist(true)
	if ordered*5 > unordered {
		t.Errorf("reordering did not collapse locality metric: %g -> %g", unordered, ordered)
	}
}

func TestListsValidDetectsMotion(t *testing.T) {
	const n = 200
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.6, 2, 1)
	mp.Run(2, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.FillUniform(n, 19, 0)
		dm.Rebuild(false)
		if !dm.ListsValid(0.1) {
			t.Error("fresh list reported invalid")
		}
		// Move one particle on rank 0 beyond the skin: the collective
		// answer must flip on BOTH ranks.
		if c.Rank() == 0 {
			for _, b := range dm.Blocks {
				if b.NCore > 0 {
					b.PS.Pos[0][0] += 0.2
					break
				}
			}
		}
		if dm.ListsValid(0.1) {
			t.Error("stale list reported valid")
		}
	})
}

func TestSelfNeighborPeriodicSingleBlock(t *testing.T) {
	// One block per dimension with periodic BC: the block is its own
	// neighbour through the wrap and must build self-halos.
	const n = 150
	box := geom.NewBox(2, 10, geom.Periodic)
	rc := 0.8
	l := mustLayout(t, box, rc, 1, 1)
	sp := force.Spring{Diameter: rc / 1.5, K: 30}

	ref := globalSystem(n, 2, box, 21, 0)
	g := cell.NewGrid(2, geom.Vec{}, box.Len, rc, true)
	g.Bin(&ref.Pos, n, nil)
	list := g.BuildLinks(&ref.Pos, n, n, rc*rc, box, nil)
	eSerial := sp.Accumulate(ref, list.Links, n, box, 1, nil)

	mp.Run(1, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.FillUniform(n, 21, 0)
		dm.Rebuild(false)
		b := dm.Blocks[0]
		if b.NumHalo() == 0 {
			t.Fatal("self-halo not built for periodic single block")
		}
		b.PS.ZeroForces()
		e := sp.Accumulate(b.PS, b.List.CoreLinks(), b.NCore, dm.PlainBox(), 1, nil)
		e += sp.Accumulate(b.PS, b.List.HaloLinks(), b.NCore, dm.PlainBox(), 0.5, nil)
		if math.Abs(e-eSerial) > 1e-9*math.Abs(eSerial) {
			t.Errorf("single-block energy %g vs serial %g", e, eSerial)
		}
	})
}

func TestDomainCounters(t *testing.T) {
	const n = 300
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.6, 2, 2)
	mp.Run(2, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.FillUniform(n, 23, 0)
		dm.Rebuild(true)
		if dm.TC.LinkBuilds == 0 || dm.TC.CellBinOps == 0 {
			t.Error("rebuild counters not incremented")
		}
		if dm.TC.ReorderMoves == 0 {
			t.Error("reorder counter not incremented")
		}
		if dm.NumCore() == 0 || dm.NumLinks() == 0 {
			t.Error("empty domain after fill")
		}
	})
}
