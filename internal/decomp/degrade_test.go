package decomp

import (
	"reflect"
	"testing"

	"hybriddem/internal/geom"
)

// TestDegradeCoversAllBlocks: after a rank failure every block must
// still have exactly one owner, drawn from the surviving 0..P-2 range,
// and blocks of unaffected ranks must keep their (renumbered) owner.
func TestDegradeCoversAllBlocks(t *testing.T) {
	box := geom.NewBox(2, 10, geom.Periodic)
	for _, p := range []int{2, 4, 6} {
		for _, bpp := range []int{1, 2, 4} {
			l := mustLayout(t, box, 0.5, p, bpp)
			for failed := 0; failed < p; failed++ {
				d, err := l.Degrade(failed)
				if err != nil {
					t.Fatalf("p=%d bpp=%d failed=%d: %v", p, bpp, failed, err)
				}
				if d.P != p-1 {
					t.Fatalf("degraded P = %d, want %d", d.P, p-1)
				}
				counts := make([]int, d.P)
				for id := 0; id < d.B; id++ {
					r := d.RankOfBlock(id)
					if r < 0 || r >= d.P {
						t.Fatalf("block %d owned by out-of-range rank %d", id, r)
					}
					counts[r]++
					// Survivors keep their blocks under the shifted
					// numbering.
					old := l.RankOfBlock(id)
					if old != failed {
						want := old
						if old > failed {
							want = old - 1
						}
						if r != want {
							t.Fatalf("block %d moved from surviving rank %d to %d", id, want, r)
						}
					}
				}
				// The orphaned blocks are dealt least-loaded-first, so
				// no survivor can end up more than one redistribution
				// unit above the minimum.
				min, max := counts[0], counts[0]
				for _, c := range counts[1:] {
					if c < min {
						min = c
					}
					if c > max {
						max = c
					}
				}
				if max-min > bpp+1 {
					t.Errorf("p=%d bpp=%d failed=%d: load spread %v too wide", p, bpp, failed, counts)
				}
			}
		}
	}
}

// TestDegradeDeterministic: two degrades of the same layout and rank
// must produce identical ownership — recovery re-runs depend on every
// retry computing the same layout.
func TestDegradeDeterministic(t *testing.T) {
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, 4, 3)
	a, err := l.Degrade(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Degrade(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.owner, b.owner) {
		t.Fatalf("degrade not deterministic: %v vs %v", a.owner, b.owner)
	}
}

// TestDegradeTiesToLowestRank: with all survivors equally loaded, the
// orphans must go to the lowest-numbered least-loaded survivor first.
func TestDegradeTiesToLowestRank(t *testing.T) {
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, 4, 1) // one block per rank
	d, err := l.Degrade(3)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 3's single block must land on rank 0 (all survivors hold 1
	// block; ties break to the lowest rank).
	orphan := -1
	for id := 0; id < l.B; id++ {
		if l.RankOfBlock(id) == 3 {
			orphan = id
		}
	}
	if orphan < 0 {
		t.Fatal("no block owned by rank 3")
	}
	if got := d.RankOfBlock(orphan); got != 0 {
		t.Errorf("orphan block %d went to rank %d, want tie-break to 0", orphan, got)
	}
}

func TestDegradeLeavesOriginalUntouched(t *testing.T) {
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, 3, 2)
	before := append([]int(nil), l.owner...)
	if _, err := l.Degrade(1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, l.owner) {
		t.Fatal("Degrade mutated the shared source layout")
	}
}

func TestDegradeErrors(t *testing.T) {
	box := geom.NewBox(2, 10, geom.Periodic)
	single := mustLayout(t, box, 0.5, 1, 4)
	if _, err := single.Degrade(0); err == nil {
		t.Error("degrading a single-rank layout succeeded")
	}
	l := mustLayout(t, box, 0.5, 3, 1)
	if _, err := l.Degrade(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := l.Degrade(3); err == nil {
		t.Error("out-of-range rank accepted")
	}
}
