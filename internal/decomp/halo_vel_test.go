package decomp

import (
	"math"
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
)

// TestHaloCarriesVelocities: with WithVel set, halo copies must track
// their home particle's velocity through both the initial build and
// the per-iteration refresh — the path damped force laws depend on.
func TestHaloCarriesVelocities(t *testing.T) {
	const n = 300
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.6, 4, 1)
	mp.Run(4, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, true)
		dm.FillUniform(n, 31, 0.7)
		dm.Rebuild(false)
		ref := globalSystem(n, 2, box, 31, 0.7)

		check := func(stage string) {
			for _, b := range dm.Blocks {
				for i := b.NCore; i < b.PS.Len(); i++ {
					id := b.PS.ID[i]
					for k := 0; k < 2; k++ {
						if math.Abs(b.PS.Vel[k][i]-ref.Vel[k][id]) > 1e-12 {
							t.Fatalf("%s: halo velocity of %d = %v, want %v",
								stage, id, b.PS.VelAt(i), ref.VelAt(int(id)))
						}
					}
				}
			}
		}
		check("build")

		// Change every core particle's velocity deterministically and
		// refresh; the halo copies must follow.
		for _, b := range dm.Blocks {
			for i := 0; i < b.NCore; i++ {
				b.PS.Vel[0][i] += 0.5
				b.PS.Vel[1][i] -= 0.25
			}
		}
		for i := 0; i < n; i++ {
			ref.Vel[0][i] += 0.5
			ref.Vel[1][i] -= 0.25
		}
		dm.RefreshHalos()
		check("refresh")
	})
}

// TestWithoutVelHaloVelocitiesZero: without WithVel the halo copies
// carry zero velocity and no velocity bytes travel.
func TestWithoutVelHaloVelocitiesZero(t *testing.T) {
	const n = 200
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.6, 2, 1)
	mp.Run(2, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.FillUniform(n, 33, 0.7)
		dm.Rebuild(false)
		for _, b := range dm.Blocks {
			for i := b.NCore; i < b.PS.Len(); i++ {
				if b.PS.VelAt(i) != (geom.Vec{}) {
					t.Fatalf("halo particle %d has velocity %v without WithVel", b.PS.ID[i], b.PS.VelAt(i))
				}
			}
		}
	})
}

// TestAblationKnobsChargeTime: the naive-pack and self-messaging
// knobs must add modelled time without changing physics.
func TestAblationKnobsChargeTime(t *testing.T) {
	const n = 400
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.6, 1, 4) // P=1: all legs local

	run := func(packFactor float64, selfMsg bool) float64 {
		var clock float64
		mp.Run(1, nil, func(c *mp.Comm) {
			dm := NewDomain(l, c, false)
			dm.PackCost = 1e-6
			dm.PackFactor = packFactor
			if selfMsg {
				dm.SelfMsgCost = func(bytes int) float64 { return 1e-5 + float64(bytes)*1e-9 }
			}
			dm.FillUniform(n, 35, 0)
			dm.Rebuild(false)
			dm.RefreshHalos()
			clock = c.Clock()
		})
		return clock
	}

	base := run(0, false)
	naive := run(3, false)
	selfm := run(0, true)
	if naive <= base {
		t.Errorf("naive pack did not cost more: %g vs %g", naive, base)
	}
	if selfm <= base {
		t.Errorf("self messaging did not cost more: %g vs %g", selfm, base)
	}
}
