package decomp

import (
	"fmt"
	"math/rand"

	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
	"hybriddem/internal/trace"
)

// exchange phases, encoded into message tags so halo construction,
// per-iteration refresh and migration never cross-match.
const (
	phaseBuild = iota
	phaseRefresh
	phaseMigrate
	phaseXfer   // whole-block transfer during a rebalance
	phaseWinDir // shared-window layout directory (mpism)
)

// tagFor builds the unique tag of one halo leg from the receiving
// block's perspective: side is the face of the destination block the
// data arrives on.
func (dm *Domain) tagFor(phase, dstBlock, dim, side int) int {
	return ((phase*dm.L.B+dstBlock)*geom.MaxD+dim)*2 + side
}

// Domain is one rank's set of blocks plus the exchange machinery. It
// is confined to the rank's goroutine.
type Domain struct {
	L      *Layout
	C      *mp.Comm
	Blocks []*Block
	slot   map[int]int // flat block id -> index in Blocks

	// WithVel includes velocities in halo traffic; required only when
	// the force law reads relative velocities (damped grain bonds).
	WithVel bool

	// PackCost is the modelled seconds per particle gathered into or
	// scattered out of an exchange buffer; set by the driver from the
	// virtual platform.
	PackCost float64

	// PackFactor multiplies PackCost for the naive-copy ablation: the
	// paper's MPI indexed datatypes let the library send strided halo
	// data directly, where a naive implementation pays an extra
	// user-side pack and unpack per particle per swap. 0 means 1.
	PackFactor float64

	// SelfMsgCost, when non-nil, charges same-rank halo legs as if
	// they went through the message runtime instead of the direct
	// copy fast path — the ablation of "the communications routines
	// are actually only called when P > 1". It receives the payload
	// byte count.
	SelfMsgCost func(bytes int) float64

	// TC accumulates structural (non-message) event counts.
	TC trace.Counters

	// Rebalance selects the dynamic load balancer: at every Rebuild the
	// ranks exchange a per-block cost vector, a deterministic
	// repartitioner (LPT block deal or ORB cut-plane tree) computes a
	// new block→rank map, and whole blocks migrate to their new owners.
	// StrategyOff (the zero value) keeps the static block-cyclic deal,
	// for bit-compat its default.
	Rebalance Strategy

	// RebalanceHyst is the migration-hysteresis threshold: the current
	// map is kept unless the new map improves the peak load by more
	// than this relative margin. 0 means DefaultRebalanceHyst.
	RebalanceHyst float64

	// plainBox performs unwrapped displacement arithmetic inside a
	// block's self-contained extended region.
	plainBox geom.Box

	// Reused exchange scratch: same-rank leg staging, the in-flight
	// receive legs of a split-phase refresh, and the per-destination
	// migration buffers plus staged receives for the source-block merge.
	locals     []localLeg
	pending    []pendingLeg
	refreshDim int // next dimension FinishRefreshHalos must drain; -1 when idle
	migF       [][]float64
	migI       [][]int32
	recvF      [][]float64
	recvI      [][]int32
	recvAt     []int

	// Shared-window exchange state (mpism, nil/empty otherwise): the
	// node window, rank→group-index table, the owner-side window
	// offsets per (block slot, dim, side) (-1 = not windowed), the
	// reader-side legs bucketed per dimension, and the per-peer
	// directory staging buffers. All persistent, rebuilt at rebuild.
	win     *mp.Win
	winIdx  []int
	winOff  [][geom.MaxD][2]int
	winLegs [geom.MaxD][]winLeg
	dirOut  [][]int32

	// Rebalancer state and scratch (persistent, so migration epochs
	// allocate only while the pools grow).
	costVec      []float64
	costEWMA     []float64
	lptOrder     []int
	rankLoad     []float64
	newOwnerVec  []int
	prevOwner    []int
	retired      map[int]*Block // blocks sent away, cached for reuse
	blockScratch []*Block
	xferF        []float64
	xferI        []int32
	rebalT0      float64
	rebalT1      float64
	rebalanced   bool

	// ORB state: the adopted tree (nil until the first ORB epoch, or
	// seeded from a checkpoint) and the scratch tree the next candidate
	// is built into; the repartitioner swaps them on adoption.
	orb     *ORBTree
	orbNext *ORBTree
}

// NewDomain builds the rank-local domain over an existing layout. The
// layout is cloned: callers share one *Layout across all rank
// goroutines, and the rebalancer mutates the ownership table.
func NewDomain(l *Layout, c *mp.Comm, withVel bool) *Domain {
	if c.Size() != l.P {
		panic(fmt.Sprintf("decomp: layout for %d ranks on a %d-rank comm", l.P, c.Size()))
	}
	l = l.Clone()
	dm := &Domain{L: l, C: c, WithVel: withVel, slot: make(map[int]int), refreshDim: -1}
	for _, id := range l.BlocksOfRank(c.Rank()) {
		dm.slot[id] = len(dm.Blocks)
		dm.Blocks = append(dm.Blocks, newBlock(l, id))
	}
	dm.plainBox = geom.Box{D: l.D, Len: l.Box.Len, BC: geom.Reflecting}
	return dm
}

// PlainBox returns the non-wrapping box used for intra-block
// displacement arithmetic.
func (dm *Domain) PlainBox() geom.Box { return dm.plainBox }

// packCost returns the effective per-particle pack/unpack charge.
func (dm *Domain) packCost() float64 {
	f := dm.PackFactor
	if f <= 0 {
		f = 1
	}
	return dm.PackCost * f
}

// chargeSelf applies the self-messaging ablation cost to a local halo
// leg of n particles with per floats each.
func (dm *Domain) chargeSelf(n, per int) {
	if dm.SelfMsgCost != nil && n > 0 {
		dm.C.Compute(dm.SelfMsgCost(8 * per * n))
	}
}

// FillUniform populates the rank's blocks with its share of n global
// particles, drawing velocity components from [-vmax, vmax] (zero
// leaves them at rest). Every rank draws the identical global
// configuration from the seed and keeps only the particles whose home
// block it owns, so no startup broadcast is needed and any P yields
// the same physical system. The draw sequence matches
// particle.FillUniform/FillUniformVel exactly so that distributed and
// shared-memory runs start from identical states.
func (dm *Domain) FillUniform(n int, seed int64, vmax float64) {
	dm.FillClustered(n, seed, vmax, 1)
}

// FillClustered is FillUniform with the last coordinate compressed
// into the bottom heightFrac of the box (a settled bed of grains);
// heightFrac of 1 (or out of range) is the uniform fill. The draw
// sequence matches particle.FillClustered exactly.
func (dm *Domain) FillClustered(n int, seed int64, vmax, heightFrac float64) {
	if heightFrac <= 0 || heightFrac > 1 {
		heightFrac = 1
	}
	rng := rand.New(rand.NewSource(seed))
	l := dm.L
	last := l.D - 1
	for k := 0; k < n; k++ {
		var p, v geom.Vec
		for i := 0; i < l.D; i++ {
			p[i] = rng.Float64() * l.Box.Len[i]
			if vmax > 0 {
				v[i] = (2*rng.Float64() - 1) * vmax
			}
		}
		p[last] *= heightFrac
		id := l.BlockOfPos(p)
		if s, ok := dm.slot[id]; ok {
			b := dm.Blocks[s]
			b.PS.Append(p, v, int32(k))
			b.NCore++
		}
	}
}

// Place inserts one particle into its home block if this rank owns it;
// used by examples and tests that construct bespoke configurations.
// It must be called before the first Rebuild and with identical
// sequences on every rank.
func (dm *Domain) Place(pos, vel geom.Vec, id int32) {
	home := dm.L.BlockOfPos(pos)
	if s, ok := dm.slot[home]; ok {
		b := dm.Blocks[s]
		b.PS.Append(pos, vel, id)
		b.NCore++
	}
}

// NumCore returns the rank's total number of core particles.
func (dm *Domain) NumCore() int {
	n := 0
	for _, b := range dm.Blocks {
		n += b.NCore
	}
	return n
}

// NumLinks returns the rank's total link count (core + halo links).
func (dm *Domain) NumLinks() int {
	n := 0
	for _, b := range dm.Blocks {
		if b.List != nil {
			n += len(b.List.Links)
		}
	}
	return n
}

// MaxCoreDisp2 returns the rank-local maximum squared displacement of
// core particles since the last rebuild.
func (dm *Domain) MaxCoreDisp2() float64 {
	maxd := 0.0
	for _, b := range dm.Blocks {
		d := b.PS.MaxDisp2(&b.RefPos, b.NCore, dm.L.Box)
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// ListsValid reports, collectively across all ranks, whether every
// core particle has moved less than skin since the last rebuild. All
// ranks receive the same answer.
func (dm *Domain) ListsValid(skin float64) bool {
	local := dm.MaxCoreDisp2()
	global := dm.C.AllreduceScalar(local, mp.Max)
	return global < skin*skin
}

// Rebuild performs the full list-invalidation sequence of Section 6:
// wrap + migrate particles to their new home blocks, optionally
// reorder cores into cell order (the cache optimisation), rebuild halo
// templates and exchange halos, then reconstruct every block's cell
// grid and link list and snapshot reference positions.
func (dm *Domain) Rebuild(reorder bool) {
	dm.migrate()
	if dm.Rebalance.Enabled() {
		dm.rebalance()
	} else {
		dm.rebalanced = false
	}
	if reorder {
		dm.reorderCores()
	}
	dm.buildHalos()
	if dm.win != nil {
		dm.buildWinExchange()
	}
	dm.buildLists()
}

// reorderCores permutes each block's core particles into cell order
// using a binning over the block's own grid; "as cells are numbered
// according to their spatial position, this achieves spatial locality
// of data ... leaving the halo particles untouched".
func (dm *Domain) reorderCores() {
	for _, b := range dm.Blocks {
		if b.NCore == 0 {
			continue
		}
		// The block's persistent grid serves both the reorder binning
		// here and the list build that follows (buildLists re-bins it
		// over core+halo).
		g := b.Grid
		g.Bin(&b.PS.Pos, b.NCore, &dm.TC)
		order := g.Order()
		b.PS.Permute(order)
		dm.TC.ReorderMoves += int64(b.NCore)
		dm.C.Compute(float64(b.NCore) * dm.PackCost)
	}
}

// buildLists bins every block's core+halo particles and constructs its
// link list with the core-links-first layout.
func (dm *Domain) buildLists() {
	rc := dm.L.RC
	rc2 := rc * rc
	for _, b := range dm.Blocks {
		n := b.PS.Len()
		b.Grid.Bin(&b.PS.Pos, n, &dm.TC)
		b.List = b.Grid.BuildLinksInto(&b.listBuf, &b.PS.Pos, n, b.NCore, rc2, dm.plainBox, &dm.TC)
		for k := 0; k < dm.L.D; k++ {
			b.RefPos[k] = append(b.RefPos[k][:0], b.PS.Pos[k][:b.NCore]...)
		}
	}
}
