package decomp

import (
	"fmt"
	"math"

	"hybriddem/internal/geom"
)

// VerifyHalos checks every halo invariant of this rank's blocks against
// the known global particle set (positions indexed by ID, in [0, L)).
// It is an oracle for the conformance harness and the fuzz targets in
// internal/verify, exploiting the fact that every rank can reconstruct
// the full initial configuration from the fill seed, so no
// communication is needed to validate communicated state.
//
// Three invariants are enforced per block:
//
//  1. Consistency — each halo copy carries a valid particle ID and its
//     stored position equals the global position of that particle up to
//     a periodic image, and lies inside the block's extended region.
//  2. Completeness — every periodic image of a global particle that
//     falls strictly inside the extended region (by more than slack in
//     every dimension) and is not the block's own core copy appears in
//     the halo.
//  3. Uniqueness — no image is delivered twice.
//
// slack absorbs the half-open slab boundaries and the float rounding of
// the periodic shift; anything placed closer than slack to an extended
// face is exempt from the completeness requirement (consistency still
// applies to it if it was delivered). slack <= 0 selects 1e-9 * RC.
// Call it immediately after Rebuild, before any motion. Velocities are
// checked too when vel is non-nil and the domain carries them.
func (dm *Domain) VerifyHalos(global []geom.Vec, vel []geom.Vec, slack float64) error {
	if slack <= 0 {
		slack = 1e-9 * dm.L.RC
	}
	tol2 := slack * slack
	box := dm.L.Box
	d := dm.L.D
	for _, b := range dm.Blocks {
		if err := dm.verifyBlockHalos(b, global, vel, box, d, slack, tol2); err != nil {
			return fmt.Errorf("decomp: rank %d block %d: %w", dm.C.Rank(), b.ID, err)
		}
	}
	return nil
}

func (dm *Domain) verifyBlockHalos(b *Block, global, vel []geom.Vec, box geom.Box, dim int, slack, tol2 float64) error {
	type image struct {
		id  int32
		pos geom.Vec
	}

	// Consistency + collect what was delivered.
	have := make([]image, 0, b.NumHalo())
	for i := b.NCore; i < b.PS.Len(); i++ {
		id := b.PS.ID[i]
		p := b.PS.PosAt(i)
		if id < 0 || int(id) >= len(global) {
			return fmt.Errorf("halo entry %d has ID %d outside the %d global particles", i-b.NCore, id, len(global))
		}
		if d2 := box.Dist2(p, global[id]); d2 > tol2 {
			return fmt.Errorf("halo copy of particle %d sits at %v, no periodic image of its global position %v (min-image distance %.3g)",
				id, p, global[id], math.Sqrt(d2))
		}
		for k := 0; k < dim; k++ {
			if p[k] < b.ExtOrigin[k]-slack || p[k] > b.ExtOrigin[k]+b.ExtSpan[k]+slack {
				return fmt.Errorf("halo copy of particle %d at %v lies outside the extended region [%v, %v+%v) in dim %d",
					id, p, b.ExtOrigin, b.ExtOrigin, b.ExtSpan, k)
			}
		}
		if vel != nil && dm.WithVel {
			dv := geom.Sub(b.PS.VelAt(i), vel[id], dim)
			if geom.Norm2(dv, dim) > tol2 {
				return fmt.Errorf("halo copy of particle %d carries velocity %v, expected %v", id, b.PS.VelAt(i), vel[id])
			}
		}
		have = append(have, image{id: id, pos: p})
	}

	// Uniqueness: the same image must not be delivered twice. Two halo
	// entries collide when they share an ID and sit closer than slack
	// (distinct periodic images of one particle are >= one block edge
	// apart, far beyond slack).
	for i := range have {
		for j := i + 1; j < len(have); j++ {
			if have[i].id != have[j].id {
				continue
			}
			dp := geom.Sub(have[i].pos, have[j].pos, dim)
			if geom.Norm2(dp, dim) <= tol2 {
				return fmt.Errorf("halo holds two copies of particle %d at %v", have[i].id, have[i].pos)
			}
		}
	}

	// Completeness: enumerate every periodic image of every global
	// particle that lands strictly inside the extended region and
	// demand its presence. Offsets beyond +-1 box length are impossible
	// because a block edge is at least RC wide.
	offs := []float64{0}
	if box.BC == geom.Periodic {
		offs = []float64{-1, 0, 1}
	}
	var want geom.Vec
	var check func(k int32, d int) error
	check = func(k int32, d int) error {
		if d == dim {
			// The unshifted image of a particle homed in this block is
			// its core copy, not a halo.
			if want == global[k] && dm.L.BlockOfPos(want) == b.ID {
				return nil
			}
			for _, h := range have {
				if h.id != k {
					continue
				}
				dp := geom.Sub(h.pos, want, dim)
				if geom.Norm2(dp, dim) <= tol2 {
					return nil
				}
			}
			return fmt.Errorf("particle %d has an image at %v inside the extended region [%v, +%v) but no halo copy of it",
				k, want, b.ExtOrigin, b.ExtSpan)
		}
		lo, hi := b.ExtOrigin[d], b.ExtOrigin[d]+b.ExtSpan[d]
		for _, m := range offs {
			x := global[k][d] + m*box.Len[d]
			if x <= lo+slack || x >= hi-slack {
				continue
			}
			want[d] = x
			if err := check(k, d+1); err != nil {
				return err
			}
		}
		return nil
	}
	for k := range global {
		if err := check(int32(k), 0); err != nil {
			return err
		}
	}
	return nil
}
