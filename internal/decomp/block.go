package decomp

import (
	"hybriddem/internal/cell"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// haloSeg describes one contiguous run of halo particles in a block's
// store: where it came from, which exchange leg delivers it, and the
// periodic shift applied to incoming coordinates. Segments are
// recorded in append order at halo-build time and refreshed in the
// same order every iteration, so the strided halo data always lands
// "into contiguous storage immediately following the data for the core
// particles".
type haloSeg struct {
	srcRank  int
	srcBlock int
	dim      int
	side     int // 0: data arrives on the lower face, 1: upper
	start    int // first index in the block store
	count    int
	shift    geom.Vec
}

// Block is one spatial block of the block-cyclic distribution:
// "each individual block is effectively treated like a separate
// simulation with time-varying boundary conditions provided by the
// halo particles".
type Block struct {
	ID         int
	CoreOrigin geom.Vec
	CoreSpan   geom.Vec
	ExtOrigin  geom.Vec
	ExtSpan    geom.Vec

	PS    *particle.Store
	NCore int // particles [0:NCore) are core; the rest are halo copies

	Grid *cell.Grid
	List *cell.List

	// RefPos snapshots core positions at the last list build for the
	// rebuild criterion (component-major, like the store).
	RefPos geom.Coords

	// sendIdx are the halo templates: for each dimension and face,
	// the local particle indices whose data is sent each swap — the
	// role MPI indexed datatypes play in the paper. Valid until the
	// next rebuild; backing arrays are reused across rebuilds.
	sendIdx [geom.MaxD][2][]int32

	// packBuf and idBuf are the per-leg persistent staging buffers the
	// exchange gathers into before handing the data to the message
	// runtime (which copies into its own pooled buffers), so neither
	// the per-iteration refresh nor the rebuild exchange allocates in
	// steady state.
	packBuf [geom.MaxD][2][]float64
	idBuf   [geom.MaxD][2][]int32

	// listBuf owns the reused staging and backing storage of the
	// block's link list (b.List points into it after every rebuild).
	listBuf cell.ListBuffer

	segs []haloSeg
}

func newBlock(l *Layout, id int) *Block {
	b := &Block{ID: id}
	b.CoreOrigin, b.CoreSpan = l.CoreRegion(id)
	b.ExtOrigin, b.ExtSpan = l.ExtRegion(id)
	b.PS = particle.New(l.D, 0)
	// The block's extended region never changes, so one grid serves
	// every rebuild (binning storage is reused inside the grid).
	b.Grid = cell.NewGrid(l.D, b.ExtOrigin, b.ExtSpan, l.RC, false)
	return b
}

// coreSlab returns the local particle indices (core and
// already-present halo) lying within the halo-width slab against the
// block's lower (side 0) or upper (side 1) core face in dimension dim.
func (b *Block) coreSlab(dim, side int, rc float64) []int32 {
	var lo, hi float64
	if side == 0 {
		lo = b.CoreOrigin[dim]
		hi = lo + rc
	} else {
		hi = b.CoreOrigin[dim] + b.CoreSpan[dim]
		lo = hi - rc
	}
	out := b.sendIdx[dim][side][:0]
	// One contiguous component stream: the slab test reads only the
	// dim coordinate, so the SoA layout turns this scan into a single
	// sequential sweep.
	for i, x := range b.PS.Pos[dim] {
		if x >= lo && x < hi {
			out = append(out, int32(i))
		}
	}
	b.sendIdx[dim][side] = out
	return out
}

// resetHalo drops all halo particles and forgets templates/segments,
// retaining their storage for the next build.
func (b *Block) resetHalo() {
	b.PS.Truncate(b.NCore)
	for d := range b.sendIdx {
		b.sendIdx[d][0] = b.sendIdx[d][0][:0]
		b.sendIdx[d][1] = b.sendIdx[d][1][:0]
	}
	b.segs = b.segs[:0]
}

// NumHalo returns the number of halo copies currently appended.
func (b *Block) NumHalo() int { return b.PS.Len() - b.NCore }
