// Package decomp implements the paper's message-passing domain
// decomposition (Section 6): a general block-cyclic distribution of
// spatial blocks over a Cartesian process grid, per-block halo regions
// of width rc, halo templates rebuilt with the link list and reused
// for many iterations (the MPI indexed-datatype optimisation), halo
// swaps by matched sendrecv in each dimension, and particle migration
// when the list becomes invalid.
package decomp

import (
	"fmt"

	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
)

// Layout describes how the global box is cut into blocks and how
// blocks map onto processes. The block grid is an integer multiple of
// the process grid in every dimension; blocks are dealt out
// round-robin (block-cyclic), so increasing the number of blocks B at
// fixed P refines the load-balancing granularity exactly as in the
// paper.
type Layout struct {
	D         int
	Box       geom.Box // global domain
	RC        float64  // cutoff distance == halo width
	ProcDims  [geom.MaxD]int
	BlockDims [geom.MaxD]int
	P         int // total processes
	B         int // total blocks

	// owner maps block id -> owning rank. NewLayout initialises it to
	// the block-cyclic deal; the dynamic rebalancer may overwrite it
	// (always on a rank-private Clone — the layout passed to a driver
	// is shared across rank goroutines and must stay immutable).
	owner []int
}

// NewLayout builds a layout for p processes with blocksPerProc blocks
// per process (B = p * blocksPerProc). Process and cycle counts are
// factored over the dimensions as squarely as possible. It returns an
// error when any block edge would be smaller than rc, which would let
// halos span more than one neighbouring block.
func NewLayout(box geom.Box, rc float64, p, blocksPerProc int) (*Layout, error) {
	if p < 1 || blocksPerProc < 1 {
		return nil, fmt.Errorf("decomp: p=%d blocksPerProc=%d", p, blocksPerProc)
	}
	if rc <= 0 {
		return nil, fmt.Errorf("decomp: cutoff %g", rc)
	}
	d := box.D
	pd := mp.DimsCreate(p, d)
	cd := mp.DimsCreate(blocksPerProc, d)
	l := &Layout{D: d, Box: box, RC: rc, P: p}
	l.B = 1
	for i := 0; i < d; i++ {
		l.ProcDims[i] = pd[i]
		l.BlockDims[i] = pd[i] * cd[i]
		l.B *= l.BlockDims[i]
		edge := box.Len[i] / float64(l.BlockDims[i])
		if edge < rc {
			return nil, fmt.Errorf("decomp: block edge %.4g < cutoff %.4g in dim %d (%d blocks over %.4g)",
				edge, rc, i, l.BlockDims[i], box.Len[i])
		}
	}
	for i := d; i < geom.MaxD; i++ {
		l.ProcDims[i] = 1
		l.BlockDims[i] = 1
	}
	l.owner = make([]int, l.B)
	for id := range l.owner {
		l.owner[id] = l.CyclicRankOfBlock(id)
	}
	return l, nil
}

// Clone returns a copy of the layout with a private ownership table,
// so one rank's rebalancer can remap blocks without racing the other
// ranks' reads of the shared original.
func (l *Layout) Clone() *Layout {
	cp := *l
	cp.owner = append([]int(nil), l.owner...)
	return &cp
}

// SetOwner reassigns a block to a rank. Only the rebalancer calls it,
// and only on a Clone.
func (l *Layout) SetOwner(id, rank int) { l.owner[id] = rank }

// Degrade returns a new layout for the surviving P-1 ranks after the
// given rank failed: survivors above the failed rank shift down one
// index (preserving their relative order, so a survivor's blocks stay
// together), and the failed rank's orphaned blocks are dealt, in
// ascending id, each to the survivor owning the fewest blocks at that
// moment (ties to the lowest rank). The deal is deterministic, so
// every participant in a recovery derives the identical layout.
//
// The process-grid factorisation (ProcDims) is kept from the original
// layout: it only seeds the static cyclic deal and the block-edge
// validation, both already fixed, and re-factoring for P-1 could
// violate the block-grid divisibility the halo templates assume. The
// supervisor restarts ranks against the returned ownership table, so
// ownership — not ProcDims — is what must be consistent.
func (l *Layout) Degrade(failed int) (*Layout, error) {
	if l.P <= 1 {
		return nil, fmt.Errorf("decomp: cannot degrade a %d-rank layout", l.P)
	}
	if failed < 0 || failed >= l.P {
		return nil, fmt.Errorf("decomp: degrade of invalid rank %d of %d", failed, l.P)
	}
	cp := l.Clone()
	cp.P = l.P - 1
	load := make([]int, cp.P)
	var orphans []int
	for id, r := range l.owner {
		switch {
		case r == failed:
			cp.owner[id] = -1
			orphans = append(orphans, id)
		case r > failed:
			cp.owner[id] = r - 1
			load[r-1]++
		default:
			load[r]++
		}
	}
	for _, id := range orphans {
		best := 0
		for r := 1; r < cp.P; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		cp.owner[id] = best
		load[best]++
	}
	return cp, nil
}

// BlocksPerProc returns B/P, the paper's granularity measure.
func (l *Layout) BlocksPerProc() int { return l.B / l.P }

// blockID flattens block coordinates row-major.
func (l *Layout) blockID(c [geom.MaxD]int) int {
	id := 0
	for i := 0; i < l.D; i++ {
		id = id*l.BlockDims[i] + c[i]
	}
	return id
}

// blockCoords expands a flat block id.
func (l *Layout) blockCoords(id int) [geom.MaxD]int {
	var c [geom.MaxD]int
	for i := l.D - 1; i >= 0; i-- {
		c[i] = id % l.BlockDims[i]
		id /= l.BlockDims[i]
	}
	return c
}

// RankOfBlock returns the block's current owner. With rebalancing off
// this is the static cyclic deal; the rebalancer may move it.
func (l *Layout) RankOfBlock(id int) int { return l.owner[id] }

// CyclicRankOfBlock returns the static block-cyclic owner of a block:
// coordinate-wise modulo onto the process grid, flattened row-major.
// This is the initial deal every layout starts from.
func (l *Layout) CyclicRankOfBlock(id int) int {
	c := l.blockCoords(id)
	r := 0
	for i := 0; i < l.D; i++ {
		r = r*l.ProcDims[i] + c[i]%l.ProcDims[i]
	}
	return r
}

// BlocksOfRank returns the flat ids of the blocks the rank owns, in
// ascending id order.
func (l *Layout) BlocksOfRank(rank int) []int {
	var out []int
	for id := 0; id < l.B; id++ {
		if l.RankOfBlock(id) == rank {
			out = append(out, id)
		}
	}
	return out
}

// CoreRegion returns the origin and edge lengths of a block's core.
func (l *Layout) CoreRegion(id int) (origin, span geom.Vec) {
	c := l.blockCoords(id)
	for i := 0; i < l.D; i++ {
		edge := l.Box.Len[i] / float64(l.BlockDims[i])
		origin[i] = float64(c[i]) * edge
		span[i] = edge
	}
	return origin, span
}

// ExtRegion returns the core grown by the halo width rc on every side.
// For reflecting (walled) domains the growth is clipped at the domain
// boundary, since nothing lives beyond a hard wall.
func (l *Layout) ExtRegion(id int) (origin, span geom.Vec) {
	origin, span = l.CoreRegion(id)
	for i := 0; i < l.D; i++ {
		lo := origin[i] - l.RC
		hi := origin[i] + span[i] + l.RC
		if l.Box.BC == geom.Reflecting {
			if lo < 0 {
				lo = 0
			}
			if hi > l.Box.Len[i] {
				hi = l.Box.Len[i]
			}
		}
		origin[i] = lo
		span[i] = hi - lo
	}
	return origin, span
}

// BlockOfPos returns the flat id of the block whose core contains p,
// clamping onto the grid (positions exactly on the upper domain face
// belong to the last block).
func (l *Layout) BlockOfPos(p geom.Vec) int {
	var c [geom.MaxD]int
	for i := 0; i < l.D; i++ {
		n := l.BlockDims[i]
		edge := l.Box.Len[i] / float64(n)
		v := int(p[i] / edge)
		if v < 0 {
			v = 0
		}
		if v >= n {
			v = n - 1
		}
		// The division can round across a face for positions within an
		// ulp of it, which would disagree with the [v*edge, (v+1)*edge)
		// comparisons the core regions and halo slabs are built from —
		// the particle would then be owned by a block whose slabs never
		// select it and vanish from its neighbour's halo. Nudge v until
		// ownership and comparison agree exactly.
		for v > 0 && p[i] < float64(v)*edge {
			v--
		}
		for v < n-1 && p[i] >= float64(v+1)*edge {
			v++
		}
		c[i] = v
	}
	return l.blockID(c)
}

// Neighbor returns the flat id of the block displaced by dir (+1/-1)
// along dim, together with the coordinate shift the *receiver* must
// add to positions arriving from that neighbour (nonzero only when
// the displacement wraps a periodic boundary). ok is false when the
// domain is walled and the neighbour would lie outside.
func (l *Layout) Neighbor(id, dim, dir int) (nb int, shift geom.Vec, ok bool) {
	c := l.blockCoords(id)
	v := c[dim] + dir
	n := l.BlockDims[dim]
	switch {
	case v >= 0 && v < n:
		// interior neighbour
	case l.Box.BC == geom.Periodic:
		if v < 0 {
			v += n
			shift[dim] = -l.Box.Len[dim]
		} else {
			v -= n
			shift[dim] = +l.Box.Len[dim]
		}
	default:
		return 0, geom.Vec{}, false
	}
	c[dim] = v
	return l.blockID(c), shift, true
}
