package decomp

import (
	"math/rand"
	"sync"
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/mp"
)

// costField builds a deterministic, strongly skewed per-block cost
// vector: pseudo-random weights plus a heavy band at low block ids, so
// bisections actually have something to chase.
func costField(b int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	cost := make([]float64, b)
	for i := range cost {
		cost[i] = 1 + 10*rng.Float64()
		if i < b/4 {
			cost[i] += 40
		}
	}
	return cost
}

// TestORBTreeTilesBox: for a sweep of rank counts and granularities,
// the cut tree must partition the block grid exactly — every block
// owned by exactly one leaf, every rank owning at least one block, and
// each rank's blocks forming the contiguous brick its leaf claims.
func TestORBTreeTilesBox(t *testing.T) {
	box := geom.NewBox(2, 12, geom.Periodic)
	for _, p := range []int{1, 2, 3, 4, 5, 8, 9} {
		for _, bpp := range []int{1, 2, 4} {
			l, err := NewLayout(box, 0.5, p, bpp)
			if err != nil {
				t.Fatalf("p=%d bpp=%d: %v", p, bpp, err)
			}
			tree := NewORBTree(l)
			tree.Build(l, costField(l.B, 7))
			if err := tree.Validate(); err != nil {
				t.Fatalf("p=%d bpp=%d: invalid tree: %v", p, bpp, err)
			}
			owners := make([]int, l.B)
			for i := range owners {
				owners[i] = -1
			}
			tree.Owners(l, owners)
			perRank := make([]int, p)
			for id, r := range owners {
				if r < 0 || r >= p {
					t.Fatalf("p=%d bpp=%d: block %d owner %d out of range", p, bpp, id, r)
				}
				perRank[r]++
			}
			for r, n := range perRank {
				if n == 0 {
					t.Errorf("p=%d bpp=%d: rank %d owns no block", p, bpp, r)
				}
			}
			// Contiguity: each leaf brick must be owned wall-to-wall by
			// its single rank.
			for i := 0; i < tree.n; i++ {
				nd := &tree.Nodes[i]
				if nd.NRank != 1 {
					continue
				}
				var c [geom.MaxD]int
				for x := int(nd.Lo[0]); x < int(nd.Hi[0]); x++ {
					for y := int(nd.Lo[1]); y < int(nd.Hi[1]); y++ {
						c[0], c[1] = x, y
						if got := owners[l.blockID(c)]; got != int(nd.Rank0) {
							t.Fatalf("p=%d bpp=%d: block (%d,%d) owned by %d, leaf says %d",
								p, bpp, x, y, got, nd.Rank0)
						}
					}
				}
			}
		}
	}
}

// TestORBTreeDeterministic: for a fixed cost field the bisection is a
// pure function — rebuilding yields an Equal tree, at every rank
// count. Determinism is what makes the cutDiff between consecutive
// epochs meaningful.
func TestORBTreeDeterministic(t *testing.T) {
	box := geom.NewBox(3, 9, geom.Periodic)
	for _, p := range []int{2, 3, 4, 6} {
		l, err := NewLayout(box, 0.6, p, 2)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		cost := costField(l.B, 99)
		a, b := NewORBTree(l), NewORBTree(l)
		a.Build(l, cost)
		b.Build(l, cost)
		if !a.Equal(b) {
			t.Errorf("p=%d: identical cost fields produced different trees", p)
		}
		if cutDiff(a, b) != 0 {
			t.Errorf("p=%d: cutDiff between equal trees is nonzero", p)
		}
	}
}

// TestORBTreeOddSquareGrids: odd square grids at one block per rank
// (P=9 on 3x3, P=25 on 5x5) have no block-face plane that a fixed
// ceil(P/2) rank split can use, so they crashed the Build that chose
// the split before the plane. With the split chosen per plane every
// admissible layout must bisect cleanly, on skewed and flat cost
// fields alike.
func TestORBTreeOddSquareGrids(t *testing.T) {
	box := geom.NewBox(2, 12, geom.Periodic)
	for _, p := range []int{9, 25} {
		l, err := NewLayout(box, 0.4, p, 1)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for name, cost := range map[string][]float64{
			"skewed": costField(l.B, 7),
			"flat":   make([]float64, l.B),
		} {
			tree := NewORBTree(l)
			tree.Build(l, cost)
			if err := tree.Validate(); err != nil {
				t.Fatalf("p=%d %s: invalid tree: %v", p, name, err)
			}
			owners := make([]int, l.B)
			tree.Owners(l, owners)
			perRank := make([]int, p)
			for _, r := range owners {
				perRank[r]++
			}
			for r, n := range perRank {
				if n == 0 {
					t.Errorf("p=%d %s: rank %d owns no block", p, name, r)
				}
			}
		}
	}
}

// permuteNodes returns a tree with the same structure but a different
// node allocation order (root pinned at 0, the rest reversed), the
// kind of index layout a foreign encoder could legally produce.
func permuteNodes(t *ORBTree) *ORBTree {
	cp := &ORBTree{D: t.D, P: t.P, BlockDims: t.BlockDims, n: t.n}
	cp.Nodes = make([]ORBNode, t.n)
	cp.line = make([]float64, len(t.line))
	perm := make([]int32, t.n)
	for i := 1; i < t.n; i++ {
		perm[i] = int32(t.n - i)
	}
	for i := 0; i < t.n; i++ {
		nd := t.Nodes[i]
		if nd.Left >= 0 {
			nd.Left, nd.Right = perm[nd.Left], perm[nd.Right]
		}
		cp.Nodes[perm[i]] = nd
	}
	return cp
}

// TestORBCutDiffStructural: cutDiff must compare trees by walking
// them from the root, not by node index — a permuted-but-valid node
// layout of the same tree carries zero shifted planes, and a tree
// built from a different cost field carries at least one.
func TestORBCutDiffStructural(t *testing.T) {
	box := geom.NewBox(2, 12, geom.Periodic)
	l, err := NewLayout(box, 0.5, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewORBTree(l)
	tree.Build(l, costField(l.B, 7))
	perm := permuteNodes(tree)
	if err := perm.Validate(); err != nil {
		t.Fatalf("permuted tree rejected: %v", err)
	}
	if d := cutDiff(tree, perm); d != 0 {
		t.Errorf("cutDiff between index permutations of one tree is %d, want 0", d)
	}
	if d := cutDiff(perm, tree); d != 0 {
		t.Errorf("cutDiff is asymmetric over a permutation: %d", d)
	}
	other := NewORBTree(l)
	flat := make([]float64, l.B)
	for i := range flat {
		flat[i] = 1
	}
	other.Build(l, flat)
	if d := cutDiff(tree, other); d == 0 {
		t.Error("cutDiff between trees of different cost fields is 0")
	} else if d != cutDiff(perm, other) {
		t.Error("cutDiff changes when one operand's nodes are permuted")
	}
}

// TestORBTreeEncodeDecode: the wire form round-trips exactly, and a
// rebuilt tree from a different cost field decodes to a non-Equal one
// (the encoding is not degenerate).
func TestORBTreeEncodeDecode(t *testing.T) {
	box := geom.NewBox(2, 12, geom.Periodic)
	l, err := NewLayout(box, 0.5, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewORBTree(l)
	tree.Build(l, costField(l.B, 7))
	enc := tree.Encode()
	dec, err := DecodeTree(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !dec.Equal(tree) {
		t.Fatal("decoded tree differs from the encoded one")
	}
	if !dec.Matches(l) {
		t.Fatal("decoded tree does not match its layout")
	}
	if got := dec.Encode(); string(got) != string(enc) {
		t.Fatal("re-encoding the decoded tree changed the bytes")
	}

	other := NewORBTree(l)
	flat := make([]float64, l.B)
	for i := range flat {
		flat[i] = 1
	}
	other.Build(l, flat)
	if other.Equal(tree) {
		t.Fatal("flat and skewed cost fields produced the same tree; cost has no effect")
	}

	// Truncations and corruptions must error, never panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeTree(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[9] ^= 0x40 // clobber P
	if _, err := DecodeTree(bad); err == nil {
		t.Fatal("corrupted header decoded without error")
	}
}

// FuzzDecodeTree: DecodeTree must never panic, and any input it
// accepts must validate and re-encode to the identical bytes.
func FuzzDecodeTree(f *testing.F) {
	box := geom.NewBox(2, 12, geom.Periodic)
	for _, p := range []int{1, 2, 4} {
		l, err := NewLayout(box, 0.5, p, 2)
		if err != nil {
			f.Fatal(err)
		}
		tree := NewORBTree(l)
		tree.Build(l, costField(l.B, int64(p)))
		f.Add(tree.Encode())
	}
	f.Add([]byte("HYORBT01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		tree, err := DecodeTree(b)
		if err != nil {
			return
		}
		if verr := tree.Validate(); verr != nil {
			t.Fatalf("DecodeTree accepted a tree Validate rejects: %v", verr)
		}
		if got := tree.Encode(); string(got) != string(b) {
			t.Fatal("accepted input does not re-encode to itself")
		}
	})
}

// TestORBOwnershipInvariants mirrors the LPT ownership oracle for the
// adaptive ORB strategy: after a repartitioned Rebuild of a clustered
// bed, all ranks agree on the ownership table, the table matches a
// valid cut tree, every particle lives on its owner, and the halos
// satisfy the replication oracle.
func TestORBOwnershipInvariants(t *testing.T) {
	const n = 600
	const p = 4
	const bpp = 4
	box := geom.NewBox(2, 10, geom.Periodic)
	l := mustLayout(t, box, 0.5, p, bpp)

	owners := make([][]int, p)
	counts := make([]int, p)
	trees := make([]*ORBTree, p)
	global := make([]geom.Vec, n)
	errs := make([]error, p)
	var mu sync.Mutex
	moved := int64(0)
	shifts := int64(0)
	mp.Run(p, nil, func(c *mp.Comm) {
		dm := NewDomain(l, c, false)
		dm.Rebalance = StrategyORB
		dm.FillClustered(n, 11, 0.5, 0.25)
		gatherGlobal(dm, global)
		dm.Rebuild(true)

		own := make([]int, l.B)
		for id := 0; id < l.B; id++ {
			own[id] = dm.L.RankOfBlock(id)
		}
		owners[c.Rank()] = own
		trees[c.Rank()] = dm.ORBTreeSnapshot()
		for _, b := range dm.Blocks {
			counts[c.Rank()] += b.NCore
			for i := 0; i < b.NCore; i++ {
				if l.BlockOfPos(b.PS.PosAt(i)) != b.ID {
					t.Errorf("rank %d: particle %d in wrong block", c.Rank(), b.PS.ID[i])
				}
			}
		}
		mu.Lock()
		moved += dm.TC.BlocksMoved
		shifts += dm.TC.CutShifts
		mu.Unlock()
		errs[c.Rank()] = dm.VerifyHalos(global, nil, 0)
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: halo oracle: %v", r, err)
		}
	}
	for r := 1; r < p; r++ {
		for id := range owners[0] {
			if owners[r][id] != owners[0][id] {
				t.Fatalf("ranks 0 and %d disagree on owner of block %d", r, id)
			}
		}
	}
	for r := 0; r < p; r++ {
		if trees[r] == nil {
			t.Fatalf("rank %d has no adopted cut tree after a clustered rebuild", r)
		}
		if err := trees[r].Validate(); err != nil {
			t.Errorf("rank %d: adopted tree invalid: %v", r, err)
		}
		if !trees[r].Equal(trees[0]) {
			t.Errorf("ranks 0 and %d hold different cut trees", r)
		}
	}
	// The adopted tree and the live ownership table must agree.
	want := make([]int, l.B)
	trees[0].Owners(mustLayout(t, box, 0.5, p, bpp), want)
	for id, r := range want {
		if owners[0][id] != r {
			t.Errorf("block %d: table says rank %d, tree says rank %d", id, owners[0][id], r)
		}
	}
	total := 0
	for r, c := range counts {
		if c == 0 {
			t.Errorf("rank %d owns no particles on a clustered bed", r)
		}
		total += c
	}
	if total != n {
		t.Errorf("particles lost in repartition: have %d want %d", total, n)
	}
	if moved == 0 {
		t.Error("clustered bed triggered no block transfers")
	}
	if shifts == 0 {
		t.Error("first ORB adoption recorded no cut shifts")
	}
}
