package decomp

import (
	"fmt"
	"strings"
)

// Strategy selects the dynamic load-balancing algorithm the domain
// runs at each list rebuild.
type Strategy int

const (
	// StrategyOff keeps the static block-cyclic deal for the whole run.
	StrategyOff Strategy = iota
	// StrategyLPT prices blocks (links + core particles, EWMA-smoothed)
	// and re-deals whole blocks with a deterministic
	// longest-processing-time-first heuristic; blocks assigned to one
	// rank may be scattered anywhere in the grid.
	StrategyLPT
	// StrategyORB recuts the box with an orthogonal recursive bisection
	// tree over the same smoothed cost field: each rank owns one
	// contiguous brick of blocks, so its halo surface stays compact
	// while the cut planes follow the particles.
	StrategyORB
)

// strategyNames is the single source of truth tying Strategy constants
// to their command-line names: String(), StrategyByName and
// StrategyNames all derive from it, mirroring the core.ModeByName
// idiom, so the demrun/dembench flags and the validation error text can
// never drift apart.
var strategyNames = [...]struct {
	strategy Strategy
	name     string
}{
	{StrategyOff, "off"},
	{StrategyLPT, "lpt"},
	{StrategyORB, "orb"},
}

// Strategies lists every declared rebalance strategy in declaration
// order.
func Strategies() []Strategy {
	ss := make([]Strategy, len(strategyNames))
	for i, e := range strategyNames {
		ss[i] = e.strategy
	}
	return ss
}

// StrategyNames returns the command-line names of all strategies, in
// declaration order — the canonical content of a -rebalance flag's help
// text.
func StrategyNames() []string {
	ns := make([]string, len(strategyNames))
	for i, e := range strategyNames {
		ns[i] = e.name
	}
	return ns
}

// StrategyByName resolves a command-line strategy name
// (case-insensitive). The error lists the valid names.
func StrategyByName(name string) (Strategy, error) {
	for _, e := range strategyNames {
		if strings.EqualFold(name, e.name) {
			return e.strategy, nil
		}
	}
	return 0, fmt.Errorf("unknown rebalance strategy %q (valid: %s)", name, strings.Join(StrategyNames(), " | "))
}

func (s Strategy) String() string {
	for _, e := range strategyNames {
		if e.strategy == s {
			return e.name
		}
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Valid reports whether s is a declared strategy.
func (s Strategy) Valid() bool {
	for _, e := range strategyNames {
		if e.strategy == s {
			return true
		}
	}
	return false
}

// Enabled reports whether the strategy runs a balancer at all.
func (s Strategy) Enabled() bool { return s != StrategyOff }

// StrategyFlag adapts a Strategy to the flag.Value interface with the
// historical boolean forms kept alive: a bare `-rebalance` means lpt,
// `-rebalance=false` means off, and `-rebalance=off|lpt|orb` names a
// strategy directly.
type StrategyFlag struct{ S Strategy }

func (f *StrategyFlag) String() string { return f.S.String() }

// Set parses one flag value. The boolean spellings come first because
// the flag package passes "true" for a bare boolean flag.
func (f *StrategyFlag) Set(v string) error {
	switch strings.ToLower(v) {
	case "true", "1":
		f.S = StrategyLPT
		return nil
	case "false", "0":
		f.S = StrategyOff
		return nil
	}
	s, err := StrategyByName(v)
	if err != nil {
		return err
	}
	f.S = s
	return nil
}

// IsBoolFlag lets `-rebalance` appear with no value (meaning lpt, the
// pre-strategy behaviour of the boolean flag it replaced). The cost of
// that back-compat is that the space-separated form `-rebalance orb`
// does NOT bind the value: the flag package treats a boolean-capable
// flag's next argument as positional, so a named strategy must be
// spelled `-rebalance=orb` — the registered help text says so.
func (f *StrategyFlag) IsBoolFlag() bool { return true }
