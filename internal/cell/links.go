package cell

import (
	"hybriddem/internal/geom"
	"hybriddem/internal/trace"
)

// Link joins two particles closer than the cutoff. I and J index the
// particle store; the builder guarantees I < J for intra-cell links and
// a deterministic orientation for inter-cell links, so each pair
// appears exactly once ("the minimal number of force evaluations").
//
// A []Link is deliberately a flat array of sorted index pairs — eight
// bytes per link, generated in cell-major order so consecutive links
// touch nearby particle indices. Combined with the component-major
// particle store this is the streaming-access layout the pair kernel
// wants: the link stream is read once, sequentially, and the particle
// loads it induces stay within a few cache lines of each other.
type Link struct {
	I, J int32
}

// List is the fundamental object of the algorithm: "a single list of
// links", with "all the core links first" (Section 6). Links[0:NCore)
// touch only core particles; Links[NCore:] have at least one halo
// endpoint and their energy is halved by the caller to avoid double
// counting across the replicating blocks.
type List struct {
	Links []Link
	NCore int
}

// CoreLinks returns the links whose endpoints are both core particles.
// The capacity is clipped at NCore so a caller that appends through the
// returned slice can never clobber the halo region of the list.
func (l *List) CoreLinks() []Link { return l.Links[:l.NCore:l.NCore] }

// HaloLinks returns the links with at least one halo endpoint.
func (l *List) HaloLinks() []Link { return l.Links[l.NCore:] }

// ListBuffer owns the reusable storage for link-list construction: the
// core/halo staging areas and the final list's backing array. A caller
// that rebuilds lists repeatedly holds one ListBuffer per grid and
// passes it to BuildLinksInto; after the first few rebuilds the
// construction is allocation-free. The List returned by BuildLinksInto
// (and its Links backing) is owned by the buffer and is invalidated by
// the next BuildLinksInto call on the same buffer.
type ListBuffer struct {
	core, halo []Link
	list       List
}

// linkBuilder accumulates candidate pairs into core/halo staging
// slices. It is a plain struct with pointer-receiver methods (rather
// than a closure) so the hot rebuild path does not allocate.
type linkBuilder struct {
	pos    *geom.Coords
	nCore  int32
	rc2    float64
	box    geom.Box
	core   []Link
	halo   []Link
	checks int64
}

// add distance-tests the candidate pair (i, j) and stages it as a core
// or halo link. Halo-halo pairs are excluded: forces on halo particles
// are never used (each block updates only its core), and every
// halo-halo pair is some block's core-halo or core-core pair, so
// including them would double work and double-count energy.
func (lb *linkBuilder) add(i, j int32) {
	if i >= lb.nCore && j >= lb.nCore {
		return // halo-halo: some neighbouring block owns this pair
	}
	lb.checks++
	if lb.box.Dist2At(lb.pos, i, j) >= lb.rc2 {
		return
	}
	if i >= lb.nCore || j >= lb.nCore {
		// Orient halo links core-first so the force loop can
		// update F[I] unconditionally.
		if i >= lb.nCore {
			i, j = j, i
		}
		lb.halo = append(lb.halo, Link{i, j})
	} else {
		if i > j {
			i, j = j, i
		}
		lb.core = append(lb.core, Link{i, j})
	}
}

// addCellPairs stages every candidate pair of cell c: intra-cell pairs
// ("links internal to a cell originate from the lowest-numbered
// particle") and inter-cell pairs over the half stencil ("those between
// cells [originate] from the lowest-numbered cell").
func (g *Grid) addCellPairs(lb *linkBuilder, c int32, stencil [][geom.MaxD]int) {
	ps := g.CellParticles(c)
	for a := 0; a < len(ps); a++ {
		for b := a + 1; b < len(ps); b++ {
			lb.add(ps[a], ps[b])
		}
	}
	cc := g.coords(c)
	for _, off := range stencil {
		var nb [geom.MaxD]int
		ok := true
		for i := 0; i < g.D; i++ {
			v := cc[i] + off[i]
			if g.Wrap {
				if v < 0 {
					v += g.N[i]
				} else if v >= g.N[i] {
					v -= g.N[i]
				}
			} else if v < 0 || v >= g.N[i] {
				ok = false
				break
			}
			nb[i] = v
		}
		if !ok {
			continue
		}
		c2 := g.flatten(nb)
		if c2 == c {
			continue // wrapped onto itself (cannot happen off the degenerate path, but cheap to guard)
		}
		qs := g.CellParticles(c2)
		for _, i := range ps {
			for _, j := range qs {
				lb.add(i, j)
			}
		}
	}
}

// BuildLinks constructs the pair list for the first n entries of pos
// using the grid's binning (Bin must have been called with the same n).
// Pairs are kept when their squared separation under box is below rc2.
// Particles with index >= nCore are halo copies; pass nCore == n when
// there is no halo. Counters may be nil.
//
// BuildLinks allocates a fresh buffer per call; steady-state callers
// should hold a ListBuffer and use BuildLinksInto instead.
func (g *Grid) BuildLinks(pos *geom.Coords, n, nCore int, rc2 float64, box geom.Box, tc *trace.Counters) *List {
	return g.BuildLinksInto(new(ListBuffer), pos, n, nCore, rc2, box, tc)
}

// BuildLinksInto is BuildLinks building into caller-owned reused
// storage. The returned List (and its Links slice) is backed by buf and
// stays valid until the next BuildLinksInto on the same buffer. The
// list's backing array is distinct from the core/halo staging areas, so
// retaining CoreLinks/HaloLinks sub-slices can never alias the staging
// buffers of a later build.
func (g *Grid) BuildLinksInto(buf *ListBuffer, pos *geom.Coords, n, nCore int, rc2 float64, box geom.Box, tc *trace.Counters) *List {
	lb := linkBuilder{
		pos:   pos,
		nCore: int32(nCore),
		rc2:   rc2,
		box:   box,
		core:  buf.core[:0],
		halo:  buf.halo[:0],
	}

	if g.degenerate {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				lb.add(int32(i), int32(j))
			}
		}
	} else {
		stencil := g.halfStencilCached()
		nc := g.NumCells()
		for c := int32(0); c < int32(nc); c++ {
			g.addCellPairs(&lb, c, stencil)
		}
	}

	buf.core, buf.halo = lb.core, lb.halo
	if tc != nil {
		tc.PairChecks += lb.checks
		tc.LinkBuilds++
	}
	out := &buf.list
	out.NCore = len(lb.core)
	out.Links = append(out.Links[:0], lb.core...)
	out.Links = append(out.Links, lb.halo...)
	return out
}
