package cell

import (
	"hybriddem/internal/geom"
	"hybriddem/internal/trace"
)

// Link joins two particles closer than the cutoff. I and J index the
// particle store; the builder guarantees I < J for intra-cell links and
// a deterministic orientation for inter-cell links, so each pair
// appears exactly once ("the minimal number of force evaluations").
type Link struct {
	I, J int32
}

// List is the fundamental object of the algorithm: "a single list of
// links", with "all the core links first" (Section 6). Links[0:NCore)
// touch only core particles; Links[NCore:] have at least one halo
// endpoint and their energy is halved by the caller to avoid double
// counting across the replicating blocks.
type List struct {
	Links []Link
	NCore int
}

// CoreLinks returns the links whose endpoints are both core particles.
func (l *List) CoreLinks() []Link { return l.Links[:l.NCore] }

// HaloLinks returns the links with at least one halo endpoint.
func (l *List) HaloLinks() []Link { return l.Links[l.NCore:] }

// BuildLinks constructs the pair list for the first n entries of pos
// using the grid's binning (Bin must have been called with the same n).
// Pairs are kept when their squared separation under box is below rc2.
// Particles with index >= nCore are halo copies; pass nCore == n when
// there is no halo. Counters may be nil.
//
// Halo-halo pairs are excluded: forces on halo particles are never used
// (each block updates only its core), and every halo-halo pair is some
// block's core-halo or core-core pair, so including them would double
// work and double-count energy.
func (g *Grid) BuildLinks(pos []geom.Vec, n, nCore int, rc2 float64, box geom.Box, tc *trace.Counters) *List {
	var core, halo []Link
	checks := int64(0)

	add := func(i, j int32) {
		if i >= int32(nCore) && j >= int32(nCore) {
			return // halo-halo: some neighbouring block owns this pair
		}
		checks++
		if box.Dist2(pos[i], pos[j]) >= rc2 {
			return
		}
		if i >= int32(nCore) || j >= int32(nCore) {
			// Orient halo links core-first so the force loop can
			// update F[I] unconditionally.
			if i >= int32(nCore) {
				i, j = j, i
			}
			halo = append(halo, Link{i, j})
		} else {
			if i > j {
				i, j = j, i
			}
			core = append(core, Link{i, j})
		}
	}

	if g.degenerate {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				add(int32(i), int32(j))
			}
		}
	} else {
		stencil := halfStencil(g.D)
		nc := g.NumCells()
		for c := int32(0); c < int32(nc); c++ {
			ps := g.CellParticles(c)
			// Intra-cell pairs: "links internal to a cell originate
			// from the lowest-numbered particle".
			for a := 0; a < len(ps); a++ {
				for b := a + 1; b < len(ps); b++ {
					add(ps[a], ps[b])
				}
			}
			// Inter-cell pairs over the half stencil: "those between
			// cells [originate] from the lowest-numbered cell".
			cc := g.coords(c)
			for _, off := range stencil {
				var nb [geom.MaxD]int
				ok := true
				for i := 0; i < g.D; i++ {
					v := cc[i] + off[i]
					if g.Wrap {
						if v < 0 {
							v += g.N[i]
						} else if v >= g.N[i] {
							v -= g.N[i]
						}
					} else if v < 0 || v >= g.N[i] {
						ok = false
						break
					}
					nb[i] = v
				}
				if !ok {
					continue
				}
				c2 := g.flatten(nb)
				if c2 == c {
					continue // wrapped onto itself (cannot happen off the degenerate path, but cheap to guard)
				}
				qs := g.CellParticles(c2)
				for _, i := range ps {
					for _, j := range qs {
						add(i, j)
					}
				}
			}
		}
	}

	if tc != nil {
		tc.PairChecks += checks
		tc.LinkBuilds++
	}
	out := &List{NCore: len(core)}
	out.Links = append(core, halo...)
	return out
}
