package cell

import (
	"hybriddem/internal/geom"
	"hybriddem/internal/trace"
)

// Pool abstracts a thread team for the parallel link-generation path
// so this package stays independent of the shm runtime (which imports
// it). shm provides the adapter.
type Pool interface {
	// Threads returns the team size T.
	Threads() int
	// ParallelFor runs body over static contiguous chunks of [0, n),
	// one per thread, concurrently.
	ParallelFor(n int, body func(thread, lo, hi int))
}

// ensureThreadScratch sizes the grid's per-thread count and cursor
// arrays for T threads of nc cells each, reusing prior capacity.
func (g *Grid) ensureThreadScratch(T, nc int) {
	if len(g.perThread) < T {
		g.perThread = append(g.perThread, make([][]int32, T-len(g.perThread))...)
		g.curThread = append(g.curThread, make([][]int32, T-len(g.curThread))...)
	}
	for t := 0; t < T; t++ {
		if cap(g.perThread[t]) < nc {
			g.perThread[t] = make([]int32, nc)
			g.curThread[t] = make([]int32, nc)
		}
		g.perThread[t] = g.perThread[t][:nc]
		g.curThread[t] = g.curThread[t][:nc]
	}
}

// BinParallel is the thread-parallel Bin: the paper's Section 7
// parallelises link generation with "parallel loops over particles
// (when binning into cells)", resolving the inter-thread dependency
// on the cell counts "using simple array-reduction methods" — each
// thread counts into a private array, the counts are merged, and a
// second parallel pass scatters particles using per-thread per-cell
// cursors. The result is bit-identical to the serial Bin.
func (g *Grid) BinParallel(pos *geom.Coords, n int, pool Pool, tc *trace.Counters) {
	T := pool.Threads()
	if T <= 1 {
		g.Bin(pos, n, tc)
		return
	}
	nc := g.NumCells()
	if cap(g.cellOf) < n {
		g.cellOf = make([]int32, n)
	}
	g.cellOf = g.cellOf[:n]
	if cap(g.count) < nc {
		g.count = make([]int32, nc)
		g.start = make([]int32, nc+1)
	}
	g.count = g.count[:nc]
	g.start = g.start[:nc+1]
	if cap(g.order) < n {
		g.order = make([]int32, n)
	}
	g.order = g.order[:n]
	g.ensureThreadScratch(T, nc)

	// Pass 1: classify particles and count per thread (the private
	// arrays of the array-reduction method).
	perThread := g.perThread
	pool.ParallelFor(n, func(t, lo, hi int) {
		counts := perThread[t]
		for c := range counts {
			counts[c] = 0
		}
		for i := lo; i < hi; i++ {
			c := g.cellIndexAt(pos, i)
			g.cellOf[i] = c
			counts[c]++
		}
	})

	// Merge: global counts and prefix starts (serial over cells; the
	// cell count is far below the particle count).
	for c := 0; c < nc; c++ {
		var sum int32
		for t := 0; t < T; t++ {
			sum += perThread[t][c]
		}
		g.count[c] = sum
	}
	g.start[0] = 0
	for c := 0; c < nc; c++ {
		g.start[c+1] = g.start[c] + g.count[c]
	}

	// Per-thread scatter cursors: thread t's slot in cell c begins
	// after every earlier thread's contribution, which reproduces the
	// serial counting sort's ascending-index order exactly.
	cursors := g.curThread
	for t := 0; t < T; t++ {
		cur := cursors[t]
		for c := 0; c < nc; c++ {
			off := g.start[c]
			for u := 0; u < t; u++ {
				off += perThread[u][c]
			}
			cur[c] = off
		}
	}

	// Pass 2: scatter into the cell-ordered list.
	pool.ParallelFor(n, func(t, lo, hi int) {
		cur := cursors[t]
		for i := lo; i < hi; i++ {
			c := g.cellOf[i]
			g.order[cur[c]] = int32(i)
			cur[c]++
		}
	})

	if tc != nil {
		tc.CellBinOps += int64(n)
	}
}

// BuildLinksParallel is the thread-parallel BuildLinks: "link
// generation over cells". Each thread builds the links of a
// contiguous cell range into private lists which are concatenated in
// cell order, so the result matches the serial builder exactly
// (including the core-links-first layout). The degenerate small-box
// path stays serial. The per-thread staging areas and the merged
// list's backing array are grid-owned and reused across rebuilds, so
// steady-state rebuilds are allocation-free; the returned List is
// invalidated by the next build on the same grid.
func (g *Grid) BuildLinksParallel(pos *geom.Coords, n, nCore int, rc2 float64, box geom.Box, pool Pool, tc *trace.Counters) *List {
	T := pool.Threads()
	if T <= 1 || g.degenerate {
		return g.BuildLinks(pos, n, nCore, rc2, box, tc)
	}
	nc := g.NumCells()
	stencil := g.halfStencilCached()
	if len(g.coreBufs) < T {
		g.coreBufs = append(g.coreBufs, make([]ListBuffer, T-len(g.coreBufs))...)
	}
	if len(g.checkBuf) < T {
		g.checkBuf = append(g.checkBuf, make([]int64, T-len(g.checkBuf))...)
	}
	bufs := g.coreBufs
	checks := g.checkBuf[:T]

	pool.ParallelFor(nc, func(t, clo, chi int) {
		lb := linkBuilder{
			pos:   pos,
			nCore: int32(nCore),
			rc2:   rc2,
			box:   box,
			core:  bufs[t].core[:0],
			halo:  bufs[t].halo[:0],
		}
		for c := int32(clo); c < int32(chi); c++ {
			g.addCellPairs(&lb, c, stencil)
		}
		bufs[t].core, bufs[t].halo = lb.core, lb.halo
		checks[t] = lb.checks
	})

	out := &g.mergedList
	out.Links = out.Links[:0]
	for t := 0; t < T; t++ {
		out.Links = append(out.Links, bufs[t].core...)
	}
	out.NCore = len(out.Links)
	for t := 0; t < T; t++ {
		out.Links = append(out.Links, bufs[t].halo...)
	}
	if tc != nil {
		for _, ch := range checks {
			tc.PairChecks += ch
		}
		tc.LinkBuilds++
	}
	return out
}
