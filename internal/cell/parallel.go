package cell

import (
	"hybriddem/internal/geom"
	"hybriddem/internal/trace"
)

// Pool abstracts a thread team for the parallel link-generation path
// so this package stays independent of the shm runtime (which imports
// it). shm provides the adapter.
type Pool interface {
	// Threads returns the team size T.
	Threads() int
	// ParallelFor runs body over static contiguous chunks of [0, n),
	// one per thread, concurrently.
	ParallelFor(n int, body func(thread, lo, hi int))
}

// BinParallel is the thread-parallel Bin: the paper's Section 7
// parallelises link generation with "parallel loops over particles
// (when binning into cells)", resolving the inter-thread dependency
// on the cell counts "using simple array-reduction methods" — each
// thread counts into a private array, the counts are merged, and a
// second parallel pass scatters particles using per-thread per-cell
// cursors. The result is bit-identical to the serial Bin.
func (g *Grid) BinParallel(pos []geom.Vec, n int, pool Pool, tc *trace.Counters) {
	T := pool.Threads()
	if T <= 1 {
		g.Bin(pos, n, tc)
		return
	}
	nc := g.NumCells()
	if cap(g.cellOf) < n {
		g.cellOf = make([]int32, n)
	}
	g.cellOf = g.cellOf[:n]
	if cap(g.count) < nc {
		g.count = make([]int32, nc)
		g.start = make([]int32, nc+1)
	}
	g.count = g.count[:nc]
	g.start = g.start[:nc+1]
	if cap(g.order) < n {
		g.order = make([]int32, n)
	}
	g.order = g.order[:n]

	// Pass 1: classify particles and count per thread (the private
	// arrays of the array-reduction method).
	perThread := make([][]int32, T)
	pool.ParallelFor(n, func(t, lo, hi int) {
		counts := make([]int32, nc)
		for i := lo; i < hi; i++ {
			c := g.cellIndex(pos[i])
			g.cellOf[i] = c
			counts[c]++
		}
		perThread[t] = counts
	})

	// Merge: global counts and prefix starts (serial over cells; the
	// cell count is far below the particle count).
	for c := 0; c < nc; c++ {
		var sum int32
		for t := 0; t < T; t++ {
			sum += perThread[t][c]
		}
		g.count[c] = sum
	}
	g.start[0] = 0
	for c := 0; c < nc; c++ {
		g.start[c+1] = g.start[c] + g.count[c]
	}

	// Per-thread scatter cursors: thread t's slot in cell c begins
	// after every earlier thread's contribution, which reproduces the
	// serial counting sort's ascending-index order exactly.
	cursors := make([][]int32, T)
	for t := 0; t < T; t++ {
		cur := make([]int32, nc)
		for c := 0; c < nc; c++ {
			off := g.start[c]
			for u := 0; u < t; u++ {
				off += perThread[u][c]
			}
			cur[c] = off
		}
		cursors[t] = cur
	}

	// Pass 2: scatter into the cell-ordered list.
	pool.ParallelFor(n, func(t, lo, hi int) {
		cur := cursors[t]
		for i := lo; i < hi; i++ {
			c := g.cellOf[i]
			g.order[cur[c]] = int32(i)
			cur[c]++
		}
	})

	if tc != nil {
		tc.CellBinOps += int64(n)
	}
}

// BuildLinksParallel is the thread-parallel BuildLinks: "link
// generation over cells". Each thread builds the links of a
// contiguous cell range into private lists which are concatenated in
// cell order, so the result matches the serial builder exactly
// (including the core-links-first layout). The degenerate small-box
// path stays serial.
func (g *Grid) BuildLinksParallel(pos []geom.Vec, n, nCore int, rc2 float64, box geom.Box, pool Pool, tc *trace.Counters) *List {
	T := pool.Threads()
	if T <= 1 || g.degenerate {
		return g.BuildLinks(pos, n, nCore, rc2, box, tc)
	}
	nc := g.NumCells()
	stencil := halfStencil(g.D)
	cores := make([][]Link, T)
	halos := make([][]Link, T)
	checks := make([]int64, T)

	pool.ParallelFor(nc, func(t, clo, chi int) {
		var core, halo []Link
		var nchecks int64
		add := func(i, j int32) {
			if i >= int32(nCore) && j >= int32(nCore) {
				return
			}
			nchecks++
			if box.Dist2(pos[i], pos[j]) >= rc2 {
				return
			}
			if i >= int32(nCore) || j >= int32(nCore) {
				if i >= int32(nCore) {
					i, j = j, i
				}
				halo = append(halo, Link{i, j})
			} else {
				if i > j {
					i, j = j, i
				}
				core = append(core, Link{i, j})
			}
		}
		for c := int32(clo); c < int32(chi); c++ {
			ps := g.CellParticles(c)
			for a := 0; a < len(ps); a++ {
				for b := a + 1; b < len(ps); b++ {
					add(ps[a], ps[b])
				}
			}
			cc := g.coords(c)
			for _, off := range stencil {
				var nb [geom.MaxD]int
				ok := true
				for i := 0; i < g.D; i++ {
					v := cc[i] + off[i]
					if g.Wrap {
						if v < 0 {
							v += g.N[i]
						} else if v >= g.N[i] {
							v -= g.N[i]
						}
					} else if v < 0 || v >= g.N[i] {
						ok = false
						break
					}
					nb[i] = v
				}
				if !ok {
					continue
				}
				c2 := g.flatten(nb)
				if c2 == c {
					continue
				}
				qs := g.CellParticles(c2)
				for _, i := range ps {
					for _, j := range qs {
						add(i, j)
					}
				}
			}
		}
		cores[t] = core
		halos[t] = halo
		checks[t] = nchecks
	})

	out := &List{}
	for _, c := range cores {
		out.Links = append(out.Links, c...)
	}
	out.NCore = len(out.Links)
	for _, h := range halos {
		out.Links = append(out.Links, h...)
	}
	if tc != nil {
		for _, ch := range checks {
			tc.PairChecks += ch
		}
		tc.LinkBuilds++
	}
	return out
}
