package cell

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/trace"
)

// pairKey canonicalises a link for set comparison.
func pairKey(i, j int32) string {
	if i > j {
		i, j = j, i
	}
	return fmt.Sprintf("%d-%d", i, j)
}

// bruteForcePairs returns the set of pairs within rc under box.
func bruteForcePairs(pos *geom.Coords, n int, rc2 float64, box geom.Box) map[string]bool {
	out := make(map[string]bool)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if box.Dist2At(pos, int32(i), int32(j)) < rc2 {
				out[pairKey(int32(i), int32(j))] = true
			}
		}
	}
	return out
}

func linkSet(list *List) map[string]bool {
	out := make(map[string]bool)
	for _, l := range list.Links {
		k := pairKey(l.I, l.J)
		if out[k] {
			panic("duplicate link " + k)
		}
		out[k] = true
	}
	return out
}

func randomPositions(n, d int, box geom.Box, seed int64) geom.Coords {
	rng := rand.New(rand.NewSource(seed))
	pos := geom.MakeCoords(d, n)
	for i := 0; i < n; i++ {
		var v geom.Vec
		for k := 0; k < d; k++ {
			v[k] = rng.Float64() * box.Len[k]
		}
		pos.Append(v, d)
	}
	return pos
}

// TestLinksMatchBruteForce is the central correctness property: for
// random configurations in any dimension, with either boundary
// condition and several cutoffs, the cell-based link list contains
// exactly the pairs closer than rc, each exactly once.
func TestLinksMatchBruteForce(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		for _, bc := range []geom.Boundary{geom.Periodic, geom.Reflecting} {
			for _, rc := range []float64{0.11, 0.26, 0.55} {
				box := geom.NewBox(d, 1.0, bc)
				pos := randomPositions(120, d, box, int64(d*100)+int64(rc*1000))
				g := NewGrid(d, geom.Vec{}, box.Len, rc, bc == geom.Periodic)
				var tc trace.Counters
				g.Bin(&pos, pos.Len(), &tc)
				list := g.BuildLinks(&pos, pos.Len(), pos.Len(), rc*rc, box, &tc)
				got := linkSet(list)
				want := bruteForcePairs(&pos, pos.Len(), rc*rc, box)
				if len(got) != len(want) {
					t.Errorf("D=%d %v rc=%g: %d links, want %d", d, bc, rc, len(got), len(want))
					continue
				}
				for k := range want {
					if !got[k] {
						t.Errorf("D=%d %v rc=%g: missing pair %s", d, bc, rc, k)
					}
				}
			}
		}
	}
}

// TestLinksQuickProperty re-runs the brute-force equivalence across
// many random seeds and particle counts.
func TestLinksQuickProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		d := 2 + int(seed%2)
		n := 20 + int(seed*13)%150
		rc := 0.08 + float64(seed%7)*0.05
		box := geom.NewBox(d, 1.0, geom.Periodic)
		pos := randomPositions(n, d, box, seed)
		g := NewGrid(d, geom.Vec{}, box.Len, rc, true)
		g.Bin(&pos, n, nil)
		list := g.BuildLinks(&pos, n, n, rc*rc, box, nil)
		got := linkSet(list)
		want := bruteForcePairs(&pos, n, rc*rc, box)
		if len(got) != len(want) {
			t.Fatalf("seed %d (d=%d n=%d rc=%g): %d links, want %d", seed, d, n, rc, len(got), len(want))
		}
	}
}

func TestDegenerateGridFallback(t *testing.T) {
	// Periodic box so small that fewer than 3 cells fit per dimension:
	// must fall back to the always-correct all-pairs path.
	box := geom.NewBox(2, 1.0, geom.Periodic)
	g := NewGrid(2, geom.Vec{}, box.Len, 0.4, true)
	if !g.Degenerate() {
		t.Fatal("expected degenerate grid for 2.5 cells per edge")
	}
	pos := randomPositions(60, 2, box, 3)
	g.Bin(&pos, pos.Len(), nil)
	list := g.BuildLinks(&pos, pos.Len(), pos.Len(), 0.16, box, nil)
	want := bruteForcePairs(&pos, pos.Len(), 0.16, box)
	if len(linkSet(list)) != len(want) {
		t.Errorf("degenerate path: %d links, want %d", len(list.Links), len(want))
	}
}

func TestCellOrderIsPermutation(t *testing.T) {
	box := geom.NewBox(3, 1.0, geom.Periodic)
	pos := randomPositions(500, 3, box, 9)
	g := NewGrid(3, geom.Vec{}, box.Len, 0.1, true)
	g.Bin(&pos, pos.Len(), nil)
	order := g.Order()
	if len(order) != pos.Len() {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, pos.Len())
	for _, i := range order {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
}

func TestCellOrderGroupsByCell(t *testing.T) {
	box := geom.NewBox(2, 1.0, geom.Periodic)
	pos := randomPositions(300, 2, box, 5)
	g := NewGrid(2, geom.Vec{}, box.Len, 0.13, true)
	g.Bin(&pos, pos.Len(), nil)
	// Walking Order must visit cells in nondecreasing cell index.
	last := int32(-1)
	for _, i := range g.Order() {
		c := g.cellIndexAt(&pos, int(i))
		if c < last {
			t.Fatalf("order not grouped: cell %d after %d", c, last)
		}
		last = c
	}
}

func TestCellParticlesSortedAscending(t *testing.T) {
	box := geom.NewBox(2, 1.0, geom.Periodic)
	pos := randomPositions(200, 2, box, 6)
	g := NewGrid(2, geom.Vec{}, box.Len, 0.2, true)
	g.Bin(&pos, pos.Len(), nil)
	for c := int32(0); c < int32(g.NumCells()); c++ {
		ps := g.CellParticles(c)
		if !sort.SliceIsSorted(ps, func(a, b int) bool { return ps[a] < ps[b] }) {
			t.Fatalf("cell %d particles not ascending: %v", c, ps)
		}
	}
}

func TestHaloLinkSplit(t *testing.T) {
	// Three particles: two core, one "halo" (index >= nCore). The
	// core-core pair must precede the core-halo pair, and halo-halo
	// pairs must be dropped.
	pos := geom.CoordsFromVecs([]geom.Vec{{0.10, 0.10}, {0.12, 0.10}, {0.14, 0.10}, {0.16, 0.10}}, 2)
	box := geom.NewBox(2, 1.0, geom.Reflecting)
	g := NewGrid(2, geom.Vec{}, box.Len, 0.05, false)
	g.Bin(&pos, 4, nil)
	nCore := 2
	list := g.BuildLinks(&pos, 4, nCore, 0.0009, box, nil) // rc = 0.03
	for _, l := range list.CoreLinks() {
		if int(l.I) >= nCore || int(l.J) >= nCore {
			t.Errorf("core link touches halo: %+v", l)
		}
	}
	for _, l := range list.HaloLinks() {
		if int(l.I) >= nCore {
			t.Errorf("halo link not core-first: %+v", l)
		}
		if int(l.J) < nCore {
			t.Errorf("halo link with both core: %+v", l)
		}
	}
	// 0-1 core; 1-2 core-halo; 2-3 halo-halo (dropped); 0-2, 1-3, 0-3 out of range.
	if len(list.CoreLinks()) != 1 || len(list.HaloLinks()) != 1 {
		t.Errorf("core=%d halo=%d links, want 1 and 1", len(list.CoreLinks()), len(list.HaloLinks()))
	}
}

func TestHalfStencilCount(t *testing.T) {
	// Half of 3^D - 1 neighbours.
	for d, want := range map[int]int{1: 1, 2: 4, 3: 13} {
		if got := len(halfStencil(d)); got != want {
			t.Errorf("halfStencil(%d) = %d offsets, want %d", d, got, want)
		}
	}
}

func TestGridCellCountAndSize(t *testing.T) {
	g := NewGrid(2, geom.Vec{}, geom.Vec{1, 1, 0}, 0.3, false)
	// floor(1/0.3) = 3 cells per edge, each 1/3 wide (>= 0.3).
	if g.N[0] != 3 || g.N[1] != 3 || g.NumCells() != 9 {
		t.Errorf("grid dims %v, cells %d", g.N, g.NumCells())
	}
	if g.CellLen[0] < 0.3 {
		t.Errorf("cell edge %g below minimum", g.CellLen[0])
	}
}

func TestBinClampsOutOfRange(t *testing.T) {
	// Positions slightly outside the region (rounding during halo
	// exchange) must clamp to edge cells, not panic.
	g := NewGrid(1, geom.Vec{}, geom.Vec{1, 0, 0}, 0.1, false)
	pos := geom.CoordsFromVecs([]geom.Vec{{-0.001}, {1.0001}, {0.5}}, 1)
	g.Bin(&pos, 3, nil)
	list := g.BuildLinks(&pos, 3, 3, 0.01, geom.NewBox(1, 1, geom.Reflecting), nil)
	_ = list // must simply not panic
}

func BenchmarkBinAndBuild2D(b *testing.B) {
	box := geom.NewBox(2, 1.0, geom.Periodic)
	pos := randomPositions(10000, 2, box, 1)
	g := NewGrid(2, geom.Vec{}, box.Len, 0.02, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Bin(&pos, pos.Len(), nil)
		g.BuildLinks(&pos, pos.Len(), pos.Len(), 0.0004, box, nil)
	}
}
