package cell

import (
	"testing"

	"hybriddem/internal/geom"
)

// buildSplitList constructs a tiny deterministic system with one
// core-core link and one core-halo link.
func buildSplitList(buf *ListBuffer) (*Grid, *List) {
	box := geom.NewBox(2, 1.0, geom.Reflecting)
	pos := geom.CoordsFromVecs([]geom.Vec{
		{0.10, 0.10}, // core
		{0.15, 0.10}, // core: links to 0
		{0.60, 0.60}, // core
		{0.65, 0.60}, // halo: links to 2
	}, 2)
	const nCore = 3
	rc := 0.12
	g := NewGrid(2, geom.Vec{}, box.Len, rc, false)
	g.Bin(&pos, pos.Len(), nil)
	return g, g.BuildLinksInto(buf, &pos, pos.Len(), nCore, rc*rc, box, nil)
}

// TestCoreLinksAppendCannotClobberHalo is the regression test for the
// core/halo aliasing bug: CoreLinks used to return Links[:NCore] with
// the full backing capacity, so a caller appending through the
// returned slice silently overwrote the first halo link. The capacity
// must be clipped at NCore.
func TestCoreLinksAppendCannotClobberHalo(t *testing.T) {
	var buf ListBuffer
	_, list := buildSplitList(&buf)
	if list.NCore != 1 || len(list.Links) != 2 {
		t.Fatalf("unexpected list shape: NCore=%d len=%d", list.NCore, len(list.Links))
	}
	halo0 := list.HaloLinks()[0]

	cl := list.CoreLinks()
	cl = append(cl, Link{I: 99, J: 99})
	_ = cl

	if got := list.HaloLinks()[0]; got != halo0 {
		t.Fatalf("append through CoreLinks clobbered halo link: %v -> %v", halo0, got)
	}
}

// TestListBackingDistinctFromStaging pins the fix for the second half
// of the same bug: the returned list used to be built with
// append(core, halo...), aliasing the core staging area, so the next
// rebuild's staging writes corrupted a list a caller still held. The
// list must own backing distinct from both staging buffers.
func TestListBackingDistinctFromStaging(t *testing.T) {
	var buf ListBuffer
	_, list := buildSplitList(&buf)
	if list.NCore > 0 && len(buf.core) > 0 && &list.Links[0] == &buf.core[0] {
		t.Fatal("list backing aliases the core staging buffer")
	}
	if len(list.Links) > list.NCore && len(buf.halo) > 0 && &list.Links[list.NCore] == &buf.halo[0] {
		t.Fatal("list backing aliases the halo staging buffer")
	}
}
