// Package cell implements the standard cell-based neighbour search of
// the paper's Section 4.1: the region is divided into cubical cells
// slightly larger than the cutoff rc, particles are binned into cells,
// and pairwise links are created by checking only the same cell and the
// half stencil of neighbouring cells, which visits every unordered pair
// exactly once.
//
// The binning pass also produces the cell-ordered particle index list
// that Section 6.3 re-uses for cache reordering: "we can re-use this
// same list to order the core particles so that they appear in
// cell-order".
package cell

import (
	"fmt"
	"math"

	"hybriddem/internal/geom"
	"hybriddem/internal/trace"
)

// Grid is a cell decomposition of a rectangular region. The region may
// be the whole (possibly periodic) simulation box, or one block's
// extended core+halo region in a decomposed run.
type Grid struct {
	D       int
	Origin  geom.Vec // lower corner of the gridded region
	Span    geom.Vec // edge lengths of the gridded region
	CellLen geom.Vec // actual cell edge, >= the requested minimum
	N       [geom.MaxD]int
	Wrap    bool // periodic wraparound when searching neighbours

	// degenerate is set when a periodic region is too small for the
	// stencil to be unambiguous (fewer than 3 cells in some wrapped
	// dimension); link building then falls back to all-pairs with
	// minimum image, which is always correct.
	degenerate bool

	// Binning results, valid after Bin.
	cellOf []int32 // cell index per particle
	count  []int32 // particles per cell
	start  []int32 // prefix offsets into order
	order  []int32 // particle indices sorted by cell

	// Reused scratch: fill cursors for the serial counting sort, and
	// the per-thread count/cursor arrays of the parallel binning. Kept
	// on the grid so repeated rebuilds are allocation-free.
	fill       []int32
	perThread  [][]int32
	curThread  [][]int32
	coreBufs   []ListBuffer // per-thread staging for BuildLinksParallel
	checkBuf   []int64      // per-thread pair-check counts
	mergedList List         // final list storage for BuildLinksParallel
	stencil    [][geom.MaxD]int
}

// halfStencilCached returns the half stencil for the grid's
// dimensionality, computing it once.
func (g *Grid) halfStencilCached() [][geom.MaxD]int {
	if g.stencil == nil {
		g.stencil = halfStencil(g.D)
	}
	return g.stencil
}

// NewGrid builds a grid over the region [origin, origin+span) whose
// cells are at least minCell on every edge. With wrap set, neighbour
// search wraps around the region (whole-domain periodic mode).
func NewGrid(d int, origin, span geom.Vec, minCell float64, wrap bool) *Grid {
	if minCell <= 0 {
		panic(fmt.Sprintf("cell: non-positive cell size %g", minCell))
	}
	g := &Grid{D: d, Origin: origin, Span: span, Wrap: wrap}
	for i := 0; i < d; i++ {
		n := int(math.Floor(span[i] / minCell))
		if n < 1 {
			n = 1
		}
		g.N[i] = n
		g.CellLen[i] = span[i] / float64(n)
		if wrap && n < 3 {
			g.degenerate = true
		}
	}
	for i := d; i < geom.MaxD; i++ {
		g.N[i] = 1
	}
	if g.degenerate {
		for i := 0; i < d; i++ {
			g.N[i] = 1
			g.CellLen[i] = span[i]
		}
	}
	return g
}

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int {
	n := 1
	for i := 0; i < g.D; i++ {
		n *= g.N[i]
	}
	return n
}

// Degenerate reports whether the grid fell back to all-pairs search.
func (g *Grid) Degenerate() bool { return g.degenerate }

// cellIndex maps a position to its flattened cell index, clamping
// coordinates that sit exactly on (or, through rounding, just past) the
// upper faces.
func (g *Grid) cellIndex(p geom.Vec) int32 {
	idx := 0
	for i := 0; i < g.D; i++ {
		c := int((p[i] - g.Origin[i]) / g.CellLen[i])
		if c < 0 {
			c = 0
		}
		if c >= g.N[i] {
			c = g.N[i] - 1
		}
		idx = idx*g.N[i] + c
	}
	return int32(idx)
}

// cellIndexAt is cellIndex reading particle i straight out of
// component-major storage; same clamping, same arithmetic.
func (g *Grid) cellIndexAt(pos *geom.Coords, i int) int32 {
	idx := 0
	for k := 0; k < g.D; k++ {
		c := int((pos[k][i] - g.Origin[k]) / g.CellLen[k])
		if c < 0 {
			c = 0
		}
		if c >= g.N[k] {
			c = g.N[k] - 1
		}
		idx = idx*g.N[k] + c
	}
	return int32(idx)
}

// coords expands a flattened cell index back to per-dimension indices.
func (g *Grid) coords(idx int32) [geom.MaxD]int {
	var c [geom.MaxD]int
	v := int(idx)
	for i := g.D - 1; i >= 0; i-- {
		c[i] = v % g.N[i]
		v /= g.N[i]
	}
	return c
}

// flatten is the inverse of coords.
func (g *Grid) flatten(c [geom.MaxD]int) int32 {
	idx := 0
	for i := 0; i < g.D; i++ {
		idx = idx*g.N[i] + c[i]
	}
	return int32(idx)
}

// Bin assigns the first n entries of pos to cells and builds the
// cell-ordered index list. It must be called before Links. Counters may
// be nil.
func (g *Grid) Bin(pos *geom.Coords, n int, tc *trace.Counters) {
	nc := g.NumCells()
	if cap(g.cellOf) < n {
		g.cellOf = make([]int32, n)
	}
	g.cellOf = g.cellOf[:n]
	if cap(g.count) < nc {
		g.count = make([]int32, nc)
		g.start = make([]int32, nc+1)
	}
	g.count = g.count[:nc]
	g.start = g.start[:nc+1]
	for i := range g.count {
		g.count[i] = 0
	}
	for i := 0; i < n; i++ {
		c := g.cellIndexAt(pos, i)
		g.cellOf[i] = c
		g.count[c]++
	}
	g.start[0] = 0
	for c := 0; c < nc; c++ {
		g.start[c+1] = g.start[c] + g.count[c]
	}
	if cap(g.order) < n {
		g.order = make([]int32, n)
	}
	g.order = g.order[:n]
	// Counting sort; fill slots per cell in ascending particle index so
	// the result is deterministic. The cursor array is grid-owned
	// scratch, reused across rebuilds.
	if cap(g.fill) < nc {
		g.fill = make([]int32, nc)
	}
	fill := g.fill[:nc]
	copy(fill, g.start[:nc])
	for i := 0; i < n; i++ {
		c := g.cellOf[i]
		g.order[fill[c]] = int32(i)
		fill[c]++
	}
	if tc != nil {
		tc.CellBinOps += int64(n)
	}
}

// Order returns the cell-ordered particle index list from the last Bin.
// It is exactly the permutation that the cache optimisation applies to
// the particle store. The caller must not modify it.
func (g *Grid) Order() []int32 { return g.order }

// CellParticles returns the indices of the particles in cell c, in
// ascending particle-index order.
func (g *Grid) CellParticles(c int32) []int32 {
	return g.order[g.start[c]:g.start[c+1]]
}

// halfStencil enumerates the neighbour offsets o in {-1,0,1}^D whose
// first nonzero component is positive: each unordered pair of adjacent
// cells is then visited exactly once.
func halfStencil(d int) [][geom.MaxD]int {
	var out [][geom.MaxD]int
	var walk func(i int, cur [geom.MaxD]int, nonzero bool, firstPos bool)
	walk = func(i int, cur [geom.MaxD]int, nonzero, firstPos bool) {
		if i == d {
			if nonzero && firstPos {
				out = append(out, cur)
			}
			return
		}
		for _, v := range [3]int{-1, 0, 1} {
			next := cur
			next[i] = v
			nz := nonzero || v != 0
			fp := firstPos
			if !nonzero && v != 0 {
				fp = v > 0
			}
			walk(i+1, next, nz, fp)
		}
	}
	walk(0, [geom.MaxD]int{}, false, false)
	return out
}
