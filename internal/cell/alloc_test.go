package cell

import (
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/raceflag"
)

// TestWarmRebuildZeroAlloc gates the tentpole property at the cell
// layer: once the grid scratch and the caller's ListBuffer have grown
// to their steady-state sizes, a full bin + link-list rebuild performs
// no allocation at all.
func TestWarmRebuildZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	box := geom.NewBox(2, 1.0, geom.Periodic)
	pos := randomPositions(300, 2, box, 42)
	rc := 0.1
	g := NewGrid(2, geom.Vec{}, box.Len, rc, true)
	var buf ListBuffer
	rebuild := func() {
		g.Bin(&pos, pos.Len(), nil)
		g.BuildLinksInto(&buf, &pos, pos.Len(), pos.Len(), rc*rc, box, nil)
	}
	for i := 0; i < 3; i++ {
		rebuild()
	}
	if avg := testing.AllocsPerRun(10, rebuild); avg != 0 {
		t.Errorf("warm rebuild allocates %g times per run, want 0", avg)
	}
}
