package cell

import (
	"reflect"
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/trace"
)

// fakePool runs the Pool contract on plain goroutines.
type fakePool struct{ t int }

func (p fakePool) Threads() int { return p.t }
func (p fakePool) ParallelFor(n int, body func(thread, lo, hi int)) {
	done := make(chan struct{}, p.t)
	for t := 0; t < p.t; t++ {
		go func(t int) {
			lo := t * n / p.t
			hi := (t + 1) * n / p.t
			body(t, lo, hi)
			done <- struct{}{}
		}(t)
	}
	for t := 0; t < p.t; t++ {
		<-done
	}
}

// TestBinParallelMatchesSerial: the parallel binning must reproduce
// the serial counting sort exactly — same cell assignment and the
// same cell-ordered index list.
func TestBinParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 37, 500, 2000} {
		for _, T := range []int{1, 2, 4, 7} {
			box := geom.NewBox(2, 1.0, geom.Periodic)
			pos := randomPositions(n, 2, box, int64(n+T))
			ser := NewGrid(2, geom.Vec{}, box.Len, 0.07, true)
			ser.Bin(&pos, n, nil)
			par := NewGrid(2, geom.Vec{}, box.Len, 0.07, true)
			var tc trace.Counters
			par.BinParallel(&pos, n, fakePool{T}, &tc)
			if !reflect.DeepEqual(ser.Order(), par.Order()) {
				t.Fatalf("n=%d T=%d: parallel binning diverges", n, T)
			}
			if n > 0 && tc.CellBinOps != int64(n) {
				t.Errorf("n=%d T=%d: bin counter %d", n, T, tc.CellBinOps)
			}
		}
	}
}

// TestBuildLinksParallelMatchesSerial: identical link lists including
// order and the core/halo split.
func TestBuildLinksParallelMatchesSerial(t *testing.T) {
	for _, d := range []int{2, 3} {
		for _, T := range []int{1, 3, 6} {
			box := geom.NewBox(d, 1.0, geom.Periodic)
			pos := randomPositions(400, d, box, int64(d*10+T))
			rc := 0.12
			nCore := 350 // treat the tail as halo copies
			g := NewGrid(d, geom.Vec{}, box.Len, rc, true)
			g.Bin(&pos, pos.Len(), nil)
			ser := g.BuildLinks(&pos, pos.Len(), nCore, rc*rc, box, nil)
			par := g.BuildLinksParallel(&pos, pos.Len(), nCore, rc*rc, box, fakePool{T}, nil)
			if ser.NCore != par.NCore {
				t.Fatalf("d=%d T=%d: core split %d vs %d", d, T, par.NCore, ser.NCore)
			}
			if !reflect.DeepEqual(ser.Links, par.Links) {
				t.Fatalf("d=%d T=%d: link lists differ (%d vs %d links)", d, T, len(par.Links), len(ser.Links))
			}
		}
	}
}

// TestBuildLinksParallelDegenerateFallsBack: tiny periodic grids use
// the always-correct serial all-pairs path.
func TestBuildLinksParallelDegenerateFallsBack(t *testing.T) {
	box := geom.NewBox(2, 1.0, geom.Periodic)
	pos := randomPositions(50, 2, box, 5)
	g := NewGrid(2, geom.Vec{}, box.Len, 0.4, true)
	if !g.Degenerate() {
		t.Fatal("expected degenerate grid")
	}
	g.Bin(&pos, pos.Len(), nil)
	ser := g.BuildLinks(&pos, pos.Len(), pos.Len(), 0.16, box, nil)
	par := g.BuildLinksParallel(&pos, pos.Len(), pos.Len(), 0.16, box, fakePool{4}, nil)
	if !reflect.DeepEqual(ser.Links, par.Links) {
		t.Error("degenerate fallback diverges")
	}
}
