package cell

import "hybriddem/internal/geom"

// BruteLinks is the O(n^2) reference implementation of BuildLinks:
// every unordered pair of the first n particles closer than sqrt(rc2)
// under box, skipping halo-halo pairs and orienting halo links
// core-first, exactly as the cell-based builder promises. It exists as
// a correctness oracle for the conformance harness (internal/verify)
// and this package's own tests; production code must use BuildLinks.
func BruteLinks(pos []geom.Vec, n, nCore int, rc2 float64, box geom.Box) *List {
	var core, halo []Link
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if i >= int32(nCore) && j >= int32(nCore) {
				continue // halo-halo: owned by a neighbouring block
			}
			if box.Dist2(pos[i], pos[j]) >= rc2 {
				continue
			}
			a, b := i, j
			if a >= int32(nCore) {
				a, b = b, a
			}
			if b >= int32(nCore) {
				halo = append(halo, Link{a, b})
			} else {
				core = append(core, Link{a, b})
			}
		}
	}
	return &List{Links: append(core, halo...), NCore: len(core)}
}

// PairSet normalises a link list into the set of unordered pairs it
// covers, reporting a duplicate pair if one exists. Verification
// helpers compare builders through it because the cell-based and
// brute-force builders enumerate pairs in different orders.
func PairSet(links []Link) (pairs map[[2]int32]bool, dup *Link) {
	pairs = make(map[[2]int32]bool, len(links))
	for _, l := range links {
		a, b := l.I, l.J
		if a > b {
			a, b = b, a
		}
		key := [2]int32{a, b}
		if pairs[key] {
			d := l
			return pairs, &d
		}
		pairs[key] = true
	}
	return pairs, nil
}
