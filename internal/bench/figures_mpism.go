package bench

import (
	"fmt"

	"hybriddem/internal/core"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// ExtraMpism (X10) places the MPI-3-style shared-memory mode on the
// spectrum between pure message passing and threads: on each platform
// the same decomposition runs as plain MPI, as mpism (same ranks, but
// every same-node halo leg is a fenced load from the owner's shared
// window) and — where the platform has multi-CPU nodes — as the hybrid
// threaded code. Every cell runs the synchronous exchange: under the
// split-phase protocol the fences between force stages absorb load
// imbalance into the communication bucket, while with Overlap off the
// ranks enter the exchange clock-equalised (the previous step's
// collective) and the comm column isolates the pure exchange cost the
// experiment is about. The message columns show where the win comes
// from: windowed legs drop the send-side copy and the per-message
// latency, streaming the packed leg once at load bandwidth.
//
// On the T3E every node has one CPU, so no window forms and mpism must
// reproduce the MPI cells exactly — the mode degrades cleanly instead
// of penalising a machine without shared memory.
func ExtraMpism(o Options) *Report {
	o = o.withDefaults()
	d := 3
	rep := &Report{
		ID:     "X10",
		Title:  "message passing vs shared windows vs threads (synchronous exchange, D=3)",
		Header: []string{"shape", "t/iter", "comm", "msgMB", "winMB", "fences"},
	}
	run := func(key string, pf *machine.Platform, shape func(*core.Config)) {
		cfg := o.config(d, 1.5, pf, true)
		cfg.Overlap = false
		shape(&cfg)
		res := mustRun(cfg, o.iters(d))
		rep.Rows = append(rep.Rows, []string{key,
			f3(o.scaleTo1M(res.PerIter)), f3(o.scaleTo1M(res.CommTime)),
			f2(float64(res.TC.BytesSent) / 1e6), f2(float64(res.TC.WinLoadBytes) / 1e6),
			fmt.Sprintf("%d", res.TC.WinFences)})
	}
	cpq := machine.CompaqES40()
	run("CPQ/mpi/P=16", cpq, func(c *core.Config) { c.Mode = core.MPI; c.P = 16 })
	run("CPQ/mpism/P=16", cpq, func(c *core.Config) { c.Mode = core.MPIsm; c.P = 16 })
	run("CPQ/hybrid/P=4xT=4", cpq, func(c *core.Config) {
		c.Mode = core.Hybrid
		c.P, c.T = 4, 4
		c.Method = shm.SelectedAtomic
	})
	sun := machine.SunHPC()
	run("Sun/mpi/P=8", sun, func(c *core.Config) { c.Mode = core.MPI; c.P = 8 })
	run("Sun/mpism/P=8", sun, func(c *core.Config) { c.Mode = core.MPIsm; c.P = 8 })
	run("Sun/omp/T=8", sun, func(c *core.Config) {
		c.Mode = core.OpenMP
		c.T = 8
		c.Method = shm.SelectedAtomic
	})
	t3e := machine.T3E()
	run("T3E/mpi/P=16", t3e, func(c *core.Config) { c.Mode = core.MPI; c.P = 16 })
	run("T3E/mpism/P=16", t3e, func(c *core.Config) { c.Mode = core.MPIsm; c.P = 16 })
	rep.Notes = append(rep.Notes,
		"mpism replaces every same-node halo message with a fenced load from the owner's shared window; inter-node legs still travel as messages, so on the multi-node CPQ both msgMB and winMB are nonzero",
		"a windowed leg charges one streaming pass over the packed data at the node's load bandwidth — no per-message latency and no send-side copy — plus a per-fence latency for the epoch synchronisation",
		"T3E nodes hold a single CPU: no window forms, mpism runs the identical message path and its cells must equal the MPI rows exactly")
	return rep
}
