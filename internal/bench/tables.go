package bench

import (
	"fmt"

	"hybriddem/internal/machine"
)

// baseTimes generates Table 1 or Table 2: the serial time per
// iteration (scaled to the paper's 10^6 particles) for every platform,
// dimensionality and cutoff, with or without particle reordering. On
// the T3E the paper could not run 10^6 particles on one node and
// reports P0 x t(P0) with P0 = 8; the modelled serial time is directly
// the effective single-processor number.
func baseTimes(o Options, reorder bool, id, title string) *Report {
	o = o.withDefaults()
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"Platform", "D", "rc/rmax", "P0*t(P0) [s]", "links", "meanDist"},
	}
	for _, pf := range machine.Platforms() {
		for _, d := range []int{2, 3} {
			for _, rc := range []float64{1.5, 2.0} {
				cfg := o.config(d, rc, pf, reorder)
				res := mustRun(cfg, o.iters(d))
				rep.Rows = append(rep.Rows, []string{
					pf.Name,
					fmt.Sprintf("%d", d),
					f2(rc),
					f2(o.scaleTo1M(res.PerIter)),
					fmt.Sprintf("%d", res.NLinks),
					fmt.Sprintf("%.0f", res.MeanLinkDist),
				})
			}
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("serial runs of N=%d particles, modelled at N=%d; times scaled linearly to the modelled size", o.N, o.ModelN),
		"paper's Table 1/2 order: Sun, T3E, CPQ x D in {2,3} x rc in {1.5, 2.0}")
	return rep
}

// Table1 regenerates Table 1: base times without particle reordering.
// Paper values (seconds): Sun 3.28/4.13/5.68/9.05, T3E
// 3.84/4.97/7.60/12.73, CPQ 1.80/2.23/3.20/4.91.
func Table1(o Options) *Report {
	return baseTimes(o, false, "T1", "time per iteration (s), no particle reordering")
}

// Table2 regenerates Table 2: base times with particle reordering.
// Paper values (seconds): Sun 2.45/3.31/4.58/7.56, T3E
// 2.93/3.90/6.02/10.60, CPQ 1.19/1.57/2.19/3.74.
func Table2(o Options) *Report {
	return baseTimes(o, true, "T2", "time per iteration (s) with particle reordering")
}
