package bench

import (
	"fmt"
	"math"
	"time"

	"hybriddem/internal/core"
	"hybriddem/internal/machine"
	"hybriddem/internal/mp"
)

// ExtraChaos measures what fault tolerance costs. The central
// trade-off of checkpoint-rollback recovery is snapshot cadence
// against mean time to failure: sparse snapshots are cheap until a
// fault forces a deep replay, frequent ones bound the replay but pay
// on every rebuild. The grid reports the replay depth — measured
// iterations re-executed after a rank kill — for snapshot cadences of
// every 1st..8th list rebuild against kills at 25%, 50% and 75% of
// the run (the kill step is the experiment's proxy for MTTF: the
// later the failure, the more work is at risk).
//
// Every cell is one supervised run that loses a rank, degrades to
// P-1, rolls back and completes; the final-state row proves each
// recovery is bit-exact against the unfaulted baseline, which is the
// property that makes the replay-depth accounting trustworthy. The
// notes report the two steady-state overheads of the machinery: the
// wall-clock cost of sequence/checksum integrity on every message
// (modelled time is identical by construction — the checks are host
// bookkeeping, not physics), and the duplicate-rejection counters
// under message duplication.
func ExtraChaos(o Options) *Report {
	o = o.withDefaults()
	pf := machine.CompaqES40()
	const d = 2
	const p = 4
	iters := 2 * o.iters(d)

	build := func() core.Config {
		cfg := o.config(d, 1.5, pf, true)
		cfg.Mode = core.MPI
		cfg.P = p
		cfg.InitVel = 150 // hot gas: rebuilds recur every iteration or two, giving the cadence sweep its range
		cfg.CollectState = true
		return cfg
	}

	clean := mustRun(build(), iters)

	// stateDrift is the max |Δ| of any final position or velocity
	// component against the unfaulted baseline; recovery is bit-exact,
	// so anything but zero is a gate failure.
	stateDrift := func(res *core.Result) float64 {
		m := 0.0
		for i := range clean.Pos {
			for c := 0; c < d; c++ {
				if v := math.Abs(res.Pos[i][c] - clean.Pos[i][c]); v > m {
					m = v
				}
				if v := math.Abs(res.Vel[i][c] - clean.Vel[i][c]); v > m {
					m = v
				}
			}
		}
		return m
	}

	cadences := []int{1, 2, 4, 8}
	killAt := []int{iters / 4, iters / 2, 3 * iters / 4}

	rep := &Report{
		ID:    "X9",
		Title: fmt.Sprintf("fault tolerance: replay depth vs snapshot cadence and kill step, MPI P=%d, D=2, %d iters", p, iters),
		Header: []string{"series",
			fmt.Sprintf("kill@%d", killAt[0]),
			fmt.Sprintf("kill@%d", killAt[1]),
			fmt.Sprintf("kill@%d", killAt[2])},
	}

	maxDrift := 0.0
	recoverRun := func(every, kill int) int {
		cfg := build()
		plan := mp.NewFaultPlan(o.Seed)
		plan.ArmKill(1, cfg.Warmup+kill)
		cfg.Faults = plan
		replay := iters // from-scratch unless a snapshot shortened it
		res, err := core.Supervise(cfg, iters, core.FTConfig{
			SnapshotEvery: every,
			MaxRetries:    3,
			OnRetry:       func(attempt, restart int) { replay = iters - restart },
		})
		if err != nil {
			panic(fmt.Sprintf("bench: X9 recovery failed (every=%d kill=%d): %v", every, kill, err))
		}
		if v := stateDrift(res); v > maxDrift {
			maxDrift = v
		}
		return replay
	}

	for _, every := range cadences {
		row := []string{fmt.Sprintf("replay depth, snapshot every %d rebuilds", every)}
		for _, kill := range killAt {
			row = append(row, fmt.Sprintf("%d", recoverRun(every, kill)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	drift := "exact"
	if maxDrift > 0 {
		drift = fmt.Sprintf("%.3g", maxDrift)
	}
	rep.Rows = append(rep.Rows, []string{"final-state drift vs unfaulted run", drift, drift, drift})

	// Integrity overhead: identical physics with and without the
	// per-message sequence/checksum verification, compared on wall
	// clock (virtual time cannot see host-side bookkeeping).
	wall := func(noIntegrity bool) time.Duration {
		cfg := build()
		cfg.NoIntegrity = noIntegrity
		return mustRun(cfg, iters).Wall
	}
	wOn, wOff := wall(false), wall(true)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"integrity checks: wall %.2f ms with, %.2f ms without (%+.1f%%); modelled time identical by construction",
		float64(wOn.Microseconds())/1e3, float64(wOff.Microseconds())/1e3,
		100*(float64(wOn)-float64(wOff))/float64(wOff)))

	// Duplicate suppression: flood the wire with copies; the sequence
	// check must discard them without touching the trajectory.
	dupCfg := build()
	dupPlan := mp.NewFaultPlan(o.Seed)
	dupPlan.DuplicateProb = 0.1
	dupCfg.Faults = dupPlan
	dupRes := mustRun(dupCfg, iters)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"duplicate injection: %d applied, %d rejected at receives, state drift %g",
		dupPlan.Stats().Duplicated, dupRes.TC.MsgsRejected, stateDrift(dupRes)))
	return rep
}
