package bench

import (
	"fmt"

	"hybriddem/internal/core"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// hybridFigure generates Figure 7 (D=2) or Figure 8 (D=3): on the
// Compaq cluster, pure MPI with P=16 (four processes per box) against
// the hybrid scheme with P=4 (one process per box) and T=4 (one
// thread per CPU), swept over granularity B/P and normalised to the
// MPI time at B/P=1.
func hybridFigure(o Options, d int, id string, fused bool) *Report {
	o = o.lockSensitive().withDefaults()
	pf := machine.CompaqES40()
	sweep := []int{1, 2, 4, 8, 16, 32}
	title := fmt.Sprintf("Compaq cluster, D=%d: efficiency vs granularity B/P (MPI P=16 vs hybrid P=4 T=4)", d)
	if fused {
		title = fmt.Sprintf("Compaq cluster, D=%d: hybrid with fused single-region force loop", d)
	}
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"rc/series", "B/P=1", "2", "4", "8", "16", "32"},
	}
	for _, rc := range []float64{1.5, 2.0} {
		var tRef float64
		mpiRow := []string{fmt.Sprintf("rc=%.1f/MPI-P16", rc)}
		for _, bpp := range sweep {
			cfg := o.config(d, rc, pf, true)
			cfg.Mode = core.MPI
			cfg.P = 16
			cfg.BlocksPerProc = bpp
			t := o.scaleTo1M(mustRun(cfg, o.iters(d)).PerIter)
			if bpp == 1 {
				tRef = t
			}
			mpiRow = append(mpiRow, f3(tRef/t))
		}
		rep.Rows = append(rep.Rows, mpiRow)

		hybRow := []string{fmt.Sprintf("rc=%.1f/hybrid-P4xT4", rc)}
		if fused {
			hybRow[0] = fmt.Sprintf("rc=%.1f/hybrid-fused", rc)
		}
		for _, bpp := range sweep {
			cfg := o.config(d, rc, pf, true)
			cfg.Mode = core.Hybrid
			cfg.P = 4
			cfg.T = 4
			cfg.BlocksPerProc = bpp
			cfg.Method = shm.SelectedAtomic
			cfg.Fused = fused
			t := o.scaleTo1M(mustRun(cfg, o.iters(d)).PerIter)
			hybRow = append(hybRow, f3(tRef/t))
		}
		rep.Rows = append(rep.Rows, hybRow)
	}
	rep.Notes = append(rep.Notes,
		"values are efficiency t(MPI, B/P=1)/t(model, B/P); the same granularity means the same load-balancing ability",
		"paper: the pure MPI code is always more efficient for a given granularity; hybrid D=3 starts close at B/P=1 (especially rc=2.0) then degrades faster")
	return rep
}

// Figure7 regenerates Figure 7: D=2, where the hybrid code is
// significantly slower than MPI everywhere.
func Figure7(o Options) *Report { return hybridFigure(o, 2, "F7", false) }

// Figure8 regenerates Figure 8: D=3, where hybrid is competitive at
// B/P=1 but its efficiency falls faster with granularity because the
// lock fraction grows as blocks shrink.
func Figure8(o Options) *Report { return hybridFigure(o, 3, "F8", false) }
