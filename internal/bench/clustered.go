package bench

import (
	"fmt"

	"hybriddem/internal/core"
	"hybriddem/internal/geom"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// ExtraClusteredWorkload is this module's extension of the paper's
// methodology. The paper benchmarks a *load-balanced* system and
// infers the clustered case from the measured overheads ("only
// requiring knowledge of the granularity of parallelism that would be
// required to achieve load-balance in each particular case"). Here we
// run the clustered system directly — a settled bed filling the
// bottom quarter of the box — and measure the full trade-off:
//
//   - pure MPI at B/P=1 is crippled by idle top-of-box processes;
//   - refining B restores balance until the granularity overheads of
//     Figure 3 take over;
//   - the hybrid scheme balances within each box automatically, so it
//     reaches its best time at coarser granularity — the effect the
//     paper hypothesised — while still paying its lock premium;
//   - the fused hybrid removes most of that premium.
func ExtraClusteredWorkload(o Options) *Report {
	o = o.lockSensitive().withDefaults()
	pf := machine.CompaqES40()
	const d = 2
	sweep := []int{1, 2, 4, 8, 16, 32}
	rep := &Report{
		ID:     "X6",
		Title:  "clustered bed (bottom 25% of the box), Compaq cluster, D=2, rc=1.5",
		Header: []string{"series", "B/P=1", "2", "4", "8", "16", "32", "best"},
	}

	build := func(mode core.Mode, p, t, bpp int, fused bool) core.Config {
		cfg := o.config(d, 1.5, pf, true)
		cfg.BC = geom.Reflecting
		cfg.FillHeight = 0.25
		cfg.Gravity = -20
		cfg.Mode = mode
		cfg.P, cfg.T = p, t
		cfg.BlocksPerProc = bpp
		cfg.Method = shm.SelectedAtomic
		cfg.Fused = fused
		return cfg
	}

	var tRef float64
	type series struct {
		name  string
		mode  core.Mode
		p, t  int
		fused bool
	}
	for _, s := range []series{
		{"MPI-P16", core.MPI, 16, 1, false},
		{"hybrid-P4xT4", core.Hybrid, 4, 4, false},
		{"hybrid-fused", core.Hybrid, 4, 4, true},
	} {
		row := []string{s.name}
		bestBpp, bestT := 0, 0.0
		for _, bpp := range sweep {
			cfg := build(s.mode, s.p, s.t, bpp, s.fused)
			res := mustRun(cfg, o.iters(d))
			t := res.PerIter
			if tRef == 0 {
				tRef = t // MPI at B/P=1: the naive decomposition
			}
			if bestT == 0 || t < bestT {
				bestBpp, bestT = bpp, t
			}
			row = append(row, f2(tRef/t))
		}
		row = append(row, fmt.Sprintf("B/P=%d (%.2fx)", bestBpp, tRef/bestT))
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"values are speedup over the naive MPI decomposition (B/P=1), which leaves the top-of-box processes idle",
		"this experiment extends the paper: it runs the clustered case directly instead of inferring it from load-balanced overheads")
	return rep
}
