package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// tiny returns options small enough for unit tests; structural
// properties of the reports are asserted, not absolute numbers. 40k
// particles is comfortably above the smallest size whose D=3 blocks
// stay wider than the rc=2.0 cutoff at the finest granularity swept.
func tiny() Options {
	return Options{N: 40000, Iters: 2, Warmup: 1, Seed: 1}
}

func cellFloat(t *testing.T, r *Report, row, col string) float64 {
	t.Helper()
	s, ok := r.Cell(row, col)
	if !ok {
		t.Fatalf("%s: missing cell (%q, %q)\nreport:\n%s", r.ID, row, col, r)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%q,%q) = %q not numeric", r.ID, row, col, s)
	}
	return v
}

func TestReportStringAndCell(t *testing.T) {
	r := &Report{
		ID:     "TX",
		Title:  "demo",
		Header: []string{"k", "a", "b"},
		Rows:   [][]string{{"r1", "1.5", "2.5"}},
		Notes:  []string{"a note"},
	}
	s := r.String()
	for _, want := range []string{"TX", "demo", "r1", "2.5", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered report missing %q:\n%s", want, s)
		}
	}
	if v, ok := r.Cell("r1", "b"); !ok || v != "2.5" {
		t.Errorf("Cell = %q, %v", v, ok)
	}
	if _, ok := r.Cell("r1", "nope"); ok {
		t.Error("unknown column found")
	}
	if _, ok := r.Cell("nope", "a"); ok {
		t.Error("unknown row found")
	}
}

func TestByIDAndAll(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	for _, want := range []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "X1", "X2", "X3", "X4"} {
		if !seen[want] {
			t.Errorf("experiment %s not registered", want)
		}
	}
	if _, err := ByID("Z9"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.N != 40000 || o.ModelN != 1_000_000 || o.Seed != 1 || o.Warmup != 1 {
		t.Errorf("defaults: %+v", o)
	}
	if o.iters(2) != 8 || o.iters(3) != 4 {
		t.Error("default iteration counts")
	}
	full := Options{Full: true}.withDefaults()
	if full.N != 1_000_000 || full.iters(2) != 40 || full.iters(3) != 20 {
		t.Errorf("full-scale options: %+v", full)
	}
	ls := Options{}.lockSensitive().withDefaults()
	if ls.N != 200_000 {
		t.Errorf("lock-sensitive default N = %d", ls.N)
	}
	explicit := Options{N: 123}.lockSensitive().withDefaults()
	if explicit.N != 123 {
		t.Error("lockSensitive overrode an explicit N")
	}
}

// TestCalibrationWithinTolerance: the modelled serial base times must
// stay within 25% of all 24 published Table 1/2 cells (they sit
// within ~13% at the default scale; the margin absorbs the smaller
// test size).
func TestCalibrationWithinTolerance(t *testing.T) {
	rep := Calibration(tiny())
	if len(rep.Rows) != 12 {
		t.Fatalf("%d calibration rows", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		for _, col := range []int{3, 6} {
			var dev float64
			if _, err := fmt.Sscanf(row[col], "%f%%", &dev); err != nil {
				t.Fatalf("unparseable deviation %q", row[col])
			}
			if dev > 25 || dev < -25 {
				t.Errorf("%s: deviation %s exceeds 25%%", row[0], row[col])
			}
		}
	}
}

// TestTablesReorderingOrdering: every Table 2 entry must beat its
// Table 1 counterpart, CPQ must be the fastest platform row-wise, and
// rc=2.0 must cost more than rc=1.5.
func TestTablesReorderingOrdering(t *testing.T) {
	o := tiny()
	t1 := Table1(o)
	t2 := Table2(o)
	if len(t1.Rows) != 12 || len(t2.Rows) != 12 {
		t.Fatalf("table sizes %d, %d", len(t1.Rows), len(t2.Rows))
	}
	for i := range t1.Rows {
		a, _ := strconv.ParseFloat(t1.Rows[i][3], 64)
		b, _ := strconv.ParseFloat(t2.Rows[i][3], 64)
		if b >= a {
			t.Errorf("row %v: reordered %g !< unordered %g", t1.Rows[i][:3], b, a)
		}
	}
	// Row layout: platform blocks of 4 rows in Sun, T3E, CPQ order;
	// within a block rc rises then D rises.
	for i := 0; i < 12; i += 2 {
		lo, _ := strconv.ParseFloat(t1.Rows[i][3], 64)
		hi, _ := strconv.ParseFloat(t1.Rows[i+1][3], 64)
		if hi <= lo {
			t.Errorf("rc=2.0 not slower at row %d: %g vs %g", i, hi, lo)
		}
	}
	for i := 0; i < 4; i++ {
		sun, _ := strconv.ParseFloat(t1.Rows[i][3], 64)
		cpq, _ := strconv.ParseFloat(t1.Rows[8+i][3], 64)
		if cpq >= sun {
			t.Errorf("CPQ row %d not faster than Sun: %g vs %g", i, cpq, sun)
		}
	}
}

// TestFigure1SpeedupMonotone: adding processors must increase speedup
// on every platform and dimensionality.
func TestFigure1SpeedupMonotone(t *testing.T) {
	rep := Figure1(tiny())
	prev := map[string]float64{}
	for _, row := range rep.Rows {
		key := row[0][:strings.LastIndex(row[0], "/")] // Platform/D
		sp, _ := strconv.ParseFloat(row[3], 64)
		if last, ok := prev[key]; ok && sp <= last {
			t.Errorf("%s: speedup not monotone (%g after %g)", row[0], sp, last)
		}
		prev[key] = sp
	}
}

// TestFigure3GranularityCostsD3: for D=3 the relative performance at
// B/P=32 must fall below B/P=1 on every platform (the paper's
// "significant overhead to load-balancing ... particularly for D=3").
func TestFigure3GranularityCostsD3(t *testing.T) {
	rep := Figure3(tiny())
	for _, row := range rep.Rows {
		if !strings.Contains(row[0], "D3") {
			continue
		}
		end, _ := strconv.ParseFloat(row[len(row)-1], 64)
		if end >= 1.0 {
			t.Errorf("%s: no granularity overhead at B/P=32 (%g)", row[0], end)
		}
	}
}

// TestFigure4SunAtomicIsTerrible: the software-lock atomic strategy
// must be roughly an order of magnitude slower than selected-atomic
// on the Sun.
func TestFigure4SunAtomicIsTerrible(t *testing.T) {
	rep := Figure4(tiny())
	at := cellFloat(t, rep, "rc=1.5/atomic", "T=4")
	sel := cellFloat(t, rep, "rc=1.5/sel-atomic", "T=4")
	if sel < 4*at {
		t.Errorf("Sun: selected-atomic %g not far above atomic %g", sel, at)
	}
}

// TestFigure5SelectedAtomicWins: on the Compaq the selected-atomic
// strategy must be the best of the four at T=4 for rc=1.5.
func TestFigure5SelectedAtomicWins(t *testing.T) {
	rep := Figure5(tiny())
	sel := cellFloat(t, rep, "rc=1.5/sel-atomic", "T=4")
	for _, other := range []string{"rc=1.5/atomic", "rc=1.5/stripe", "rc=1.5/transpose"} {
		v := cellFloat(t, rep, other, "T=4")
		if v >= sel {
			t.Errorf("CPQ: %s (%g) not below selected-atomic (%g)", other, v, sel)
		}
	}
	if sel < 2.0 {
		t.Errorf("CPQ selected-atomic speedup %g too low at T=4", sel)
	}
}

// TestHybridNeverBeatsMPI: the paper's headline result — on the
// cluster, pure MPI is always at least as efficient as the hybrid
// scheme at equal granularity.
func TestHybridNeverBeatsMPI(t *testing.T) {
	for _, gen := range []func(Options) *Report{Figure7, Figure8} {
		rep := gen(tiny())
		for i := 0; i+1 < len(rep.Rows); i += 2 {
			mpi := rep.Rows[i]
			hyb := rep.Rows[i+1]
			for c := 1; c < len(mpi); c++ {
				m, _ := strconv.ParseFloat(mpi[c], 64)
				h, _ := strconv.ParseFloat(hyb[c], 64)
				if h > m+1e-9 {
					t.Errorf("%s: hybrid (%g) beats MPI (%g) in column %d", rep.ID, h, m, c)
				}
			}
		}
	}
}

// TestLockFractionGrowsWithGranularity: X2's central trend, with
// D=3 above D=2 at the finest granularity.
func TestLockFractionGrowsWithGranularity(t *testing.T) {
	rep := ExtraLockFraction(tiny())
	for _, row := range rep.Rows {
		first, _ := strconv.ParseFloat(row[1], 64)
		last, _ := strconv.ParseFloat(row[len(row)-1], 64)
		if last <= first {
			t.Errorf("D=%s: lock fraction flat: %g -> %g", row[0], first, last)
		}
	}
	d2, _ := strconv.ParseFloat(rep.Rows[0][len(rep.Rows[0])-1], 64)
	d3, _ := strconv.ParseFloat(rep.Rows[1][len(rep.Rows[1])-1], 64)
	if d3 <= d2 {
		t.Errorf("finest-granularity lock fraction: D3 (%g) not above D2 (%g)", d3, d2)
	}
}

// TestFreeLockAblationNarrowsGap: zeroing the lock cost must close
// most of the hybrid deficit at B/P=1.
func TestFreeLockAblationNarrowsGap(t *testing.T) {
	o := tiny()
	withLocks := Figure8(o)
	noLocks := ExtraNoLockAblation(o)
	gapBefore := cellFloat(t, withLocks, "rc=1.5/MPI-P16", "B/P=1") -
		cellFloat(t, withLocks, "rc=1.5/hybrid-P4xT4", "B/P=1")
	gapAfter := cellFloat(t, noLocks, "rc=1.5/MPI-P16", "B/P=1") -
		cellFloat(t, noLocks, "rc=1.5/hybrid-freelock", "B/P=1")
	if gapAfter >= gapBefore {
		t.Errorf("free locks did not narrow the hybrid gap: %g -> %g", gapBefore, gapAfter)
	}
}

// TestFusedBeatsPerBlock at fine granularity (X4).
func TestFusedBeatsPerBlock(t *testing.T) {
	rep := ExtraFusedRegions(tiny())
	var perBlock, fused []string
	for _, row := range rep.Rows {
		switch row[0] {
		case "hybrid-perblock":
			perBlock = row
		case "hybrid-fused":
			fused = row
		}
	}
	if perBlock == nil || fused == nil {
		t.Fatal("missing series in X4")
	}
	pb, _ := strconv.ParseFloat(perBlock[len(perBlock)-1], 64)
	fu, _ := strconv.ParseFloat(fused[len(fused)-1], 64)
	if fu <= pb {
		t.Errorf("fused efficiency %g not above per-block %g at finest granularity", fu, pb)
	}
}

// TestHaloMachineryAblation: naive packing must cost more at finer
// granularity.
func TestHaloMachineryAblation(t *testing.T) {
	rep := ExtraHaloMachinery(tiny())
	var naive []string
	for _, row := range rep.Rows {
		if row[0] == "P16/naive-pack" {
			naive = row
		}
	}
	if naive == nil {
		t.Fatal("missing naive-pack series")
	}
	var first, last float64
	fmt.Sscanf(naive[1], "%f%%", &first)
	fmt.Sscanf(naive[len(naive)-1], "%f%%", &last)
	if first <= 0 || last <= first {
		t.Errorf("naive packing penalty not growing: %g%% -> %g%%", first, last)
	}
}

// TestClusteredWorkloadShape: on a genuinely clustered bed, the naive
// MPI decomposition must be the slowest configuration and both finer
// granularity and hybrid balance must help.
func TestClusteredWorkloadShape(t *testing.T) {
	rep := ExtraClusteredWorkload(tiny())
	for _, row := range rep.Rows {
		coarse, _ := strconv.ParseFloat(row[1], 64)
		if row[0] == "MPI-P16" {
			fine, _ := strconv.ParseFloat(row[len(row)-2], 64)
			if fine <= coarse {
				t.Errorf("granularity did not help the clustered bed: %g -> %g", coarse, fine)
			}
			continue
		}
		// Hybrid rows: automatic in-box balance must beat naive MPI
		// already at B/P=1.
		if coarse <= 1.2 {
			t.Errorf("%s: no automatic balance benefit at B/P=1 (%g)", row[0], coarse)
		}
	}
}

// TestOverlapHidesCommunication: X7's acceptance property — at P >= 4
// and coarse granularity the split-phase exchange must hide a strictly
// positive amount of communication behind the core-link pass, and the
// overlapped step must never be slower than the synchronous one on the
// same shape.
func TestOverlapHidesCommunication(t *testing.T) {
	rep := ExtraOverlap(tiny())
	rows := []string{"mpi/P=4/BP=1", "mpi/P=8/BP=1", "mpi/P=16/BP=1", "hybrid/P=4xT=4/BP=1"}
	for _, key := range rows {
		hidden := cellFloat(t, rep, key, "hidden")
		if hidden <= 0 {
			t.Errorf("%s: no communication hidden (%g)", key, hidden)
		}
		ts := cellFloat(t, rep, key, "t(sync)")
		to := cellFloat(t, rep, key, "t(overlap)")
		if to > ts+1e-9 {
			t.Errorf("%s: overlapped step slower than synchronous (%g > %g)", key, to, ts)
		}
	}
}

// TestSyncOverheadReportShape: X1 must report positive per-block sync
// costs that fall per block as granularity rises (amortised fused
// regions) while total sync grows.
func TestSyncOverheadReportShape(t *testing.T) {
	rep := ExtraSyncOverhead(tiny())
	if len(rep.Rows) < 2 {
		t.Fatal("X1 empty")
	}
	firstTotal, _ := strconv.ParseFloat(rep.Rows[0][4], 64)
	lastTotal, _ := strconv.ParseFloat(rep.Rows[len(rep.Rows)-1][4], 64)
	if !(firstTotal > 0 && lastTotal > firstTotal) {
		t.Errorf("total sync not growing with B/P: %g -> %g", firstTotal, lastTotal)
	}
}

// TestRebalanceGates: X8's acceptance properties. On the clustered bed
// the dynamic balancer at coarse granularity (B/P <= 4) must reach a
// modelled time at least as good as the best static configuration at
// any granularity, and at every swept granularity where whole-block
// migration can act (B > P) the per-rank load imbalance must drop
// relative to the static deal at the same B/P. At B/P=1 each rank owns
// exactly one block, so any re-deal is a permutation: the rebalanced
// run must match the static one exactly (and in particular must not
// churn blocks for no gain).
func TestRebalanceGates(t *testing.T) {
	rep := ExtraRebalance(tiny())

	cols := []string{"B/P=1", "2", "4", "8", "16", "32"}
	bestStatic, bestRebal := 0.0, 0.0
	for _, col := range cols {
		if v := cellFloat(t, rep, "static", col); v > bestStatic {
			bestStatic = v
		}
	}
	for _, row := range []string{"rebalance", "imbalance-rebalance"} {
		statRow := map[string]string{"rebalance": "static", "imbalance-rebalance": "imbalance-static"}[row]
		s, _ := rep.Cell(statRow, "B/P=1")
		r, _ := rep.Cell(row, "B/P=1")
		if r != s {
			t.Errorf("B/P=1: rebalanced run diverged from static (%s %q vs %s %q) — one block per rank leaves nothing to move", row, r, statRow, s)
		}
	}
	for _, col := range cols[:3] {
		if v := cellFloat(t, rep, "rebalance", col); v > bestRebal {
			bestRebal = v
		}
		si := cellFloat(t, rep, "imbalance-static", col)
		ri := cellFloat(t, rep, "imbalance-rebalance", col)
		if col != "B/P=1" && ri >= si {
			t.Errorf("%s: rebalancing did not reduce the load imbalance (static %.2f, rebalance %.2f)", col, si, ri)
		}
		if ri < 1 {
			t.Errorf("%s: impossible imbalance ratio %.2f (max/mean < 1)", col, ri)
		}
	}
	// Speedups are printed to 2 decimals; allow that rounding.
	if bestRebal < bestStatic-0.01 {
		t.Errorf("best rebalanced time (%.2fx at B/P<=4) worse than best static (%.2fx)", bestRebal, bestStatic)
	}
	for _, col := range cols[3:] {
		if s, ok := rep.Cell("rebalance", col); !ok || s != "-" {
			t.Errorf("rebalance row should not sweep %s (got %q)", col, s)
		}
	}
}

// TestChaosGates: X9's acceptance properties. Every supervised run in
// the grid must recover from its injected rank kill with a final state
// bit-identical to the unfaulted baseline ("exact" drift row); the
// replay depth must never exceed the run length; and for a fixed kill
// step it must be monotonically non-decreasing in the snapshot cadence
// — taking snapshots less often can only force deeper rollbacks.
func TestChaosGates(t *testing.T) {
	o := tiny()
	o.N, o.Iters = 8000, 6 // 12 X9 iterations: room for several rebuild boundaries
	rep := ExtraChaos(o)

	if len(rep.Header) != 4 {
		t.Fatalf("X9 header %v", rep.Header)
	}
	for _, col := range rep.Header[1:] {
		if s, ok := rep.Cell("final-state drift vs unfaulted run", col); !ok || s != "exact" {
			t.Errorf("%s: recovery not bit-exact (drift %q)", col, s)
		}
		prev := -1.0
		for _, every := range []string{"1", "2", "4", "8"} {
			v := cellFloat(t, rep, "replay depth, snapshot every "+every+" rebuilds", col)
			if v < 1 || v > 12 {
				t.Errorf("%s every=%s: replay depth %g outside (0, iters]", col, every, v)
			}
			if v < prev {
				t.Errorf("%s: sparser snapshots shrank the replay depth (%g -> %g at every=%s)", col, prev, v, every)
			}
			prev = v
		}
	}
	if len(rep.Notes) != 2 {
		t.Fatalf("X9 notes: %v", rep.Notes)
	}
}

// TestMpismGates: X10's acceptance properties. On the platforms with
// multi-CPU nodes (CPQ, Sun) the windowed exchange must price the
// intra-node halo traffic strictly below the message path — less
// exposed communication and no more total time — while moving real
// traffic out of messages and into window loads. On the T3E, whose
// nodes hold a single CPU, mpism must degrade to the message path and
// reproduce the MPI cells exactly.
func TestMpismGates(t *testing.T) {
	rep := ExtraMpism(tiny())

	for _, pf := range []struct{ mpi, mpism string }{
		{"CPQ/mpi/P=16", "CPQ/mpism/P=16"},
		{"Sun/mpi/P=8", "Sun/mpism/P=8"},
	} {
		commMPI := cellFloat(t, rep, pf.mpi, "comm")
		commSM := cellFloat(t, rep, pf.mpism, "comm")
		if commSM >= commMPI {
			t.Errorf("%s: windowed comm %g not below message comm %g", pf.mpism, commSM, commMPI)
		}
		tMPI := cellFloat(t, rep, pf.mpi, "t/iter")
		tSM := cellFloat(t, rep, pf.mpism, "t/iter")
		if tSM > tMPI+1e-9 {
			t.Errorf("%s: windowed step %g slower than message step %g", pf.mpism, tSM, tMPI)
		}
		if v := cellFloat(t, rep, pf.mpism, "winMB"); v <= 0 {
			t.Errorf("%s: no window traffic (%g MB)", pf.mpism, v)
		}
		if v := cellFloat(t, rep, pf.mpism, "fences"); v <= 0 {
			t.Errorf("%s: no fences joined", pf.mpism)
		}
		msgMPI := cellFloat(t, rep, pf.mpi, "msgMB")
		msgSM := cellFloat(t, rep, pf.mpism, "msgMB")
		if msgSM >= msgMPI {
			t.Errorf("%s: message traffic %g MB not below mpi's %g MB", pf.mpism, msgSM, msgMPI)
		}
	}
	// Single-CPU nodes: every mpism cell equals the mpi cell verbatim.
	for _, col := range rep.Header[1:] {
		mpi, _ := rep.Cell("T3E/mpi/P=16", col)
		sm, ok := rep.Cell("T3E/mpism/P=16", col)
		if !ok || sm != mpi {
			t.Errorf("T3E %s: mpism %q != mpi %q — windowless fallback not identical", col, sm, mpi)
		}
	}
}
