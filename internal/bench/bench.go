// Package bench regenerates every table and figure of the paper's
// evaluation: the base-time tables (1, 2), the MPI scaling and
// granularity figures (1-3), the OpenMP strategy figures (4, 5), the
// single-node crossover figure (6), the hybrid-vs-MPI cluster figures
// (7, 8), and the supporting analyses of Section 9 (synchronisation
// overhead, lock fraction, and the free-lock ablation).
//
// Runs use the virtual platforms of internal/machine; reported times
// are modelled seconds. Default options run a scaled-down particle
// count with the locality metric rescaled to the paper's 10^6
// particles (Config.ModelN); Full reproduces the exact benchmark
// sizes.
package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"hybriddem/internal/core"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// Options scales the experiment suite.
type Options struct {
	N      int   // particles; 0 -> 40000 (Full forces 1e6)
	ModelN int   // cache-model particle count; 0 -> 1e6
	Iters  int   // measured iterations; 0 -> paper/5 (8 for D=2, 4 for D=3)
	Warmup int   // warm-up iterations; 0 -> 1
	Seed   int64 // 0 -> 1
	Full   bool  // paper scale: 10^6 particles, 40/20 iterations

	// NoOverlap disables the split-phase halo exchange, running every
	// experiment with the synchronous protocol (the paper's original
	// formulation). X7 ignores it: that experiment sweeps both settings
	// by construction.
	NoOverlap bool

	// Rebalance selects dynamic block→rank load balancing in every
	// distributed run. X8 and X11 ignore it: those experiments sweep the
	// strategies by construction. RebalanceOff by default, keeping the
	// suite's output identical to the static deal.
	Rebalance core.Strategy
}

func (o Options) withDefaults() Options {
	if o.Full {
		o.N = 1_000_000
	}
	if o.N == 0 {
		o.N = 40_000
	}
	if o.ModelN == 0 {
		o.ModelN = 1_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
	return o
}

// lockSensitive raises the default particle count for experiments
// whose result hinges on the measured conflict fraction (F6-F8 and
// the Section 9 analyses): at 40k particles the blocks are so small
// relative to the cutoff that nearly every particle sits on a
// thread-chunk boundary, saturating the lock counts that the paper's
// 10^6-particle blocks keep low at coarse granularity.
func (o Options) lockSensitive() Options {
	if !o.Full && o.N == 0 {
		o.N = 200_000
	}
	return o
}

// iters returns the measured iteration count for dimension d: the
// paper uses 40 (D=2) and 20 (D=3).
func (o Options) iters(d int) int {
	if o.Iters > 0 {
		return o.Iters
	}
	if o.Full {
		if d == 2 {
			return 40
		}
		return 20
	}
	if d == 2 {
		return 8
	}
	return 4
}

// config builds the paper's benchmark configuration on a platform.
func (o Options) config(d int, rcFactor float64, pf *machine.Platform, reorder bool) core.Config {
	cfg := core.Default(d, o.N)
	cfg.RCFactor = rcFactor
	cfg.Seed = o.Seed
	cfg.Reorder = reorder
	cfg.Platform = pf
	cfg.ModelN = o.ModelN
	cfg.Warmup = o.Warmup
	cfg.Overlap = !o.NoOverlap
	cfg.Rebalance = o.Rebalance
	return cfg
}

// Report is one regenerated table or figure as labelled text.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report with aligned columns.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Header, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Cell looks a value up by row key (first column) and column header;
// tests use it to assert on crossings and orderings.
func (r *Report) Cell(rowKey, col string) (string, bool) {
	ci := -1
	for i, h := range r.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, row := range r.Rows {
		if row[0] == rowKey && ci < len(row) {
			return row[ci], true
		}
	}
	return "", false
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// mustRun executes a configuration, panicking on configuration errors
// (experiment definitions are static, so an error is a programming
// mistake, not an input problem).
func mustRun(cfg core.Config, iters int) *core.Result {
	res, err := core.Run(cfg, iters)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return res
}

// scaleTo1M names the paper-scale per-iteration time. The drivers
// already bake the ModelN work scaling into every modelled charge
// (compute scaled by ModelN/N, exchange volumes by the surface power,
// synchronisation overheads unscaled), so the result is the modelled
// time as-is; the function remains as the single place documenting
// that contract.
func (o Options) scaleTo1M(perIter float64) float64 { return perIter }

// Experiment couples an ID to its generator for the CLI.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Options) *Report
}

// All lists every regenerable table and figure in the paper's order.
var All = []Experiment{
	{"X0", "calibration: model versus the published Tables 1 and 2", Calibration},
	{"T1", "Table 1: time per iteration, no particle reordering", Table1},
	{"T2", "Table 2: time per iteration with particle reordering", Table2},
	{"F1", "Figure 1: MPI block-distribution scaling (no reordering)", Figure1},
	{"F2", "Figure 2: MPI scaling with particle reordering", Figure2},
	{"F3", "Figure 3: MPI performance vs blocks per process", Figure3},
	{"F4", "Figure 4: OpenMP scaling on the Sun (D=3)", Figure4},
	{"F5", "Figure 5: OpenMP scaling on the Compaq (D=3)", Figure5},
	{"F6", "Figure 6: MPI vs OpenMP crossover on one Compaq node (D=3)", Figure6},
	{"F7", "Figure 7: hybrid vs MPI efficiency on the cluster (D=2)", Figure7},
	{"F8", "Figure 8: hybrid vs MPI efficiency on the cluster (D=3)", Figure8},
	{"X1", "Section 9.3: OpenMP synchronisation overhead per block", ExtraSyncOverhead},
	{"X2", "Section 9.2: lock fraction vs granularity", ExtraLockFraction},
	{"X3", "Section 9.2: free-lock ablation (incorrect code)", ExtraNoLockAblation},
	{"X4", "Section 11: fused single-region hybrid force loop", ExtraFusedRegions},
	{"X5", "halo machinery ablations: indexed datatypes and the same-rank fast path", ExtraHaloMachinery},
	{"X6", "extension: the clustered workload run directly (granularity vs hybrid balance)", ExtraClusteredWorkload},
	{"X7", "extension: split-phase halo exchange — communication hidden by the core-link pass", ExtraOverlap},
	{"X8", "extension: dynamic block→rank load balancing on the clustered bed", ExtraRebalance},
	{"X9", "extension: fault tolerance — replay depth vs snapshot cadence, integrity overhead", ExtraChaos},
	{"X10", "extension: MPI-3-style shared-memory windows (mpism) vs messages vs threads", ExtraMpism},
	{"X11", "extension: adaptive ORB decomposition vs LPT on the moving-cluster bed", ExtraORB},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// methodLabel shortens strategy names for column headers.
func methodLabel(m shm.Method) string {
	switch m {
	case shm.Atomic:
		return "atomic"
	case shm.SelectedAtomic:
		return "sel-atomic"
	case shm.CriticalReduction:
		return "critical"
	case shm.Stripe:
		return "stripe"
	case shm.Transpose:
		return "transpose"
	default:
		return m.String()
	}
}
