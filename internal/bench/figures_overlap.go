package bench

import (
	"fmt"

	"hybriddem/internal/core"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// ExtraOverlap quantifies the split-phase halo exchange: each
// decomposition runs twice — synchronous exchange and overlapped
// exchange — and the figure reports the modelled step time and the
// exposed communication time of both, plus the hidden communication
// (comm(sync) - comm(overlap)), the part of the exchange the core-link
// force pass absorbed. The overlapped step pays max(comm, core
// compute) where the synchronous step pays the sum, so t(overlap) <=
// t(sync) and the gap grows with the surface-to-volume ratio (larger P,
// finer B/P). A hybrid row shows the threaded variant, where the
// workers run the core links while the master drains the exchange.
func ExtraOverlap(o Options) *Report {
	o = o.withDefaults()
	d := 3
	pf := machine.CompaqES40()
	rep := &Report{
		ID:     "X7",
		Title:  "Compaq cluster, D=3: communication hidden by the split-phase halo exchange",
		Header: []string{"shape", "t(sync)", "t(overlap)", "comm(sync)", "comm(overlap)", "hidden"},
	}
	run := func(key string, shape func(*core.Config)) {
		var t, comm [2]float64
		for i, overlap := range []bool{false, true} {
			cfg := o.config(d, 1.5, pf, true)
			shape(&cfg)
			cfg.Overlap = overlap
			res := mustRun(cfg, o.iters(d))
			t[i] = o.scaleTo1M(res.PerIter)
			comm[i] = o.scaleTo1M(res.CommTime)
		}
		rep.Rows = append(rep.Rows, []string{key,
			f3(t[0]), f3(t[1]), f3(comm[0]), f3(comm[1]), f3(comm[0] - comm[1])})
	}
	for _, p := range []int{2, 4, 8, 16} {
		for _, bpp := range []int{1, 4} {
			p, bpp := p, bpp
			run(fmt.Sprintf("mpi/P=%d/BP=%d", p, bpp), func(c *core.Config) {
				c.Mode = core.MPI
				c.P = p
				c.BlocksPerProc = bpp
			})
		}
	}
	run("hybrid/P=4xT=4/BP=1", func(c *core.Config) {
		c.Mode = core.Hybrid
		c.P, c.T = 4, 4
		c.Method = shm.SelectedAtomic
	})
	rep.Notes = append(rep.Notes,
		"hidden = comm(sync) - comm(overlap): exchange time absorbed by the core-link pass, which needs no halo data",
		"the overlapped step charges max(comm, core compute) where the synchronous step pays the sum; the core pass runs in D stages with one exchange dimension drained between stages (a later dimension's sends need the earlier halos), so every leg's flight time is covered by the following stage",
		"at fine granularity (B/P=4) little remains to hide: most legs join blocks of the same rank and bypass the message runtime, leaving mostly incompressible pack/unpack work")
	return rep
}
