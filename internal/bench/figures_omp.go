package bench

import (
	"fmt"

	"hybriddem/internal/core"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// ompFigureMethods are the strategies plotted in Figures 4 and 5. The
// critical-region reduction is measured too but the paper leaves it
// off the plots ("extremely poor results which are not shown"); the
// stripe and transpose methods "gave almost identical performance"
// so the paper plots one line for both — we report both.
var ompFigureMethods = []shm.Method{shm.Atomic, shm.SelectedAtomic, shm.Stripe, shm.Transpose}

// ompScaling generates Figure 4 (Sun) or Figure 5 (Compaq): OpenMP
// speedup against thread count for each update strategy, D=3.
func ompScaling(o Options, pf *machine.Platform, ts []int, id, title string) *Report {
	o = o.withDefaults()
	rep := &Report{
		ID:    id,
		Title: title,
		Header: append([]string{"rc/method"}, func() []string {
			var h []string
			for _, T := range ts {
				h = append(h, fmt.Sprintf("T=%d", T))
			}
			return h
		}()...),
	}
	const d = 3
	for _, rc := range []float64{1.5, 2.0} {
		// Serial reference time t(1).
		ser := o.config(d, rc, pf, true)
		tRef := o.scaleTo1M(mustRun(ser, o.iters(d)).PerIter)
		for _, m := range ompFigureMethods {
			row := []string{fmt.Sprintf("rc=%.1f/%s", rc, methodLabel(m))}
			for _, T := range ts {
				cfg := o.config(d, rc, pf, true)
				cfg.Mode = core.OpenMP
				cfg.T = T
				cfg.Method = m
				res := mustRun(cfg, o.iters(d))
				t := o.scaleTo1M(res.PerIter)
				row = append(row, f2(tRef/t))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"values are speedup t(serial)/t(T); D=3 with particle reordering",
		"the critical-region reduction is omitted from the figure as in the paper; see experiment X1/X2 analyses")
	return rep
}

// Figure4 regenerates Figure 4: on the Sun the KAI system uses
// software locks, so the atomic strategy is an order of magnitude
// slow, the array reductions saturate memory bandwidth, and even
// selected-atomic scales modestly.
func Figure4(o Options) *Report {
	return ompScaling(o, machine.SunHPC(), []int{1, 2, 4}, "F4",
		"OpenMP speedup vs threads on the Sun (D=3); software locks")
}

// Figure5 regenerates Figure 5: on the Compaq atomic updates are done
// in hardware; the selected-atomic method is clearly the best with
// parallel efficiencies in excess of 80% on four threads.
func Figure5(o Options) *Report {
	return ompScaling(o, machine.CompaqES40(), []int{1, 2, 3, 4}, "F5",
		"OpenMP speedup vs threads on the Compaq (D=3); hardware atomics")
}

// Figure6 regenerates Figure 6: on four processors of a single
// Compaq box, the MPI time grows with granularity B while the OpenMP
// (T=4, selected atomic) time is flat; the curves cross where
// load-balancing a real simulation via MPI granularity becomes more
// expensive than thread-level balance. The paper finds crossovers at
// about 8 blocks per processor for rc=2.0 and about 30 for rc=1.5.
func Figure6(o Options) *Report {
	o = o.lockSensitive().withDefaults()
	pf := machine.CompaqES40()
	sweep := []int{1, 2, 4, 8, 16, 32}
	rep := &Report{
		ID:     "F6",
		Title:  "single Compaq node: MPI P=4 time vs B against OpenMP T=4",
		Header: []string{"D/rc/series", "B/P=1", "2", "4", "8", "16", "32", "crossover"},
	}
	for _, d := range []int{3, 2} {
		for _, rc := range []float64{1.5, 2.0} {
			// OpenMP flat line.
			omp := o.config(d, rc, pf, true)
			omp.Mode = core.OpenMP
			omp.T = 4
			omp.Method = shm.SelectedAtomic
			tOMP := o.scaleTo1M(mustRun(omp, o.iters(d)).PerIter)

			row := []string{fmt.Sprintf("D%d/rc=%.1f/MPI-P4", d, rc)}
			cross := "none"
			for _, bpp := range sweep {
				cfg := o.config(d, rc, pf, true)
				cfg.Mode = core.MPI
				cfg.P = 4
				cfg.BlocksPerProc = bpp
				t := o.scaleTo1M(mustRun(cfg, o.iters(d)).PerIter)
				row = append(row, f3(t))
				if cross == "none" && t > tOMP {
					cross = fmt.Sprintf("B/P=%d", bpp)
				}
			}
			row = append(row, cross)
			rep.Rows = append(rep.Rows, row)
			ompRow := []string{fmt.Sprintf("D%d/rc=%.1f/OpenMP-T4", d, rc)}
			for range sweep {
				ompRow = append(ompRow, f3(tOMP))
			}
			ompRow = append(ompRow, "-")
			rep.Rows = append(rep.Rows, ompRow)
		}
	}
	rep.Notes = append(rep.Notes,
		"times are modelled seconds per iteration (scaled to 10^6 particles)",
		"paper: crossovers exist only for D=3 — at ~8 blocks/CPU (rc=2.0) and ~30 blocks/CPU (rc=1.5); none for D=2",
		"the model reproduces D=3-only crossovers; it places the rc=1.5 crossing at coarser granularity than rc=2.0's (see EXPERIMENTS.md)")
	return rep
}
