package bench

import (
	"fmt"

	"hybriddem/internal/core"
	"hybriddem/internal/machine"
)

// procSweep returns the process counts benchmarked per platform and
// the reference count P0 (the T3E could not hold the problem on fewer
// than 8 nodes).
func procSweep(pf *machine.Platform) (ps []int, p0 int) {
	switch pf.Name {
	case "Sun":
		return []int{1, 2, 4, 8}, 1
	case "T3E":
		return []int{8, 16, 32, 64, 128}, 8
	default: // CPQ: one box up to P=4, then whole cluster
		return []int{1, 2, 4, 8, 16, 20}, 1
	}
}

// mpiScaling generates Figure 1 or 2: speedup of the MPI block
// distribution (B/P = 1) against P/P0 for rc = 1.5 rmax.
func mpiScaling(o Options, reorder bool, id, title string) *Report {
	o = o.withDefaults()
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"Platform/D/P", "P/P0", "t [s]", "speedup", "efficiency"},
	}
	for _, pf := range machine.Platforms() {
		ps, p0 := procSweep(pf)
		for _, d := range []int{2, 3} {
			var tRef float64
			for _, p := range ps {
				cfg := o.config(d, 1.5, pf, reorder)
				cfg.Mode = core.MPI
				cfg.P = p
				cfg.BlocksPerProc = 1
				res := mustRun(cfg, o.iters(d))
				t := o.scaleTo1M(res.PerIter)
				if p == p0 {
					tRef = t
				}
				speedup := float64(p0) * tRef / t
				eff := speedup / float64(p)
				rep.Rows = append(rep.Rows, []string{
					fmt.Sprintf("%s/D%d/P%d", pf.Name, d, p),
					f2(float64(p) / float64(p0)),
					f3(t),
					f2(speedup),
					f2(eff),
				})
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"rc = 1.5 rmax, simple block distribution (B/P = 1)",
		"speedup = P0*t(P0)/t(P), normalised to P0 (T3E: P0 = 8)")
	return rep
}

// Figure1 regenerates Figure 1: without reordering the aggregate
// cache grows with P and efficiencies exceed one; on the Compaq,
// performance jumps once the run spreads past a single box's memory
// system.
func Figure1(o Options) *Report {
	return mpiScaling(o, false, "F1", "MPI scaling, simple block distribution, no reordering (rc=1.5)")
}

// Figure2 regenerates Figure 2: with particle reordering the serial
// code is faster, so parallel efficiencies drop back towards (and
// below) one, except CPQ D=2 which still gains past one box.
func Figure2(o Options) *Report {
	return mpiScaling(o, true, "F2", "MPI scaling with particle reordering (rc=1.5)")
}

// granularityP returns the fixed process count Figure 3 sweeps
// granularity at.
func granularityP(pf *machine.Platform) int {
	switch pf.Name {
	case "Sun":
		return 8
	case "T3E":
		return 16
	default:
		return 16
	}
}

// Figure3 regenerates Figure 3: performance against blocks per
// process B/P at fixed P, normalised to the block distribution
// (B/P = 1). Finer granularity means more halo area, more messages
// and more per-block overhead, so performance decreases — this curve
// is the price of load-balancing a clustered simulation with MPI.
func Figure3(o Options) *Report {
	o = o.withDefaults()
	rep := &Report{
		ID:     "F3",
		Title:  "MPI performance vs granularity B/P, normalised to B/P=1 (rc=1.5)",
		Header: []string{"Platform/D", "B/P=1", "2", "4", "8", "16", "32"},
	}
	sweep := []int{1, 2, 4, 8, 16, 32}
	for _, pf := range machine.Platforms() {
		p := granularityP(pf)
		for _, d := range []int{2, 3} {
			row := []string{fmt.Sprintf("%s/D%d/P%d", pf.Name, d, p)}
			var tRef float64
			for _, bpp := range sweep {
				cfg := o.config(d, 1.5, pf, true)
				cfg.Mode = core.MPI
				cfg.P = p
				cfg.BlocksPerProc = bpp
				res := mustRun(cfg, o.iters(d))
				t := o.scaleTo1M(res.PerIter)
				if bpp == 1 {
					tRef = t
				}
				row = append(row, f3(tRef/t))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"values are relative performance t(B/P=1)/t(B/P); < 1 means granularity overhead",
		"with rc=2.0 the results are very similar (paper, Section 6.4)")
	return rep
}
