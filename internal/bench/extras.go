package bench

import (
	"fmt"

	"hybriddem/internal/core"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// ExtraSyncOverhead reproduces the Section 9.3 estimate: counting the
// parallel regions and barriers the hybrid code executes per block
// per iteration and pricing them with the platform's overhead model,
// the OpenMP synchronisation cost comes to tens of microseconds per
// block per processor — only a couple of percent of an iteration, so
// NOT the main source of the hybrid slowdown.
func ExtraSyncOverhead(o Options) *Report {
	o = o.lockSensitive().withDefaults()
	pf := machine.CompaqES40()
	rep := &Report{
		ID:     "X1",
		Title:  "OpenMP synchronisation overhead per block per iteration (Compaq, D=3, rc=1.5)",
		Header: []string{"B/P", "regions/iter", "barriers/iter", "sync [us/block]", "total sync [ms/iter]", "iter [ms]"},
	}
	const d = 3
	for _, bpp := range []int{1, 4, 16, 32} {
		cfg := o.config(d, 1.5, pf, true)
		cfg.Mode = core.Hybrid
		cfg.P = 4
		cfg.T = 4
		cfg.BlocksPerProc = bpp
		cfg.Method = shm.SelectedAtomic
		iters := o.iters(d)
		res := mustRun(cfg, iters)
		// Counters are totals across ranks; per rank per iteration:
		regions := float64(res.TC.ParallelRegions) / float64(cfg.P) / float64(iters+cfg.Warmup)
		barriers := float64(res.TC.TeamBarriers) / float64(cfg.P) / float64(iters+cfg.Warmup) / float64(cfg.T)
		syncPerIter := regions*pf.ForkJoin + barriers*pf.BarrierCost(cfg.T)
		syncPerBlock := syncPerIter / float64(bpp)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", bpp),
			f2(regions),
			f2(barriers),
			f2(syncPerBlock * 1e6),
			f3(syncPerIter * 1e3),
			f2(o.scaleTo1M(res.PerIter) * 1e3),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper estimate: ~50 us per block per processor, a couple of ms per iteration at B/P=32 — a couple of percent",
		"the iteration time column is scaled to 10^6 particles; sync costs are per-run absolutes")
	return rep
}

// ExtraLockFraction reproduces the Section 9.2 analysis: under the
// hybrid scheme the number of force updates requiring an atomic lock
// grows steeply with granularity, "rising to around 50% at the finest
// granularity for D=3. For D=2, however, the maximum is around 25%".
func ExtraLockFraction(o Options) *Report {
	o = o.lockSensitive().withDefaults()
	pf := machine.CompaqES40()
	sweep := []int{1, 2, 4, 8, 16, 32}
	rep := &Report{
		ID:     "X2",
		Title:  "fraction of force updates requiring a lock (hybrid P=4 T=4, selected atomic, rc=1.5)",
		Header: []string{"D", "B/P=1", "2", "4", "8", "16", "32"},
	}
	for _, d := range []int{2, 3} {
		row := []string{fmt.Sprintf("%d", d)}
		for _, bpp := range sweep {
			cfg := o.config(d, 1.5, pf, true)
			cfg.Mode = core.Hybrid
			cfg.P = 4
			cfg.T = 4
			cfg.BlocksPerProc = bpp
			cfg.Method = shm.SelectedAtomic
			res := mustRun(cfg, o.iters(d))
			row = append(row, f3(res.AtomicFraction))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"smaller blocks mean fewer particles per block and more inter-thread conflicts when updating the force",
		"paper: ~50% at the finest granularity for D=3, ~25% for D=2, which explains D=2's better scaling with B")
	return rep
}

// ExtraNoLockAblation reproduces the Section 9.2 ablation: running
// with the lock cost zeroed ("simulating a machine with an extremely
// efficient atomic lock") the hybrid code actually beats pure MPI for
// D=3 at small B. We zero the modelled lock cost rather than removing
// the locks, which reproduces the measurement without the data race
// the paper's incorrect code had.
func ExtraNoLockAblation(o Options) *Report {
	o = o.lockSensitive().withDefaults()
	free := *machine.CompaqES40()
	free.AtomicOp = 0
	free.AtomicScale = 0
	free.CriticalOp = 0
	const d = 3
	sweep := []int{1, 2, 4, 8}
	rep := &Report{
		ID:     "X3",
		Title:  "free-lock ablation, Compaq cluster D=3: hybrid wins at small B when locks cost nothing",
		Header: []string{"rc/series", "B/P=1", "2", "4", "8"},
	}
	for _, rc := range []float64{1.5, 2.0} {
		var tRef float64
		mpiRow := []string{fmt.Sprintf("rc=%.1f/MPI-P16", rc)}
		for _, bpp := range sweep {
			cfg := o.config(d, rc, &free, true)
			cfg.Mode = core.MPI
			cfg.P = 16
			cfg.BlocksPerProc = bpp
			t := o.scaleTo1M(mustRun(cfg, o.iters(d)).PerIter)
			if bpp == 1 {
				tRef = t
			}
			mpiRow = append(mpiRow, f3(tRef/t))
		}
		rep.Rows = append(rep.Rows, mpiRow)

		hybRow := []string{fmt.Sprintf("rc=%.1f/hybrid-freelock", rc)}
		for _, bpp := range sweep {
			cfg := o.config(d, rc, &free, true)
			cfg.Mode = core.Hybrid
			cfg.P = 4
			cfg.T = 4
			cfg.BlocksPerProc = bpp
			cfg.Method = shm.SelectedAtomic
			t := o.scaleTo1M(mustRun(cfg, o.iters(d)).PerIter)
			hybRow = append(hybRow, f3(tRef/t))
		}
		rep.Rows = append(rep.Rows, hybRow)
	}
	rep.Notes = append(rep.Notes,
		"efficiencies normalised to free-lock MPI at B/P=1",
		"paper: \"we actually observe superior performance of the hybrid code over MPI for D=3 and small B\" — the lock cost, not the algorithm, is the culprit")
	return rep
}

// ExtraHaloMachinery ablates the two halo-exchange optimisations the
// paper's MPI code relies on: the cached indexed datatypes (versus a
// naive per-swap pack/copy/unpack) and the same-rank direct-copy fast
// path (versus routing intra-rank legs through the message runtime —
// "at runtime the communications routines are actually only called
// when P > 1"). Costs grow with granularity because finer blocks mean
// more halo surface and more same-rank legs.
func ExtraHaloMachinery(o Options) *Report {
	o = o.lockSensitive().withDefaults()
	pf := machine.CompaqES40()
	const d = 3
	sweep := []int{1, 4, 16, 32}
	rep := &Report{
		ID:     "X5",
		Title:  "halo machinery ablations (Compaq, D=3, rc=1.5)",
		Header: []string{"variant", "B/P=1", "4", "16", "32"},
	}
	variants := []struct {
		name string
		p    int
		mut  func(*core.Config)
	}{
		{"P16/indexed", 16, func(c *core.Config) {}},
		{"P16/naive-pack", 16, func(c *core.Config) { c.NaivePack = true }},
		{"P1/fastpath", 1, func(c *core.Config) {}},
		{"P1/self-messaging", 1, func(c *core.Config) { c.SelfMessage = true }},
	}
	refs := map[int][]float64{}
	for _, v := range variants {
		row := []string{v.name}
		base := refs[v.p] == nil
		for bi, bpp := range sweep {
			cfg := o.config(d, 1.5, pf, true)
			cfg.Mode = core.MPI
			cfg.P = v.p
			cfg.BlocksPerProc = bpp
			v.mut(&cfg)
			t := mustRun(cfg, o.iters(d)).PerIter
			if base {
				refs[v.p] = append(refs[v.p], t)
				row = append(row, f3(t))
			} else {
				row = append(row, fmt.Sprintf("%+.1f%%", 100*(t/refs[v.p][bi]-1)))
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"percentage rows: slowdown versus the optimised run at the same P",
		"the cyclic deal puts adjacent blocks on different ranks, so the same-rank fast path matters at P=1 — the paper's dummy communications library that lets one source build serve serial and OpenMP modes",
		"naive packing grows with granularity because finer blocks mean more halo surface per particle")
	return rep
}

// ExtraFusedRegions implements the Section 11 further work: a single
// parallel loop over all links in all blocks. Global chunking gives
// whole blocks to single threads, collapsing the lock fraction and
// the region count, and recovering most of the hybrid loss.
func ExtraFusedRegions(o Options) *Report {
	o = o.lockSensitive().withDefaults()
	pf := machine.CompaqES40()
	const d = 3
	sweep := []int{1, 2, 4, 8, 16, 32}
	rep := &Report{
		ID:     "X4",
		Title:  "fused single-region hybrid force loop (Section 11), Compaq D=3 rc=1.5",
		Header: []string{"series", "B/P=1", "2", "4", "8", "16", "32"},
	}
	var tRef float64
	mpiRow := []string{"MPI-P16"}
	for _, bpp := range sweep {
		cfg := o.config(d, 1.5, pf, true)
		cfg.Mode = core.MPI
		cfg.P = 16
		cfg.BlocksPerProc = bpp
		t := o.scaleTo1M(mustRun(cfg, o.iters(d)).PerIter)
		if bpp == 1 {
			tRef = t
		}
		mpiRow = append(mpiRow, f3(tRef/t))
	}
	rep.Rows = append(rep.Rows, mpiRow)

	for _, fused := range []bool{false, true} {
		label := "hybrid-perblock"
		if fused {
			label = "hybrid-fused"
		}
		row := []string{label}
		fracs := []string{"lock-fraction"}
		for _, bpp := range sweep {
			cfg := o.config(d, 1.5, pf, true)
			cfg.Mode = core.Hybrid
			cfg.P = 4
			cfg.T = 4
			cfg.BlocksPerProc = bpp
			cfg.Method = shm.SelectedAtomic
			cfg.Fused = fused
			res := mustRun(cfg, o.iters(d))
			row = append(row, f3(tRef/o.scaleTo1M(res.PerIter)))
			fracs = append(fracs, f3(res.AtomicFraction))
		}
		rep.Rows = append(rep.Rows, row)
		if fused {
			rep.Rows = append(rep.Rows, fracs)
		}
	}
	rep.Notes = append(rep.Notes,
		"fusing removes the per-block fork/join and lets one thread own whole blocks, reducing inter-thread dependencies",
		"this is the reorganisation the paper proposes in Further Work")
	return rep
}
