package bench

import (
	"fmt"

	"hybriddem/internal/core"
	"hybriddem/internal/geom"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// ExtraRebalance extends X6's clustered bed with the dynamic
// block→rank load balancer. The static block-cyclic deal can only fix
// the idle top-of-box processes by refining B/P until the granularity
// overheads of Figure 3 take over; the rebalancer instead measures
// per-block cost at every list rebuild and re-deals whole blocks to
// ranks with an LPT heuristic, so a coarse decomposition reaches the
// balance that the static map needs many more, smaller blocks to
// approximate. Two row groups:
//
//   - speedup over the naive static decomposition (B/P=1), for the
//     static sweep of X6 and the rebalanced sweep at coarse
//     granularity (B/P <= 4 — beyond that the static map is already
//     fine enough to balance and the sweeps converge);
//   - the per-rank load imbalance ratio max/mean of the same runs,
//     the quantity the rebalancer actually drives down.
//
// Unlike X1–X7 this figure models the measured system at its own
// scale (ModelN = N) instead of extrapolating to the 10^6-particle
// target. The extrapolation scales all surface quantities by
// (ModelN/N)^((D-1)/D)/(ModelN/N) < 1, so cutting a core link at a
// new block boundary — one pair computation becoming two halo-link
// computations, the defining cost of granularity refinement — would
// be charged *less* than the single core link it replaces, and the
// granularity/balance trade-off this figure studies would be decided
// by the rescale rather than by the decomposition. At the measured
// scale a split pair honestly costs two.
func ExtraRebalance(o Options) *Report {
	o = o.lockSensitive().withDefaults()
	o.ModelN = o.N
	pf := machine.CompaqES40()
	const d = 2
	const p = 16
	staticSweep := []int{1, 2, 4, 8, 16, 32}
	rebalSweep := []int{1, 2, 4}
	rep := &Report{
		ID:     "X8",
		Title:  "dynamic load balancing on the clustered bed (bottom 25%), Compaq cluster, MPI P=16, D=2",
		Header: []string{"series", "B/P=1", "2", "4", "8", "16", "32", "best"},
	}

	build := func(bpp int, rebalance core.Strategy) core.Config {
		cfg := o.config(d, 1.5, pf, true)
		cfg.BC = geom.Reflecting
		cfg.FillHeight = 0.25
		cfg.Gravity = -20
		cfg.Mode = core.MPI
		cfg.P = p
		cfg.BlocksPerProc = bpp
		cfg.Method = shm.SelectedAtomic
		cfg.Rebalance = rebalance
		return cfg
	}

	type run struct {
		t, imb float64
	}
	measure := func(sweep []int, rebalance core.Strategy) map[int]run {
		out := make(map[int]run, len(sweep))
		for _, bpp := range sweep {
			res := mustRun(build(bpp, rebalance), o.iters(d))
			out[bpp] = run{t: res.PerIter, imb: res.Imbalance}
		}
		return out
	}
	static := measure(staticSweep, core.RebalanceOff)
	rebal := measure(rebalSweep, core.RebalanceLPT)
	tRef := static[1].t

	speedupRow := func(name string, runs map[int]run) {
		row := []string{name}
		bestBpp, bestT := 0, 0.0
		for _, bpp := range staticSweep {
			r, ok := runs[bpp]
			if !ok {
				row = append(row, "-")
				continue
			}
			if bestT == 0 || r.t < bestT {
				bestBpp, bestT = bpp, r.t
			}
			row = append(row, f2(tRef/r.t))
		}
		row = append(row, fmt.Sprintf("B/P=%d (%.2fx)", bestBpp, tRef/bestT))
		rep.Rows = append(rep.Rows, row)
	}
	imbalanceRow := func(name string, runs map[int]run) {
		row := []string{name}
		for _, bpp := range staticSweep {
			if r, ok := runs[bpp]; ok {
				row = append(row, f2(r.imb))
			} else {
				row = append(row, "-")
			}
		}
		rep.Rows = append(rep.Rows, append(row, "-"))
	}
	speedupRow("static", static)
	speedupRow("rebalance", rebal)
	imbalanceRow("imbalance-static", static)
	imbalanceRow("imbalance-rebalance", rebal)

	rep.Notes = append(rep.Notes,
		"speedup rows are relative to the naive static decomposition (B/P=1); imbalance rows are max/mean per-rank load (1.00 = perfect)",
		"the rebalancer sweeps only B/P <= 4: its point is reaching balance at coarse granularity, where whole-block migration has room to work",
		"at B/P=1 every rank owns a single block, which whole-block migration cannot split, so the rebalanced run matches the static one exactly",
		"modelled at the measured scale (ModelN = N): the 10^6-target rescale of X1-X7 discounts the duplicated boundary-pair work that granularity refinement costs, the very overhead this figure trades against balance",
		"trajectories are bit-identical to the static deal — the balancer moves bookkeeping, not physics")
	return rep
}
