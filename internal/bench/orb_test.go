package bench

import (
	"testing"

	"hybriddem/internal/core"
)

// TestORBGates: X11's acceptance property. On the moving-cluster bed
// at coarse block granularity the hot patch pins every candidate
// deal's predicted peak, so the LPT re-deal's hysteresis freezes on
// the initial cyclic scatter while the ORB tree keeps re-cutting
// around the drifting load. The gate demands the payoff: at B/P=8 and
// B/P=16 the ORB run's imbalance must be no worse than LPT's and its
// total modelled time — which charges the tree for its own migration
// and repartition work — must be strictly better. The raw Result
// values are compared (the printed X11 cells round the imbalance to
// two decimals, blunter than the margin under test); the runs
// themselves are the same ones the figure prints, via orbBedRun.
func TestORBGates(t *testing.T) {
	o := tiny()
	for _, bpp := range []int{8, 16} {
		lpt := orbBedRun(o, bpp, core.RebalanceLPT)
		orb := orbBedRun(o, bpp, core.RebalanceORB)

		if orb.Imbalance > lpt.Imbalance {
			t.Errorf("B/P=%d: ORB imbalance %.4f worse than LPT %.4f", bpp, orb.Imbalance, lpt.Imbalance)
		}
		if orb.TotalTime >= lpt.TotalTime {
			t.Errorf("B/P=%d: ORB total time %.6f not strictly better than LPT %.6f", bpp, orb.TotalTime, lpt.TotalTime)
		}
		if orb.Imbalance < 1 || lpt.Imbalance < 1 {
			t.Errorf("B/P=%d: impossible imbalance ratio (max/mean < 1): orb %.4f, lpt %.4f", bpp, orb.Imbalance, lpt.Imbalance)
		}

		// The mechanism must be visible in the trace counters: the ORB
		// run adopts repartitions (moving blocks and shifting planes)
		// while the frozen LPT deal moves nothing, and the plane-shift
		// counter stays meaningless for a strategy with no planes.
		if orb.TC.BlocksMoved == 0 {
			t.Errorf("B/P=%d: ORB run migrated no blocks — the tree never adopted a repartition", bpp)
		}
		if orb.TC.CutShifts == 0 {
			t.Errorf("B/P=%d: ORB run shifted no cut planes — adoption left the tree where it started", bpp)
		}
		if lpt.TC.CutShifts != 0 {
			t.Errorf("B/P=%d: LPT run reports %d cut-plane shifts; the block deal has no planes", bpp, lpt.TC.CutShifts)
		}
		if lpt.TC.BlocksMoved != 0 {
			t.Errorf("B/P=%d: LPT moved %d blocks on this bed; the gate's premise is a hysteresis-frozen deal", bpp, lpt.TC.BlocksMoved)
		}
	}
}
