package bench

import (
	"fmt"
	"math/rand"

	"hybriddem/internal/core"
	"hybriddem/internal/geom"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// movingClusterState builds the drifting-bed workload: every particle
// starts inside a dense square patch covering frac of the box edge in
// every dimension, and the whole patch drifts along each axis with a
// common velocity, wrapping through the periodic boundary. The drift
// is chosen so the patch traverses traverseFrac of the box over the
// run's steps — slow enough that a partitioner which re-cuts when the
// load crosses a block face can keep up, but fast enough that a map
// frozen at the initial deal decays as the hot region slides out from
// under it.
func movingClusterState(cfg *core.Config, steps int, frac, traverseFrac float64) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	drift := traverseFrac * cfg.L / (float64(steps) * cfg.Dt)
	st := &core.State{
		Pos: make([]geom.Vec, cfg.N),
		Vel: make([]geom.Vec, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		var p, v geom.Vec
		for d := 0; d < cfg.D; d++ {
			p[d] = frac * cfg.L * rng.Float64()
			v[d] = drift
		}
		st.Pos[i] = p
		st.Vel[i] = v
	}
	cfg.Init = st
}

// ExtraORB compares the adaptive ORB decomposition against the LPT
// block re-deal on a workload neither X6 nor X8 exercises: a dense
// cluster that *moves*. On the static clustered bed of X8 the hot
// blocks are fixed, so one good re-deal is enough and LPT is hard to
// beat. Here the patch drifts across the box and the two strategies
// respond differently, with the winner set by block granularity:
//
//   - at coarse granularity (B/P = 8, 16) one or two indivisible hot
//     blocks pin every candidate deal's predicted peak, so LPT's
//     hysteresis sees nothing worth adopting and freezes on the
//     initial cyclic scatter (blocks-moved stays 0) while its actual
//     balance decays with the drift. The ORB tree re-cuts whenever the
//     patch crosses a block face, keeps its bricks aligned to the
//     load, and ends with both lower imbalance and lower total
//     modelled time — *including* the migration it paid to get there;
//   - at fine granularity (B/P = 64) the tables turn: the scatter
//     deal tracks the drift with cheap single-block moves and near-
//     perfect balance, while bricks must shift whole cut planes and
//     pay the quantisation of contiguity.
//
// The figure reports per-iteration modelled time, total modelled time
// (which adds rebuild, migration, and repartition overhead — the
// balancer's own bill), speedup over the static deal, imbalance, the
// comm/collective split, and the partitioners' effort counters
// (cut-plane shifts, migrated blocks) for B/P 8, 16, and 64 on the
// hybrid P=4 x T=4 configuration. Like X8 it models the measured
// scale (ModelN = N): the balance term under comparison is exactly
// what the 10^6-extrapolation would rescale away.
// The moving-cluster bed's fixed geometry: patch side as a fraction
// of the box edge, and the box fraction the patch crosses per run.
const (
	orbBandFrac     = 0.20
	orbTraverseFrac = 0.03
)

// orbBedRun executes one moving-cluster-bed series for X11: hybrid
// P=4 x T=4 on the Compaq cluster, D=2, synchronous exchange,
// modelled at the measured scale. TestORBGates reuses it so the CI
// gate asserts on exactly the runs the figure prints, on the raw
// Result values rather than the rounded cells.
func orbBedRun(o Options, bpp int, strategy core.Strategy) *core.Result {
	o = o.withDefaults()
	o.ModelN = o.N
	const d = 2
	iters := o.iters(d)

	cfg := o.config(d, 1.5, machine.CompaqES40(), true)
	cfg.Mode = core.Hybrid
	cfg.P = 4
	cfg.T = 4
	cfg.BlocksPerProc = bpp
	cfg.Method = shm.SelectedAtomic
	cfg.Rebalance = strategy
	// Synchronous exchange: the split-phase overlap of X7 hides the
	// halo swap under the core-force pass, which would mask part of
	// the drift-tracking cost this figure compares. The paper's
	// original protocol pays it in the open.
	cfg.Overlap = false
	movingClusterState(&cfg, iters+cfg.Warmup, orbBandFrac, orbTraverseFrac)
	return mustRun(cfg, iters)
}

func ExtraORB(o Options) *Report {
	sweep := []int{8, 16, 64}

	rep := &Report{
		ID:     "X11",
		Title:  "adaptive ORB vs LPT re-deal on the moving-cluster bed, Compaq cluster, hybrid P=4 T=4, D=2",
		Header: []string{"series", "t/iter", "total", "speedup", "imbalance", "comm", "coll", "cut-shifts", "blocks-moved"},
	}

	tRef := 0.0
	row := func(name string, res *core.Result) {
		if tRef == 0 {
			tRef = res.PerIter
		}
		rep.Rows = append(rep.Rows, []string{
			name,
			f3(res.PerIter),
			// Four decimals: the ORB-vs-LPT margin at coarse granularity
			// lives below the millisecond the other figures print.
			fmt.Sprintf("%.4f", res.TotalTime),
			f2(tRef / res.PerIter),
			f2(res.Imbalance),
			f3(res.CommTime),
			f3(res.CollTime),
			fmt.Sprint(res.TC.CutShifts),
			fmt.Sprint(res.TC.BlocksMoved),
		})
	}
	for _, bpp := range sweep {
		row(fmt.Sprintf("static/bpp%d", bpp), orbBedRun(o, bpp, core.RebalanceOff))
		row(fmt.Sprintf("lpt/bpp%d", bpp), orbBedRun(o, bpp, core.RebalanceLPT))
		row(fmt.Sprintf("orb/bpp%d", bpp), orbBedRun(o, bpp, core.RebalanceORB))
	}

	rep.Notes = append(rep.Notes,
		"all particles start in a dense patch covering 20% of the box edge and drift through the periodic boundary, crossing 3% of the box over the run",
		"t/iter covers the timed phases; total adds link rebuilds, migration, and repartition — the load balancer's own overhead; speedup is t/iter relative to the static block-cyclic deal at B/P=8",
		"imbalance is max/mean per-rank force+update time; cut-shifts counts ORB cut-plane moves in adopted repartitions (the LPT deal has no planes and always reports 0); blocks-moved counts whole-block migrations either strategy performed",
		"at B/P=8 and 16 the hot patch pins every deal's predicted peak: LPT's hysteresis freezes on the initial scatter (blocks-moved 0) and pays the repartition collectives for nothing, while the re-cutting ORB tree recovers most of that overhead and edges LPT on both imbalance and total — though the static deal, which never measures costs at all, stays cheapest on this bed; at B/P=64 the drift is worth chasing and the scatter deal's cheap single-block moves win",
		"modelled at the measured scale (ModelN = N), as in X8: the balance term under test is what the 10^6 rescale would discount",
		"trajectories are bit-identical across all three series — both partitioners move bookkeeping, not physics")
	return rep
}
