package bench

import (
	"fmt"
	"math"

	"hybriddem/internal/machine"
)

// paperBase holds the published Tables 1 and 2 (seconds per
// iteration, P0 x t(P0)) keyed by platform/D/rc, in the row order the
// tables print.
type paperBase struct {
	platform string
	d        int
	rc       float64
	t1, t2   float64 // Table 1 (no reorder), Table 2 (reordered)
}

var paperTables = []paperBase{
	{"Sun", 2, 1.5, 3.28, 2.45},
	{"Sun", 2, 2.0, 4.13, 3.31},
	{"Sun", 3, 1.5, 5.68, 4.58},
	{"Sun", 3, 2.0, 9.05, 7.56},
	{"T3E", 2, 1.5, 3.84, 2.93},
	{"T3E", 2, 2.0, 4.97, 3.90},
	{"T3E", 3, 1.5, 7.60, 6.02},
	{"T3E", 3, 2.0, 12.73, 10.60},
	{"CPQ", 2, 1.5, 1.80, 1.19},
	{"CPQ", 2, 2.0, 2.23, 1.57},
	{"CPQ", 3, 1.5, 3.20, 2.19},
	{"CPQ", 3, 2.0, 4.91, 3.74},
}

// Calibration regenerates Tables 1 and 2 and sets them against the
// published values, reporting per-cell deviation and the worst case —
// the automated form of EXPERIMENTS.md's calibration record.
func Calibration(o Options) *Report {
	o = o.withDefaults()
	rep := &Report{
		ID:     "X0",
		Title:  "calibration: serial base times versus the published Tables 1 and 2",
		Header: []string{"Platform/D/rc", "paper T1", "model T1", "dev", "paper T2", "model T2", "dev"},
	}
	worst := 0.0
	for _, ref := range paperTables {
		pf, err := machine.ByName(ref.platform)
		if err != nil {
			panic(err)
		}
		run := func(reorder bool) float64 {
			cfg := o.config(ref.d, ref.rc, pf, reorder)
			return mustRun(cfg, o.iters(ref.d)).PerIter
		}
		m1 := run(false)
		m2 := run(true)
		d1 := m1/ref.t1 - 1
		d2 := m2/ref.t2 - 1
		for _, dv := range []float64{d1, d2} {
			if math.Abs(dv) > worst {
				worst = math.Abs(dv)
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%s/D%d/rc=%.1f", ref.platform, ref.d, ref.rc),
			f2(ref.t1), f2(m1), fmt.Sprintf("%+.0f%%", 100*d1),
			f2(ref.t2), f2(m2), fmt.Sprintf("%+.0f%%", 100*d2),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("worst deviation %.0f%% across all 24 published cells", 100*worst),
		"deviations reflect both calibration error and the scaled-run substitution; -full removes the latter")
	return rep
}
