// Package measure computes the granular observables the underlying
// physics programme cares about — "many poorly understood processes
// such as the way that particles pack together can be investigated
// using DEMs" (Section 2): packing fraction, coordination number,
// radial distribution function, kinetic temperature and the virial
// stress, all evaluated from a particle store and its link list.
package measure

import (
	"fmt"
	"math"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// sphereVolume returns the d-dimensional volume of a sphere of the
// given diameter (length, area or volume for d = 1, 2, 3).
func sphereVolume(d int, diameter float64) float64 {
	r := diameter / 2
	switch d {
	case 1:
		return 2 * r
	case 2:
		return math.Pi * r * r
	case 3:
		return 4.0 / 3.0 * math.Pi * r * r * r
	default:
		panic(fmt.Sprintf("measure: dimension %d", d))
	}
}

// PackingFraction returns the fraction of the box volume occupied by
// the first n particles of the store, treated as spheres of the given
// diameter. The paper's 2-D benchmark packs to ~0.785, the 3-D one to
// ~0.524 (overlaps are not excluded, exactly as in the density
// definition the paper uses).
func PackingFraction(ps *particle.Store, n int, diameter float64, box geom.Box) float64 {
	return float64(n) * sphereVolume(ps.D, diameter) / box.Volume()
}

// Temperature returns the kinetic temperature of the first n
// particles: 2 Ekin / (d N) with unit mass and k_B = 1.
func Temperature(ps *particle.Store, n int) float64 {
	if n == 0 {
		return 0
	}
	return 2 * force.KineticEnergy(ps, n) / float64(ps.D) / float64(n)
}

// Coordination returns the mean number of contacting neighbours per
// core particle — pairs actually within the force range, not merely
// within the list cutoff. Mechanically stable packings sit near the
// isostatic value (2d for frictionless spheres).
func Coordination(ps *particle.Store, links []cell.Link, nCore int, diameter float64, box geom.Box) float64 {
	if nCore == 0 {
		return 0
	}
	d2 := diameter * diameter
	contacts := 0
	for _, l := range links {
		if box.Dist2At(&ps.Pos, l.I, l.J) < d2 {
			contacts++ // every link touches at least one core particle
			if int(l.J) < nCore && int(l.I) < nCore {
				contacts++ // both ends core: the contact counts for each
			}
		}
	}
	return float64(contacts) / float64(nCore)
}

// RDF is a radial distribution function estimate.
type RDF struct {
	RMax float64   // outermost radius measured
	Bins []float64 // g(r) per shell, ideal-gas normalised
}

// BinCenters returns the radius at the middle of each shell.
func (r *RDF) BinCenters() []float64 {
	dr := r.RMax / float64(len(r.Bins))
	out := make([]float64, len(r.Bins))
	for i := range out {
		out[i] = (float64(i) + 0.5) * dr
	}
	return out
}

// PairCorrelation histograms the link-list separations of the first
// nCore particles into bins shells out to rmax and normalises against
// the ideal gas, so g(r) → 1 at large r (within the list cutoff) and
// shows the contact peak at r = diameter. Only pair separations the
// link list resolves (r < rc) are meaningful; pass rmax <= rc.
func PairCorrelation(ps *particle.Store, links []cell.Link, nCore int, box geom.Box, rmax float64, bins int) *RDF {
	if bins < 1 || rmax <= 0 {
		panic(fmt.Sprintf("measure: rdf bins=%d rmax=%g", bins, rmax))
	}
	h := make([]float64, bins)
	dr := rmax / float64(bins)
	for _, l := range links {
		r := math.Sqrt(box.Dist2At(&ps.Pos, l.I, l.J))
		if r >= rmax {
			continue
		}
		w := 2.0 // each pair contributes to both particles' environments
		if int(l.J) >= nCore || int(l.I) >= nCore {
			w = 1.0 // halo pairs are counted once by this block
		}
		h[int(r/dr)] += w
	}
	// Ideal-gas normalisation: rho * shellVolume * N pairs expected.
	d := ps.D
	rho := float64(nCore) / box.Volume()
	out := &RDF{RMax: rmax, Bins: make([]float64, bins)}
	for i := range h {
		rIn := float64(i) * dr
		rOut := rIn + dr
		var shell float64
		switch d {
		case 1:
			shell = 2 * dr
		case 2:
			shell = math.Pi * (rOut*rOut - rIn*rIn)
		default:
			shell = 4.0 / 3.0 * math.Pi * (rOut*rOut*rOut - rIn*rIn*rIn)
		}
		expected := rho * shell * float64(nCore)
		if expected > 0 {
			out.Bins[i] = h[i] / expected
		}
	}
	return out
}

// Stress returns the virial stress tensor (d x d, row-major) of the
// first nCore particles under the given force law: the kinetic term
// plus the pairwise virial, divided by the box volume. The trace/d is
// (minus) the pressure.
func Stress(ps *particle.Store, links []cell.Link, nCore int, sp force.Spring, box geom.Box) []float64 {
	d := ps.D
	s := make([]float64, d*d)
	// Kinetic part.
	for i := 0; i < nCore; i++ {
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				s[a*d+b] += ps.Vel[a][i] * ps.Vel[b][i]
			}
		}
	}
	// Virial part: sum over pairs of r_ab f_ab. Halo pairs count half
	// (the neighbouring block holds the mirror).
	for _, l := range links {
		disp := box.DispAt(&ps.Pos, l.I, l.J)
		rel := geom.SubAt(&ps.Vel, l.J, l.I, d)
		fi, _, contact := sp.PairID(ps.ID[l.I], ps.ID[l.J], disp, rel, d)
		if !contact {
			continue
		}
		w := 1.0
		if int(l.I) >= nCore || int(l.J) >= nCore {
			w = 0.5
		}
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				// disp points i -> j; fi acts on i.
				s[a*d+b] -= w * disp[a] * fi[b]
			}
		}
	}
	vol := box.Volume()
	for k := range s {
		s[k] /= vol
	}
	return s
}

// Pressure returns the scalar pressure from the virial stress.
func Pressure(ps *particle.Store, links []cell.Link, nCore int, sp force.Spring, box geom.Box) float64 {
	s := Stress(ps, links, nCore, sp, box)
	d := ps.D
	tr := 0.0
	for a := 0; a < d; a++ {
		tr += s[a*d+a]
	}
	return tr / float64(d)
}
