package measure

import (
	"math"
	"math/rand"
	"testing"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

func TestSphereVolume(t *testing.T) {
	if sphereVolume(1, 2) != 2 {
		t.Error("1-D")
	}
	if math.Abs(sphereVolume(2, 2)-math.Pi) > 1e-12 {
		t.Error("2-D")
	}
	if math.Abs(sphereVolume(3, 2)-4.0/3.0*math.Pi) > 1e-12 {
		t.Error("3-D")
	}
}

func TestPackingFractionMatchesPaperDensities(t *testing.T) {
	// The paper's benchmark: 10^6 spheres of d=0.05. D=2 in a 50^2
	// box -> area fraction ~0.785; D=3 in 5^3 -> ~0.524. Checked at
	// reduced N with the same density.
	ps2 := particle.New(2, 1)
	ps2.Append(geom.Vec{}, geom.Vec{}, 0)
	box2 := geom.NewBox(2, 50.0/1000, geom.Periodic) // one particle per (L/1000)^2 cell
	got2 := PackingFraction(ps2, 1, 0.05, box2)
	if math.Abs(got2-0.785) > 0.01 {
		t.Errorf("2-D packing fraction %g", got2)
	}
	ps3 := particle.New(3, 1)
	ps3.Append(geom.Vec{}, geom.Vec{}, 0)
	box3 := geom.NewBox(3, 5.0/100, geom.Periodic)
	got3 := PackingFraction(ps3, 1, 0.05, box3)
	if math.Abs(got3-0.524) > 0.01 {
		t.Errorf("3-D packing fraction %g", got3)
	}
}

func TestTemperature(t *testing.T) {
	ps := particle.New(2, 2)
	ps.Append(geom.Vec{}, geom.Vec{1, 0}, 0)
	ps.Append(geom.Vec{}, geom.Vec{0, 1}, 1)
	// Ekin = 1; T = 2*1/(2*2) = 0.5.
	if got := Temperature(ps, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("temperature %g", got)
	}
	if Temperature(ps, 0) != 0 {
		t.Error("empty temperature")
	}
}

func TestCoordinationCountsContactsOnly(t *testing.T) {
	// Three collinear particles: 0-1 touching, 1-2 in list but apart.
	ps := particle.New(2, 3)
	ps.Append(geom.Vec{0.50, 0.5}, geom.Vec{}, 0)
	ps.Append(geom.Vec{0.54, 0.5}, geom.Vec{}, 1)
	ps.Append(geom.Vec{0.61, 0.5}, geom.Vec{}, 2)
	box := geom.NewBox(2, 1, geom.Periodic)
	links := []cell.Link{{I: 0, J: 1}, {I: 1, J: 2}}
	// Contact distance 0.05: only 0-1 touch (0.04 < 0.05 < 0.07).
	z := Coordination(ps, links, 3, 0.05, box)
	want := 2.0 / 3.0 // one contact shared by two of three particles
	if math.Abs(z-want) > 1e-12 {
		t.Errorf("coordination %g, want %g", z, want)
	}
}

func TestCoordinationHaloWeight(t *testing.T) {
	// Core-halo contact counts once for the single core particle.
	ps := particle.New(2, 2)
	ps.Append(geom.Vec{0.50, 0.5}, geom.Vec{}, 0)
	ps.Append(geom.Vec{0.54, 0.5}, geom.Vec{}, 1) // halo copy
	box := geom.NewBox(2, 1, geom.Reflecting)
	links := []cell.Link{{I: 0, J: 1}}
	z := Coordination(ps, links, 1, 0.05, box)
	if z != 1 {
		t.Errorf("halo coordination %g", z)
	}
}

// denseSystem builds an equilibrated-ish random system with its list.
func denseSystem(t *testing.T, n int) (*particle.Store, *cell.List, geom.Box, force.Spring) {
	t.Helper()
	box := geom.NewBox(2, 1.0, geom.Periodic)
	ps := particle.New(2, n)
	rng := rand.New(rand.NewSource(9))
	particle.FillUniformVel(ps, n, box, 0.2, 0, rng)
	sp := force.Spring{Diameter: 0.04, K: 100}
	rc := 0.06
	g := cell.NewGrid(2, geom.Vec{}, box.Len, rc, true)
	g.Bin(&ps.Pos, n, nil)
	list := g.BuildLinks(&ps.Pos, n, n, rc*rc, box, nil)
	return ps, list, box, sp
}

func TestPairCorrelationApproachesOne(t *testing.T) {
	// For an uncorrelated (uniform random) configuration g(r) ~ 1 in
	// every resolved shell.
	ps, list, box, _ := denseSystem(t, 4000)
	rdf := PairCorrelation(ps, list.Links, ps.Len(), box, 0.055, 8)
	centers := rdf.BinCenters()
	if len(centers) != 8 || centers[0] <= 0 {
		t.Fatalf("bin centers %v", centers)
	}
	for i, g := range rdf.Bins {
		if i == 0 {
			continue // innermost shell is noisy at this density
		}
		if g < 0.7 || g > 1.3 {
			t.Errorf("bin %d: g(r)=%g for an uncorrelated system", i, g)
		}
	}
}

func TestPairCorrelationPanicsOnBadArgs(t *testing.T) {
	ps, list, box, _ := denseSystem(t, 100)
	defer func() {
		if recover() == nil {
			t.Error("bad rdf args accepted")
		}
	}()
	PairCorrelation(ps, list.Links, ps.Len(), box, -1, 0)
}

func TestStressSymmetricAndPressurePositive(t *testing.T) {
	// A compressed random packing must push outward: positive
	// pressure, symmetric stress tensor.
	box := geom.NewBox(2, 1.0, geom.Periodic)
	ps := particle.New(2, 3000)
	rng := rand.New(rand.NewSource(4))
	particle.FillUniform(ps, 3000, box, 0, rng)
	sp := force.Spring{Diameter: 0.04, K: 100} // overlapping at this density
	rc := 0.06
	g := cell.NewGrid(2, geom.Vec{}, box.Len, rc, true)
	g.Bin(&ps.Pos, 3000, nil)
	list := g.BuildLinks(&ps.Pos, 3000, 3000, rc*rc, box, nil)

	s := Stress(ps, list.Links, 3000, sp, box)
	if math.Abs(s[1]-s[2]) > 1e-9*(math.Abs(s[1])+math.Abs(s[2])+1e-30) {
		t.Errorf("stress not symmetric: %v", s)
	}
	p := Pressure(ps, list.Links, 3000, sp, box)
	if p <= 0 {
		t.Errorf("compressed packing pressure %g", p)
	}
}

func TestStressIdealGasLimit(t *testing.T) {
	// Without interactions the pressure is the ideal-gas value
	// rho * T (unit mass, k_B = 1).
	box := geom.NewBox(2, 1.0, geom.Periodic)
	ps := particle.New(2, 2000)
	rng := rand.New(rand.NewSource(6))
	particle.FillUniformVel(ps, 2000, box, 1, 0, rng)
	sp := force.Spring{Diameter: 1e-9, K: 0} // effectively no contacts
	p := Pressure(ps, nil, 2000, sp, box)
	want := float64(2000) / box.Volume() * Temperature(ps, 2000)
	if math.Abs(p-want) > 1e-9*want {
		t.Errorf("ideal-gas pressure %g, want %g", p, want)
	}
}
