package force

import (
	"math"
	"testing"

	"hybriddem/internal/cell"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// oscillatorError integrates two bonded particles — a harmonic
// oscillator in the relative coordinate with ω = sqrt(2K) — for three
// periods with leapfrog-consistent half-step initial velocities and
// returns the maximum separation error against the analytic solution.
func oscillatorError(dt float64) float64 {
	const (
		K    = 100.0
		A    = 0.1
		rest = 0.5
	)
	omega := math.Sqrt(2 * K)
	ps := particle.New(1, 2)
	ps.Append(geom.Vec{5 - (rest+A)/2}, geom.Vec{}, 0)
	ps.Append(geom.Vec{5 + (rest+A)/2}, geom.Vec{}, 1)
	vhalf := A * omega * math.Sin(omega*dt/2) / 2
	ps.Vel[0][0] = -vhalf
	ps.Vel[0][1] = +vhalf
	bt := NewBondTable(2, 1, K, 0)
	if err := bt.Add(0, 1, rest); err != nil {
		panic(err)
	}
	sp := Spring{Diameter: rest, K: 0, Bonds: bt}
	box := geom.NewBox(1, 10, geom.Reflecting)
	links := []cell.Link{{I: 0, J: 1}}
	steps := int(3 * 2 * math.Pi / omega / dt)
	maxe := 0.0
	for i := 0; i < steps; i++ {
		t := float64(i) * dt
		sep := ps.Pos[0][1] - ps.Pos[0][0]
		want := rest + A*math.Cos(omega*t)
		if e := math.Abs(sep - want); e > maxe {
			maxe = e
		}
		ps.ZeroForces()
		sp.Accumulate(ps, links, 2, box, 1, nil)
		Integrate(ps, 2, dt, box, WrapGlobal, nil)
	}
	return maxe
}

// TestIntegratorSecondOrder validates the paper's "standard
// second-order accurate scheme": halving the step must quarter the
// trajectory error (the kick-drift update is leapfrog once velocities
// are read at half steps).
func TestIntegratorSecondOrder(t *testing.T) {
	e1 := oscillatorError(4e-3)
	e2 := oscillatorError(2e-3)
	e3 := oscillatorError(1e-3)
	r12 := e1 / e2
	r23 := e2 / e3
	for _, r := range []float64{r12, r23} {
		if r < 3.5 || r > 4.5 {
			t.Errorf("convergence ratio %.2f, want ~4 (errors %g %g %g)", r, e1, e2, e3)
		}
	}
}

// TestIntegratorEnergyBounded: over many periods the leapfrog's
// energy error must stay bounded (no secular drift), a symplectic
// property a naive Euler scheme would fail.
func TestIntegratorEnergyBounded(t *testing.T) {
	const K, rest, A = 100.0, 0.5, 0.1
	ps := particle.New(1, 2)
	ps.Append(geom.Vec{5 - (rest+A)/2}, geom.Vec{}, 0)
	ps.Append(geom.Vec{5 + (rest+A)/2}, geom.Vec{}, 1)
	bt := NewBondTable(2, 1, K, 0)
	if err := bt.Add(0, 1, rest); err != nil {
		t.Fatal(err)
	}
	sp := Spring{Diameter: rest, K: 0, Bonds: bt}
	box := geom.NewBox(1, 10, geom.Reflecting)
	links := []cell.Link{{I: 0, J: 1}}
	dt := 1e-3
	var e0, emin, emax float64
	for i := 0; i < 200000; i++ { // ~450 periods
		ps.ZeroForces()
		epot := sp.Accumulate(ps, links, 2, box, 1, nil)
		etot := epot + KineticEnergy(ps, 2)
		if i == 0 {
			e0, emin, emax = etot, etot, etot
		}
		if etot < emin {
			emin = etot
		}
		if etot > emax {
			emax = etot
		}
		Integrate(ps, 2, dt, box, WrapGlobal, nil)
	}
	if (emax-emin)/e0 > 0.05 {
		t.Errorf("energy envelope %.3f%% of E0 over 450 periods", 100*(emax-emin)/e0)
	}
}
