package force

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"hybriddem/internal/geom"
)

func TestBondTableAddAndLookup(t *testing.T) {
	bt := NewBondTable(4, 3, 10, 0)
	if err := bt.Add(0, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := bt.Add(1, 2, 0.2); err != nil {
		t.Fatal(err)
	}
	if bt.NumBonds() != 2 {
		t.Errorf("NumBonds = %d", bt.NumBonds())
	}
	if r, ok := bt.Bonded(0, 1); !ok || r != 0.1 {
		t.Errorf("Bonded(0,1) = %g, %v", r, ok)
	}
	if r, ok := bt.Bonded(1, 0); !ok || r != 0.1 {
		t.Errorf("bond not symmetric: %g, %v", r, ok)
	}
	if _, ok := bt.Bonded(0, 2); ok {
		t.Error("phantom bond")
	}
	if got := bt.BondsOf(1); len(got) != 2 {
		t.Errorf("BondsOf(1) = %v", got)
	}
	if bt.MaxRest() != 0.2 {
		t.Errorf("MaxRest = %g", bt.MaxRest())
	}
}

func TestBondTableErrors(t *testing.T) {
	bt := NewBondTable(4, 1, 10, 0)
	if err := bt.Add(0, 0, 0.1); err == nil {
		t.Error("self bond accepted")
	}
	if err := bt.Add(0, 1, -1); err == nil {
		t.Error("negative rest accepted")
	}
	if err := bt.Add(0, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := bt.Add(0, 1, 0.1); err == nil {
		t.Error("duplicate bond accepted")
	}
	if err := bt.Add(0, 2, 0.1); err == nil {
		t.Error("bond slot overflow accepted")
	}
}

func TestBondForceRestoresRestLength(t *testing.T) {
	bt := NewBondTable(2, 2, 100, 0)
	if err := bt.Add(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	sp := Spring{Diameter: 0.5, K: 1, Bonds: bt}

	// Stretched bond: force on i pulls towards j (+disp direction).
	fi, e, contact := sp.PairID(0, 1, geom.Vec{0.7, 0, 0}, geom.Vec{}, 3)
	if !contact {
		t.Fatal("bonded pair not flagged as interacting")
	}
	if fi[0] <= 0 {
		t.Errorf("stretched bond force %v should pull i towards j", fi)
	}
	if math.Abs(e-0.5*100*0.04) > 1e-12 {
		t.Errorf("stretched bond energy %g", e)
	}
	// Compressed bond: pushes apart.
	fi, _, _ = sp.PairID(0, 1, geom.Vec{0.3, 0, 0}, geom.Vec{}, 3)
	if fi[0] >= 0 {
		t.Errorf("compressed bond force %v should push i away", fi)
	}
	// At rest: no force.
	fi, e, _ = sp.PairID(0, 1, geom.Vec{0.5, 0, 0}, geom.Vec{}, 3)
	if geom.Norm(fi, 3) > 1e-12 || e > 1e-15 {
		t.Errorf("rest bond force %v energy %g", fi, e)
	}
	// Unbonded pair uses the plain contact force (none at r=0.7 > d).
	fi, _, contact = sp.PairID(0, 0, geom.Vec{0.7, 0, 0}, geom.Vec{}, 3)
	_ = fi
	if contact {
		t.Error("unbonded distant pair in contact")
	}
}

func TestBondDampingOpposesStretchRate(t *testing.T) {
	bt := NewBondTable(2, 2, 0, 5) // pure damper
	if err := bt.Add(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	sp := Spring{Diameter: 0.5, Bonds: bt}
	// j receding from i: relative velocity along +disp; damping pulls
	// i after j.
	fi, _, _ := sp.PairID(0, 1, geom.Vec{0.5, 0, 0}, geom.Vec{1, 0, 0}, 3)
	if fi[0] <= 0 {
		t.Errorf("damping should resist separation: %v", fi)
	}
	fi, _, _ = sp.PairID(0, 1, geom.Vec{0.5, 0, 0}, geom.Vec{-1, 0, 0}, 3)
	if fi[0] >= 0 {
		t.Errorf("damping should resist approach: %v", fi)
	}
}

func TestMaxBondStrain(t *testing.T) {
	bt := NewBondTable(3, 2, 10, 0)
	if err := bt.Add(0, 1, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := bt.Add(1, 2, 1.0); err != nil {
		t.Fatal(err)
	}
	box := geom.NewBox(2, 100, geom.Reflecting)
	pos := []geom.Vec{{0, 0}, {1.2, 0}, {1.2, 1.0}}
	got := bt.MaxBondStrain(pos, box)
	if math.Abs(got-0.2) > 1e-9 {
		t.Errorf("MaxBondStrain = %g, want 0.2", got)
	}
}

func TestPairIDWithoutBondsEqualsPair(t *testing.T) {
	sp := Spring{Diameter: 0.2, K: 30}
	disp := geom.Vec{0.1, 0.05, 0}
	f1, e1, c1 := sp.Pair(disp, geom.Vec{}, 3)
	f2, e2, c2 := sp.PairID(3, 7, disp, geom.Vec{}, 3)
	if f1 != f2 || e1 != e2 || c1 != c2 {
		t.Error("PairID without bonds diverges from Pair")
	}
}

func TestBondTableGobRoundTrip(t *testing.T) {
	bt := NewBondTable(6, 3, 25, 0.5)
	for _, b := range [][2]int32{{0, 1}, {1, 2}, {3, 5}} {
		if err := bt.Add(b[0], b[1], 0.04); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(bt); err != nil {
		t.Fatal(err)
	}
	var got BondTable
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(bt) {
		t.Fatal("decoded table differs from the original")
	}
	if got.NumBonds() != 3 || got.K != 25 || got.Damp != 0.5 {
		t.Errorf("decoded constants wrong: %d bonds, K=%g, damp=%g", got.NumBonds(), got.K, got.Damp)
	}
	if rest, ok := got.Bonded(3, 5); !ok || rest != 0.04 {
		t.Errorf("bond 3-5 lost in transit: rest=%g ok=%v", rest, ok)
	}
	if err := got.GobDecode([]byte("not a table")); err == nil {
		t.Error("garbage decoded without error")
	}
}

func TestBondTableEqualIgnoresSlotLayout(t *testing.T) {
	a := NewBondTable(4, 2, 10, 0)
	b := NewBondTable(4, 3, 10, 0) // different capacity
	// Same bond set added in different orders.
	for _, p := range [][2]int32{{0, 1}, {2, 3}} {
		if err := a.Add(p[0], p[1], 0.05); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range [][2]int32{{2, 3}, {0, 1}} {
		if err := b.Add(p[0], p[1], 0.05); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("equal bond sets compared unequal")
	}
	c := NewBondTable(4, 2, 10, 0)
	if err := c.Add(0, 1, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(2, 3, 0.06); err != nil { // different rest
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different rest lengths compared equal")
	}
	var nilT *BondTable
	if nilT.Equal(a) || a.Equal(nilT) || !nilT.Equal(nil) {
		t.Error("nil comparisons wrong")
	}
}
