package force

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"hybriddem/internal/geom"
)

// BondTable records the permanent bonds that glue basic particles
// into composite grains: "collections of simpler basic particles
// stuck together with permanent bonds made of dissipative springs"
// (Section 2). Bonds are keyed by persistent particle ID so they
// survive reordering, migration and halo replication unchanged.
//
// A bonded pair interacts through a two-sided spring about the bond
// rest length instead of the one-sided contact force. Rest lengths
// must stay below the cutoff rc so bonded pairs always appear in the
// link list; the grain builders enforce a margin.
type BondTable struct {
	K    float64 // bond stiffness
	Damp float64 // bond damping (dissipative spring)

	maxBonds int
	partner  []int32   // [id*maxBonds + k], -1 when empty
	rest     []float64 // matching rest lengths
	count    int       // total bonds
}

// NewBondTable creates a table for n particles with at most maxBonds
// bonds each.
func NewBondTable(n, maxBonds int, k, damp float64) *BondTable {
	if n < 1 || maxBonds < 1 {
		panic(fmt.Sprintf("force: bond table n=%d maxBonds=%d", n, maxBonds))
	}
	bt := &BondTable{
		K: k, Damp: damp,
		maxBonds: maxBonds,
		partner:  make([]int32, n*maxBonds),
		rest:     make([]float64, n*maxBonds),
	}
	for i := range bt.partner {
		bt.partner[i] = -1
	}
	return bt
}

// NumBonds returns the number of bonds added.
func (bt *BondTable) NumBonds() int { return bt.count }

// MaxRest returns the longest rest length in the table.
func (bt *BondTable) MaxRest() float64 {
	maxr := 0.0
	for i, p := range bt.partner {
		if p >= 0 && bt.rest[i] > maxr {
			maxr = bt.rest[i]
		}
	}
	return maxr
}

// Add bonds particles a and b (by ID) at the given rest length. It is
// an error to add a duplicate bond or exceed a particle's bond slots.
func (bt *BondTable) Add(a, b int32, rest float64) error {
	if a == b {
		return fmt.Errorf("force: self-bond on particle %d", a)
	}
	if rest <= 0 {
		return fmt.Errorf("force: bond rest length %g", rest)
	}
	if _, ok := bt.Bonded(a, b); ok {
		return fmt.Errorf("force: duplicate bond %d-%d", a, b)
	}
	add := func(x, y int32) error {
		base := int(x) * bt.maxBonds
		for k := 0; k < bt.maxBonds; k++ {
			if bt.partner[base+k] == -1 {
				bt.partner[base+k] = y
				bt.rest[base+k] = rest
				return nil
			}
		}
		return fmt.Errorf("force: particle %d exceeds %d bonds", x, bt.maxBonds)
	}
	if err := add(a, b); err != nil {
		return err
	}
	if err := add(b, a); err != nil {
		return err
	}
	bt.count++
	return nil
}

// Bonded reports whether a and b are bonded and the bond rest length.
// The scan is over a fixed handful of slots, cheap enough for the
// force loop's hot path.
func (bt *BondTable) Bonded(a, b int32) (rest float64, ok bool) {
	if int(a)*bt.maxBonds >= len(bt.partner) {
		return 0, false
	}
	base := int(a) * bt.maxBonds
	for k := 0; k < bt.maxBonds; k++ {
		if bt.partner[base+k] == b {
			return bt.rest[base+k], true
		}
	}
	return 0, false
}

// BondsOf returns the bonded partner IDs of particle a (for tests and
// diagnostics).
func (bt *BondTable) BondsOf(a int32) []int32 {
	var out []int32
	base := int(a) * bt.maxBonds
	for k := 0; k < bt.maxBonds; k++ {
		if p := bt.partner[base+k]; p >= 0 {
			out = append(out, p)
		}
	}
	return out
}

// bondTableWire is the gob wire form of a BondTable. The slot arrays
// are keyed by persistent particle ID, so a decoded table is valid
// regardless of how the run reordered or migrated particles since.
type bondTableWire struct {
	K, Damp  float64
	MaxBonds int
	Partner  []int32
	Rest     []float64
	Count    int
}

// GobEncode serialises the table, private slot arrays included, so
// snapshots can carry the full grain topology.
func (bt *BondTable) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(bondTableWire{
		K: bt.K, Damp: bt.Damp,
		MaxBonds: bt.maxBonds,
		Partner:  bt.partner,
		Rest:     bt.rest,
		Count:    bt.count,
	})
	return buf.Bytes(), err
}

// GobDecode restores a table written by GobEncode.
func (bt *BondTable) GobDecode(p []byte) error {
	var w bondTableWire
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&w); err != nil {
		return err
	}
	if w.MaxBonds < 1 || len(w.Partner) != len(w.Rest) || len(w.Partner)%w.MaxBonds != 0 {
		return fmt.Errorf("force: corrupt bond table: maxBonds=%d, %d partners, %d rests",
			w.MaxBonds, len(w.Partner), len(w.Rest))
	}
	bt.K, bt.Damp = w.K, w.Damp
	bt.maxBonds = w.MaxBonds
	bt.partner = w.Partner
	bt.rest = w.Rest
	bt.count = w.Count
	return nil
}

// Equal reports whether two tables bind the same particle pairs at the
// same rest lengths under the same spring constants. The comparison is
// by bond set, not slot layout, so tables built in different insertion
// orders (or with different per-particle capacities) still compare
// equal.
func (bt *BondTable) Equal(o *BondTable) bool {
	if bt == nil || o == nil {
		return bt == o
	}
	if bt.K != o.K || bt.Damp != o.Damp || bt.count != o.count {
		return false
	}
	for id := 0; id < len(bt.partner)/bt.maxBonds; id++ {
		base := id * bt.maxBonds
		for k := 0; k < bt.maxBonds; k++ {
			p := bt.partner[base+k]
			if p < 0 {
				continue
			}
			rest, ok := o.Bonded(int32(id), p)
			if !ok || rest != bt.rest[base+k] {
				return false
			}
		}
	}
	// Equal pair counts plus every bond of bt present in o with the
	// same rest length implies the sets coincide.
	return true
}

// pairBond computes the bond force on the first particle of a bonded
// pair: a two-sided dissipative spring about the rest length.
func (bt *BondTable) pairBond(rest float64, disp, relVel geom.Vec, d int) (fi geom.Vec, e float64) {
	r2 := geom.Norm2(disp, d)
	if r2 == 0 {
		return geom.Vec{}, 0
	}
	r := math.Sqrt(r2)
	inv := 1.0 / r
	stretch := r - rest
	// Positive stretch pulls i towards j: along +disp.
	mag := bt.K * stretch
	if bt.Damp > 0 {
		vn := geom.Dot(relVel, disp, d) * inv
		mag += bt.Damp * vn
	}
	var f geom.Vec
	for k := 0; k < d; k++ {
		f[k] = mag * disp[k] * inv
	}
	return f, 0.5 * bt.K * stretch * stretch
}

// PairID evaluates the pair interaction with bond awareness: bonded
// pairs (by ID) use the two-sided bond spring, everything else the
// one-sided contact force. With no bond table it is exactly Pair.
func (s Spring) PairID(idI, idJ int32, disp, relVel geom.Vec, d int) (fi geom.Vec, e float64, contact bool) {
	if s.Bonds != nil {
		if rest, ok := s.Bonds.Bonded(idI, idJ); ok {
			f, e := s.Bonds.pairBond(rest, disp, relVel, d)
			return f, e, true
		}
	}
	return s.Pair(disp, relVel, d)
}

// MaxBondStrain returns the largest relative deviation from rest
// length across all bonds, given positions indexed by ID; grains are
// intact while this stays well below (rc - rest)/rest.
func (bt *BondTable) MaxBondStrain(pos []geom.Vec, box geom.Box) float64 {
	maxs := 0.0
	for id := 0; id < len(bt.partner)/bt.maxBonds; id++ {
		base := id * bt.maxBonds
		for k := 0; k < bt.maxBonds; k++ {
			p := bt.partner[base+k]
			if p < 0 || int(p) < id {
				continue // count each bond once
			}
			r := math.Sqrt(box.Dist2(pos[id], pos[p]))
			s := math.Abs(r-bt.rest[base+k]) / bt.rest[base+k]
			if s > maxs {
				maxs = s
			}
		}
	}
	return maxs
}
