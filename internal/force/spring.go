// Package force implements the pairwise interaction and the time
// integrator of the paper's test code: identical elastic spheres whose
// contact force costs "one floating point inverse and one square root"
// per pair, optional dissipative damping (the grain-bond model of the
// full Physics DEM), and a second-order accurate kick-drift update.
package force

import (
	"math"

	"hybriddem/internal/cell"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
	"hybriddem/internal/trace"
)

// Spring is a linear repulsive contact force between spheres of equal
// diameter: for separation r < Diameter the pair repels with magnitude
// K*(Diameter-r), plus an optional dissipative term Damp*vn along the
// contact normal (a "dissipative spring", zero for the elastic
// benchmark). Particle mass is 1.
type Spring struct {
	Diameter float64 // contact distance; rmax of the model
	K        float64 // spring stiffness
	Damp     float64 // normal damping coefficient, >= 0

	// Hertz switches the contact law from the paper's linear spring
	// to the Hertzian K*overlap^(3/2) of elastic-sphere contact
	// mechanics — softer at grazing contact, stiffer when deeply
	// compressed. Provided as a model extension; all benchmarks use
	// the linear law.
	Hertz bool

	// Bonds, when non-nil, overrides the contact force for the
	// permanently bonded pairs of composite grains (see BondTable).
	Bonds *BondTable
}

// RMax returns the longest force range, which for a contact model is
// the sphere diameter.
func (s Spring) RMax() float64 { return s.Diameter }

// PairEnergy returns the potential energy stored at separation r.
func (s Spring) PairEnergy(r float64) float64 {
	if r >= s.Diameter {
		return 0
	}
	o := s.Diameter - r
	if s.Hertz {
		return 0.4 * s.K * o * o * math.Sqrt(o)
	}
	return 0.5 * s.K * o * o
}

// Pair computes the force the pair exerts on particle i (the force on
// j is the negative) and the pair potential energy, given the
// displacement from i to j and the relative velocity vj-vi. It mirrors
// the paper's cost profile: one sqrt and one divide on the hot path.
func (s Spring) Pair(disp, relVel geom.Vec, d int) (fi geom.Vec, e float64, contact bool) {
	r2 := geom.Norm2(disp, d)
	if r2 >= s.Diameter*s.Diameter || r2 == 0 {
		return geom.Vec{}, 0, false
	}
	r := math.Sqrt(r2)
	inv := 1.0 / r
	overlap := s.Diameter - r
	// Repulsion pushes i away from j: along -disp.
	var mag, epair float64
	if s.Hertz {
		h := overlap * math.Sqrt(overlap)
		mag = s.K * h
		epair = 0.4 * s.K * h * overlap // integral of K o^(3/2)
	} else {
		mag = s.K * overlap
		epair = 0.5 * s.K * overlap * overlap
	}
	if s.Damp > 0 {
		// Normal component of the approach velocity; damping opposes
		// relative motion along the contact normal.
		vn := geom.Dot(relVel, disp, d) * inv
		mag -= s.Damp * vn
	}
	for k := 0; k < d; k++ {
		fi[k] = -mag * disp[k] * inv
	}
	return fi, epair, true
}

// Accumulate walks links, adding pair forces into ps.Frc and returning
// the accumulated potential energy scaled by energyScale (the paper
// multiplies halo-link energy by one half to avoid double counting
// between replicating blocks). Forces are applied to link endpoint I
// always and to J only when J < nCore: halo copies never need forces
// since their home block computes the mirrored update itself.
//
// This is the serial kernel; the thread-parallel variants with their
// five update-protection strategies live in internal/shm.
func (s Spring) Accumulate(ps *particle.Store, links []cell.Link, nCore int, box geom.Box, energyScale float64, tc *trace.Counters) float64 {
	d := ps.D
	epot := 0.0
	pos, vel, frc, ids := ps.Pos, ps.Vel, ps.Frc, ps.ID
	var distSum, contacts int64
	for _, l := range links {
		disp := box.Disp(pos[l.I], pos[l.J])
		rel := geom.Sub(vel[l.J], vel[l.I], d)
		fi, e, contact := s.PairID(ids[l.I], ids[l.J], disp, rel, d)
		if contact {
			contacts++
		}
		epot += e
		for k := 0; k < d; k++ {
			frc[l.I][k] += fi[k]
		}
		if int(l.J) < nCore {
			for k := 0; k < d; k++ {
				frc[l.J][k] -= fi[k]
			}
		}
		di := int64(l.I) - int64(l.J)
		if di < 0 {
			di = -di
		}
		distSum += di
	}
	if tc != nil {
		n := int64(len(links))
		tc.ForceEvals += n
		tc.LinkVisits += n
		tc.Contacts += contacts
		tc.ForceUpdates += 2 * n
		tc.LinkIndexDistSum += distSum
		tc.LinkIndexDistN += n
	}
	return epot * energyScale
}

// PotentialOnly walks links summing pair potential energy without
// touching the force array; used by invariant tests.
func (s Spring) PotentialOnly(ps *particle.Store, links []cell.Link, box geom.Box, scale float64) float64 {
	d := ps.D
	epot := 0.0
	for _, l := range links {
		disp := box.Disp(ps.Pos[l.I], ps.Pos[l.J])
		r2 := geom.Norm2(disp, d)
		if r2 < s.Diameter*s.Diameter {
			epot += s.PairEnergy(math.Sqrt(r2))
		}
	}
	return epot * scale
}
