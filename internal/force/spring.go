// Package force implements the pairwise interaction and the time
// integrator of the paper's test code: identical elastic spheres whose
// contact force costs "one floating point inverse and one square root"
// per pair, optional dissipative damping (the grain-bond model of the
// full Physics DEM), and a second-order accurate kick-drift update.
package force

import (
	"math"

	"hybriddem/internal/cell"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
	"hybriddem/internal/trace"
)

// Spring is a linear repulsive contact force between spheres of equal
// diameter: for separation r < Diameter the pair repels with magnitude
// K*(Diameter-r), plus an optional dissipative term Damp*vn along the
// contact normal (a "dissipative spring", zero for the elastic
// benchmark). Particle mass is 1.
type Spring struct {
	Diameter float64 // contact distance; rmax of the model
	K        float64 // spring stiffness
	Damp     float64 // normal damping coefficient, >= 0

	// Hertz switches the contact law from the paper's linear spring
	// to the Hertzian K*overlap^(3/2) of elastic-sphere contact
	// mechanics — softer at grazing contact, stiffer when deeply
	// compressed. Provided as a model extension; all benchmarks use
	// the linear law.
	Hertz bool

	// Bonds, when non-nil, overrides the contact force for the
	// permanently bonded pairs of composite grains (see BondTable).
	Bonds *BondTable
}

// RMax returns the longest force range, which for a contact model is
// the sphere diameter.
func (s Spring) RMax() float64 { return s.Diameter }

// PairEnergy returns the potential energy stored at separation r.
func (s Spring) PairEnergy(r float64) float64 {
	if r >= s.Diameter {
		return 0
	}
	o := s.Diameter - r
	if s.Hertz {
		return 0.4 * s.K * o * o * math.Sqrt(o)
	}
	return 0.5 * s.K * o * o
}

// Pair computes the force the pair exerts on particle i (the force on
// j is the negative) and the pair potential energy, given the
// displacement from i to j and the relative velocity vj-vi. It mirrors
// the paper's cost profile: one sqrt and one divide on the hot path.
func (s Spring) Pair(disp, relVel geom.Vec, d int) (fi geom.Vec, e float64, contact bool) {
	r2 := geom.Norm2(disp, d)
	if r2 >= s.Diameter*s.Diameter || r2 == 0 {
		return geom.Vec{}, 0, false
	}
	r := math.Sqrt(r2)
	inv := 1.0 / r
	overlap := s.Diameter - r
	// Repulsion pushes i away from j: along -disp.
	var mag, epair float64
	if s.Hertz {
		h := overlap * math.Sqrt(overlap)
		mag = s.K * h
		epair = 0.4 * s.K * h * overlap // integral of K o^(3/2)
	} else {
		mag = s.K * overlap
		epair = 0.5 * s.K * overlap * overlap
	}
	if s.Damp > 0 {
		// Normal component of the approach velocity; damping opposes
		// relative motion along the contact normal.
		vn := geom.Dot(relVel, disp, d) * inv
		mag -= s.Damp * vn
	}
	for k := 0; k < d; k++ {
		fi[k] = -mag * disp[k] * inv
	}
	return fi, epair, true
}

// halfLengths returns the minimum-image thresholds of box, one per
// component: exactly Len[k]/2 for periodic boxes (the division by two
// is exact, so comparing against the precomputed half is bit-identical
// to comparing against l/2 inline) and +Inf otherwise, which disables
// the image branches without a separate boundary-condition test in the
// inner loop.
func halfLengths(box geom.Box) (h geom.Vec) {
	for k := 0; k < box.D; k++ {
		if box.BC == geom.Periodic {
			h[k] = box.Len[k] / 2
		} else {
			h[k] = math.Inf(1)
		}
	}
	return h
}

// Accumulate walks links, adding pair forces into ps.Frc and returning
// the accumulated potential energy scaled by energyScale (the paper
// multiplies halo-link energy by one half to avoid double counting
// between replicating blocks). Forces are applied to link endpoint I
// always and to J only when J < nCore: halo copies never need forces
// since their home block computes the mirrored update itself.
//
// This is the serial kernel; the thread-parallel variants with their
// five update-protection strategies live in internal/shm. Without a
// bond table it dispatches to dimension-specialised structure-of-arrays
// loops whose inner bodies carry no function calls: the component
// slices are re-sliced to the particle count once so the compiler
// hoists the bounds checks, and the pair math runs in registers. The
// float64 results are bit-identical to the straightforward
// Disp/Sub/Pair formulation — the same operations in the same order —
// which TestSoABitIdenticalToSeed enforces against pre-refactor golden
// trajectories.
func (s Spring) Accumulate(ps *particle.Store, links []cell.Link, nCore int, box geom.Box, energyScale float64, tc *trace.Counters) float64 {
	var epot float64
	var distSum, contacts int64
	if s.Bonds == nil {
		switch ps.D {
		case 2:
			epot, contacts, distSum = s.accumulate2(ps, links, nCore, box)
		case 3:
			epot, contacts, distSum = s.accumulate3(ps, links, nCore, box)
		default:
			epot, contacts, distSum = s.accumulateSlow(ps, links, nCore, box)
		}
	} else {
		epot, contacts, distSum = s.accumulateSlow(ps, links, nCore, box)
	}
	if tc != nil {
		n := int64(len(links))
		tc.ForceEvals += n
		tc.LinkVisits += n
		tc.Contacts += contacts
		tc.ForceUpdates += 2 * n
		tc.LinkIndexDistSum += distSum
		tc.LinkIndexDistN += n
	}
	return epot * energyScale
}

// accumulate2 is the d=2 contact kernel on component slices.
//
// Two deviations from the naive loop are exact and deliberate:
// non-contact links skip their force writes (the skipped adds are all
// ±0.0, and an accumulator seeded at +0.0 under IEEE-754
// round-to-nearest can never become -0.0 through ±x adds, so skipping
// never changes a bit), and the relative velocity loads only when the
// spring is damped — the undamped law never reads them.
func (s Spring) accumulate2(ps *particle.Store, links []cell.Link, nCore int, box geom.Box) (epot float64, contacts, distSum int64) {
	n := ps.Len()
	x0, x1 := ps.Pos[0][:n], ps.Pos[1][:n]
	v0, v1 := ps.Vel[0][:n], ps.Vel[1][:n]
	f0, f1 := ps.Frc[0][:n], ps.Frc[1][:n]
	h := halfLengths(box)
	l0, l1 := box.Len[0], box.Len[1]
	h0, h1 := h[0], h[1]
	diam2 := s.Diameter * s.Diameter
	hertz, damp := s.Hertz, s.Damp
	nc := int32(nCore)
	for _, l := range links {
		i, j := l.I, l.J
		di := int64(i) - int64(j)
		if di < 0 {
			di = -di
		}
		distSum += di
		dx := x0[j] - x0[i]
		if dx > h0 {
			dx -= l0
		} else if dx < -h0 {
			dx += l0
		}
		dy := x1[j] - x1[i]
		if dy > h1 {
			dy -= l1
		} else if dy < -h1 {
			dy += l1
		}
		r2 := dx*dx + dy*dy
		if r2 >= diam2 || r2 == 0 {
			continue
		}
		contacts++
		r := math.Sqrt(r2)
		inv := 1.0 / r
		overlap := s.Diameter - r
		var mag, epair float64
		if hertz {
			hh := overlap * math.Sqrt(overlap)
			mag = s.K * hh
			epair = 0.4 * s.K * hh * overlap
		} else {
			mag = s.K * overlap
			epair = 0.5 * s.K * overlap * overlap
		}
		if damp > 0 {
			vn := ((v0[j]-v0[i])*dx + (v1[j]-v1[i])*dy) * inv
			mag -= damp * vn
		}
		epot += epair
		fx := -mag * dx * inv
		fy := -mag * dy * inv
		f0[i] += fx
		f1[i] += fy
		if j < nc {
			f0[j] -= fx
			f1[j] -= fy
		}
	}
	return epot, contacts, distSum
}

// accumulate3 is the d=3 contact kernel on component slices; see
// accumulate2 for the exactness argument.
func (s Spring) accumulate3(ps *particle.Store, links []cell.Link, nCore int, box geom.Box) (epot float64, contacts, distSum int64) {
	n := ps.Len()
	x0, x1, x2 := ps.Pos[0][:n], ps.Pos[1][:n], ps.Pos[2][:n]
	v0, v1, v2 := ps.Vel[0][:n], ps.Vel[1][:n], ps.Vel[2][:n]
	f0, f1, f2 := ps.Frc[0][:n], ps.Frc[1][:n], ps.Frc[2][:n]
	h := halfLengths(box)
	l0, l1, l2 := box.Len[0], box.Len[1], box.Len[2]
	h0, h1, h2 := h[0], h[1], h[2]
	diam2 := s.Diameter * s.Diameter
	hertz, damp := s.Hertz, s.Damp
	nc := int32(nCore)
	for _, l := range links {
		i, j := l.I, l.J
		di := int64(i) - int64(j)
		if di < 0 {
			di = -di
		}
		distSum += di
		dx := x0[j] - x0[i]
		if dx > h0 {
			dx -= l0
		} else if dx < -h0 {
			dx += l0
		}
		dy := x1[j] - x1[i]
		if dy > h1 {
			dy -= l1
		} else if dy < -h1 {
			dy += l1
		}
		dz := x2[j] - x2[i]
		if dz > h2 {
			dz -= l2
		} else if dz < -h2 {
			dz += l2
		}
		r2 := dx*dx + dy*dy + dz*dz
		if r2 >= diam2 || r2 == 0 {
			continue
		}
		contacts++
		r := math.Sqrt(r2)
		inv := 1.0 / r
		overlap := s.Diameter - r
		var mag, epair float64
		if hertz {
			hh := overlap * math.Sqrt(overlap)
			mag = s.K * hh
			epair = 0.4 * s.K * hh * overlap
		} else {
			mag = s.K * overlap
			epair = 0.5 * s.K * overlap * overlap
		}
		if damp > 0 {
			vn := ((v0[j]-v0[i])*dx + (v1[j]-v1[i])*dy + (v2[j]-v2[i])*dz) * inv
			mag -= damp * vn
		}
		epot += epair
		fx := -mag * dx * inv
		fy := -mag * dy * inv
		fz := -mag * dz * inv
		f0[i] += fx
		f1[i] += fy
		f2[i] += fz
		if j < nc {
			f0[j] -= fx
			f1[j] -= fy
			f2[j] -= fz
		}
	}
	return epot, contacts, distSum
}

// accumulateSlow is the generic kernel: it gathers Vec values from the
// component slices and evaluates the bond-aware pair law, serving any
// dimensionality and every bonded run.
func (s Spring) accumulateSlow(ps *particle.Store, links []cell.Link, nCore int, box geom.Box) (epot float64, contacts, distSum int64) {
	d := ps.D
	pos, vel, frc, ids := &ps.Pos, &ps.Vel, &ps.Frc, ps.ID
	for _, l := range links {
		disp := box.DispAt(pos, l.I, l.J)
		rel := geom.SubAt(vel, l.J, l.I, d)
		fi, e, contact := s.PairID(ids[l.I], ids[l.J], disp, rel, d)
		if contact {
			contacts++
		}
		epot += e
		for k := 0; k < d; k++ {
			frc[k][l.I] += fi[k]
		}
		if int(l.J) < nCore {
			for k := 0; k < d; k++ {
				frc[k][l.J] -= fi[k]
			}
		}
		di := int64(l.I) - int64(l.J)
		if di < 0 {
			di = -di
		}
		distSum += di
	}
	return epot, contacts, distSum
}

// PotentialOnly walks links summing pair potential energy without
// touching the force array; used by invariant tests.
func (s Spring) PotentialOnly(ps *particle.Store, links []cell.Link, box geom.Box, scale float64) float64 {
	epot := 0.0
	for _, l := range links {
		r2 := box.Dist2At(&ps.Pos, l.I, l.J)
		if r2 < s.Diameter*s.Diameter {
			epot += s.PairEnergy(math.Sqrt(r2))
		}
	}
	return epot * scale
}
