package force

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddem/internal/cell"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
	"hybriddem/internal/trace"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPairForceBasics(t *testing.T) {
	sp := Spring{Diameter: 1, K: 10}
	// Separation 0.5 along x: overlap 0.5, |F| = 5, pushing i in -x.
	fi, e, contact := sp.Pair(geom.Vec{0.5, 0, 0}, geom.Vec{}, 3)
	if !contact {
		t.Fatal("no contact at overlap")
	}
	if !almostEq(fi[0], -5, 1e-12) || fi[1] != 0 {
		t.Errorf("force = %v", fi)
	}
	if !almostEq(e, 0.5*10*0.25, 1e-12) {
		t.Errorf("energy = %g", e)
	}
}

func TestPairNoForceBeyondDiameter(t *testing.T) {
	sp := Spring{Diameter: 0.1, K: 100}
	fi, e, contact := sp.Pair(geom.Vec{0.2, 0, 0}, geom.Vec{}, 3)
	if contact || e != 0 || fi != (geom.Vec{}) {
		t.Errorf("force beyond range: %v %g %v", fi, e, contact)
	}
	// Exactly at the diameter: no contact (half-open).
	_, _, contact = sp.Pair(geom.Vec{0.1, 0, 0}, geom.Vec{}, 3)
	if contact {
		t.Error("contact exactly at diameter")
	}
	// Coincident particles: guarded, no NaN.
	fi, _, _ = sp.Pair(geom.Vec{}, geom.Vec{}, 3)
	if fi != (geom.Vec{}) {
		t.Errorf("coincident force = %v", fi)
	}
}

func TestPairForceCentralProperty(t *testing.T) {
	// The elastic force must point along the pair axis, away from j.
	sp := Spring{Diameter: 1, K: 3}
	f := func(x, y, z float64) bool {
		d := geom.Vec{x, y, z}
		r := geom.Norm(d, 3)
		if r == 0 || r >= 1 {
			return true
		}
		fi, e, _ := sp.Pair(d, geom.Vec{}, 3)
		// fi parallel to -d: cross terms vanish.
		dot := geom.Dot(fi, d, 3)
		if dot >= 0 {
			return false // repulsion must push i away from j
		}
		fmag := geom.Norm(fi, 3)
		return almostEq(fmag, 3*(1-r), 1e-9) && e >= 0
	}
	if err := quick.Check(func(a, b, c int8) bool {
		return f(float64(a)/128, float64(b)/128, float64(c)/128)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDampingOpposesApproach(t *testing.T) {
	sp := Spring{Diameter: 1, K: 0, Damp: 2}
	// j approaching i from +x: relative velocity of j w.r.t. i is -x.
	fi, _, _ := sp.Pair(geom.Vec{0.5, 0, 0}, geom.Vec{-1, 0, 0}, 3)
	// vn = dot(rel, disp)/r = -1*0.5/0.5 = -1; mag = -Damp*vn = 2 > 0
	// → force on i along -disp: damping pushes i away as the pair
	// compresses, resisting the approach.
	if fi[0] >= 0 {
		t.Errorf("damping force on approach = %v", fi)
	}
	// Separating pair: damping pulls back.
	fi, _, _ = sp.Pair(geom.Vec{0.5, 0, 0}, geom.Vec{+1, 0, 0}, 3)
	if fi[0] <= 0 {
		t.Errorf("damping force on separation = %v", fi)
	}
}

// buildSystem returns a random store and its link list.
func buildSystem(t testing.TB, d, n int, bc geom.Boundary, seed int64) (*particle.Store, *cell.List, geom.Box, Spring) {
	box := geom.NewBox(d, 1.0, bc)
	ps := particle.New(d, n)
	rng := rand.New(rand.NewSource(seed))
	particle.FillUniformVel(ps, n, box, 0.3, 0, rng)
	sp := Spring{Diameter: 0.08, K: 50}
	rc := 0.12
	g := cell.NewGrid(d, geom.Vec{}, box.Len, rc, bc == geom.Periodic)
	g.Bin(&ps.Pos, n, nil)
	list := g.BuildLinks(&ps.Pos, n, n, rc*rc, box, nil)
	return ps, list, box, sp
}

func TestNewtonThirdLaw(t *testing.T) {
	for _, d := range []int{2, 3} {
		ps, list, box, sp := buildSystem(t, d, 400, geom.Periodic, 3)
		var tc trace.Counters
		ps.ZeroForces()
		sp.Accumulate(ps, list.Links, ps.Len(), box, 1, &tc)
		var total geom.Vec
		for i := 0; i < ps.Len(); i++ {
			total = geom.Add(total, ps.FrcAt(i), d)
		}
		for k := 0; k < d; k++ {
			if math.Abs(total[k]) > 1e-9 {
				t.Errorf("D=%d: net internal force component %d = %g", d, k, total[k])
			}
		}
		if tc.ForceEvals != int64(len(list.Links)) {
			t.Errorf("counted %d force evals for %d links", tc.ForceEvals, len(list.Links))
		}
	}
}

func TestMomentumConservation(t *testing.T) {
	ps, list, box, sp := buildSystem(t, 2, 300, geom.Periodic, 5)
	p0 := Momentum(ps, ps.Len())
	for it := 0; it < 50; it++ {
		ps.ZeroForces()
		sp.Accumulate(ps, list.Links, ps.Len(), box, 1, nil)
		Integrate(ps, ps.Len(), 1e-4, box, WrapGlobal, nil)
	}
	p1 := Momentum(ps, ps.Len())
	for k := 0; k < 2; k++ {
		if math.Abs(p1[k]-p0[k]) > 1e-9 {
			t.Errorf("momentum drift in component %d: %g -> %g", k, p0[k], p1[k])
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	// Elastic system, no damping: E = Ekin + Epot must be conserved
	// to the integrator's accuracy over a short run with a valid list.
	ps, list, box, sp := buildSystem(t, 2, 300, geom.Periodic, 7)
	dt := 2e-5
	ps.ZeroForces()
	e0 := sp.Accumulate(ps, list.Links, ps.Len(), box, 1, nil) + KineticEnergy(ps, ps.Len())
	for it := 0; it < 100; it++ {
		ps.ZeroForces()
		sp.Accumulate(ps, list.Links, ps.Len(), box, 1, nil)
		Integrate(ps, ps.Len(), dt, box, WrapGlobal, nil)
	}
	ps.ZeroForces()
	e1 := sp.Accumulate(ps, list.Links, ps.Len(), box, 1, nil) + KineticEnergy(ps, ps.Len())
	if math.Abs(e1-e0) > 0.02*math.Abs(e0) {
		t.Errorf("energy drift: %g -> %g (%.2f%%)", e0, e1, 100*math.Abs(e1-e0)/math.Abs(e0))
	}
}

func TestHaloForceSkipsGhosts(t *testing.T) {
	// Link oriented core-first: ghost J must receive no force.
	ps := particle.New(2, 2)
	ps.Append(geom.Vec{0.50, 0.5}, geom.Vec{}, 0)
	ps.Append(geom.Vec{0.55, 0.5}, geom.Vec{}, 1) // ghost
	sp := Spring{Diameter: 0.1, K: 10}
	box := geom.NewBox(2, 1, geom.Reflecting)
	links := []cell.Link{{I: 0, J: 1}}
	sp.Accumulate(ps, links, 1, box, 0.5, nil)
	if ps.Frc[0][0] >= 0 {
		t.Errorf("core force = %v, want repulsion in -x", ps.FrcAt(0))
	}
	if ps.FrcAt(1) != (geom.Vec{}) {
		t.Errorf("ghost received force %v", ps.FrcAt(1))
	}
}

func TestEnergyScaleHalvesHaloEnergy(t *testing.T) {
	ps := particle.New(2, 2)
	ps.Append(geom.Vec{0.50, 0.5}, geom.Vec{}, 0)
	ps.Append(geom.Vec{0.55, 0.5}, geom.Vec{}, 1)
	sp := Spring{Diameter: 0.1, K: 10}
	box := geom.NewBox(2, 1, geom.Reflecting)
	links := []cell.Link{{I: 0, J: 1}}
	full := sp.Accumulate(ps, links, 2, box, 1, nil)
	half := sp.Accumulate(ps, links, 2, box, 0.5, nil)
	if !almostEq(half, full/2, 1e-12) {
		t.Errorf("half-scale energy %g vs full %g", half, full)
	}
}

func TestReflectingWallsBounce(t *testing.T) {
	box := geom.NewBox(1, 1, geom.Reflecting)
	ps := particle.New(1, 1)
	ps.Append(geom.Vec{0.95}, geom.Vec{2, 0, 0}, 0)
	Integrate(ps, 1, 0.1, box, WrapGlobal, nil) // moves to 1.15 -> reflect to 0.85
	if !almostEq(ps.Pos[0][0], 0.85, 1e-9) {
		t.Errorf("position after bounce = %g", ps.Pos[0][0])
	}
	if ps.Vel[0][0] != -2 {
		t.Errorf("velocity after bounce = %g", ps.Vel[0][0])
	}
}

func TestWrapDeferredLeavesPeriodicUnwrapped(t *testing.T) {
	box := geom.NewBox(1, 1, geom.Periodic)
	ps := particle.New(1, 1)
	ps.Append(geom.Vec{0.95}, geom.Vec{2, 0, 0}, 0)
	Integrate(ps, 1, 0.1, box, WrapDeferred, nil)
	if !almostEq(ps.Pos[0][0], 1.15, 1e-12) {
		t.Errorf("deferred wrap moved the particle to %g", ps.Pos[0][0])
	}
	Integrate(ps, 1, 0.1, box, WrapGlobal, nil)
	if ps.Pos[0][0] >= 1 {
		t.Errorf("global wrap left particle at %g", ps.Pos[0][0])
	}
}

func TestApplyGravity(t *testing.T) {
	ps := particle.New(2, 2)
	ps.Append(geom.Vec{0.5, 0.5}, geom.Vec{}, 0)
	ps.Append(geom.Vec{0.2, 0.2}, geom.Vec{}, 1)
	ApplyGravity(ps, 2, 1, -9.8)
	for i := 0; i < 2; i++ {
		if ps.Frc[1][i] != -9.8 || ps.Frc[0][i] != 0 {
			t.Errorf("gravity on %d = %v", i, ps.FrcAt(i))
		}
	}
}

func TestIntegrateRangeMatchesIntegrate(t *testing.T) {
	box := geom.NewBox(2, 1, geom.Periodic)
	a := particle.New(2, 10)
	rng := rand.New(rand.NewSource(2))
	particle.FillUniformVel(a, 10, box, 1, 0, rng)
	for i := 0; i < 10; i++ {
		a.Frc[0][i] = float64(i)
		a.Frc[1][i] = -float64(i)
	}
	b := a.Clone()
	Integrate(a, 10, 0.01, box, WrapGlobal, nil)
	IntegrateRange(b, 0, 5, 0.01, box, WrapGlobal, nil)
	IntegrateRange(b, 5, 10, 0.01, box, WrapGlobal, nil)
	for i := 0; i < 10; i++ {
		if a.PosAt(i) != b.PosAt(i) || a.VelAt(i) != b.VelAt(i) {
			t.Fatalf("range split diverges at %d", i)
		}
	}
}

func TestPairEnergyRMax(t *testing.T) {
	sp := Spring{Diameter: 0.3, K: 4}
	if sp.RMax() != 0.3 {
		t.Errorf("RMax = %g", sp.RMax())
	}
	if sp.PairEnergy(0.4) != 0 {
		t.Error("energy beyond diameter")
	}
	if !almostEq(sp.PairEnergy(0.1), 0.5*4*0.04, 1e-12) {
		t.Errorf("PairEnergy(0.1) = %g", sp.PairEnergy(0.1))
	}
}
