package force

import (
	"math"

	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
	"hybriddem/internal/trace"
)

// WrapMode controls how the integrator applies the global boundary
// condition after moving particles.
type WrapMode int

const (
	// WrapGlobal applies the full boundary condition every step: wrap
	// for periodic boxes, reflect for walled boxes. Serial and
	// shared-memory runs use this.
	WrapGlobal WrapMode = iota
	// WrapDeferred applies reflecting walls immediately (reflection is
	// a local operation) but leaves periodic coordinates unwrapped;
	// decomposed runs wrap at migration time so that halo shifts and
	// displacement tracking stay consistent between list rebuilds.
	WrapDeferred
)

// Integrate advances the first nCore particles by one kick-drift step
// of size dt (particle mass 1): v += F dt; x += v dt. Interpreting the
// velocities as half-step values this is the leapfrog scheme, the
// "standard second-order accurate" update of Section 4.1.
func Integrate(ps *particle.Store, nCore int, dt float64, box geom.Box, mode WrapMode, tc *trace.Counters) {
	IntegrateRange(ps, 0, nCore, dt, box, mode, tc)
}

// IntegrateRange is Integrate restricted to particles [lo, hi); the
// thread-parallel position update decomposes over particles with a
// static schedule, so each thread calls this on its own chunk.
//
// The update runs component-major: each spatial component is a
// kick-drift-fold sweep over three contiguous float64 slices. The
// boundary handling of geom.Box.Wrap is replicated inline per
// component — it is independent across components by construction, so
// the sweep order change cannot move a bit.
func IntegrateRange(ps *particle.Store, lo, hi int, dt float64, box geom.Box, mode WrapMode, tc *trace.Counters) {
	d := ps.D
	reflect := box.BC == geom.Reflecting
	wrapNow := mode == WrapGlobal || reflect
	for k := 0; k < d; k++ {
		pos := ps.Pos[k][lo:hi]
		vel := ps.Vel[k][lo:hi]
		frc := ps.Frc[k][lo:hi]
		l := box.Len[k]
		switch {
		case !wrapNow:
			for i := range pos {
				vel[i] += frc[i] * dt
				pos[i] += vel[i] * dt
			}
		case reflect:
			period := 2 * l
			for i := range pos {
				vel[i] += frc[i] * dt
				x := pos[i] + vel[i]*dt
				// Fold into [0, 2l) with period 2l, then reflect the
				// upper half; an odd number of reflections negates the
				// velocity component.
				x = math.Mod(x, period)
				if x < 0 {
					x += period
				}
				if x >= l {
					x = period - x
					vel[i] = -vel[i]
				}
				// Guard against x == l from rounding at the fold point.
				if x >= l {
					x = math.Nextafter(l, 0)
				}
				pos[i] = x
			}
		default: // periodic wrap
			for i := range pos {
				vel[i] += frc[i] * dt
				x := pos[i] + vel[i]*dt
				x = math.Mod(x, l)
				if x < 0 {
					x += l
				}
				// math.Mod can return exactly l for x slightly below 0
				// due to rounding; fold once more to stay half-open.
				if x >= l {
					x -= l
				}
				pos[i] = x
			}
		}
	}
	if tc != nil {
		tc.PosUpdates += int64(hi - lo)
	}
}

// ApplyGravity adds a constant acceleration g along axis (mass 1) to
// the first nCore force accumulators.  The sand-pile example deposits
// grains under gravity onto a reflecting floor.
func ApplyGravity(ps *particle.Store, nCore int, axis int, g float64) {
	frc := ps.Frc[axis][:nCore]
	for i := range frc {
		frc[i] += g
	}
}

// KineticEnergy returns the total kinetic energy of the first n
// particles (mass 1). The sum stays particle-major — each particle's
// speed squared is assembled across components before entering the
// total, in the exact association of Norm2 — so the value is
// bit-identical to the array-of-vectors formulation.
func KineticEnergy(ps *particle.Store, n int) float64 {
	e := 0.0
	switch ps.D {
	case 2:
		v0, v1 := ps.Vel[0][:n], ps.Vel[1][:n]
		for i := 0; i < n; i++ {
			e += 0.5 * (v0[i]*v0[i] + v1[i]*v1[i])
		}
	case 3:
		v0, v1, v2 := ps.Vel[0][:n], ps.Vel[1][:n], ps.Vel[2][:n]
		for i := 0; i < n; i++ {
			e += 0.5 * (v0[i]*v0[i] + v1[i]*v1[i] + v2[i]*v2[i])
		}
	default:
		for i := 0; i < n; i++ {
			e += 0.5 * geom.Norm2(ps.Vel.At(i, ps.D), ps.D)
		}
	}
	return e
}

// Momentum returns the total momentum vector of the first n particles.
// Each component accumulates independently in ascending particle
// order, matching the per-component sums of the Vec formulation.
func Momentum(ps *particle.Store, n int) geom.Vec {
	var m geom.Vec
	for k := 0; k < ps.D; k++ {
		vel := ps.Vel[k][:n]
		s := 0.0
		for i := range vel {
			s += vel[i]
		}
		m[k] = s
	}
	return m
}
