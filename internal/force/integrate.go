package force

import (
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
	"hybriddem/internal/trace"
)

// WrapMode controls how the integrator applies the global boundary
// condition after moving particles.
type WrapMode int

const (
	// WrapGlobal applies the full boundary condition every step: wrap
	// for periodic boxes, reflect for walled boxes. Serial and
	// shared-memory runs use this.
	WrapGlobal WrapMode = iota
	// WrapDeferred applies reflecting walls immediately (reflection is
	// a local operation) but leaves periodic coordinates unwrapped;
	// decomposed runs wrap at migration time so that halo shifts and
	// displacement tracking stay consistent between list rebuilds.
	WrapDeferred
)

// Integrate advances the first nCore particles by one kick-drift step
// of size dt (particle mass 1): v += F dt; x += v dt. Interpreting the
// velocities as half-step values this is the leapfrog scheme, the
// "standard second-order accurate" update of Section 4.1.
func Integrate(ps *particle.Store, nCore int, dt float64, box geom.Box, mode WrapMode, tc *trace.Counters) {
	d := ps.D
	pos, vel, frc := ps.Pos, ps.Vel, ps.Frc
	reflect := box.BC == geom.Reflecting
	wrapNow := mode == WrapGlobal || reflect
	for i := 0; i < nCore; i++ {
		for k := 0; k < d; k++ {
			vel[i][k] += frc[i][k] * dt
			pos[i][k] += vel[i][k] * dt
		}
		if wrapNow {
			p, flip := box.Wrap(pos[i])
			pos[i] = p
			if reflect {
				for k := 0; k < d; k++ {
					if flip[k] {
						vel[i][k] = -vel[i][k]
					}
				}
			}
		}
	}
	if tc != nil {
		tc.PosUpdates += int64(nCore)
	}
}

// IntegrateRange is Integrate restricted to particles [lo, hi); the
// thread-parallel position update decomposes over particles with a
// static schedule, so each thread calls this on its own chunk.
func IntegrateRange(ps *particle.Store, lo, hi int, dt float64, box geom.Box, mode WrapMode, tc *trace.Counters) {
	d := ps.D
	pos, vel, frc := ps.Pos, ps.Vel, ps.Frc
	reflect := box.BC == geom.Reflecting
	wrapNow := mode == WrapGlobal || reflect
	for i := lo; i < hi; i++ {
		for k := 0; k < d; k++ {
			vel[i][k] += frc[i][k] * dt
			pos[i][k] += vel[i][k] * dt
		}
		if wrapNow {
			p, flip := box.Wrap(pos[i])
			pos[i] = p
			if reflect {
				for k := 0; k < d; k++ {
					if flip[k] {
						vel[i][k] = -vel[i][k]
					}
				}
			}
		}
	}
	if tc != nil {
		tc.PosUpdates += int64(hi - lo)
	}
}

// ApplyGravity adds a constant acceleration g along axis (mass 1) to
// the first nCore force accumulators. The sand-pile example deposits
// grains under gravity onto a reflecting floor.
func ApplyGravity(ps *particle.Store, nCore int, axis int, g float64) {
	for i := 0; i < nCore; i++ {
		ps.Frc[i][axis] += g
	}
}

// KineticEnergy returns the total kinetic energy of the first n
// particles (mass 1).
func KineticEnergy(ps *particle.Store, n int) float64 {
	e := 0.0
	for i := 0; i < n; i++ {
		e += 0.5 * geom.Norm2(ps.Vel[i], ps.D)
	}
	return e
}

// Momentum returns the total momentum vector of the first n particles.
func Momentum(ps *particle.Store, n int) geom.Vec {
	var m geom.Vec
	for i := 0; i < n; i++ {
		m = geom.Add(m, ps.Vel[i], ps.D)
	}
	return m
}
