package force

import (
	"math"
	"math/rand"
	"testing"

	"hybriddem/internal/cell"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

func TestHertzForceMagnitude(t *testing.T) {
	sp := Spring{Diameter: 1, K: 10, Hertz: true}
	// Overlap 0.25 at separation 0.75: |F| = 10 * 0.25^1.5 = 1.25.
	fi, e, contact := sp.Pair(geom.Vec{0.75, 0, 0}, geom.Vec{}, 3)
	if !contact {
		t.Fatal("no contact")
	}
	want := 10 * math.Pow(0.25, 1.5)
	if math.Abs(-fi[0]-want) > 1e-12 {
		t.Errorf("|F| = %g, want %g", -fi[0], want)
	}
	wantE := 0.4 * 10 * math.Pow(0.25, 2.5)
	if math.Abs(e-wantE) > 1e-12 {
		t.Errorf("E = %g, want %g", e, wantE)
	}
	if math.Abs(sp.PairEnergy(0.75)-wantE) > 1e-12 {
		t.Errorf("PairEnergy = %g", sp.PairEnergy(0.75))
	}
}

func TestHertzSofterAtGrazingStifferWhenDeep(t *testing.T) {
	lin := Spring{Diameter: 1, K: 10}
	hz := Spring{Diameter: 1, K: 10, Hertz: true}
	// Grazing contact (overlap << 1): Hertz is weaker.
	fl, _, _ := lin.Pair(geom.Vec{0.99, 0, 0}, geom.Vec{}, 3)
	fh, _, _ := hz.Pair(geom.Vec{0.99, 0, 0}, geom.Vec{}, 3)
	if -fh[0] >= -fl[0] {
		t.Errorf("grazing: hertz %g not below linear %g", -fh[0], -fl[0])
	}
	// Hertz force stays continuous at onset: tiny overlap, tiny force.
	fh, _, _ = hz.Pair(geom.Vec{1 - 1e-9, 0, 0}, geom.Vec{}, 3)
	if -fh[0] > 1e-8 {
		t.Errorf("force discontinuous at contact onset: %g", -fh[0])
	}
}

func TestHertzEnergyConservation(t *testing.T) {
	// The Hertzian system must conserve energy like the linear one.
	box := geom.NewBox(2, 1.0, geom.Periodic)
	ps := particle.New(2, 300)
	rng := rand.New(rand.NewSource(17))
	particle.FillUniformVel(ps, 300, box, 0.3, 0, rng)
	sp := Spring{Diameter: 0.08, K: 50, Hertz: true}
	rc := 0.12
	g := cell.NewGrid(2, geom.Vec{}, box.Len, rc, true)
	g.Bin(&ps.Pos, 300, nil)
	list := g.BuildLinks(&ps.Pos, 300, 300, rc*rc, box, nil)

	energy := func() float64 {
		ps.ZeroForces()
		return sp.Accumulate(ps, list.Links, 300, box, 1, nil) + KineticEnergy(ps, 300)
	}
	e0 := energy()
	for it := 0; it < 100; it++ {
		ps.ZeroForces()
		sp.Accumulate(ps, list.Links, 300, box, 1, nil)
		Integrate(ps, 300, 2e-5, box, WrapGlobal, nil)
	}
	e1 := energy()
	if math.Abs(e1-e0) > 0.02*math.Abs(e0) {
		t.Errorf("hertz energy drift %g -> %g", e0, e1)
	}
}
