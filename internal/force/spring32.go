package force

import (
	"math"

	"hybriddem/internal/cell"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
	"hybriddem/internal/trace"
)

// F32Scratch holds the reusable single-precision mirrors of the
// particle arrays for AccumulateF32. One scratch per simulation; the
// conversion buffers are resized on demand and reused across steps, so
// the fast path allocates only when the particle count grows.
type F32Scratch struct {
	pos [geom.MaxD][]float32
	vel [geom.MaxD][]float32
}

// prepare refreshes the float32 mirrors from the store. Velocities
// convert only when the force law is damped — the undamped spring
// never reads them.
func (sc *F32Scratch) prepare(ps *particle.Store, withVel bool) {
	n := ps.Len()
	for k := 0; k < ps.D; k++ {
		if cap(sc.pos[k]) < n {
			sc.pos[k] = make([]float32, n)
		}
		sc.pos[k] = sc.pos[k][:n]
		src := ps.Pos[k][:n]
		dst := sc.pos[k]
		for i := range src {
			dst[i] = float32(src[i])
		}
		if withVel {
			if cap(sc.vel[k]) < n {
				sc.vel[k] = make([]float32, n)
			}
			sc.vel[k] = sc.vel[k][:n]
			vsrc := ps.Vel[k][:n]
			vdst := sc.vel[k]
			for i := range vsrc {
				vdst[i] = float32(vsrc[i])
			}
		}
	}
}

// sqrt32 is a single-precision square root; the compiler recognises
// the float32(math.Sqrt(float64(x))) pattern and emits the hardware
// SQRTSS instruction, so no library call survives in the loop.
func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// AccumulateF32 is the single-precision fast path of Accumulate: the
// pair geometry — separations, minimum image, distance, overlap,
// force magnitude — evaluates in float32 on converted position (and,
// when damped, velocity) mirrors, while the force and energy
// accumulators stay float64 so the sums do not lose the benefit of
// many-term cancellation. The trajectory it produces is NOT
// bit-identical to the float64 kernel; verify.CompareApprox bounds
// the drift. Counter accounting matches Accumulate exactly. Bond
// tables are not supported (core.Config.Validate rejects the
// combination).
func (s Spring) AccumulateF32(ps *particle.Store, links []cell.Link, nCore int, box geom.Box, energyScale float64, sc *F32Scratch, tc *trace.Counters) float64 {
	if s.Bonds != nil {
		return s.Accumulate(ps, links, nCore, box, energyScale, tc)
	}
	damp := s.Damp > 0
	sc.prepare(ps, damp)
	var epot float64
	var distSum, contacts int64
	switch ps.D {
	case 2:
		epot, contacts, distSum = s.accumulateF32d2(ps, links, nCore, box, sc)
	case 3:
		epot, contacts, distSum = s.accumulateF32d3(ps, links, nCore, box, sc)
	default:
		epot, contacts, distSum = s.accumulateSlow(ps, links, nCore, box)
	}
	if tc != nil {
		n := int64(len(links))
		tc.ForceEvals += n
		tc.LinkVisits += n
		tc.Contacts += contacts
		tc.ForceUpdates += 2 * n
		tc.LinkIndexDistSum += distSum
		tc.LinkIndexDistN += n
	}
	return epot * energyScale
}

// halfLengths32 is halfLengths in single precision: the minimum-image
// threshold per component, +Inf when the box does not wrap.
func halfLengths32(box geom.Box) (h [geom.MaxD]float32) {
	for k := 0; k < box.D; k++ {
		if box.BC == geom.Periodic {
			h[k] = float32(box.Len[k]) / 2
		} else {
			h[k] = float32(math.Inf(1))
		}
	}
	return h
}

func (s Spring) accumulateF32d2(ps *particle.Store, links []cell.Link, nCore int, box geom.Box, sc *F32Scratch) (epot float64, contacts, distSum int64) {
	n := ps.Len()
	x0, x1 := sc.pos[0][:n], sc.pos[1][:n]
	f0, f1 := ps.Frc[0][:n], ps.Frc[1][:n]
	h := halfLengths32(box)
	l0, l1 := float32(box.Len[0]), float32(box.Len[1])
	h0, h1 := h[0], h[1]
	diam := float32(s.Diameter)
	diam2 := diam * diam
	k32 := float32(s.K)
	hertz, damp := s.Hertz, float32(s.Damp)
	var v0, v1 []float32
	if damp > 0 {
		v0, v1 = sc.vel[0][:n], sc.vel[1][:n]
	}
	nc := int32(nCore)
	for _, l := range links {
		i, j := l.I, l.J
		di := int64(i) - int64(j)
		if di < 0 {
			di = -di
		}
		distSum += di
		dx := x0[j] - x0[i]
		if dx > h0 {
			dx -= l0
		} else if dx < -h0 {
			dx += l0
		}
		dy := x1[j] - x1[i]
		if dy > h1 {
			dy -= l1
		} else if dy < -h1 {
			dy += l1
		}
		r2 := dx*dx + dy*dy
		if r2 >= diam2 || r2 == 0 {
			continue
		}
		contacts++
		r := sqrt32(r2)
		inv := 1 / r
		overlap := diam - r
		var mag, epair float32
		if hertz {
			hh := overlap * sqrt32(overlap)
			mag = k32 * hh
			epair = 0.4 * k32 * hh * overlap
		} else {
			mag = k32 * overlap
			epair = 0.5 * k32 * overlap * overlap
		}
		if damp > 0 {
			vn := ((v0[j]-v0[i])*dx + (v1[j]-v1[i])*dy) * inv
			mag -= damp * vn
		}
		epot += float64(epair)
		fx := float64(-mag * dx * inv)
		fy := float64(-mag * dy * inv)
		f0[i] += fx
		f1[i] += fy
		if j < nc {
			f0[j] -= fx
			f1[j] -= fy
		}
	}
	return epot, contacts, distSum
}

func (s Spring) accumulateF32d3(ps *particle.Store, links []cell.Link, nCore int, box geom.Box, sc *F32Scratch) (epot float64, contacts, distSum int64) {
	n := ps.Len()
	x0, x1, x2 := sc.pos[0][:n], sc.pos[1][:n], sc.pos[2][:n]
	f0, f1, f2 := ps.Frc[0][:n], ps.Frc[1][:n], ps.Frc[2][:n]
	h := halfLengths32(box)
	l0, l1, l2 := float32(box.Len[0]), float32(box.Len[1]), float32(box.Len[2])
	h0, h1, h2 := h[0], h[1], h[2]
	diam := float32(s.Diameter)
	diam2 := diam * diam
	k32 := float32(s.K)
	hertz, damp := s.Hertz, float32(s.Damp)
	var v0, v1, v2 []float32
	if damp > 0 {
		v0, v1, v2 = sc.vel[0][:n], sc.vel[1][:n], sc.vel[2][:n]
	}
	nc := int32(nCore)
	for _, l := range links {
		i, j := l.I, l.J
		di := int64(i) - int64(j)
		if di < 0 {
			di = -di
		}
		distSum += di
		dx := x0[j] - x0[i]
		if dx > h0 {
			dx -= l0
		} else if dx < -h0 {
			dx += l0
		}
		dy := x1[j] - x1[i]
		if dy > h1 {
			dy -= l1
		} else if dy < -h1 {
			dy += l1
		}
		dz := x2[j] - x2[i]
		if dz > h2 {
			dz -= l2
		} else if dz < -h2 {
			dz += l2
		}
		r2 := dx*dx + dy*dy + dz*dz
		if r2 >= diam2 || r2 == 0 {
			continue
		}
		contacts++
		r := sqrt32(r2)
		inv := 1 / r
		overlap := diam - r
		var mag, epair float32
		if hertz {
			hh := overlap * sqrt32(overlap)
			mag = k32 * hh
			epair = 0.4 * k32 * hh * overlap
		} else {
			mag = k32 * overlap
			epair = 0.5 * k32 * overlap * overlap
		}
		if damp > 0 {
			vn := ((v0[j]-v0[i])*dx + (v1[j]-v1[i])*dy + (v2[j]-v2[i])*dz) * inv
			mag -= damp * vn
		}
		epot += float64(epair)
		fx := float64(-mag * dx * inv)
		fy := float64(-mag * dy * inv)
		fz := float64(-mag * dz * inv)
		f0[i] += fx
		f1[i] += fy
		f2[i] += fz
		if j < nc {
			f0[j] -= fx
			f1[j] -= fy
			f2[j] -= fz
		}
	}
	return epot, contacts, distSum
}
