package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span is one phase interval on a rank's virtual timeline.
type Span struct {
	Rank  int
	Iter  int
	Phase string
	T0    float64 // virtual seconds
	T1    float64
}

// Timeline collects phase spans across ranks — this module's analogue
// of the OMPItrace/Paraver tracing the paper's Further Work applies
// to the hybrid code. Ranks append concurrently; analysis happens
// after the run.
type Timeline struct {
	mu    sync.Mutex
	spans []Span
}

// Add records one span. Inverted intervals are clamped to zero width.
func (tl *Timeline) Add(rank, iter int, phase string, t0, t1 float64) {
	if t1 < t0 {
		t1 = t0
	}
	tl.mu.Lock()
	tl.spans = append(tl.spans, Span{Rank: rank, Iter: iter, Phase: phase, T0: t0, T1: t1})
	tl.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by (rank, start).
func (tl *Timeline) Spans() []Span {
	tl.mu.Lock()
	out := append([]Span(nil), tl.spans...)
	tl.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].T0 < out[j].T0
	})
	return out
}

// PhaseTotals sums span durations per phase per rank.
func (tl *Timeline) PhaseTotals() map[string][]float64 {
	spans := tl.Spans()
	ranks := 0
	for _, s := range spans {
		if s.Rank+1 > ranks {
			ranks = s.Rank + 1
		}
	}
	out := make(map[string][]float64)
	for _, s := range spans {
		if out[s.Phase] == nil {
			out[s.Phase] = make([]float64, ranks)
		}
		out[s.Phase][s.Rank] += s.T1 - s.T0
	}
	return out
}

// Imbalance returns, per phase, max/mean of the per-rank totals — the
// load-imbalance factor the block-cyclic granularity is meant to
// drive towards one.
func (tl *Timeline) Imbalance() map[string]float64 {
	out := make(map[string]float64)
	for phase, per := range tl.PhaseTotals() {
		maxv, sum := 0.0, 0.0
		for _, v := range per {
			sum += v
			if v > maxv {
				maxv = v
			}
		}
		if sum > 0 {
			mean := sum / float64(len(per))
			out[phase] = maxv / mean
		}
	}
	return out
}

// phaseGlyphs assigns stable single-character glyphs for rendering.
var phaseGlyphs = map[string]byte{
	"comm":      '~',
	"coll":      '=',
	"force":     '#',
	"update":    '+',
	"rebuild":   'R',
	"overlap":   'o',
	"rebalance": 'B',
	"orb":       'A',
}

// Render draws an ASCII Gantt chart of the first maxSpansPerRank
// spans of every rank, width columns wide, over the common time
// window. Phases get the glyphs ~ (comm), # (force), + (update),
// R (rebuild); unknown phases render as '?'.
func (tl *Timeline) Render(width int) string {
	spans := tl.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	tmin, tmax := spans[0].T0, spans[0].T1
	ranks := 0
	for _, s := range spans {
		if s.T0 < tmin {
			tmin = s.T0
		}
		if s.T1 > tmax {
			tmax = s.T1
		}
		if s.Rank+1 > ranks {
			ranks = s.Rank + 1
		}
	}
	if tmax <= tmin {
		tmax = tmin + 1
	}
	scale := float64(width) / (tmax - tmin)
	rows := make([][]byte, ranks)
	for r := range rows {
		rows[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range spans {
		g, ok := phaseGlyphs[s.Phase]
		if !ok {
			g = '?'
		}
		lo := int((s.T0 - tmin) * scale)
		hi := int((s.T1 - tmin) * scale)
		if hi == lo {
			hi = lo + 1
		}
		for c := lo; c < hi && c < width; c++ {
			rows[s.Rank][c] = g
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "virtual time %.6fs .. %.6fs  (~ comm, = collective, # force, + update, R rebuild, o overlapped comm, B rebalance, A orb)\n", tmin, tmax)
	for r, row := range rows {
		fmt.Fprintf(&sb, "rank %2d |%s|\n", r, row)
	}
	return sb.String()
}
