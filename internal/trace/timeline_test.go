package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestTimelineSpansSorted(t *testing.T) {
	tl := &Timeline{}
	tl.Add(1, 0, "force", 2, 3)
	tl.Add(0, 0, "force", 0, 1)
	tl.Add(0, 1, "update", 1, 2)
	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Rank != 0 || spans[0].T0 != 0 {
		t.Errorf("spans not sorted: %+v", spans)
	}
	if spans[2].Rank != 1 {
		t.Errorf("rank ordering: %+v", spans)
	}
}

func TestTimelineClampsInverted(t *testing.T) {
	tl := &Timeline{}
	tl.Add(0, 0, "force", 5, 3)
	s := tl.Spans()[0]
	if s.T1 != s.T0 {
		t.Errorf("inverted span not clamped: %+v", s)
	}
}

func TestPhaseTotalsAndImbalance(t *testing.T) {
	tl := &Timeline{}
	tl.Add(0, 0, "force", 0, 3) // rank 0: 3s force
	tl.Add(1, 0, "force", 0, 1) // rank 1: 1s force
	tl.Add(0, 0, "comm", 3, 4)
	tl.Add(1, 0, "comm", 1, 2)
	totals := tl.PhaseTotals()
	if totals["force"][0] != 3 || totals["force"][1] != 1 {
		t.Errorf("force totals %v", totals["force"])
	}
	imb := tl.Imbalance()
	if imb["force"] != 1.5 { // max 3 / mean 2
		t.Errorf("force imbalance %g", imb["force"])
	}
	if imb["comm"] != 1.0 {
		t.Errorf("comm imbalance %g", imb["comm"])
	}
}

func TestRenderContainsGlyphs(t *testing.T) {
	tl := &Timeline{}
	tl.Add(0, 0, "force", 0, 1)
	tl.Add(0, 0, "comm", 1, 2)
	tl.Add(1, 0, "update", 0, 2)
	tl.Add(1, 1, "mystery", 2, 3)
	out := tl.Render(40)
	for _, want := range []string{"#", "~", "+", "?", "rank  0", "rank  1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tlEmpty := (&Timeline{}).Render(40); !strings.Contains(tlEmpty, "empty") {
		t.Error("empty timeline render")
	}
}

func TestTimelineConcurrentAdd(t *testing.T) {
	tl := &Timeline{}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tl.Add(r, i, "force", float64(i), float64(i+1))
			}
		}(r)
	}
	wg.Wait()
	if got := len(tl.Spans()); got != 800 {
		t.Errorf("%d spans after concurrent adds", got)
	}
}
