// Package trace collects the event counts the virtual-platform cost
// models consume. Every rank and every thread owns its own Counters so
// the hot loops never synchronise; totals are merged explicitly at the
// end of a phase.
//
// The counters are deliberately physical rather than temporal: the same
// simulation run can be re-costed on any virtual platform (T3E, Sun,
// Compaq) without re-executing, which is how the experiment harness
// sweeps platforms cheaply.
package trace

// Counters accumulates per-owner event counts for one phase of a run.
type Counters struct {
	// Force loop.
	ForceEvals   int64 // pairwise force evaluations (one per link visit)
	LinkVisits   int64 // links traversed
	Contacts     int64 // pairs found within force range (sqrt+inverse paid)
	ForceUpdates int64 // accumulations into the global force array (2/link)

	// Position update.
	PosUpdates int64 // particle position/velocity updates

	// Link-list maintenance.
	LinkBuilds    int64 // number of list (re)constructions
	CellBinOps    int64 // particles binned into cells
	PairChecks    int64 // candidate pairs distance-tested during build
	ReorderMoves  int64 // particles permuted by cache reordering
	MigratedParts int64 // particles moved to a new home block/rank

	// Dynamic load balancing.
	Rebalances  int64 // rebalance epochs that moved at least one block
	BlocksMoved int64 // whole blocks shipped to a new rank
	CutShifts   int64 // ORB cut planes moved by adopted repartitions

	// Message passing.
	MsgsSent     int64 // point-to-point messages sent
	BytesSent    int64 // payload bytes sent
	MsgsRejected int64 // duplicate messages discarded by integrity checks
	MsgsIntra    int64 // messages whose endpoints share an SMP node
	BytesIntra   int64 // bytes on intra-node messages
	Collectives  int64 // collective operations joined
	Barriers     int64 // message-passing barriers joined

	// Shared-memory windows (mpism mode).
	WinFences    int64 // window fence epochs joined
	WinLoadBytes int64 // bytes loaded from node peers' shared windows

	// Shared memory.
	ParallelRegions int64 // fork/join regions entered
	TeamBarriers    int64 // intra-team barriers
	AtomicsTaken    int64 // force updates actually protected by a lock
	AtomicsAvoided  int64 // updates the conflict table proved private
	CriticalEnters  int64 // critical-section entries
	ReductionWords  int64 // words combined by array-reduction strategies

	// Cache-locality metric: sum over links of |i-j| index distance in
	// the particle store, and the link count it averages over. The cost
	// model maps the mean distance to a miss-rate factor; reordering
	// collapses it.
	LinkIndexDistSum int64
	LinkIndexDistN   int64
}

// Add merges other into c.
func (c *Counters) Add(other *Counters) {
	c.ForceEvals += other.ForceEvals
	c.LinkVisits += other.LinkVisits
	c.Contacts += other.Contacts
	c.ForceUpdates += other.ForceUpdates
	c.PosUpdates += other.PosUpdates
	c.LinkBuilds += other.LinkBuilds
	c.CellBinOps += other.CellBinOps
	c.PairChecks += other.PairChecks
	c.ReorderMoves += other.ReorderMoves
	c.MigratedParts += other.MigratedParts
	c.Rebalances += other.Rebalances
	c.BlocksMoved += other.BlocksMoved
	c.CutShifts += other.CutShifts
	c.MsgsSent += other.MsgsSent
	c.BytesSent += other.BytesSent
	c.MsgsRejected += other.MsgsRejected
	c.MsgsIntra += other.MsgsIntra
	c.BytesIntra += other.BytesIntra
	c.Collectives += other.Collectives
	c.Barriers += other.Barriers
	c.WinFences += other.WinFences
	c.WinLoadBytes += other.WinLoadBytes
	c.ParallelRegions += other.ParallelRegions
	c.TeamBarriers += other.TeamBarriers
	c.AtomicsTaken += other.AtomicsTaken
	c.AtomicsAvoided += other.AtomicsAvoided
	c.CriticalEnters += other.CriticalEnters
	c.ReductionWords += other.ReductionWords
	c.LinkIndexDistSum += other.LinkIndexDistSum
	c.LinkIndexDistN += other.LinkIndexDistN
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// MeanLinkIndexDist returns the average particle-index distance across
// the endpoints of the links visited so far, or 0 when nothing was
// recorded. Large values mean scattered access; small values mean the
// store is in (near) cell order.
func (c *Counters) MeanLinkIndexDist() float64 {
	if c.LinkIndexDistN == 0 {
		return 0
	}
	return float64(c.LinkIndexDistSum) / float64(c.LinkIndexDistN)
}

// AtomicFraction returns the fraction of force updates that required a
// lock under the selected-atomic strategy. The paper reports this
// rising to ~50% (D=3) and ~25% (D=2) at the finest hybrid granularity.
func (c *Counters) AtomicFraction() float64 {
	total := c.AtomicsTaken + c.AtomicsAvoided
	if total == 0 {
		return 0
	}
	return float64(c.AtomicsTaken) / float64(total)
}
