package trace

import (
	"reflect"
	"testing"
)

// TestAddMergesAllFields sets every int64 field to a distinct value
// via reflection and checks Add doubles each one — so a counter added
// to the struct but forgotten in Add fails this test automatically.
func TestAddMergesAllFields(t *testing.T) {
	var a Counters
	v := reflect.ValueOf(&a).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Int64 {
			t.Fatalf("unexpected field kind %v in Counters", f.Kind())
		}
		f.SetInt(int64(i + 1))
	}
	b := a
	b.Add(&a)
	w := reflect.ValueOf(&b).Elem()
	for i := 0; i < w.NumField(); i++ {
		want := int64(2 * (i + 1))
		if got := w.Field(i).Int(); got != want {
			t.Errorf("Add missed field %s: %d, want %d",
				w.Type().Field(i).Name, got, want)
		}
	}
	b.Reset()
	if b != (Counters{}) {
		t.Errorf("Reset left %+v", b)
	}
}

func TestMeanLinkIndexDist(t *testing.T) {
	var c Counters
	if c.MeanLinkIndexDist() != 0 {
		t.Error("empty mean not zero")
	}
	c.LinkIndexDistSum = 30
	c.LinkIndexDistN = 10
	if c.MeanLinkIndexDist() != 3 {
		t.Errorf("mean = %g", c.MeanLinkIndexDist())
	}
}

func TestAtomicFraction(t *testing.T) {
	var c Counters
	if c.AtomicFraction() != 0 {
		t.Error("empty fraction not zero")
	}
	c.AtomicsTaken = 25
	c.AtomicsAvoided = 75
	if c.AtomicFraction() != 0.25 {
		t.Errorf("fraction = %g", c.AtomicFraction())
	}
}
