package grain

import (
	"math"
	"testing"

	"hybriddem/internal/geom"
)

func TestShapeSizes(t *testing.T) {
	want := map[Shape]int{Dimer: 2, Trimer: 3, Chain: 4, Tetra: 4}
	for s, n := range want {
		if s.Size() != n {
			t.Errorf("%v size = %d, want %d", s, s.Size(), n)
		}
		if s.String() == "" {
			t.Errorf("%v has no name", s)
		}
	}
	if Shape(99).Size() != 0 {
		t.Error("unknown shape has a size")
	}
}

func TestShapeBondsAreUnitLength(t *testing.T) {
	for _, s := range []Shape{Dimer, Trimer, Chain, Tetra} {
		for _, d := range []int{2, 3} {
			off := s.offsets(d)
			for _, b := range s.bonds(d) {
				dist := 0.0
				for k := 0; k < 3; k++ {
					dd := off[b[0]][k] - off[b[1]][k]
					dist += dd * dd
				}
				if math.Abs(math.Sqrt(dist)-1) > 1e-9 {
					t.Errorf("%v d=%d bond %v length %g", s, d, b, math.Sqrt(dist))
				}
			}
		}
	}
}

func TestShapeConnectivity(t *testing.T) {
	// Every shape must be a single connected grain through its bonds.
	for _, s := range []Shape{Dimer, Trimer, Chain, Tetra} {
		for _, d := range []int{2, 3} {
			n := s.Size()
			adj := make([][]int, n)
			for _, b := range s.bonds(d) {
				adj[b[0]] = append(adj[b[0]], b[1])
				adj[b[1]] = append(adj[b[1]], b[0])
			}
			seen := make([]bool, n)
			stack := []int{0}
			seen[0] = true
			count := 1
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range adj[v] {
					if !seen[w] {
						seen[w] = true
						count++
						stack = append(stack, w)
					}
				}
			}
			if count != n {
				t.Errorf("%v d=%d: only %d of %d members connected", s, d, count, n)
			}
		}
	}
}

func TestBuildPlacesGrainsInsideBox(t *testing.T) {
	for _, d := range []int{2, 3} {
		for _, s := range []Shape{Dimer, Trimer, Chain, Tetra} {
			box := geom.NewBox(d, 5, geom.Reflecting)
			st, bt, err := Build(Config{
				D: d, Shape: s, Grains: 40, Diameter: 0.1,
				Box: box, BondK: 100, BondDamp: 1, Seed: 3,
			})
			if err != nil {
				t.Fatalf("%v d=%d: %v", s, d, err)
			}
			if len(st.Pos) != 40*s.Size() {
				t.Fatalf("%v d=%d: %d particles", s, d, len(st.Pos))
			}
			for i, p := range st.Pos {
				if !box.Contains(p) {
					t.Fatalf("%v d=%d: particle %d outside box at %v", s, d, i, p)
				}
			}
			if bt.NumBonds() != 40*len(s.bonds(d)) {
				t.Errorf("%v d=%d: %d bonds", s, d, bt.NumBonds())
			}
			// All bonds at rest initially.
			if strain := bt.MaxBondStrain(st.Pos, box); strain > 1e-9 {
				t.Errorf("%v d=%d: initial bond strain %g", s, d, strain)
			}
			// Rest lengths below any sensible cutoff.
			if bt.MaxRest() > 0.1+1e-12 {
				t.Errorf("%v d=%d: rest length %g above diameter", s, d, bt.MaxRest())
			}
		}
	}
}

func TestBuildClusteredHeight(t *testing.T) {
	box := geom.NewBox(2, 10, geom.Reflecting)
	st, _, err := Build(Config{
		D: 2, Shape: Dimer, Grains: 100, Diameter: 0.1,
		Box: box, Height: 0.3, BondK: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range st.Pos {
		if p[1] > 0.3*10+0.3 { // height limit plus grain extent
			t.Fatalf("particle %d above the bed at y=%g", i, p[1])
		}
	}
}

func TestBuildErrors(t *testing.T) {
	box := geom.NewBox(2, 1, geom.Reflecting)
	if _, _, err := Build(Config{D: 2, Shape: Shape(9), Grains: 1, Diameter: 0.1, Box: box}); err == nil {
		t.Error("unknown shape accepted")
	}
	if _, _, err := Build(Config{D: 2, Shape: Dimer, Grains: 0, Diameter: 0.1, Box: box}); err == nil {
		t.Error("zero grains accepted")
	}
	tiny := geom.NewBox(2, 0.1, geom.Reflecting)
	if _, _, err := Build(Config{D: 2, Shape: Dimer, Grains: 1, Diameter: 0.1, Box: tiny}); err == nil {
		t.Error("grain bigger than box accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	box := geom.NewBox(3, 4, geom.Periodic)
	cfg := Config{D: 3, Shape: Tetra, Grains: 20, Diameter: 0.08, Box: box, BondK: 50, Seed: 11}
	a, _, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("same seed produced different packings")
		}
	}
}
