// Package grain builds the composite particles of the paper's
// background section: "complex particles with simple forces" —
// collections of basic spheres stuck together with permanent
// dissipative-spring bonds, whose roughness makes macroscopic
// friction emerge dynamically from microscopic collisions.
//
// A builder places whole grains into a box and returns the initial
// particle state plus the bond table the force law consumes.
package grain

import (
	"fmt"
	"math"
	"math/rand"

	"hybriddem/internal/force"
	"hybriddem/internal/geom"
)

// Shape selects a grain geometry. All shapes keep every bond at rest
// length equal to the particle diameter (touching spheres), which
// guarantees bonded pairs stay inside any cutoff rc > rmax.
type Shape int

const (
	// Dimer is two touching spheres — the minimal rough grain.
	Dimer Shape = iota
	// Trimer is three spheres in an equilateral triangle (2-D and
	// 3-D).
	Trimer
	// Chain is four spheres in a line, the most anisotropic shape.
	Chain
	// Tetra is four spheres at tetrahedron corners (3-D; in 2-D it
	// degenerates to a rhombus of side one diameter).
	Tetra
)

func (s Shape) String() string {
	switch s {
	case Dimer:
		return "dimer"
	case Trimer:
		return "trimer"
	case Chain:
		return "chain"
	case Tetra:
		return "tetra"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Size returns the number of basic particles in the shape.
func (s Shape) Size() int {
	switch s {
	case Dimer:
		return 2
	case Trimer:
		return 3
	case Chain, Tetra:
		return 4
	default:
		return 0
	}
}

// offsets returns the member positions of a shape relative to its
// centre, in units of the particle diameter.
func (s Shape) offsets(d int) [][3]float64 {
	h := 0.5
	switch s {
	case Dimer:
		return [][3]float64{{-h, 0, 0}, {+h, 0, 0}}
	case Trimer:
		r := 1 / math.Sqrt(3)
		return [][3]float64{
			{0, r, 0},
			{-h, -r / 2, 0},
			{+h, -r / 2, 0},
		}
	case Chain:
		return [][3]float64{{-1.5, 0, 0}, {-0.5, 0, 0}, {0.5, 0, 0}, {1.5, 0, 0}}
	case Tetra:
		if d < 3 {
			// Rhombus of unit side in the plane.
			q := math.Sqrt(3) / 2
			return [][3]float64{{-h, 0, 0}, {h, 0, 0}, {0, q, 0}, {0, -q, 0}}
		}
		// Regular tetrahedron with unit edge.
		a := 1 / math.Sqrt(2)
		return [][3]float64{
			{+h, 0, -a / 2}, {-h, 0, -a / 2},
			{0, +h, +a / 2}, {0, -h, +a / 2},
		}
	default:
		return nil
	}
}

// bonds returns the index pairs bonded within the shape (all touching
// pairs: distance one diameter within rounding).
func (s Shape) bonds(d int) [][2]int {
	off := s.offsets(d)
	var out [][2]int
	for i := 0; i < len(off); i++ {
		for j := i + 1; j < len(off); j++ {
			dist := 0.0
			for k := 0; k < 3; k++ {
				dd := off[i][k] - off[j][k]
				dist += dd * dd
			}
			if math.Sqrt(dist) < 1.0+1e-9 {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// State is an explicit initial condition: positions and velocities
// indexed by particle ID.
type State struct {
	Pos []geom.Vec
	Vel []geom.Vec
}

// Config describes a grain packing.
type Config struct {
	D        int
	Shape    Shape
	Grains   int     // number of grains
	Diameter float64 // basic particle diameter
	Box      geom.Box
	// Height confines grain centres to the bottom fraction of the
	// box's last dimension (0 or 1 = anywhere), mirroring the
	// clustered beds of the examples.
	Height float64
	// BondK and BondDamp are the dissipative-spring constants.
	BondK, BondDamp float64
	Seed            int64
}

// Build places the grains with random positions and orientations and
// returns the particle state plus the bond table. Grain members keep
// consecutive IDs, so grains also exercise decomposition: a grain
// whose members straddle a block boundary must still feel its bonds
// through the halo.
func Build(cfg Config) (*State, *force.BondTable, error) {
	if cfg.Shape.Size() == 0 {
		return nil, nil, fmt.Errorf("grain: unknown shape %v", cfg.Shape)
	}
	if cfg.Grains < 1 || cfg.Diameter <= 0 {
		return nil, nil, fmt.Errorf("grain: grains=%d diameter=%g", cfg.Grains, cfg.Diameter)
	}
	per := cfg.Shape.Size()
	n := per * cfg.Grains
	st := &State{Pos: make([]geom.Vec, n), Vel: make([]geom.Vec, n)}
	bt := force.NewBondTable(n, per-1+2, cfg.BondK, cfg.BondDamp)

	rng := rand.New(rand.NewSource(cfg.Seed))
	height := cfg.Height
	if height <= 0 || height > 1 {
		height = 1
	}
	// Keep whole grains inside the box: centres stay a grain radius
	// off every wall.
	margin := 2 * cfg.Diameter
	off := cfg.Shape.offsets(cfg.D)
	pairs := cfg.Shape.bonds(cfg.D)

	for g := 0; g < cfg.Grains; g++ {
		var centre geom.Vec
		for k := 0; k < cfg.D; k++ {
			span := cfg.Box.Len[k]
			if k == cfg.D-1 {
				span *= height
			}
			lo := margin
			hi := span - margin
			if hi <= lo {
				return nil, nil, fmt.Errorf("grain: box dimension %d too small for grains", k)
			}
			centre[k] = lo + rng.Float64()*(hi-lo)
		}
		rot := randomRotation(cfg.D, rng)
		for m, o := range off {
			id := g*per + m
			p := rotate(rot, o, cfg.D)
			for k := 0; k < cfg.D; k++ {
				st.Pos[id][k] = centre[k] + p[k]*cfg.Diameter
			}
		}
		for _, pr := range pairs {
			a := int32(g*per + pr[0])
			b := int32(g*per + pr[1])
			if err := bt.Add(a, b, cfg.Diameter); err != nil {
				return nil, nil, err
			}
		}
	}
	return st, bt, nil
}

// randomRotation draws a rotation: an angle in 2-D, three Euler-ish
// angles in 3-D (uniform enough for packing purposes).
func randomRotation(d int, rng *rand.Rand) [3]float64 {
	var r [3]float64
	r[0] = rng.Float64() * 2 * math.Pi
	if d >= 3 {
		r[1] = math.Acos(2*rng.Float64() - 1)
		r[2] = rng.Float64() * 2 * math.Pi
	}
	return r
}

// rotate applies the rotation to an offset.
func rotate(rot [3]float64, o [3]float64, d int) geom.Vec {
	c0, s0 := math.Cos(rot[0]), math.Sin(rot[0])
	x := c0*o[0] - s0*o[1]
	y := s0*o[0] + c0*o[1]
	z := o[2]
	if d >= 3 {
		c1, s1 := math.Cos(rot[1]), math.Sin(rot[1])
		y, z = c1*y-s1*z, s1*y+c1*z
		c2, s2 := math.Cos(rot[2]), math.Sin(rot[2])
		x, z = c2*x+s2*z, -s2*x+c2*z
	}
	var v geom.Vec
	v[0], v[1] = x, y
	if d >= 3 {
		v[2] = z
	}
	return v
}
