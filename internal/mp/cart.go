package mp

import (
	"fmt"
	"sort"
)

// Cart is a d-dimensional Cartesian process topology over a Comm,
// mirroring MPI_Cart_create with periodic wraparound per dimension.
// Rank 0 holds coordinate (0,...,0); ranks advance fastest in the last
// dimension, matching MPI's row-major convention.
type Cart struct {
	C       *Comm
	D       int
	Dims    []int
	Periods []bool
}

// DimsCreate factors size into d dimensions as squarely as possible
// (largest factors first), mirroring MPI_Dims_create with all entries
// initially zero.
func DimsCreate(size, d int) []int {
	if size < 1 || d < 1 {
		panic(fmt.Sprintf("mp: DimsCreate(%d, %d)", size, d))
	}
	dims := make([]int, d)
	for i := range dims {
		dims[i] = 1
	}
	// Peel prime factors of size largest-first onto the currently
	// smallest dimension.
	var factors []int
	n := size
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			factors = append(factors, f)
			n /= f
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(factors)))
	for _, f := range factors {
		k := 0
		for i := 1; i < d; i++ {
			if dims[i] < dims[k] {
				k = i
			}
		}
		dims[k] *= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dims)))
	return dims
}

// NewCart builds a Cartesian topology; the product of dims must equal
// the communicator size.
func NewCart(c *Comm, dims []int, periods []bool) *Cart {
	p := 1
	for _, v := range dims {
		p *= v
	}
	if p != c.Size() {
		panic(fmt.Sprintf("mp: cart dims %v product %d != size %d", dims, p, c.Size()))
	}
	if len(periods) != len(dims) {
		panic("mp: cart periods length mismatch")
	}
	return &Cart{
		C:       c,
		D:       len(dims),
		Dims:    append([]int(nil), dims...),
		Periods: append([]bool(nil), periods...),
	}
}

// Coords returns the Cartesian coordinates of a rank.
func (ct *Cart) Coords(rank int) []int {
	c := make([]int, ct.D)
	for i := ct.D - 1; i >= 0; i-- {
		c[i] = rank % ct.Dims[i]
		rank /= ct.Dims[i]
	}
	return c
}

// RankOf returns the rank holding the given coordinates, applying
// periodic wrap where enabled. It returns -1 when a non-periodic
// coordinate falls outside the grid (MPI_PROC_NULL).
func (ct *Cart) RankOf(coords []int) int {
	rank := 0
	for i := 0; i < ct.D; i++ {
		v := coords[i]
		n := ct.Dims[i]
		if v < 0 || v >= n {
			if !ct.Periods[i] {
				return -1
			}
			v = ((v % n) + n) % n
		}
		rank = rank*n + v
	}
	return rank
}

// Shift returns the source and destination ranks of a displacement
// along one dimension, mirroring MPI_Cart_shift: src sends to this
// rank, this rank sends to dst. Either may be -1 at a non-periodic
// edge.
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	me := ct.Coords(ct.C.Rank())
	up := append([]int(nil), me...)
	up[dim] += disp
	dn := append([]int(nil), me...)
	dn[dim] -= disp
	return ct.RankOf(dn), ct.RankOf(up)
}
