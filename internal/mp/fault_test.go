package mp

import (
	"errors"
	"testing"
	"time"

	"hybriddem/internal/fault"
)

// pingPong runs a fixed two-rank exchange workload under the given
// options and returns the receiver's comm plus the run error.
func pingPong(t *testing.T, opt RunOptions, rounds int) ([]*Comm, error) {
	t.Helper()
	return RunOpts(2, opt, func(c *Comm) {
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				c.Send(1, 7, []float64{float64(i), float64(i) * 0.5}, []int32{int32(i)})
			} else {
				f, ids := c.Recv(0, 7)
				if len(f) != 2 || f[0] != float64(i) || ids[0] != int32(i) {
					t.Errorf("round %d: received %v %v", i, f, ids)
				}
				c.FreeBuffers(f, ids)
			}
		}
	})
}

func TestFaultPlanDeterministic(t *testing.T) {
	stats := func() FaultStats {
		plan := NewFaultPlan(42)
		plan.CorruptProb = 0 // keep runs healthy: only benign injections
		plan.DuplicateProb = 0.3
		plan.DelayProb = 0.2
		plan.DelayWall = time.Microsecond
		if _, err := pingPong(t, RunOptions{Faults: plan}, 40); err != nil {
			t.Fatalf("benign injection run failed: %v", err)
		}
		return plan.Stats()
	}
	a, b := stats(), stats()
	if a != b {
		t.Fatalf("same seed, different injection decisions: %+v vs %+v", a, b)
	}
	if a.Duplicated == 0 || a.Delayed == 0 {
		t.Fatalf("injection probabilities never fired: %+v", a)
	}
}

func TestCorruptionSurfacesTypedError(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.CorruptProb = 1
	plan.MaxFaults = 1
	_, err := pingPong(t, RunOptions{Faults: plan}, 5)
	if err == nil {
		t.Fatal("corrupted exchange completed cleanly")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Corrupt {
		t.Fatalf("want typed Corrupt fault, got %v", err)
	}
	if fe.Rank != 1 {
		t.Errorf("corruption detected at rank %d, want the receiver (1)", fe.Rank)
	}
}

// TestDuplicatesInvisibleToReceiver: with duplication armed, the
// receiver must see exactly the sent payload sequence, reject the
// copies without advancing its virtual clock, and finish with the same
// clock as a clean run of the identical workload.
func TestDuplicatesInvisibleToReceiver(t *testing.T) {
	clean, err := pingPong(t, RunOptions{}, 30)
	if err != nil {
		t.Fatal(err)
	}

	plan := NewFaultPlan(9)
	plan.DuplicateProb = 1
	comms, err := pingPong(t, RunOptions{Faults: plan}, 30)
	if err != nil {
		t.Fatalf("duplicated run failed: %v", err)
	}
	if plan.Stats().Duplicated == 0 {
		t.Fatal("no duplicates applied")
	}
	if comms[1].TC.MsgsRejected == 0 {
		t.Fatal("receiver rejected no duplicates")
	}
	if got, want := comms[1].Clock(), clean[1].Clock(); got != want {
		t.Errorf("duplicates advanced the receiver clock: %g, clean run %g", got, want)
	}
}

func TestDelayInjection(t *testing.T) {
	plan := NewFaultPlan(2)
	plan.DelayProb = 1
	plan.DelayWall = time.Millisecond
	plan.MaxFaults = 3
	start := time.Now()
	if _, err := pingPong(t, RunOptions{Faults: plan}, 5); err != nil {
		t.Fatalf("delayed run failed: %v", err)
	}
	if st := plan.Stats(); st.Delayed != 3 {
		t.Errorf("delays applied %d, want the MaxFaults budget of 3", st.Delayed)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("run finished in %v, delays not served", elapsed)
	}
}

func TestKillSurfacesTypedError(t *testing.T) {
	for _, wd := range []time.Duration{0, 200 * time.Millisecond} {
		name := "fail-fast"
		if wd > 0 {
			name = "silent-under-watchdog"
		}
		t.Run(name, func(t *testing.T) {
			plan := NewFaultPlan(3)
			plan.ArmKill(1, 2)
			_, err := RunOpts(2, RunOptions{Faults: plan, Watchdog: wd}, func(c *Comm) {
				for i := 0; i < 6; i++ {
					c.FaultPoint(i)
					if c.Rank() == 0 {
						c.Send(1, 1, []float64{1}, nil)
					} else {
						f, ids := c.Recv(0, 1)
						c.FreeBuffers(f, ids)
					}
				}
			})
			if err == nil {
				t.Fatal("run with a killed rank completed cleanly")
			}
			var fe *fault.Error
			if !errors.As(err, &fe) {
				t.Fatalf("untyped error: %v", err)
			}
			// Fail-fast mode reports the kill directly. Under a
			// watchdog the death is silent, so the run may surface
			// either the kill itself or a peer's timeout discovering it.
			if wd == 0 && fe.Kind != fault.Killed {
				t.Fatalf("kind %v, want Killed", fe.Kind)
			}
			if wd > 0 && fe.Kind != fault.Killed && fe.Kind != fault.Timeout {
				t.Fatalf("kind %v, want Killed or Timeout", fe.Kind)
			}
			if plan.Stats().Killed != 1 {
				t.Errorf("kill stats %+v, want exactly one", plan.Stats())
			}
		})
	}
}

func TestKillFiresOnce(t *testing.T) {
	plan := NewFaultPlan(4)
	plan.ArmKill(0, 0)
	if !plan.shouldKill(0, 0) {
		t.Fatal("armed kill did not fire")
	}
	if plan.shouldKill(0, 1) {
		t.Fatal("kill fired twice")
	}
	plan.ArmKill(0, 5)
	if !plan.shouldKill(0, 5) {
		t.Fatal("re-armed kill did not fire")
	}
}

// TestWatchdogRecvTimeout: a Recv whose sender has exited must surface
// a typed Timeout within the deadline order of magnitude, not hang.
func TestWatchdogRecvTimeout(t *testing.T) {
	const wd = 50 * time.Millisecond
	start := time.Now()
	_, err := RunOpts(2, RunOptions{Watchdog: wd}, func(c *Comm) {
		if c.Rank() == 0 {
			f, ids := c.Recv(1, 3) // never sent
			c.FreeBuffers(f, ids)
		}
	})
	elapsed := time.Since(start)
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Timeout {
		t.Fatalf("want typed Timeout, got %v", err)
	}
	if fe.Rank != 0 {
		t.Errorf("timeout reported at rank %d, want the blocked receiver", fe.Rank)
	}
	if elapsed > 20*wd {
		t.Errorf("timeout took %v with a %v deadline", elapsed, wd)
	}
}

// TestWatchdogCollectiveTimeout: a collective abandoned by a returned
// rank must time out, not deadlock.
func TestWatchdogCollectiveTimeout(t *testing.T) {
	const wd = 50 * time.Millisecond
	_, err := RunOpts(3, RunOptions{Watchdog: wd}, func(c *Comm) {
		if c.Rank() == 2 {
			return // abandons the barrier
		}
		c.Barrier()
	})
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Timeout {
		t.Fatalf("want typed Timeout from the abandoned barrier, got %v", err)
	}
	if fe.Op != "barrier" {
		t.Errorf("op = %q, want barrier", fe.Op)
	}
}

func TestNoIntegrityRejectsInjection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NoIntegrity with corruption armed did not panic")
		}
	}()
	plan := NewFaultPlan(5)
	plan.CorruptProb = 0.5
	RunOpts(2, RunOptions{Faults: plan, NoIntegrity: true}, func(c *Comm) {})
}
