package mp

import (
	"math"
	"testing"
)

func TestNewCartRejectsBadDims(t *testing.T) {
	Run(4, nil, func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("mismatched dims product accepted")
			}
		}()
		NewCart(c, []int{3, 2}, []bool{true, true})
	})
}

func TestNewCartRejectsPeriodsMismatch(t *testing.T) {
	Run(4, nil, func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("periods length mismatch accepted")
			}
		}()
		NewCart(c, []int{2, 2}, []bool{true})
	})
}

func TestDimsCreatePanicsOnBadInput(t *testing.T) {
	for _, in := range [][2]int{{0, 2}, {4, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DimsCreate%v accepted", in)
				}
			}()
			DimsCreate(in[0], in[1])
		}()
	}
}

func TestRunPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run(0, ...) accepted")
		}
	}()
	Run(0, nil, func(c *Comm) {})
}

func TestByteScaleAffectsModelledCostOnly(t *testing.T) {
	net := LatBwNetwork{CPUsPerNode: 1, InterLat: 0, InterBw: 1e6, IntraLat: 0, IntraBw: 1e6}
	Run(2, net, func(c *Comm) {
		if c.Rank() == 0 {
			c.SetByteScale(10)
			c.Send(1, 0, make([]float64, 100), nil) // 800 bytes, modelled as 8000
			if c.TC.BytesSent != 800 {
				t.Errorf("counter recorded %d bytes, want raw 800", c.TC.BytesSent)
			}
		} else {
			c.Recv(0, 0)
			want := 8000.0 / 1e6
			if math.Abs(c.Clock()-want) > 1e-12 {
				t.Errorf("receiver clock %g, want %g (scaled bytes)", c.Clock(), want)
			}
		}
	})
}

func TestSetByteScaleIgnoresNonPositive(t *testing.T) {
	Run(1, nil, func(c *Comm) {
		c.SetByteScale(-3)
		if c.modelBytes(100) != 100 {
			t.Error("non-positive scale not reset to 1")
		}
	})
}

func TestSendRecvSelf(t *testing.T) {
	Run(1, nil, func(c *Comm) {
		f, i := c.SendRecv(0, 9, []float64{3}, []int32{4}, 0)
		if f[0] != 3 || i[0] != 4 {
			t.Errorf("self sendrecv got %v %v", f, i)
		}
		if c.Clock() != 0 {
			t.Errorf("self message charged %g", c.Clock())
		}
	})
}

func TestComputeIgnoresNegative(t *testing.T) {
	Run(1, nil, func(c *Comm) {
		c.Compute(-5)
		if c.Clock() != 0 {
			t.Error("negative compute advanced the clock")
		}
		c.SetClock(3)
		if c.Clock() != 3 {
			t.Error("SetClock failed")
		}
	})
}

func TestAllreduceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	Run(2, nil, func(c *Comm) {
		c.Allreduce(make([]float64, c.Rank()+1), Sum)
	})
}
