package mp

import (
	"errors"
	"testing"
	"time"

	"hybriddem/internal/fault"
)

// TestSplitNodeGrouping checks the MPI_Comm_split_type analogue
// against both network shapes: a platform network groups consecutive
// ranks by CPUsPerNode, ZeroNetwork puts the whole world on one node.
func TestSplitNodeGrouping(t *testing.T) {
	net := LatBwNetwork{CPUsPerNode: 4, IntraLat: 1e-6, IntraBw: 1e9, InterLat: 1e-5, InterBw: 1e8}
	Run(8, net, func(c *Comm) {
		g := c.SplitNode()
		if g.Size() != 4 {
			t.Errorf("rank %d: group size %d, want 4", c.Rank(), g.Size())
		}
		node := c.Rank() / 4
		for i, r := range g.Ranks() {
			if want := node*4 + i; r != want {
				t.Errorf("rank %d: group member %d is rank %d, want %d", c.Rank(), i, r, want)
			}
		}
		if g.Index() != c.Rank()%4 {
			t.Errorf("rank %d: index %d, want %d", c.Rank(), g.Index(), c.Rank()%4)
		}
		other := (c.Rank() + 4) % 8
		if gi := g.IndexOf(other); gi != -1 {
			t.Errorf("rank %d: off-node rank %d resolved to group index %d", c.Rank(), other, gi)
		}
	})
	Run(6, ZeroNetwork{}, func(c *Comm) {
		g := c.SplitNode()
		if g.Size() != 6 || g.Index() != c.Rank() {
			t.Errorf("rank %d: ZeroNetwork group size %d index %d, want 6 and %d",
				c.Rank(), g.Size(), g.Index(), c.Rank())
		}
	})
}

// TestWinPutGetVisibility drives several full fence epochs: every rank
// packs an epoch-stamped pattern into its own region, fences, and
// loads every peer's region — both the zero-copy view and the copying
// Get must see exactly what the owner put there.
func TestWinPutGetVisibility(t *testing.T) {
	const p, slots, epochs = 4, 16, 5
	Run(p, ZeroNetwork{}, func(c *Comm) {
		g := c.SplitNode()
		win := NewWin(g, WinCosts{})
		win.Reserve(slots)
		buf := make([]float64, slots)
		for e := 0; e < epochs; e++ {
			for i := range buf {
				buf[i] = float64(1000*c.Rank() + 100*e + i)
			}
			win.Put(0, buf)
			win.Fence()
			for peer := 0; peer < g.Size(); peer++ {
				v := win.GetView(peer, 0, slots)
				got := make([]float64, slots)
				win.Get(peer, 0, got)
				for i := 0; i < slots; i++ {
					want := float64(1000*g.Ranks()[peer] + 100*e + i)
					if v[i] != want || got[i] != want {
						t.Errorf("rank %d epoch %d: peer %d slot %d = view %v / copy %v, want %v",
							c.Rank(), e, peer, i, v[i], got[i], want)
						return
					}
				}
			}
			win.Fence() // close the read epoch before the next write
		}
	})
}

// TestWinFenceClock checks the cost model: a fence equalises the group
// at the maximum member clock plus FenceLat, and a fenced load from a
// peer advances only the reader, by bytes/LoadBw; reading one's own
// region is free.
func TestWinFenceClock(t *testing.T) {
	costs := WinCosts{LoadBw: 1e8, FenceLat: 2e-6}
	comms := Run(2, ZeroNetwork{}, func(c *Comm) {
		g := c.SplitNode()
		win := NewWin(g, costs)
		win.Reserve(10)
		c.SetClock(float64(3 + 7*c.Rank())) // clocks 3 and 10
		win.Fence()
		if want := 10 + costs.FenceLat; c.Clock() != want {
			t.Errorf("rank %d: post-fence clock %v, want %v", c.Rank(), c.Clock(), want)
		}
		if c.Rank() == 0 {
			win.GetView(1, 0, 10) // 80 bytes from the peer
			if want := 10 + costs.FenceLat + 80/costs.LoadBw; c.Clock() != want {
				t.Errorf("rank 0: post-load clock %v, want %v", c.Clock(), want)
			}
		} else {
			win.GetView(1, 0, 10) // own region: free
			if want := 10 + costs.FenceLat; c.Clock() != want {
				t.Errorf("rank 1: self-load moved the clock to %v, want %v", c.Clock(), want)
			}
		}
	})
	for _, c := range comms {
		if c.TC.WinFences != 2 { // Reserve's publication fence + the explicit one
			t.Errorf("rank %d: %d fences, want 2", c.Rank(), c.TC.WinFences)
		}
		if c.TC.WinLoadBytes != 80 {
			t.Errorf("rank %d: %d window bytes loaded, want 80", c.Rank(), c.TC.WinLoadBytes)
		}
	}
}

// TestWinGroupOfOne: on a single-CPU node (T3E-style) the group is the
// rank alone and a fence must not block or rendezvous with anyone.
func TestWinGroupOfOne(t *testing.T) {
	net := LatBwNetwork{CPUsPerNode: 1, IntraLat: 1e-6, IntraBw: 1e9, InterLat: 1e-5, InterBw: 1e8}
	Run(3, net, func(c *Comm) {
		g := c.SplitNode()
		if g.Size() != 1 {
			t.Fatalf("rank %d: group size %d, want 1", c.Rank(), g.Size())
		}
		win := NewWin(g, WinCosts{FenceLat: 1})
		win.Reserve(4)
		before := c.Clock()
		win.Fence()
		if c.Clock() != before {
			t.Errorf("rank %d: lone-rank fence advanced the clock", c.Rank())
		}
	})
}

// TestWinRaceStress is the -race workout: many ranks hammer the
// write-fence-read-fence cycle with a mid-run Reserve regrowth, so the
// detector sees the Put/GetView pairs ordered only by the fence's
// happens-before edge and Reserve's publication of fresh storage.
func TestWinRaceStress(t *testing.T) {
	const p, epochs = 8, 150
	Run(p, ZeroNetwork{}, func(c *Comm) {
		g := c.SplitNode()
		win := NewWin(g, WinCosts{})
		size := 32
		win.Reserve(size)
		for e := 0; e < epochs; e++ {
			if e == epochs/2 {
				size = 64 // collective regrowth republishes every buffer
				win.Reserve(size)
			}
			dst := win.Slice(0, size)
			for i := range dst {
				dst[i] = float64(c.Rank()*epochs + e)
			}
			win.Fence()
			for peer := 0; peer < p; peer++ {
				v := win.GetView(peer, 0, size)
				want := float64(peer*epochs + e)
				for i, x := range v {
					if x != want {
						t.Errorf("rank %d epoch %d: peer %d slot %d = %v, want %v",
							c.Rank(), e, peer, i, x, want)
						return
					}
				}
			}
			win.Fence()
		}
	})
}

// TestWinFenceWatchdogTimeout: a fence whose peer never arrives must
// trip the armed watchdog and surface as a classified Timeout fault
// instead of hanging the run.
func TestWinFenceWatchdogTimeout(t *testing.T) {
	_, err := RunOpts(2, RunOptions{Watchdog: 100 * time.Millisecond}, func(c *Comm) {
		g := c.SplitNode()
		win := NewWin(g, WinCosts{})
		if c.Rank() == 1 {
			return // never fences
		}
		win.Fence()
	})
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Fatalf("error is not a typed fault: %v", err)
	}
	if fe.Kind != fault.Timeout || fe.Op != "fence" {
		t.Fatalf("fault = kind %v op %q, want Timeout on fence (%v)", fe.Kind, fe.Op, err)
	}
}

// TestWinFenceAbandonedByKill: without a watchdog an injected kill
// fails fast — the waiting fence must wake via the any-panic abort and
// the run must classify the root cause as the kill, not deadlock.
func TestWinFenceAbandonedByKill(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.ArmKill(1, 0)
	done := make(chan error, 1)
	go func() {
		_, err := RunOpts(2, RunOptions{Faults: plan}, func(c *Comm) {
			g := c.SplitNode()
			win := NewWin(g, WinCosts{})
			c.FaultPoint(0) // rank 1 dies here
			win.Fence()
		})
		done <- err
	}()
	select {
	case err := <-done:
		var fe *fault.Error
		if !errors.As(err, &fe) {
			t.Fatalf("error is not a typed fault: %v", err)
		}
		if fe.Kind != fault.Killed {
			t.Fatalf("fault kind = %v, want Killed (%v)", fe.Kind, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fence deadlocked on a killed peer")
	}
}
