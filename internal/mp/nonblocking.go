package mp

import "fmt"

// Request is a handle on a nonblocking operation, mirroring
// MPI_Request. Complete it with Wait (or the communicator's WaitAll).
type Request struct {
	c    *Comm
	done bool

	// receive side
	isRecv   bool
	src, tag int
	f        []float64
	i        []int32
}

// ISend posts a nonblocking send. Because the runtime's sends are
// eager and buffered, the data is already on its way when ISend
// returns; the request completes immediately but is returned for
// symmetry with MPI code structure. Handles come from the world's
// request pool; steady-state callers hand them back with Release.
func (c *Comm) ISend(dst, tag int, f []float64, ints []int32) *Request {
	c.Send(dst, tag, f, ints)
	r := c.w.getReq()
	*r = Request{c: c, done: true}
	return r
}

// IRecv posts a nonblocking receive for (src, tag). The matching and
// clock accounting happen at Wait time; posting is free. This models
// MPI's ability to overlap communication with computation: any
// compute the rank performs between IRecv and Wait runs "during" the
// transfer on the virtual timeline. Handles come from the world's
// request pool; steady-state callers hand them back with Release.
func (c *Comm) IRecv(src, tag int) *Request {
	if src < 0 || src >= c.size {
		panic(fmt.Sprintf("mp: irecv from invalid rank %d of %d", src, c.size))
	}
	r := c.w.getReq()
	*r = Request{c: c, isRecv: true, src: src, tag: tag}
	return r
}

// Release returns a completed request handle to the world's pool so
// the steady-state split-phase exchange allocates nothing. The caller
// must not touch the request afterwards (payload slices obtained from
// Wait are unaffected — return those with FreeBuffers). Releasing is
// optional; unreleased requests are simply garbage collected.
func (r *Request) Release() {
	w := r.c.w
	*r = Request{}
	w.poolMu.Lock()
	w.freeReq = append(w.freeReq, r)
	w.poolMu.Unlock()
}

// Wait blocks until the operation completes and returns the received
// payloads (nil for sends). Waiting twice is an error.
func (r *Request) Wait() ([]float64, []int32) {
	if r.done {
		if r.isRecv {
			return r.f, r.i
		}
		return nil, nil
	}
	r.done = true
	r.f, r.i = r.c.Recv(r.src, r.tag)
	return r.f, r.i
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// WaitAll completes a set of requests in order and returns the
// received payloads aligned with the input slice.
func WaitAll(reqs []*Request) (fs [][]float64, is [][]int32) {
	fs = make([][]float64, len(reqs))
	is = make([][]int32, len(reqs))
	for k, r := range reqs {
		fs[k], is[k] = r.Wait()
	}
	return fs, is
}

// Gather collects every rank's vector on root, concatenated in rank
// order; non-root ranks receive nil. Payload sizes may differ by
// rank. The returned offsets slice (root only) gives each rank's
// starting index.
func (c *Comm) Gather(root int, v []float64) (all []float64, offsets []int) {
	contrib := append([]float64(nil), v...)
	res := c.rendezvous(contrib, func(per [][]float64) []float64 {
		var out []float64
		for _, pv := range per {
			out = append(out, pv...)
		}
		return out
	}, 8*len(v))
	// Exchange per-rank lengths for the offsets; every rank must join
	// this collective even though only root consumes the result.
	lens := c.Allreduce(makeLenVec(c.size, c.rank, len(v)), Sum)
	if c.rank != root {
		return nil, nil
	}
	offsets = make([]int, c.size)
	acc := 0
	for rk := 0; rk < c.size; rk++ {
		offsets[rk] = acc
		acc += int(lens[rk])
	}
	return append([]float64(nil), res...), offsets
}

// makeLenVec builds a one-hot length vector for the offset exchange.
func makeLenVec(size, rank, n int) []float64 {
	v := make([]float64, size)
	v[rank] = float64(n)
	return v
}

// Scatter distributes equal-length chunks of root's vector: rank k
// receives chunk[k]. Every rank must pass the same chunk length; only
// root's data matters.
func (c *Comm) Scatter(root int, data []float64, chunk int) []float64 {
	var contrib []float64
	if c.rank == root {
		if len(data) != chunk*c.size {
			panic(fmt.Sprintf("mp: scatter of %d elements into %d chunks of %d", len(data), c.size, chunk))
		}
		contrib = append([]float64(nil), data...)
	}
	res := c.rendezvous(contrib, func(per [][]float64) []float64 {
		return per[root]
	}, 8*chunk)
	out := make([]float64, chunk)
	copy(out, res[c.rank*chunk:(c.rank+1)*chunk])
	return out
}

// AllGather is Gather to every rank.
func (c *Comm) AllGather(v []float64) []float64 {
	contrib := append([]float64(nil), v...)
	res := c.rendezvous(contrib, func(per [][]float64) []float64 {
		var out []float64
		for _, pv := range per {
			out = append(out, pv...)
		}
		return out
	}, 8*len(v))
	return append([]float64(nil), res...)
}
