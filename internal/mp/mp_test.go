package mp

import (
	"math"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
)

func TestRunRankIdentity(t *testing.T) {
	const p = 7
	var mask int64
	comms := Run(p, nil, func(c *Comm) {
		if c.Size() != p {
			t.Errorf("size %d", c.Size())
		}
		atomic.AddInt64(&mask, 1<<uint(c.Rank()))
	})
	if mask != (1<<p)-1 {
		t.Errorf("ranks seen mask %b", mask)
	}
	if len(comms) != p {
		t.Errorf("%d comms returned", len(comms))
	}
}

func TestSendRecvRing(t *testing.T) {
	const p = 5
	Run(p, nil, func(c *Comm) {
		dst := (c.Rank() + 1) % p
		src := (c.Rank() + p - 1) % p
		f, ids := c.SendRecv(dst, 42, []float64{float64(c.Rank())}, []int32{int32(c.Rank())}, src)
		if f[0] != float64(src) || ids[0] != int32(src) {
			t.Errorf("rank %d received %v %v, want from %d", c.Rank(), f, ids, src)
		}
	})
}

func TestMessageTagMatching(t *testing.T) {
	// Messages with different tags must match their own Recv even
	// when sent in the "wrong" order.
	Run(2, nil, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 2, []float64{2}, nil)
			c.Send(1, 1, []float64{1}, nil)
		} else {
			f1, _ := c.Recv(0, 1)
			f2, _ := c.Recv(0, 2)
			if f1[0] != 1 || f2[0] != 2 {
				t.Errorf("tag matching failed: %v %v", f1, f2)
			}
		}
	})
}

func TestNonOvertakingSameTag(t *testing.T) {
	Run(2, nil, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 20; i++ {
				c.Send(1, 7, []float64{float64(i)}, nil)
			}
		} else {
			for i := 0; i < 20; i++ {
				f, _ := c.Recv(0, 7)
				if f[0] != float64(i) {
					t.Fatalf("message %d overtaken by %v", i, f[0])
				}
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	Run(2, nil, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			c.Send(1, 0, buf, nil)
			buf[0] = 99 // must not affect the in-flight message
			c.Barrier()
		} else {
			c.Barrier()
			f, _ := c.Recv(0, 0)
			if f[0] != 1 {
				t.Errorf("send aliased caller buffer: %v", f)
			}
		}
	})
}

func TestAllreduceOps(t *testing.T) {
	const p = 4
	Run(p, nil, func(c *Comm) {
		r := float64(c.Rank())
		sum := c.Allreduce([]float64{r, -r}, Sum)
		if sum[0] != 6 || sum[1] != -6 {
			t.Errorf("sum = %v", sum)
		}
		max := c.AllreduceScalar(r, Max)
		if max != 3 {
			t.Errorf("max = %v", max)
		}
		min := c.AllreduceScalar(r, Min)
		if min != 0 {
			t.Errorf("min = %v", min)
		}
	})
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// Floating-point sums must combine in rank order regardless of
	// arrival order, so repeated runs agree bitwise.
	vals := []float64{1e-17, 1.0, -1.0, 3e-17}
	var results [8]float64
	for trial := 0; trial < 8; trial++ {
		Run(4, nil, func(c *Comm) {
			s := c.AllreduceScalar(vals[c.Rank()], Sum)
			if c.Rank() == 0 {
				results[trial] = s
			}
		})
	}
	for i := 1; i < 8; i++ {
		if results[i] != results[0] {
			t.Fatalf("allreduce not deterministic: %v", results)
		}
	}
}

func TestAllgather(t *testing.T) {
	// Variable-length contributions concatenate in rank order on every
	// rank; the caller's buffer must not be aliased by the result.
	Run(3, nil, func(c *Comm) {
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(10*c.Rank() + i)
		}
		got := c.Allgather(mine)
		want := []float64{0, 10, 11, 20, 21, 22}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rank %d allgather got %v, want %v", c.Rank(), got, want)
		}
		mine[0] = -1 // mutate after the gather: result must hold a copy
		if got[0] != 0 || got[1] != 10 || got[3] != 20 {
			t.Errorf("allgather result aliases the contribution buffer: %v", got)
		}
		got2 := c.Allgather([]float64{float64(100 + c.Rank())})
		if want2 := []float64{100, 101, 102}; !reflect.DeepEqual(got2, want2) {
			t.Errorf("rank %d second allgather got %v, want %v", c.Rank(), got2, want2)
		}
	})
}

func TestBcast(t *testing.T) {
	Run(3, nil, func(c *Comm) {
		var v []float64
		if c.Rank() == 1 {
			v = []float64{3.14, 2.71}
		}
		got := c.Bcast(1, v)
		if !reflect.DeepEqual(got, []float64{3.14, 2.71}) {
			t.Errorf("rank %d bcast got %v", c.Rank(), got)
		}
	})
}

func TestRepeatedCollectives(t *testing.T) {
	// Generation bookkeeping: many back-to-back collectives of mixed
	// type must pair up correctly.
	Run(3, nil, func(c *Comm) {
		for i := 0; i < 50; i++ {
			s := c.AllreduceScalar(float64(i), Sum)
			if s != float64(3*i) {
				t.Fatalf("iteration %d sum %v", i, s)
			}
			c.Barrier()
		}
	})
}

func TestVirtualClockMessageCausality(t *testing.T) {
	net := LatBwNetwork{CPUsPerNode: 1, InterLat: 1e-3, InterBw: 1e6, IntraLat: 1e-3, IntraBw: 1e6}
	comms := Run(2, net, func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(0.5)
			c.Send(1, 0, []float64{1}, nil)
		} else {
			c.Recv(0, 0)
			// 0.5 compute + 1ms latency + 8 bytes / 1e6.
			want := 0.5 + 1e-3 + 8e-6
			if math.Abs(c.Clock()-want) > 1e-12 {
				t.Errorf("receiver clock %g, want %g", c.Clock(), want)
			}
		}
	})
	if comms[0].Clock() != 0.5 {
		t.Errorf("sender clock %g", comms[0].Clock())
	}
}

func TestVirtualClockRecvDoesNotRewind(t *testing.T) {
	Run(2, nil, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1}, nil)
		} else {
			c.Compute(2.0) // receiver already ahead of sender
			c.Recv(0, 0)
			if c.Clock() != 2.0 {
				t.Errorf("recv rewound clock to %g", c.Clock())
			}
		}
	})
}

func TestBarrierEqualisesClocks(t *testing.T) {
	comms := Run(3, nil, func(c *Comm) {
		c.Compute(float64(c.Rank()))
		c.Barrier()
	})
	for _, c := range comms {
		if c.Clock() != 2.0 {
			t.Errorf("rank %d clock %g after barrier, want 2", c.Rank(), c.Clock())
		}
	}
}

func TestCollectiveClockIncludesCost(t *testing.T) {
	net := LatBwNetwork{CPUsPerNode: 4, IntraLat: 1e-4, IntraBw: 1e9}
	comms := Run(4, net, func(c *Comm) {
		c.AllreduceScalar(1, Sum)
	})
	want := net.CollectiveCost(4, 8)
	for _, c := range comms {
		if math.Abs(c.Clock()-want) > 1e-15 {
			t.Errorf("clock %g, want %g", c.Clock(), want)
		}
	}
}

func TestCountersTrackMessages(t *testing.T) {
	net := LatBwNetwork{CPUsPerNode: 2, IntraLat: 1e-6, IntraBw: 1e9, InterLat: 1e-5, InterBw: 1e8}
	comms := Run(4, net, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10), nil) // intra (ranks 0,1 on node 0)
			c.Send(2, 0, make([]float64, 10), nil) // inter
		}
		c.Barrier()
		if c.Rank() == 1 || c.Rank() == 2 {
			c.Recv(0, 0)
		}
	})
	tc := comms[0].TC
	if tc.MsgsSent != 2 || tc.BytesSent != 160 {
		t.Errorf("sent %d msgs %d bytes", tc.MsgsSent, tc.BytesSent)
	}
	if tc.MsgsIntra != 1 || tc.BytesIntra != 80 {
		t.Errorf("intra %d msgs %d bytes", tc.MsgsIntra, tc.BytesIntra)
	}
	if tc.Barriers != 1 {
		t.Errorf("barriers %d", tc.Barriers)
	}
}

func TestRankPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rank panic did not propagate")
		}
	}()
	Run(3, nil, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks block in a collective; the abort path must wake
		// them rather than deadlock.
		c.Barrier()
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid destination did not panic")
		}
	}()
	Run(1, nil, func(c *Comm) {
		c.Send(5, 0, nil, nil)
	})
}

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		size, d int
		want    []int
	}{
		{16, 2, []int{4, 4}},
		{12, 2, []int{4, 3}},
		{8, 3, []int{2, 2, 2}},
		{1, 2, []int{1, 1}},
		{7, 2, []int{7, 1}},
		{36, 2, []int{6, 6}},
		{24, 3, []int{4, 3, 2}},
	}
	for _, tc := range cases {
		got := DimsCreate(tc.size, tc.d)
		prod := 1
		for _, v := range got {
			prod *= v
		}
		if prod != tc.size {
			t.Errorf("DimsCreate(%d,%d) = %v, product %d", tc.size, tc.d, got, prod)
		}
		if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] > got[b] }) {
			t.Errorf("DimsCreate(%d,%d) = %v not descending", tc.size, tc.d, got)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("DimsCreate(%d,%d) = %v, want %v", tc.size, tc.d, got, tc.want)
		}
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	Run(12, nil, func(c *Comm) {
		ct := NewCart(c, []int{4, 3}, []bool{true, true})
		for r := 0; r < 12; r++ {
			co := ct.Coords(r)
			if got := ct.RankOf(co); got != r {
				t.Errorf("coords round trip %d -> %v -> %d", r, co, got)
			}
		}
	})
}

func TestCartShiftPeriodic(t *testing.T) {
	Run(4, nil, func(c *Comm) {
		ct := NewCart(c, []int{4}, []bool{true})
		src, dst := ct.Shift(0, 1)
		wantDst := (c.Rank() + 1) % 4
		wantSrc := (c.Rank() + 3) % 4
		if src != wantSrc || dst != wantDst {
			t.Errorf("rank %d shift = (%d,%d), want (%d,%d)", c.Rank(), src, dst, wantSrc, wantDst)
		}
	})
}

func TestCartShiftWalledEdge(t *testing.T) {
	Run(3, nil, func(c *Comm) {
		ct := NewCart(c, []int{3}, []bool{false})
		src, dst := ct.Shift(0, 1)
		if c.Rank() == 0 && src != -1 {
			t.Errorf("rank 0 src = %d, want -1", src)
		}
		if c.Rank() == 2 && dst != -1 {
			t.Errorf("rank 2 dst = %d, want -1", dst)
		}
		if c.Rank() == 1 && (src != 0 || dst != 2) {
			t.Errorf("rank 1 shift = (%d,%d)", src, dst)
		}
	})
}

func TestLatBwNetworkClasses(t *testing.T) {
	n := LatBwNetwork{CPUsPerNode: 4, IntraLat: 1e-6, IntraBw: 1e9, InterLat: 1e-5, InterBw: 1e8}
	if !n.SameNode(0, 3) || n.SameNode(3, 4) {
		t.Error("node grouping wrong")
	}
	if n.MsgCost(0, 0, 1000) != 0 {
		t.Error("self message should be free")
	}
	intra := n.MsgCost(0, 1, 1000)
	inter := n.MsgCost(0, 4, 1000)
	if intra >= inter {
		t.Errorf("intra %g >= inter %g", intra, inter)
	}
	if math.Abs(intra-(1e-6+1e-6)) > 1e-18 {
		t.Errorf("intra cost %g", intra)
	}
	if n.BarrierCost(1) != 0 || n.BarrierCost(8) <= 0 {
		t.Error("barrier cost endpoints")
	}
	if n.CollectiveCost(1, 100) != 0 {
		t.Error("p=1 collective should be free")
	}
}

func TestZeroNetworkIsFree(t *testing.T) {
	var z ZeroNetwork
	if z.MsgCost(0, 1, 1e6) != 0 || z.BarrierCost(100) != 0 || z.CollectiveCost(10, 10) != 0 || !z.SameNode(0, 99) {
		t.Error("ZeroNetwork not free")
	}
}
