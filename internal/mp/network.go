// Package mp is a message-passing runtime: the subset of MPI the
// paper's code uses, rebuilt on goroutines and channels. Ranks execute
// a rank function concurrently; point-to-point messages match on
// (source, tag) with eager buffering; collectives (barrier, allreduce,
// bcast) reduce deterministically in rank order; Cartesian topologies
// mirror MPI_Cart_create/MPI_Cart_shift.
//
// Every rank carries a virtual clock. Compute phases advance it
// explicitly; receiving a message advances it to at least the sender's
// send time plus the Network's modelled cost; collectives equalise the
// team. Because clock propagation follows message causality only, the
// modelled times are deterministic regardless of goroutine scheduling,
// while the same run still exhibits real parallelism for wall-clock
// benchmarking.
package mp

import "math"

// Network models the cost and topology of the interconnect. The
// machine package provides implementations for the paper's platforms;
// tests use the zero-cost network.
type Network interface {
	// MsgCost returns the modelled seconds for a point-to-point
	// message of the given payload size between two ranks.
	MsgCost(from, to, bytes int) float64
	// SameNode reports whether two ranks share an SMP node, which
	// determines the message's link class in the counters.
	SameNode(a, b int) bool
	// BarrierCost returns the modelled seconds for a p-rank barrier.
	BarrierCost(p int) float64
	// CollectiveCost returns the modelled seconds for a p-rank
	// reduction/broadcast of the given payload.
	CollectiveCost(p, bytes int) float64
}

// ZeroNetwork is a free, single-node network: every operation costs
// nothing and all ranks share a node. Correctness tests run on it.
type ZeroNetwork struct{}

func (ZeroNetwork) MsgCost(from, to, bytes int) float64 { return 0 }
func (ZeroNetwork) SameNode(a, b int) bool              { return true }
func (ZeroNetwork) BarrierCost(p int) float64           { return 0 }
func (ZeroNetwork) CollectiveCost(p, bytes int) float64 { return 0 }

// LatBwNetwork is a LogP-style two-level network: ranks are grouped
// into nodes of CPUsPerNode consecutive ranks; messages pay latency
// plus bytes/bandwidth with separate intra- and inter-node parameters.
// The machine package builds the paper's three platforms from it.
type LatBwNetwork struct {
	CPUsPerNode int     // ranks per SMP node (>=1)
	IntraLat    float64 // seconds, same node
	IntraBw     float64 // bytes/second, same node
	InterLat    float64 // seconds, across nodes
	InterBw     float64 // bytes/second, across nodes
}

// node returns the SMP node of a rank.
func (n LatBwNetwork) node(rank int) int {
	if n.CPUsPerNode <= 1 {
		return rank
	}
	return rank / n.CPUsPerNode
}

// SameNode implements Network.
func (n LatBwNetwork) SameNode(a, b int) bool { return n.node(a) == n.node(b) }

// MsgCost implements Network.
func (n LatBwNetwork) MsgCost(from, to, bytes int) float64 {
	if from == to {
		return 0 // self-messages are a memcpy; charged as compute
	}
	if n.SameNode(from, to) {
		return n.IntraLat + float64(bytes)/n.IntraBw
	}
	return n.InterLat + float64(bytes)/n.InterBw
}

// BarrierCost implements Network: a log-depth dissemination barrier
// over the slowest link class in use.
func (n LatBwNetwork) BarrierCost(p int) float64 {
	if p <= 1 {
		return 0
	}
	lat := n.IntraLat
	if p > n.CPUsPerNode && n.CPUsPerNode >= 1 {
		lat = n.InterLat
	}
	return math.Ceil(math.Log2(float64(p))) * lat
}

// CollectiveCost implements Network: a binomial tree of p ranks moving
// the payload at each level.
func (n LatBwNetwork) CollectiveCost(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	lat, bw := n.IntraLat, n.IntraBw
	if p > n.CPUsPerNode && n.CPUsPerNode >= 1 {
		lat, bw = n.InterLat, n.InterBw
	}
	levels := math.Ceil(math.Log2(float64(p)))
	return levels * (lat + float64(bytes)/bw)
}
