package mp

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// FaultPlan is a seeded, deterministic chaos schedule for one or more
// runs. It can kill a chosen rank at a chosen global step (ArmKill)
// and corrupt, duplicate or delay point-to-point payloads with the
// configured per-message probabilities. Install a plan via
// RunOptions.Faults; a nil plan injects nothing.
//
// Determinism: each rank draws from its own rand stream (Seed+rank)
// and always draws the same number of variates per send, so the
// schedule of candidate faults depends only on Seed and each rank's
// send sequence — not on goroutine interleaving. MaxFaults caps how
// many payload faults (corrupt+duplicate+delay combined) are actually
// applied across the plan's lifetime; the cap is shared state, so
// which candidates land when several ranks race to the cap can vary,
// but every applied fault is detected (never silently accepted), so
// supervised trajectories stay bit-identical regardless.
//
// Streams are deliberately not reset between runs: a supervisor that
// retries after a detected fault re-runs against the plan's remaining
// fault budget, so bounded MaxFaults guarantees the retries eventually
// execute clean.
type FaultPlan struct {
	Seed          int64
	CorruptProb   float64       // per-message probability of a payload bit flip
	DuplicateProb float64       // per-message probability of delivering twice
	DelayProb     float64       // per-message probability of a wall-clock stall
	DelayWall     time.Duration // stall length for delayed sends
	MaxFaults     int           // cap on applied payload faults (0 = unlimited)

	mu        sync.Mutex
	rngs      []*rand.Rand
	applied   int
	killArmed bool
	killFired bool
	killRank  int
	killStep  int
	stats     FaultStats
}

// FaultStats reports how many faults a plan actually applied.
type FaultStats struct {
	Corrupted  int
	Duplicated int
	Delayed    int
	Killed     int
}

// NewFaultPlan returns an empty plan seeded for deterministic draws.
// Configure the probability fields (and ArmKill) before the run.
func NewFaultPlan(seed int64) *FaultPlan { return &FaultPlan{Seed: seed} }

// ArmKill schedules rank to die at the first FaultPoint whose global
// step is >= step. The kill fires exactly once per plan, so a
// supervisor retrying after the failure is not re-killed.
func (fp *FaultPlan) ArmKill(rank, step int) {
	fp.mu.Lock()
	fp.killArmed, fp.killFired = true, false
	fp.killRank, fp.killStep = rank, step
	fp.mu.Unlock()
}

// Stats returns a snapshot of the applied-fault counts.
func (fp *FaultPlan) Stats() FaultStats {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.stats
}

// shouldKill reports (once) whether rank must die at step.
func (fp *FaultPlan) shouldKill(rank, step int) bool {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if !fp.killArmed || fp.killFired || rank != fp.killRank || step < fp.killStep {
		return false
	}
	fp.killFired = true
	fp.stats.Killed++
	return true
}

// rng returns rank's private stream, growing the table on first use.
// The stream itself is only ever used from rank's goroutine.
func (fp *FaultPlan) rng(rank int) *rand.Rand {
	fp.mu.Lock()
	for len(fp.rngs) <= rank {
		fp.rngs = append(fp.rngs, rand.New(rand.NewSource(fp.Seed+int64(len(fp.rngs)))))
	}
	r := fp.rngs[rank]
	fp.mu.Unlock()
	return r
}

// claim consumes one unit of the shared fault budget, reporting
// whether the candidate fault may be applied.
func (fp *FaultPlan) claim() bool {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.MaxFaults > 0 && fp.applied >= fp.MaxFaults {
		return false
	}
	fp.applied++
	return true
}

// mangle applies the plan to one outgoing packet (whose checksum is
// already set): it may flip a payload bit in place, return a deep copy
// to deliver as a duplicate, and/or return a wall-clock delay to sleep
// before delivery. The three variates are always drawn so the
// candidate schedule is interleaving-independent.
func (fp *FaultPlan) mangle(c *Comm, p *packet) (dup *packet, delay time.Duration) {
	r := fp.rng(c.rank)
	drawC, drawD, drawW := r.Float64(), r.Float64(), r.Float64()
	if drawC < fp.CorruptProb && fp.claim() {
		fp.corrupt(r, p)
		fp.mu.Lock()
		fp.stats.Corrupted++
		fp.mu.Unlock()
	}
	if drawD < fp.DuplicateProb && fp.claim() {
		// The duplicate must own fresh pooled buffers: the original and
		// the copy are freed independently by the receiver, and sharing
		// backing arrays would double-free the pool.
		d := *p
		if len(p.f) > 0 {
			d.f = c.w.getF(len(p.f))
			copy(d.f, p.f)
		}
		if len(p.i) > 0 {
			d.i = c.w.getI(len(p.i))
			copy(d.i, p.i)
		}
		dup = &d
		fp.mu.Lock()
		fp.stats.Duplicated++
		fp.mu.Unlock()
	}
	if drawW < fp.DelayProb && fp.DelayWall > 0 && fp.claim() {
		delay = fp.DelayWall
		fp.mu.Lock()
		fp.stats.Delayed++
		fp.mu.Unlock()
	}
	return dup, delay
}

// corrupt flips one random payload bit (or, for empty payloads, the
// checksum itself) so the receiver's integrity check must fire.
func (fp *FaultPlan) corrupt(r *rand.Rand, p *packet) {
	nf, ni := len(p.f), len(p.i)
	bits := nf*64 + ni*32
	if bits == 0 {
		p.sum ^= 1
		return
	}
	b := r.Intn(bits)
	if b < nf*64 {
		p.f[b/64] = flipFloatBit(p.f[b/64], uint(b%64))
	} else {
		b -= nf * 64
		p.i[b/32] ^= int32(1) << uint(b%32)
	}
}

// flipFloatBit flips one bit of v's IEEE-754 representation.
func flipFloatBit(v float64, bit uint) float64 {
	return math.Float64frombits(math.Float64bits(v) ^ (1 << bit))
}
