package mp

import (
	"fmt"
	"sync"

	"hybriddem/internal/trace"
)

// packet is one in-flight point-to-point message. Payloads carry the
// two element types the DEM code exchanges: float64 (positions,
// velocities, energies) and int32 (identities, counts, templates).
type packet struct {
	src, tag int
	f        []float64
	i        []int32
	sentAt   float64 // sender's virtual clock at send time
	cost     float64 // modelled transfer cost, fixed at send time
}

// mailbox is a rank's unordered pending-message store with MPI-style
// (source, tag) matching. Messages that arrived before their Recv are
// buffered (eager protocol); Recv blocks until a match exists.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []packet
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(p packet) {
	m.mu.Lock()
	m.pending = append(m.pending, p)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first pending packet matching src and
// tag, blocking until one arrives. Matching in arrival order between
// identical (src, tag) pairs preserves MPI's non-overtaking rule
// because puts from one sender are ordered by the channel of calls.
func (m *mailbox) take(src, tag int) packet {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for k, p := range m.pending {
			if p.src == src && p.tag == tag {
				m.pending = append(m.pending[:k], m.pending[k+1:]...)
				return p
			}
		}
		if m.aborted {
			panic("mp: receive abandoned by a panicked rank")
		}
		m.cond.Wait()
	}
}

// abort wakes any blocked receiver after a sibling rank dies.
func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// world is the shared state of one Run: mailboxes, the network model
// and the collective-synchronisation scratch.
type world struct {
	size  int
	net   Network
	boxes []*mailbox

	collMu   sync.Mutex
	collCond *sync.Cond
	colls    map[int]*collState
	freeColl []*collState // recycled collective states
	anyPanic bool

	// Message-buffer freelist. Send copies payloads into buffers drawn
	// from here; receivers hand them back with Comm.FreeBuffers. The
	// pool's buffer count is bounded by the in-flight high-water mark,
	// and capacities ratchet up to the largest message seen, so the
	// steady-state exchange allocates nothing. Request handles are
	// pooled the same way (ISend/IRecv draw, Release / CollRequest.Wait
	// return), so the split-phase exchange allocates nothing either.
	poolMu      sync.Mutex
	poolF       [][]float64
	poolI       [][]int32
	freeReq     []*Request
	freeCollReq []*CollRequest
}

// getReq draws a point-to-point request handle from the pool.
func (w *world) getReq() *Request {
	w.poolMu.Lock()
	if k := len(w.freeReq); k > 0 {
		r := w.freeReq[k-1]
		w.freeReq[k-1] = nil
		w.freeReq = w.freeReq[:k-1]
		w.poolMu.Unlock()
		return r
	}
	w.poolMu.Unlock()
	return new(Request)
}

// getCollReq draws a collective request handle from the pool.
func (w *world) getCollReq() *CollRequest {
	w.poolMu.Lock()
	if k := len(w.freeCollReq); k > 0 {
		r := w.freeCollReq[k-1]
		w.freeCollReq[k-1] = nil
		w.freeCollReq = w.freeCollReq[:k-1]
		w.poolMu.Unlock()
		return r
	}
	w.poolMu.Unlock()
	return new(CollRequest)
}

// getF draws a float64 buffer of length n from the pool (any pooled
// buffer with sufficient capacity), allocating with headroom on miss.
func (w *world) getF(n int) []float64 {
	w.poolMu.Lock()
	for k := len(w.poolF) - 1; k >= 0; k-- {
		if cap(w.poolF[k]) >= n {
			b := w.poolF[k]
			last := len(w.poolF) - 1
			w.poolF[k] = w.poolF[last]
			w.poolF[last] = nil
			w.poolF = w.poolF[:last]
			w.poolMu.Unlock()
			return b[:n]
		}
	}
	w.poolMu.Unlock()
	return make([]float64, n, n+n/4+8)
}

// getI is getF for int32 buffers.
func (w *world) getI(n int) []int32 {
	w.poolMu.Lock()
	for k := len(w.poolI) - 1; k >= 0; k-- {
		if cap(w.poolI[k]) >= n {
			b := w.poolI[k]
			last := len(w.poolI) - 1
			w.poolI[k] = w.poolI[last]
			w.poolI[last] = nil
			w.poolI = w.poolI[:last]
			w.poolMu.Unlock()
			return b[:n]
		}
	}
	w.poolMu.Unlock()
	return make([]int32, n, n+n/4+8)
}

// free returns message buffers to the pool. nil slices are ignored.
func (w *world) free(f []float64, ints []int32) {
	if cap(f) == 0 && cap(ints) == 0 {
		return
	}
	w.poolMu.Lock()
	if cap(f) > 0 {
		w.poolF = append(w.poolF, f)
	}
	if cap(ints) > 0 {
		w.poolI = append(w.poolI, ints)
	}
	w.poolMu.Unlock()
}

// Comm is one rank's handle on the world: its identity, counters and
// virtual clock. A Comm is confined to the goroutine Run created it
// for.
type Comm struct {
	rank, size int
	w          *world
	clock      float64
	collSeq    int        // this rank's next collective generation
	byteScale  float64    // multiplier on modelled payload sizes (1 = off)
	scalar     [1]float64 // AllreduceScalar scratch
	TC         trace.Counters
}

// SetByteScale makes the cost model treat every payload as scale
// times its actual size. Drivers running a scaled-down system use it
// to model the full-size system's (surface-proportional) exchange
// traffic; counters always record actual bytes.
func (c *Comm) SetByteScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	c.byteScale = scale
}

// modelBytes returns the payload size the cost model sees.
func (c *Comm) modelBytes(bytes int) int {
	if c.byteScale == 0 || c.byteScale == 1 {
		return bytes
	}
	return int(float64(bytes) * c.byteScale)
}

// Run executes fn concurrently on p ranks over the given network and
// returns each rank's final Comm (for clocks and counters) after all
// ranks complete. Panics on any rank propagate.
func Run(p int, net Network, fn func(c *Comm)) []*Comm {
	if p < 1 {
		panic(fmt.Sprintf("mp: nonpositive rank count %d", p))
	}
	if net == nil {
		net = ZeroNetwork{}
	}
	w := &world{size: p, net: net, boxes: make([]*mailbox, p)}
	w.collCond = sync.NewCond(&w.collMu)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	comms := make([]*Comm, p)
	panics := make([]any, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		comms[r] = &Comm{rank: r, size: p, w: w}
		wg.Add(1)
		go func(c *Comm, r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[r] = e
					// Wake any rank blocked in a collective or a
					// receive so the run does not deadlock on a dead
					// peer.
					w.collMu.Lock()
					w.anyPanic = true
					w.collCond.Broadcast()
					w.collMu.Unlock()
					for _, b := range w.boxes {
						b.abort()
					}
				}
			}()
			fn(c)
		}(comms[r], r)
	}
	wg.Wait()
	for r, e := range panics {
		if e != nil {
			panic(fmt.Sprintf("mp: rank %d panicked: %v", r, e))
		}
	}
	return comms
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Compute advances the rank's virtual clock by dt seconds of modelled
// local work. Negative dt is ignored.
func (c *Comm) Compute(dt float64) {
	if dt > 0 {
		c.clock += dt
	}
}

// SetClock forces the virtual clock; the drivers use it to reset
// between warm-up and measured iterations.
func (c *Comm) SetClock(t float64) { c.clock = t }

// payloadBytes is the modelled wire size of a message: 8 bytes per
// float64 plus 4 per int32 (the virtual platforms override integer
// width in their compute model, not on the wire).
func payloadBytes(f []float64, i []int32) int { return 8*len(f) + 4*len(i) }

// Send posts an eager, buffered send of the two payload slices to dst
// with the given tag. The slices are copied so the caller may reuse
// its buffers immediately (MPI buffered-send semantics).
func (c *Comm) Send(dst, tag int, f []float64, ints []int32) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mp: send to invalid rank %d of %d", dst, c.size))
	}
	bytes := payloadBytes(f, ints)
	p := packet{
		src:    c.rank,
		tag:    tag,
		sentAt: c.clock,
		cost:   c.w.net.MsgCost(c.rank, dst, c.modelBytes(bytes)),
	}
	if len(f) > 0 {
		p.f = c.w.getF(len(f))
		copy(p.f, f)
	}
	if len(ints) > 0 {
		p.i = c.w.getI(len(ints))
		copy(p.i, ints)
	}
	c.TC.MsgsSent++
	c.TC.BytesSent += int64(bytes)
	if c.w.net.SameNode(c.rank, dst) {
		c.TC.MsgsIntra++
		c.TC.BytesIntra += int64(bytes)
	}
	c.w.boxes[dst].put(p)
}

// FreeBuffers returns payload slices obtained from Recv to the
// world's message-buffer pool, making the steady-state exchange
// allocation-free. Calling it is optional — unreturned buffers are
// simply garbage collected — but a caller that frees a slice must not
// touch it (or any sub-slice of it) afterwards. nil slices are
// ignored, so both return values of Recv can always be passed.
func (c *Comm) FreeBuffers(f []float64, ints []int32) { c.w.free(f, ints) }

// Recv blocks until a message with the given source and tag arrives
// and returns its payloads. The rank's clock advances to at least the
// send time plus the modelled transfer cost. The returned slices come
// from the world's buffer pool; hand them back with FreeBuffers once
// consumed to keep the exchange allocation-free.
func (c *Comm) Recv(src, tag int) ([]float64, []int32) {
	if src < 0 || src >= c.size {
		panic(fmt.Sprintf("mp: recv from invalid rank %d of %d", src, c.size))
	}
	p := c.w.boxes[c.rank].take(src, tag)
	arrive := p.sentAt + p.cost
	if arrive > c.clock {
		c.clock = arrive
	}
	return p.f, p.i
}

// SendRecv performs the matched exchange the halo swap is built from:
// send to dst and receive from src with the same tag, without
// deadlock (sends are eager). It mirrors MPI_Sendrecv.
func (c *Comm) SendRecv(dst, tag int, f []float64, ints []int32, src int) ([]float64, []int32) {
	c.Send(dst, tag, f, ints)
	return c.Recv(src, tag)
}
