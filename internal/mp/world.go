package mp

import (
	"fmt"
	"math"
	"sync"
	"time"

	"hybriddem/internal/fault"
	"hybriddem/internal/trace"
)

// packet is one in-flight point-to-point message. Payloads carry the
// two element types the DEM code exchanges: float64 (positions,
// velocities, energies) and int32 (identities, counts, templates).
// seq and sum are the integrity envelope: the sender's per-(dst, tag)
// sequence number and an FNV-1a checksum over seq and both payloads,
// set on every send unless RunOptions.NoIntegrity disabled them.
type packet struct {
	src, tag int
	f        []float64
	i        []int32
	sentAt   float64 // sender's virtual clock at send time
	cost     float64 // modelled transfer cost, fixed at send time
	seq      uint64  // per-(src→dst, tag) sequence number
	sum      uint64  // checksum over (seq, f, i); 0 when integrity is off
}

// mailbox is a rank's unordered pending-message store with MPI-style
// (source, tag) matching. Messages that arrived before their Recv are
// buffered (eager protocol); Recv blocks until a match exists.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []packet
	aborted bool
	rank    int           // owning rank, for typed fault errors
	wd      time.Duration // watchdog deadline on blocked takes (0 = none)
}

func newMailbox(rank int) *mailbox {
	m := &mailbox{rank: rank}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(p packet) {
	m.mu.Lock()
	m.pending = append(m.pending, p)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first pending packet matching src and
// tag, blocking until one arrives. Matching in arrival order between
// identical (src, tag) pairs preserves MPI's non-overtaking rule
// because puts from one sender are ordered by the channel of calls.
// With a watchdog armed, a take blocked past the deadline panics with
// a typed Timeout fault (the run's ticker wakes it periodically); a
// peer's death panics with Abandoned.
func (m *mailbox) take(src, tag int) packet {
	m.mu.Lock()
	defer m.mu.Unlock()
	var start time.Time
	for {
		for k, p := range m.pending {
			if p.src == src && p.tag == tag {
				m.pending = append(m.pending[:k], m.pending[k+1:]...)
				return p
			}
		}
		if m.aborted {
			panic(&fault.Error{Kind: fault.Abandoned, Rank: m.rank, Step: -1, Op: "recv",
				Detail: "receive abandoned by a panicked rank"})
		}
		if m.wd > 0 {
			if start.IsZero() {
				start = time.Now()
			} else if time.Since(start) > m.wd {
				panic(&fault.Error{Kind: fault.Timeout, Rank: m.rank, Step: -1, Op: "recv",
					Detail: fmt.Sprintf("no message from rank %d tag %d within %v", src, tag, m.wd)})
			}
		}
		m.cond.Wait()
	}
}

// abort wakes any blocked receiver after a sibling rank dies.
func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// world is the shared state of one Run: mailboxes, the network model
// and the collective-synchronisation scratch.
type world struct {
	size      int
	net       Network
	boxes     []*mailbox
	faults    *FaultPlan    // nil = no injection
	integrity bool          // sequence numbers + checksums on p2p traffic
	wd        time.Duration // watchdog deadline (0 = none)

	collMu   sync.Mutex
	collCond *sync.Cond
	colls    map[int]*collState
	freeColl []*collState // recycled collective states
	anyPanic bool

	// Message-buffer freelist. Send copies payloads into buffers drawn
	// from here; receivers hand them back with Comm.FreeBuffers. The
	// pool's buffer count is bounded by the in-flight high-water mark,
	// and capacities ratchet up to the largest message seen, so the
	// steady-state exchange allocates nothing. Request handles are
	// pooled the same way (ISend/IRecv draw, Release / CollRequest.Wait
	// return), so the split-phase exchange allocates nothing either.
	poolMu      sync.Mutex
	poolF       [][]float64
	poolI       [][]int32
	freeReq     []*Request
	freeCollReq []*CollRequest

	// Shared-memory window registry (mpism mode): node groups attach to
	// their windows by (leader rank, creation ordinal). Fence states
	// live inside each winShared under collMu.
	winMu sync.Mutex
	wins  map[winKey]*winShared
}

// getReq draws a point-to-point request handle from the pool.
func (w *world) getReq() *Request {
	w.poolMu.Lock()
	if k := len(w.freeReq); k > 0 {
		r := w.freeReq[k-1]
		w.freeReq[k-1] = nil
		w.freeReq = w.freeReq[:k-1]
		w.poolMu.Unlock()
		return r
	}
	w.poolMu.Unlock()
	return new(Request)
}

// getCollReq draws a collective request handle from the pool.
func (w *world) getCollReq() *CollRequest {
	w.poolMu.Lock()
	if k := len(w.freeCollReq); k > 0 {
		r := w.freeCollReq[k-1]
		w.freeCollReq[k-1] = nil
		w.freeCollReq = w.freeCollReq[:k-1]
		w.poolMu.Unlock()
		return r
	}
	w.poolMu.Unlock()
	return new(CollRequest)
}

// getF draws a float64 buffer of length n from the pool (any pooled
// buffer with sufficient capacity), allocating with headroom on miss.
func (w *world) getF(n int) []float64 {
	w.poolMu.Lock()
	for k := len(w.poolF) - 1; k >= 0; k-- {
		if cap(w.poolF[k]) >= n {
			b := w.poolF[k]
			last := len(w.poolF) - 1
			w.poolF[k] = w.poolF[last]
			w.poolF[last] = nil
			w.poolF = w.poolF[:last]
			w.poolMu.Unlock()
			return b[:n]
		}
	}
	w.poolMu.Unlock()
	return make([]float64, n, n+n/4+8)
}

// getI is getF for int32 buffers.
func (w *world) getI(n int) []int32 {
	w.poolMu.Lock()
	for k := len(w.poolI) - 1; k >= 0; k-- {
		if cap(w.poolI[k]) >= n {
			b := w.poolI[k]
			last := len(w.poolI) - 1
			w.poolI[k] = w.poolI[last]
			w.poolI[last] = nil
			w.poolI = w.poolI[:last]
			w.poolMu.Unlock()
			return b[:n]
		}
	}
	w.poolMu.Unlock()
	return make([]int32, n, n+n/4+8)
}

// free returns message buffers to the pool. nil slices are ignored.
func (w *world) free(f []float64, ints []int32) {
	if cap(f) == 0 && cap(ints) == 0 {
		return
	}
	w.poolMu.Lock()
	if cap(f) > 0 {
		w.poolF = append(w.poolF, f)
	}
	if cap(ints) > 0 {
		w.poolI = append(w.poolI, ints)
	}
	w.poolMu.Unlock()
}

// Comm is one rank's handle on the world: its identity, counters and
// virtual clock. A Comm is confined to the goroutine Run created it
// for.
type Comm struct {
	rank, size int
	w          *world
	clock      float64
	collSeq    int        // this rank's next collective generation
	byteScale  float64    // multiplier on modelled payload sizes (1 = off)
	scalar     [1]float64 // AllreduceScalar scratch
	step       int        // last FaultPoint step, for fault annotation
	// Per-(peer, tag) sequence counters for the integrity envelope.
	// Keys are inserted the first time a (peer, tag) pair is used (halo
	// template build / first exchange); steady-state sends and receives
	// only update existing keys, which allocates nothing.
	sendSeq map[uint64]uint64
	recvSeq map[uint64]uint64
	TC      trace.Counters
}

// seqKey packs a peer rank and a tag into one sequence-map key.
func seqKey(peer, tag int) uint64 {
	return uint64(uint32(peer))<<32 | uint64(uint32(tag))
}

// FNV-1a constants for the word-wise payload checksum.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix64 folds one 64-bit word into an FNV-1a style state. The xor is
// injective in x and the multiplier is odd (invertible mod 2^64), so
// any single-bit flip in any word changes the digest.
func mix64(h, x uint64) uint64 { return (h ^ x) * fnvPrime }

// checksum digests a packet's sequence number, payload lengths and
// payload words. It allocates nothing.
func checksum(seq uint64, f []float64, ints []int32) uint64 {
	h := mix64(fnvOffset, seq)
	h = mix64(h, uint64(len(f)))
	h = mix64(h, uint64(len(ints)))
	for _, v := range f {
		h = mix64(h, math.Float64bits(v))
	}
	for _, v := range ints {
		h = mix64(h, uint64(uint32(v)))
	}
	return h
}

// FaultPoint marks a global-step boundary: the drivers call it once
// per step so an armed FaultPlan can kill this rank at the scheduled
// step (a typed Killed panic unwinds the rank mid-protocol, exactly
// like a node loss). It also records the step for fault annotation.
// Without a plan it only records the step.
func (c *Comm) FaultPoint(step int) {
	c.step = step
	if fp := c.w.faults; fp != nil && fp.shouldKill(c.rank, step) {
		panic(&fault.Error{Kind: fault.Killed, Rank: c.rank, Step: step, Op: "faultpoint",
			Detail: "injected rank failure"})
	}
}

// SetByteScale makes the cost model treat every payload as scale
// times its actual size. Drivers running a scaled-down system use it
// to model the full-size system's (surface-proportional) exchange
// traffic; counters always record actual bytes.
func (c *Comm) SetByteScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	c.byteScale = scale
}

// modelBytes returns the payload size the cost model sees.
func (c *Comm) modelBytes(bytes int) int {
	if c.byteScale == 0 || c.byteScale == 1 {
		return bytes
	}
	return int(float64(bytes) * c.byteScale)
}

// RunOptions configures a RunOpts execution.
type RunOptions struct {
	// Net is the virtual network cost model (nil = ZeroNetwork).
	Net Network
	// Faults is an optional chaos schedule; nil injects nothing.
	Faults *FaultPlan
	// Watchdog bounds every blocking receive, collective wait and
	// mailbox take: an operation blocked longer surfaces as a typed
	// Timeout fault instead of a hang. 0 disables the watchdog — and
	// makes an injected kill immediately abort its peers (the legacy
	// fail-fast behaviour); with a watchdog armed a killed rank dies
	// silently, as a lost node would, and its peers discover the death
	// only through their deadlines.
	Watchdog time.Duration
	// NoIntegrity disables per-message sequence numbers and checksums.
	// It cannot be combined with corruption or duplication injection
	// (the faults would be silently accepted).
	NoIntegrity bool
}

// RunOpts executes fn concurrently on p ranks and returns each rank's
// final Comm after all ranks complete. A detected fault (injected
// kill, corrupted or out-of-order message, watchdog timeout, abandoned
// peer) is returned as a *fault.Error classifying the root cause; a
// non-fault panic in fn propagates as a panic, as with Run.
func RunOpts(p int, opt RunOptions, fn func(c *Comm)) ([]*Comm, error) {
	if p < 1 {
		panic(fmt.Sprintf("mp: nonpositive rank count %d", p))
	}
	net := opt.Net
	if net == nil {
		net = ZeroNetwork{}
	}
	if opt.NoIntegrity && opt.Faults != nil && (opt.Faults.CorruptProb > 0 || opt.Faults.DuplicateProb > 0) {
		panic("mp: NoIntegrity would silently accept the armed corruption/duplication faults")
	}
	w := &world{
		size:      p,
		net:       net,
		boxes:     make([]*mailbox, p),
		faults:    opt.Faults,
		integrity: !opt.NoIntegrity,
		wd:        opt.Watchdog,
	}
	w.collCond = sync.NewCond(&w.collMu)
	for i := range w.boxes {
		w.boxes[i] = newMailbox(i)
		w.boxes[i].wd = opt.Watchdog
	}

	// The watchdog ticker periodically wakes every blocked waiter so
	// deadline checks run even when no peer will ever signal again.
	var wdStop chan struct{}
	if opt.Watchdog > 0 {
		wdStop = make(chan struct{})
		period := opt.Watchdog / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		go func() {
			t := time.NewTicker(period)
			defer t.Stop()
			for {
				select {
				case <-wdStop:
					return
				case <-t.C:
					w.collMu.Lock()
					w.collCond.Broadcast()
					w.collMu.Unlock()
					for _, b := range w.boxes {
						b.cond.Broadcast()
					}
				}
			}
		}()
	}

	comms := make([]*Comm, p)
	panics := make([]any, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		comms[r] = &Comm{rank: r, size: p, w: w, step: -1}
		if w.integrity {
			comms[r].sendSeq = make(map[uint64]uint64)
			comms[r].recvSeq = make(map[uint64]uint64)
		}
		wg.Add(1)
		go func(c *Comm, r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[r] = e
					// An injected kill under an armed watchdog dies
					// silently — peers must discover the loss through
					// their own deadlines, as with a real node failure.
					// Every other panic fails fast: wake any rank
					// blocked in a collective or a receive so the run
					// does not deadlock on a dead peer.
					if fe := fault.From(e); fe != nil && fe.Kind == fault.Killed && w.wd > 0 {
						return
					}
					w.collMu.Lock()
					w.anyPanic = true
					w.collCond.Broadcast()
					w.collMu.Unlock()
					for _, b := range w.boxes {
						b.abort()
					}
				}
			}()
			fn(c)
		}(comms[r], r)
	}
	wg.Wait()
	if wdStop != nil {
		close(wdStop)
	}

	// Classify the outcome. The root cause outranks its casualties:
	// Killed > Corrupt > Sequence > non-fault panic > Timeout >
	// Abandoned, lowest rank breaking ties. A non-fault panic is a
	// program bug, not a fault — it propagates as a panic exactly as
	// Run always has.
	var best *fault.Error
	bestScore := -1
	var bug any
	bugRank := -1
	for r, e := range panics {
		if e == nil {
			continue
		}
		fe := fault.From(e)
		if fe == nil {
			if bug == nil {
				bug, bugRank = e, r
			}
			continue
		}
		var s int
		switch fe.Kind {
		case fault.Killed:
			s = 5
		case fault.Corrupt:
			s = 4
		case fault.Sequence:
			s = 3
		case fault.Timeout:
			s = 1
		case fault.Abandoned:
			s = 0
		}
		if s > bestScore {
			best, bestScore = fe, s
		}
	}
	if best != nil && bestScore >= 3 {
		return comms, best
	}
	if bug != nil {
		panic(fmt.Sprintf("mp: rank %d panicked: %v", bugRank, bug))
	}
	if best != nil {
		return comms, best
	}
	return comms, nil
}

// Run executes fn concurrently on p ranks over the given network and
// returns each rank's final Comm (for clocks and counters) after all
// ranks complete. Panics on any rank propagate. Message integrity
// (sequence numbers + checksums) is always on; use RunOpts to disable
// it, inject faults or arm a watchdog.
func Run(p int, net Network, fn func(c *Comm)) []*Comm {
	comms, err := RunOpts(p, RunOptions{Net: net}, fn)
	if err != nil {
		// Without a FaultPlan or watchdog a typed fault can only mean a
		// genuinely corrupted or misordered message — a runtime bug —
		// so the legacy API escalates it to the legacy panic.
		fe := fault.From(err)
		panic(fmt.Sprintf("mp: rank %d panicked: %v", fe.Rank, err))
	}
	return comms
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Compute advances the rank's virtual clock by dt seconds of modelled
// local work. Negative dt is ignored.
func (c *Comm) Compute(dt float64) {
	if dt > 0 {
		c.clock += dt
	}
}

// SetClock forces the virtual clock; the drivers use it to reset
// between warm-up and measured iterations.
func (c *Comm) SetClock(t float64) { c.clock = t }

// payloadBytes is the modelled wire size of a message: 8 bytes per
// float64 plus 4 per int32 (the virtual platforms override integer
// width in their compute model, not on the wire).
func payloadBytes(f []float64, i []int32) int { return 8*len(f) + 4*len(i) }

// Send posts an eager, buffered send of the two payload slices to dst
// with the given tag. The slices are copied so the caller may reuse
// its buffers immediately (MPI buffered-send semantics).
func (c *Comm) Send(dst, tag int, f []float64, ints []int32) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mp: send to invalid rank %d of %d", dst, c.size))
	}
	bytes := payloadBytes(f, ints)
	p := packet{
		src:    c.rank,
		tag:    tag,
		sentAt: c.clock,
		cost:   c.w.net.MsgCost(c.rank, dst, c.modelBytes(bytes)),
	}
	if len(f) > 0 {
		p.f = c.w.getF(len(f))
		copy(p.f, f)
	}
	if len(ints) > 0 {
		p.i = c.w.getI(len(ints))
		copy(p.i, ints)
	}
	if c.w.integrity {
		key := seqKey(dst, tag)
		p.seq = c.sendSeq[key]
		c.sendSeq[key] = p.seq + 1
		p.sum = checksum(p.seq, p.f, p.i)
	}
	c.TC.MsgsSent++
	c.TC.BytesSent += int64(bytes)
	if c.w.net.SameNode(c.rank, dst) {
		c.TC.MsgsIntra++
		c.TC.BytesIntra += int64(bytes)
	}
	if fp := c.w.faults; fp != nil {
		dup, delay := fp.mangle(c, &p)
		if delay > 0 {
			time.Sleep(delay)
		}
		c.w.boxes[dst].put(p)
		if dup != nil {
			// Delivered right after the original so the receiver's
			// sequence check classifies it as a pure duplicate.
			c.w.boxes[dst].put(*dup)
		}
		return
	}
	c.w.boxes[dst].put(p)
}

// FreeBuffers returns payload slices obtained from Recv to the
// world's message-buffer pool, making the steady-state exchange
// allocation-free. Calling it is optional — unreturned buffers are
// simply garbage collected — but a caller that frees a slice must not
// touch it (or any sub-slice of it) afterwards. nil slices are
// ignored, so both return values of Recv can always be passed.
func (c *Comm) FreeBuffers(f []float64, ints []int32) { c.w.free(f, ints) }

// Recv blocks until a message with the given source and tag arrives
// and returns its payloads. The rank's clock advances to at least the
// send time plus the modelled transfer cost. The returned slices come
// from the world's buffer pool; hand them back with FreeBuffers once
// consumed to keep the exchange allocation-free.
func (c *Comm) Recv(src, tag int) ([]float64, []int32) {
	if src < 0 || src >= c.size {
		panic(fmt.Sprintf("mp: recv from invalid rank %d of %d", src, c.size))
	}
	for {
		p := c.w.boxes[c.rank].take(src, tag)
		if c.w.integrity {
			key := seqKey(src, tag)
			want := c.recvSeq[key]
			if p.seq < want {
				// A duplicate of an already-delivered message: discard
				// silently, without advancing the clock — rejected
				// traffic must not perturb the virtual timeline.
				c.TC.MsgsRejected++
				c.w.free(p.f, p.i)
				continue
			}
			if p.seq > want {
				panic(&fault.Error{Kind: fault.Sequence, Rank: c.rank, Step: c.step, Op: "recv",
					Detail: fmt.Sprintf("message from rank %d tag %d arrived with seq %d, want %d", src, tag, p.seq, want)})
			}
			if checksum(p.seq, p.f, p.i) != p.sum {
				panic(&fault.Error{Kind: fault.Corrupt, Rank: c.rank, Step: c.step, Op: "recv",
					Detail: fmt.Sprintf("checksum mismatch on message from rank %d tag %d seq %d", src, tag, p.seq)})
			}
			c.recvSeq[key] = want + 1
		}
		arrive := p.sentAt + p.cost
		if arrive > c.clock {
			c.clock = arrive
		}
		return p.f, p.i
	}
}

// SendRecv performs the matched exchange the halo swap is built from:
// send to dst and receive from src with the same tag, without
// deadlock (sends are eager). It mirrors MPI_Sendrecv.
func (c *Comm) SendRecv(dst, tag int, f []float64, ints []int32, src int) ([]float64, []int32) {
	c.Send(dst, tag, f, ints)
	return c.Recv(src, tag)
}
