package mp

// Race-focused stress tests: every rank in Run is a real goroutine,
// so these exist chiefly for `go test -race`. They hammer the mailbox
// (mixed tags, non-blocking overlap), the collective rendezvous, and
// several worlds running concurrently in one process, the shape the
// hybrid driver uses.

import (
	"math/rand"
	"sync"
	"testing"
)

func TestRaceMixedTagTraffic(t *testing.T) {
	// Each rank floods every other rank with messages on several
	// tags in a seeded-random order, then drains them tag by tag.
	// Per-(src,tag) FIFO ordering must survive the interleaving.
	const P, tags, msgs = 6, 4, 8
	Run(P, nil, func(c *Comm) {
		rng := rand.New(rand.NewSource(int64(100 + c.Rank())))
		// Interleave the (dst,tag) streams randomly while keeping
		// each individual stream in sequence order so per-(src,tag)
		// FIFO is checkable on the receive side.
		type stream struct{ dst, tag, next int }
		var streams []*stream
		for dst := 0; dst < P; dst++ {
			if dst == c.Rank() {
				continue
			}
			for tag := 0; tag < tags; tag++ {
				streams = append(streams, &stream{dst: dst, tag: tag})
			}
		}
		for len(streams) > 0 {
			k := rng.Intn(len(streams))
			s := streams[k]
			c.Send(s.dst, s.tag, []float64{float64(s.next)}, []int32{int32(c.Rank())})
			s.next++
			if s.next == msgs {
				streams[k] = streams[len(streams)-1]
				streams = streams[:len(streams)-1]
			}
		}
		for src := 0; src < P; src++ {
			if src == c.Rank() {
				continue
			}
			for tag := 0; tag < tags; tag++ {
				for seq := 0; seq < msgs; seq++ {
					f, ints := c.Recv(src, tag)
					if int(f[0]) != seq || int(ints[0]) != src {
						panic("FIFO violated under mixed-tag load")
					}
				}
			}
		}
	})
}

func TestRaceNonblockingOverlapsCollectives(t *testing.T) {
	// Outstanding ISend/IRecv pairs bracket an Allreduce and a
	// Barrier; the requests complete afterwards. This is the halo
	// exchange pattern overlapped with the energy reduction.
	const P, reps = 5, 10
	Run(P, nil, func(c *Comm) {
		right := (c.Rank() + 1) % P
		left := (c.Rank() + P - 1) % P
		for r := 0; r < reps; r++ {
			rq := c.IRecv(left, r)
			sq := c.ISend(right, r, []float64{float64(c.Rank()*1000 + r)}, nil)
			sum := c.AllreduceScalar(float64(c.Rank()), Sum)
			if int(sum) != P*(P-1)/2 {
				panic("allreduce wrong under overlap")
			}
			c.Barrier()
			f, _ := rq.Wait()
			if int(f[0]) != left*1000+r {
				panic("nonblocking payload wrong")
			}
			sq.Wait()
		}
	})
}

func TestRaceSplitPhaseExchangeWithSplitCollectives(t *testing.T) {
	// The split-phase step shape: post receives and eager sends, spawn
	// a worker goroutine that computes while the master drains the
	// in-flight requests (the hybrid driver's StartRegion/drain split),
	// then post TWO back-to-back in-place allreduces and wait them in
	// order. Request and collective handles are pooled and released, so
	// this also hammers the world's free lists under -race.
	const P, reps = 6, 12
	Run(P, nil, func(c *Comm) {
		right := (c.Rank() + 1) % P
		left := (c.Rank() + P - 1) % P
		energy := make([]float64, 2)
		vote := make([]float64, 1)
		for r := 0; r < reps; r++ {
			rq := c.IRecv(left, r)
			c.ISend(right, r, []float64{float64(c.Rank()*1000 + r)}, nil).Release()

			// Concurrent "core compute" on a worker while the master
			// drains, mirroring the overlapped force region.
			done := make(chan float64)
			go func() {
				s := 0.0
				for i := 0; i < 1000; i++ {
					s += float64(i % 7)
				}
				done <- s
			}()
			f, _ := rq.Wait()
			if int(f[0]) != left*1000+r {
				panic("split-phase payload wrong")
			}
			rq.Release()
			<-done

			energy[0], energy[1] = float64(c.Rank()), float64(r)
			eReq := c.IAllreduceInPlace(energy, Sum)
			vote[0] = float64(c.Rank() * (r + 1))
			vReq := c.IAllreduceInPlace(vote, Max)
			eReq.Wait()
			if int(energy[0]) != P*(P-1)/2 || int(energy[1]) != P*r {
				panic("split energy allreduce wrong")
			}
			vReq.Wait()
			if int(vote[0]) != (P-1)*(r+1) {
				panic("split vote allreduce wrong")
			}
		}
	})
}

func TestRaceConcurrentWorlds(t *testing.T) {
	// Several independent worlds run at once in one process; their
	// mailboxes and collectives must not interfere.
	const worlds, P = 4, 4
	var wg sync.WaitGroup
	for w := 0; w < worlds; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			Run(P, nil, func(c *Comm) {
				base := float64((w + 1) * 100)
				v := c.Allreduce([]float64{base + float64(c.Rank())}, Sum)
				want := float64(P)*base + float64(P*(P-1)/2)
				if v[0] != want {
					panic("cross-world interference in allreduce")
				}
				got := c.Bcast(0, []float64{base})
				if got[0] != base {
					panic("cross-world interference in bcast")
				}
			})
		}(w)
	}
	wg.Wait()
}

func TestRaceGatherScatterStress(t *testing.T) {
	const P, reps = 6, 8
	Run(P, nil, func(c *Comm) {
		for r := 0; r < reps; r++ {
			mine := []float64{float64(c.Rank()), float64(r)}
			all, offs := c.Gather(0, mine)
			if c.Rank() == 0 {
				for p := 0; p < P; p++ {
					if all[offs[p]] != float64(p) || all[offs[p]+1] != float64(r) {
						panic("gather misplaced a contribution")
					}
				}
			}
			var data []float64
			if c.Rank() == 0 {
				for p := 0; p < P; p++ {
					data = append(data, float64(r*P+p))
				}
			}
			part := c.Scatter(0, data, 1)
			if part[0] != float64(r*P+c.Rank()) {
				panic("scatter delivered the wrong chunk")
			}
		}
	})
}
