package mp

import (
	"math"
	"reflect"
	"testing"
)

func TestISendIRecvRoundTrip(t *testing.T) {
	Run(2, nil, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.ISend(1, 5, []float64{7}, []int32{9})
			if !req.Done() {
				t.Error("eager ISend should complete immediately")
			}
			f, i := req.Wait()
			if f != nil || i != nil {
				t.Error("send Wait returned payloads")
			}
		} else {
			req := c.IRecv(0, 5)
			f, i := req.Wait()
			if f[0] != 7 || i[0] != 9 {
				t.Errorf("IRecv got %v %v", f, i)
			}
			if !req.Done() {
				t.Error("request not done after Wait")
			}
			// Waiting again returns the same payloads.
			f2, _ := req.Wait()
			if f2[0] != 7 {
				t.Error("double Wait lost payload")
			}
		}
	})
}

func TestIRecvOverlapsVirtualTime(t *testing.T) {
	// Compute performed between IRecv and Wait must overlap the
	// transfer: the receiver's final clock is max(local work, message
	// arrival), not their sum.
	net := LatBwNetwork{CPUsPerNode: 1, InterLat: 1.0, InterBw: 1e9, IntraLat: 1.0, IntraBw: 1e9}
	Run(2, net, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1}, nil)
		} else {
			req := c.IRecv(0, 0)
			c.Compute(0.4) // overlapped with the 1s transfer
			req.Wait()
			// Arrival at ~1s dominates the 0.4s of local work.
			if math.Abs(c.Clock()-(1.0+8e-9)) > 1e-9 {
				t.Errorf("receiver clock %g, want ~1.0 (overlap)", c.Clock())
			}
		}
	})
}

func TestWaitAll(t *testing.T) {
	Run(3, nil, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{10}, nil)
			c.Send(2, 1, []float64{20}, nil)
		} else {
			reqs := []*Request{c.IRecv(0, 1)}
			fs, _ := WaitAll(reqs)
			want := float64(c.Rank() * 10)
			if fs[0][0] != want {
				t.Errorf("rank %d got %v", c.Rank(), fs[0])
			}
		}
	})
}

func TestIRecvInvalidRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid IRecv source accepted")
		}
	}()
	Run(1, nil, func(c *Comm) {
		c.IRecv(7, 0)
	})
}

func TestGatherConcatenatesInRankOrder(t *testing.T) {
	Run(3, nil, func(c *Comm) {
		// Variable lengths: rank k contributes k+1 values of value k.
		v := make([]float64, c.Rank()+1)
		for i := range v {
			v[i] = float64(c.Rank())
		}
		all, offsets := c.Gather(1, v)
		if c.Rank() != 1 {
			if all != nil || offsets != nil {
				t.Error("non-root received gather data")
			}
			return
		}
		if !reflect.DeepEqual(all, []float64{0, 1, 1, 2, 2, 2}) {
			t.Errorf("gathered %v", all)
		}
		if !reflect.DeepEqual(offsets, []int{0, 1, 3}) {
			t.Errorf("offsets %v", offsets)
		}
	})
}

func TestScatterDistributesChunks(t *testing.T) {
	Run(4, nil, func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{0, 0, 1, 1, 2, 2, 3, 3}
		}
		got := c.Scatter(2, data, 2)
		want := []float64{float64(c.Rank()), float64(c.Rank())}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rank %d scattered %v, want %v", c.Rank(), got, want)
		}
	})
}

func TestScatterSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad scatter size accepted")
		}
	}()
	Run(1, nil, func(c *Comm) {
		c.Scatter(0, []float64{1, 2, 3}, 2)
	})
}

func TestAllGather(t *testing.T) {
	Run(3, nil, func(c *Comm) {
		got := c.AllGather([]float64{float64(c.Rank() * 10)})
		if !reflect.DeepEqual(got, []float64{0, 10, 20}) {
			t.Errorf("rank %d allgather %v", c.Rank(), got)
		}
	})
}

func TestMixedCollectiveSequence(t *testing.T) {
	// Interleave every collective type repeatedly: the generation
	// bookkeeping must pair them correctly.
	Run(4, nil, func(c *Comm) {
		for i := 0; i < 10; i++ {
			s := c.AllreduceScalar(1, Sum)
			if s != 4 {
				t.Fatalf("iter %d: sum %g", i, s)
			}
			all := c.AllGather([]float64{float64(c.Rank())})
			if len(all) != 4 {
				t.Fatalf("iter %d: allgather %v", i, all)
			}
			c.Barrier()
			got := c.Scatter(i%4, []float64{9, 9, 9, 9}, 1)
			if got[0] != 9 && c.Rank() != i%4 {
				t.Fatalf("iter %d: scatter %v", i, got)
			}
		}
	})
}
