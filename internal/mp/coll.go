package mp

import "fmt"

// Op selects the combining operation of an Allreduce.
type Op int

const (
	Sum Op = iota
	Max
	Min
)

// collState is one generation of a rendezvous collective. Generations
// are kept in a map so a fast rank may enter generation g+1 while slow
// ranks are still reading generation g's result.
type collState struct {
	arrived int
	readers int
	clock   float64     // max participant clock
	per     [][]float64 // per-rank contributions (deterministic order)
	result  []float64
	done    bool
}

// rendezvous runs one collective: every rank deposits contrib (may be
// nil), the last arriver combines all contributions in rank order with
// combine (receiving the per-rank slice), and every rank leaves with
// the shared result and a clock equal to the max participant clock
// plus cost(size, resultBytes).
func (c *Comm) rendezvous(contrib []float64, combine func(per [][]float64) []float64, costBytes int) []float64 {
	w := c.w
	w.collMu.Lock()
	defer w.collMu.Unlock()

	gen := w.collGen
	st := w.collAt(gen)
	if st.per == nil {
		st.per = make([][]float64, w.size)
	}
	st.per[c.rank] = contrib
	if c.clock > st.clock {
		st.clock = c.clock
	}
	st.arrived++
	if st.arrived == w.size {
		st.result = combine(st.per)
		st.done = true
		w.collGen++ // open the next generation
		w.collCond.Broadcast()
	} else {
		for !st.done {
			if w.anyPanic {
				panic("mp: collective abandoned by a panicked rank")
			}
			w.collCond.Wait()
		}
	}
	res := st.result
	c.clock = st.clock + w.net.CollectiveCost(w.size, costBytes)
	st.readers++
	if st.readers == w.size {
		delete(w.colls, gen)
	}
	c.TC.Collectives++
	return res
}

// collAt returns (creating on demand) the state for generation g.
func (w *world) collAt(g int) *collState {
	if w.colls == nil {
		w.colls = make(map[int]*collState)
	}
	st, ok := w.colls[g]
	if !ok {
		st = &collState{}
		w.colls[g] = st
	}
	return st
}

// Barrier blocks until every rank has entered, then releases all with
// equalised clocks plus the network's barrier cost.
func (c *Comm) Barrier() {
	w := c.w
	w.collMu.Lock()
	defer w.collMu.Unlock()
	gen := w.collGen
	st := w.collAt(gen)
	if c.clock > st.clock {
		st.clock = c.clock
	}
	st.arrived++
	if st.arrived == w.size {
		st.done = true
		w.collGen++
		w.collCond.Broadcast()
	} else {
		for !st.done {
			if w.anyPanic {
				panic("mp: barrier abandoned by a panicked rank")
			}
			w.collCond.Wait()
		}
	}
	c.clock = st.clock + w.net.BarrierCost(w.size)
	st.readers++
	if st.readers == w.size {
		delete(w.colls, gen)
	}
	c.TC.Barriers++
}

// Allreduce combines each rank's vector element-wise with op and
// returns the identical result on every rank. Summation is performed
// in rank order so the floating-point result is deterministic.
func (c *Comm) Allreduce(v []float64, op Op) []float64 {
	in := append([]float64(nil), v...)
	res := c.rendezvous(in, func(per [][]float64) []float64 {
		if len(per) == 0 || per[0] == nil {
			return nil
		}
		out := append([]float64(nil), per[0]...)
		for r := 1; r < len(per); r++ {
			pv := per[r]
			if len(pv) != len(out) {
				panic(fmt.Sprintf("mp: allreduce length mismatch: rank 0 has %d, rank %d has %d", len(out), r, len(pv)))
			}
			for k := range out {
				switch op {
				case Sum:
					out[k] += pv[k]
				case Max:
					if pv[k] > out[k] {
						out[k] = pv[k]
					}
				case Min:
					if pv[k] < out[k] {
						out[k] = pv[k]
					}
				}
			}
		}
		return out
	}, 8*len(v))
	return append([]float64(nil), res...)
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(x float64, op Op) float64 {
	return c.Allreduce([]float64{x}, op)[0]
}

// Bcast distributes root's vector to every rank.
func (c *Comm) Bcast(root int, v []float64) []float64 {
	var contrib []float64
	if c.rank == root {
		contrib = append([]float64(nil), v...)
	}
	res := c.rendezvous(contrib, func(per [][]float64) []float64 {
		return per[root]
	}, 8*len(v))
	return append([]float64(nil), res...)
}
