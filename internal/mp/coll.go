package mp

import (
	"fmt"
	"time"

	"hybriddem/internal/fault"
)

// Op selects the combining operation of an Allreduce.
type Op int

const (
	Sum Op = iota
	Max
	Min
)

// collState is one generation of a rendezvous collective. Generations
// are kept in a map so a fast rank may enter generation g+1 while slow
// ranks are still reading generation g's result. States are recycled
// through world.freeColl once every rank has read the result, so the
// steady-state collective allocates nothing.
type collState struct {
	arrived int
	readers int
	clock   float64     // max participant clock
	per     [][]float64 // per-rank contributions (deterministic order)
	result  []float64   // reused combine buffer
	done    bool
}

// collAt returns (creating or recycling on demand) the state for
// generation g.
func (w *world) collAt(g int) *collState {
	if w.colls == nil {
		w.colls = make(map[int]*collState)
	}
	st, ok := w.colls[g]
	if !ok {
		if k := len(w.freeColl); k > 0 {
			st = w.freeColl[k-1]
			w.freeColl[k-1] = nil
			w.freeColl = w.freeColl[:k-1]
		} else {
			st = &collState{per: make([][]float64, w.size)}
		}
		w.colls[g] = st
	}
	return st
}

// recycleColl resets a fully read state and returns it to the
// freelist. Contribution pointers are dropped so caller buffers are
// not retained; the result buffer is kept for reuse. Must be called
// under collMu.
func (w *world) recycleColl(gen int, st *collState) {
	delete(w.colls, gen)
	st.arrived = 0
	st.readers = 0
	st.clock = 0
	st.done = false
	for i := range st.per {
		st.per[i] = nil
	}
	w.freeColl = append(w.freeColl, st)
}

// combineInto reduces the size deposited slices of st.per element-wise
// with op into st.result (resized to n). Summation runs in rank order
// so the floating-point result is deterministic.
func combineInto(st *collState, op Op, size, n int) {
	if cap(st.result) < n {
		st.result = make([]float64, n)
	}
	st.result = st.result[:n]
	out := st.result
	first := st.per[0]
	if len(first) != n {
		panic(fmt.Sprintf("mp: allreduce length mismatch: rank 0 has %d, combiner has %d", len(first), n))
	}
	copy(out, first)
	for r := 1; r < size; r++ {
		pv := st.per[r]
		if len(pv) != n {
			panic(fmt.Sprintf("mp: allreduce length mismatch: rank 0 has %d, rank %d has %d", n, r, len(pv)))
		}
		switch op {
		case Sum:
			for k := range out {
				out[k] += pv[k]
			}
		case Max:
			for k := range out {
				if pv[k] > out[k] {
					out[k] = pv[k]
				}
			}
		case Min:
			for k := range out {
				if pv[k] < out[k] {
					out[k] = pv[k]
				}
			}
		}
	}
}

// collWait blocks (under collMu) until st completes. A panicked peer
// surfaces as a typed Abandoned fault; with a watchdog armed, a wait
// blocked past the deadline surfaces as a typed Timeout fault (the
// run's ticker broadcasts collCond periodically so the deadline is
// actually checked). Callers hold collMu via defer Unlock, so the
// panic releases the lock.
func (c *Comm) collWait(st *collState, op string) {
	w := c.w
	var start time.Time
	for !st.done {
		if w.anyPanic {
			panic(&fault.Error{Kind: fault.Abandoned, Rank: c.rank, Step: c.step, Op: op,
				Detail: op + " abandoned by a panicked rank"})
		}
		if w.wd > 0 {
			if start.IsZero() {
				start = time.Now()
			} else if time.Since(start) > w.wd {
				panic(&fault.Error{Kind: fault.Timeout, Rank: c.rank, Step: c.step, Op: op,
					Detail: fmt.Sprintf("%s not completed within %v", op, w.wd)})
			}
		}
		w.collCond.Wait()
	}
}

// nextColl claims this rank's next collective generation. Every rank
// must enter collectives in the same order (the usual MPI contract),
// so per-rank counters agree on which generation each entry belongs
// to. Counting per rank rather than globally lets a rank post a
// split-phase collective (IAllreduceInPlace) and enter further
// collectives before waiting on it. Must be called under collMu.
func (c *Comm) nextColl() int {
	g := c.collSeq
	c.collSeq++
	return g
}

// rendezvous runs one collective: every rank deposits contrib (may be
// nil), the last arriver combines all contributions in rank order with
// combine (receiving the per-rank slice), and every rank leaves with a
// private copy of the result and a clock equal to the max participant
// clock plus cost(size, resultBytes). The copy is taken inside the
// critical section because the state (and any reused result buffer) is
// recycled as soon as the last rank has read it.
func (c *Comm) rendezvous(contrib []float64, combine func(per [][]float64) []float64, costBytes int) []float64 {
	w := c.w
	w.collMu.Lock()
	defer w.collMu.Unlock()

	gen := c.nextColl()
	st := w.collAt(gen)
	st.per[c.rank] = contrib
	if c.clock > st.clock {
		st.clock = c.clock
	}
	st.arrived++
	if st.arrived == w.size {
		st.result = combine(st.per)
		st.done = true
		w.collCond.Broadcast()
	} else {
		c.collWait(st, "collective")
	}
	res := append([]float64(nil), st.result...)
	c.clock = st.clock + w.net.CollectiveCost(w.size, costBytes)
	st.readers++
	if st.readers == w.size {
		w.recycleColl(gen, st)
	}
	c.TC.Collectives++
	return res
}

// Barrier blocks until every rank has entered, then releases all with
// equalised clocks plus the network's barrier cost.
func (c *Comm) Barrier() {
	w := c.w
	w.collMu.Lock()
	defer w.collMu.Unlock()
	gen := c.nextColl()
	st := w.collAt(gen)
	if c.clock > st.clock {
		st.clock = c.clock
	}
	st.arrived++
	if st.arrived == w.size {
		st.done = true
		w.collCond.Broadcast()
	} else {
		c.collWait(st, "barrier")
	}
	c.clock = st.clock + w.net.BarrierCost(w.size)
	st.readers++
	if st.readers == w.size {
		w.recycleColl(gen, st)
	}
	c.TC.Barriers++
}

// AllreduceInPlace combines each rank's vector element-wise with op,
// leaving the identical result in v on every rank. Summation runs in
// rank order so the floating-point result is deterministic. This is
// the allocation-free form used on the step path; every rank must pass
// the same length.
func (c *Comm) AllreduceInPlace(v []float64, op Op) {
	w := c.w
	w.collMu.Lock()
	defer w.collMu.Unlock()

	gen := c.nextColl()
	st := w.collAt(gen)
	st.per[c.rank] = v
	if c.clock > st.clock {
		st.clock = c.clock
	}
	st.arrived++
	if st.arrived == w.size {
		combineInto(st, op, w.size, len(v))
		st.done = true
		w.collCond.Broadcast()
	} else {
		c.collWait(st, "collective")
	}
	if len(st.result) != len(v) {
		panic(fmt.Sprintf("mp: allreduce length mismatch: combined %d, rank %d has %d", len(st.result), c.rank, len(v)))
	}
	copy(v, st.result)
	c.clock = st.clock + w.net.CollectiveCost(w.size, 8*len(v))
	st.readers++
	if st.readers == w.size {
		w.recycleColl(gen, st)
	}
	c.TC.Collectives++
}

// Allreduce combines each rank's vector element-wise with op and
// returns the identical result on every rank as a fresh slice.
func (c *Comm) Allreduce(v []float64, op Op) []float64 {
	out := append([]float64(nil), v...)
	c.AllreduceInPlace(out, op)
	return out
}

// AllreduceScalar is Allreduce for a single value; it reuses a
// Comm-owned one-element scratch so the per-step validity vote costs
// no allocation.
func (c *Comm) AllreduceScalar(x float64, op Op) float64 {
	c.scalar[0] = x
	c.AllreduceInPlace(c.scalar[:], op)
	return c.scalar[0]
}

// CollRequest is a handle on a split-phase (nonblocking) collective.
// Complete it with Wait; the handle is recycled by Wait and must not
// be touched afterwards.
type CollRequest struct {
	c     *Comm
	st    *collState
	gen   int
	v     []float64
	bytes int
}

// IAllreduceInPlace posts the allocation-free allreduce without
// blocking: the rank's contribution (and its clock at posting time)
// are deposited immediately, and the combine happens whenever the last
// rank posts. The caller must not touch v until Wait returns, and
// every rank must enter its collectives — posted or blocking — in the
// same order. Compute performed between the post and the Wait runs
// "during" the collective on the virtual timeline: Wait advances the
// clock to max(own clock, completion time) rather than adding the
// collective cost on top, which is how the drivers overlap the
// end-of-step energy reduction with the rebuild vote.
func (c *Comm) IAllreduceInPlace(v []float64, op Op) *CollRequest {
	w := c.w
	w.collMu.Lock()
	gen := c.nextColl()
	st := w.collAt(gen)
	st.per[c.rank] = v
	if c.clock > st.clock {
		st.clock = c.clock
	}
	st.arrived++
	if st.arrived == w.size {
		combineInto(st, op, w.size, len(v))
		st.done = true
		w.collCond.Broadcast()
	}
	w.collMu.Unlock()
	r := w.getCollReq()
	r.c, r.st, r.gen, r.v, r.bytes = c, st, gen, v, 8*len(v)
	return r
}

// Wait blocks until the posted collective completes, copies the
// combined result into the posted vector and recycles the request. A
// CollRequest is single-use: the handle returns to the world's pool
// inside Wait, so the caller must drop it immediately after.
func (r *CollRequest) Wait() {
	c, st, gen, v := r.c, r.st, r.gen, r.v
	w := c.w
	func() {
		w.collMu.Lock()
		defer w.collMu.Unlock()
		c.collWait(st, "collective")
		if len(st.result) != len(v) {
			panic(fmt.Sprintf("mp: allreduce length mismatch: combined %d, rank %d has %d", len(st.result), c.rank, len(v)))
		}
		copy(v, st.result)
		if t := st.clock + w.net.CollectiveCost(w.size, r.bytes); t > c.clock {
			c.clock = t
		}
		st.readers++
		if st.readers == w.size {
			w.recycleColl(gen, st)
		}
	}()
	c.TC.Collectives++
	*r = CollRequest{}
	w.poolMu.Lock()
	w.freeCollReq = append(w.freeCollReq, r)
	w.poolMu.Unlock()
}

// Allgather concatenates every rank's contribution in rank order and
// returns the identical result on every rank as a fresh slice.
// Contributions may differ in length. The cost model charges one
// collective sized as if every rank contributed this rank's share
// (the cost argument must be known before the last rank arrives, when
// only the local length is).
func (c *Comm) Allgather(v []float64) []float64 {
	contrib := append([]float64(nil), v...)
	return c.rendezvous(contrib, func(per [][]float64) []float64 {
		n := 0
		for _, p := range per {
			n += len(p)
		}
		out := make([]float64, 0, n)
		for _, p := range per {
			out = append(out, p...)
		}
		return out
	}, 8*len(v)*c.w.size)
}

// Bcast distributes root's vector to every rank.
func (c *Comm) Bcast(root int, v []float64) []float64 {
	var contrib []float64
	if c.rank == root {
		contrib = append([]float64(nil), v...)
	}
	return c.rendezvous(contrib, func(per [][]float64) []float64 {
		return per[root]
	}, 8*len(v))
}
