package mp

import (
	"fmt"
	"time"

	"hybriddem/internal/fault"
)

// This file is the MPI-3 shared-memory subset the mpism mode is built
// on: MPI_Comm_split_type(MPI_COMM_TYPE_SHARED) becomes SplitNode,
// MPI_Win_allocate_shared becomes NewWin/Reserve, and the active-target
// epoch discipline of MPI_Win_fence becomes Fence. Ranks that share an
// SMP node expose a window of float64 storage to each other; a peer
// reads halo data straight out of the owner's window between fences
// instead of receiving a message.

// NodeGroup is the set of ranks sharing one SMP node, as reported by
// the run's Network. Every member computes the identical group without
// communication (node membership is a pure function of the rank), so
// the group carries deterministic rank ordering: ascending.
type NodeGroup struct {
	c      *Comm
	ranks  []int // ascending member ranks
	index  int   // this rank's position in ranks
	winSeq int   // per-rank counter of windows created on this group
}

// SplitNode groups the communicator by SMP node — the analogue of
// MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): the returned group holds
// every rank r with SameNode(self, r), in ascending order. Under
// ZeroNetwork all ranks share one node; under a platform network the
// grouping follows its CPUsPerNode blocking.
func (c *Comm) SplitNode() *NodeGroup {
	g := &NodeGroup{c: c, index: -1}
	for r := 0; r < c.size; r++ {
		if c.w.net.SameNode(c.rank, r) {
			if r == c.rank {
				g.index = len(g.ranks)
			}
			g.ranks = append(g.ranks, r)
		}
	}
	if g.index < 0 {
		panic(fmt.Sprintf("mp: network does not place rank %d on its own node", c.rank))
	}
	return g
}

// Size returns the number of ranks on the node.
func (g *NodeGroup) Size() int { return len(g.ranks) }

// Ranks returns the member ranks in ascending order. The caller must
// not modify the slice.
func (g *NodeGroup) Ranks() []int { return g.ranks }

// Index returns this rank's position within the group.
func (g *NodeGroup) Index() int { return g.index }

// IndexOf returns rank's position within the group, or -1 when the
// rank is on another node.
func (g *NodeGroup) IndexOf(rank int) int {
	for i, r := range g.ranks {
		if r == rank {
			return i
		}
	}
	return -1
}

// WinCosts prices shared-window traffic on the virtual platform: a
// fenced load streams the owner's data through the reader's cache at
// LoadBw bytes/second (no message latency, no send-side copy), and
// every fence pays FenceLat on top of the group synchronisation. The
// zero value models both as free (correctness runs).
type WinCosts struct {
	LoadBw   float64 // bytes/second read from a node peer's window
	FenceLat float64 // seconds per fence beyond the clock equalisation
}

// winKey identifies one shared window world-wide: the group's lowest
// rank plus the creation ordinal on that group. Group members create
// windows in identical program order, so their ordinals agree.
type winKey struct {
	leader int
	idx    int
}

// fenceState is one generation of a window fence rendezvous, keyed per
// shared window. Guarded by world.collMu (fences share the collective
// condition variable so the watchdog ticker and the any-panic abort
// wake fence waiters too).
type fenceState struct {
	arrived int
	readers int
	clock   float64 // max participant clock
	done    bool
}

// winShared is the node-global state of one window: every member's
// published storage plus the fence rendezvous generations. bufs is
// written under collMu (Reserve) and read lock-free by GetView — the
// publication fence inside Reserve orders the writes before any
// peer's read. fgens and ffree are guarded by world.collMu.
type winShared struct {
	bufs  [][]float64
	fgens map[int]*fenceState
	ffree []*fenceState
}

// fenceAt returns (creating or recycling on demand) the state for
// fence generation gen. Must be called under collMu.
func (sh *winShared) fenceAt(gen int) *fenceState {
	st, ok := sh.fgens[gen]
	if !ok {
		if k := len(sh.ffree); k > 0 {
			st = sh.ffree[k-1]
			sh.ffree[k-1] = nil
			sh.ffree = sh.ffree[:k-1]
		} else {
			st = &fenceState{}
		}
		sh.fgens[gen] = st
	}
	return st
}

// recycleFence resets a fully read state for reuse. Must be called
// under collMu.
func (sh *winShared) recycleFence(gen int, st *fenceState) {
	delete(sh.fgens, gen)
	*st = fenceState{}
	sh.ffree = append(sh.ffree, st)
}

// Win is one rank's handle on a node-shared window. Every group member
// must create its windows in the same program order; handles sharing a
// (group, ordinal) pair address the same storage. The access
// discipline is MPI_Win_fence active-target epochs: a rank writes only
// its own region (Put / Slice), a fence separates the write epoch from
// the read epoch, and peers then load any member's region (Get /
// GetView) until the next fence.
type Win struct {
	g        *NodeGroup
	sh       *winShared
	costs    WinCosts
	local    []float64 // this rank's storage, also published in sh.bufs
	fenceSeq int       // this rank's next fence generation
}

// NewWin creates (or attaches to) a shared window on the node group.
// Collective over the group: every member must call it, in the same
// order relative to its other windows.
func NewWin(g *NodeGroup, costs WinCosts) *Win {
	w := g.c.w
	key := winKey{leader: g.ranks[0], idx: g.winSeq}
	g.winSeq++
	w.winMu.Lock()
	if w.wins == nil {
		w.wins = make(map[winKey]*winShared)
	}
	sh := w.wins[key]
	if sh == nil {
		sh = &winShared{
			bufs:  make([][]float64, len(g.ranks)),
			fgens: make(map[int]*fenceState),
		}
		w.wins[key] = sh
	}
	w.winMu.Unlock()
	return &Win{g: g, sh: sh, costs: costs}
}

// Group returns the node group the window spans.
func (win *Win) Group() *NodeGroup { return win.g }

// Reserve sizes this rank's window to n float64 slots and publishes
// the storage to the group. Collective over the group: every member
// must call it at the same point (the drivers call it at every list
// rebuild), and the internal fence orders the publication before any
// peer's load. Existing capacity is reused, so steady-state calls with
// a stable size allocate nothing.
func (win *Win) Reserve(n int) {
	if cap(win.local) < n {
		win.local = make([]float64, n, n+n/4+8)
	}
	win.local = win.local[:n]
	w := win.g.c.w
	w.collMu.Lock()
	win.sh.bufs[win.g.index] = win.local
	w.collMu.Unlock()
	win.Fence()
}

// Put copies src into this rank's own window at offset off. Writes to
// a window are owner-only; remote data moves by fenced loads, never by
// remote stores, so no write ever contends.
func (win *Win) Put(off int, src []float64) {
	copy(win.local[off:off+len(src)], src)
}

// Slice returns this rank's window region [off, off+n) for in-place
// packing — the zero-copy form of Put the halo exchange gathers into.
func (win *Win) Slice(off, n int) []float64 {
	return win.local[off : off+n]
}

// loadCost advances the reader's clock for a fenced load of n floats
// from a peer's window.
func (win *Win) loadCost(peer, n int) {
	c := win.g.c
	bytes := 8 * n
	if win.costs.LoadBw > 0 && peer != win.g.index {
		c.Compute(float64(c.modelBytes(bytes)) / win.costs.LoadBw)
	}
	c.TC.WinLoadBytes += int64(bytes)
}

// GetView returns a direct read-only view of group member peer's
// window region [off, off+n) and charges the modelled load. The view
// is valid only within the current fence epoch: the caller must not
// retain it across the next Fence (or the owner's next Reserve).
func (win *Win) GetView(peer, off, n int) []float64 {
	win.loadCost(peer, n)
	return win.sh.bufs[peer][off : off+n]
}

// Get copies group member peer's window region into dst, charging the
// modelled load. The copy form of GetView for callers that keep data
// past the epoch.
func (win *Win) Get(peer, off int, dst []float64) {
	win.loadCost(peer, len(dst))
	copy(dst, win.sh.bufs[peer][off:off+len(dst)])
}

// Fence closes the current access epoch: it blocks until every group
// member has entered the same fence, equalises the members' clocks at
// the group maximum plus FenceLat, and orders every write before the
// fence against every load after it (the rendezvous runs under the
// collective mutex, which carries the happens-before edge). A rank
// parked here gets the same deadline treatment as a blocked receive or
// collective: a panicked peer surfaces as a typed Abandoned fault, and
// with a watchdog armed a fence blocked past the deadline surfaces as
// a typed Timeout fault — a killed intra-node peer cannot hang the
// windowed exchange.
func (win *Win) Fence() {
	g := win.g
	c := g.c
	c.TC.WinFences++
	if len(g.ranks) == 1 {
		return
	}
	w := c.w
	w.collMu.Lock()
	defer w.collMu.Unlock()
	gen := win.fenceSeq
	win.fenceSeq++
	st := win.sh.fenceAt(gen)
	if c.clock > st.clock {
		st.clock = c.clock
	}
	st.arrived++
	if st.arrived == len(g.ranks) {
		st.done = true
		w.collCond.Broadcast()
	} else {
		c.fenceWait(st)
	}
	c.clock = st.clock + win.costs.FenceLat
	st.readers++
	if st.readers == len(g.ranks) {
		win.sh.recycleFence(gen, st)
	}
}

// fenceWait blocks (under collMu) until st completes, with the same
// fault surface as collWait: Abandoned on a panicked peer, Timeout
// past an armed watchdog deadline (the run's ticker broadcasts
// collCond periodically so the deadline is actually checked).
func (c *Comm) fenceWait(st *fenceState) {
	w := c.w
	var start time.Time
	for !st.done {
		if w.anyPanic {
			panic(&fault.Error{Kind: fault.Abandoned, Rank: c.rank, Step: c.step, Op: "fence",
				Detail: "window fence abandoned by a panicked rank"})
		}
		if w.wd > 0 {
			if start.IsZero() {
				start = time.Now()
			} else if time.Since(start) > w.wd {
				panic(&fault.Error{Kind: fault.Timeout, Rank: c.rank, Step: c.step, Op: "fence",
					Detail: fmt.Sprintf("window fence not completed within %v", w.wd)})
			}
		}
		w.collCond.Wait()
	}
}
