// Package fault defines the typed error vocabulary shared by the
// message-passing runtime (internal/mp), the thread-team layer
// (internal/shm) and the supervisor (internal/core). It depends only
// on the standard library so every layer can raise and inspect the
// same types without import cycles.
//
// A fault is a detected abnormal condition: an injected rank failure,
// a corrupted or out-of-order message, a watchdog deadline expiring on
// a blocked receive/collective/gate, or a rank abandoned by a panicked
// peer. Faults travel as panics inside a rank goroutine (the only way
// to unwind a blocked driver) and are converted to ordinary errors at
// the mp.RunOpts boundary, where the supervisor classifies and
// recovers from them.
package fault

import (
	"errors"
	"fmt"
)

// Kind classifies a detected fault.
type Kind int

const (
	// Killed marks an injected rank failure (FaultPlan.ArmKill).
	Killed Kind = iota
	// Corrupt marks a message whose checksum did not match its payload.
	Corrupt
	// Sequence marks a message that arrived out of order (a gap in the
	// per-(peer, tag) sequence numbers; exact duplicates are silently
	// discarded and do not raise Sequence).
	Sequence
	// Timeout marks a watchdog deadline expiring on a blocked receive,
	// collective or halo-gate drain.
	Timeout
	// Abandoned marks a rank unwound because a peer panicked first; it
	// is a secondary casualty, never the root cause.
	Abandoned
)

func (k Kind) String() string {
	switch k {
	case Killed:
		return "killed"
	case Corrupt:
		return "corrupt"
	case Sequence:
		return "sequence"
	case Timeout:
		return "timeout"
	case Abandoned:
		return "abandoned"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Error is a typed fault. Rank is the rank that detected (or suffered)
// the fault, Step the global timestep it was detected at (-1 when
// unknown), Op the blocked or failing operation, and Detail a
// human-readable elaboration.
type Error struct {
	Kind   Kind
	Rank   int
	Step   int
	Op     string
	Detail string
}

func (e *Error) Error() string {
	s := fmt.Sprintf("fault: %s at rank %d", e.Kind, e.Rank)
	if e.Step >= 0 {
		s += fmt.Sprintf(" step %d", e.Step)
	}
	if e.Op != "" {
		s += " during " + e.Op
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// From extracts a *Error from a recovered panic value or a wrapped
// error chain, returning nil when v carries no typed fault.
func From(v any) *Error {
	switch x := v.(type) {
	case *Error:
		return x
	case error:
		var fe *Error
		if errors.As(x, &fe) {
			return fe
		}
	}
	return nil
}
