// Package profiling wires the standard runtime profilers into the
// command-line drivers: CPU profiles, end-of-run heap profiles and a
// plain-text allocation summary. The drivers use it to verify the
// zero-allocation steady state of the simulation loop on real
// workloads (go tool pprof reads the profile files).
package profiling

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Options selects which profiles a run collects. The zero value
// disables everything.
type Options struct {
	CPUProfile string // write a pprof CPU profile to this file
	MemProfile string // write a pprof heap profile (at Stop) to this file
	AllocStats bool   // print an allocation summary (at Stop) to the writer
}

// Session is one profiled run. Obtain it from Start and call Stop
// exactly once when the work is done.
type Session struct {
	opt     Options
	w       io.Writer
	cpuFile *os.File
	m0      runtime.MemStats
}

// Start begins the requested profiling. The writer receives the
// allocation summary; commands pass stderr so machine-diffed stdout
// stays untouched. On error nothing is left running.
func Start(opt Options, w io.Writer) (*Session, error) {
	s := &Session{opt: opt, w: w}
	if opt.CPUProfile != "" {
		f, err := os.Create(opt.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		s.cpuFile = f
	}
	if opt.AllocStats {
		runtime.ReadMemStats(&s.m0)
	}
	return s, nil
}

// Stop finishes the CPU profile, writes the heap profile and prints
// the allocation summary, in that order. It returns the first error.
func (s *Session) Stop() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("profiling: %w", err)
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.opt.MemProfile != "" {
		f, err := os.Create(s.opt.MemProfile)
		if err != nil {
			keep(err)
		} else {
			// Up-to-date statistics need a collection first.
			runtime.GC()
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	if s.opt.AllocStats {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		fmt.Fprintf(s.w, "allocstats: %d allocs, %d bytes allocated, %d GC cycles during run (heap in use %d bytes)\n",
			m.Mallocs-s.m0.Mallocs, m.TotalAlloc-s.m0.TotalAlloc, m.NumGC-s.m0.NumGC, m.HeapInuse)
	}
	return firstErr
}
