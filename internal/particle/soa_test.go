package particle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddem/internal/geom"
)

// TestCoordsRoundTripProperty: the AoS↔SoA conversion is lossless —
// any []Vec gathered back out of component-major storage is the
// identical value sequence, bit for bit.
func TestCoordsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(geom.MaxD)
		n := rng.Intn(80)
		vs := make([]geom.Vec, n)
		for i := range vs {
			for k := 0; k < d; k++ {
				vs[i][k] = rng.NormFloat64()
			}
		}
		c := geom.CoordsFromVecs(vs, d)
		if c.Len() != n {
			return false
		}
		back := c.Vecs(n, d)
		for i := range vs {
			if back[i] != vs[i] {
				return false
			}
			if c.At(i, d) != vs[i] {
				return false
			}
		}
		// Component slices must really be component-major.
		for k := 0; k < d; k++ {
			for i := 0; i < n; i++ {
				if c[k][i] != vs[i][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// aosModel is a straightforward array-of-structures reference
// implementation of the store's mutation API. The property test
// drives it and the SoA store with the same operation sequence and
// demands identical observable state throughout.
type aosModel struct {
	d   int
	pos []geom.Vec
	vel []geom.Vec
	id  []int32
}

func (m *aosModel) append_(p, v geom.Vec, id int32) {
	m.pos = append(m.pos, p)
	m.vel = append(m.vel, v)
	m.id = append(m.id, id)
}

func (m *aosModel) remove(i int) {
	last := len(m.id) - 1
	m.pos[i], m.vel[i], m.id[i] = m.pos[last], m.vel[last], m.id[last]
	m.pos, m.vel, m.id = m.pos[:last], m.vel[:last], m.id[:last]
}

func (m *aosModel) truncate(n int) {
	m.pos, m.vel, m.id = m.pos[:n], m.vel[:n], m.id[:n]
}

func (m *aosModel) permute(perm []int32) {
	np, nv, ni := make([]geom.Vec, len(m.pos)), make([]geom.Vec, len(m.vel)), make([]int32, len(m.id))
	copy(np, m.pos)
	copy(nv, m.vel)
	copy(ni, m.id)
	for i, p := range perm {
		np[i], nv[i], ni[i] = m.pos[p], m.vel[p], m.id[p]
	}
	m.pos, m.vel, m.id = np, nv, ni
}

func matches(s *Store, m *aosModel) bool {
	if s.Len() != len(m.id) {
		return false
	}
	for i := 0; i < s.Len(); i++ {
		if s.PosAt(i) != m.pos[i] || s.VelAt(i) != m.vel[i] || s.ID[i] != m.id[i] {
			return false
		}
	}
	return true
}

// TestStoreMatchesAoSModelProperty drives random operation sequences
// — append, swap-delete remove, truncate (compact), permute, point
// writes — through the SoA store and the AoS reference model. Every
// intermediate state must agree exactly: the storage layout is an
// implementation detail with no observable consequence.
func TestStoreMatchesAoSModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(2)
		s := New(d, 8)
		m := &aosModel{d: d}
		nextID := int32(0)
		randVec := func() geom.Vec {
			var v geom.Vec
			for k := 0; k < d; k++ {
				v[k] = rng.NormFloat64()
			}
			return v
		}
		for op := 0; op < 60; op++ {
			n := s.Len()
			switch c := rng.Intn(6); {
			case c <= 1 || n == 0: // append, biased so the store grows
				p, v := randVec(), randVec()
				s.Append(p, v, nextID)
				m.append_(p, v, nextID)
				nextID++
			case c == 2: // swap-delete
				i := rng.Intn(n)
				s.Remove(i)
				m.remove(i)
			case c == 3: // compact to a prefix
				k := rng.Intn(n + 1)
				s.Truncate(k)
				m.truncate(k)
			case c == 4: // cache-order style permutation
				perm := make([]int32, n)
				for i, p := range rng.Perm(n) {
					perm[i] = int32(p)
				}
				s.Permute(perm)
				m.permute(perm)
			default: // point writes through the Vec accessors
				i := rng.Intn(n)
				p, v := randVec(), randVec()
				s.SetPos(i, p)
				s.SetVel(i, v)
				m.pos[i], m.vel[i] = p, v
			}
			if !matches(s, m) {
				return false
			}
		}
		// Clone must be deep and identical.
		c := s.Clone()
		if !matches(c, m) {
			return false
		}
		if s.Len() > 0 {
			c.SetPos(0, geom.Vec{99, 99, 99})
			if s.PosAt(0) == (geom.Vec{99, 99, 99}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
