// Package particle implements the structure-of-arrays particle store
// used by every execution mode, plus the cell-order reordering that the
// paper identifies as the key cache optimisation (Section 6.3).
//
// Storage is component-major (geom.Coords): all x coordinates are one
// contiguous []float64, all y coordinates another, and so on for
// velocities and force accumulators. The force kernel therefore streams
// d tight float64 arrays instead of striding through per-particle
// structs — the memory-order effect the paper measures as the largest
// serial lever. Accessor methods gather and scatter geom.Vec values at
// the boundaries (exchange packing, export, probes); hot loops index
// the component slices directly.
//
// A Store holds positions, velocities, forces and persistent global
// identities. In decomposed runs each block owns one Store whose first
// NCore entries are core particles and whose tail is halo copies; the
// reordering permutation is applied to the core only, "leaving the halo
// particles untouched" exactly as in the paper.
package particle

import (
	"fmt"
	"math/rand"

	"hybriddem/internal/geom"
)

// Store is a structure-of-arrays collection of particles. All component
// slices always have equal length.
type Store struct {
	D   int         // spatial dimensionality
	Pos geom.Coords // positions, component-major
	Vel geom.Coords // velocities, component-major
	Frc geom.Coords // force accumulators, component-major
	ID  []int32     // persistent global identity, stable across moves

	// Reused gather scratch for Permute; never copied by Clone.
	permPos, permVel, permFrc geom.Coords
	permID                    []int32
}

// New returns an empty store for dimensionality d with capacity hint n.
func New(d, n int) *Store {
	return &Store{
		D:   d,
		Pos: geom.MakeCoords(d, n),
		Vel: geom.MakeCoords(d, n),
		Frc: geom.MakeCoords(d, n),
		ID:  make([]int32, 0, n),
	}
}

// Len returns the number of particles currently stored.
func (s *Store) Len() int { return len(s.ID) }

// PosAt gathers the position of particle i into a Vec.
func (s *Store) PosAt(i int) geom.Vec { return s.Pos.At(i, s.D) }

// VelAt gathers the velocity of particle i into a Vec.
func (s *Store) VelAt(i int) geom.Vec { return s.Vel.At(i, s.D) }

// FrcAt gathers the force accumulator of particle i into a Vec.
func (s *Store) FrcAt(i int) geom.Vec { return s.Frc.At(i, s.D) }

// SetPos scatters p into particle i's position.
func (s *Store) SetPos(i int, p geom.Vec) { s.Pos.Set(i, p, s.D) }

// SetVel scatters v into particle i's velocity.
func (s *Store) SetVel(i int, v geom.Vec) { s.Vel.Set(i, v, s.D) }

// Append adds one particle and returns its index.
func (s *Store) Append(pos, vel geom.Vec, id int32) int {
	s.Pos.Append(pos, s.D)
	s.Vel.Append(vel, s.D)
	s.Frc.Append(geom.Vec{}, s.D)
	s.ID = append(s.ID, id)
	return len(s.ID) - 1
}

// Truncate shrinks the store to n particles. It is used to drop halo
// copies before a fresh halo exchange.
func (s *Store) Truncate(n int) {
	if n < 0 || n > len(s.ID) {
		panic(fmt.Sprintf("particle: truncate %d out of range [0,%d]", n, len(s.ID)))
	}
	s.Pos.Truncate(n, s.D)
	s.Vel.Truncate(n, s.D)
	s.Frc.Truncate(n, s.D)
	s.ID = s.ID[:n]
}

// Clear empties the store, retaining capacity.
func (s *Store) Clear() { s.Truncate(0) }

// Remove deletes particle i by swapping the last particle into its
// slot. Order is not preserved; callers that care (the link list) must
// rebuild afterwards, which is exactly when removals happen.
func (s *Store) Remove(i int) {
	last := len(s.ID) - 1
	s.Pos.CopyWithin(i, last, s.D)
	s.Vel.CopyWithin(i, last, s.D)
	s.Frc.CopyWithin(i, last, s.D)
	s.ID[i] = s.ID[last]
	s.Truncate(last)
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	c := New(s.D, s.Len())
	c.Pos.AppendCoords(&s.Pos, s.Len(), s.D)
	c.Vel.AppendCoords(&s.Vel, s.Len(), s.D)
	c.Frc.AppendCoords(&s.Frc, s.Len(), s.D)
	c.ID = append(c.ID, s.ID...)
	return c
}

// ZeroForces clears every force accumulator.
func (s *Store) ZeroForces() {
	for k := 0; k < s.D; k++ {
		f := s.Frc[k]
		for i := range f {
			f[i] = 0
		}
	}
}

// Permute reorders the first len(perm) particles so that slot i holds
// what slot perm[i] held before. Entries beyond len(perm) — the halo —
// are untouched. perm must be a permutation of [0, len(perm)).
func (s *Store) Permute(perm []int32) {
	n := len(perm)
	if n > s.Len() {
		panic(fmt.Sprintf("particle: permutation of %d over %d particles", n, s.Len()))
	}
	// Gather through store-owned scratch buffers, reused across
	// rebuilds so the cache reordering allocates only on growth. Each
	// component gathers independently: the permutation moves the same
	// float64 values, so the reorder stays bit-exact by construction.
	if cap(s.permID) < n {
		for k := 0; k < s.D; k++ {
			s.permPos[k] = make([]float64, n)
			s.permVel[k] = make([]float64, n)
			s.permFrc[k] = make([]float64, n)
		}
		s.permID = make([]int32, n)
	}
	for k := 0; k < s.D; k++ {
		pos := s.permPos[k][:n]
		vel := s.permVel[k][:n]
		frc := s.permFrc[k][:n]
		sp, sv, sf := s.Pos[k], s.Vel[k], s.Frc[k]
		for i, p := range perm {
			pos[i] = sp[p]
			vel[i] = sv[p]
			frc[i] = sf[p]
		}
		copy(sp, pos)
		copy(sv, vel)
		copy(sf, frc)
	}
	id := s.permID[:n]
	for i, p := range perm {
		id[i] = s.ID[p]
	}
	copy(s.ID, id)
}

// SnapshotPos returns a copy of the current positions; the rebuild
// criterion compares against the snapshot taken at list-build time.
func (s *Store) SnapshotPos() geom.Coords {
	out := geom.MakeCoords(s.D, s.Len())
	out.AppendCoords(&s.Pos, s.Len(), s.D)
	return out
}

// MaxDisp2 returns the maximum squared displacement of the first n
// particles relative to ref, using box displacement (minimum image for
// periodic boxes). ref must have at least n entries per component.
func (s *Store) MaxDisp2(ref *geom.Coords, n int, box geom.Box) float64 {
	maxd := 0.0
	for i := 0; i < n; i++ {
		d := box.Dist2To(ref, &s.Pos, i)
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// FillUniform populates the store with n particles placed uniformly at
// random in box, with zero velocity, assigning sequential IDs starting
// at firstID. It is the initial condition of the paper's benchmark
// ("a uniform, random distribution of one million identical elastic
// spheres").
func FillUniform(s *Store, n int, box geom.Box, firstID int32, rng *rand.Rand) {
	for k := 0; k < n; k++ {
		var p geom.Vec
		for i := 0; i < box.D; i++ {
			p[i] = rng.Float64() * box.Len[i]
		}
		s.Append(p, geom.Vec{}, firstID+int32(k))
	}
}

// FillUniformVel populates like FillUniform but draws each velocity
// component uniformly from [-vmax, vmax]. Used by tests and examples
// that need motion from step one.
func FillUniformVel(s *Store, n int, box geom.Box, vmax float64, firstID int32, rng *rand.Rand) {
	for k := 0; k < n; k++ {
		var p, v geom.Vec
		for i := 0; i < box.D; i++ {
			p[i] = rng.Float64() * box.Len[i]
			v[i] = (2*rng.Float64() - 1) * vmax
		}
		s.Append(p, v, firstID+int32(k))
	}
}

// FillClustered populates like FillUniformVel but compresses the last
// coordinate into the bottom heightFrac of the box: a settled bed of
// grains, the spatially clustered workload that motivates the paper's
// load-balancing study. The random draw sequence matches
// FillUniform/FillUniformVel so decomposed runs reproduce the same
// configuration.
func FillClustered(s *Store, n int, box geom.Box, heightFrac, vmax float64, firstID int32, rng *rand.Rand) {
	if heightFrac <= 0 || heightFrac > 1 {
		heightFrac = 1
	}
	last := box.D - 1
	for k := 0; k < n; k++ {
		var p, v geom.Vec
		for i := 0; i < box.D; i++ {
			p[i] = rng.Float64() * box.Len[i]
			if vmax > 0 {
				v[i] = (2*rng.Float64() - 1) * vmax
			}
		}
		p[last] *= heightFrac
		s.Append(p, v, firstID+int32(k))
	}
}
