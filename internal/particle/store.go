// Package particle implements the structure-of-arrays particle store
// used by every execution mode, plus the cell-order reordering that the
// paper identifies as the key cache optimisation (Section 6.3).
//
// A Store holds positions, velocities, forces and persistent global
// identities. In decomposed runs each block owns one Store whose first
// NCore entries are core particles and whose tail is halo copies; the
// reordering permutation is applied to the core only, "leaving the halo
// particles untouched" exactly as in the paper.
package particle

import (
	"fmt"
	"math/rand"

	"hybriddem/internal/geom"
)

// Store is a structure-of-arrays collection of particles. All slices
// always have equal length.
type Store struct {
	D   int        // spatial dimensionality
	Pos []geom.Vec // positions
	Vel []geom.Vec // velocities
	Frc []geom.Vec // force accumulators
	ID  []int32    // persistent global identity, stable across moves

	// Reused gather scratch for Permute; never copied by Clone.
	permPos, permVel, permFrc []geom.Vec
	permID                    []int32
}

// New returns an empty store for dimensionality d with capacity hint n.
func New(d, n int) *Store {
	return &Store{
		D:   d,
		Pos: make([]geom.Vec, 0, n),
		Vel: make([]geom.Vec, 0, n),
		Frc: make([]geom.Vec, 0, n),
		ID:  make([]int32, 0, n),
	}
}

// Len returns the number of particles currently stored.
func (s *Store) Len() int { return len(s.Pos) }

// Append adds one particle and returns its index.
func (s *Store) Append(pos, vel geom.Vec, id int32) int {
	s.Pos = append(s.Pos, pos)
	s.Vel = append(s.Vel, vel)
	s.Frc = append(s.Frc, geom.Vec{})
	s.ID = append(s.ID, id)
	return len(s.Pos) - 1
}

// Truncate shrinks the store to n particles. It is used to drop halo
// copies before a fresh halo exchange.
func (s *Store) Truncate(n int) {
	if n < 0 || n > len(s.Pos) {
		panic(fmt.Sprintf("particle: truncate %d out of range [0,%d]", n, len(s.Pos)))
	}
	s.Pos = s.Pos[:n]
	s.Vel = s.Vel[:n]
	s.Frc = s.Frc[:n]
	s.ID = s.ID[:n]
}

// Clear empties the store, retaining capacity.
func (s *Store) Clear() { s.Truncate(0) }

// Remove deletes particle i by swapping the last particle into its
// slot. Order is not preserved; callers that care (the link list) must
// rebuild afterwards, which is exactly when removals happen.
func (s *Store) Remove(i int) {
	last := len(s.Pos) - 1
	s.Pos[i] = s.Pos[last]
	s.Vel[i] = s.Vel[last]
	s.Frc[i] = s.Frc[last]
	s.ID[i] = s.ID[last]
	s.Truncate(last)
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	c := New(s.D, s.Len())
	c.Pos = append(c.Pos, s.Pos...)
	c.Vel = append(c.Vel, s.Vel...)
	c.Frc = append(c.Frc, s.Frc...)
	c.ID = append(c.ID, s.ID...)
	return c
}

// ZeroForces clears every force accumulator.
func (s *Store) ZeroForces() {
	for i := range s.Frc {
		s.Frc[i] = geom.Vec{}
	}
}

// Permute reorders the first len(perm) particles so that slot i holds
// what slot perm[i] held before. Entries beyond len(perm) — the halo —
// are untouched. perm must be a permutation of [0, len(perm)).
func (s *Store) Permute(perm []int32) {
	n := len(perm)
	if n > s.Len() {
		panic(fmt.Sprintf("particle: permutation of %d over %d particles", n, s.Len()))
	}
	// Gather through store-owned scratch buffers, reused across
	// rebuilds so the cache reordering allocates only on growth.
	if cap(s.permPos) < n {
		s.permPos = make([]geom.Vec, n)
		s.permVel = make([]geom.Vec, n)
		s.permFrc = make([]geom.Vec, n)
		s.permID = make([]int32, n)
	}
	pos := s.permPos[:n]
	vel := s.permVel[:n]
	frc := s.permFrc[:n]
	id := s.permID[:n]
	for i, p := range perm {
		pos[i] = s.Pos[p]
		vel[i] = s.Vel[p]
		frc[i] = s.Frc[p]
		id[i] = s.ID[p]
	}
	copy(s.Pos, pos)
	copy(s.Vel, vel)
	copy(s.Frc, frc)
	copy(s.ID, id)
}

// SnapshotPos returns a copy of the current positions; the rebuild
// criterion compares against the snapshot taken at list-build time.
func (s *Store) SnapshotPos() []geom.Vec {
	out := make([]geom.Vec, s.Len())
	copy(out, s.Pos)
	return out
}

// MaxDisp2 returns the maximum squared displacement of the first n
// particles relative to ref, using box displacement (minimum image for
// periodic boxes). ref must have at least n entries.
func (s *Store) MaxDisp2(ref []geom.Vec, n int, box geom.Box) float64 {
	maxd := 0.0
	for i := 0; i < n; i++ {
		d := box.Dist2(ref[i], s.Pos[i])
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// FillUniform populates the store with n particles placed uniformly at
// random in box, with zero velocity, assigning sequential IDs starting
// at firstID. It is the initial condition of the paper's benchmark
// ("a uniform, random distribution of one million identical elastic
// spheres").
func FillUniform(s *Store, n int, box geom.Box, firstID int32, rng *rand.Rand) {
	for k := 0; k < n; k++ {
		var p geom.Vec
		for i := 0; i < box.D; i++ {
			p[i] = rng.Float64() * box.Len[i]
		}
		s.Append(p, geom.Vec{}, firstID+int32(k))
	}
}

// FillUniformVel populates like FillUniform but draws each velocity
// component uniformly from [-vmax, vmax]. Used by tests and examples
// that need motion from step one.
func FillUniformVel(s *Store, n int, box geom.Box, vmax float64, firstID int32, rng *rand.Rand) {
	for k := 0; k < n; k++ {
		var p, v geom.Vec
		for i := 0; i < box.D; i++ {
			p[i] = rng.Float64() * box.Len[i]
			v[i] = (2*rng.Float64() - 1) * vmax
		}
		s.Append(p, v, firstID+int32(k))
	}
}

// FillClustered populates like FillUniformVel but compresses the last
// coordinate into the bottom heightFrac of the box: a settled bed of
// grains, the spatially clustered workload that motivates the paper's
// load-balancing study. The random draw sequence matches
// FillUniform/FillUniformVel so decomposed runs reproduce the same
// configuration.
func FillClustered(s *Store, n int, box geom.Box, heightFrac, vmax float64, firstID int32, rng *rand.Rand) {
	if heightFrac <= 0 || heightFrac > 1 {
		heightFrac = 1
	}
	last := box.D - 1
	for k := 0; k < n; k++ {
		var p, v geom.Vec
		for i := 0; i < box.D; i++ {
			p[i] = rng.Float64() * box.Len[i]
			if vmax > 0 {
				v[i] = (2*rng.Float64() - 1) * vmax
			}
		}
		p[last] *= heightFrac
		s.Append(p, v, firstID+int32(k))
	}
}
