package particle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hybriddem/internal/geom"
)

func filled(n int) *Store {
	s := New(2, n)
	rng := rand.New(rand.NewSource(1))
	box := geom.NewBox(2, 1, geom.Periodic)
	FillUniform(s, n, box, 0, rng)
	return s
}

func TestAppendTruncateLen(t *testing.T) {
	s := New(3, 4)
	if s.Len() != 0 {
		t.Fatalf("new store has %d particles", s.Len())
	}
	i := s.Append(geom.Vec{1, 2, 3}, geom.Vec{4, 5, 6}, 7)
	if i != 0 || s.Len() != 1 {
		t.Fatalf("append index %d len %d", i, s.Len())
	}
	if s.PosAt(0) != (geom.Vec{1, 2, 3}) || s.VelAt(0) != (geom.Vec{4, 5, 6}) || s.ID[0] != 7 {
		t.Error("appended fields mismatch")
	}
	if s.FrcAt(0) != (geom.Vec{}) {
		t.Error("fresh particle has nonzero force")
	}
	s.Append(geom.Vec{9}, geom.Vec{}, 8)
	s.Truncate(1)
	if s.Len() != 1 || s.ID[0] != 7 {
		t.Error("truncate removed the wrong end")
	}
}

func TestTruncatePanicsOutOfRange(t *testing.T) {
	s := filled(3)
	for _, n := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Truncate(%d) did not panic", n)
				}
			}()
			s.Truncate(n)
		}()
	}
}

func TestRemoveSwapsLast(t *testing.T) {
	s := New(2, 3)
	s.Append(geom.Vec{0}, geom.Vec{}, 10)
	s.Append(geom.Vec{1}, geom.Vec{}, 11)
	s.Append(geom.Vec{2}, geom.Vec{}, 12)
	s.Remove(0)
	if s.Len() != 2 || s.ID[0] != 12 || s.ID[1] != 11 {
		t.Errorf("after remove: len=%d ids=%v", s.Len(), s.ID)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := filled(5)
	c := s.Clone()
	c.Pos[0][0] = 99
	c.ID[1] = -1
	if s.Pos[0][0] == 99 || s.ID[1] == -1 {
		t.Error("clone shares storage")
	}
}

func TestZeroForces(t *testing.T) {
	s := filled(4)
	for i := 0; i < s.Len(); i++ {
		s.Frc[0][i], s.Frc[1][i] = 1, 1
	}
	s.ZeroForces()
	for i := 0; i < s.Len(); i++ {
		if s.FrcAt(i) != (geom.Vec{}) {
			t.Fatalf("force %d not cleared", i)
		}
	}
}

// TestPermuteProperty: permuting by any permutation rearranges but
// never loses or duplicates particles, and leaves the tail (halo)
// untouched.
func TestPermuteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		halo := rng.Intn(5)
		s := New(2, n+halo)
		box := geom.NewBox(2, 1, geom.Periodic)
		FillUniform(s, n+halo, box, 0, rng)
		perm := rng.Perm(n)
		p32 := make([]int32, n)
		for i, p := range perm {
			p32[i] = int32(p)
		}
		before := s.Clone()
		s.Permute(p32)
		// Core particles: s[i] == before[perm[i]].
		for i := 0; i < n; i++ {
			if s.ID[i] != before.ID[perm[i]] || s.PosAt(i) != before.PosAt(int(perm[i])) {
				return false
			}
		}
		// Halo untouched.
		for i := n; i < n+halo; i++ {
			if s.ID[i] != before.ID[i] || s.PosAt(i) != before.PosAt(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPermutePanicsWhenTooLong(t *testing.T) {
	s := filled(3)
	defer func() {
		if recover() == nil {
			t.Error("oversized permutation did not panic")
		}
	}()
	s.Permute([]int32{0, 1, 2, 3})
}

func TestMaxDisp2(t *testing.T) {
	s := New(2, 2)
	s.Append(geom.Vec{0.1, 0.1}, geom.Vec{}, 0)
	s.Append(geom.Vec{0.9, 0.9}, geom.Vec{}, 1)
	ref := s.SnapshotPos()
	box := geom.NewBox(2, 1, geom.Periodic)
	s.Pos[0][0] = 0.15 // particle 0 moved 0.05 in x
	s.Pos[0][1] = 0.05 // particle 1 moved 0.15 across the wrap
	got := s.MaxDisp2(&ref, 2, box)
	want := 0.15 * 0.15
	if got < want-1e-12 || got > want+1e-12 {
		t.Errorf("MaxDisp2 = %g, want %g", got, want)
	}
}

func TestFillUniformDeterminism(t *testing.T) {
	box := geom.NewBox(3, 2, geom.Periodic)
	a := New(3, 10)
	b := New(3, 10)
	FillUniform(a, 10, box, 0, rand.New(rand.NewSource(5)))
	FillUniform(b, 10, box, 0, rand.New(rand.NewSource(5)))
	for i := 0; i < 10; i++ {
		if a.PosAt(i) != b.PosAt(i) {
			t.Fatal("same seed produced different configurations")
		}
		if !box.Contains(a.PosAt(i)) {
			t.Fatalf("particle %d outside box: %v", i, a.PosAt(i))
		}
	}
}

func TestFillUniformVelBounds(t *testing.T) {
	box := geom.NewBox(2, 1, geom.Periodic)
	s := New(2, 100)
	FillUniformVel(s, 100, box, 0.5, 0, rand.New(rand.NewSource(9)))
	for i := 0; i < 100; i++ {
		for k := 0; k < 2; k++ {
			if v := s.Vel[k][i]; v < -0.5 || v > 0.5 {
				t.Fatalf("velocity %g out of bounds", v)
			}
		}
	}
}
