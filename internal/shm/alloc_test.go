package shm

import (
	"testing"

	"hybriddem/internal/force"
	"hybriddem/internal/raceflag"
)

// TestAccumulateSteadyStateZeroAlloc gates the tentpole property at
// the shm layer: with a warmed team and updater, a full
// zero-force + accumulate + integrate step allocates nothing, for
// every protection method.
func TestAccumulateSteadyStateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	const n, halo, T = 240, 40, 4
	ps, list, box, sp := buildForceSystem(5, n, halo, 2)
	for _, m := range Methods {
		t.Run(m.String(), func(t *testing.T) {
			tm := NewTeam(T, Costs{})
			defer tm.Close()
			u := NewUpdater(m)
			u.Prepare(list.Links, ps.Len(), n, T)
			step := func() {
				ZeroForcesParallel(tm, ps, n)
				u.Accumulate(tm, sp, ps, list.Links, list.NCore, n, box)
				// dt = 0 keeps the configuration (and hence the link
				// list) valid forever while still running the kernel.
				IntegrateParallel(tm, ps, n, 0, box, force.WrapGlobal)
			}
			for i := 0; i < 5; i++ {
				step() // warm scratch, worker stacks, private arrays
			}
			if avg := testing.AllocsPerRun(20, step); avg != 0 {
				t.Errorf("%v: steady-state step allocates %g times per run, want 0", m, avg)
			}
		})
	}
}

// TestFusedAccumulateSteadyStateZeroAlloc is the same gate for the
// fused single-region updater over multiple blocks.
func TestFusedAccumulateSteadyStateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	const T = 4
	psA, listA, box, sp := buildForceSystem(19, 200, 30, 2)
	psB, listB, _, _ := buildForceSystem(23, 150, 20, 2)
	pieces := []FusedPiece{
		{PS: psA, Links: listA.Links, NCoreLinks: listA.NCore, NCore: 200},
		{PS: psB, Links: listB.Links, NCoreLinks: listB.NCore, NCore: 150},
	}
	blocks := []*BlockStore{
		{PS: psA, NCore: 200},
		{PS: psB, NCore: 150},
	}
	cores := []int{200, 150}

	fu := NewFusedUpdater(SelectedAtomic)
	fu.Prepare(pieces, T)
	tm := NewTeam(T, Costs{})
	defer tm.Close()
	step := func() {
		ZeroForcesAllBlocks(tm, blocks)
		fu.Accumulate(tm, sp, box)
		IntegrateAllBlocks(tm, blocks, cores, 0, box, force.WrapGlobal)
	}
	for i := 0; i < 5; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(20, step); avg != 0 {
		t.Errorf("fused steady-state step allocates %g times per run, want 0", avg)
	}
}

// TestPrepareWarmZeroAlloc: re-preparing after a (same-shape) rebuild
// reuses the conflict table, locks and scratch.
func TestPrepareWarmZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	const n, halo, T = 240, 40, 4
	ps, list, _, _ := buildForceSystem(7, n, halo, 2)
	u := NewUpdater(SelectedAtomic)
	prep := func() { u.Prepare(list.Links, ps.Len(), n, T) }
	prep()
	if avg := testing.AllocsPerRun(10, prep); avg != 0 {
		t.Errorf("warm Prepare allocates %g times per run, want 0", avg)
	}
}
