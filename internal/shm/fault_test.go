package shm

import (
	"sync/atomic"
	"testing"
	"time"

	"hybriddem/internal/fault"
)

// expectFault runs f expecting a panic carrying a typed *fault.Error
// of the given kind, and returns it.
func expectFault(t *testing.T, kind fault.Kind, f func()) *fault.Error {
	t.Helper()
	var got *fault.Error
	func() {
		defer func() {
			e := recover()
			if e == nil {
				t.Fatalf("no panic, want a %v fault", kind)
			}
			fe := fault.From(e)
			if fe == nil {
				t.Fatalf("untyped panic %v, want a %v fault", e, kind)
			}
			if fe.Kind != kind {
				t.Fatalf("fault kind %v, want %v (%v)", fe.Kind, kind, fe)
			}
			got = fe
		}()
		f()
	}()
	return got
}

// TestSplitPhaseAbortThenReuse: a panic inside a split-phase region
// must surface at FinishRegion, and the team must run further regions
// — both split-phase and fused — without deadlock or stale state.
func TestSplitPhaseAbortThenReuse(t *testing.T) {
	tm := NewTeam(3, Costs{})
	defer tm.Close()
	for cycle := 0; cycle < 3; cycle++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("split-phase panic did not propagate")
				}
			}()
			tm.StartRegion(funcBody(func(th *Thread) {
				if th.ID == 1 {
					panic("boom")
				}
				th.Barrier()
			}))
			tm.FinishRegion(tm.Clock())
		}()
		var mask int64
		tm.StartRegion(funcBody(func(th *Thread) {
			atomic.AddInt64(&mask, 1<<uint(th.ID))
			th.Barrier()
		}))
		tm.FinishRegion(tm.Clock())
		if mask != 7 {
			t.Fatalf("cycle %d: post-abort region ran thread mask %b, want 111", cycle, mask)
		}
	}
}

// TestFinishRegionPrefersTypedFault: when one thread raises a typed
// fault and its siblings die untyped on the abandoned barrier, the
// typed fault must win regardless of thread order — the mp layer
// classifies the run by it.
func TestFinishRegionPrefersTypedFault(t *testing.T) {
	tm := NewTeam(3, Costs{})
	defer tm.Close()
	fe := expectFault(t, fault.Timeout, func() {
		tm.Region(func(th *Thread) {
			// The highest thread ID raises the typed fault, so a scan
			// that stops at the first recorded panic (thread 0's
			// untyped barrier abandonment) would misreport.
			if th.ID == 2 {
				panic(&fault.Error{Kind: fault.Timeout, Rank: -1, Step: -1, Op: "test"})
			}
			th.Barrier()
		})
	})
	if fe.Op != "test" {
		t.Errorf("fault op %q, want the typed thread's", fe.Op)
	}
}

// TestHaloGateAbortThenReuse: Abort must release every waiter with a
// typed Abandoned fault, and after Reset the same gate must serve a
// normal open cycle.
func TestHaloGateAbortThenReuse(t *testing.T) {
	tm := NewTeam(4, Costs{})
	defer tm.Close()
	g := NewHaloGate()

	g.Reset()
	tm.StartRegion(funcBody(func(th *Thread) {
		g.Wait(th)
	}))
	time.Sleep(time.Millisecond) // let workers reach the gate
	g.Abort()
	expectFault(t, fault.Abandoned, func() { tm.FinishRegion(tm.Clock()) })

	// Reused after reset: a normal open cycle with a clock advance.
	g.Reset()
	tm.StartRegion(funcBody(func(th *Thread) {
		g.Wait(th)
	}))
	g.Open(tm.Clock() + 5)
	tm.FinishRegion(tm.Clock() + 5)
	if g.MaxStall() <= 0 {
		t.Error("reused gate recorded no stall for a late open")
	}
}

// TestHaloGateDeadlineTimeout: with a deadline armed, waiters on a
// gate whose master never opens it must surface a typed Timeout —
// bounded in wall time — instead of hanging the region forever.
func TestHaloGateDeadlineTimeout(t *testing.T) {
	const wd = 30 * time.Millisecond
	tm := NewTeam(3, Costs{})
	defer tm.Close()
	g := NewHaloGate()
	g.SetDeadline(wd)

	g.Reset()
	start := time.Now()
	tm.StartRegion(funcBody(func(th *Thread) {
		g.Wait(th)
	}))
	expectFault(t, fault.Timeout, func() { tm.FinishRegion(tm.Clock()) })
	if elapsed := time.Since(start); elapsed > 50*wd {
		t.Errorf("gate timeout took %v with a %v deadline", elapsed, wd)
	}

	// The deadline persists across Reset but an opened gate never
	// trips it.
	g.Reset()
	tm.StartRegion(funcBody(func(th *Thread) {
		g.Wait(th)
	}))
	g.Open(tm.Clock())
	tm.FinishRegion(tm.Clock())
}

// TestRaceGateAbortOpenCycles stresses the gate's abort/open/reset and
// watchdog-timer paths under the race detector: repeated cycles where
// the master either opens or aborts while workers sit at the gate.
func TestRaceGateAbortOpenCycles(t *testing.T) {
	tm := NewTeam(4, Costs{})
	defer tm.Close()
	g := NewHaloGate()
	g.SetDeadline(time.Second) // armed, but never meant to fire
	for i := 0; i < 50; i++ {
		g.Reset()
		tm.StartRegion(funcBody(func(th *Thread) {
			g.Wait(th)
		}))
		if i%3 == 0 {
			g.Abort()
			func() {
				defer func() { recover() }()
				tm.FinishRegion(tm.Clock())
			}()
		} else {
			g.Open(tm.Clock() + float64(i))
			tm.FinishRegion(tm.Clock())
		}
	}
	// The team must still be healthy.
	var mask int64
	tm.Region(func(th *Thread) {
		atomic.AddInt64(&mask, 1<<uint(th.ID))
	})
	if mask != 15 {
		t.Fatalf("final region ran thread mask %b, want 1111", mask)
	}
}
