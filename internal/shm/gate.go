package shm

import (
	"fmt"
	"sync"
	"time"

	"hybriddem/internal/fault"
)

// HaloGate synchronises a force region's threads with the rank's
// in-flight halo exchange. The force loop runs the block's single link
// list (core links first) in one statically scheduled pass; a thread
// that reaches the core/halo boundary of its chunk calls Wait and
// blocks until the master — which dispatched the region with
// Team.StartRegion and is draining the exchange meanwhile — calls Open
// with the communication clock. Core links touch only core particles
// and the exchange writes only halo storage, so threads on the core
// side of the boundary never need the gate.
//
// On the virtual timeline Wait advances the thread clock to at least
// the opening communication clock: halo data cannot be consumed before
// it has arrived. The largest such advance is recorded as the region's
// exposed communication time (MaxStall) — the part of the exchange the
// core-link computation failed to hide.
type HaloGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	open     bool
	aborted  bool
	openAt   float64
	maxStall float64

	// Watchdog state: with a deadline set, a Wait blocked longer
	// panics with a typed Timeout fault instead of hanging on a master
	// that died without aborting. The single timer is created lazily
	// and re-armed while the gate is closed; it only broadcasts, so a
	// stale firing after Open/Reset is harmless.
	deadline time.Duration
	timer    *time.Timer
}

// NewHaloGate returns a closed gate.
func NewHaloGate() *HaloGate {
	g := &HaloGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Reset closes the gate for the next region. Must not race with
// waiters (call it before StartRegion).
func (g *HaloGate) Reset() {
	g.mu.Lock()
	g.open = false
	g.aborted = false
	g.openAt = 0
	g.maxStall = 0
	g.mu.Unlock()
}

// Open releases all waiting threads, stamping the communication clock
// at which the halo data became available.
func (g *HaloGate) Open(commClock float64) {
	g.mu.Lock()
	g.open = true
	g.openAt = commClock
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Abort releases all waiting threads with a panic; the master calls it
// when the exchange drain dies so the region's threads cannot block
// forever on a gate that will never open.
func (g *HaloGate) Abort() {
	g.mu.Lock()
	g.aborted = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// SetDeadline arms a watchdog on the gate: any Wait blocked longer
// than d panics with a typed *fault.Error of Kind Timeout. d == 0
// disables the watchdog. Call it before the first region; the setting
// persists across Reset.
func (g *HaloGate) SetDeadline(d time.Duration) {
	g.mu.Lock()
	g.deadline = d
	g.mu.Unlock()
}

// rearm schedules a broadcast so blocked waiters re-check their
// deadlines even when the master will never call Open. Must be called
// under mu.
func (g *HaloGate) rearm() {
	period := g.deadline / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	if g.timer == nil {
		g.timer = time.AfterFunc(period, func() {
			g.mu.Lock()
			if !g.open && !g.aborted && g.deadline > 0 {
				g.rearm()
			}
			g.mu.Unlock()
			g.cond.Broadcast()
		})
		return
	}
	g.timer.Reset(period)
}

// Wait blocks the calling thread until the gate opens and advances its
// virtual clock to at least the opening communication clock.
func (g *HaloGate) Wait(th *Thread) {
	g.mu.Lock()
	var start time.Time
	for !g.open && !g.aborted {
		if g.deadline > 0 {
			if start.IsZero() {
				start = time.Now()
				g.rearm()
			} else if time.Since(start) > g.deadline {
				d := g.deadline
				g.mu.Unlock()
				panic(&fault.Error{Kind: fault.Timeout, Rank: -1, Step: -1, Op: "halo-gate",
					Detail: fmt.Sprintf("thread %d blocked at the halo gate for more than %v", th.ID, d)})
			}
		}
		g.cond.Wait()
	}
	if g.aborted {
		g.mu.Unlock()
		panic(&fault.Error{Kind: fault.Abandoned, Rank: -1, Step: -1, Op: "halo-gate",
			Detail: "halo gate abandoned by a failed exchange"})
	}
	if g.openAt > th.clock {
		if s := g.openAt - th.clock; s > g.maxStall {
			g.maxStall = s
		}
		th.clock = g.openAt
	}
	g.mu.Unlock()
}

// MaxStall returns the largest clock advance any thread paid at the
// gate since the last Reset — the exposed (un-hidden) communication
// time of the overlapped region. Call after the region joins.
func (g *HaloGate) MaxStall() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.maxStall
}
