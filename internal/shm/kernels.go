package shm

import (
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// IntegrateParallel advances the first nCore particles by one step
// using a statically scheduled parallel loop over particles ("the
// update of positions is parallelised over particles"). There are no
// inter-thread dependencies: each thread owns a disjoint chunk.
func IntegrateParallel(tm *Team, ps *particle.Store, nCore int, dt float64, box geom.Box, mode force.WrapMode) {
	tm.ParallelFor(nCore, func(th *Thread, lo, hi int) {
		force.IntegrateRange(ps, lo, hi, dt, box, mode, &th.TC)
		th.Compute(float64(hi-lo) * tm.Costs.PerParticle)
	})
}

// ZeroForcesParallel clears the force accumulators of the first n
// particles in parallel; one of the "simplest loops" the paper fuses
// into larger parallel regions.
func ZeroForcesParallel(tm *Team, ps *particle.Store, n int) {
	tm.ParallelFor(n, func(th *Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			ps.Frc[i] = geom.Vec{}
		}
		th.Compute(float64(hi-lo) * tm.Costs.PerParticle / 4)
	})
}
