package shm

import (
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// The kernel entry points below run every step, so their region bodies
// are reused structs stored on the Team rather than closures: filling
// a struct field and passing its pointer through the RegionBody
// interface performs no allocation.

type integrateBody struct {
	ps    *particle.Store
	nCore int
	dt    float64
	box   geom.Box
	mode  force.WrapMode
}

func (b *integrateBody) RunThread(th *Thread) {
	tm := th.team
	lo, hi := chunk(b.nCore, tm.T, th.ID)
	force.IntegrateRange(b.ps, lo, hi, b.dt, b.box, b.mode, &th.TC)
	th.Compute(float64(hi-lo) * tm.Costs.PerParticle)
}

// IntegrateParallel advances the first nCore particles by one step
// using a statically scheduled parallel loop over particles ("the
// update of positions is parallelised over particles"). There are no
// inter-thread dependencies: each thread owns a disjoint chunk.
func IntegrateParallel(tm *Team, ps *particle.Store, nCore int, dt float64, box geom.Box, mode force.WrapMode) {
	tm.kInteg = integrateBody{ps: ps, nCore: nCore, dt: dt, box: box, mode: mode}
	tm.RunRegion(&tm.kInteg)
}

type zeroForcesBody struct {
	ps *particle.Store
	n  int
}

func (b *zeroForcesBody) RunThread(th *Thread) {
	tm := th.team
	lo, hi := chunk(b.n, tm.T, th.ID)
	for k := 0; k < b.ps.D; k++ {
		frc := b.ps.Frc[k][lo:hi]
		for i := range frc {
			frc[i] = 0
		}
	}
	th.Compute(float64(hi-lo) * tm.Costs.PerParticle / 4)
}

// ZeroForcesParallel clears the force accumulators of the first n
// particles in parallel; one of the "simplest loops" the paper fuses
// into larger parallel regions.
func ZeroForcesParallel(tm *Team, ps *particle.Store, n int) {
	tm.kZero = zeroForcesBody{ps: ps, n: n}
	tm.RunRegion(&tm.kZero)
}
