package shm

import (
	"fmt"
	"sync/atomic"
)

// Schedule selects how a parallel loop's iterations are dealt to
// threads, mirroring OpenMP's schedule clause. The paper's code uses
// Static throughout ("load balance can be achieved in all cases using
// a static schedule"); Dynamic and Guided exist for the ablation
// benches and for irregular loops outside the paper's scope.
type Schedule int

const (
	// Static gives thread t the contiguous block [t*n/T, (t+1)*n/T).
	Static Schedule = iota
	// Dynamic deals fixed-size chunks from a shared counter; ideal
	// balance, one atomic fetch per chunk.
	Dynamic
	// Guided deals geometrically shrinking chunks (half the remaining
	// work divided by T, floored at the chunk size).
	Guided
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// ParallelForSched runs body over [0, n) under the given schedule and
// chunk size (ignored for Static; floored at 1 otherwise). The body
// receives contiguous [lo, hi) ranges exactly as with ParallelFor.
//
// Dynamic and Guided charge one modelled critical-entry per chunk
// handed out: the shared loop counter is this runtime's analogue of
// the OpenMP schedule bookkeeping.
func (tm *Team) ParallelForSched(n int, sched Schedule, chunkSize int, body func(th *Thread, lo, hi int)) {
	if sched == Static {
		tm.ParallelFor(n, body)
		return
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	var next int64
	tm.Region(func(th *Thread) {
		for {
			var lo, hi int
			switch sched {
			case Dynamic:
				lo = int(atomic.AddInt64(&next, int64(chunkSize))) - chunkSize
				hi = lo + chunkSize
			case Guided:
				// Claim half the remaining work divided by T, at
				// least chunkSize. A CAS loop keeps claims
				// consistent under contention.
				for {
					cur := atomic.LoadInt64(&next)
					remain := int64(n) - cur
					if remain <= 0 {
						lo = n
						break
					}
					take := remain / int64(2*tm.T)
					if take < int64(chunkSize) {
						take = int64(chunkSize)
					}
					if atomic.CompareAndSwapInt64(&next, cur, cur+take) {
						lo = int(cur)
						hi = int(cur + take)
						break
					}
				}
			default:
				panic(fmt.Sprintf("shm: unknown schedule %v", sched))
			}
			if lo >= n {
				return
			}
			if hi > n {
				hi = n
			}
			th.Compute(tm.Costs.Critical) // schedule bookkeeping
			body(th, lo, hi)
		}
	})
}
