// Package shm is a shared-memory (OpenMP-style) runtime: fork-join
// thread teams with statically scheduled parallel loops, intra-team
// barriers, per-particle locks, and the paper's five strategies for
// protecting concurrent updates of the global force array (atomic,
// selected atomic, and the critical / stripe / transpose array
// reductions).
//
// Threads are goroutines, so loops really run in parallel on the host;
// each thread additionally carries a virtual clock that the kernels
// advance using the cost constants of the virtual platform. A parallel
// region's modelled duration is fork + max over threads + join,
// mirroring the fork/join overhead the paper measures with the OpenMP
// microbenchmark suite.
//
// Like a real OpenMP runtime the team keeps its worker threads alive
// between regions: goroutines are spawned once (lazily, at the first
// parallel region) and parked on a condition variable between regions,
// so entering a region performs no allocation — a requirement of the
// zero-allocation steady-state step.
package shm

import (
	"fmt"
	"sync"

	"hybriddem/internal/fault"
	"hybriddem/internal/trace"
)

// Costs is the set of modelled per-event overheads a virtual platform
// charges inside shared-memory kernels. All values are seconds. The
// machine package derives these from a platform; the zero value is a
// free machine (tests).
type Costs struct {
	ForkJoin      float64 // per parallel region entered (whole-team cost)
	Barrier       float64 // per intra-team barrier (whole-team cost)
	Critical      float64 // per critical-section entry
	AtomicTaken   float64 // per protected force update
	ReductionWord float64 // per word combined by an array reduction
	PerLink       float64 // compute+memory per link visited
	PerContact    float64 // extra per in-range pair (sqrt + inverse)
	PerUpdate     float64 // per unprotected force-array accumulation
	PerParticle   float64 // per particle position update

	// HaloWork weights the charges of halo links relative to core
	// links. Halo link counts are a surface effect, so when a
	// scaled-down run models a larger system the drivers set this to
	// surfScale/workScale (< 1); zero means 1.
	HaloWork float64
}

// haloWork returns the halo-link weight, defaulting to 1.
func (c Costs) haloWork() float64 {
	if c.HaloWork == 0 {
		return 1
	}
	return c.HaloWork
}

// ScaleWork multiplies the per-work-item costs by work and the
// per-protected-update cost by atomic, leaving the per-event
// overheads (fork/join, barrier, critical) untouched. The drivers use
// it to model a larger system than the one actually run: bulk work
// counts grow linearly with the particle number, while the
// selected-atomic conflict counts live on thread-chunk boundaries and
// grow only with the surface power (full-atomic locking passes
// atomic == work since it locks every update).
func (c Costs) ScaleWork(work, atomic float64) Costs {
	c.AtomicTaken *= atomic
	c.ReductionWord *= work
	c.PerLink *= work
	c.PerContact *= work
	c.PerUpdate *= work
	c.PerParticle *= work
	return c
}

// Thread is one member of a team during a parallel region. It owns a
// virtual clock and private counters; nothing on it is synchronised,
// so kernels may use it freely on the hot path.
type Thread struct {
	ID    int
	clock float64
	TC    trace.Counters
	team  *Team
}

// Compute advances the thread's virtual clock by dt seconds.
func (th *Thread) Compute(dt float64) {
	if dt > 0 {
		th.clock += dt
	}
}

// Clock returns the thread's current virtual time.
func (th *Thread) Clock() float64 { return th.clock }

// Barrier synchronises all threads of the enclosing region and
// equalises their clocks to the max plus the platform's barrier cost.
func (th *Thread) Barrier() {
	th.team.bar.await(th)
	th.TC.TeamBarriers++
}

// RegionBody is the work of one parallel region. Hot kernels implement
// it on a reused struct (typically stored on the Team or an updater) so
// that entering a region does not allocate; cold paths use Region,
// which adapts a plain closure.
type RegionBody interface {
	RunThread(th *Thread)
}

// funcBody adapts a closure to RegionBody for the convenience Region
// entry point. Func values are pointer-shaped, so the interface
// conversion itself does not allocate (the closure might).
type funcBody func(th *Thread)

func (f funcBody) RunThread(th *Thread) { f(th) }

// Team is a reusable fork-join team of T threads bound to cost
// constants. A Team is not safe for concurrent regions; in hybrid runs
// each rank owns its own team, exactly as each MPI process owns its
// OpenMP thread pool.
//
// The T-1 worker goroutines are spawned at the first parallel region
// and then parked between regions. They hold a reference to the Team,
// so a long-lived program that discards a team should Close it;
// forgetting to Close leaks the parked goroutines but is otherwise
// harmless (tests routinely let teams die with the process).
type Team struct {
	T     int
	Costs Costs
	clock float64
	TC    trace.Counters // merged thread counters plus region counts
	bar   *clockBarrier
	mu    sync.Mutex // guards Critical

	// Persistent region machinery: reused Thread records, reused panic
	// slots, and the condition variables that park the workers.
	threads []*Thread
	panics  []any
	body    RegionBody
	runMu   sync.Mutex
	runC    *sync.Cond // workers wait here for the next region
	doneC   *sync.Cond // master waits here for region completion
	gen     int        // region generation, guarded by runMu
	running int        // workers still inside the current region
	started bool       // workers spawned
	closed  bool

	// pendingBody is the body dispatched by StartRegion, held until
	// FinishRegion runs the master's share and joins.
	pendingBody RegionBody

	// Reused bodies for the allocation-free kernel entry points
	// (kernels.go, fused.go).
	kZero   zeroForcesBody
	kInteg  integrateBody
	kZeroB  zeroBlocksBody
	kIntegB integrateBlocksBody
}

// NewTeam returns a team of t threads with the given cost constants.
func NewTeam(t int, costs Costs) *Team {
	if t < 1 {
		panic(fmt.Sprintf("shm: team size %d", t))
	}
	tm := &Team{T: t, Costs: costs, bar: newClockBarrier(t, costs.Barrier)}
	tm.runC = sync.NewCond(&tm.runMu)
	tm.doneC = sync.NewCond(&tm.runMu)
	tm.threads = make([]*Thread, t)
	tm.panics = make([]any, t)
	for i := range tm.threads {
		tm.threads[i] = &Thread{ID: i, team: tm}
	}
	return tm
}

// Clock returns the team's virtual time (advanced at each region join).
func (tm *Team) Clock() float64 { return tm.clock }

// SetCosts replaces the team's cost constants; drivers call it after
// every list rebuild because the per-link cost depends on the list's
// measured locality.
func (tm *Team) SetCosts(c Costs) {
	tm.Costs = c
	tm.bar.cost = c.Barrier
}

// SetClock forces the team clock; drivers reset it between warm-up and
// measured iterations.
func (tm *Team) SetClock(t float64) { tm.clock = t }

// Compute advances the team clock by dt seconds of serial (master
// thread) work outside any region.
func (tm *Team) Compute(dt float64) {
	if dt > 0 {
		tm.clock += dt
	}
}

// Close releases the team's parked worker goroutines. The team must
// not be inside a region. Running a region on a closed team panics;
// Close is idempotent.
func (tm *Team) Close() {
	tm.runMu.Lock()
	tm.closed = true
	tm.runC.Broadcast()
	tm.runMu.Unlock()
}

// Region runs body concurrently on T threads. Each thread starts at
// the team clock; at the join the team clock becomes the max thread
// clock plus the fork/join overhead, and thread counters merge into
// the team's. The closure form allocates (the closure itself); hot
// paths use RunRegion with a reused RegionBody.
func (tm *Team) Region(body func(th *Thread)) { tm.RunRegion(funcBody(body)) }

// RunRegion is the allocation-free core of Region: it dispatches body
// to the persistent workers (master runs thread 0 inline) and joins.
// If any thread panicked, the region panics on the master after all
// threads have stopped, and the team remains usable: the next region
// resets the barrier and the per-particle lock owners are re-zeroed by
// the updaters' Prepare.
func (tm *Team) RunRegion(body RegionBody) {
	tm.StartRegion(body)
	tm.FinishRegion(tm.clock)
}

// StartRegion dispatches body to the worker threads (1..T-1) but does
// NOT run the master's share: the caller returns immediately to do
// other work — draining a halo exchange while the workers run the
// core-link part of the force loop — and must call FinishRegion to run
// thread 0's share and join. Between the two calls the master must not
// enter another region.
func (tm *Team) StartRegion(body RegionBody) {
	start := tm.clock
	tm.bar.reset()
	for _, th := range tm.threads {
		th.clock = start
		th.TC = trace.Counters{}
	}
	for i := range tm.panics {
		tm.panics[i] = nil
	}
	if tm.T > 1 {
		tm.runMu.Lock()
		if tm.closed {
			tm.runMu.Unlock()
			panic("shm: parallel region on closed team")
		}
		if !tm.started {
			tm.started = true
			for t := 1; t < tm.T; t++ {
				go tm.worker(tm.threads[t])
			}
		}
		tm.body = body
		tm.running = tm.T - 1
		tm.gen++
		tm.runC.Broadcast()
		tm.runMu.Unlock()
	}
	tm.pendingBody = body
}

// FinishRegion completes a region begun with StartRegion: the master
// runs thread 0's share starting no earlier than masterAt on the
// virtual timeline (the communication clock after an overlapped
// drain — the master CPU was busy with the exchange until then), waits
// for the workers, merges clocks and counters, and re-raises any
// thread panic. RunRegion passes the region start, making the pair
// equivalent to the former inline form.
func (tm *Team) FinishRegion(masterAt float64) {
	body := tm.pendingBody
	if body == nil {
		panic("shm: FinishRegion without StartRegion")
	}
	tm.pendingBody = nil
	start := tm.threads[0].clock
	if masterAt > start {
		tm.threads[0].clock = masterAt
	}
	tm.runBody(body, tm.threads[0])
	if tm.T > 1 {
		tm.runMu.Lock()
		for tm.running > 0 {
			tm.doneC.Wait()
		}
		tm.body = nil
		tm.runMu.Unlock()
	}
	// Typed faults (watchdog timeouts, abandoned gates) travel
	// unchanged — and outrank untyped sibling casualties, whichever
	// thread raised them — so the mp layer can classify the root
	// cause; anything else is a bug and keeps the legacy wrapping.
	for _, e := range tm.panics {
		if fe := fault.From(e); fe != nil {
			panic(fe)
		}
	}
	for t, e := range tm.panics {
		if e != nil {
			panic(fmt.Sprintf("shm: thread %d panicked: %v", t, e))
		}
	}
	maxClock := start
	for _, th := range tm.threads {
		if th.clock > maxClock {
			maxClock = th.clock
		}
		tm.TC.Add(&th.TC)
	}
	tm.clock = maxClock + tm.Costs.ForkJoin
	tm.TC.ParallelRegions++
}

// runBody executes one thread's share of a region, converting a panic
// into a recorded panic plus a barrier abort so sibling threads cannot
// deadlock waiting for the dead thread.
func (tm *Team) runBody(body RegionBody, th *Thread) {
	defer func() {
		if e := recover(); e != nil {
			tm.panics[th.ID] = e
			tm.bar.abort()
		}
	}()
	body.RunThread(th)
}

// worker is the parked loop of threads 1..T-1.
func (tm *Team) worker(th *Thread) {
	seen := 0
	for {
		tm.runMu.Lock()
		for tm.gen == seen && !tm.closed {
			tm.runC.Wait()
		}
		if tm.gen == seen { // closed with no new region
			tm.runMu.Unlock()
			return
		}
		seen = tm.gen
		body := tm.body
		tm.runMu.Unlock()
		tm.runBody(body, th)
		tm.runMu.Lock()
		tm.running--
		if tm.running == 0 {
			tm.doneC.Broadcast()
		}
		tm.runMu.Unlock()
	}
}

// chunk returns the static-schedule bounds of thread t over n items:
// a simple block distribution of iterations amongst threads, the
// paper's schedule for every loop.
func chunk(n, T, t int) (lo, hi int) {
	lo = t * n / T
	hi = (t + 1) * n / T
	return lo, hi
}

// ParallelFor runs body(th, lo, hi) on each thread's static chunk of
// [0, n).
func (tm *Team) ParallelFor(n int, body func(th *Thread, lo, hi int)) {
	tm.Region(func(th *Thread) {
		lo, hi := chunk(n, tm.T, th.ID)
		body(th, lo, hi)
	})
}

// Critical runs body under the team's mutual-exclusion lock and
// charges the entry cost to the calling thread.
func (tm *Team) Critical(th *Thread, body func()) {
	tm.mu.Lock()
	body()
	tm.mu.Unlock()
	th.Compute(tm.Costs.Critical)
	th.TC.CriticalEnters++
}
