package shm

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// BlockStore pairs a block's particle store with its core count for
// the whole-rank fused kernels.
type BlockStore struct {
	PS    *particle.Store
	NCore int
}

// spinAdd accumulates sign*v into dst[p] under a per-particle
// spinlock.
func spinAdd(locks []int32, p int32, dst []geom.Vec, v geom.Vec, d int, sign float64) {
	for !atomic.CompareAndSwapInt32(&locks[p], 0, 1) {
		runtime.Gosched()
	}
	for k := 0; k < d; k++ {
		dst[p][k] += sign * v[k]
	}
	atomic.StoreInt32(&locks[p], 0)
}

// ZeroForcesAllBlocks clears the core force accumulators of every
// block inside a single parallel region — the paper's optimisation of
// "having a single parallel region enclosing the outer loop over
// blocks" for the simple loops.
func ZeroForcesAllBlocks(tm *Team, blocks []*BlockStore) {
	tm.Region(func(th *Thread) {
		total := 0
		for _, b := range blocks {
			lo, hi := chunk(b.NCore, tm.T, th.ID)
			for i := lo; i < hi; i++ {
				b.PS.Frc[i] = geom.Vec{}
			}
			total += hi - lo
		}
		th.Compute(float64(total) * tm.Costs.PerParticle / 4)
	})
}

// IntegrateAllBlocks advances every block's core particles in a single
// parallel region; chunks are disjoint so no synchronisation is needed
// between blocks.
func IntegrateAllBlocks(tm *Team, blocks []*BlockStore, cores []int, dt float64, box geom.Box, mode force.WrapMode) {
	tm.Region(func(th *Thread) {
		total := 0
		for i, b := range blocks {
			lo, hi := chunk(cores[i], tm.T, th.ID)
			force.IntegrateRange(b.PS, lo, hi, dt, box, mode, &th.TC)
			total += hi - lo
		}
		th.Compute(float64(total) * tm.Costs.PerParticle)
	})
}

// FusedPiece is one block's contribution to the fused force loop.
type FusedPiece struct {
	PS         *particle.Store
	Links      []cell.Link
	NCoreLinks int // links [0:NCoreLinks) are core-core (full energy)
	NCore      int // particle indices >= NCore are halo copies
}

// FusedUpdater implements the paper's Section 11 proposal: "a single
// parallel loop over all links in all blocks rather than one loop per
// block". Threads chunk the *concatenated* link list, so with many
// blocks per thread most blocks are private to one thread and the
// conflict (lock) fraction collapses, while fork/join overhead drops
// from one region per block to one region per iteration.
type FusedUpdater struct {
	Method Method

	pieces  []FusedPiece
	offsets []int // global link offset of each piece; len(pieces)+1
	total   int
	T       int
	tables  []*ConflictTable
	locks   [][]int32
}

// NewFusedUpdater returns a fused updater; only the per-update
// protection methods make sense here (array reductions would need a
// private copy of every block).
func NewFusedUpdater(m Method) *FusedUpdater {
	switch m {
	case Atomic, SelectedAtomic, Unprotected:
		return &FusedUpdater{Method: m}
	default:
		panic(fmt.Sprintf("shm: fused updater does not support method %v", m))
	}
}

// Prepare recomputes the global chunking and per-piece conflict tables
// for the current lists; call at every rebuild.
func (fu *FusedUpdater) Prepare(pieces []FusedPiece, T int) {
	fu.pieces = pieces
	fu.T = T
	fu.offsets = make([]int, len(pieces)+1)
	for i, p := range pieces {
		fu.offsets[i+1] = fu.offsets[i] + len(p.Links)
	}
	fu.total = fu.offsets[len(pieces)]
	fu.tables = make([]*ConflictTable, len(pieces))
	fu.locks = make([][]int32, len(pieces))
	for i, p := range pieces {
		ranges := make([][2]int, T)
		for t := 0; t < T; t++ {
			glo, ghi := chunk(fu.total, T, t)
			lo := clampRange(glo-fu.offsets[i], len(p.Links))
			hi := clampRange(ghi-fu.offsets[i], len(p.Links))
			if hi < lo {
				hi = lo
			}
			ranges[t] = [2]int{lo, hi}
		}
		if fu.Method == SelectedAtomic {
			fu.tables[i] = buildConflictRanges(p.Links, p.PS.Len(), p.NCore, ranges)
		}
		fu.locks[i] = make([]int32, p.PS.Len())
	}
}

// clampRange clips a piece-local index into [0, n].
func clampRange(v, n int) int {
	if v < 0 {
		return 0
	}
	if v > n {
		return n
	}
	return v
}

// buildConflictRanges marks particles updated by links in more than
// one of the given per-thread link ranges.
func buildConflictRanges(links []cell.Link, nParticles, nCore int, ranges [][2]int) *ConflictTable {
	ct := &ConflictTable{shared: make([]bool, nParticles)}
	owner := make([]int32, nParticles)
	for i := range owner {
		owner[i] = -1
	}
	mark := func(p int32, t int32) {
		if int(p) >= nCore {
			return
		}
		switch owner[p] {
		case -1:
			owner[p] = t
		case t:
		default:
			if !ct.shared[p] {
				ct.shared[p] = true
				ct.nShared++
			}
		}
	}
	for t, r := range ranges {
		for _, l := range links[r[0]:r[1]] {
			mark(l.I, int32(t))
			mark(l.J, int32(t))
		}
	}
	return ct
}

// NumShared returns the total number of protected particles across
// all pieces.
func (fu *FusedUpdater) NumShared() int {
	n := 0
	for _, t := range fu.tables {
		if t != nil {
			n += t.nShared
		}
	}
	return n
}

// Accumulate runs the fused force loop in one parallel region and
// returns the total potential energy (halo links at half weight).
func (fu *FusedUpdater) Accumulate(tm *Team, sp force.Spring, box geom.Box) float64 {
	if tm.T != fu.T {
		panic(fmt.Sprintf("shm: fused updater prepared for T=%d, run with T=%d", fu.T, tm.T))
	}
	epotPer := make([]float64, tm.T)
	costs := tm.Costs
	hook := PairForceHook
	tm.Region(func(th *Thread) {
		glo, ghi := chunk(fu.total, tm.T, th.ID)
		epot := 0.0
		var taken, avoided, nl, distSum, contacts, contactsHalo int64
		var effLinks float64
		hw := costs.haloWork()
		for pi, p := range fu.pieces {
			lo := glo - fu.offsets[pi]
			hi := ghi - fu.offsets[pi]
			if lo < 0 {
				lo = 0
			}
			if hi > len(p.Links) {
				hi = len(p.Links)
			}
			if hi <= lo {
				continue
			}
			d := p.PS.D
			pos, vel, frc, ids := p.PS.Pos, p.PS.Vel, p.PS.Frc, p.PS.ID
			locks := fu.locks[pi]
			var shared []bool
			if fu.Method == SelectedAtomic {
				shared = fu.tables[pi].shared
			}
			for li := lo; li < hi; li++ {
				l := p.Links[li]
				disp := box.Disp(pos[l.I], pos[l.J])
				rel := geom.Sub(vel[l.J], vel[l.I], d)
				fi, e, contact := sp.PairID(ids[l.I], ids[l.J], disp, rel, d)
				if hook != nil {
					fi = hook(fu.Method, ids[l.I], ids[l.J], fi)
				}
				if li < p.NCoreLinks {
					if contact {
						contacts++
					}
					epot += e
				} else {
					if contact {
						contactsHalo++
					}
					epot += 0.5 * e
				}
				fu.apply(th, locks, shared, frc, l.I, fi, +1, d, &taken, &avoided)
				if int(l.J) < p.NCore {
					fu.apply(th, locks, shared, frc, l.J, fi, -1, d, &taken, &avoided)
				}
				di := int64(l.I) - int64(l.J)
				if di < 0 {
					di = -di
				}
				distSum += di
			}
			nl += int64(hi - lo)
			coreN, haloN := splitLinks(lo, hi, p.NCoreLinks)
			effLinks += float64(coreN) + float64(haloN)*hw
		}
		th.TC.ForceEvals += nl
		th.TC.LinkVisits += nl
		th.TC.Contacts += contacts + contactsHalo
		th.TC.ForceUpdates += taken + avoided
		th.TC.AtomicsTaken += taken
		th.TC.AtomicsAvoided += avoided
		th.TC.LinkIndexDistSum += distSum
		th.TC.LinkIndexDistN += nl
		th.Compute(effLinks*costs.PerLink +
			(float64(contacts)+float64(contactsHalo)*hw)*costs.PerContact +
			float64(avoided)*costs.PerUpdate +
			float64(taken)*(costs.PerUpdate+costs.AtomicTaken))
		epotPer[th.ID] = epot
	})
	epot := 0.0
	for _, e := range epotPer {
		epot += e
	}
	return epot
}

func (fu *FusedUpdater) apply(th *Thread, locks []int32, shared []bool, frc []geom.Vec, p int32, v geom.Vec, sign float64, d int, taken, avoided *int64) {
	switch fu.Method {
	case Atomic:
		spinAdd(locks, p, frc, v, d, sign)
		*taken++
	case SelectedAtomic:
		if shared[p] {
			spinAdd(locks, p, frc, v, d, sign)
			*taken++
		} else {
			for k := 0; k < d; k++ {
				frc[p][k] += sign * v[k]
			}
			*avoided++
		}
	case Unprotected:
		for k := 0; k < d; k++ {
			frc[p][k] += sign * v[k]
		}
		*avoided++
	}
}
