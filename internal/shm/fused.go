package shm

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// BlockStore pairs a block's particle store with its core count for
// the whole-rank fused kernels.
type BlockStore struct {
	PS    *particle.Store
	NCore int
}

// spinAdd accumulates sign*v into column p of the component-major dst
// under a per-particle spinlock.
func spinAdd(locks []int32, p int32, dst *geom.Coords, v geom.Vec, d int, sign float64) {
	for !atomic.CompareAndSwapInt32(&locks[p], 0, 1) {
		runtime.Gosched()
	}
	for k := 0; k < d; k++ {
		dst[k][p] += sign * v[k]
	}
	atomic.StoreInt32(&locks[p], 0)
}

type zeroBlocksBody struct {
	blocks []*BlockStore
}

func (b *zeroBlocksBody) RunThread(th *Thread) {
	tm := th.team
	total := 0
	for _, blk := range b.blocks {
		lo, hi := chunk(blk.NCore, tm.T, th.ID)
		for k := 0; k < blk.PS.D; k++ {
			frc := blk.PS.Frc[k][lo:hi]
			for i := range frc {
				frc[i] = 0
			}
		}
		total += hi - lo
	}
	th.Compute(float64(total) * tm.Costs.PerParticle / 4)
}

// ZeroForcesAllBlocks clears the core force accumulators of every
// block inside a single parallel region — the paper's optimisation of
// "having a single parallel region enclosing the outer loop over
// blocks" for the simple loops.
func ZeroForcesAllBlocks(tm *Team, blocks []*BlockStore) {
	tm.kZeroB = zeroBlocksBody{blocks: blocks}
	tm.RunRegion(&tm.kZeroB)
}

type integrateBlocksBody struct {
	blocks []*BlockStore
	cores  []int
	dt     float64
	box    geom.Box
	mode   force.WrapMode
}

func (b *integrateBlocksBody) RunThread(th *Thread) {
	tm := th.team
	total := 0
	for i, blk := range b.blocks {
		lo, hi := chunk(b.cores[i], tm.T, th.ID)
		force.IntegrateRange(blk.PS, lo, hi, b.dt, b.box, b.mode, &th.TC)
		total += hi - lo
	}
	th.Compute(float64(total) * tm.Costs.PerParticle)
}

// IntegrateAllBlocks advances every block's core particles in a single
// parallel region; chunks are disjoint so no synchronisation is needed
// between blocks.
func IntegrateAllBlocks(tm *Team, blocks []*BlockStore, cores []int, dt float64, box geom.Box, mode force.WrapMode) {
	tm.kIntegB = integrateBlocksBody{blocks: blocks, cores: cores, dt: dt, box: box, mode: mode}
	tm.RunRegion(&tm.kIntegB)
}

// FusedPiece is one block's contribution to the fused force loop.
type FusedPiece struct {
	PS         *particle.Store
	Links      []cell.Link
	NCoreLinks int // links [0:NCoreLinks) are core-core (full energy)
	NCore      int // particle indices >= NCore are halo copies
}

// FusedUpdater implements the paper's Section 11 proposal: "a single
// parallel loop over all links in all blocks rather than one loop per
// block". Threads chunk the *concatenated* link list, so with many
// blocks per thread most blocks are private to one thread and the
// conflict (lock) fraction collapses, while fork/join overhead drops
// from one region per block to one region per iteration. All scratch
// (offsets, conflict tables, locks) is reused across Prepare calls.
type FusedUpdater struct {
	Method Method

	pieces  []FusedPiece
	offsets []int // global link offset of each piece; len(pieces)+1
	total   int
	T       int
	tables  []*ConflictTable
	locks   [][]int32
	ranges  [][2]int // per-thread range scratch, reused per piece

	epotPer []float64
	sp      force.Spring
	box     geom.Box
	hook    func(m Method, idI, idJ int32, fi geom.Vec) geom.Vec
	gate    *HaloGate
	body    fusedBody
}

// NewFusedUpdater returns a fused updater; only the per-update
// protection methods make sense here (array reductions would need a
// private copy of every block).
func NewFusedUpdater(m Method) *FusedUpdater {
	switch m {
	case Atomic, SelectedAtomic, Unprotected:
		return &FusedUpdater{Method: m}
	default:
		panic(fmt.Sprintf("shm: fused updater does not support method %v", m))
	}
}

// Prepare recomputes the global chunking and per-piece conflict tables
// for the current lists, reusing the updater's scratch; call at every
// rebuild. The pieces slice is retained (not copied), so callers that
// rebuild repeatedly should reuse one slice.
func (fu *FusedUpdater) Prepare(pieces []FusedPiece, T int) {
	fu.pieces = pieces
	fu.T = T
	if cap(fu.offsets) < len(pieces)+1 {
		fu.offsets = make([]int, len(pieces)+1)
	}
	fu.offsets = fu.offsets[:len(pieces)+1]
	fu.offsets[0] = 0
	for i, p := range pieces {
		fu.offsets[i+1] = fu.offsets[i] + len(p.Links)
	}
	fu.total = fu.offsets[len(pieces)]
	if cap(fu.tables) < len(pieces) {
		tables := make([]*ConflictTable, len(pieces))
		copy(tables, fu.tables)
		fu.tables = tables
	}
	fu.tables = fu.tables[:len(pieces)]
	if cap(fu.locks) < len(pieces) {
		locks := make([][]int32, len(pieces))
		copy(locks, fu.locks)
		fu.locks = locks
	}
	fu.locks = fu.locks[:len(pieces)]
	if cap(fu.ranges) < T {
		fu.ranges = make([][2]int, T)
	}
	ranges := fu.ranges[:T]
	for i, p := range pieces {
		for t := 0; t < T; t++ {
			glo, ghi := chunk(fu.total, T, t)
			lo := clampRange(glo-fu.offsets[i], len(p.Links))
			hi := clampRange(ghi-fu.offsets[i], len(p.Links))
			if hi < lo {
				hi = lo
			}
			ranges[t] = [2]int{lo, hi}
		}
		if fu.Method == SelectedAtomic {
			if fu.tables[i] == nil {
				fu.tables[i] = new(ConflictTable)
			}
			fu.tables[i].rebuildRanges(p.Links, p.PS.Len(), p.NCore, ranges)
		}
		n := p.PS.Len()
		if cap(fu.locks[i]) < n {
			fu.locks[i] = make([]int32, n)
		}
		fu.locks[i] = fu.locks[i][:n]
		// Re-zero the reused prefix so a lock abandoned by an aborted
		// region cannot deadlock the next run.
		for k := range fu.locks[i] {
			fu.locks[i][k] = 0
		}
	}
	if cap(fu.epotPer) < T {
		fu.epotPer = make([]float64, T)
	}
	fu.epotPer = fu.epotPer[:T]
}

// clampRange clips a piece-local index into [0, n].
func clampRange(v, n int) int {
	if v < 0 {
		return 0
	}
	if v > n {
		return n
	}
	return v
}

// NumShared returns the total number of protected particles across
// all pieces.
func (fu *FusedUpdater) NumShared() int {
	n := 0
	for _, t := range fu.tables {
		if t != nil {
			n += t.nShared
		}
	}
	return n
}

type fusedBody struct{ fu *FusedUpdater }

func (b *fusedBody) RunThread(th *Thread) { b.fu.runThread(th) }

// Accumulate runs the fused force loop in one parallel region and
// returns the total potential energy (halo links at half weight).
func (fu *FusedUpdater) Accumulate(tm *Team, sp force.Spring, box geom.Box) float64 {
	fu.setupRegion(tm, sp, box, nil)
	tm.RunRegion(&fu.body)
	return fu.sumEpot()
}

// AccumulateStart dispatches the fused force region to the worker
// threads and returns immediately so the rank goroutine can drain its
// split-phase halo exchange; threads block on gate at the core/halo
// boundary of their chunk. Complete with AccumulateFinish.
func (fu *FusedUpdater) AccumulateStart(tm *Team, sp force.Spring, box geom.Box, gate *HaloGate) {
	fu.setupRegion(tm, sp, box, gate)
	tm.StartRegion(&fu.body)
}

// AccumulateFinish runs the master's share of a region begun with
// AccumulateStart (starting no earlier than masterAt), joins the team,
// and returns the potential energy.
func (fu *FusedUpdater) AccumulateFinish(tm *Team, masterAt float64) float64 {
	tm.FinishRegion(masterAt)
	return fu.sumEpot()
}

func (fu *FusedUpdater) setupRegion(tm *Team, sp force.Spring, box geom.Box, gate *HaloGate) {
	if tm.T != fu.T {
		panic(fmt.Sprintf("shm: fused updater prepared for T=%d, run with T=%d", fu.T, tm.T))
	}
	fu.sp = sp
	fu.box = box
	fu.hook = PairForceHook
	fu.gate = gate
	fu.body.fu = fu
}

func (fu *FusedUpdater) sumEpot() float64 {
	epot := 0.0
	for _, e := range fu.epotPer {
		epot += e
	}
	return epot
}

// runThread is one thread's share of the fused force loop.
func (fu *FusedUpdater) runThread(th *Thread) {
	tm := th.team
	costs := tm.Costs
	glo, ghi := chunk(fu.total, tm.T, th.ID)
	epot := 0.0
	var taken, avoided, nl, distSum, contacts, contactsHalo int64
	var effLinks float64
	hw := costs.haloWork()
	// One gate wait suffices: the exchange delivers every block's halo
	// before the gate opens, so after the first wait the remaining
	// pieces' halo links are safe too.
	gate := fu.gate
	for pi := range fu.pieces {
		p := &fu.pieces[pi]
		lo := glo - fu.offsets[pi]
		hi := ghi - fu.offsets[pi]
		if lo < 0 {
			lo = 0
		}
		if hi > len(p.Links) {
			hi = len(p.Links)
		}
		if hi <= lo {
			continue
		}
		d := p.PS.D
		pos, vel, frc, ids := &p.PS.Pos, &p.PS.Vel, &p.PS.Frc, p.PS.ID
		locks := fu.locks[pi]
		var shared []bool
		if fu.Method == SelectedAtomic {
			shared = fu.tables[pi].shared
		}
		if gate != nil && lo >= p.NCoreLinks {
			gate.Wait(th)
			gate = nil
		}
		for li := lo; li < hi; li++ {
			if gate != nil && li == p.NCoreLinks {
				gate.Wait(th)
				gate = nil
			}
			l := p.Links[li]
			disp := fu.box.DispAt(pos, l.I, l.J)
			rel := geom.SubAt(vel, l.J, l.I, d)
			fi, e, contact := fu.sp.PairID(ids[l.I], ids[l.J], disp, rel, d)
			if fu.hook != nil {
				fi = fu.hook(fu.Method, ids[l.I], ids[l.J], fi)
			}
			if li < p.NCoreLinks {
				if contact {
					contacts++
				}
				epot += e
			} else {
				if contact {
					contactsHalo++
				}
				epot += 0.5 * e
			}
			fu.apply(th, locks, shared, frc, l.I, fi, +1, d, &taken, &avoided)
			if int(l.J) < p.NCore {
				fu.apply(th, locks, shared, frc, l.J, fi, -1, d, &taken, &avoided)
			}
			di := int64(l.I) - int64(l.J)
			if di < 0 {
				di = -di
			}
			distSum += di
		}
		nl += int64(hi - lo)
		coreN, haloN := splitLinks(lo, hi, p.NCoreLinks)
		effLinks += float64(coreN) + float64(haloN)*hw
	}
	th.TC.ForceEvals += nl
	th.TC.LinkVisits += nl
	th.TC.Contacts += contacts + contactsHalo
	th.TC.ForceUpdates += taken + avoided
	th.TC.AtomicsTaken += taken
	th.TC.AtomicsAvoided += avoided
	th.TC.LinkIndexDistSum += distSum
	th.TC.LinkIndexDistN += nl
	th.Compute(effLinks*costs.PerLink +
		(float64(contacts)+float64(contactsHalo)*hw)*costs.PerContact +
		float64(avoided)*costs.PerUpdate +
		float64(taken)*(costs.PerUpdate+costs.AtomicTaken))
	fu.epotPer[th.ID] = epot
}

func (fu *FusedUpdater) apply(th *Thread, locks []int32, shared []bool, frc *geom.Coords, p int32, v geom.Vec, sign float64, d int, taken, avoided *int64) {
	switch fu.Method {
	case Atomic:
		spinAdd(locks, p, frc, v, d, sign)
		*taken++
	case SelectedAtomic:
		if shared[p] {
			spinAdd(locks, p, frc, v, d, sign)
			*taken++
		} else {
			for k := 0; k < d; k++ {
				frc[k][p] += sign * v[k]
			}
			*avoided++
		}
	case Unprotected:
		for k := 0; k < d; k++ {
			frc[k][p] += sign * v[k]
		}
		*avoided++
	}
}
