package shm

import "sync"

// clockBarrier is a reusable generation barrier for exactly n threads
// that additionally equalises virtual clocks: every thread leaves with
// the maximum arriving clock plus the per-barrier cost.
type clockBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	cost    float64
	arrived int
	gen     int
	maxT    float64
	relT    float64
	aborted bool
}

func newClockBarrier(n int, cost float64) *clockBarrier {
	b := &clockBarrier{n: n, cost: cost}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n threads have arrived, then releases them
// with equalised clocks.
func (b *clockBarrier) await(th *Thread) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if th.clock > b.maxT {
		b.maxT = th.clock
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.relT = b.maxT + b.cost
		b.arrived = 0
		b.maxT = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for b.gen == gen && !b.aborted {
			b.cond.Wait()
		}
		if b.aborted {
			panic("shm: barrier abandoned by a panicked thread")
		}
	}
	th.clock = b.relT
}

// abort releases all waiters with a panic; called when a sibling
// thread dies so the region's join does not deadlock.
func (b *clockBarrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset clears any aborted state and half-completed arrival counts so
// the barrier is reusable by the next region. Called at region entry,
// when no thread can be waiting.
func (b *clockBarrier) reset() {
	b.mu.Lock()
	b.aborted = false
	b.arrived = 0
	b.maxT = 0
	b.relT = 0
	b.mu.Unlock()
}
