package shm

// Race-focused stress tests. These are correctness tests in a normal
// run, but their real purpose is `go test -race`: wide teams over
// small, dense systems so that nearly every particle sits on a
// thread-chunk boundary and the protection strategies are forced to
// synchronise concurrent force updates for real. Unprotected is
// deliberately absent — it is the paper's "what goes wrong" control
// and races by construction.

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// raceRef computes the serial force/energy reference for a system
// built by buildForceSystem with nCore = n.
func raceRef(ps *particle.Store, list *cell.List, box geom.Box, sp force.Spring, n int) (*particle.Store, float64) {
	ref := ps.Clone()
	ref.ZeroForces()
	e := sp.Accumulate(ref, list.CoreLinks(), n, box, 1, nil)
	e += sp.Accumulate(ref, list.HaloLinks(), n, box, 0.5, nil)
	return ref, e
}

func TestRaceAllMethodsUnderContention(t *testing.T) {
	// Small n with T=8 means each chunk is ~15 links wide: a large
	// fraction of particles is shared between threads, so every
	// protected-update path runs hot. The updater is reused across
	// repetitions, as the drivers reuse it across iterations.
	const n, halo, T, reps = 120, 20, 8, 6
	ps, list, box, sp := buildForceSystem(29, n, halo, 2)
	ref, eref := raceRef(ps, list, box, sp, n)

	for _, m := range Methods {
		tm := NewTeam(T, Costs{})
		u := NewUpdater(m)
		u.Prepare(list.Links, ps.Len(), n, T)
		for r := 0; r < reps; r++ {
			work := ps.Clone()
			work.ZeroForces()
			e := u.Accumulate(tm, sp, work, list.Links, list.NCore, n, box)
			if math.Abs(e-eref) > 1e-9*math.Abs(eref) {
				t.Fatalf("%v rep %d: energy %g vs serial %g", m, r, e, eref)
			}
			for i := 0; i < n; i++ {
				if geom.Norm2(geom.Sub(work.FrcAt(i), ref.FrcAt(i), 2), 2) > 1e-18 {
					t.Fatalf("%v rep %d: force mismatch at particle %d", m, r, i)
				}
			}
		}
	}
}

func TestRaceFusedUnderContention(t *testing.T) {
	const n, halo, T, reps = 90, 15, 8, 6
	psA, listA, box, sp := buildForceSystem(31, n, halo, 2)
	psB, listB, _, _ := buildForceSystem(32, n, halo, 2)
	refA, eA := raceRef(psA, listA, box, sp, n)
	refB, eB := raceRef(psB, listB, box, sp, n)
	eref := eA + eB

	for _, m := range []Method{Atomic, SelectedAtomic} {
		for r := 0; r < reps; r++ {
			workA, workB := psA.Clone(), psB.Clone()
			workA.ZeroForces()
			workB.ZeroForces()
			fu := NewFusedUpdater(m)
			fu.Prepare([]FusedPiece{
				{PS: workA, Links: listA.Links, NCoreLinks: listA.NCore, NCore: n},
				{PS: workB, Links: listB.Links, NCoreLinks: listB.NCore, NCore: n},
			}, T)
			tm := NewTeam(T, Costs{})
			e := fu.Accumulate(tm, sp, box)
			if math.Abs(e-eref) > 1e-9*math.Abs(eref) {
				t.Fatalf("fused %v rep %d: energy %g vs serial %g", m, r, e, eref)
			}
			for i := 0; i < n; i++ {
				if geom.Norm2(geom.Sub(workA.FrcAt(i), refA.FrcAt(i), 2), 2) > 1e-18 ||
					geom.Norm2(geom.Sub(workB.FrcAt(i), refB.FrcAt(i), 2), 2) > 1e-18 {
					t.Fatalf("fused %v rep %d: force mismatch at particle %d", m, r, i)
				}
			}
		}
	}
}

func TestRaceConcurrentTeamsAreIndependent(t *testing.T) {
	// Hybrid mode runs one team per MPI rank, all inside one process.
	// Run several teams truly concurrently, each over its own store,
	// to prove the strategies keep no hidden global state. One team
	// per method so the strategies also overlap with each other.
	const n, halo, T = 120, 20, 4
	var wg sync.WaitGroup
	for w, m := range Methods {
		wg.Add(1)
		go func(w int, m Method) {
			defer wg.Done()
			ps, list, box, sp := buildForceSystem(int64(40+w), n, halo, 2)
			ref, eref := raceRef(ps, list, box, sp, n)
			tm := NewTeam(T, Costs{})
			u := NewUpdater(m)
			u.Prepare(list.Links, ps.Len(), n, T)
			for r := 0; r < 4; r++ {
				work := ps.Clone()
				work.ZeroForces()
				e := u.Accumulate(tm, sp, work, list.Links, list.NCore, n, box)
				if math.Abs(e-eref) > 1e-9*math.Abs(eref) {
					t.Errorf("team %d (%v): energy %g vs %g", w, m, e, eref)
					return
				}
				for i := 0; i < n; i++ {
					if geom.Norm2(geom.Sub(work.FrcAt(i), ref.FrcAt(i), 2), 2) > 1e-18 {
						t.Errorf("team %d (%v): force mismatch at %d", w, m, i)
						return
					}
				}
			}
		}(w, m)
	}
	wg.Wait()
}

func TestRacePairForceHookConcurrent(t *testing.T) {
	// The fault-injection hook is read inside parallel regions; an
	// identity hook must neither race nor change the result.
	const n, halo, T = 120, 20, 8
	ps, list, box, sp := buildForceSystem(53, n, halo, 2)
	ref, eref := raceRef(ps, list, box, sp, n)

	PairForceHook = func(m Method, idI, idJ int32, fi geom.Vec) geom.Vec { return fi }
	defer func() { PairForceHook = nil }()

	for _, m := range Methods {
		tm := NewTeam(T, Costs{})
		u := NewUpdater(m)
		u.Prepare(list.Links, ps.Len(), n, T)
		work := ps.Clone()
		work.ZeroForces()
		e := u.Accumulate(tm, sp, work, list.Links, list.NCore, n, box)
		if math.Abs(e-eref) > 1e-9*math.Abs(eref) {
			t.Fatalf("%v with identity hook: energy %g vs %g", m, e, eref)
		}
		for i := 0; i < n; i++ {
			if geom.Norm2(geom.Sub(work.FrcAt(i), ref.FrcAt(i), 2), 2) > 1e-18 {
				t.Fatalf("%v with identity hook: force mismatch at %d", m, i)
			}
		}
	}
}

func TestRaceParallelForAndBarriers(t *testing.T) {
	// Pure runtime stress: tight ParallelFor/Barrier/Critical loops
	// with a shared accumulator guarded by Critical.
	const T, reps, n = 8, 50, 1000
	tm := NewTeam(T, Costs{})
	for r := 0; r < reps; r++ {
		total := 0
		tm.Region(func(th *Thread) {
			lo, hi := chunk(n, T, th.ID)
			local := 0
			for i := lo; i < hi; i++ {
				local += i
			}
			th.Barrier()
			tm.Critical(th, func() { total += local })
			th.Barrier()
		})
		if total != n*(n-1)/2 {
			t.Fatalf("rep %d: critical sum %d, want %d", r, total, n*(n-1)/2)
		}
	}
}

func TestRaceScheduleReuseAcrossIterations(t *testing.T) {
	// Re-binning between iterations (as core's drivers do) must be
	// safe against a reused updater and team: rebuild the link list
	// from moved positions each round and accumulate again.
	const n, halo, T, reps = 150, 0, 6, 5
	box := geom.NewBox(2, 1.0, geom.Periodic)
	ps := particle.New(2, n)
	rng := rand.New(rand.NewSource(61))
	particle.FillUniformVel(ps, n, box, 0.3, 0, rng)
	sp := force.Spring{Diameter: 0.09, K: 40, Damp: 0.5}
	const rc = 0.13

	tm := NewTeam(T, Costs{})
	u := NewUpdater(SelectedAtomic)
	for r := 0; r < reps; r++ {
		g := cell.NewGrid(2, geom.Vec{}, box.Len, rc, true)
		g.Bin(&ps.Pos, n, nil)
		list := g.BuildLinks(&ps.Pos, n, n, rc*rc, box, nil)
		ref, eref := raceRef(ps, list, box, sp, n)
		u.Prepare(list.Links, n, n, T)
		work := ps.Clone()
		work.ZeroForces()
		e := u.Accumulate(tm, sp, work, list.Links, list.NCore, n, box)
		if math.Abs(e-eref) > 1e-9*math.Abs(eref) {
			t.Fatalf("rep %d: energy %g vs %g", r, e, eref)
		}
		for i := 0; i < n; i++ {
			if geom.Norm2(geom.Sub(work.FrcAt(i), ref.FrcAt(i), 2), 2) > 1e-18 {
				t.Fatalf("rep %d: force mismatch at %d", r, i)
			}
		}
		// Drift the system so the next round bins differently.
		for i := 0; i < n; i++ {
			for k := 0; k < 2; k++ {
				ps.Pos[k][i] += 0.01 * ps.Vel[k][i]
			}
			p, _ := box.Wrap(ps.PosAt(i))
			ps.SetPos(i, p)
		}
	}
}
