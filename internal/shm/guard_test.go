package shm

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// twoParticleSystem builds the minimal deterministic system: two core
// particles within the cutoff joined by one link.
func twoParticleSystem() (*particle.Store, []cell.Link, geom.Box, force.Spring) {
	box := geom.NewBox(2, 1.0, geom.Reflecting)
	ps := particle.New(2, 2)
	ps.Append(geom.Vec{0.50, 0.50}, geom.Vec{}, 0)
	ps.Append(geom.Vec{0.55, 0.50}, geom.Vec{}, 1)
	sp := force.Spring{Diameter: 0.09, K: 40, Damp: 0.5}
	return ps, []cell.Link{{I: 0, J: 1}}, box, sp
}

func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		e := recover()
		if e == nil {
			t.Fatalf("no panic; want one containing %q", substr)
		}
		if s, ok := e.(string); !ok || !strings.Contains(s, substr) {
			t.Fatalf("panic %v; want one containing %q", e, substr)
		}
	}()
	fn()
}

// TestAccumulateTeamMismatchPanics is the regression test for the
// silent conflict-table mismatch: Prepare built the selected-atomic
// table for one team size, and Accumulate trusted whatever team it was
// handed, racing unprotected on particles the table thought private.
// It must refuse loudly instead.
func TestAccumulateTeamMismatchPanics(t *testing.T) {
	ps, links, box, sp := twoParticleSystem()
	u := NewUpdater(SelectedAtomic)
	u.Prepare(links, ps.Len(), 2, 2)
	tm := NewTeam(3, Costs{})
	defer tm.Close()
	expectPanic(t, "prepared for T=2", func() {
		u.Accumulate(tm, sp, ps, links, len(links), 2, box)
	})
}

// TestAccumulateLinkCountMismatchPanics: running over a different link
// list than Prepare saw redistributes links across threads and
// invalidates the conflict table; it must panic, not race.
func TestAccumulateLinkCountMismatchPanics(t *testing.T) {
	ps, links, box, sp := twoParticleSystem()
	u := NewUpdater(SelectedAtomic)
	u.Prepare(links, ps.Len(), 2, 1)
	tm := NewTeam(1, Costs{})
	defer tm.Close()
	grown := append(append([]cell.Link(nil), links...), cell.Link{I: 0, J: 1})
	expectPanic(t, "over 1 links", func() {
		u.Accumulate(tm, sp, ps, grown, len(grown), 2, box)
	})
}

// TestPrepareClearsStaleLocks is the regression test for the reused
// lock array: an abandoned region (sibling panic while a thread held a
// per-particle spinlock) leaves a non-zero lock word behind, and
// Prepare used to reslice the array without zeroing it, deadlocking
// the first lockAdd of the next run.
func TestPrepareClearsStaleLocks(t *testing.T) {
	ps, links, box, sp := twoParticleSystem()
	u := NewUpdater(Atomic)
	u.Prepare(links, ps.Len(), 2, 1)
	// Simulate the abandoned region: particle 0's spinlock left held.
	u.locks[links[0].I] = 1
	u.Prepare(links, ps.Len(), 2, 1)

	tm := NewTeam(1, Costs{})
	defer tm.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ps.ZeroForces()
		u.Accumulate(tm, sp, ps, links, len(links), 2, box)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Accumulate deadlocked on a stale per-particle lock Prepare failed to clear")
	}
}

// TestRegionAbortThenReuse: a panicked region aborts the barrier; the
// team must still be usable for subsequent regions (the driver's
// recovery path re-Prepares and runs on).
func TestRegionAbortThenReuse(t *testing.T) {
	tm := NewTeam(3, Costs{})
	defer tm.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		tm.Region(func(th *Thread) {
			if th.ID == 1 {
				panic("boom")
			}
			th.Barrier()
		})
	}()
	var mask int64
	tm.Region(func(th *Thread) {
		atomic.AddInt64(&mask, 1<<uint(th.ID))
	})
	if mask != 7 {
		t.Fatalf("post-abort region ran thread mask %b, want 111", mask)
	}
}

// TestClosedTeamPanics: running a region on a closed team must fail
// loudly rather than hang on released workers.
func TestClosedTeamPanics(t *testing.T) {
	tm := NewTeam(2, Costs{})
	tm.Region(func(th *Thread) {})
	tm.Close()
	expectPanic(t, "closed team", func() {
		tm.Region(func(th *Thread) {})
	})
}
