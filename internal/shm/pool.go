package shm

// TeamPool adapts a Team to the cell.Pool interface so the
// link-generation path can run thread-parallel without a dependency
// cycle. Work performed through the pool advances the team's virtual
// clock only by its fork/join overhead: the paper excludes link
// generation from its timings ("this represents a small overhead in a
// real simulation"), and notes its OpenMP version "scales rather
// poorly" anyway.
type TeamPool struct {
	Team *Team
}

// Threads implements cell.Pool.
func (p TeamPool) Threads() int { return p.Team.T }

// ParallelFor implements cell.Pool.
func (p TeamPool) ParallelFor(n int, body func(thread, lo, hi int)) {
	p.Team.ParallelFor(n, func(th *Thread, lo, hi int) {
		body(th.ID, lo, hi)
	})
}
