package shm

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// coverage checks a schedule visits every index exactly once.
func checkCoverage(t *testing.T, sched Schedule, n, T, chunk int) {
	t.Helper()
	tm := NewTeam(T, Costs{})
	visits := make([]int32, n)
	tm.ParallelForSched(n, sched, chunk, func(th *Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("%v n=%d T=%d chunk=%d: index %d visited %d times", sched, n, T, chunk, i, v)
		}
	}
}

func TestSchedulesCoverExactly(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, n := range []int{0, 1, 7, 100, 1001} {
			for _, T := range []int{1, 3, 8} {
				for _, chunk := range []int{1, 4, 64} {
					checkCoverage(t, sched, n, T, chunk)
				}
			}
		}
	}
}

func TestScheduleNames(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Error("schedule names")
	}
	if Schedule(9).String() == "" {
		t.Error("unknown schedule should format")
	}
}

// TestDynamicBalancesSkewedWork: with real per-item work proportional
// to the index (heavily skewed), the dynamic schedule must finish in
// less wall time than static, whose last thread carries ~7/16 of the
// work. Needs real parallel hardware, so it is skipped on small
// hosts, and compares medians of several runs to damp scheduler
// noise.
func TestDynamicBalancesSkewedWork(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs at least 4 CPUs for a meaningful balance test")
	}
	const n, T = 400, 4
	spin := func(i int) float64 {
		s := 1.0
		for k := 0; k < i*300; k++ {
			s += 1 / s
		}
		return s
	}
	var sink atomic.Int64
	timeFor := func(sched Schedule) float64 {
		tm := NewTeam(T, Costs{})
		best := 1e18
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			tm.ParallelForSched(n, sched, 4, func(th *Thread, lo, hi int) {
				acc := 0.0
				for i := lo; i < hi; i++ {
					acc += spin(i)
				}
				sink.Add(int64(acc))
			})
			if el := time.Since(start).Seconds(); el < best {
				best = el
			}
		}
		return best
	}
	static := timeFor(Static)
	dynamic := timeFor(Dynamic)
	if dynamic >= static {
		t.Errorf("dynamic (%.4fs) did not balance skewed work vs static (%.4fs)", dynamic, static)
	}
}

// TestGuidedChargesFewerChunksThanDynamic: guided's shrinking chunks
// must hand out fewer chunks (fewer bookkeeping charges) than
// dynamic with the same minimum chunk.
func TestGuidedChargesFewerChunksThanDynamic(t *testing.T) {
	const n, T = 10000, 4
	count := func(sched Schedule) int64 {
		tm := NewTeam(T, Costs{})
		var chunks int64
		tm.ParallelForSched(n, sched, 4, func(th *Thread, lo, hi int) {
			atomic.AddInt64(&chunks, 1)
		})
		return chunks
	}
	dyn := count(Dynamic)
	gui := count(Guided)
	if gui >= dyn {
		t.Errorf("guided used %d chunks, dynamic %d", gui, dyn)
	}
}
