package shm

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

func TestChunkCoversExactly(t *testing.T) {
	for n := 0; n < 50; n++ {
		for T := 1; T <= 8; T++ {
			covered := 0
			prevHi := 0
			for th := 0; th < T; th++ {
				lo, hi := chunk(n, T, th)
				if lo != prevHi {
					t.Fatalf("n=%d T=%d t=%d: gap/overlap lo=%d prev=%d", n, T, th, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d T=%d: covered %d", n, T, covered)
			}
		}
	}
}

func TestRegionRunsAllThreads(t *testing.T) {
	tm := NewTeam(4, Costs{})
	var mask int64
	tm.Region(func(th *Thread) {
		atomic.AddInt64(&mask, 1<<uint(th.ID))
	})
	if mask != 15 {
		t.Errorf("thread mask %b", mask)
	}
	if tm.TC.ParallelRegions != 1 {
		t.Errorf("regions %d", tm.TC.ParallelRegions)
	}
}

func TestRegionClockIsMaxPlusForkJoin(t *testing.T) {
	tm := NewTeam(3, Costs{ForkJoin: 0.5})
	tm.Region(func(th *Thread) {
		th.Compute(float64(th.ID)) // 0, 1, 2
	})
	if got := tm.Clock(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("team clock %g, want 2.5", got)
	}
}

func TestThreadBarrierEqualisesClocks(t *testing.T) {
	tm := NewTeam(4, Costs{Barrier: 0.1})
	clocks := make([]float64, 4)
	tm.Region(func(th *Thread) {
		th.Compute(float64(th.ID))
		th.Barrier()
		clocks[th.ID] = th.Clock()
	})
	for i, c := range clocks {
		if math.Abs(c-3.1) > 1e-12 {
			t.Errorf("thread %d clock %g, want 3.1", i, c)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	tm := NewTeam(3, Costs{})
	sum := make([]int64, 3)
	tm.Region(func(th *Thread) {
		for i := 0; i < 100; i++ {
			sum[th.ID]++
			th.Barrier()
		}
	})
	for i, s := range sum {
		if s != 100 {
			t.Errorf("thread %d completed %d rounds", i, s)
		}
	}
}

func TestParallelForStaticSchedule(t *testing.T) {
	tm := NewTeam(4, Costs{})
	out := make([]int, 103)
	tm.ParallelFor(103, func(th *Thread, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = th.ID + 1
		}
	})
	for i, v := range out {
		if v == 0 {
			t.Fatalf("index %d not visited", i)
		}
	}
	// Static block schedule: thread ids must be nondecreasing.
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("schedule not a block distribution at %d", i)
		}
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	tm := NewTeam(8, Costs{})
	counter := 0
	tm.Region(func(th *Thread) {
		for i := 0; i < 500; i++ {
			tm.Critical(th, func() { counter++ })
		}
	})
	if counter != 8*500 {
		t.Errorf("counter %d", counter)
	}
	if tm.TC.CriticalEnters != 8*500 {
		t.Errorf("critical count %d", tm.TC.CriticalEnters)
	}
}

func TestRegionPanicPropagates(t *testing.T) {
	tm := NewTeam(3, Costs{})
	defer func() {
		if recover() == nil {
			t.Error("thread panic did not propagate")
		}
	}()
	tm.Region(func(th *Thread) {
		if th.ID == 1 {
			panic("thread boom")
		}
		th.Barrier() // must not deadlock on the dead sibling
	})
}

func TestSetCostsUpdatesBarrier(t *testing.T) {
	tm := NewTeam(2, Costs{})
	tm.SetCosts(Costs{Barrier: 0.25})
	tm.Region(func(th *Thread) { th.Barrier() })
	if math.Abs(tm.Clock()-0.25) > 1e-12 {
		t.Errorf("clock %g after barrier with updated cost", tm.Clock())
	}
}

// buildForceSystem builds a random store with a valid link list
// including a synthetic halo region.
func buildForceSystem(seed int64, n, halo, d int) (*particle.Store, *cell.List, geom.Box, force.Spring) {
	box := geom.NewBox(d, 1.0, geom.Periodic)
	ps := particle.New(d, n+halo)
	rng := rand.New(rand.NewSource(seed))
	particle.FillUniformVel(ps, n+halo, box, 0.3, 0, rng)
	sp := force.Spring{Diameter: 0.09, K: 40, Damp: 0.5}
	rc := 0.13
	g := cell.NewGrid(d, geom.Vec{}, box.Len, rc, true)
	g.Bin(&ps.Pos, n+halo, nil)
	list := g.BuildLinks(&ps.Pos, n+halo, n, rc*rc, box, nil)
	return ps, list, box, sp
}

// serialReference computes forces and energy with the serial kernel.
func serialReference(ps *particle.Store, list *cell.List, box geom.Box, sp force.Spring) (*particle.Store, float64) {
	ref := ps.Clone()
	ref.ZeroForces()
	nCore := 0
	for i, id := range ref.ID {
		_ = id
		nCore = i + 1
	}
	nCore = len(ref.Pos) // adjusted by caller via list semantics
	e := sp.Accumulate(ref, list.CoreLinks(), nCore, box, 1, nil)
	e += sp.Accumulate(ref, list.HaloLinks(), nCore, box, 0.5, nil)
	return ref, e
}

func TestAllMethodsMatchSerial(t *testing.T) {
	const n, halo = 300, 40
	ps, list, box, sp := buildForceSystem(11, n, halo, 2)
	// Serial reference with halo-force suppression at nCore = n.
	ref := ps.Clone()
	ref.ZeroForces()
	eref := sp.Accumulate(ref, list.CoreLinks(), n, box, 1, nil)
	eref += sp.Accumulate(ref, list.HaloLinks(), n, box, 0.5, nil)

	for _, m := range Methods {
		for _, T := range []int{1, 2, 4, 7} {
			tm := NewTeam(T, Costs{})
			u := NewUpdater(m)
			u.Prepare(list.Links, ps.Len(), n, T)
			work := ps.Clone()
			work.ZeroForces()
			e := u.Accumulate(tm, sp, work, list.Links, list.NCore, n, box)
			if math.Abs(e-eref) > 1e-9*math.Abs(eref) {
				t.Errorf("%v T=%d: energy %g vs serial %g", m, T, e, eref)
			}
			for i := 0; i < n; i++ {
				d := geom.Sub(work.FrcAt(i), ref.FrcAt(i), 2)
				if geom.Norm2(d, 2) > 1e-18 {
					t.Errorf("%v T=%d: force mismatch at %d: %v vs %v", m, T, i, work.FrcAt(i), ref.FrcAt(i))
					break
				}
			}
			for i := n; i < n+halo; i++ {
				if work.FrcAt(i) != (geom.Vec{}) {
					t.Errorf("%v T=%d: halo particle %d received force", m, T, i)
					break
				}
			}
		}
	}
}

func TestConflictTableMarksOnlyShared(t *testing.T) {
	// Hand-built list: particles 0,1 used only by thread 0's links;
	// particle 2 by both threads (with T=2 and 4 links, threads get 2
	// links each).
	links := []cell.Link{{I: 0, J: 1}, {I: 0, J: 2}, {I: 2, J: 3}, {I: 3, J: 4}}
	ct := BuildConflictTable(links, 5, 5, 2)
	wantShared := map[int32]bool{2: true, 3: false}
	// Thread 0 has links {0-1, 0-2}; thread 1 has {2-3, 3-4}.
	// Particle 2 is touched by both; 3 only by thread 1.
	for p, want := range wantShared {
		if ct.shared[p] != want {
			t.Errorf("particle %d shared=%v, want %v", p, ct.shared[p], want)
		}
	}
	if ct.NumShared() != 1 {
		t.Errorf("NumShared = %d", ct.NumShared())
	}
}

func TestConflictTableIgnoresHalo(t *testing.T) {
	links := []cell.Link{{I: 0, J: 3}, {I: 1, J: 3}}
	ct := BuildConflictTable(links, 4, 3, 2) // particle 3 is halo
	if ct.shared[3] {
		t.Error("halo particle marked shared")
	}
	if ct.NumShared() != 0 {
		t.Errorf("NumShared = %d", ct.NumShared())
	}
}

func TestSelectedAtomicCountsConflicts(t *testing.T) {
	// The conflict fraction is a property of the (cell-ordered) link
	// list: only particles near thread-chunk boundaries need locks,
	// so the fraction falls as the block grows — the paper reports a
	// few percent for whole-node blocks rising towards 50% only for
	// tiny hybrid blocks.
	const n = 2000
	box := geom.NewBox(2, 1.0, geom.Periodic)
	ps := particle.New(2, n)
	rng := rand.New(rand.NewSource(13))
	particle.FillUniformVel(ps, n, box, 0.3, 0, rng)
	sp := force.Spring{Diameter: 0.04, K: 40}
	rc := 0.06
	g := cell.NewGrid(2, geom.Vec{}, box.Len, rc, true)
	g.Bin(&ps.Pos, n, nil)
	list := g.BuildLinks(&ps.Pos, n, n, rc*rc, box, nil)

	tm := NewTeam(4, Costs{})
	u := NewUpdater(SelectedAtomic)
	u.Prepare(list.Links, ps.Len(), n, 4)
	ps.ZeroForces()
	u.Accumulate(tm, sp, ps, list.Links, list.NCore, n, box)
	tc := &tm.TC
	if tc.AtomicsTaken == 0 {
		t.Error("expected some protected updates with 4 threads")
	}
	if tc.AtomicsAvoided == 0 {
		t.Error("expected some unprotected updates")
	}
	frac := tc.AtomicFraction()
	if frac <= 0 || frac >= 0.5 {
		t.Errorf("atomic fraction %g implausible for a large single block", frac)
	}
	// Full atomic must lock everything.
	tm2 := NewTeam(4, Costs{})
	u2 := NewUpdater(Atomic)
	u2.Prepare(list.Links, ps.Len(), n, 4)
	ps.ZeroForces()
	u2.Accumulate(tm2, sp, ps, list.Links, list.NCore, n, box)
	if tm2.TC.AtomicsAvoided != 0 {
		t.Error("atomic method skipped locks")
	}
}

func TestModeledAtomicCostCharged(t *testing.T) {
	const n = 200
	ps, list, box, sp := buildForceSystem(17, n, 0, 2)
	costs := Costs{AtomicTaken: 1e-6, PerLink: 0, PerUpdate: 0}
	tmA := NewTeam(2, costs)
	uA := NewUpdater(Atomic)
	uA.Prepare(list.Links, ps.Len(), n, 2)
	ps.ZeroForces()
	uA.Accumulate(tmA, sp, ps, list.Links, list.NCore, n, box)

	tmS := NewTeam(2, costs)
	uS := NewUpdater(SelectedAtomic)
	uS.Prepare(list.Links, ps.Len(), n, 2)
	ps.ZeroForces()
	uS.Accumulate(tmS, sp, ps, list.Links, list.NCore, n, box)

	if tmA.Clock() <= tmS.Clock() {
		t.Errorf("atomic modelled time %g not above selected-atomic %g", tmA.Clock(), tmS.Clock())
	}
}

func TestFusedMatchesSerial(t *testing.T) {
	// Two pieces (blocks) with separate stores.
	psA, listA, box, sp := buildForceSystem(19, 200, 30, 2)
	psB, listB, _, _ := buildForceSystem(23, 150, 20, 2)

	refA := psA.Clone()
	refA.ZeroForces()
	eref := sp.Accumulate(refA, listA.CoreLinks(), 200, box, 1, nil)
	eref += sp.Accumulate(refA, listA.HaloLinks(), 200, box, 0.5, nil)
	refB := psB.Clone()
	refB.ZeroForces()
	eref += sp.Accumulate(refB, listB.CoreLinks(), 150, box, 1, nil)
	eref += sp.Accumulate(refB, listB.HaloLinks(), 150, box, 0.5, nil)

	for _, m := range []Method{Atomic, SelectedAtomic} {
		for _, T := range []int{1, 3, 5} {
			fu := NewFusedUpdater(m)
			workA, workB := psA.Clone(), psB.Clone()
			workA.ZeroForces()
			workB.ZeroForces()
			fu.Prepare([]FusedPiece{
				{PS: workA, Links: listA.Links, NCoreLinks: listA.NCore, NCore: 200},
				{PS: workB, Links: listB.Links, NCoreLinks: listB.NCore, NCore: 150},
			}, T)
			tm := NewTeam(T, Costs{})
			e := fu.Accumulate(tm, sp, box)
			if math.Abs(e-eref) > 1e-9*math.Abs(eref) {
				t.Errorf("fused %v T=%d: energy %g vs %g", m, T, e, eref)
			}
			for i := 0; i < 200; i++ {
				if geom.Norm2(geom.Sub(workA.FrcAt(i), refA.FrcAt(i), 2), 2) > 1e-18 {
					t.Errorf("fused %v T=%d: piece A force mismatch at %d", m, T, i)
					break
				}
			}
			for i := 0; i < 150; i++ {
				if geom.Norm2(geom.Sub(workB.FrcAt(i), refB.FrcAt(i), 2), 2) > 1e-18 {
					t.Errorf("fused %v T=%d: piece B force mismatch at %d", m, T, i)
					break
				}
			}
		}
	}
}

func TestFusedReducesConflictsVsPerBlock(t *testing.T) {
	// With many pieces and few threads, global chunking gives most
	// pieces to a single thread: the fused conflict count must be far
	// below the per-block tables' total.
	const T = 4
	var pieces []FusedPiece
	perBlockShared := 0
	for s := int64(0); s < 12; s++ {
		ps, list, _, _ := buildForceSystem(100+s, 120, 15, 2)
		pieces = append(pieces, FusedPiece{PS: ps, Links: list.Links, NCoreLinks: list.NCore, NCore: 120})
		ct := BuildConflictTable(list.Links, ps.Len(), 120, T)
		perBlockShared += ct.NumShared()
	}
	fu := NewFusedUpdater(SelectedAtomic)
	fu.Prepare(pieces, T)
	if fu.NumShared()*4 > perBlockShared {
		t.Errorf("fused shared %d not well below per-block %d", fu.NumShared(), perBlockShared)
	}
}

func TestFusedRejectsReductionMethods(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("fused updater accepted stripe method")
		}
	}()
	NewFusedUpdater(Stripe)
}

func TestIntegrateParallelMatchesSerial(t *testing.T) {
	box := geom.NewBox(2, 1, geom.Periodic)
	a := particle.New(2, 100)
	rng := rand.New(rand.NewSource(31))
	particle.FillUniformVel(a, 100, box, 0.5, 0, rng)
	for i := range a.Frc {
		a.Frc[0][i], a.Frc[1][i] = float64(i%7), float64(i%3)
	}
	b := a.Clone()
	force.Integrate(a, 100, 0.01, box, force.WrapGlobal, nil)
	tm := NewTeam(3, Costs{})
	IntegrateParallel(tm, b, 100, 0.01, box, force.WrapGlobal)
	for i := 0; i < 100; i++ {
		if a.PosAt(i) != b.PosAt(i) || a.VelAt(i) != b.VelAt(i) {
			t.Fatalf("parallel integrate diverges at %d", i)
		}
	}
}

func TestZeroForcesAllBlocks(t *testing.T) {
	var blocks []*BlockStore
	for k := 0; k < 3; k++ {
		ps := particle.New(2, 10)
		for i := 0; i < 10; i++ {
			ps.Append(geom.Vec{}, geom.Vec{}, int32(i))
			ps.Frc[0][i], ps.Frc[1][i] = 1, 2
		}
		blocks = append(blocks, &BlockStore{PS: ps, NCore: 8})
	}
	tm := NewTeam(2, Costs{})
	ZeroForcesAllBlocks(tm, blocks)
	for k, b := range blocks {
		for i := 0; i < 8; i++ {
			if b.PS.FrcAt(i) != (geom.Vec{}) {
				t.Fatalf("block %d core force %d not cleared", k, i)
			}
		}
		// Halo force untouched (never read, never cleared).
		if b.PS.FrcAt(9) == (geom.Vec{}) {
			t.Fatalf("block %d halo force cleared unexpectedly", k)
		}
	}
}

func TestMethodString(t *testing.T) {
	if Atomic.String() != "atomic" || SelectedAtomic.String() != "selected-atomic" {
		t.Error("method names")
	}
	if Method(99).String() == "" {
		t.Error("unknown method should format")
	}
}

func TestCriticalReductionModelsSerialisation(t *testing.T) {
	// The modelled region time of the critical reduction must grow
	// about linearly with T (the paper's "extremely poor" strategy).
	const n = 300
	ps, list, box, sp := buildForceSystem(37, n, 0, 2)
	costs := Costs{ReductionWord: 1e-7}
	times := map[int]float64{}
	for _, T := range []int{1, 2, 4} {
		tm := NewTeam(T, costs)
		u := NewUpdater(CriticalReduction)
		u.Prepare(list.Links, ps.Len(), n, T)
		ps.ZeroForces()
		u.Accumulate(tm, sp, ps, list.Links, list.NCore, n, box)
		times[T] = tm.Clock()
	}
	if times[4] < 1.5*times[2] {
		t.Errorf("critical reduction not serialising: T=2 %g, T=4 %g", times[2], times[4])
	}
}
