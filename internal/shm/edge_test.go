package shm

import (
	"math"
	"testing"
)

func TestNewTeamPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("team of 0 accepted")
		}
	}()
	NewTeam(0, Costs{})
}

func TestNewUpdaterUnknownMethodPanicsOnUse(t *testing.T) {
	u := NewUpdater(Method(42))
	tm := NewTeam(1, Costs{})
	defer func() {
		if recover() == nil {
			t.Error("unknown method accepted")
		}
	}()
	ps, list, box, sp := buildForceSystem(1, 10, 0, 2)
	u.Prepare(list.Links, ps.Len(), 10, 1)
	u.Accumulate(tm, sp, ps, list.Links, list.NCore, 10, box)
}

func TestUpdaterConflictsGetter(t *testing.T) {
	ps, list, _, _ := buildForceSystem(3, 50, 0, 2)
	u := NewUpdater(SelectedAtomic)
	u.Prepare(list.Links, ps.Len(), 50, 2)
	if u.Conflicts() == nil {
		t.Error("selected-atomic should build a conflict table")
	}
	a := NewUpdater(Atomic)
	a.Prepare(list.Links, ps.Len(), 50, 2)
	if a.Conflicts() != nil {
		t.Error("atomic method should not build a conflict table")
	}
}

func TestUnprotectedSingleThreadMatches(t *testing.T) {
	// The ablation-only Unprotected method is exact with one thread.
	ps, list, box, sp := buildForceSystem(5, 200, 20, 2)
	ref := ps.Clone()
	ref.ZeroForces()
	e1 := sp.Accumulate(ref, list.CoreLinks(), 200, box, 1, nil)
	e1 += sp.Accumulate(ref, list.HaloLinks(), 200, box, 0.5, nil)

	tm := NewTeam(1, Costs{})
	u := NewUpdater(Unprotected)
	u.Prepare(list.Links, ps.Len(), 200, 1)
	work := ps.Clone()
	work.ZeroForces()
	e2 := u.Accumulate(tm, sp, work, list.Links, list.NCore, 200, box)
	if math.Abs(e1-e2) > 1e-12*math.Abs(e1) {
		t.Errorf("energies %g vs %g", e1, e2)
	}
	for i := 0; i < 200; i++ {
		if work.FrcAt(i) != ref.FrcAt(i) {
			t.Fatalf("force mismatch at %d", i)
		}
	}
	if tm.TC.AtomicsTaken != 0 {
		t.Error("unprotected method took locks")
	}
}

func TestCostsHaloWorkDefault(t *testing.T) {
	var c Costs
	if c.haloWork() != 1 {
		t.Error("zero HaloWork should mean 1")
	}
	c.HaloWork = 0.25
	if c.haloWork() != 0.25 {
		t.Error("HaloWork not honoured")
	}
}

func TestScaleWorkLeavesOverheadsAlone(t *testing.T) {
	c := Costs{
		ForkJoin: 1, Barrier: 2, Critical: 3,
		AtomicTaken: 4, ReductionWord: 5,
		PerLink: 6, PerContact: 7, PerUpdate: 8, PerParticle: 9,
	}
	s := c.ScaleWork(10, 100)
	if s.ForkJoin != 1 || s.Barrier != 2 || s.Critical != 3 {
		t.Error("per-event overheads were scaled")
	}
	if s.AtomicTaken != 400 {
		t.Errorf("atomic scale: %g", s.AtomicTaken)
	}
	if s.PerLink != 60 || s.PerContact != 70 || s.PerUpdate != 80 || s.PerParticle != 90 || s.ReductionWord != 50 {
		t.Errorf("work scale: %+v", s)
	}
}

func TestSplitLinks(t *testing.T) {
	cases := []struct {
		lo, hi, nc   int
		wantC, wantH int64
	}{
		{0, 10, 10, 10, 0},
		{0, 10, 5, 5, 5},
		{5, 10, 5, 0, 5},
		{0, 10, 0, 0, 10},
		{3, 7, 20, 4, 0},
		{8, 8, 5, 0, 0},
	}
	for _, tc := range cases {
		c, h := splitLinks(tc.lo, tc.hi, tc.nc)
		if c != tc.wantC || h != tc.wantH {
			t.Errorf("splitLinks(%d,%d,%d) = (%d,%d), want (%d,%d)",
				tc.lo, tc.hi, tc.nc, c, h, tc.wantC, tc.wantH)
		}
	}
}

func TestThreadComputeIgnoresNegative(t *testing.T) {
	tm := NewTeam(1, Costs{})
	tm.Region(func(th *Thread) {
		th.Compute(-1)
		if th.Clock() != 0 {
			t.Error("negative compute advanced thread clock")
		}
	})
	tm.Compute(-1)
	tm.SetClock(5)
	if tm.Clock() != 5 {
		t.Error("SetClock failed")
	}
}

func TestFusedPrepareMismatchPanics(t *testing.T) {
	ps, list, box, sp := buildForceSystem(7, 50, 0, 2)
	fu := NewFusedUpdater(SelectedAtomic)
	fu.Prepare([]FusedPiece{{PS: ps, Links: list.Links, NCoreLinks: list.NCore, NCore: 50}}, 2)
	tm := NewTeam(3, Costs{}) // wrong team size
	defer func() {
		if recover() == nil {
			t.Error("team-size mismatch accepted")
		}
	}()
	fu.Accumulate(tm, sp, box)
}
