package shm

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/particle"
)

// Method selects how concurrent updates of the global force array are
// protected, Section 7 of the paper.
type Method int

const (
	// Atomic protects every accumulation with a per-particle lock
	// ("making every update atomic").
	Atomic Method = iota
	// SelectedAtomic consults a conflict table built at link-list
	// time and locks only particles genuinely updated by more than
	// one thread — the paper's winning strategy on the Compaq.
	SelectedAtomic
	// CriticalReduction accumulates into thread-private arrays and
	// performs the global sum inside a critical region; the paper
	// reports "extremely poor results which are not shown".
	CriticalReduction
	// Stripe accumulates privately then reduces in T rounds, each
	// thread always updating a different stripe of the global array,
	// with a barrier between rounds.
	Stripe
	// Transpose accumulates into a [T][N] temporary and reduces in
	// parallel over the particle index.
	Transpose
	// Unprotected performs plain unlocked updates. It is INCORRECT
	// under real concurrency and exists only for the paper's Section
	// 9.2 ablation ("an incorrect code ... simulating a machine with
	// an extremely efficient atomic lock"); the ablation harness runs
	// it with T=1 real threads while modelling T virtual threads.
	Unprotected
)

var methodNames = map[Method]string{
	Atomic:            "atomic",
	SelectedAtomic:    "selected-atomic",
	CriticalReduction: "critical-reduction",
	Stripe:            "stripe",
	Transpose:         "transpose",
	Unprotected:       "unprotected",
}

func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists the strategies the paper benchmarks (Figure 4/5 show
// atomic, selected atomic, and the stripe/transpose pair; the critical
// reduction is measured but unplotted).
var Methods = []Method{Atomic, SelectedAtomic, CriticalReduction, Stripe, Transpose}

// PairForceHook, when non-nil, intercepts every pair force computed by
// the shared-memory updaters (per-block and fused) before it is
// accumulated: it receives the update method and the two particle IDs
// and returns the force to apply to endpoint I. It is a fault-injection
// point for the conformance harness in internal/verify — a test can
// corrupt the output of exactly one update strategy and assert the
// differential runner localises the divergence — and must stay nil in
// production. Set and clear it only while no simulation is running.
var PairForceHook func(m Method, idI, idJ int32, fi geom.Vec) geom.Vec

// ConflictTable records which particles are updated by links belonging
// to more than one thread under the static link distribution. It stays
// valid for as long as the link list does: "the table is valid for
// many force calculations until the linked list is next recalculated".
// Its storage (including the owner scratch used during construction)
// is reused across rebuilds.
type ConflictTable struct {
	shared  []bool
	owner   []int32 // construction scratch: first thread to touch each particle
	nShared int
}

// resize prepares the table's storage for nParticles, clearing it.
func (ct *ConflictTable) resize(nParticles int) {
	if cap(ct.shared) < nParticles {
		ct.shared = make([]bool, nParticles)
		ct.owner = make([]int32, nParticles)
	}
	ct.shared = ct.shared[:nParticles]
	ct.owner = ct.owner[:nParticles]
	for i := range ct.shared {
		ct.shared[i] = false
	}
	for i := range ct.owner {
		ct.owner[i] = -1
	}
	ct.nShared = 0
}

// mark records that thread t updates particle p; the second distinct
// thread makes p shared. Halo copies (p >= nCore) are never updated,
// hence never shared.
func (ct *ConflictTable) mark(p, t int32, nCore int) {
	if int(p) >= nCore {
		return
	}
	switch ct.owner[p] {
	case -1:
		ct.owner[p] = t
	case t:
	default:
		if !ct.shared[p] {
			ct.shared[p] = true
			ct.nShared++
		}
	}
}

// rebuild scans links as distributed over T threads (the static chunk
// schedule) and marks particles with links belonging to more than one
// thread, reusing the table's storage.
func (ct *ConflictTable) rebuild(links []cell.Link, nParticles, nCore, T int) {
	ct.resize(nParticles)
	n := len(links)
	for t := 0; t < T; t++ {
		lo, hi := chunk(n, T, t)
		for _, l := range links[lo:hi] {
			ct.mark(l.I, int32(t), nCore)
			ct.mark(l.J, int32(t), nCore)
		}
	}
}

// rebuildRanges is rebuild for an explicit per-thread link range list
// (the fused updater's global chunking clipped to one piece).
func (ct *ConflictTable) rebuildRanges(links []cell.Link, nParticles, nCore int, ranges [][2]int) {
	ct.resize(nParticles)
	for t, r := range ranges {
		for _, l := range links[r[0]:r[1]] {
			ct.mark(l.I, int32(t), nCore)
			ct.mark(l.J, int32(t), nCore)
		}
	}
}

// BuildConflictTable scans links as distributed over T threads and
// marks particles with links belonging to more than one thread.
func BuildConflictTable(links []cell.Link, nParticles, nCore, T int) *ConflictTable {
	ct := new(ConflictTable)
	ct.rebuild(links, nParticles, nCore, T)
	return ct
}

// NumShared returns the number of particles needing protection.
func (ct *ConflictTable) NumShared() int { return ct.nShared }

// Updater executes the thread-parallel force accumulation for one
// block with a chosen protection method. It owns the per-particle
// locks and the reduction scratch, sized lazily to the block.
type Updater struct {
	Method Method
	locks  []int32     // per-particle spinlocks (atomic methods)
	priv   [][]float64 // T thread-private force arrays, layout [i*D+k]
	ct     *ConflictTable

	// Prepared geometry, recorded so Accumulate can detect a
	// mismatched team or link list instead of racing silently.
	preparedT     int
	preparedLinks int

	// Reused per-call scratch and region bodies (no closures on the
	// hot path).
	epotPer []float64
	args    accArgs
	scalarB scalarBody
	reduceB reduceBody
}

// NewUpdater returns an updater for the given method.
func NewUpdater(m Method) *Updater { return &Updater{Method: m} }

// Prepare must be called whenever the link list changes: it (re)builds
// the conflict table for the selected-atomic method and resizes the
// lock array. T is the team size the force loop will use; Accumulate
// panics if run with a different team size or link count.
func (u *Updater) Prepare(links []cell.Link, nParticles, nCore, T int) {
	if cap(u.locks) < nParticles {
		u.locks = make([]int32, nParticles)
	}
	u.locks = u.locks[:nParticles]
	// Zero the reused prefix unconditionally: if a prior region was
	// abandoned (clockBarrier.abort after a sibling panic) while some
	// thread held a per-particle spinlock, the stale lock word would
	// deadlock the first lockAdd of the next run.
	for i := range u.locks {
		u.locks[i] = 0
	}
	if u.Method == SelectedAtomic {
		if u.ct == nil {
			u.ct = new(ConflictTable)
		}
		u.ct.rebuild(links, nParticles, nCore, T)
	}
	u.preparedT = T
	u.preparedLinks = len(links)
	if cap(u.epotPer) < T {
		u.epotPer = make([]float64, T)
	}
	u.epotPer = u.epotPer[:T]
}

// Conflicts returns the conflict table built by the last Prepare, or
// nil for methods that do not use one.
func (u *Updater) Conflicts() *ConflictTable { return u.ct }

// lockAdd accumulates v into column p of the component-major dst
// under the per-particle spinlock.
func (u *Updater) lockAdd(p int32, dst *geom.Coords, v geom.Vec, d int, sign float64) {
	for !atomic.CompareAndSwapInt32(&u.locks[p], 0, 1) {
		runtime.Gosched()
	}
	for k := 0; k < d; k++ {
		dst[k][p] += sign * v[k]
	}
	atomic.StoreInt32(&u.locks[p], 0)
}

// ensurePriv sizes and zeroes the T private arrays of d*n floats each
// and returns them. The zeroing traffic is charged to the threads by
// the reduction kernels; "all array reduction techniques place a heavy
// demand on the memory system".
func (u *Updater) ensurePriv(T, words int) [][]float64 {
	if len(u.priv) < T {
		u.priv = append(u.priv, make([][]float64, T-len(u.priv))...)
	}
	for t := 0; t < T; t++ {
		if cap(u.priv[t]) < words {
			u.priv[t] = make([]float64, words)
		} else {
			u.priv[t] = u.priv[t][:words]
			for i := range u.priv[t] {
				u.priv[t][i] = 0
			}
		}
	}
	return u.priv[:T]
}

// accArgs carries one Accumulate call's inputs to the region bodies.
type accArgs struct {
	sp         force.Spring
	ps         *particle.Store
	links      []cell.Link
	nCoreLinks int
	nCore      int
	box        geom.Box
	hook       func(m Method, idI, idJ int32, fi geom.Vec) geom.Vec
	priv       [][]float64
	words      int

	// gate, when non-nil, blocks each thread at the core/halo link
	// boundary of its chunk until the rank's split-phase halo exchange
	// has landed (overlapped force path). Iteration order is unchanged:
	// the gate is a pause inside the same single loop, so the conflict
	// table and the accumulation order stay valid.
	gate *HaloGate
}

// scalarBody runs the per-update protection methods (atomic,
// selected-atomic, unprotected) for one thread.
type scalarBody struct{ u *Updater }

func (b *scalarBody) RunThread(th *Thread) { b.u.scalarThread(th) }

// reduceBody runs the array-reduction methods for one thread.
type reduceBody struct{ u *Updater }

func (b *reduceBody) RunThread(th *Thread) { b.u.reduceThread(th) }

// Accumulate runs the parallel force loop over the block's single
// link list (core links first, then halo links whose energy counts
// half), adding pair forces into ps.Frc and returning the potential
// energy. Forces land on endpoint I always and on J when J < nCore,
// identically to the serial kernel in internal/force.
//
// The whole list is processed in ONE statically scheduled loop — the
// same distribution Prepare built the conflict table for. Splitting
// core and halo links into separate loops would redistribute links
// over threads and invalidate the table, which is why Accumulate
// panics when the team size or link count differs from Prepare's.
func (u *Updater) Accumulate(tm *Team, sp force.Spring, ps *particle.Store, links []cell.Link, nCoreLinks, nCore int, box geom.Box) float64 {
	tm.RunRegion(u.setupRegion(tm, sp, ps, links, nCoreLinks, nCore, box, nil))
	return u.sumEpot()
}

// AccumulateStart dispatches the force region to the worker threads
// and returns without running the master's share: the rank goroutine
// is free to drain its split-phase halo exchange while threads 1..T-1
// chew through the core links. Threads reaching the core/halo boundary
// block on gate until the caller opens it; the caller then completes
// the region with AccumulateFinish.
func (u *Updater) AccumulateStart(tm *Team, sp force.Spring, ps *particle.Store, links []cell.Link, nCoreLinks, nCore int, box geom.Box, gate *HaloGate) {
	tm.StartRegion(u.setupRegion(tm, sp, ps, links, nCoreLinks, nCore, box, gate))
}

// AccumulateFinish runs the master's share of a region begun with
// AccumulateStart — starting no earlier than masterAt on the virtual
// timeline — joins the team, and returns the potential energy.
func (u *Updater) AccumulateFinish(tm *Team, masterAt float64) float64 {
	tm.FinishRegion(masterAt)
	return u.sumEpot()
}

// setupRegion validates the call against Prepare, stores the region
// inputs, and returns the reused body for the updater's method.
func (u *Updater) setupRegion(tm *Team, sp force.Spring, ps *particle.Store, links []cell.Link, nCoreLinks, nCore int, box geom.Box, gate *HaloGate) RegionBody {
	if tm.T != u.preparedT || len(links) != u.preparedLinks {
		panic(fmt.Sprintf("shm: updater prepared for T=%d over %d links, run with T=%d over %d links",
			u.preparedT, u.preparedLinks, tm.T, len(links)))
	}
	u.args = accArgs{
		sp:         sp,
		ps:         ps,
		links:      links,
		nCoreLinks: nCoreLinks,
		nCore:      nCore,
		box:        box,
		hook:       PairForceHook,
		gate:       gate,
	}

	switch u.Method {
	case Atomic, SelectedAtomic, Unprotected:
		u.scalarB.u = u
		return &u.scalarB

	case CriticalReduction, Stripe, Transpose:
		u.args.words = ps.Len() * ps.D
		u.args.priv = u.ensurePriv(tm.T, u.args.words)
		u.reduceB.u = u
		return &u.reduceB

	default:
		panic(fmt.Sprintf("shm: unknown update method %v", u.Method))
	}
}

// sumEpot folds the per-thread potential-energy partials.
func (u *Updater) sumEpot() float64 {
	epot := 0.0
	for _, e := range u.epotPer {
		epot += e
	}
	return epot
}

// scalarThread is one thread's share of the per-update protection
// methods.
func (u *Updater) scalarThread(th *Thread) {
	a := &u.args
	tm := th.team
	costs := tm.Costs
	d := a.ps.D
	n := len(a.links)
	lo, hi := chunk(n, tm.T, th.ID)
	epot := 0.0
	var taken, avoided, distSum, contacts, contactsHalo int64
	pos, vel, frc, ids := &a.ps.Pos, &a.ps.Vel, &a.ps.Frc, a.ps.ID
	gate := a.gate
	if gate != nil && lo >= a.nCoreLinks {
		gate.Wait(th)
		gate = nil
	}
	for li := lo; li < hi; li++ {
		if gate != nil && li == a.nCoreLinks {
			gate.Wait(th)
			gate = nil
		}
		l := a.links[li]
		disp := a.box.DispAt(pos, l.I, l.J)
		rel := geom.SubAt(vel, l.J, l.I, d)
		fi, e, contact := a.sp.PairID(ids[l.I], ids[l.J], disp, rel, d)
		if a.hook != nil {
			fi = a.hook(u.Method, ids[l.I], ids[l.J], fi)
		}
		if li < a.nCoreLinks {
			if contact {
				contacts++
			}
			epot += e
		} else {
			if contact {
				contactsHalo++
			}
			epot += 0.5 * e
		}
		u.applyProtected(th, frc, l.I, fi, +1, d, &taken, &avoided)
		if int(l.J) < a.nCore {
			u.applyProtected(th, frc, l.J, fi, -1, d, &taken, &avoided)
		}
		di := int64(l.I) - int64(l.J)
		if di < 0 {
			di = -di
		}
		distSum += di
	}
	nl := int64(hi - lo)
	coreN, haloN := splitLinks(lo, hi, a.nCoreLinks)
	hw := costs.haloWork()
	th.TC.ForceEvals += nl
	th.TC.LinkVisits += nl
	th.TC.Contacts += contacts + contactsHalo
	th.TC.ForceUpdates += taken + avoided
	th.TC.AtomicsTaken += taken
	th.TC.AtomicsAvoided += avoided
	th.TC.LinkIndexDistSum += distSum
	th.TC.LinkIndexDistN += nl
	th.Compute((float64(coreN)+float64(haloN)*hw)*costs.PerLink +
		(float64(contacts)+float64(contactsHalo)*hw)*costs.PerContact +
		float64(avoided)*costs.PerUpdate +
		float64(taken)*(costs.PerUpdate+costs.AtomicTaken))
	u.epotPer[th.ID] = epot
}

// reduceThread is one thread's share of the array-reduction methods:
// private accumulation followed by the method's merge.
func (u *Updater) reduceThread(th *Thread) {
	a := &u.args
	tm := th.team
	costs := tm.Costs
	d := a.ps.D
	n := len(a.links)
	lo, hi := chunk(n, tm.T, th.ID)
	epot := 0.0
	var distSum, contacts, contactsHalo int64
	pos, vel, ids := &a.ps.Pos, &a.ps.Vel, a.ps.ID
	mine := a.priv[th.ID]
	gate := a.gate
	if gate != nil && lo >= a.nCoreLinks {
		gate.Wait(th)
		gate = nil
	}
	for li := lo; li < hi; li++ {
		if gate != nil && li == a.nCoreLinks {
			gate.Wait(th)
			gate = nil
		}
		l := a.links[li]
		disp := a.box.DispAt(pos, l.I, l.J)
		rel := geom.SubAt(vel, l.J, l.I, d)
		fi, e, contact := a.sp.PairID(ids[l.I], ids[l.J], disp, rel, d)
		if a.hook != nil {
			fi = a.hook(u.Method, ids[l.I], ids[l.J], fi)
		}
		if li < a.nCoreLinks {
			if contact {
				contacts++
			}
			epot += e
		} else {
			if contact {
				contactsHalo++
			}
			epot += 0.5 * e
		}
		for k := 0; k < d; k++ {
			mine[int(l.I)*d+k] += fi[k]
		}
		if int(l.J) < a.nCore {
			for k := 0; k < d; k++ {
				mine[int(l.J)*d+k] -= fi[k]
			}
		}
		di := int64(l.I) - int64(l.J)
		if di < 0 {
			di = -di
		}
		distSum += di
	}
	nl := int64(hi - lo)
	coreN, haloN := splitLinks(lo, hi, a.nCoreLinks)
	hw := costs.haloWork()
	effLinks := float64(coreN) + float64(haloN)*hw
	th.TC.ForceEvals += nl
	th.TC.LinkVisits += nl
	th.TC.Contacts += contacts + contactsHalo
	th.TC.ForceUpdates += 2 * nl
	th.TC.LinkIndexDistSum += distSum
	th.TC.LinkIndexDistN += nl
	// Private accumulation plus the zeroing traffic of the scratch
	// array.
	th.Compute(effLinks*(costs.PerLink+2*costs.PerUpdate) +
		(float64(contacts)+float64(contactsHalo)*hw)*costs.PerContact +
		float64(a.words)*costs.ReductionWord)
	u.epotPer[th.ID] = epot

	u.reduce(th, tm, a.ps, a.words, d, a.priv)
}

// splitLinks returns how many of the links in [lo, hi) fall before
// the core/halo boundary at nCoreLinks.
func splitLinks(lo, hi, nCoreLinks int) (core, halo int64) {
	c := nCoreLinks - lo
	if c < 0 {
		c = 0
	}
	if c > hi-lo {
		c = hi - lo
	}
	return int64(c), int64(hi - lo - c)
}

// applyProtected performs one force accumulation under the updater's
// protection policy.
func (u *Updater) applyProtected(th *Thread, frc *geom.Coords, p int32, v geom.Vec, sign float64, d int, taken, avoided *int64) {
	switch u.Method {
	case Atomic:
		u.lockAdd(p, frc, v, d, sign)
		*taken++
	case SelectedAtomic:
		if u.ct.shared[p] {
			u.lockAdd(p, frc, v, d, sign)
			*taken++
		} else {
			for k := 0; k < d; k++ {
				frc[k][p] += sign * v[k]
			}
			*avoided++
		}
	case Unprotected:
		for k := 0; k < d; k++ {
			frc[k][p] += sign * v[k]
		}
		*avoided++
	}
}

// reduce merges the thread-private arrays into ps.Frc according to the
// method. Called from within the region by every thread; contains the
// barriers each strategy needs.
// The private arrays keep their particle-major [i*d+k] word layout:
// the stripe and transpose schedules assign words to threads and
// rounds by word index, so changing the layout would reorder each
// element's per-thread contributions and move bits. Only the final
// destination changes: word i lands in component i%d of particle i/d.
func (u *Updater) reduce(th *Thread, tm *Team, ps *particle.Store, words, d int, priv [][]float64) {
	frc := &ps.Frc
	switch u.Method {
	case CriticalReduction:
		// Threads serialise on the critical section; the virtual
		// clock models the serialisation by staggering completion in
		// thread order, so the modelled region time grows as T times
		// the reduction work — the paper's "extremely poor" result.
		// The critical section is entered inline (not via
		// tm.Critical) so the hot path needs no closure.
		th.Barrier() // all private arrays complete
		tm.mu.Lock()
		mine := priv[th.ID]
		for i := 0; i < words; i++ {
			frc[i%d][i/d] += mine[i]
		}
		tm.mu.Unlock()
		th.Compute(tm.Costs.Critical)
		th.TC.CriticalEnters++
		th.TC.ReductionWords += int64(words)
		th.Compute(float64(th.ID+1) * float64(words) * tm.Costs.ReductionWord)
		th.Barrier()

	case Stripe:
		// T rounds; in round r thread t owns stripe (t+r) mod T, so
		// no two threads ever touch the same portion of the global
		// array; a barrier separates rounds.
		th.Barrier()
		T := tm.T
		mine := priv[th.ID]
		for r := 0; r < T; r++ {
			s := (th.ID + r) % T
			lo, hi := chunk(words, T, s)
			for i := lo; i < hi; i++ {
				frc[i%d][i/d] += mine[i]
			}
			th.TC.ReductionWords += int64(hi - lo)
			th.Compute(float64(hi-lo) * tm.Costs.ReductionWord)
			th.Barrier()
		}

	case Transpose:
		// Parallel reduction over the main particle index: thread t
		// sums column chunk [lo,hi) across all T private arrays.
		th.Barrier()
		lo, hi := chunk(words, tm.T, th.ID)
		for t := 0; t < tm.T; t++ {
			mine := priv[t]
			for i := lo; i < hi; i++ {
				frc[i%d][i/d] += mine[i]
			}
		}
		th.TC.ReductionWords += int64((hi - lo) * tm.T)
		th.Compute(float64((hi-lo)*tm.T) * tm.Costs.ReductionWord)
		th.Barrier()
	}
}
