package machine

import (
	"testing"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"Sun", "T3E", "CPQ"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("VAX"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestPlatformShapes(t *testing.T) {
	sun, _ := ByName("Sun")
	t3e, _ := ByName("T3E")
	cpq, _ := ByName("CPQ")
	if sun.MaxCPUs() != 8 || t3e.MaxCPUs() != 344 || cpq.MaxCPUs() != 20 {
		t.Errorf("CPU counts: %d %d %d", sun.MaxCPUs(), t3e.MaxCPUs(), cpq.MaxCPUs())
	}
	if t3e.CPUsPerNode != 1 || cpq.CPUsPerNode != 4 {
		t.Error("node shapes wrong")
	}
	if t3e.IntWordBytes != 8 {
		t.Error("T3E must have 8-byte integers")
	}
	if !sun.SoftwareLocks || cpq.SoftwareLocks {
		t.Error("lock hardware flags wrong")
	}
}

func TestMissFractionMonotone(t *testing.T) {
	p := CompaqES40()
	// Small windows hit; fraction rises monotonically with distance.
	prev := -1.0
	for _, dist := range []float64{1, 100, 1e4, 1e5, 1e6, 1e7} {
		m := p.missFraction(dist)
		if m < prev-1e-15 {
			t.Fatalf("miss fraction not monotone at %g: %g < %g", dist, m, prev)
		}
		if m < 0 || m > 1 {
			t.Fatalf("miss fraction %g out of range", m)
		}
		prev = m
	}
	if p.missFraction(10) != p.MinMissFactor {
		t.Error("in-cache window should pay only the residual miss rate")
	}
}

func TestForceMemCostOrderingAcrossLocality(t *testing.T) {
	for _, p := range Platforms() {
		bad := p.ForceMemCost(CostParams{D: 3, MeanLinkDist: 3e5, ActivePerNode: 1})
		good := p.ForceMemCost(CostParams{D: 3, MeanLinkDist: 20, ActivePerNode: 1})
		if good >= bad {
			t.Errorf("%s: ordered traffic %g not below scattered %g", p.Name, good, bad)
		}
		// More coordinate arrays in 3-D than 2-D.
		if p.ForceMemCost(CostParams{D: 3, MeanLinkDist: 3e5, ActivePerNode: 1}) <=
			p.ForceMemCost(CostParams{D: 2, MeanLinkDist: 3e5, ActivePerNode: 1}) {
			t.Errorf("%s: 3-D traffic not above 2-D", p.Name)
		}
	}
}

func TestContentionRaisesCost(t *testing.T) {
	cpq := CompaqES40()
	solo := cpq.ForceMemCost(CostParams{D: 2, MeanLinkDist: 3e5, ActivePerNode: 1})
	full := cpq.ForceMemCost(CostParams{D: 2, MeanLinkDist: 3e5, ActivePerNode: 4})
	if full <= solo {
		t.Errorf("bandwidth contention missing: %g vs %g", full, solo)
	}
	// T3E has one CPU per node: no contention possible.
	t3e := T3E()
	a := t3e.ForceMemCost(CostParams{D: 2, MeanLinkDist: 3e5, ActivePerNode: 1})
	b := t3e.ForceMemCost(CostParams{D: 2, MeanLinkDist: 3e5, ActivePerNode: 8})
	if a != b {
		t.Error("T3E contention should clamp to one CPU per node")
	}
}

func TestT3EPaysForWideIntegers(t *testing.T) {
	t3e := T3E()
	narrow := *t3e
	narrow.IntWordBytes = 4
	cp := CostParams{D: 2, MeanLinkDist: 50, ActivePerNode: 1}
	if t3e.LinkCost(cp) <= narrow.LinkCost(cp) {
		t.Error("8-byte integers should cost more per link")
	}
}

func TestAtomicCostPlatformGap(t *testing.T) {
	sun := SunHPC()
	cpq := CompaqES40()
	// Software locks an order of magnitude above hardware.
	if sun.AtomicCost(4) < 5*cpq.AtomicCost(4) {
		t.Errorf("Sun lock %g not far above CPQ %g", sun.AtomicCost(4), cpq.AtomicCost(4))
	}
	if cpq.AtomicCost(4) <= cpq.AtomicCost(1) {
		t.Error("atomic contention should grow with threads")
	}
}

func TestBarrierCostEndpoints(t *testing.T) {
	p := CompaqES40()
	if p.BarrierCost(1) != 0 {
		t.Error("T=1 barrier should be free")
	}
	if p.BarrierCost(4) <= p.BarrierCost(2) {
		t.Error("barrier cost should grow with team size")
	}
}

func TestShmCostsBundle(t *testing.T) {
	p := SunHPC()
	cp := CostParams{D: 3, MeanLinkDist: 40, ActivePerNode: 4}
	c := p.ShmCosts(4, cp)
	if c.ForkJoin != p.ForkJoin || c.AtomicTaken != p.AtomicCost(4) {
		t.Error("bundle fields mismatch")
	}
	if c.PerLink <= 0 || c.PerParticle <= 0 || c.ReductionWord <= 0 {
		t.Error("zero kernel costs")
	}
	// T=1 teams pay no fork/join.
	if p.ShmCosts(1, cp).ForkJoin != 0 {
		t.Error("solo team should not pay fork/join")
	}
}

func TestNetworkClasses(t *testing.T) {
	cpq := CompaqES40()
	n := cpq.Network()
	if !n.SameNode(0, 3) || n.SameNode(3, 4) {
		t.Error("CPQ node grouping wrong")
	}
	intra := n.MsgCost(0, 1, 8192)
	inter := n.MsgCost(0, 4, 8192)
	if intra >= inter {
		t.Errorf("memory-channel hop %g not above shared-memory %g", inter, intra)
	}
	sun := SunHPC().Network()
	if !sun.SameNode(0, 7) {
		t.Error("Sun is one box")
	}
}

func TestPackCostPositive(t *testing.T) {
	for _, p := range Platforms() {
		if p.PackCost() <= 0 {
			t.Errorf("%s pack cost %g", p.Name, p.PackCost())
		}
	}
}
