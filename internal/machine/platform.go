// Package machine defines the virtual platforms the experiments run
// on: calibrated cost models of the paper's three machines — the Cray
// T3E-900, the Sun HPC 3500 and the Compaq ES40 cluster. A platform
// converts the physical event counts the simulation produces (links
// visited, contacts computed, force updates, locks taken, messages,
// regions) into modelled seconds via a cache model, a lock model, an
// OpenMP overhead model and a two-level network model.
//
// Calibration targets the paper's Tables 1 and 2 and, much more
// importantly, every *relative* effect the paper reports: who wins,
// by what factor, and where the crossovers fall. The decomposition of
// the per-link cost is:
//
//	visit    — distance computation and loop arithmetic (no sqrt)
//	contact  — the square root + inverse paid only when r < rmax,
//	           which is why the paper's times grow much slower than
//	           the link count when rc rises from 1.5 to 2.0 rmax
//	stream   — reading the link list itself; 8-byte integers double
//	           this on the T3E
//	miss     — particle-array cache misses, governed by the measured
//	           locality of the link list (reordering collapses it)
package machine

import (
	"fmt"

	"hybriddem/internal/mp"
	"hybriddem/internal/shm"
)

// Platform is a virtual machine description. All times are seconds,
// sizes bytes, rates bytes/second.
type Platform struct {
	Name        string
	Nodes       int // SMP boxes
	CPUsPerNode int

	// Compute.
	PairVisit    float64 // per link: distance check + loop arithmetic
	PairVisitDim float64 // extra per spatial dimension
	ContactCost  float64 // per in-range pair: sqrt + inverse + update math
	UpdateBase   float64 // per force accumulation (register/ALU)
	ParticleUpd  float64 // per position update (integrator)

	// Memory system.
	IntWordBytes  float64 // link-list integer width: 8 on the T3E
	LineBytes     float64 // cache-line size
	LinePenalty   float64 // seconds per line fetched from main memory
	CacheBytes    float64 // per-CPU reuse window (incl. stream buffers)
	BwContention  float64 // extra line-fetch cost per additional busy CPU on the node
	BytesPerPart  float64 // pos+vel+frc footprint of one particle (SoA)
	MinMissFactor float64 // residual miss fraction with perfect locality
	RedBwScale    float64 // extra bandwidth pressure per added thread for array reductions

	// Lock model.
	SoftwareLocks bool    // KAI-style software locks (Sun) vs hardware (Compaq)
	AtomicOp      float64 // per protected update, uncontended
	AtomicScale   float64 // contention growth per extra thread
	CriticalOp    float64 // per critical-section entry

	// OpenMP overhead model.
	ForkJoin    float64 // per parallel region (team-wide)
	BarrierBase float64 // per intra-team barrier at T=2
	BarrierPerT float64 // additional barrier cost per extra thread

	// Network (unused when Nodes == 1 and the run is threads-only).
	IntraLat, IntraBw float64
	InterLat, InterBw float64

	// Shared-memory windows (mpism mode): a fenced load streams a node
	// peer's halo data straight through the reader's cache, skipping
	// the MPI stack's per-message latency and send-side copy, so
	// WinLoadBw exceeds IntraBw wherever MPI runs through shared memory
	// (Sun, CPQ); WinFenceLat is the per-fence epoch cost. Irrelevant
	// on single-CPU nodes (T3E): no two ranks ever share a window.
	WinLoadBw   float64 // bytes/second loaded from a node peer's window
	WinFenceLat float64 // seconds per window fence
}

// T3E returns the 344-CPU Cray T3E-900 model: single-CPU nodes, a
// fast torus network, a modest on-chip cache backed by stream buffers
// (modelled as a 2 MB effective reuse window), and — crucially for
// Table 1 — 8-byte default integers that double the link-list memory
// traffic.
func T3E() *Platform {
	return &Platform{
		Name:        "T3E",
		Nodes:       344,
		CPUsPerNode: 1,

		PairVisit:    245e-9,
		PairVisitDim: 60e-9,
		ContactCost:  800e-9,
		UpdateBase:   8e-9,
		ParticleUpd:  60e-9,

		IntWordBytes:  8,
		LineBytes:     64,
		LinePenalty:   260e-9,
		CacheBytes:    2 << 20, // effective reuse window incl. stream buffers
		BwContention:  0,       // one CPU per memory system
		BytesPerPart:  72,
		MinMissFactor: 0.10,
		RedBwScale:    0,

		SoftwareLocks: true,
		AtomicOp:      2.5e-6,
		AtomicScale:   0.15,
		CriticalOp:    4e-6,

		ForkJoin:    25e-6,
		BarrierBase: 8e-6,
		BarrierPerT: 1.5e-6,

		IntraLat: 12e-6, IntraBw: 300e6,
		InterLat: 12e-6, InterBw: 300e6,

		// Single-CPU nodes: never exercised (no rank shares a window).
		WinLoadBw: 300e6, WinFenceLat: 12e-6,
	}
}

// SunHPC returns the 8-CPU Sun HPC 3500 model: one big SMP with large
// external caches, MPI through shared memory, and the KAI
// source-to-source OpenMP system whose software locks make atomic
// updates "very costly".
func SunHPC() *Platform {
	return &Platform{
		Name:        "Sun",
		Nodes:       1,
		CPUsPerNode: 8,

		PairVisit:    185e-9,
		PairVisitDim: 50e-9,
		ContactCost:  650e-9,
		UpdateBase:   10e-9,
		ParticleUpd:  75e-9,

		IntWordBytes:  4,
		LineBytes:     64,
		LinePenalty:   280e-9,
		CacheBytes:    4 << 20,
		BwContention:  0.15, // big crossbar backplane; mild sharing penalty
		BytesPerPart:  72,
		MinMissFactor: 0.06,
		RedBwScale:    1.2, // bulk array reductions saturate the backplane

		SoftwareLocks: true,
		AtomicOp:      3.0e-6, // KAI software lock
		AtomicScale:   0.30,
		CriticalOp:    5e-6,

		ForkJoin:    30e-6,
		BarrierBase: 10e-6,
		BarrierPerT: 2e-6,

		IntraLat: 4e-6, IntraBw: 180e6,
		InterLat: 4e-6, InterBw: 180e6,

		// The backplane moves ~450 MB/s point to point; MPI through
		// shared memory reaches 180 MB/s of it after the library's
		// double copy, a direct fenced load nearly all of it.
		WinLoadBw: 900e6, WinFenceLat: 3e-6,
	}
}

// CompaqES40 returns the St Andrews cluster model: 5 ES40 boxes with
// four 500 MHz EV6 CPUs each, memory-channel interconnect, hardware
// atomic updates, and a per-box memory system that pure-MPI runs
// saturate ("the code is saturating the bandwidth to main memory on a
// single SMP").
func CompaqES40() *Platform {
	return &Platform{
		Name:        "CPQ",
		Nodes:       5,
		CPUsPerNode: 4,

		PairVisit:    75e-9,
		PairVisitDim: 30e-9,
		ContactCost:  270e-9,
		UpdateBase:   5e-9,
		ParticleUpd:  50e-9,

		IntWordBytes:  4,
		LineBytes:     64,
		LinePenalty:   180e-9,
		CacheBytes:    4 << 20,
		BwContention:  0.55,
		BytesPerPart:  72,
		MinMissFactor: 0.05,
		RedBwScale:    0.35,

		SoftwareLocks: false,
		AtomicOp:      150e-9, // hardware load-locked/store-conditional
		AtomicScale:   0.30,   // line bouncing under contention
		CriticalOp:    900e-9,

		ForkJoin:    18e-6,
		BarrierBase: 5e-6,
		BarrierPerT: 1e-6,

		IntraLat: 2.5e-6, IntraBw: 350e6,
		InterLat: 9e-6, InterBw: 80e6,

		// EV6 crossbar: a fenced load streams at double the effective
		// intra-node MPI rate (one copy instead of two) with a cheap
		// in-memory fence.
		WinLoadBw: 1.4e9, WinFenceLat: 2e-6,
	}
}

// Platforms returns the three benchmark machines in the paper's order.
func Platforms() []*Platform {
	return []*Platform{SunHPC(), T3E(), CompaqES40()}
}

// ByName looks a platform up by its table label (case-sensitive:
// "Sun", "T3E", "CPQ").
func ByName(name string) (*Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("machine: unknown platform %q (want Sun, T3E or CPQ)", name)
}

// MaxCPUs returns the machine's total CPU count.
func (p *Platform) MaxCPUs() int { return p.Nodes * p.CPUsPerNode }

// Network returns the message-passing cost model for pure-MPI runs:
// consecutive groups of CPUsPerNode ranks share an SMP node.
func (p *Platform) Network() mp.Network {
	return mp.LatBwNetwork{
		CPUsPerNode: p.CPUsPerNode,
		IntraLat:    p.IntraLat, IntraBw: p.IntraBw,
		InterLat: p.InterLat, InterBw: p.InterBw,
	}
}

// NodeNetwork returns the cost model for hybrid runs, where each rank
// occupies a whole SMP node ("one process per SMP"): every message
// crosses the cluster interconnect.
func (p *Platform) NodeNetwork() mp.Network {
	return mp.LatBwNetwork{
		CPUsPerNode: 1,
		IntraLat:    p.InterLat, IntraBw: p.InterBw,
		InterLat: p.InterLat, InterBw: p.InterBw,
	}
}

// WinCosts returns the shared-window cost model for mpism runs:
// intra-node halo legs pay per-byte fenced loads plus per-fence epoch
// latency instead of per-message latency and MPI's double copy.
func (p *Platform) WinCosts() mp.WinCosts {
	return mp.WinCosts{LoadBw: p.WinLoadBw, FenceLat: p.WinFenceLat}
}

// CostParams captures the geometry a phase runs under, from which the
// per-event costs are derived.
type CostParams struct {
	D             int
	MeanLinkDist  float64 // measured mean |i-j| over the current list, rescaled to the modelled N
	ActivePerNode int     // busy CPUs sharing one node's memory system
}

// contention returns the line-fetch multiplier when several CPUs on a
// node compete for memory bandwidth.
func (p *Platform) contention(active int) float64 {
	if active < 1 {
		active = 1
	}
	if active > p.CPUsPerNode {
		active = p.CPUsPerNode
	}
	return 1 + p.BwContention*float64(active-1)
}

// missFraction is the cache model: the force loop's active window is
// the span of particle memory the link list touches between reuses,
// which the mean link index distance captures directly. Windows
// inside the reuse window hit; windows far beyond it miss.
func (p *Platform) missFraction(meanDist float64) float64 {
	window := meanDist * p.BytesPerPart
	if window <= p.CacheBytes {
		return p.MinMissFactor
	}
	m := 1 - p.CacheBytes/window
	if m < p.MinMissFactor {
		m = p.MinMissFactor
	}
	return m
}

// LinkCost returns the modelled seconds per link of the force loop:
// visit arithmetic and streaming the link list itself (integer width
// matters). The sqrt/inverse of in-range pairs is charged per contact
// (ContactPairCost) and the particle-array misses per particle per
// pass (ForceMemCost): each particle's data is loaded roughly once
// per traversal of the cell-ordered list and then reused across its
// links, which is why the paper's marginal link cost is identical for
// ordered and unordered stores while the reordering gain is a
// constant per particle.
func (p *Platform) LinkCost(cp CostParams) float64 {
	cont := p.contention(cp.ActivePerNode)
	visit := p.PairVisit + p.PairVisitDim*float64(cp.D)
	stream := (2 * p.IntWordBytes / p.LineBytes) * p.LinePenalty * cont
	return visit + stream
}

// ForceMemCost returns the modelled seconds of particle-array memory
// traffic per particle per force pass. The store holds one array per
// coordinate (positions and forces: 2D arrays of 8 bytes). With an
// unordered store every element sits on its own line (miss fraction
// from the cache model); cell-ordering packs consecutive particles
// onto shared lines, collapsing the traffic to the streaming minimum
// of 8/LineBytes lines per element.
func (p *Platform) ForceMemCost(cp CostParams) float64 {
	cont := p.contention(cp.ActivePerNode)
	frac := p.missFraction(cp.MeanLinkDist)
	arrays := float64(2 * cp.D)
	streamFrac := 8 / p.LineBytes
	lines := arrays * (streamFrac + frac*(1-streamFrac))
	return lines * p.LinePenalty * cont
}

// ContactPairCost returns the modelled seconds per in-range pair: the
// "one floating point inverse and one square root" plus the force
// arithmetic.
func (p *Platform) ContactPairCost(cp CostParams) float64 { return p.ContactCost }

// UpdateCost returns the modelled seconds per unprotected force-array
// accumulation (the memory side lives in LinkCost's line model).
func (p *Platform) UpdateCost(cp CostParams) float64 { return p.UpdateBase }

// ParticleCost returns the modelled seconds per position update: the
// integrator arithmetic plus a streaming pass over the particle
// arrays.
func (p *Platform) ParticleCost(cp CostParams) float64 {
	cont := p.contention(cp.ActivePerNode)
	return p.ParticleUpd + p.BytesPerPart/p.LineBytes*p.LinePenalty*cont*0.25
}

// AtomicCost returns the modelled seconds per protected update on a
// team of T threads.
func (p *Platform) AtomicCost(T int) float64 {
	if T < 1 {
		T = 1
	}
	return p.AtomicOp * (1 + p.AtomicScale*float64(T-1))
}

// BarrierCost returns the modelled seconds per intra-team barrier.
func (p *Platform) BarrierCost(T int) float64 {
	if T <= 1 {
		return 0
	}
	return p.BarrierBase + p.BarrierPerT*float64(T-2)
}

// ReductionWordCost returns the modelled seconds per word moved by an
// array-reduction strategy. Array reductions are pure bulk streaming
// — "all array reduction techniques place a heavy demand on the
// memory system" — so they saturate the node's memory bandwidth much
// faster than the cache-friendly force loop; RedBwScale captures the
// per-thread pressure.
func (p *Platform) ReductionWordCost(T int) float64 {
	if T < 1 {
		T = 1
	}
	sat := 1 + p.RedBwScale*float64(T-1)
	return 8 / p.LineBytes * p.LinePenalty * sat
}

// PackCost returns the modelled seconds per particle packed into or
// unpacked from an exchange buffer.
func (p *Platform) PackCost() float64 {
	return p.BytesPerPart / p.LineBytes * p.LinePenalty
}

// ShmCosts bundles the per-event constants the shared-memory kernels
// charge, for a team of T threads running under cp.
func (p *Platform) ShmCosts(T int, cp CostParams) shm.Costs {
	fj := p.ForkJoin
	if T <= 1 {
		fj = 0
	}
	return shm.Costs{
		ForkJoin:      fj,
		Barrier:       p.BarrierCost(T),
		Critical:      p.CriticalOp,
		AtomicTaken:   p.AtomicCost(T),
		ReductionWord: p.ReductionWordCost(T),
		PerLink:       p.LinkCost(cp),
		PerContact:    p.ContactPairCost(cp),
		PerUpdate:     p.UpdateCost(cp),
		PerParticle:   p.ParticleCost(cp),
	}
}
