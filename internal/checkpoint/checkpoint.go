// Package checkpoint saves and restores simulation state. A snapshot
// captures the physical state (positions, velocities, identities) and
// the geometry needed to validate a resume; restart runs rebuild the
// link list from the restored positions, which reproduces the
// original trajectory exactly because out-of-range pairs contribute
// no force.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"hybriddem/internal/core"
	"hybriddem/internal/decomp"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
)

// Snapshot is one saved simulation state.
type Snapshot struct {
	// Geometry and model, for validation at restore time.
	D        int
	N        int
	L        float64
	BC       geom.Boundary
	Diameter float64

	// Full force law and integration parameters: a resumed run must
	// not silently continue under different physics, so Apply rejects
	// any mismatch against the restoring configuration.
	K          float64 // contact spring stiffness
	Damp       float64 // contact normal damping
	Hertz      bool    // Hertzian contact law instead of the linear spring
	Dt         float64 // time step
	Gravity    float64 // body force along the last dimension
	FillHeight float64 // initial-bed fill fraction (provenance of Init)

	// Bonds carries the composite-grain bond table, nil for runs of
	// free particles. It is keyed by persistent particle ID, so it
	// survives reordering and migration unchanged.
	Bonds *force.BondTable

	// Progress bookkeeping.
	Iters int // iterations completed when the snapshot was taken

	// ORBTree is the serialized ORB decomposition the run had adopted
	// (decomp.ORBTree.Encode), nil/empty for static or LPT runs. It is
	// advisory performance state, not physics: a resume that cannot use
	// it (different rank count, strategy off) still reproduces the
	// trajectory exactly. New field; snapshots written before it decode
	// with the field empty.
	ORBTree []byte

	// Physical state indexed by particle ID, stored component-major to
	// mirror the structure-of-arrays particle store: Pos[k][id] is
	// component k of particle id. Only the first D component slices are
	// populated; a snapshot therefore costs 2*D*N floats regardless of
	// geom.MaxD.
	Pos geom.Coords
	Vel geom.Coords
}

// FromResult builds a snapshot from a finished run; the run must have
// been collected with Config.CollectState.
func FromResult(cfg *core.Config, res *core.Result, itersDone int) (*Snapshot, error) {
	if res.Pos == nil || res.Vel == nil {
		return nil, fmt.Errorf("checkpoint: run did not collect state (set Config.CollectState)")
	}
	var tree []byte
	if res.Tree != nil {
		tree = res.Tree.Encode()
	}
	return &Snapshot{
		D: cfg.D, N: cfg.N, L: cfg.L, BC: cfg.BC,
		Diameter:   cfg.Spring.Diameter,
		K:          cfg.Spring.K,
		Damp:       cfg.Spring.Damp,
		Hertz:      cfg.Spring.Hertz,
		Dt:         cfg.Dt,
		Gravity:    cfg.Gravity,
		FillHeight: cfg.FillHeight,
		Bonds:      cfg.Spring.Bonds,
		Iters:      itersDone,
		ORBTree:    tree,
		Pos:        geom.CoordsFromVecs(res.Pos, cfg.D),
		Vel:        geom.CoordsFromVecs(res.Vel, cfg.D),
	}, nil
}

// Apply validates the snapshot against the configuration and installs
// it as the run's initial condition.
func (s *Snapshot) Apply(cfg *core.Config) error {
	if cfg.D != s.D || cfg.N != s.N {
		return fmt.Errorf("checkpoint: snapshot is D=%d N=%d, config is D=%d N=%d", s.D, s.N, cfg.D, cfg.N)
	}
	if cfg.L != s.L || cfg.BC != s.BC {
		return fmt.Errorf("checkpoint: snapshot box (L=%g, %v) does not match config (L=%g, %v)", s.L, s.BC, cfg.L, cfg.BC)
	}
	if cfg.Spring.Diameter != s.Diameter {
		return fmt.Errorf("checkpoint: particle diameter %g does not match config %g", s.Diameter, cfg.Spring.Diameter)
	}
	if cfg.Spring.K != s.K || cfg.Spring.Damp != s.Damp {
		return fmt.Errorf("checkpoint: snapshot spring (K=%g, damp=%g) does not match config (K=%g, damp=%g)",
			s.K, s.Damp, cfg.Spring.K, cfg.Spring.Damp)
	}
	if cfg.Spring.Hertz != s.Hertz {
		return fmt.Errorf("checkpoint: snapshot Hertz=%v does not match config Hertz=%v", s.Hertz, cfg.Spring.Hertz)
	}
	if cfg.Dt != s.Dt {
		return fmt.Errorf("checkpoint: snapshot time step %g does not match config %g", s.Dt, cfg.Dt)
	}
	if cfg.Gravity != s.Gravity {
		return fmt.Errorf("checkpoint: snapshot gravity %g does not match config %g", s.Gravity, cfg.Gravity)
	}
	if cfg.FillHeight != s.FillHeight {
		return fmt.Errorf("checkpoint: snapshot fill height %g does not match config %g", s.FillHeight, cfg.FillHeight)
	}
	switch {
	case s.Bonds == nil && cfg.Spring.Bonds != nil:
		return fmt.Errorf("checkpoint: config has a bond table but the snapshot carries none")
	case s.Bonds != nil && cfg.Spring.Bonds == nil:
		// The snapshot is the authority on the grain topology: a bare
		// config resuming a grains run inherits the saved table.
		cfg.Spring.Bonds = s.Bonds
	case s.Bonds != nil && !s.Bonds.Equal(cfg.Spring.Bonds):
		return fmt.Errorf("checkpoint: snapshot bond table does not match the config's")
	}
	// A decoded gob can carry ragged component slices; every populated
	// component must hold exactly N values (and the gather below would
	// otherwise index out of range on adversarial input).
	for k := 0; k < s.D; k++ {
		if len(s.Pos[k]) != s.N || len(s.Vel[k]) != s.N {
			return fmt.Errorf("checkpoint: component %d holds %d positions and %d velocities for N=%d",
				k, len(s.Pos[k]), len(s.Vel[k]), s.N)
		}
	}
	if len(s.ORBTree) > 0 {
		tree, err := decomp.DecodeTree(s.ORBTree)
		if err != nil {
			return fmt.Errorf("checkpoint: ORB tree: %w", err)
		}
		cfg.InitTree = tree
	}
	cfg.Init = &core.State{Pos: s.Pos.Vecs(s.N, s.D), Vel: s.Vel.Vecs(s.N, s.D)}
	return nil
}

// The on-disk format frames the gob payload so Load can tell a valid
// checkpoint from a torn write or bit rot before handing bytes to the
// decoder:
//
//	[8] magic "HYDEMCK1"
//	[8] payload length, big-endian
//	[8] FNV-1a over the payload, big-endian
//	[n] gob-encoded Snapshot
//
// A file that is truncated anywhere — inside the header or the
// payload — fails the length read; a file with any flipped bit fails
// the checksum. Either way Load returns an error and never panics.
var magic = [8]byte{'H', 'Y', 'D', 'E', 'M', 'C', 'K', '1'}

const headerLen = 24

// maxPayload bounds the length field so a corrupted header cannot make
// Load attempt a multi-terabyte allocation.
const maxPayload = 1 << 33 // 8 GiB

func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// Save writes the snapshot in the framed format.
func Save(w io.Writer, s *Snapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	binary.BigEndian.PutUint64(hdr[16:24], fnv1a(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save. It validates the frame —
// magic, length, checksum — before decoding, so torn writes and
// corrupted bytes come back as errors, never panics or silently wrong
// state.
func Load(r io.Reader) (s *Snapshot, err error) {
	var hdr [headerLen]byte
	if _, rerr := io.ReadFull(r, hdr[:]); rerr != nil {
		return nil, fmt.Errorf("checkpoint: short header: %w", rerr)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a checkpoint file?)", hdr[:8])
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	if n > maxPayload {
		return nil, fmt.Errorf("checkpoint: implausible payload length %d (corrupt header)", n)
	}
	payload := make([]byte, n)
	if _, rerr := io.ReadFull(r, payload); rerr != nil {
		return nil, fmt.Errorf("checkpoint: truncated payload: %w", rerr)
	}
	want := binary.BigEndian.Uint64(hdr[16:24])
	if got := fnv1a(payload); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file corrupted)")
	}
	// The checksum guards the gob stream, but a decoder panic on
	// adversarial input must still surface as an error.
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("checkpoint: decode panic: %v", p)
		}
	}()
	var snap Snapshot
	if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); derr != nil {
		return nil, fmt.Errorf("checkpoint: %w", derr)
	}
	return &snap, nil
}

// SaveFile writes the snapshot to a file crash-safely: the bytes go to
// a temporary file in the same directory, are fsynced, and only then
// renamed over the target; finally the containing directory is fsynced
// so the rename itself reaches stable storage. A crash at any point
// leaves either the previous checkpoint (if any) or the complete new
// one — the target path never holds a partial write. The directory
// sync is the half of the contract the rename alone does not give:
// on journalling filesystems with delayed allocation a crash shortly
// after rename(2) can otherwise surface the new name with truncated
// (even empty) contents, which is exactly the torn state the atomic
// dance exists to rule out.
func SaveFile(path string, s *Snapshot) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = Save(f, s); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making a just-completed rename durable.
// Filesystems that refuse to sync directories (some network mounts
// return EINVAL/ENOTSUP) degrade to the pre-sync behaviour rather than
// failing the caller: the data file itself is already synced, only
// the rename's durability window remains. Exported because the same
// temp-write/fsync/rename/dir-sync dance backs the server's job
// journal, not just checkpoint files.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// LoadFile reads a snapshot from a file.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
