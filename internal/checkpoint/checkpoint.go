// Package checkpoint saves and restores simulation state. A snapshot
// captures the physical state (positions, velocities, identities) and
// the geometry needed to validate a resume; restart runs rebuild the
// link list from the restored positions, which reproduces the
// original trajectory exactly because out-of-range pairs contribute
// no force.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"hybriddem/internal/core"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
)

// Snapshot is one saved simulation state.
type Snapshot struct {
	// Geometry and model, for validation at restore time.
	D        int
	N        int
	L        float64
	BC       geom.Boundary
	Diameter float64

	// Full force law and integration parameters: a resumed run must
	// not silently continue under different physics, so Apply rejects
	// any mismatch against the restoring configuration.
	K          float64 // contact spring stiffness
	Damp       float64 // contact normal damping
	Hertz      bool    // Hertzian contact law instead of the linear spring
	Dt         float64 // time step
	Gravity    float64 // body force along the last dimension
	FillHeight float64 // initial-bed fill fraction (provenance of Init)

	// Bonds carries the composite-grain bond table, nil for runs of
	// free particles. It is keyed by persistent particle ID, so it
	// survives reordering and migration unchanged.
	Bonds *force.BondTable

	// Progress bookkeeping.
	Iters int // iterations completed when the snapshot was taken

	// Physical state indexed by particle ID.
	Pos []geom.Vec
	Vel []geom.Vec
}

// FromResult builds a snapshot from a finished run; the run must have
// been collected with Config.CollectState.
func FromResult(cfg *core.Config, res *core.Result, itersDone int) (*Snapshot, error) {
	if res.Pos == nil || res.Vel == nil {
		return nil, fmt.Errorf("checkpoint: run did not collect state (set Config.CollectState)")
	}
	return &Snapshot{
		D: cfg.D, N: cfg.N, L: cfg.L, BC: cfg.BC,
		Diameter:   cfg.Spring.Diameter,
		K:          cfg.Spring.K,
		Damp:       cfg.Spring.Damp,
		Hertz:      cfg.Spring.Hertz,
		Dt:         cfg.Dt,
		Gravity:    cfg.Gravity,
		FillHeight: cfg.FillHeight,
		Bonds:      cfg.Spring.Bonds,
		Iters:      itersDone,
		Pos:        res.Pos,
		Vel:        res.Vel,
	}, nil
}

// Apply validates the snapshot against the configuration and installs
// it as the run's initial condition.
func (s *Snapshot) Apply(cfg *core.Config) error {
	if cfg.D != s.D || cfg.N != s.N {
		return fmt.Errorf("checkpoint: snapshot is D=%d N=%d, config is D=%d N=%d", s.D, s.N, cfg.D, cfg.N)
	}
	if cfg.L != s.L || cfg.BC != s.BC {
		return fmt.Errorf("checkpoint: snapshot box (L=%g, %v) does not match config (L=%g, %v)", s.L, s.BC, cfg.L, cfg.BC)
	}
	if cfg.Spring.Diameter != s.Diameter {
		return fmt.Errorf("checkpoint: particle diameter %g does not match config %g", s.Diameter, cfg.Spring.Diameter)
	}
	if cfg.Spring.K != s.K || cfg.Spring.Damp != s.Damp {
		return fmt.Errorf("checkpoint: snapshot spring (K=%g, damp=%g) does not match config (K=%g, damp=%g)",
			s.K, s.Damp, cfg.Spring.K, cfg.Spring.Damp)
	}
	if cfg.Spring.Hertz != s.Hertz {
		return fmt.Errorf("checkpoint: snapshot Hertz=%v does not match config Hertz=%v", s.Hertz, cfg.Spring.Hertz)
	}
	if cfg.Dt != s.Dt {
		return fmt.Errorf("checkpoint: snapshot time step %g does not match config %g", s.Dt, cfg.Dt)
	}
	if cfg.Gravity != s.Gravity {
		return fmt.Errorf("checkpoint: snapshot gravity %g does not match config %g", s.Gravity, cfg.Gravity)
	}
	if cfg.FillHeight != s.FillHeight {
		return fmt.Errorf("checkpoint: snapshot fill height %g does not match config %g", s.FillHeight, cfg.FillHeight)
	}
	switch {
	case s.Bonds == nil && cfg.Spring.Bonds != nil:
		return fmt.Errorf("checkpoint: config has a bond table but the snapshot carries none")
	case s.Bonds != nil && cfg.Spring.Bonds == nil:
		// The snapshot is the authority on the grain topology: a bare
		// config resuming a grains run inherits the saved table.
		cfg.Spring.Bonds = s.Bonds
	case s.Bonds != nil && !s.Bonds.Equal(cfg.Spring.Bonds):
		return fmt.Errorf("checkpoint: snapshot bond table does not match the config's")
	}
	if len(s.Pos) != s.N || len(s.Vel) != s.N {
		return fmt.Errorf("checkpoint: snapshot holds %d positions and %d velocities for N=%d", len(s.Pos), len(s.Vel), s.N)
	}
	cfg.Init = &core.State{Pos: s.Pos, Vel: s.Vel}
	return nil
}

// Save writes the snapshot in gob encoding.
func Save(w io.Writer, s *Snapshot) error {
	return gob.NewEncoder(w).Encode(s)
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &s, nil
}

// SaveFile writes the snapshot to a file.
func SaveFile(path string, s *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, s); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a snapshot from a file.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
