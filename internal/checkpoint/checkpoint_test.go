package checkpoint

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"hybriddem/internal/core"
	"hybriddem/internal/geom"
)

func runCfg(n int) core.Config {
	cfg := core.Default(2, n)
	cfg.Seed = 21
	cfg.InitVel = 1.5
	cfg.CollectState = true
	return cfg
}

func TestRoundTripBytes(t *testing.T) {
	cfg := runCfg(200)
	res, err := core.Run(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromResult(&cfg, res, 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Error("snapshot round trip changed data")
	}
}

func TestRoundTripFile(t *testing.T) {
	cfg := runCfg(100)
	res, err := core.Run(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := FromResult(&cfg, res, 5)
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Error("file round trip changed data")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestResumeReproducesTrajectory: 40 straight iterations must equal
// 20 iterations + checkpoint + 20 resumed iterations. The resume
// rebuilds the link list from the restored positions; out-of-range
// pairs contribute zero force, so the physics is identical up to
// summation-order noise.
func TestResumeReproducesTrajectory(t *testing.T) {
	full := runCfg(300)
	fullRes, err := core.Run(full, 40)
	if err != nil {
		t.Fatal(err)
	}

	first := runCfg(300)
	firstRes, err := core.Run(first, 20)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromResult(&first, firstRes, 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	second := runCfg(300)
	if err := loaded.Apply(&second); err != nil {
		t.Fatal(err)
	}
	secondRes, err := core.Run(second, 20)
	if err != nil {
		t.Fatal(err)
	}

	box := geom.NewBox(2, full.L, full.BC)
	maxd := 0.0
	for i := range fullRes.Pos {
		if d := math.Sqrt(box.Dist2(fullRes.Pos[i], secondRes.Pos[i])); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-8 {
		t.Errorf("resumed trajectory deviates by %g", maxd)
	}
}

func TestApplyValidation(t *testing.T) {
	cfg := runCfg(50)
	res, err := core.Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := FromResult(&cfg, res, 2)

	bad := runCfg(60)
	if err := snap.Apply(&bad); err == nil {
		t.Error("N mismatch accepted")
	}
	bad2 := runCfg(50)
	bad2.L *= 2
	if err := snap.Apply(&bad2); err == nil {
		t.Error("box mismatch accepted")
	}
	bad3 := runCfg(50)
	bad3.Spring.Diameter *= 2
	if err := snap.Apply(&bad3); err == nil {
		t.Error("diameter mismatch accepted")
	}
	good := runCfg(50)
	if err := snap.Apply(&good); err != nil {
		t.Errorf("valid apply rejected: %v", err)
	}
}

func TestFromResultRequiresState(t *testing.T) {
	cfg := core.Default(2, 50)
	cfg.Seed = 1
	res, err := core.Run(cfg, 2) // CollectState off
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromResult(&cfg, res, 2); err == nil {
		t.Error("stateless result accepted")
	}
}
