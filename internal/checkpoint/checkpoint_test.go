package checkpoint

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hybriddem/internal/core"
	"hybriddem/internal/geom"
	"hybriddem/internal/grain"
)

func runCfg(n int) core.Config {
	cfg := core.Default(2, n)
	cfg.Seed = 21
	cfg.InitVel = 1.5
	cfg.CollectState = true
	return cfg
}

func TestRoundTripBytes(t *testing.T) {
	cfg := runCfg(200)
	res, err := core.Run(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromResult(&cfg, res, 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Error("snapshot round trip changed data")
	}
}

func TestRoundTripFile(t *testing.T) {
	cfg := runCfg(100)
	res, err := core.Run(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := FromResult(&cfg, res, 5)
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Error("file round trip changed data")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestSaveFileAtomicOverwrite: overwriting an existing checkpoint must
// leave no temporary files behind (both the success path and the
// error-cleanup path), and the target must always hold a complete,
// loadable frame. The fsync-before-rename + directory-fsync ordering
// itself cannot be observed without crashing the kernel; this pins the
// visible half of the contract — the temp file lifecycle.
func TestSaveFileAtomicOverwrite(t *testing.T) {
	cfg := runCfg(100)
	res, err := core.Run(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := FromResult(&cfg, res, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ck")
	for i := 0; i < 3; i++ { // create, then overwrite twice
		if err := SaveFile(path, snap); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err != nil {
			t.Fatalf("overwrite %d left an unloadable checkpoint: %v", i, err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "state.ck" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("directory holds %v, want only state.ck (temp files must not survive)", names)
	}
	// Error path: an unwritable target directory must fail without
	// leaving the previous checkpoint damaged.
	if err := SaveFile(filepath.Join(dir, "no-such-subdir", "x.ck"), snap); err == nil {
		t.Error("SaveFile into a missing directory succeeded")
	}
	if _, err := LoadFile(path); err != nil {
		t.Errorf("failed save damaged the existing checkpoint: %v", err)
	}
}

// TestResumeReproducesTrajectory: 40 straight iterations must equal
// 20 iterations + checkpoint + 20 resumed iterations. The resume
// rebuilds the link list from the restored positions; out-of-range
// pairs contribute zero force, so the physics is identical up to
// summation-order noise.
func TestResumeReproducesTrajectory(t *testing.T) {
	full := runCfg(300)
	fullRes, err := core.Run(full, 40)
	if err != nil {
		t.Fatal(err)
	}

	first := runCfg(300)
	firstRes, err := core.Run(first, 20)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromResult(&first, firstRes, 20)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	second := runCfg(300)
	if err := loaded.Apply(&second); err != nil {
		t.Fatal(err)
	}
	secondRes, err := core.Run(second, 20)
	if err != nil {
		t.Fatal(err)
	}

	box := geom.NewBox(2, full.L, full.BC)
	maxd := 0.0
	for i := range fullRes.Pos {
		if d := math.Sqrt(box.Dist2(fullRes.Pos[i], secondRes.Pos[i])); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-8 {
		t.Errorf("resumed trajectory deviates by %g", maxd)
	}
}

func TestApplyValidation(t *testing.T) {
	cfg := runCfg(50)
	res, err := core.Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := FromResult(&cfg, res, 2)

	bad := runCfg(60)
	if err := snap.Apply(&bad); err == nil {
		t.Error("N mismatch accepted")
	}
	bad2 := runCfg(50)
	bad2.L *= 2
	if err := snap.Apply(&bad2); err == nil {
		t.Error("box mismatch accepted")
	}
	bad3 := runCfg(50)
	bad3.Spring.Diameter *= 2
	if err := snap.Apply(&bad3); err == nil {
		t.Error("diameter mismatch accepted")
	}
	good := runCfg(50)
	if err := snap.Apply(&good); err != nil {
		t.Errorf("valid apply rejected: %v", err)
	}
}

// TestSnapshotCapturesForceLaw: every force-law and integration
// parameter must survive the gob round trip with a non-default value,
// and a restoring configuration differing in that one parameter must
// be rejected by Apply. A snapshot that validated only geometry would
// happily resume a run under different physics.
func TestSnapshotCapturesForceLaw(t *testing.T) {
	base := func() core.Config {
		cfg := runCfg(80)
		cfg.Spring.K = 750
		cfg.Spring.Damp = 2.5
		cfg.Spring.Hertz = true
		cfg.Dt = 3e-5
		cfg.Gravity = -15
		cfg.FillHeight = 0.4
		return cfg
	}
	cfg := base()
	res, err := core.Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromResult(&cfg, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	fields := []struct {
		name   string
		read   func(*Snapshot) float64
		want   float64
		mutate func(*core.Config)
	}{
		{"K", func(s *Snapshot) float64 { return s.K }, 750,
			func(c *core.Config) { c.Spring.K = 500 }},
		{"Damp", func(s *Snapshot) float64 { return s.Damp }, 2.5,
			func(c *core.Config) { c.Spring.Damp = 0 }},
		{"Hertz", func(s *Snapshot) float64 { return b2f(s.Hertz) }, 1,
			func(c *core.Config) { c.Spring.Hertz = false }},
		{"Dt", func(s *Snapshot) float64 { return s.Dt }, 3e-5,
			func(c *core.Config) { c.Dt = 5e-5 }},
		{"Gravity", func(s *Snapshot) float64 { return s.Gravity }, -15,
			func(c *core.Config) { c.Gravity = 0 }},
		{"FillHeight", func(s *Snapshot) float64 { return s.FillHeight }, 0.4,
			func(c *core.Config) { c.FillHeight = 0.25 }},
	}
	for _, f := range fields {
		if got := f.read(loaded); got != f.want {
			t.Errorf("%s did not survive the round trip: got %g, want %g", f.name, got, f.want)
		}
		bad := base()
		f.mutate(&bad)
		if err := loaded.Apply(&bad); err == nil {
			t.Errorf("%s mismatch accepted", f.name)
		}
	}
	good := base()
	if err := loaded.Apply(&good); err != nil {
		t.Errorf("matching force law rejected: %v", err)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// grainsCfg builds a small composite-grain run: trimers settling under
// gravity with dissipative bonds.
func grainsCfg(t *testing.T) core.Config {
	t.Helper()
	cfg := core.Default(2, 90)
	cfg.BC = geom.Reflecting
	cfg.Gravity = -10
	cfg.Seed = 13
	cfg.CollectState = true
	st, bt, err := grain.Build(grain.Config{
		D: 2, Shape: grain.Trimer, Grains: 30,
		Diameter: cfg.Spring.Diameter,
		Box:      cfg.Box(), Height: 0.5,
		BondK: 400, BondDamp: 1, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Init = &core.State{Pos: st.Pos, Vel: st.Vel}
	cfg.Spring.Bonds = bt
	return cfg
}

// TestGrainsSaveResume: a composite-grain run saved and resumed must
// track the unbroken run — which only works if the snapshot carries
// the bond table, since the bond springs are the glue holding every
// grain together. Also exercises resuming into a configuration with no
// table of its own (the snapshot supplies it) and rejecting a
// configuration whose table disagrees.
func TestGrainsSaveResume(t *testing.T) {
	full := grainsCfg(t)
	fullRes, err := core.Run(full, 30)
	if err != nil {
		t.Fatal(err)
	}

	first := grainsCfg(t)
	firstRes, err := core.Run(first, 15)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromResult(&first, firstRes, 15)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Bonds == nil || snap.Bonds.NumBonds() != first.Spring.Bonds.NumBonds() {
		t.Fatal("snapshot did not capture the bond table")
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Bonds.Equal(first.Spring.Bonds) {
		t.Fatal("bond table changed across the gob round trip")
	}

	// Resume into a config that never built a table: the snapshot's
	// must be installed.
	second := grainsCfg(t)
	second.Spring.Bonds = nil
	if err := loaded.Apply(&second); err != nil {
		t.Fatal(err)
	}
	if second.Spring.Bonds == nil {
		t.Fatal("Apply did not install the snapshot's bond table")
	}
	secondRes, err := core.Run(second, 15)
	if err != nil {
		t.Fatal(err)
	}

	box := full.Box()
	maxd := 0.0
	for i := range fullRes.Pos {
		if d := math.Sqrt(box.Dist2(fullRes.Pos[i], secondRes.Pos[i])); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-8 {
		t.Errorf("resumed grain trajectory deviates by %g from the unbroken run", maxd)
	}

	// A config with a conflicting table must be rejected.
	conflict := grainsCfg(t)
	conflict.Spring.Bonds.K *= 2
	if err := loaded.Apply(&conflict); err == nil {
		t.Error("conflicting bond table accepted")
	}
}

func TestFromResultRequiresState(t *testing.T) {
	cfg := core.Default(2, 50)
	cfg.Seed = 1
	res, err := core.Run(cfg, 2) // CollectState off
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromResult(&cfg, res, 2); err == nil {
		t.Error("stateless result accepted")
	}
}

// TestORBTreeRoundTrip: a distributed ORB run's adopted cut tree rides
// the snapshot through the framed wire format and comes back as
// Config.InitTree, Equal to the original; a snapshot without a tree
// leaves InitTree untouched; a corrupted tree payload is rejected.
func TestORBTreeRoundTrip(t *testing.T) {
	cfg := runCfg(300)
	cfg.Mode = core.MPI
	cfg.P = 2
	cfg.BlocksPerProc = 4
	cfg.Rebalance = core.RebalanceORB
	res, err := core.Run(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil {
		t.Fatal("ORB run returned no cut tree snapshot")
	}
	snap, err := FromResult(&cfg, res, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.ORBTree) == 0 {
		t.Fatal("snapshot carries no encoded tree")
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := runCfg(300)
	resumed.Mode = core.MPI
	resumed.P = 2
	resumed.BlocksPerProc = 4
	resumed.Rebalance = core.RebalanceORB
	if err := got.Apply(&resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.InitTree == nil {
		t.Fatal("Apply left InitTree nil")
	}
	if !resumed.InitTree.Equal(res.Tree) {
		t.Error("restored tree differs from the captured one")
	}

	// No tree on the result -> InitTree stays nil.
	serial := runCfg(100)
	sres, err := core.Run(serial, 5)
	if err != nil {
		t.Fatal(err)
	}
	ssnap, err := FromResult(&serial, sres, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ssnap.ORBTree) != 0 {
		t.Fatal("serial snapshot carries a tree")
	}
	target := runCfg(100)
	if err := ssnap.Apply(&target); err != nil {
		t.Fatal(err)
	}
	if target.InitTree != nil {
		t.Error("Apply invented an InitTree from a treeless snapshot")
	}

	// A corrupted tree payload must fail Apply, not poison the run.
	bad := *snap
	bad.ORBTree = append([]byte(nil), snap.ORBTree...)
	bad.ORBTree[len(bad.ORBTree)-1] ^= 0x01
	broken := runCfg(300)
	broken.Mode = core.MPI
	broken.P = 2
	broken.BlocksPerProc = 4
	broken.Rebalance = core.RebalanceORB
	if err := bad.Apply(&broken); err == nil {
		t.Error("Apply accepted a corrupted tree payload")
	}
}
