package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybriddem/internal/core"
)

// validBytes returns one framed checkpoint as raw bytes.
func validBytes(t *testing.T) []byte {
	t.Helper()
	cfg := runCfg(40)
	res, err := core.Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromResult(&cfg, res, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsTornWrite: a checkpoint truncated at any boundary —
// inside the magic, inside the header, inside the payload — must come
// back as an error, never a panic or a silently short snapshot.
func TestLoadRejectsTornWrite(t *testing.T) {
	full := validBytes(t)
	cuts := []int{0, 3, 7, 8, 15, 23, headerLen, headerLen + 1, len(full) / 2, len(full) - 1}
	for _, n := range cuts {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d of %d bytes loaded successfully", n, len(full))
		}
	}
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("untruncated bytes rejected: %v", err)
	}
}

// TestLoadRejectsBitFlips: any single flipped bit — in the length, the
// checksum, or the payload — must be detected.
func TestLoadRejectsBitFlips(t *testing.T) {
	full := validBytes(t)
	offsets := []int{8, 16, headerLen, headerLen + 17, len(full) - 1}
	for _, off := range offsets {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at offset %d went undetected", off)
		}
	}
}

func TestLoadRejectsForeignBytes(t *testing.T) {
	cases := map[string][]byte{
		"empty":      nil,
		"not-magic":  []byte("this is definitely not a checkpoint file, sorry"),
		"near-magic": append([]byte("HYDEMCK2"), make([]byte, 64)...),
	}
	for name, b := range cases {
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: foreign bytes loaded successfully", name)
		}
	}
}

// TestSaveFileAtomic: SaveFile must leave exactly the finished file —
// no temp litter — and replace an existing checkpoint in one step so a
// reader never observes a partial write at the target path.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ck")

	cfg := runCfg(40)
	res, err := core.Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := FromResult(&cfg, res, 3)
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a later snapshot; the target must stay loadable
	// throughout and end up holding the new state.
	snap2, _ := FromResult(&cfg, res, 7)
	if err := SaveFile(path, snap2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iters != 7 {
		t.Errorf("loaded Iters = %d, want the overwriting snapshot's 7", got.Iters)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %q left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the checkpoint", len(entries))
	}
}

// TestLoadFileRejectsLegacyPartial: a file that is only the first half
// of a checkpoint (what a crash mid-write would leave without the
// atomic rename) must be rejected by LoadFile.
func TestLoadFileRejectsLegacyPartial(t *testing.T) {
	full := validBytes(t)
	path := filepath.Join(t.TempDir(), "torn.ck")
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("torn file loaded successfully")
	}
}
