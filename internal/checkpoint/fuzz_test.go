package checkpoint

import (
	"bytes"
	"testing"

	"hybriddem/internal/core"
)

// FuzzLoad: Load must never panic, whatever bytes it is handed — torn
// writes, bit rot, adversarial headers, random garbage. The seed
// corpus covers a valid checkpoint, systematic truncations and bit
// flips of it, and structurally hostile inputs (huge length field,
// wrong magic).
func FuzzLoad(f *testing.F) {
	cfg := core.Default(2, 30)
	cfg.Seed = 5
	cfg.CollectState = true
	res, err := core.Run(cfg, 2)
	if err != nil {
		f.Fatal(err)
	}
	snap, err := FromResult(&cfg, res, 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerLen-1])
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("HYDEMCK1\xff\xff\xff\xff\xff\xff\xff\xff\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("not a checkpoint at all"))
	for _, off := range []int{0, 9, 17, headerLen + 3} {
		if off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 1
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil && s != nil {
			t.Fatal("Load returned both a snapshot and an error")
		}
		if err == nil && s == nil {
			t.Fatal("Load returned neither a snapshot nor an error")
		}
	})
}
