package checkpoint

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hybriddem/internal/core"
)

// FuzzLoad: Load must never panic, whatever bytes it is handed — torn
// writes, bit rot, adversarial headers, random garbage. The seed
// corpus covers a valid checkpoint, systematic truncations and bit
// flips of it, and structurally hostile inputs (huge length field,
// wrong magic).
func FuzzLoad(f *testing.F) {
	cfg := core.Default(2, 30)
	cfg.Seed = 5
	cfg.CollectState = true
	res, err := core.Run(cfg, 2)
	if err != nil {
		f.Fatal(err)
	}
	snap, err := FromResult(&cfg, res, 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerLen-1])
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("HYDEMCK1\xff\xff\xff\xff\xff\xff\xff\xff\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("not a checkpoint at all"))
	for _, off := range []int{0, 9, 17, headerLen + 3} {
		if off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 1
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil && s != nil {
			t.Fatal("Load returned both a snapshot and an error")
		}
		if err == nil && s == nil {
			t.Fatal("Load returned neither a snapshot nor an error")
		}
	})
}

// FuzzApplyDecodedSnapshot hardens the component-major state layout:
// a gob payload that passes the frame checksum can still describe a
// structurally invalid Snapshot — ragged component slices, a
// dimension/length mismatch, populated components beyond D. Apply
// must reject every such shape with an error; the gather into
// cfg.Init must never index out of range. The fuzzer mutates the gob
// payload of a valid checkpoint (reframing it so Load's checksum
// passes) and replays Load+Apply.
func FuzzApplyDecodedSnapshot(f *testing.F) {
	cfg := core.Default(2, 24)
	cfg.Seed = 11
	cfg.CollectState = true
	res, err := core.Run(cfg, 2)
	if err != nil {
		f.Fatal(err)
	}
	snap, err := FromResult(&cfg, res, 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		f.Fatal(err)
	}
	payload := buf.Bytes()[headerLen:]

	f.Add(append([]byte(nil), payload...))
	// Seed a few structured mutations: truncated tails tear the state
	// arrays mid-slice, single-byte flips corrupt slice lengths.
	f.Add(payload[:len(payload)-9])
	for _, off := range []int{len(payload) / 2, len(payload) - 40, 12} {
		if off >= 0 && off < len(payload) {
			mut := append([]byte(nil), payload...)
			mut[off] ^= 0x40
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		// Reframe so the mutated gob reaches the decoder.
		var file bytes.Buffer
		var hdr [headerLen]byte
		copy(hdr[:8], magic[:])
		binary.BigEndian.PutUint64(hdr[8:16], uint64(len(body)))
		binary.BigEndian.PutUint64(hdr[16:24], fnv1a(body))
		file.Write(hdr[:])
		file.Write(body)

		s, err := Load(&file)
		if err != nil {
			return // frame or gob rejected the mutation, as designed
		}
		applyCfg := core.Default(2, 24)
		applyCfg.Seed = 11
		if err := s.Apply(&applyCfg); err != nil {
			return // structural validation rejected it
		}
		// An accepted snapshot must have produced a full, well-formed
		// initial state.
		if applyCfg.Init == nil || len(applyCfg.Init.Pos) != applyCfg.N || len(applyCfg.Init.Vel) != applyCfg.N {
			t.Fatalf("Apply accepted a snapshot but built state with %d/%d particles",
				len(applyCfg.Init.Pos), len(applyCfg.Init.Vel))
		}
	})
}
