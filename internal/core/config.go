// Package core contains the paper's contribution: one DEM simulation
// driven through four execution modes — serial, shared-memory
// (OpenMP-style thread team), message-passing (block-cyclic domain
// decomposition over the mp runtime) and hybrid (both at once, threads
// inside each rank). A single set of kernels backs all four, the Go
// equivalent of the paper's "single set of source files ... compiled
// to produce efficient serial, OpenMP, MPI and hybrid codes".
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"hybriddem/internal/decomp"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/machine"
	"hybriddem/internal/mp"
	"hybriddem/internal/shm"
	"hybriddem/internal/trace"
)

// Mode selects the parallelisation model.
type Mode int

const (
	Serial Mode = iota
	OpenMP
	MPI
	Hybrid
	// MPIsm is the MPI-3 shared-memory hybrid (MPI+MPI_sm): one rank per
	// CPU like MPI, but ranks sharing an SMP node serve each other's
	// halo refresh through fenced shared-window loads instead of
	// messages; only inter-node legs travel as messages.
	MPIsm
)

// modeNames is the single source of truth tying Mode constants to their
// command-line names: String(), ModeByName and ModeNames all derive
// from it, so adding a mode here is the only step needed to plumb it
// through every front end's -mode flag.
var modeNames = [...]struct {
	mode Mode
	name string
}{
	{Serial, "serial"},
	{OpenMP, "openmp"},
	{MPI, "mpi"},
	{Hybrid, "hybrid"},
	{MPIsm, "mpism"},
}

// Modes lists every declared execution mode in declaration order.
func Modes() []Mode {
	ms := make([]Mode, len(modeNames))
	for i, e := range modeNames {
		ms[i] = e.mode
	}
	return ms
}

// ModeNames returns the command-line names of all modes, in declaration
// order — the canonical content of a -mode flag's help text.
func ModeNames() []string {
	ns := make([]string, len(modeNames))
	for i, e := range modeNames {
		ns[i] = e.name
	}
	return ns
}

// ModeByName resolves a command-line mode name (case-insensitive). The
// error lists the valid names.
func ModeByName(name string) (Mode, error) {
	for _, e := range modeNames {
		if strings.EqualFold(name, e.name) {
			return e.mode, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q (valid: %s)", name, strings.Join(ModeNames(), " | "))
}

func (m Mode) String() string {
	for _, e := range modeNames {
		if e.mode == m {
			return e.name
		}
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// distributedNames lists the command-line names of the modes
// RunDistributed and Supervise accept, derived from the same name
// table as flag parsing so rejection messages and -mode help text
// always agree.
func distributedNames() string {
	var ns []string
	for _, e := range modeNames {
		switch e.mode {
		case MPI, Hybrid, MPIsm:
			ns = append(ns, e.name)
		}
	}
	return strings.Join(ns, " | ")
}

// sharedNames is distributedNames for RunShared's modes.
func sharedNames() string {
	var ns []string
	for _, e := range modeNames {
		switch e.mode {
		case Serial, OpenMP:
			ns = append(ns, e.name)
		}
	}
	return strings.Join(ns, " | ")
}

// ErrCanceled reports that a run stopped early because Config.Stop
// asked it to. The run is not lost: the Result returned alongside the
// error is valid up to the step boundary the cancellation landed on —
// Iters holds the measured iterations actually completed, and with
// CollectState set Pos/Vel hold the state at that boundary, exactly
// what checkpoint.FromResult needs to make the cancellation resumable.
// Test with errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("core: run canceled")

// stopGrace bounds the latency of a latched Stop request: a run that
// has not reached a natural list-rebuild boundary within this many
// further measured steps stops anyway, giving up the bit-exact-resume
// property for liveness. Rebuild cadence is displacement-driven, so
// any system in motion rebuilds far more often than this; the bound
// exists for settled beds that might otherwise never honour a cancel.
const stopGrace = 256

// Strategy selects the dynamic load-balancing algorithm of the
// distributed modes. It aliases the decomp type so the name table
// (StrategyByName, StrategyNames — the -rebalance analogue of the
// ModeByName idiom) lives next to the balancers themselves.
type Strategy = decomp.Strategy

const (
	// RebalanceOff keeps the static block-cyclic deal.
	RebalanceOff = decomp.StrategyOff
	// RebalanceLPT re-deals whole blocks with the deterministic
	// longest-processing-time-first heuristic.
	RebalanceLPT = decomp.StrategyLPT
	// RebalanceORB recuts the box with the orthogonal recursive
	// bisection tree, giving each rank one contiguous brick of blocks.
	RebalanceORB = decomp.StrategyORB
)

// StrategyByName resolves a command-line rebalance-strategy name
// (case-insensitive); the error lists the valid names.
func StrategyByName(name string) (Strategy, error) { return decomp.StrategyByName(name) }

// StrategyNames returns the command-line names of all rebalance
// strategies, in declaration order.
func StrategyNames() []string { return decomp.StrategyNames() }

// Strategies lists every declared rebalance strategy.
func Strategies() []Strategy { return decomp.Strategies() }

// StrategyFlag adapts a Strategy to the flag.Value interface, keeping
// the historical boolean spellings of -rebalance alive (bare flag =
// lpt, =false = off) alongside the strategy names.
type StrategyFlag = decomp.StrategyFlag

// Config describes one simulation run. The zero value is unusable;
// start from Default and override.
type Config struct {
	D    int           // spatial dimensions, 2 or 3 for the paper's benchmarks
	N    int           // number of particles
	L    float64       // box edge
	BC   geom.Boundary // periodic or reflecting walls
	Seed int64

	Spring   force.Spring // inter-particle force; Diameter is rmax
	RCFactor float64      // cutoff rc = RCFactor * rmax (paper: 1.5, 2.0)
	Dt       float64      // time step

	Gravity float64 // acceleration along the last dimension (sand piles)

	// FillHeight, when in (0, 1), compresses the initial positions
	// into the bottom fraction of the box along the last dimension —
	// a settled bed of grains, the clustered workload that motivates
	// the paper's load-balancing comparison. Zero or one fills the
	// whole box uniformly.
	FillHeight float64

	// Init, when non-nil, supplies an explicit initial condition
	// (positions and velocities indexed by particle ID, both of
	// length N) and overrides the random fills. Composite-grain
	// packings enter this way.
	Init *State

	// Timeline, when non-nil, records per-rank phase spans (comm,
	// force, update, rebuild) in virtual time — the profiling the
	// paper's Further Work performs with OMPItrace/Paraver. See
	// cmd/demtrace.
	Timeline *trace.Timeline

	// Probe, when non-nil, receives the complete global state
	// (positions and velocities indexed by particle ID, freshly
	// allocated — the callback may keep the slices) after every
	// measured iteration. In distributed modes the state is gathered
	// onto rank 0 and the probe fires there; the gather traffic is
	// charged to the virtual clocks like any other communication, so
	// probed runs are for correctness work (internal/verify), not for
	// timing.
	Probe func(iter int, pos, vel []geom.Vec)

	// Stop, when non-nil, is polled after every measured step: when it
	// returns true the request is latched and the run stops at the next
	// step that ends in a list rebuild, returning its partial Result
	// together with ErrCanceled instead of tearing the process down and
	// losing everything since the last on-disk checkpoint. Rebuild
	// boundaries are the canonical states — fresh link list, reference
	// positions just reset, store reordered — which is what lets a
	// checkpoint taken from the partial Result resume bit-identically
	// to an uninterrupted run (the same invariant Supervise exploits by
	// snapshotting only at rebuilds). One caveat: in the shared modes
	// the cache reordering makes the within-cell storage order depend
	// on the order before the rebuild, which a fresh setup cannot
	// reproduce — bit-exact resume in Serial/OpenMP therefore also
	// needs Reorder off; the distributed modes canonicalise particle
	// order during migration and are exact regardless. A system too
	// settled to rebuild
	// still honours the request after at most stopGrace further steps,
	// trading that bit-exactness (the resumed trajectory then agrees to
	// integration tolerance, not bitwise) for bounded latency. In the
	// distributed modes rank 0 polls the hook and the decision is
	// agreed through a one-element allreduce, so every rank leaves the
	// step loop at the same iteration and the final gather/collectives
	// stay aligned; the hook must therefore be cheap (typically an
	// atomic-flag load) — it runs once per measured iteration. Warm-up
	// iterations are not interruptible, because a resume skips the
	// warm-up and a partial one could not be replayed bit-identically.
	Stop func() bool

	// OnStep, when non-nil, receives the step index and the globally
	// reduced energies after every measured iteration — on rank 0 in
	// the distributed modes, where the values are already allreduced
	// for the energy accounting, so the hook costs no extra traffic
	// (unlike Probe's full-state gather). The service daemon streams
	// these as per-step events to its subscribers. Under Supervise the
	// hook fires exactly once per iteration even across rollbacks.
	OnStep func(iter int, epot, ekin float64)

	// NaivePack is the indexed-datatype ablation: halo data pays an
	// extra user-side pack and unpack per particle per swap, as it
	// would without the paper's cached MPI indexed datatypes.
	NaivePack bool

	// SelfMessage is the fast-path ablation: same-rank halo legs are
	// charged as messages through the runtime instead of direct
	// copies ("the communications routines are actually only called
	// when P > 1").
	SelfMessage bool

	Reorder bool // cell-order particle reordering at every list rebuild

	// Float32 switches the serial pair kernel to the single-precision
	// fast path: pair geometry evaluates on float32 mirrors of the
	// positions while forces and energies still accumulate in float64.
	// Trajectories are NOT bit-identical to the double-precision
	// kernel — verify.CompareApprox bounds the drift. Serial mode
	// only, incompatible with bond tables.
	Float32 bool

	Mode          Mode
	P             int        // MPI ranks (MPI/Hybrid)
	T             int        // threads (OpenMP/Hybrid)
	BlocksPerProc int        // B/P granularity (MPI/Hybrid)
	Method        shm.Method // force-update protection (OpenMP/Hybrid)
	Fused         bool       // single fused region over all blocks (Section 11 further work)

	// Rebalance selects dynamic block→rank load balancing in the
	// distributed modes: at every list rebuild the ranks exchange a
	// per-block cost vector (links + core particles, EWMA-smoothed), a
	// deterministic repartitioner computes a new ownership map, and
	// whole blocks migrate to their new ranks (hysteresis keeps
	// near-balanced maps stable). RebalanceLPT re-deals whole blocks by
	// cost; RebalanceORB recuts the box with an orthogonal recursive
	// bisection tree so each rank owns one contiguous brick of blocks.
	// Trajectories are bit-identical to the static block-cyclic layout
	// under either strategy — ownership is bookkeeping, only the
	// modelled per-rank load changes. Ignored by the serial and
	// pure-OpenMP modes. RebalanceOff (the zero value) by default.
	Rebalance Strategy

	// RebalanceHyst overrides the repartition hysteresis: a candidate
	// map is adopted only when the current map's predicted peak load
	// exceeds the candidate's by more than this relative margin.
	// Tighter values track a moving load more closely at the price of
	// more migration traffic; 0 keeps decomp.DefaultRebalanceHyst.
	RebalanceHyst float64

	// InitTree, when non-nil with RebalanceORB, seeds the run's
	// decomposition with a previously adopted ORB tree (restored from a
	// checkpoint), so a resumed run starts from the ownership it was
	// snapshotted with instead of re-adapting from the cyclic deal. It
	// is ignored when its shape does not match the run's layout (e.g.
	// after a degrade-and-recover changed the rank count).
	InitTree *decomp.ORBTree

	// Overlap enables the split-phase halo exchange in the distributed
	// modes: the step posts the exchange, accumulates core-link forces
	// while the messages are in flight, then completes the exchange and
	// accumulates halo-link forces; the end-of-step energy allreduce is
	// likewise overlapped with the rebuild vote. Trajectories are
	// bit-identical to the synchronous exchange — only the modelled
	// timeline changes, charging max(comm, core compute) instead of
	// their sum. Ignored by the serial and pure-OpenMP modes.
	Overlap bool

	// Platform supplies the virtual cost model; nil runs with free
	// (zero-cost) modelling, which correctness tests use.
	Platform *machine.Platform

	// ModelN, when nonzero, tells the cost model to scale the
	// measured locality metric as though the run had ModelN particles
	// instead of N. The experiment harness runs scaled-down systems
	// while modelling the paper's 10^6-particle cache behaviour; the
	// metric grows roughly linearly with particle count for both
	// random and cell-ordered layouts, so the scaled window lands on
	// the correct side of each platform's cache size.
	ModelN int

	// InitVel draws initial velocity components uniformly from
	// [-InitVel, InitVel]; zero leaves particles at rest (with a
	// uniform random overlap-rich packing the springs start the
	// motion immediately).
	InitVel float64

	Warmup int // iterations run before measurement starts

	// CollectState gathers final positions and velocities (indexed by
	// particle ID) into the Result; used by equivalence tests and the
	// examples, off for benchmarks.
	CollectState bool

	// Faults installs a chaos schedule on the distributed modes'
	// message runtime: an injected rank kill at a chosen step, plus
	// probabilistic corruption, duplication and delay of point-to-point
	// payloads. Detected faults surface from Run as *fault.Error;
	// Supervise recovers from them. Ignored by the serial and
	// pure-OpenMP modes. nil injects nothing.
	Faults *mp.FaultPlan

	// Watchdog bounds every blocking receive, collective wait and halo
	// gate drain in the distributed modes: an operation blocked longer
	// surfaces as a typed Timeout fault instead of a hang. It also
	// makes an injected kill silent (peers discover the death only
	// through their deadlines, as with a real node loss). 0 disables
	// the watchdog; faults then fail fast by aborting all ranks.
	Watchdog time.Duration

	// NoIntegrity disables the per-message sequence numbers and
	// checksums on the distributed modes' point-to-point traffic.
	// Integrity is on by default; this exists for the X9 overhead
	// ablation and cannot be combined with corruption/duplication
	// injection.
	NoIntegrity bool
}

// Default returns the paper's benchmark configuration scaled to n
// particles: identical elastic spheres of diameter 0.05 at the paper's
// density (L chosen so n/L^D matches 10^6 particles in 50^2 or 5^3).
func Default(d, n int) Config {
	if d < 1 || d > geom.MaxD {
		panic(fmt.Sprintf("core: dimension %d", d))
	}
	var refN float64 = 1e6
	var refL float64
	switch d {
	case 2:
		refL = 50
	case 3:
		refL = 5
	default:
		refL = 2500 // keep 1-D linear density consistent
	}
	// L so that n / L^d matches the paper's density.
	l := refL
	if n != int(refN) {
		l = refL * math.Pow(float64(n)/refN, 1.0/float64(d))
	}
	return Config{
		D:        d,
		N:        n,
		L:        l,
		BC:       geom.Periodic,
		Seed:     1,
		Spring:   force.Spring{Diameter: 0.05, K: 500, Damp: 0},
		RCFactor: 1.5,
		Dt:       5e-5,
		Reorder:  true,
		Overlap:  true,
		Mode:     Serial,
		P:        1,
		T:        1,
		Method:   shm.SelectedAtomic,

		BlocksPerProc: 1,
	}
}

// Validate reports configuration errors early.
func (c *Config) Validate() error {
	if c.D < 1 || c.D > geom.MaxD {
		return fmt.Errorf("core: D=%d out of range", c.D)
	}
	if c.N < 1 {
		return fmt.Errorf("core: N=%d", c.N)
	}
	if c.L <= 0 {
		return fmt.Errorf("core: L=%g", c.L)
	}
	if c.Spring.Diameter <= 0 || c.Spring.K < 0 || c.Spring.Damp < 0 {
		return fmt.Errorf("core: bad spring %+v", c.Spring)
	}
	if c.RCFactor <= 1 {
		return fmt.Errorf("core: RCFactor=%g must exceed 1 so the list outlives a step", c.RCFactor)
	}
	if c.Dt <= 0 {
		return fmt.Errorf("core: Dt=%g", c.Dt)
	}
	if c.P < 1 || c.T < 1 || c.BlocksPerProc < 1 {
		return fmt.Errorf("core: P=%d T=%d BlocksPerProc=%d", c.P, c.T, c.BlocksPerProc)
	}
	if c.Init != nil && (len(c.Init.Pos) != c.N || len(c.Init.Vel) != c.N) {
		return fmt.Errorf("core: Init has %d positions and %d velocities for N=%d",
			len(c.Init.Pos), len(c.Init.Vel), c.N)
	}
	if bt := c.Spring.Bonds; bt != nil && bt.MaxRest() >= c.RC() {
		return fmt.Errorf("core: longest bond rest length %g reaches the cutoff %g; bonded pairs would leave the link list",
			bt.MaxRest(), c.RC())
	}
	if c.Float32 {
		if c.Mode != Serial {
			return fmt.Errorf("core: Float32 fast path is serial-only (mode %v)", c.Mode)
		}
		if c.Spring.Bonds != nil {
			return fmt.Errorf("core: Float32 fast path does not support bond tables")
		}
	}
	switch c.Mode {
	case Serial:
		if c.P != 1 || c.T != 1 {
			return fmt.Errorf("core: serial mode with P=%d T=%d", c.P, c.T)
		}
	case OpenMP:
		if c.P != 1 {
			return fmt.Errorf("core: openmp mode with P=%d", c.P)
		}
	case MPI, MPIsm:
		if c.T != 1 {
			return fmt.Errorf("core: %v mode with T=%d", c.Mode, c.T)
		}
	case Hybrid:
		// any P, T combination
	default:
		return fmt.Errorf("core: unrecognised mode %v (valid: %s)", c.Mode, strings.Join(ModeNames(), " | "))
	}
	if !c.Rebalance.Valid() {
		return fmt.Errorf("core: unrecognised rebalance strategy %d (valid: %s)",
			int(c.Rebalance), strings.Join(StrategyNames(), " | "))
	}
	return nil
}

// needsHaloVel reports whether halo traffic must carry velocities:
// the force law reads relative velocities whenever any damping is
// active.
func (c *Config) needsHaloVel() bool {
	if c.Spring.Damp > 0 {
		return true
	}
	return c.Spring.Bonds != nil && c.Spring.Bonds.Damp > 0
}

// modelDist rescales a measured locality metric to the modelled
// particle count.
func (c *Config) modelDist(meanDist float64) float64 {
	if c.ModelN <= 0 || c.ModelN == c.N {
		return meanDist
	}
	return meanDist * float64(c.ModelN) / float64(c.N)
}

// workScale returns the factor by which per-work-item costs are
// multiplied to model ModelN particles: work counts (links, updates,
// positions) grow linearly with the particle number.
func (c *Config) workScale() float64 {
	if c.ModelN <= 0 || c.ModelN == c.N {
		return 1
	}
	return float64(c.ModelN) / float64(c.N)
}

// surfScale returns the factor applied to exchange volumes (halo and
// migration traffic), which grow with the block surfaces:
// (ModelN/N)^((D-1)/D).
func (c *Config) surfScale() float64 {
	ws := c.workScale()
	if ws == 1 {
		return 1
	}
	return math.Pow(ws, float64(c.D-1)/float64(c.D))
}

// atomicScale returns the factor applied to protected-update costs:
// full-atomic locking locks every update (bulk scaling) while the
// selected-atomic conflict set lives on thread-chunk boundaries
// (surface scaling).
func (c *Config) atomicScale() float64 {
	if c.Method == shm.SelectedAtomic {
		return c.surfScale()
	}
	return c.workScale()
}

// RC returns the cutoff distance.
func (c *Config) RC() float64 { return c.RCFactor * c.Spring.Diameter }

// Skin returns the displacement bound after which the link list may
// miss an interacting pair: half of (rc - rmax).
func (c *Config) Skin() float64 { return (c.RC() - c.Spring.RMax()) / 2 }

// Box returns the global simulation box.
func (c *Config) Box() geom.Box { return geom.NewBox(c.D, c.L, c.BC) }

// State is an explicit initial condition indexed by particle ID.
type State struct {
	Pos []geom.Vec
	Vel []geom.Vec
}

// Result reports one run's measurements.
type Result struct {
	Mode  Mode
	Iters int

	// PerIter is the modelled time per measured iteration on the
	// virtual platform: the maximum over ranks of per-iteration
	// virtual time for the force + update (+ halo swap + energy)
	// phases, excluding link generation, exactly as the paper times.
	PerIter float64

	// TotalTime is the modelled wall time per measured iteration: the
	// slowest rank's full virtual clock over the measured window,
	// divided by the iteration count. Unlike PerIter it includes
	// everything between the timed phases — link rebuilds, particle
	// migration, and dynamic repartition (the cost allreduce, owner
	// updates, and block transfers) — so it is the number that exposes
	// a load balancer's own overhead. Shared-memory runs include
	// rebuild time only (they have no migration or repartition).
	TotalTime float64

	// Wall is the real host time for the measured iterations.
	Wall time.Duration

	// Phase breakdown of PerIter (rank-0 attribution). CommTime is the
	// halo exchange alone; CollTime is the end-of-step energy/vote
	// collective, kept separate because a rank blocked there is waiting
	// out the slowest rank — on imbalanced systems it is the imbalance
	// itself, not message traffic.
	ForceTime, UpdateTime, CommTime, CollTime float64

	Epot, Ekin float64 // final energies
	NLinks     int64   // links at last rebuild (global)
	Rebuilds   int     // list reconstructions during measurement

	MeanLinkDist   float64 // locality metric of the final list
	AtomicFraction float64 // protected fraction under selected-atomic

	// Imbalance is the per-rank load imbalance ratio of the measured
	// window: max over ranks of (force + update time) divided by the
	// mean over ranks. 1 is perfect balance; only distributed modes set
	// it (serial and pure-OpenMP report 0).
	Imbalance float64

	TC trace.Counters // aggregated counters (all ranks and threads)

	// Tree is the ORB decomposition adopted by the end of the run
	// (rank 0's private copy); nil unless the run used RebalanceORB.
	// Checkpoints embed it so a resumed run keeps its decomposition.
	Tree *decomp.ORBTree

	// Final state indexed by particle ID; nil unless CollectState.
	Pos, Vel []geom.Vec
}

// Efficiency returns the parallel efficiency of this result against a
// reference: (ref.PerIter / PerIter) / scale. Callers choose scale =
// P/P0 for speedup-style plots or 1 for granularity plots.
func (r *Result) Efficiency(ref *Result, scale float64) float64 {
	if r.PerIter == 0 || scale == 0 {
		return 0
	}
	return ref.PerIter / r.PerIter / scale
}
