package core

import (
	"math"
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/shm"
)

// testConfig returns a small, fast configuration at the paper's
// density with enough motion to force several list rebuilds.
func testConfig(d, n int) Config {
	cfg := Default(d, n)
	cfg.InitVel = 2.0
	cfg.Seed = 42
	cfg.CollectState = true
	return cfg
}

func maxPosErr(t *testing.T, box geom.Box, a, b *Result) float64 {
	t.Helper()
	if len(a.Pos) != len(b.Pos) {
		t.Fatalf("state sizes differ: %d vs %d", len(a.Pos), len(b.Pos))
	}
	maxd := 0.0
	for i := range a.Pos {
		d := math.Sqrt(box.Dist2(a.Pos[i], b.Pos[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

func TestSerialEnergyAndMomentum(t *testing.T) {
	for _, d := range []int{2, 3} {
		cfg := testConfig(d, 300)
		res, err := RunShared(cfg, 200)
		if err != nil {
			t.Fatal(err)
		}
		if res.NLinks == 0 {
			t.Fatalf("D=%d: no links built", d)
		}
		if res.Rebuilds == 0 {
			t.Errorf("D=%d: expected at least one list rebuild in 200 steps", d)
		}
		etot := res.Epot + res.Ekin
		if math.IsNaN(etot) || etot <= 0 {
			t.Fatalf("D=%d: bad total energy %g", d, etot)
		}
	}
}

func TestOpenMPMatchesSerial(t *testing.T) {
	const iters = 120
	for _, d := range []int{2, 3} {
		cfg := testConfig(d, 250)
		serial, err := RunShared(cfg, iters)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range shm.Methods {
			cfg := testConfig(d, 250)
			cfg.Mode = OpenMP
			cfg.T = 3
			cfg.Method = m
			res, err := RunShared(cfg, iters)
			if err != nil {
				t.Fatalf("D=%d %v: %v", d, m, err)
			}
			if e := maxPosErr(t, cfg.Box(), serial, res); e > 1e-7 {
				t.Errorf("D=%d method %v: max position deviation %g", d, m, e)
			}
		}
	}
}

func TestMPIMatchesSerial(t *testing.T) {
	const iters = 120
	for _, d := range []int{2, 3} {
		cfg := testConfig(d, 250)
		serial, err := RunShared(cfg, iters)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 4} {
			for _, bpp := range []int{1, 4} {
				cfg := testConfig(d, 250)
				cfg.Mode = MPI
				cfg.P = p
				cfg.BlocksPerProc = bpp
				res, err := RunDistributed(cfg, iters)
				if err != nil {
					t.Fatalf("D=%d P=%d B/P=%d: %v", d, p, bpp, err)
				}
				if e := maxPosErr(t, cfg.Box(), serial, res); e > 1e-7 {
					t.Errorf("D=%d P=%d B/P=%d: max position deviation %g", d, p, bpp, e)
				}
			}
		}
	}
}

func TestHybridMatchesSerial(t *testing.T) {
	const iters = 100
	for _, d := range []int{2, 3} {
		cfg := testConfig(d, 250)
		serial, err := RunShared(cfg, iters)
		if err != nil {
			t.Fatal(err)
		}
		for _, fused := range []bool{false, true} {
			cfg := testConfig(d, 250)
			cfg.Mode = Hybrid
			cfg.P = 2
			cfg.T = 2
			cfg.BlocksPerProc = 2
			cfg.Method = shm.SelectedAtomic
			cfg.Fused = fused
			res, err := RunDistributed(cfg, iters)
			if err != nil {
				t.Fatalf("D=%d fused=%v: %v", d, fused, err)
			}
			if e := maxPosErr(t, cfg.Box(), serial, res); e > 1e-7 {
				t.Errorf("D=%d fused=%v: max position deviation %g", d, fused, e)
			}
		}
	}
}
