package core

import (
	"fmt"
	"math/rand"
	"time"

	"hybriddem/internal/cell"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/machine"
	"hybriddem/internal/particle"
	"hybriddem/internal/shm"
	"hybriddem/internal/trace"
)

// sharedSim is the single-address-space simulation backing both the
// Serial and OpenMP modes: one store, one cell grid over the whole
// (possibly periodic) box, no halos.
type sharedSim struct {
	cfg     Config
	box     geom.Box
	ps      *particle.Store
	grid    *cell.Grid
	list    *cell.List
	listBuf cell.ListBuffer // serial-path link storage, reused across rebuilds
	ref     geom.Coords     // position snapshot at last rebuild, reused

	team *shm.Team // nil in Serial mode
	upd  *shm.Updater

	f32 force.F32Scratch // single-precision mirrors for the Float32 path

	clock    float64 // serial-mode virtual clock
	tc       trace.Counters
	rebuilds int
	meanDist float64

	linkCost, contactCost, updCost, partCost float64

	epot, ekin float64
	iter       int

	forceTime, updateTime float64
}

// span records a phase interval on the configured timeline (rank 0).
func (s *sharedSim) span(phase string, t0, t1 float64) {
	if tl := s.cfg.Timeline; tl != nil {
		tl.Add(0, s.iter, phase, t0, t1)
	}
}

// newSharedSim builds and initialises the simulation, including the
// first link-list construction.
func newSharedSim(cfg Config) (*sharedSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &sharedSim{cfg: cfg, box: cfg.Box()}
	s.ps = particle.New(cfg.D, cfg.N)
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch {
	case cfg.Init != nil:
		for i := 0; i < cfg.N; i++ {
			s.ps.Append(cfg.Init.Pos[i], cfg.Init.Vel[i], int32(i))
		}
	case cfg.FillHeight > 0 && cfg.FillHeight < 1:
		particle.FillClustered(s.ps, cfg.N, s.box, cfg.FillHeight, cfg.InitVel, 0, rng)
	case cfg.InitVel > 0:
		particle.FillUniformVel(s.ps, cfg.N, s.box, cfg.InitVel, 0, rng)
	default:
		particle.FillUniform(s.ps, cfg.N, s.box, 0, rng)
	}
	if cfg.Mode == OpenMP {
		s.team = shm.NewTeam(cfg.T, shm.Costs{})
		s.upd = shm.NewUpdater(cfg.Method)
	}
	// The whole-box grid geometry never changes, so one grid (and its
	// reused binning scratch) serves every rebuild.
	wrap := s.box.BC == geom.Periodic
	s.grid = cell.NewGrid(cfg.D, geom.Vec{}, s.box.Len, cfg.RC(), wrap)
	s.rebuild()
	return s, nil
}

// close releases the thread team's parked workers (no-op in Serial
// mode).
func (s *sharedSim) close() {
	if s.team != nil {
		s.team.Close()
	}
}

// listMeanDist returns the mean |i-j| across a link list, the
// locality metric the cache model consumes.
func listMeanDist(links []cell.Link) float64 {
	if len(links) == 0 {
		return 0
	}
	var sum int64
	for _, l := range links {
		d := int64(l.I) - int64(l.J)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(len(links))
}

// rebuild reconstructs the cell binning and link list, applying the
// optional cache reordering, and rederives the platform costs for the
// new locality.
func (s *sharedSim) rebuild() {
	cfg := &s.cfg
	rc := cfg.RC()
	// In OpenMP mode the list generation itself runs thread-parallel,
	// as in the paper's Section 7 (binning over particles, link
	// generation over cells); the results are bit-identical to the
	// serial path.
	bin := func() {
		if s.team != nil {
			s.grid.BinParallel(&s.ps.Pos, cfg.N, shm.TeamPool{Team: s.team}, &s.tc)
		} else {
			s.grid.Bin(&s.ps.Pos, cfg.N, &s.tc)
		}
	}
	bin()
	if cfg.Reorder {
		s.ps.Permute(s.grid.Order())
		s.tc.ReorderMoves += int64(cfg.N)
		bin()
	}
	if s.team != nil {
		s.list = s.grid.BuildLinksParallel(&s.ps.Pos, cfg.N, cfg.N, rc*rc, s.box, shm.TeamPool{Team: s.team}, &s.tc)
	} else {
		s.list = s.grid.BuildLinksInto(&s.listBuf, &s.ps.Pos, cfg.N, cfg.N, rc*rc, s.box, &s.tc)
	}
	for k := 0; k < cfg.D; k++ {
		s.ref[k] = append(s.ref[k][:0], s.ps.Pos[k][:cfg.N]...)
	}
	s.meanDist = listMeanDist(s.list.Links)
	s.rebuilds++

	if pf := cfg.Platform; pf != nil {
		cp := machine.CostParams{D: cfg.D, MeanLinkDist: cfg.modelDist(s.meanDist), ActivePerNode: cfg.T}
		ws := cfg.workScale()
		// Particle-array traffic is per particle per pass; amortise it
		// over the links so the kernels can charge a single per-link
		// figure.
		memPerLink := 0.0
		if n := len(s.list.Links); n > 0 {
			memPerLink = pf.ForceMemCost(cp) * float64(cfg.N) / float64(n)
		}
		s.linkCost = (pf.LinkCost(cp) + memPerLink) * ws
		s.contactCost = pf.ContactPairCost(cp) * ws
		s.updCost = pf.UpdateCost(cp) * ws
		s.partCost = pf.ParticleCost(cp) * ws
		if s.team != nil {
			costs := pf.ShmCosts(cfg.T, cp)
			costs.PerLink += memPerLink
			s.team.SetCosts(costs.ScaleWork(ws, cfg.atomicScale()))
		}
	}
	if s.upd != nil {
		s.upd.Prepare(s.list.Links, s.ps.Len(), cfg.N, cfg.T)
	}
}

// nowClock returns the virtual clock (team clock when threaded).
func (s *sharedSim) nowClock() float64 {
	if s.team != nil {
		return s.team.Clock()
	}
	return s.clock
}

// step advances the simulation by one iteration: force over the link
// list, then position update, then the list-validity check with a
// rebuild when the skin is exhausted. It returns the modelled seconds
// attributed to the timed (force+update) portion.
func (s *sharedSim) step() float64 {
	cfg := &s.cfg
	s.iter++
	t0 := s.nowClock()

	// Force phase.
	f0 := s.nowClock()
	if s.team == nil {
		s.ps.ZeroForces()
		c0 := s.tc.Contacts
		if cfg.Float32 {
			s.epot = cfg.Spring.AccumulateF32(s.ps, s.list.Links, cfg.N, s.box, 1, &s.f32, &s.tc)
		} else {
			s.epot = cfg.Spring.Accumulate(s.ps, s.list.Links, cfg.N, s.box, 1, &s.tc)
		}
		n := int64(len(s.list.Links))
		s.clock += float64(n)*s.linkCost +
			float64(s.tc.Contacts-c0)*s.contactCost +
			2*float64(n)*s.updCost
	} else {
		shm.ZeroForcesParallel(s.team, s.ps, cfg.N)
		s.epot = s.upd.Accumulate(s.team, cfg.Spring, s.ps, s.list.Links, len(s.list.Links), cfg.N, s.box)
	}
	if cfg.Gravity != 0 {
		force.ApplyGravity(s.ps, cfg.N, cfg.D-1, cfg.Gravity)
	}
	s.forceTime += s.nowClock() - f0
	s.span("force", f0, s.nowClock())

	// Update phase.
	u0 := s.nowClock()
	if s.team == nil {
		force.Integrate(s.ps, cfg.N, cfg.Dt, s.box, force.WrapGlobal, &s.tc)
		s.clock += float64(cfg.N) * s.partCost
	} else {
		shm.IntegrateParallel(s.team, s.ps, cfg.N, cfg.Dt, s.box, force.WrapGlobal)
	}
	s.ekin = force.KineticEnergy(s.ps, cfg.N)
	s.updateTime += s.nowClock() - u0
	s.span("update", u0, s.nowClock())

	elapsed := s.nowClock() - t0

	// List validity (outside the timed window, like the paper's
	// excluded link generation).
	skin := cfg.Skin()
	if s.ps.MaxDisp2(&s.ref, cfg.N, s.box) >= skin*skin {
		b0 := s.nowClock()
		s.rebuild()
		s.span("rebuild", b0, s.nowClock())
	}
	return elapsed
}

// collect returns the current state indexed by particle ID.
func (s *sharedSim) collect() (pos, vel []geom.Vec) {
	n := s.cfg.N
	pos = make([]geom.Vec, n)
	vel = make([]geom.Vec, n)
	for i := 0; i < n; i++ {
		pos[s.ps.ID[i]] = s.ps.PosAt(i)
		vel[s.ps.ID[i]] = s.ps.VelAt(i)
	}
	return pos, vel
}

// RunShared executes a Serial or OpenMP run for the configured warmup
// plus iters measured iterations. When cfg.Stop reports cancellation
// the partial Result (Iters = completed steps) is returned together
// with ErrCanceled.
func RunShared(cfg Config, iters int) (*Result, error) {
	if cfg.Mode != Serial && cfg.Mode != OpenMP {
		return nil, fmt.Errorf("core: RunShared with mode %s (shared modes: %s)", cfg.Mode, sharedNames())
	}
	s, err := newSharedSim(cfg)
	if err != nil {
		return nil, err
	}
	defer s.close()
	for i := 0; i < cfg.Warmup; i++ {
		s.step()
	}
	// Reset measurement state after warmup.
	s.forceTime, s.updateTime = 0, 0
	rebuilds0 := s.rebuilds
	total := 0.0
	completed := 0
	stopped := false
	clk0 := s.nowClock()
	start := time.Now()
	stopReq, grace := false, 0
	for i := 0; i < iters; i++ {
		rb := s.rebuilds
		total += s.step()
		completed++
		if cfg.Probe != nil {
			p, v := s.collect()
			cfg.Probe(i, p, v)
		}
		if cfg.OnStep != nil {
			cfg.OnStep(i, s.epot, s.ekin)
		}
		if cfg.Stop != nil {
			if !stopReq && cfg.Stop() {
				stopReq, grace = true, stopGrace
			}
			// A latched request is honoured at the next rebuild
			// boundary — the canonical state a resumed run reproduces
			// bit-exactly — or after stopGrace steps if none comes.
			if stopReq {
				if s.rebuilds > rb || grace <= 0 {
					stopped = true
					break
				}
				grace--
			}
		}
	}
	wall := time.Since(start)
	meas := float64(completed)
	if completed == 0 {
		meas = 1
	}

	res := &Result{
		Mode:      cfg.Mode,
		Iters:     completed,
		PerIter:   total / meas,
		TotalTime: (s.nowClock() - clk0) / meas,
		Wall:      wall,
		Epot:      s.epot,
		Ekin:      s.ekin,
		NLinks:    int64(len(s.list.Links)),
		Rebuilds:  s.rebuilds - rebuilds0,

		ForceTime:  s.forceTime / meas,
		UpdateTime: s.updateTime / meas,

		MeanLinkDist: s.meanDist,
	}
	res.TC = s.tc
	if s.team != nil {
		res.TC.Add(&s.team.TC)
		res.AtomicFraction = s.team.TC.AtomicFraction()
	}
	if cfg.CollectState {
		res.Pos, res.Vel = s.collect()
	}
	if stopped {
		return res, ErrCanceled
	}
	return res, nil
}
