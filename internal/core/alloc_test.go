package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"hybriddem/internal/decomp"
	"hybriddem/internal/mp"
	"hybriddem/internal/raceflag"
	"hybriddem/internal/shm"
)

// allocConfig is a small system whose particles move slowly enough
// that the link list stays valid throughout the measured window, so
// the gates observe the pure steady-state step.
func allocConfig(mode Mode) Config {
	cfg := Default(2, 400)
	cfg.Mode = mode
	cfg.Warmup = 0
	return cfg
}

// TestStepSteadyStateZeroAllocShared gates the tentpole property for
// the Serial and OpenMP drivers: after a few warm-up steps every
// buffer has reached its steady-state size and step() allocates
// nothing, for every force-update protection method.
func TestStepSteadyStateZeroAllocShared(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	run := func(name string, cfg Config) {
		t.Run(name, func(t *testing.T) {
			s, err := newSharedSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.close()
			for i := 0; i < 5; i++ {
				s.step()
			}
			if avg := testing.AllocsPerRun(20, func() { s.step() }); avg != 0 {
				t.Errorf("%s: steady-state step allocates %g times per run, want 0", name, avg)
			}
		})
	}

	run("serial", allocConfig(Serial))
	for _, m := range shm.Methods {
		cfg := allocConfig(OpenMP)
		cfg.T = 3
		cfg.Method = m
		run(fmt.Sprintf("openmp-%v", m), cfg)
	}
}

// measureDistributedAllocs runs warm-up steps on every rank, then
// counts process-wide mallocs across a fenced window of iters further
// steps. All ranks execute steps in lock-step (the energy collective
// synchronises them), so a zero delta proves every rank's step path is
// allocation-free. GC is disabled for the window so the collector's
// own bookkeeping cannot pollute the counter.
func measureDistributedAllocs(t *testing.T, cfg Config, warm, iters int) float64 {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	l, err := decomp.NewLayout(cfg.Box(), cfg.RC(), cfg.P, cfg.BlocksPerProc)
	if err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var mallocs uint64
	mp.Run(cfg.P, mp.ZeroNetwork{}, func(c *mp.Comm) {
		r := newRankSim(&cfg, c, l)
		defer r.close()
		r.dm.FillClustered(cfg.N, cfg.Seed, cfg.InitVel, cfg.FillHeight)
		r.rebuild()
		for i := 0; i < warm; i++ {
			r.step()
		}
		var m1, m2 runtime.MemStats
		c.Barrier()
		if c.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&m1)
		}
		c.Barrier()
		for i := 0; i < iters; i++ {
			r.step()
		}
		c.Barrier()
		if c.Rank() == 0 {
			runtime.ReadMemStats(&m2)
			mallocs = m2.Mallocs - m1.Mallocs
		}
		c.Barrier()
	})
	// Like testing.AllocsPerRun, truncate to an integral per-iteration
	// average: a one-off event (a goroutine stack growing mid-window)
	// is tolerated, any genuine per-step allocation reads >= 1.
	return float64(mallocs / uint64(iters))
}

// TestStepSteadyStateZeroAllocDistributed is the same gate for the
// MPI and Hybrid drivers, covering the halo refresh, the energy
// collective and the team kernels over blocks.
func TestStepSteadyStateZeroAllocDistributed(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"mpi", func() Config {
			cfg := allocConfig(MPI)
			cfg.P = 4
			return cfg
		}},
		{"hybrid", func() Config {
			cfg := allocConfig(Hybrid)
			cfg.P = 2
			cfg.T = 3
			return cfg
		}},
		{"hybrid-fused", func() Config {
			cfg := allocConfig(Hybrid)
			cfg.P = 2
			cfg.T = 3
			cfg.Fused = true
			return cfg
		}},
		// Synchronous-exchange variants: the default cases above run
		// the split-phase path (Overlap is on in Default), these pin
		// the legacy path so neither protocol regresses.
		{"mpi-sync", func() Config {
			cfg := allocConfig(MPI)
			cfg.P = 4
			cfg.Overlap = false
			return cfg
		}},
		// Rebalance-enabled variants: the dynamic load balancer runs at
		// the initial rebuild (and would run again at any rebuild in
		// the window); the steady-state step itself must stay
		// allocation-free with the knob on.
		{"mpi-rebalance", func() Config {
			cfg := allocConfig(MPI)
			cfg.P = 4
			cfg.BlocksPerProc = 4
			cfg.Rebalance = RebalanceLPT
			return cfg
		}},
		{"hybrid-rebalance", func() Config {
			cfg := allocConfig(Hybrid)
			cfg.P = 2
			cfg.T = 3
			cfg.BlocksPerProc = 4
			cfg.Rebalance = RebalanceLPT
			return cfg
		}},
		// Adaptive ORB variants: the cut-plane tree is built lazily at
		// the first rebalance epoch (the setup rebuild), so the measured
		// steady-state window must see no tree bookkeeping at all.
		{"mpi-orb", func() Config {
			cfg := allocConfig(MPI)
			cfg.P = 4
			cfg.BlocksPerProc = 4
			cfg.Rebalance = RebalanceORB
			return cfg
		}},
		{"hybrid-orb", func() Config {
			cfg := allocConfig(Hybrid)
			cfg.P = 2
			cfg.T = 3
			cfg.BlocksPerProc = 4
			cfg.Rebalance = RebalanceORB
			return cfg
		}},
		{"mpism-orb", func() Config {
			cfg := allocConfig(MPIsm)
			cfg.P = 4
			cfg.BlocksPerProc = 4
			cfg.Rebalance = RebalanceORB
			return cfg
		}},
		{"hybrid-sync", func() Config {
			cfg := allocConfig(Hybrid)
			cfg.P = 2
			cfg.T = 3
			cfg.Overlap = false
			return cfg
		}},
		// Shared-window exchange: under ZeroNetwork every rank shares
		// one node, so these run the fully windowed halo path — the
		// owner-side pack into the window, the fence rendezvous and the
		// fenced GetView/scatter must all recycle their state.
		{"mpism", func() Config {
			cfg := allocConfig(MPIsm)
			cfg.P = 4
			return cfg
		}},
		{"mpism-sync", func() Config {
			cfg := allocConfig(MPIsm)
			cfg.P = 4
			cfg.Overlap = false
			return cfg
		}},
		{"mpism-rebalance", func() Config {
			cfg := allocConfig(MPIsm)
			cfg.P = 4
			cfg.BlocksPerProc = 4
			cfg.Rebalance = RebalanceLPT
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if avg := measureDistributedAllocs(t, tc.cfg(), 5, 20); avg != 0 {
				t.Errorf("%s: steady-state step allocates %g times per iteration, want 0", tc.name, avg)
			}
		})
	}
}
