package core

import (
	"testing"

	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/grain"
	"hybriddem/internal/shm"
)

// grainConfig builds a box of falling composite grains with explicit
// initial state and a bond table.
func grainConfig(t *testing.T, d int, shape grain.Shape, grains int) Config {
	t.Helper()
	cfg := Default(d, shape.Size()*grains)
	cfg.L *= 3 // dilute: leave room for whole grains to fall freely
	cfg.BC = geom.Reflecting
	cfg.Gravity = -25
	cfg.Spring.K = 800
	cfg.Seed = 7
	cfg.CollectState = true

	gst, bonds, err := grain.Build(grain.Config{
		D: d, Shape: shape, Grains: grains,
		Diameter: cfg.Spring.Diameter,
		Box:      cfg.Box(),
		BondK:    2000, BondDamp: 4,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Init = &State{Pos: gst.Pos, Vel: gst.Vel}
	cfg.Spring.Bonds = bonds
	return cfg
}

// TestGrainsStayIntact: falling grains must keep their bonds well
// inside the cutoff (otherwise the link list would sever them).
func TestGrainsStayIntact(t *testing.T) {
	for _, shape := range []grain.Shape{grain.Dimer, grain.Trimer, grain.Tetra} {
		cfg := grainConfig(t, 2, shape, 30)
		res, err := RunShared(cfg, 400)
		if err != nil {
			t.Fatal(err)
		}
		strain := cfg.Spring.Bonds.MaxBondStrain(res.Pos, cfg.Box())
		// Bonds must stay well below the breaking point where pairs
		// would leave the neighbour list: (rc - rest)/rest = 50%.
		if strain > 0.25 {
			t.Errorf("%v: max bond strain %.3f after settling", shape, strain)
		}
	}
}

// TestGrainsMatchAcrossModes: bonded grains must follow identical
// trajectories in every execution mode, including grains whose
// members straddle block boundaries and feel their bonds through
// halo copies.
func TestGrainsMatchAcrossModes(t *testing.T) {
	const iters = 120
	serialCfg := grainConfig(t, 2, grain.Trimer, 40)
	serial, err := RunShared(serialCfg, iters)
	if err != nil {
		t.Fatal(err)
	}

	type mv struct {
		mode Mode
		p, t int
	}
	for _, m := range []mv{{OpenMP, 1, 3}, {MPI, 4, 1}, {Hybrid, 2, 2}} {
		cfg := grainConfig(t, 2, grain.Trimer, 40)
		cfg.Mode = m.mode
		cfg.P, cfg.T = m.p, m.t
		cfg.BlocksPerProc = 2
		cfg.Method = shm.SelectedAtomic
		var res *Result
		if m.mode == OpenMP {
			res, err = RunShared(cfg, iters)
		} else {
			res, err = RunDistributed(cfg, iters)
		}
		if err != nil {
			t.Fatalf("%v: %v", m.mode, err)
		}
		if e := maxPosErr(t, cfg.Box(), serial, res); e > 1e-7 {
			t.Errorf("%v: grain trajectories deviate by %g", m.mode, e)
		}
	}
}

// TestGrainEnergyDissipates: bond damping must bleed energy from a
// falling packing (after the initial gravitational acceleration the
// total energy at fixed height budget decreases); here we simply
// check the bonded run ends with less kinetic+potential spring energy
// than an elastic one.
func TestGrainEnergyDissipates(t *testing.T) {
	damped := grainConfig(t, 2, grain.Dimer, 40)
	elastic := grainConfig(t, 2, grain.Dimer, 40)
	elastic.Spring.Bonds.Damp = 0

	const iters = 500
	dres, err := RunShared(damped, iters)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := RunShared(elastic, iters)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Ekin >= eres.Ekin {
		t.Errorf("bond damping did not dissipate: damped Ekin %g vs elastic %g", dres.Ekin, eres.Ekin)
	}
}

// TestBondTooLongRejected: a bond whose rest length reaches the
// cutoff must be rejected at validation, not silently severed later.
func TestBondTooLongRejected(t *testing.T) {
	cfg := Default(2, 2)
	bt := newLongBondTable(cfg.RC())
	cfg.Spring.Bonds = bt
	if err := cfg.Validate(); err == nil {
		t.Error("bond rest length at the cutoff accepted")
	}
}

func newLongBondTable(rc float64) *force.BondTable {
	bt := force.NewBondTable(2, 2, 10, 0)
	if err := bt.Add(0, 1, rc); err != nil {
		panic(err)
	}
	return bt
}
