package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hybriddem/internal/decomp"
	"hybriddem/internal/fault"
	"hybriddem/internal/geom"
)

// blockSnap is one block's core particles in canonical (post-rebuild)
// store order: positions wrapped into the box, particles in their home
// block, cores cell-ordered. Restoring these arrays verbatim and
// running a rebuild reproduces the exact arrangement an uninterrupted
// run would have, which is what makes rollback bit-exact.
type blockSnap struct {
	pos, vel []geom.Vec
	ids      []int32
}

// epochState is one complete rebuild-boundary snapshot: the state at
// the start of measured iteration iter, keyed by block id. Keying by
// block (not rank) is what lets a degraded layout restore it — blocks
// keep their identity and geometry when ownership moves.
type epochState struct {
	iter   int
	blocks map[int]*blockSnap
}

// snapCollector assembles per-block snapshot offers into complete
// epochs. It models the stable storage of a checkpointing system: it
// lives outside the world of rank goroutines, so a snapshot taken
// before a fault survives the fault.
//
// Within one attempt, offers are globally ordered by epoch — a
// rank's offer of epoch X happens before it enters iteration X's
// collectives, which every other rank must complete before finishing
// any later iteration — so a single current buffer suffices: a new
// epoch's first offer retires the previous buffer (complete or not),
// and a buffer is promoted to stable only once all `need` blocks have
// arrived. A fault mid-epoch leaves the stable snapshot untouched.
//
// The ordering does NOT hold across attempts: a failed attempt can
// die with a half-filled buffer for the very epoch its retry will
// offer again (the rollback replays the same boundaries bit-exactly,
// and a degraded layout offers them with different blocks-per-rank
// groupings). Supervise therefore calls reset before every retry so
// the two attempts' offers never merge.
type snapCollector struct {
	mu      sync.Mutex
	need    int // blocks per complete epoch (layout.B)
	every   int // take every k-th rebuild boundary (>=1)
	seen    int // rebuild boundaries seen
	curIter int // epoch currently assembling (-1 = none)
	taking  bool
	cur     *epochState
	stable  *epochState
}

func newSnapCollector(need, every int) *snapCollector {
	if every < 1 {
		every = 1
	}
	return &snapCollector{need: need, every: every, curIter: -1}
}

// offer deposits one rank's blocks for the epoch starting at iter.
// The first offer of a new epoch decides (from the shared boundary
// counter) whether this epoch is taken, so every rank's offer of the
// same epoch agrees.
func (sc *snapCollector) offer(iter int, dm *decomp.Domain) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if iter != sc.curIter {
		sc.curIter = iter
		sc.seen++
		sc.taking = (sc.seen-1)%sc.every == 0
		if sc.taking {
			sc.cur = &epochState{iter: iter, blocks: make(map[int]*blockSnap)}
		} else {
			sc.cur = nil
		}
	}
	if !sc.taking || sc.cur == nil {
		// cur == nil with taking set means this epoch already promoted;
		// a duplicate offer (only possible if the per-attempt ordering
		// were violated) has nothing to add, and dropping it degrades to
		// "no newer snapshot" rather than crashing a rank.
		return
	}
	for _, b := range dm.Blocks {
		snap := &blockSnap{
			pos: make([]geom.Vec, b.NCore),
			vel: make([]geom.Vec, b.NCore),
			ids: append([]int32(nil), b.PS.ID[:b.NCore]...),
		}
		for i := 0; i < b.NCore; i++ {
			snap.pos[i] = b.PS.PosAt(i)
			snap.vel[i] = b.PS.VelAt(i)
		}
		sc.cur.blocks[b.ID] = snap
	}
	if len(sc.cur.blocks) == sc.need {
		sc.stable = sc.cur
		sc.cur = nil
	}
}

// reset abandons any partially assembled epoch and restarts the
// cadence counter, keeping the stable snapshot. Called before each
// recovery attempt: the failed attempt may have left a half-filled
// buffer for an epoch the retry offers again, and merging the two
// would promote on a mixed block count. Restarting the cadence also
// means the first boundary after a rollback is always taken, so a
// fresh snapshot is re-established promptly.
func (sc *snapCollector) reset() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.seen = 0
	sc.curIter = -1
	sc.taking = false
	sc.cur = nil
}

// snapshot returns the newest complete epoch, or nil.
func (sc *snapCollector) snapshot() *epochState {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.stable
}

// FTConfig tunes Supervise's fault-tolerance policy.
type FTConfig struct {
	// SnapshotEvery takes an in-memory snapshot at every k-th rebuild
	// boundary (1 = every boundary; 0 defaults to 1). Rebuild
	// boundaries are the only states a bit-exact rollback can restart
	// from, so the cadence is counted in boundaries, not iterations.
	SnapshotEvery int
	// MaxRetries bounds recovery attempts (0 defaults to 3). Each
	// detected fault consumes one retry; exceeding the bound returns
	// the last fault as an unrecoverable error.
	MaxRetries int
	// Backoff is the sleep before the first retry, doubling on each
	// subsequent one. 0 disables backoff (tests).
	Backoff time.Duration
	// OnFault, when non-nil, observes every detected fault before the
	// recovery attempt (attempt counts from 1).
	OnFault func(attempt int, fe *fault.Error)
	// OnRetry, when non-nil, observes each recovery attempt as it
	// launches: restart is the measured iteration the rollback resumes
	// from (0 = from scratch), so iters-restart is the replay depth
	// the benchmark experiments report.
	OnRetry func(attempt, restart int)
}

// Supervise executes a distributed run under fault supervision: it
// takes periodic in-memory snapshots at rebuild boundaries, and on a
// detected fault (injected kill, corrupted message, watchdog timeout)
// rolls the simulation back to the last complete snapshot and re-runs
// it — after a rank kill, on a degraded layout that redistributes the
// dead rank's blocks over the surviving P-1 ranks. Recovery is
// bit-exact: the re-executed trajectory, and every Probe delivery, is
// bit-identical to an unfaulted run's.
//
// The returned Result is the final successful segment's, with Iters
// patched to the full measured count. Retries exhausted (or a
// single-rank layout losing its only rank) return the fault as an
// unrecoverable error; demrun maps that to exit code 3.
func Supervise(cfg Config, iters int, ft FTConfig) (*Result, error) {
	if cfg.Mode != MPI && cfg.Mode != Hybrid && cfg.Mode != MPIsm {
		return nil, fmt.Errorf("core: Supervise with mode %s (distributed modes: %s)", cfg.Mode, distributedNames())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if iters < 1 {
		return nil, fmt.Errorf("core: Supervise with %d iterations", iters)
	}
	layout, err := decomp.NewLayout(cfg.Box(), cfg.RC(), cfg.P, cfg.BlocksPerProc)
	if err != nil {
		return nil, err
	}
	maxRetries := ft.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	}
	sink := newSnapCollector(layout.B, ft.SnapshotEvery)

	// Each measured iteration is delivered to the caller's probe
	// exactly once: a rollback re-executes iterations the caller has
	// already seen, and redelivering them (even bit-identically) would
	// corrupt trajectory captures.
	probe := cfg.Probe
	delivered := 0
	if probe != nil {
		cfg.Probe = func(iter int, pos, vel []geom.Vec) {
			if iter == delivered {
				probe(iter, pos, vel)
				delivered++
			}
		}
	}
	// OnStep gets the same exactly-once guarantee: a rollback replays
	// iterations whose step events subscribers have already seen.
	onStep := cfg.OnStep
	stepsSeen := 0
	if onStep != nil {
		cfg.OnStep = func(iter int, epot, ekin float64) {
			if iter == stepsSeen {
				onStep(iter, epot, ekin)
				stepsSeen++
			}
		}
	}

	backoff := ft.Backoff
	warmup0 := cfg.Warmup
	for attempt := 0; ; attempt++ {
		segCfg := cfg
		segCfg.P = layout.P
		seg := segment{layout: layout, warmup0: warmup0, sink: sink}
		if snap := sink.snapshot(); snap != nil {
			seg.start = snap.iter
			seg.restore = snap
			segCfg.Warmup = 0
		}
		if attempt > 0 && ft.OnRetry != nil {
			ft.OnRetry(attempt, seg.start)
		}
		res, err := runDistributed(segCfg, iters, seg)
		if err == nil {
			res.Iters = iters
			return res, nil
		}
		if errors.Is(err, ErrCanceled) {
			// Cooperative cancellation is not a fault: hand the partial
			// result (Iters already holds the completed count) straight
			// back so the caller can checkpoint and later resume it.
			return res, err
		}
		fe := fault.From(err)
		if fe == nil {
			return nil, err // config error, not a fault
		}
		if ft.OnFault != nil {
			ft.OnFault(attempt+1, fe)
		}
		if attempt+1 > maxRetries {
			return nil, fmt.Errorf("core: unrecoverable after %d recovery attempts: %w", maxRetries, fe)
		}
		sink.reset()
		if fe.Kind == fault.Killed {
			degraded, derr := layout.Degrade(fe.Rank)
			if derr != nil {
				return nil, fmt.Errorf("core: cannot recover from %w: %v", fe, derr)
			}
			layout = degraded
		}
		if backoff > 0 {
			// The backoff sleep honours cooperative cancellation: a
			// caller that decides to stop the job mid-recovery (demd
			// canceling or shutting down) must not wait out a
			// potentially long exponential backoff. There is no partial
			// Result at this point — the failed attempt rolled back —
			// so the return is the pending fault wrapped as a plain
			// error, not ErrCanceled (whose contract promises a usable
			// partial Result).
			deadline := time.Now().Add(backoff)
			for time.Now().Before(deadline) {
				if cfg.Stop != nil && cfg.Stop() {
					return nil, fmt.Errorf("core: run canceled during recovery backoff: %w", fe)
				}
				time.Sleep(min(10*time.Millisecond, time.Until(deadline)))
			}
			backoff *= 2
		}
	}
}
