package core

import (
	"testing"

	"hybriddem/internal/decomp"
	"hybriddem/internal/mp"
)

// benchShared times the steady-state step of the Serial/OpenMP
// drivers. ReportAllocs makes the zero-allocation property visible in
// benchmark output (and in CI, which runs these with -benchtime=1x as
// a smoke test).
func benchShared(b *testing.B, cfg Config) {
	s, err := newSharedSim(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.close()
	for i := 0; i < 3; i++ {
		s.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

func BenchmarkStepSerial(b *testing.B) {
	benchShared(b, allocConfig(Serial))
}

func BenchmarkStepOpenMP(b *testing.B) {
	cfg := allocConfig(OpenMP)
	cfg.T = 4
	benchShared(b, cfg)
}

// benchDistributed times the steady-state step of the MPI/Hybrid
// drivers: every rank executes b.N lock-stepped iterations, so one
// benchmark op is one global timestep.
func benchDistributed(b *testing.B, cfg Config) {
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	l, err := decomp.NewLayout(cfg.Box(), cfg.RC(), cfg.P, cfg.BlocksPerProc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	mp.Run(cfg.P, mp.ZeroNetwork{}, func(c *mp.Comm) {
		r := newRankSim(&cfg, c, l)
		defer r.close()
		r.dm.FillClustered(cfg.N, cfg.Seed, cfg.InitVel, cfg.FillHeight)
		r.rebuild()
		for i := 0; i < 3; i++ {
			r.step()
		}
		// Warm steps are collectively synchronised, so by the time
		// rank 0 resets the timer every rank is in its steady state.
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			r.step()
		}
	})
}

func BenchmarkStepMPI(b *testing.B) {
	cfg := allocConfig(MPI)
	cfg.P = 4
	benchDistributed(b, cfg)
}

func BenchmarkStepHybrid(b *testing.B) {
	cfg := allocConfig(Hybrid)
	cfg.P = 2
	cfg.T = 2
	benchDistributed(b, cfg)
}

func BenchmarkStepHybridFused(b *testing.B) {
	cfg := allocConfig(Hybrid)
	cfg.P = 2
	cfg.T = 2
	cfg.Fused = true
	benchDistributed(b, cfg)
}

// BenchmarkStepMPIsm times the shared-window exchange; under
// ZeroNetwork all four ranks share a node, so every halo leg is a
// fenced load rather than a message.
func BenchmarkStepMPIsm(b *testing.B) {
	cfg := allocConfig(MPIsm)
	cfg.P = 4
	benchDistributed(b, cfg)
}

// BenchmarkStepORB times the steady-state step under the adaptive ORB
// decomposition: the cut tree and its scratch are built at the setup
// rebuild, so the measured window must show the same zero-allocation
// step as the static deal (the alloc gate asserts it; ReportAllocs in
// benchDistributed makes it visible here).
func BenchmarkStepORB(b *testing.B) {
	cfg := allocConfig(MPI)
	cfg.P = 4
	cfg.BlocksPerProc = 4
	cfg.Rebalance = RebalanceORB
	benchDistributed(b, cfg)
}

// The NoOverlap variants pin the synchronous exchange so the
// split-phase default can be compared against it (host time and
// allocations) from the same benchmark run.

func BenchmarkStepMPINoOverlap(b *testing.B) {
	cfg := allocConfig(MPI)
	cfg.P = 4
	cfg.Overlap = false
	benchDistributed(b, cfg)
}

func BenchmarkStepHybridNoOverlap(b *testing.B) {
	cfg := allocConfig(Hybrid)
	cfg.P = 2
	cfg.T = 2
	cfg.Overlap = false
	benchDistributed(b, cfg)
}
