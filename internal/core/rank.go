package core

import (
	"fmt"
	"time"

	"hybriddem/internal/decomp"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/machine"
	"hybriddem/internal/mp"
	"hybriddem/internal/shm"
	"hybriddem/internal/trace"
)

// rankSim is one rank's state in an MPI, MPIsm or Hybrid run: its
// share of the block-cyclic decomposition plus, in hybrid mode, the
// rank's thread team — "one process per SMP ... one thread per CPU" —
// or, in mpism mode, the rank's shared window over its node group.
type rankSim struct {
	cfg *Config
	c   *mp.Comm
	dm  *decomp.Domain

	team  *shm.Team      // nil in MPI mode
	upds  []*shm.Updater // per owned block (hybrid)
	fused *shm.FusedUpdater

	// Per-step scratch, refreshed at rebuild so the step loop itself
	// allocates nothing: block views for the team kernels, the fused
	// piece list, the two-element energy reduction buffer, the
	// rebuild-vote buffer of the overlapped path, and the gate that
	// holds hybrid threads at the core/halo link boundary until the
	// split-phase exchange lands.
	stores []*shm.BlockStore
	cores  []int
	pieces []shm.FusedPiece
	energy [2]float64
	vote   [1]float64
	gate   *shm.HaloGate // hybrid overlap only

	linkCost, contactCost, updCost, partCost float64

	rebuilds int
	meanDist float64
	epot     float64
	ekin     float64
	iter     int

	forceTime, updateTime, commTime, collTime float64
}

// span records a phase interval on the configured timeline.
func (r *rankSim) span(phase string, t0, t1 float64) {
	if tl := r.cfg.Timeline; tl != nil {
		tl.Add(r.c.Rank(), r.iter, phase, t0, t1)
	}
}

// activePerNode returns the number of busy CPUs sharing one SMP
// node's memory system under this run shape.
func activePerNode(cfg *Config, pf *machine.Platform) int {
	if pf == nil {
		return 1
	}
	switch cfg.Mode {
	case Hybrid:
		return cfg.T
	case MPI, MPIsm:
		if cfg.P < pf.CPUsPerNode {
			return cfg.P
		}
		return pf.CPUsPerNode
	default:
		return cfg.T
	}
}

func newRankSim(cfg *Config, c *mp.Comm, l *decomp.Layout) *rankSim {
	r := &rankSim{cfg: cfg, c: c}
	// A checkpointed ORB decomposition resumes where it left off: apply
	// the tree's ownership to a private clone of the layout (the shared
	// original must stay immutable) and seed the domain's adopted tree
	// so the first epoch applies hysteresis against it instead of
	// re-adopting from the cyclic deal. A tree whose shape no longer
	// matches (e.g. after a degrade-and-recover changed P) is ignored.
	seedTree := cfg.Rebalance == RebalanceORB && cfg.InitTree != nil && cfg.InitTree.Matches(l)
	if seedTree {
		owned := l.Clone()
		cfg.InitTree.ApplyOwners(owned)
		l = owned
	}
	r.dm = decomp.NewDomain(l, c, cfg.needsHaloVel())
	r.dm.Rebalance = cfg.Rebalance
	r.dm.RebalanceHyst = cfg.RebalanceHyst
	if seedTree {
		r.dm.SeedORBTree(cfg.InitTree)
	}
	if pf := cfg.Platform; pf != nil {
		// Exchange traffic is surface-proportional: both the pack
		// work and the modelled wire bytes scale with
		// (ModelN/N)^((D-1)/D).
		r.dm.PackCost = pf.PackCost() * cfg.surfScale()
		c.SetByteScale(cfg.surfScale())
		if cfg.NaivePack {
			r.dm.PackFactor = 3 // gather + wire copy + scatter
		}
		if cfg.SelfMessage {
			ss := cfg.surfScale()
			r.dm.SelfMsgCost = func(bytes int) float64 {
				return pf.IntraLat + float64(bytes)*ss/pf.IntraBw
			}
		}
	}
	if cfg.Mode == MPIsm {
		// MPI+MPI_sm: attach a shared window over this rank's node
		// group so same-node halo legs travel as fenced window loads.
		// A rank alone on its node (odd P, or single-CPU nodes like the
		// T3E's) skips the window and keeps the pure message path.
		if g := c.SplitNode(); g.Size() > 1 {
			var wc mp.WinCosts
			if pf := cfg.Platform; pf != nil {
				wc = pf.WinCosts()
			}
			r.dm.SetWin(mp.NewWin(g, wc))
		}
	}
	if cfg.Mode == Hybrid {
		r.team = shm.NewTeam(cfg.T, shm.Costs{})
		r.gate = shm.NewHaloGate()
		if cfg.Watchdog > 0 {
			r.gate.SetDeadline(cfg.Watchdog)
		}
		if cfg.Fused {
			r.fused = shm.NewFusedUpdater(cfg.Method)
		} else {
			for range r.dm.Blocks {
				r.upds = append(r.upds, shm.NewUpdater(cfg.Method))
			}
		}
	}
	return r
}

// rebuild runs the full list-invalidation sequence and rederives the
// modelled costs for the new list's locality.
func (r *rankSim) rebuild() {
	cfg := r.cfg
	r.dm.Rebuild(cfg.Reorder)
	r.rebuilds++
	if t0, t1, moved := r.dm.LastRebalance(); moved {
		phase := "rebalance"
		if cfg.Rebalance == RebalanceORB {
			phase = "orb"
		}
		r.span(phase, t0, t1)
	}

	// Locality metric across this rank's blocks.
	var sum int64
	var n int64
	for _, b := range r.dm.Blocks {
		for _, l := range b.List.Links {
			d := int64(l.I) - int64(l.J)
			if d < 0 {
				d = -d
			}
			sum += d
		}
		n += int64(len(b.List.Links))
	}
	if n > 0 {
		r.meanDist = float64(sum) / float64(n)
	}

	if pf := cfg.Platform; pf != nil {
		cp := machine.CostParams{D: cfg.D, MeanLinkDist: cfg.modelDist(r.meanDist), ActivePerNode: activePerNode(cfg, pf)}
		ws := cfg.workScale()
		// Amortise the per-particle force-pass memory traffic over
		// this rank's links (halo copies are read too).
		parts := 0
		for _, b := range r.dm.Blocks {
			parts += b.PS.Len()
		}
		memPerLink := 0.0
		if n := r.dm.NumLinks(); n > 0 {
			memPerLink = pf.ForceMemCost(cp) * float64(parts) / float64(n)
		}
		r.linkCost = (pf.LinkCost(cp) + memPerLink) * ws
		r.contactCost = pf.ContactPairCost(cp) * ws
		r.updCost = pf.UpdateCost(cp) * ws
		r.partCost = pf.ParticleCost(cp) * ws
		if r.team != nil {
			costs := pf.ShmCosts(cfg.T, cp)
			costs.PerLink += memPerLink
			costs = costs.ScaleWork(ws, cfg.atomicScale())
			costs.HaloWork = cfg.surfScale() / ws
			r.team.SetCosts(costs)
		}
	}

	if r.team != nil {
		r.refreshBlockViews()
		if r.fused != nil {
			if cap(r.pieces) < len(r.dm.Blocks) {
				r.pieces = make([]shm.FusedPiece, len(r.dm.Blocks))
			}
			r.pieces = r.pieces[:len(r.dm.Blocks)]
			for i, b := range r.dm.Blocks {
				r.pieces[i] = shm.FusedPiece{PS: b.PS, Links: b.List.Links, NCoreLinks: b.List.NCore, NCore: b.NCore}
			}
			r.fused.Prepare(r.pieces, cfg.T)
		} else {
			// The rebalancer can grow this rank's block count past what
			// newRankSim saw.
			for len(r.upds) < len(r.dm.Blocks) {
				r.upds = append(r.upds, shm.NewUpdater(cfg.Method))
			}
			for i, b := range r.dm.Blocks {
				r.upds[i].Prepare(b.List.Links, b.PS.Len(), b.NCore, cfg.T)
			}
		}
	}
}

// refreshBlockViews resyncs the cached per-block views the team
// kernels consume. Core counts only change at rebuild (migration), so
// the step loop can hand these to ZeroForcesAllBlocks /
// IntegrateAllBlocks without per-step allocation.
func (r *rankSim) refreshBlockViews() {
	nb := len(r.dm.Blocks)
	for len(r.stores) < nb {
		r.stores = append(r.stores, &shm.BlockStore{})
	}
	r.stores = r.stores[:nb]
	if cap(r.cores) < nb {
		r.cores = make([]int, nb)
	}
	r.cores = r.cores[:nb]
	for i, b := range r.dm.Blocks {
		*r.stores[i] = shm.BlockStore{PS: b.PS, NCore: b.NCore}
		r.cores[i] = b.NCore
	}
}

// close releases the hybrid thread team's parked workers (no-op in
// MPI mode).
func (r *rankSim) close() {
	if r.team != nil {
		r.team.Close()
	}
}

// clock returns the rank's modelled time: the team clock in hybrid
// mode (regions advance it past the comm clock), otherwise the comm
// clock. The two are kept in step by syncClocks.
func (r *rankSim) clock() float64 {
	if r.team != nil {
		return r.team.Clock()
	}
	return r.c.Clock()
}

// syncClocks folds communication waits into the team clock and vice
// versa so a single timeline covers both runtimes.
func (r *rankSim) syncClocks() {
	if r.team == nil {
		return
	}
	if r.c.Clock() > r.team.Clock() {
		r.team.SetClock(r.c.Clock())
	} else {
		r.c.SetClock(r.team.Clock())
	}
}

// step advances one iteration and returns the modelled seconds of the
// timed window (halo swap + force + energy + update).
func (r *rankSim) step() float64 {
	if r.cfg.Overlap {
		return r.stepOverlap()
	}
	return r.stepSync()
}

// stepSync is the synchronous baseline: complete the halo swap, then
// run the whole force loop, then the blocking energy allreduce and the
// blocking rebuild vote. The modelled step time is comm + compute.
func (r *rankSim) stepSync() float64 {
	cfg := r.cfg
	dm := r.dm
	box := cfg.Box()
	plain := dm.PlainBox()
	r.syncClocks()
	t0 := r.clock()

	r.iter++

	// Halo swap.
	c0 := r.clock()
	dm.RefreshHalos()
	r.syncClocks()
	r.commTime += r.clock() - c0
	r.span("comm", c0, r.clock())

	// Force phase over every owned block: core links at full energy,
	// halo links at half.
	f0 := r.clock()
	epot := 0.0
	switch {
	case r.team == nil:
		// Halo-link counts are a surface effect, so their charges get
		// the surface/bulk weight when modelling a larger system.
		hw := cfg.surfScale() / cfg.workScale()
		for _, b := range dm.Blocks {
			b.PS.ZeroForces()
			c0 := dm.TC.Contacts
			epot += cfg.Spring.Accumulate(b.PS, b.List.CoreLinks(), b.NCore, plain, 1, &dm.TC)
			cCore := dm.TC.Contacts - c0
			epot += cfg.Spring.Accumulate(b.PS, b.List.HaloLinks(), b.NCore, plain, 0.5, &dm.TC)
			cHalo := dm.TC.Contacts - c0 - cCore
			nCore := float64(b.List.NCore)
			nHalo := float64(len(b.List.Links) - b.List.NCore)
			eff := nCore + nHalo*hw
			r.c.Compute(eff*r.linkCost +
				(float64(cCore)+float64(cHalo)*hw)*r.contactCost +
				2*eff*r.updCost)
			if cfg.Gravity != 0 {
				force.ApplyGravity(b.PS, b.NCore, cfg.D-1, cfg.Gravity)
			}
		}
	case r.fused != nil:
		shm.ZeroForcesAllBlocks(r.team, r.stores)
		epot = r.fused.Accumulate(r.team, cfg.Spring, plain)
		r.applyGravityBlocks()
	default:
		shm.ZeroForcesAllBlocks(r.team, r.stores)
		for i, b := range dm.Blocks {
			epot += r.upds[i].Accumulate(r.team, cfg.Spring, b.PS, b.List.Links, b.List.NCore, b.NCore, plain)
		}
		r.applyGravityBlocks()
	}
	r.syncClocks()
	r.forceTime += r.clock() - f0
	r.span("force", f0, r.clock())

	// Update phase: integrate core particles of every block.
	u0 := r.clock()
	ekin := r.integrate(box)
	r.syncClocks()
	r.updateTime += r.clock() - u0
	r.span("update", u0, r.clock())

	// Energy: reduced within the team by the region join, over blocks
	// by the rank, and over ranks by the collective (in place, into
	// the rank's persistent two-element buffer). The collective gets
	// its own phase bucket, not update's: a rank blocked here is
	// waiting on the slowest rank, and folding that wait into the
	// update phase would hide exactly the per-rank load imbalance the
	// phase split (and Result.Imbalance) exists to expose. It is kept
	// out of comm too, so the comm column stays a pure halo-exchange
	// measure (what the overlap figures difference).
	e0 := r.clock()
	r.energy[0], r.energy[1] = epot, ekin
	r.c.AllreduceInPlace(r.energy[:], mp.Sum)
	r.epot, r.ekin = r.energy[0], r.energy[1]
	r.syncClocks()
	r.collTime += r.clock() - e0
	r.span("coll", e0, r.clock())

	elapsed := r.clock() - t0

	// Validity check + rebuild live outside the timed window.
	b0 := r.clock()
	if !r.dm.ListsValid(cfg.Skin()) {
		r.rebuild()
		r.syncClocks()
		r.span("rebuild", b0, r.clock())
	}
	r.syncClocks()
	return elapsed
}

// stepOverlap is the split-phase step: post the halo exchange, run the
// core-link force pass while the messages are in flight, complete the
// exchange, then the halo-link pass; the energy allreduce is posted
// together with the rebuild vote so the two collectives overlap. The
// per-particle accumulation order is identical to stepSync (zero, core
// links in list order, halo links in list order, gravity), so the
// trajectory is bit-identical — only the modelled timeline changes,
// charging max(comm, core compute) where the synchronous step pays the
// sum.
func (r *rankSim) stepOverlap() float64 {
	cfg := r.cfg
	dm := r.dm
	box := cfg.Box()
	plain := dm.PlainBox()
	r.syncClocks()
	t0 := r.clock()

	r.iter++

	// Split-phase halo swap wrapped around the force phase.
	var epot float64
	switch {
	case r.team == nil:
		epot = r.overlapForceMPI(plain)
	case r.fused != nil:
		epot = r.overlapForceFused(plain)
	default:
		epot = r.overlapForceBlocks(plain)
	}

	// Update phase: integrate core particles of every block.
	u0 := r.clock()
	ekin := r.integrate(box)
	r.syncClocks()
	r.updateTime += r.clock() - u0
	r.span("update", u0, r.clock())

	// Post the energy allreduce and the rebuild vote back to back;
	// waiting the energy covers most of the vote's latency, hiding the
	// second collective behind the first. As in stepSync the wait is
	// charged to the collective bucket, not update — it is the
	// imbalance wait on the slowest rank.
	e0 := r.clock()
	r.energy[0], r.energy[1] = epot, ekin
	eReq := r.c.IAllreduceInPlace(r.energy[:], mp.Sum)
	r.vote[0] = dm.MaxCoreDisp2()
	vReq := r.c.IAllreduceInPlace(r.vote[:], mp.Max)
	eReq.Wait()
	r.epot, r.ekin = r.energy[0], r.energy[1]
	r.syncClocks()
	r.collTime += r.clock() - e0
	r.span("coll", e0, r.clock())

	elapsed := r.clock() - t0

	// The rebuild vote completes outside the timed window, exactly
	// like stepSync's ListsValid.
	b0 := r.clock()
	vReq.Wait()
	r.syncClocks()
	if skin := cfg.Skin(); r.vote[0] >= skin*skin {
		r.rebuild()
		r.syncClocks()
		r.span("rebuild", b0, r.clock())
	}
	r.syncClocks()
	return elapsed
}

// overlapForceMPI is the split-phase force pass of a single-threaded
// rank: post the exchange, then run the core-link pass (it touches no
// halo storage) in D stages, draining one exchange dimension between
// stages so each leg's flight time is covered by the next stage's
// compute. Draining mid-pass matters beyond hiding the first leg: a
// later dimension's sends cannot depart before the earlier halos land,
// so a rank that drained only after its full core pass would hold up
// its neighbours' later legs — the progressive drain posts each
// dimension after roughly 1/D of the pass instead. The core links of
// each block still run in list order across the stages, so the
// trajectory stays bit-identical to stepSync. Exposed waits and
// pack/unpack charges are attributed to comm, the stages to force, and
// "overlap" spans mark the windows the in-flight messages hide behind.
func (r *rankSim) overlapForceMPI(plain geom.Box) float64 {
	cfg := r.cfg
	dm := r.dm
	d := cfg.D
	hw := cfg.surfScale() / cfg.workScale()
	epot := 0.0

	c0 := r.clock()
	dm.BeginRefreshHalos()
	c1 := r.clock() // post cost: dimension 0's packs + sends
	r.commTime += c1 - c0
	r.span("comm", c0, c1)

	for _, b := range dm.Blocks {
		b.PS.ZeroForces()
	}

	// Staged core-link pass interleaved with the progressive drain.
	// The refresh has exactly d dimensions, so the final stage's drain
	// completes it.
	for s := 0; s < d; s++ {
		f0 := r.clock()
		for _, b := range dm.Blocks {
			links := b.List.CoreLinks()
			lo, hi := len(links)*s/d, len(links)*(s+1)/d
			cc0 := dm.TC.Contacts
			epot += cfg.Spring.Accumulate(b.PS, links[lo:hi], b.NCore, plain, 1, &dm.TC)
			cc := dm.TC.Contacts - cc0
			n := float64(hi - lo)
			r.c.Compute(n*r.linkCost + float64(cc)*r.contactCost + 2*n*r.updCost)
		}
		f1 := r.clock()
		r.forceTime += f1 - f0
		r.span("force", f0, f1)
		r.span("overlap", f0, f1)
		w0 := r.clock()
		dm.FinishRefreshDim()
		w1 := r.clock()
		r.commTime += w1 - w0
		r.span("comm", w0, w1)
	}

	// Halo-link pass: only now are the halo positions current.
	h0 := r.clock()
	for _, b := range dm.Blocks {
		cc0 := dm.TC.Contacts
		epot += cfg.Spring.Accumulate(b.PS, b.List.HaloLinks(), b.NCore, plain, 0.5, &dm.TC)
		cHalo := dm.TC.Contacts - cc0
		nHalo := float64(len(b.List.Links) - b.List.NCore)
		r.c.Compute(nHalo*hw*r.linkCost + float64(cHalo)*hw*r.contactCost + 2*nHalo*hw*r.updCost)
		if cfg.Gravity != 0 {
			force.ApplyGravity(b.PS, b.NCore, cfg.D-1, cfg.Gravity)
		}
	}
	h1 := r.clock()
	r.forceTime += h1 - h0
	r.span("force", h0, h1)
	return epot
}

// overlapForceBlocks is the split-phase force pass of a hybrid rank
// with per-block updaters: the first block's region is dispatched to
// the workers with StartRegion, the master drains the exchange while
// they chew through the core links (threads reaching the core/halo
// boundary of their chunk park on the gate), then the gate opens at
// the communication clock, the master joins the region, and the
// remaining blocks run with halos already in place.
func (r *rankSim) overlapForceBlocks(plain geom.Box) float64 {
	cfg := r.cfg
	dm := r.dm

	c0 := r.clock()
	dm.BeginRefreshHalos()
	r.syncClocks()
	c1 := r.clock() // post cost folded into the team clock

	shm.ZeroForcesAllBlocks(r.team, r.stores)
	r.syncClocks() // comm clock to the region join: the master zeroes too

	r.gate.Reset()
	if len(dm.Blocks) == 0 {
		// The rebalancer can leave a rank briefly blockless; just drain
		// the exchange.
		d0 := r.c.Clock()
		r.drainExchange()
		d1 := r.c.Clock()
		r.gate.Open(d1)
		r.syncClocks()
		r.accountHybridOverlap(c0, c1, d0, d1, r.clock())
		return 0
	}
	b0 := dm.Blocks[0]
	r.upds[0].AccumulateStart(r.team, cfg.Spring, b0.PS, b0.List.Links, b0.List.NCore, b0.NCore, plain, r.gate)

	d0 := r.c.Clock()
	r.drainExchange()
	d1 := r.c.Clock()
	r.gate.Open(d1)

	epot := r.upds[0].AccumulateFinish(r.team, d1)
	for i := 1; i < len(dm.Blocks); i++ {
		b := dm.Blocks[i]
		epot += r.upds[i].Accumulate(r.team, cfg.Spring, b.PS, b.List.Links, b.List.NCore, b.NCore, plain)
	}
	r.applyGravityBlocks()
	r.syncClocks()
	fEnd := r.clock()

	r.accountHybridOverlap(c0, c1, d0, d1, fEnd)
	return epot
}

// overlapForceFused is overlapForceBlocks for the fused updater: one
// region covers every block's links, so the whole force loop overlaps
// the drain.
func (r *rankSim) overlapForceFused(plain geom.Box) float64 {
	cfg := r.cfg

	c0 := r.clock()
	r.dm.BeginRefreshHalos()
	r.syncClocks()
	c1 := r.clock()

	shm.ZeroForcesAllBlocks(r.team, r.stores)
	r.syncClocks()

	r.gate.Reset()
	r.fused.AccumulateStart(r.team, cfg.Spring, plain, r.gate)

	d0 := r.c.Clock()
	r.drainExchange()
	d1 := r.c.Clock()
	r.gate.Open(d1)

	epot := r.fused.AccumulateFinish(r.team, d1)
	r.applyGravityBlocks()
	r.syncClocks()
	fEnd := r.clock()

	r.accountHybridOverlap(c0, c1, d0, d1, fEnd)
	return epot
}

// drainExchange completes the posted halo exchange on the master; if
// the drain panics the gate is aborted first so parked region threads
// unblock instead of deadlocking the join.
func (r *rankSim) drainExchange() {
	defer func() {
		if e := recover(); e != nil {
			r.gate.Abort()
			panic(e)
		}
	}()
	r.dm.FinishRefreshHalos()
}

// accountHybridOverlap attributes the hybrid split-phase intervals:
// the post (c0-c1) and the exposed gate stall count as communication,
// the rest of the force window as compute; the drain (d0-d1) is marked
// as the overlap span — comm hidden under the workers' core links.
func (r *rankSim) accountHybridOverlap(c0, c1, d0, d1, fEnd float64) {
	stall := r.gate.MaxStall()
	r.commTime += (c1 - c0) + stall
	ft := (fEnd - c1) - stall
	if ft < 0 {
		ft = 0
	}
	r.forceTime += ft
	r.span("comm", c0, c1)
	r.span("force", c1, fEnd)
	if d1 > d0 {
		r.span("overlap", d0, d1)
	}
}

// integrate advances every block's core particles and returns the
// rank's kinetic energy.
func (r *rankSim) integrate(box geom.Box) float64 {
	cfg := r.cfg
	dm := r.dm
	ekin := 0.0
	if r.team == nil {
		for _, b := range dm.Blocks {
			force.Integrate(b.PS, b.NCore, cfg.Dt, box, force.WrapDeferred, &dm.TC)
			r.c.Compute(float64(b.NCore) * r.partCost)
			ekin += force.KineticEnergy(b.PS, b.NCore)
		}
	} else {
		shm.IntegrateAllBlocks(r.team, r.stores, r.cores, cfg.Dt, box, force.WrapDeferred)
		for _, b := range dm.Blocks {
			ekin += force.KineticEnergy(b.PS, b.NCore)
		}
	}
	return ekin
}

func (r *rankSim) applyGravityBlocks() {
	if r.cfg.Gravity == 0 {
		return
	}
	for _, b := range r.dm.Blocks {
		force.ApplyGravity(b.PS, b.NCore, r.cfg.D-1, r.cfg.Gravity)
	}
}

// segment parameterises one supervised execution attempt of
// runDistributed: which layout to run on (possibly degraded after a
// rank loss), which measured iteration to resume from, the original
// timeline's warm-up length (so global fault-point step numbers stay
// stable across attempts), the rebuild-boundary snapshot to restore
// instead of the initial fill, and the collector that receives new
// snapshots. The zero value is a plain unsupervised run.
type segment struct {
	layout  *decomp.Layout
	start   int
	warmup0 int
	restore *epochState
	sink    *snapCollector
}

// RunDistributed executes an MPI or Hybrid run and returns the merged
// result (rank 0's phase attribution, max-over-ranks timing, summed
// counters). When cfg.Stop reports cancellation every rank leaves the
// step loop at the same agreed iteration and the partial Result
// (Iters = completed measured steps) is returned with ErrCanceled.
func RunDistributed(cfg Config, iters int) (*Result, error) {
	return runDistributed(cfg, iters, segment{warmup0: cfg.Warmup})
}

func runDistributed(cfg Config, iters int, seg segment) (*Result, error) {
	if cfg.Mode != MPI && cfg.Mode != Hybrid && cfg.Mode != MPIsm {
		return nil, fmt.Errorf("core: RunDistributed with mode %s (distributed modes: %s)", cfg.Mode, distributedNames())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := seg.layout
	if l == nil {
		var err error
		l, err = decomp.NewLayout(cfg.Box(), cfg.RC(), cfg.P, cfg.BlocksPerProc)
		if err != nil {
			return nil, err
		}
	}
	var net mp.Network = mp.ZeroNetwork{}
	if cfg.Platform != nil {
		if cfg.Mode == Hybrid {
			net = cfg.Platform.NodeNetwork()
		} else {
			net = cfg.Platform.Network()
		}
	}
	measured := iters - seg.start
	if measured <= 0 {
		return nil, fmt.Errorf("core: segment start %d leaves no iterations of %d", seg.start, iters)
	}

	results := make([]*Result, cfg.P)
	stopped := false // written by rank 0 only, read after RunOpts returns
	start := time.Now()
	comms, err := mp.RunOpts(cfg.P, mp.RunOptions{
		Net:         net,
		Faults:      cfg.Faults,
		Watchdog:    cfg.Watchdog,
		NoIntegrity: cfg.NoIntegrity,
	}, func(c *mp.Comm) {
		r := newRankSim(&cfg, c, l)
		defer r.close()
		switch {
		case seg.restore != nil:
			// Rollback: repopulate each owned block from the snapshot's
			// canonical (post-rebuild) core arrays. The rebuild below is
			// then an identity on the particle arrangement — positions
			// are already wrapped and home, stores already cell-ordered —
			// so the restored trajectory is bit-identical to an
			// uninterrupted run, whatever rank now owns the block.
			for _, b := range r.dm.Blocks {
				if snap := seg.restore.blocks[b.ID]; snap != nil {
					for i := range snap.ids {
						b.PS.Append(snap.pos[i], snap.vel[i], snap.ids[i])
					}
					b.NCore = len(snap.ids)
				}
			}
		case cfg.Init != nil:
			for i := 0; i < cfg.N; i++ {
				r.dm.Place(cfg.Init.Pos[i], cfg.Init.Vel[i], int32(i))
			}
		default:
			r.dm.FillClustered(cfg.N, cfg.Seed, cfg.InitVel, cfg.FillHeight)
		}
		r.rebuild()
		for i := 0; i < cfg.Warmup; i++ {
			c.FaultPoint(i)
			r.step()
		}
		c.Barrier()
		c.SetClock(0)
		if r.team != nil {
			r.team.SetClock(0)
		}
		r.forceTime, r.updateTime, r.commTime, r.collTime = 0, 0, 0, 0
		rebuilds0 := r.rebuilds

		total := 0.0
		completed := 0
		rb := r.rebuilds
		stopReq, grace := false, 0
		var stopBuf [1]float64
		for i := seg.start; i < iters; i++ {
			c.FaultPoint(seg.warmup0 + i)
			total += r.step()
			completed++
			rebuilt := r.rebuilds > rb
			rb = r.rebuilds
			if cfg.OnStep != nil && c.Rank() == 0 {
				cfg.OnStep(i, r.epot, r.ekin)
			}
			if cfg.Probe != nil {
				pos, vel := gather(&cfg, c, r)
				if c.Rank() == 0 {
					cfg.Probe(i, pos, vel)
				}
			}
			if seg.sink != nil && rebuilt && i+1 < iters {
				// The step ended in a rebuild, so the store is in its
				// canonical arrangement — the only state a bit-exact
				// rollback can restart from. Offer it as the state at
				// the start of iteration i+1.
				seg.sink.offer(i+1, r.dm)
			}
			if cfg.Stop != nil {
				// Cooperative cancellation: rank 0 polls the hook,
				// latches the request, and honours it at the next
				// rebuild boundary (the same canonical state the
				// snapshot sink above waits for — what makes the
				// cancellation checkpoint resume bit-exactly) or after
				// stopGrace steps. The verdict is agreed through an
				// allreduce, so every rank breaks at the same iteration
				// and the result collectives and state gather below
				// stay aligned; rebuild votes are collective, so the
				// rebuild counter advances in lockstep across ranks.
				// The extra collective exists only when a Stop hook is
				// installed.
				stopBuf[0] = 0
				if c.Rank() == 0 {
					if !stopReq && cfg.Stop() {
						stopReq, grace = true, stopGrace
					}
					if stopReq {
						if rebuilt || grace <= 0 {
							stopBuf[0] = 1
						}
						grace--
					}
				}
				c.AllreduceInPlace(stopBuf[:], mp.Max)
				if stopBuf[0] != 0 {
					if c.Rank() == 0 {
						stopped = true
					}
					break
				}
			}
		}
		// The full virtual clock since the post-warmup reset covers the
		// timed phases plus rebuilds, migration, and repartition; read
		// it before the result collectives below advance it further.
		elapsedAll := r.clock()
		meas := float64(completed)
		if completed == 0 {
			meas = 1
		}
		perIter := total / meas
		// Timing is the slowest rank's (the paper's t is the global
		// iteration time).
		perIter = c.AllreduceScalar(perIter, mp.Max)
		totalIter := c.AllreduceScalar(elapsedAll, mp.Max) / meas

		nlinks := c.AllreduceScalar(float64(r.dm.NumLinks()), mp.Sum)

		// Per-rank load imbalance of the measured window: compute time
		// (force + update) only, since a waiting rank's comm time is
		// exactly the imbalance showing up elsewhere.
		load := r.forceTime + r.updateTime
		maxLoad := c.AllreduceScalar(load, mp.Max)
		meanLoad := c.AllreduceScalar(load, mp.Sum) / float64(cfg.P)
		imb := 1.0
		if meanLoad > 0 {
			imb = maxLoad / meanLoad
		}

		res := &Result{
			Mode: cfg.Mode,
			// Iters counts the measured iterations completed since the
			// run's start (segment offset included), so a canceled run
			// reports exactly the boundary a resume must continue from.
			Iters:      seg.start + completed,
			PerIter:    perIter,
			TotalTime:  totalIter,
			Epot:       r.epot,
			Ekin:       r.ekin,
			NLinks:     int64(nlinks),
			Rebuilds:   r.rebuilds - rebuilds0,
			ForceTime:  r.forceTime / meas,
			UpdateTime: r.updateTime / meas,
			CommTime:   r.commTime / meas,
			CollTime:   r.collTime / meas,

			MeanLinkDist: r.meanDist,
			Imbalance:    imb,
		}
		res.TC = r.dm.TC
		if r.team != nil {
			res.TC.Add(&r.team.TC)
			res.AtomicFraction = r.team.TC.AtomicFraction()
		}
		if cfg.Rebalance == RebalanceORB && c.Rank() == 0 {
			res.Tree = r.dm.ORBTreeSnapshot()
		}
		if cfg.CollectState {
			res.Pos, res.Vel = gather(&cfg, c, r)
		}
		results[c.Rank()] = res
	})
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}

	out := results[0]
	out.Wall = wall
	var tc trace.Counters
	var taken, avoided int64
	for i, res := range results {
		tc.Add(&res.TC)
		taken += res.TC.AtomicsTaken
		avoided += res.TC.AtomicsAvoided
		tc.Add(&comms[i].TC)
	}
	out.TC = tc
	if taken+avoided > 0 {
		out.AtomicFraction = float64(taken) / float64(taken+avoided)
	}
	if stopped {
		return out, ErrCanceled
	}
	return out, nil
}

// stateGatherTag is far above the tag space the exchange phases use.
const stateGatherTag = 1 << 28

// gather collects every rank's core particles onto rank 0, indexed by
// persistent particle ID, wrapping deferred periodic coordinates back
// into the box. All ranks must call it; only rank 0 receives the
// state (the others return nil slices).
func gather(cfg *Config, c *mp.Comm, r *rankSim) (pos, vel []geom.Vec) {
	box := cfg.Box()
	var f []float64
	var ids []int32
	for _, b := range r.dm.Blocks {
		for i := 0; i < b.NCore; i++ {
			p, _ := box.Wrap(b.PS.PosAt(i))
			v := b.PS.VelAt(i)
			for k := 0; k < cfg.D; k++ {
				f = append(f, p[k])
			}
			for k := 0; k < cfg.D; k++ {
				f = append(f, v[k])
			}
			ids = append(ids, b.PS.ID[i])
		}
	}
	if c.Rank() != 0 {
		c.Send(0, stateGatherTag, f, ids)
		return nil, nil
	}
	pos = make([]geom.Vec, cfg.N)
	vel = make([]geom.Vec, cfg.N)
	fill := func(f []float64, ids []int32) {
		per := 2 * cfg.D
		for i, id := range ids {
			for k := 0; k < cfg.D; k++ {
				pos[id][k] = f[per*i+k]
				vel[id][k] = f[per*i+cfg.D+k]
			}
		}
	}
	fill(f, ids)
	for src := 1; src < cfg.P; src++ {
		rf, rids := c.Recv(src, stateGatherTag)
		fill(rf, rids)
	}
	return pos, vel
}

// Run dispatches on the configured mode.
func Run(cfg Config, iters int) (*Result, error) {
	switch cfg.Mode {
	case Serial, OpenMP:
		return RunShared(cfg, iters)
	case MPI, Hybrid, MPIsm:
		return RunDistributed(cfg, iters)
	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
}
