package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hybriddem/internal/fault"
	"hybriddem/internal/mp"
)

func chaosCfg(p int) Config {
	cfg := Default(2, 200)
	cfg.Mode = MPI
	cfg.P = p
	cfg.Seed = 17
	cfg.Warmup = 2
	return cfg
}

// TestSuperviseCleanRunMatchesPlain: without any faults, Supervise
// must reproduce Run exactly — the snapshot plumbing alone must not
// perturb the trajectory or the result bookkeeping.
func TestSuperviseCleanRunMatchesPlain(t *testing.T) {
	cfg := chaosCfg(2)
	cfg.CollectState = true
	plain, err := Run(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Supervise(cfg, 12, FTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sup.Iters != 12 {
		t.Errorf("supervised Iters = %d, want 12", sup.Iters)
	}
	for i := range plain.Pos {
		if plain.Pos[i] != sup.Pos[i] || plain.Vel[i] != sup.Vel[i] {
			t.Fatalf("particle %d diverged under supervision: %v vs %v", i, plain.Pos[i], sup.Pos[i])
		}
	}
}

// TestSuperviseSnapshotCadence: a sparse snapshot cadence must still
// recover bit-exactly — the rollback just replays more iterations. The
// kill fires late so at least one boundary has passed since the last
// taken snapshot.
func TestSuperviseSnapshotCadence(t *testing.T) {
	cfg := chaosCfg(2)
	cfg.CollectState = true
	base, err := Run(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, every := range []int{1, 3, 100} {
		plan := mp.NewFaultPlan(21)
		plan.ArmKill(1, 12)
		faulted := cfg
		faulted.Faults = plan
		got, err := Supervise(faulted, 16, FTConfig{SnapshotEvery: every, MaxRetries: 3})
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if plan.Stats().Killed != 1 {
			t.Fatalf("every=%d: kill stats %+v", every, plan.Stats())
		}
		for i := range base.Pos {
			if base.Pos[i] != got.Pos[i] {
				t.Fatalf("every=%d: particle %d diverged after recovery", every, i)
			}
		}
	}
}

// TestSuperviseDegradesToSingleRank: killing one of two ranks leaves a
// single survivor, which must finish the run alone.
func TestSuperviseDegradesToSingleRank(t *testing.T) {
	cfg := chaosCfg(2)
	cfg.CollectState = true
	plan := mp.NewFaultPlan(8)
	plan.ArmKill(0, 5)
	cfg.Faults = plan
	res, err := Supervise(cfg, 10, FTConfig{SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 10 {
		t.Errorf("Iters = %d, want 10", res.Iters)
	}
}

// TestSuperviseCannotDegradeLastRank: losing the only rank is
// unrecoverable and must say so, wrapping the kill fault.
func TestSuperviseCannotDegradeLastRank(t *testing.T) {
	cfg := chaosCfg(1)
	plan := mp.NewFaultPlan(8)
	plan.ArmKill(0, 2)
	cfg.Faults = plan
	_, err := Supervise(cfg, 8, FTConfig{})
	if err == nil {
		t.Fatal("single-rank kill recovered impossibly")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Killed {
		t.Fatalf("error %v does not wrap the kill fault", err)
	}
}

// TestSuperviseBackoffInterruptible: a caller that cancels (via
// Config.Stop) while Supervise sits out a recovery backoff must get
// control back promptly — demd cancels and drains jobs that may be
// mid-backoff — and the return must be the pending fault as a plain
// wrapped error, not ErrCanceled, because there is no partial Result
// to hand back.
func TestSuperviseBackoffInterruptible(t *testing.T) {
	cfg := chaosCfg(2)
	plan := mp.NewFaultPlan(8)
	plan.ArmKill(1, 5)
	cfg.Faults = plan

	var stop atomic.Bool
	cfg.Stop = stop.Load
	start := time.Now()
	res, err := Supervise(cfg, 10, FTConfig{
		Backoff: time.Hour,
		OnFault: func(attempt int, fe *fault.Error) { stop.Store(true) },
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("canceled backoff returned no error")
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("backoff cancellation returned ErrCanceled (%v); its contract promises a partial Result this path cannot provide", err)
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Kind != fault.Killed {
		t.Fatalf("error %v does not wrap the pending kill fault", err)
	}
	if res != nil {
		t.Fatalf("canceled backoff returned a result (%d iters); the failed attempt was rolled back", res.Iters)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %s to interrupt a 1h backoff", elapsed)
	}
}

// TestSuperviseRejectsSharedModes: supervision is a distributed-run
// facility; Serial and OpenMP configs must be rejected up front.
func TestSuperviseRejectsSharedModes(t *testing.T) {
	for _, m := range []Mode{Serial, OpenMP} {
		cfg := Default(2, 100)
		cfg.Mode = m
		if _, err := Supervise(cfg, 5, FTConfig{}); err == nil {
			t.Errorf("mode %v accepted", m)
		}
	}
}
