package core

import (
	"math"
	"strings"
	"testing"

	"hybriddem/internal/geom"
	"hybriddem/internal/machine"
	"hybriddem/internal/shm"
)

// TestDampedHybridMatchesSerial exercises the velocity-carrying halo
// path: with dissipative springs the force law reads relative
// velocities, so halo traffic must include them. A mismatch would
// silently diverge the trajectories.
func TestDampedHybridMatchesSerial(t *testing.T) {
	const iters = 100
	for _, d := range []int{2, 3} {
		cfg := testConfig(d, 250)
		cfg.Spring.Damp = 1.5
		serial, err := RunShared(cfg, iters)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{MPI, Hybrid} {
			cfg := testConfig(d, 250)
			cfg.Spring.Damp = 1.5
			cfg.Mode = mode
			cfg.P = 2
			if mode == Hybrid {
				cfg.T = 2
			}
			cfg.BlocksPerProc = 2
			res, err := RunDistributed(cfg, iters)
			if err != nil {
				t.Fatalf("D=%d %v: %v", d, mode, err)
			}
			if e := maxPosErr(t, cfg.Box(), serial, res); e > 1e-7 {
				t.Errorf("D=%d %v damped: max position deviation %g", d, mode, e)
			}
		}
	}
}

// TestHertzContactAcrossModes: the Hertzian contact variant must run
// identically in every execution mode.
func TestHertzContactAcrossModes(t *testing.T) {
	const iters = 80
	cfg := testConfig(2, 250)
	cfg.Spring.Hertz = true
	serial, err := RunShared(cfg, iters)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{OpenMP, MPI, Hybrid} {
		cfg := testConfig(2, 250)
		cfg.Spring.Hertz = true
		cfg.Mode = mode
		switch mode {
		case OpenMP:
			cfg.T = 3
		case MPI:
			cfg.P = 4
		case Hybrid:
			cfg.P, cfg.T = 2, 2
		}
		cfg.BlocksPerProc = 2
		if mode == OpenMP {
			cfg.BlocksPerProc = 1
		}
		res, err := Run(cfg, iters)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if e := maxPosErr(t, cfg.Box(), serial, res); e > 1e-7 {
			t.Errorf("%v hertz: max position deviation %g", mode, e)
		}
	}
}

// TestDampedEnergyDecays: with dissipation and no driving, the total
// energy must fall monotonically over a run (checked at endpoints).
func TestDampedEnergyDecays(t *testing.T) {
	cfg := testConfig(2, 300)
	cfg.Spring.Damp = 3
	short, err := RunShared(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(2, 300)
	cfg2.Spring.Damp = 3
	long, err := RunShared(cfg2, 400)
	if err != nil {
		t.Fatal(err)
	}
	e0 := short.Epot + short.Ekin
	e1 := long.Epot + long.Ekin
	if e1 >= e0 {
		t.Errorf("damped energy grew: %g -> %g", e0, e1)
	}
}

// TestClusteredFillMatchesAcrossModes: the FillHeight clustered
// initial condition must produce identical systems in shared and
// decomposed runs, including blocks that start empty.
func TestClusteredFillMatchesAcrossModes(t *testing.T) {
	const iters = 60
	cfg := testConfig(2, 300)
	cfg.FillHeight = 0.3
	cfg.BC = geom.Reflecting
	cfg.Gravity = -20
	serial, err := RunShared(cfg, iters)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		cfg := testConfig(2, 300)
		cfg.FillHeight = 0.3
		cfg.BC = geom.Reflecting
		cfg.Gravity = -20
		cfg.Mode = MPI
		cfg.P = p
		cfg.BlocksPerProc = 2
		res, err := RunDistributed(cfg, iters)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if e := maxPosErr(t, cfg.Box(), serial, res); e > 1e-7 {
			t.Errorf("P=%d clustered: max position deviation %g", p, e)
		}
	}
}

// TestClusteredLoadImbalanceVisible: on a virtual platform, a
// clustered system at B/P=1 must be measurably slower per iteration
// than a finer-grained run of the same system — the modelled clocks
// must expose load imbalance, since that is the entire premise of the
// paper's comparison.
func TestClusteredLoadImbalanceVisible(t *testing.T) {
	run := func(bpp int) float64 {
		cfg := Default(2, 20000)
		cfg.FillHeight = 0.25
		cfg.BC = geom.Reflecting
		cfg.Seed = 5
		cfg.Platform = machine.CompaqES40()
		cfg.Mode = MPI
		cfg.P = 16
		cfg.BlocksPerProc = bpp
		cfg.Warmup = 1
		res, err := RunDistributed(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerIter
	}
	coarse := run(1)
	fine := run(16)
	if fine >= coarse {
		t.Errorf("granularity did not help the clustered system: B/P=1 %gs vs B/P=16 %gs", coarse, fine)
	}
	if coarse < 1.5*fine {
		t.Errorf("imbalance too mild to be the paper's scenario: %g vs %g", coarse, fine)
	}
}

// TestFusedReducesLocksAndTime: the Section 11 fused loop must lower
// both the conflict fraction and the modelled time at fine
// granularity.
func TestFusedReducesLocksAndTime(t *testing.T) {
	run := func(fused bool) *Result {
		cfg := Default(3, 30000)
		cfg.Seed = 7
		cfg.Platform = machine.CompaqES40()
		cfg.Mode = Hybrid
		cfg.P = 4
		cfg.T = 4
		cfg.BlocksPerProc = 8
		cfg.Method = shm.SelectedAtomic
		cfg.Fused = fused
		cfg.Warmup = 1
		res, err := RunDistributed(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	perBlock := run(false)
	fusedRes := run(true)
	if fusedRes.AtomicFraction >= perBlock.AtomicFraction {
		t.Errorf("fused lock fraction %g not below per-block %g",
			fusedRes.AtomicFraction, perBlock.AtomicFraction)
	}
	if fusedRes.PerIter >= perBlock.PerIter {
		t.Errorf("fused time %g not below per-block %g", fusedRes.PerIter, perBlock.PerIter)
	}
	if fusedRes.TC.ParallelRegions >= perBlock.TC.ParallelRegions {
		t.Errorf("fused regions %d not below per-block %d",
			fusedRes.TC.ParallelRegions, perBlock.TC.ParallelRegions)
	}
}

// TestReorderingImprovesModelledTime reproduces the Table 1 vs 2
// relationship on every platform.
func TestReorderingImprovesModelledTime(t *testing.T) {
	for _, pf := range machine.Platforms() {
		run := func(reorder bool) float64 {
			cfg := Default(2, 20000)
			cfg.Seed = 3
			cfg.Platform = pf
			cfg.ModelN = 1_000_000
			cfg.Reorder = reorder
			cfg.Warmup = 1
			res, err := RunShared(cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			return res.PerIter
		}
		slow := run(false)
		fast := run(true)
		if fast >= slow {
			t.Errorf("%s: reordering did not help: %g vs %g", pf.Name, fast, slow)
		}
		gain := slow / fast
		if gain < 1.1 || gain > 2.2 {
			t.Errorf("%s: reordering gain %.2fx outside the paper's 1.2-1.6x band (with margin)", pf.Name, gain)
		}
	}
}

// TestVirtualTimeDeterminism: modelled times must be bitwise
// reproducible across runs regardless of goroutine scheduling.
func TestVirtualTimeDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := Default(3, 5000)
		cfg.Seed = 11
		cfg.Platform = machine.CompaqES40()
		cfg.Mode = Hybrid
		cfg.P = 2
		cfg.T = 3
		cfg.BlocksPerProc = 2
		cfg.Method = shm.SelectedAtomic
		res, err := RunDistributed(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerIter
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("modelled time not deterministic: %v vs %v", got, first)
		}
	}
}

// TestValidationErrors exercises the config error paths.
func TestValidationErrors(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.D = 0 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.L = -1 },
		func(c *Config) { c.RCFactor = 1.0 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.Spring.Diameter = 0 },
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.Mode = OpenMP; c.P = 2 },
		func(c *Config) { c.Mode = MPI; c.T = 2; c.P = 2 },
		func(c *Config) { c.Mode = Serial; c.T = 4 },
	}
	for i, mutate := range bad {
		cfg := Default(2, 100)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := Default(3, 10)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestModeTableCoverage pins the single name<->Mode table: every
// declared mode must round-trip through ModeByName (case-insensitively)
// and validate under a legal shape, and anything outside the table —
// an unknown name or an out-of-range Mode value — must be rejected by
// name lookup, String and Validate alike. This is the regression test
// for the flag-parsing drift where each command kept its own private
// mode switch and silently fell back on a default.
func TestModeTableCoverage(t *testing.T) {
	if len(Modes()) != len(ModeNames()) {
		t.Fatalf("Modes() has %d entries, ModeNames() %d", len(Modes()), len(ModeNames()))
	}
	shape := map[Mode]func(*Config){
		Serial: func(c *Config) {},
		OpenMP: func(c *Config) { c.T = 3 },
		MPI:    func(c *Config) { c.P = 4 },
		Hybrid: func(c *Config) { c.P, c.T = 2, 2 },
		MPIsm:  func(c *Config) { c.P = 4 },
	}
	for i, m := range Modes() {
		name := ModeNames()[i]
		if m.String() != name {
			t.Errorf("mode %d: String() = %q, table name %q", int(m), m.String(), name)
		}
		for _, spelled := range []string{name, strings.ToUpper(name)} {
			got, err := ModeByName(spelled)
			if err != nil || got != m {
				t.Errorf("ModeByName(%q) = %v, %v; want %v", spelled, got, err, m)
			}
		}
		mutate, ok := shape[m]
		if !ok {
			t.Fatalf("mode %v declared in the table but this test knows no legal shape for it — extend the shape map", m)
		}
		cfg := Default(2, 100)
		cfg.Mode = m
		mutate(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Errorf("legal %v config rejected: %v", m, err)
		}
	}
	if _, err := ModeByName("smpi"); err == nil {
		t.Error("unknown mode name accepted")
	}
	bogus := Default(2, 100)
	bogus.Mode = Mode(99)
	if err := bogus.Validate(); err == nil {
		t.Error("out-of-range mode validated")
	} else if !strings.Contains(err.Error(), "unrecognised mode") {
		t.Errorf("out-of-range mode error %q does not name the cause", err)
	}
	if s := Mode(99).String(); !strings.Contains(s, "99") {
		t.Errorf("Mode(99).String() = %q", s)
	}
}

// TestMpismValidation pins mpism's own constraints: threads are the
// node's other ranks, so T>1 is illegal, and the float32 halo
// compression remains a serial-only experiment.
func TestMpismValidation(t *testing.T) {
	cfg := Default(2, 100)
	cfg.Mode = MPIsm
	cfg.P, cfg.T = 4, 2
	if err := cfg.Validate(); err == nil {
		t.Error("mpism with T=2 accepted")
	}
	cfg.T = 1
	cfg.Float32 = true
	if err := cfg.Validate(); err == nil {
		t.Error("mpism with the Float32 fast path accepted")
	}
}

// TestRunDispatch covers the top-level mode dispatch including the
// error path.
func TestRunDispatch(t *testing.T) {
	cfg := testConfig(2, 120)
	if _, err := Run(cfg, 5); err != nil {
		t.Fatal(err)
	}
	cfg.Mode = Mode(99)
	if _, err := Run(cfg, 5); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := RunShared(Config{}, 1); err == nil {
		t.Error("zero config accepted")
	}
	mpiCfg := testConfig(2, 120)
	mpiCfg.Mode = MPI
	mpiCfg.P = 50 // forces block edges below rc
	mpiCfg.BlocksPerProc = 64
	if _, err := RunDistributed(mpiCfg, 2); err == nil {
		t.Error("too-fine layout accepted")
	}
}

// TestSkinAndRC checks the derived geometry quantities.
func TestSkinAndRC(t *testing.T) {
	cfg := Default(2, 100)
	cfg.Spring.Diameter = 0.1
	cfg.RCFactor = 1.5
	if math.Abs(cfg.RC()-0.15) > 1e-12 {
		t.Errorf("RC = %g", cfg.RC())
	}
	if math.Abs(cfg.Skin()-0.025) > 1e-12 {
		t.Errorf("Skin = %g", cfg.Skin())
	}
	box := cfg.Box()
	if box.D != 2 || box.Len[0] != cfg.L {
		t.Errorf("Box = %+v", box)
	}
}

// TestEfficiencyHelper checks Result.Efficiency arithmetic.
func TestEfficiencyHelper(t *testing.T) {
	ref := &Result{PerIter: 8}
	r := &Result{PerIter: 2}
	if got := r.Efficiency(ref, 2); got != 2 {
		t.Errorf("efficiency = %g", got)
	}
	zero := &Result{}
	if zero.Efficiency(ref, 1) != 0 {
		t.Error("zero-time efficiency should be 0")
	}
}
