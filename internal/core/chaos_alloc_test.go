package core

import (
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"hybriddem/internal/decomp"
	"hybriddem/internal/mp"
	"hybriddem/internal/raceflag"
)

// TestStepSteadyStateZeroAllocChaos gates the cost of the
// fault-tolerance machinery: with a FaultPlan installed (probabilities
// zero, so the injection draws run but never fire), sequence/checksum
// integrity on every message, and the watchdog armed, the steady-state
// distributed step must still allocate nothing. The per-(peer,tag)
// sequence maps only grow on first use, which warm-up covers.
func TestStepSteadyStateZeroAllocChaos(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"mpi", func(cfg *Config) { cfg.P = 4 }},
		{"hybrid", func(cfg *Config) { cfg.Mode = Hybrid; cfg.P = 2; cfg.T = 3 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := allocConfig(MPI)
			tc.mutate(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			l, err := decomp.NewLayout(cfg.Box(), cfg.RC(), cfg.P, cfg.BlocksPerProc)
			if err != nil {
				t.Fatal(err)
			}
			plan := mp.NewFaultPlan(1) // armed but silent: probs all zero
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			var mallocs uint64
			const iters = 20
			opt := mp.RunOptions{Net: mp.ZeroNetwork{}, Faults: plan, Watchdog: time.Minute}
			if _, err := mp.RunOpts(cfg.P, opt, func(c *mp.Comm) {
				r := newRankSim(&cfg, c, l)
				defer r.close()
				r.dm.FillClustered(cfg.N, cfg.Seed, cfg.InitVel, cfg.FillHeight)
				r.rebuild()
				for i := 0; i < 5; i++ {
					c.FaultPoint(i)
					r.step()
				}
				var m1, m2 runtime.MemStats
				c.Barrier()
				if c.Rank() == 0 {
					runtime.GC()
					runtime.ReadMemStats(&m1)
				}
				c.Barrier()
				for i := 0; i < iters; i++ {
					c.FaultPoint(5 + i)
					r.step()
				}
				c.Barrier()
				if c.Rank() == 0 {
					runtime.ReadMemStats(&m2)
					mallocs = m2.Mallocs - m1.Mallocs
				}
				c.Barrier()
			}); err != nil {
				t.Fatal(err)
			}
			if avg := mallocs / iters; avg != 0 {
				t.Errorf("steady-state step with integrity + fault plan allocates %d times per iteration, want 0", avg)
			}
		})
	}
}
