//go:build !race

// Package raceflag reports whether the race detector instrumented this
// build. Allocation-gate tests consult it: the detector's shadow
// bookkeeping allocates behind ordinary synchronisation, so
// AllocsPerRun assertions are meaningless under -race.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = false
