package server

import (
	"sync"
	"sync/atomic"
)

// hub fans one job's event stream out to its subscribers. Publishing
// never blocks: each subscriber owns a bounded channel, and a
// subscriber whose channel is full when an event arrives is dropped on
// the spot (its channel closed, the drop counted) instead of being
// allowed to apply backpressure to the simulation step loop. This is
// the server-side half of the slow-consumer contract; the connection
// writer sends a best-effort "dropped" notice when it drains the
// closed channel.
type hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool

	dropped atomic.Int64 // subscribers evicted for falling behind
	sent    atomic.Int64 // events enqueued across all subscribers
}

// subscriber is one attached event consumer. ch carries marshalled
// event lines; it is closed exactly once — by eviction, by stream end,
// or by the subscriber detaching itself.
type subscriber struct {
	ch      chan []byte
	once    sync.Once
	evicted atomic.Bool // closed because it was too slow
}

func (s *subscriber) close() { s.once.Do(func() { close(s.ch) }) }

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscribe attaches a consumer with the given buffer depth. On a hub
// whose stream already ended it returns ended=true and a subscriber
// with an immediately closed channel: the caller synthesizes the
// terminal replay (final status plus terminator) deterministically
// instead of racing the hub for events that were published before it
// arrived.
func (h *hub) subscribe(buf int) (s *subscriber, ended bool) {
	if buf < 1 {
		buf = 1
	}
	s = &subscriber{ch: make(chan []byte, buf)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		s.close()
		return s, true
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s, false
}

// unsubscribe detaches a consumer (client disconnect).
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
	s.close()
}

// publish offers one marshalled event line to every subscriber.
// Subscribers with no free buffer are evicted rather than waited on.
func (h *hub) publish(b []byte) {
	h.mu.Lock()
	for s := range h.subs {
		select {
		case s.ch <- b:
			h.sent.Add(1)
		default:
			delete(h.subs, s)
			s.evicted.Store(true)
			s.close()
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// publishFinal atomically delivers one last event to every subscriber
// and ends the stream. Because the delivery and the close happen under
// one lock acquisition, no subscriber can attach between them: every
// attached consumer sees exactly one terminal event before its channel
// closes (or is marked evicted if its buffer is full — it lost events
// and must resync), and anyone arriving later hits the closed hub and
// gets the synthesized terminal replay from subscribe's caller.
func (h *hub) publishFinal(b []byte) {
	h.mu.Lock()
	h.closed = true
	for s := range h.subs {
		select {
		case s.ch <- b:
			h.sent.Add(1)
		default:
			s.evicted.Store(true)
			h.dropped.Add(1)
		}
		s.close()
	}
	h.subs = make(map[*subscriber]struct{})
	h.mu.Unlock()
}

// closeAll ends the stream: every subscriber's channel closes after
// the events already buffered, and future subscribers get an
// immediate EOF.
func (h *hub) closeAll() {
	h.mu.Lock()
	h.closed = true
	subs := make([]*subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[*subscriber]struct{})
	h.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
}

// count returns the number of attached subscribers.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
