package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/core"
)

// State is a job's position in its lifecycle. Transitions:
//
//	queued ──────▶ running ─▶ done
//	   │              ├─────▶ canceled   (Stop hook honoured at a step boundary)
//	   │              └─────▶ failed
//	   └─────────▶ canceled              (canceled before a worker picked it up)
//
// done, canceled and failed are terminal. A canceled job that was
// given a Checkpoint path is resumable: submit a new job with Load set
// to that path and the same cumulative Iters.
type State int32

const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateCanceled
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateCanceled:
		return "canceled"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Job is one submitted simulation: its spec, lifecycle state, stop
// flag, event hub and counters. All mutable fields are either atomics
// or guarded by mu; the worker goroutine, connection handlers and the
// scheduler touch jobs concurrently.
type Job struct {
	ID   string
	Spec JobSpec

	mu      sync.Mutex
	state   State
	errMsg  string
	started time.Time // when the worker picked it up

	itersDone  atomic.Int64 // cumulative measured iterations completed
	itersStart int64        // iterations restored from the Load checkpoint

	stop atomic.Bool // the core.Config.Stop hook reads this

	hub *hub

	bytesOut  atomic.Int64 // bytes actually written to subscriber conns
	ckWritten atomic.Bool  // a checkpoint exists at Spec.Checkpoint
}

func newJob(id string, spec JobSpec) *Job {
	return &Job{ID: id, Spec: spec, hub: newHub()}
}

// setState transitions the job, recording the error message for
// failed, and returns the previous state.
func (j *Job) setState(s State, errMsg string) State {
	j.mu.Lock()
	prev := j.state
	j.state = s
	if errMsg != "" {
		j.errMsg = errMsg
	}
	if s == StateRunning {
		j.started = time.Now()
	}
	j.mu.Unlock()
	return prev
}

// snapshot returns the current state and error under the lock.
func (j *Job) snapshot() (State, string, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.started
}

// cancel requests cancellation. A queued job the scheduler has not
// started flips straight to canceled when the worker dequeues it; a
// running one stops at the next step boundary.
func (j *Job) cancel() {
	j.stop.Store(true)
}

// status assembles the wire-visible JobStatus including counters.
func (j *Job) status() *JobStatus {
	state, errMsg, started := j.snapshot()
	st := &JobStatus{
		ID:            j.ID,
		State:         state.String(),
		Error:         errMsg,
		ItersDone:     int(j.itersDone.Load()),
		ItersTotal:    j.Spec.Iters,
		Subscribers:   j.hub.count(),
		EventsSent:    j.hub.sent.Load(),
		EventsDropped: j.hub.dropped.Load(),
		BytesStreamed: j.bytesOut.Load(),
	}
	if j.ckWritten.Load() {
		st.Checkpoint = j.Spec.Checkpoint
	}
	if state == StateRunning && !started.IsZero() {
		if el := time.Since(started).Seconds(); el > 0 {
			st.StepsPerS = float64(j.itersDone.Load()-j.itersStart) / el
		}
	}
	return st
}

// publishEvent marshals and fans out one event. The newline framing
// is appended here, once, so every subscriber shares one immutable
// byte slice.
func (j *Job) publishEvent(ev Event) {
	ev.ID = j.ID
	b, err := json.Marshal(ev)
	if err != nil {
		return // the event types marshal by construction
	}
	j.hub.publish(append(b, '\n'))
}

// config translates the wire spec into a validated core.Config plus
// the iterations already held by the Load checkpoint (0 without Load).
// The run executes spec.Iters minus that count.
func (spec *JobSpec) config() (core.Config, int, error) {
	d := spec.D
	if d == 0 {
		d = 3
	}
	if spec.N < 1 {
		return core.Config{}, 0, fmt.Errorf("job needs n >= 1 (got %d)", spec.N)
	}
	if spec.Iters < 1 {
		return core.Config{}, 0, fmt.Errorf("job needs iters >= 1 (got %d)", spec.Iters)
	}
	cfg := core.Default(d, spec.N)
	if spec.Mode != "" {
		m, err := core.ModeByName(spec.Mode)
		if err != nil {
			return core.Config{}, 0, err
		}
		cfg.Mode = m
	}
	if spec.P > 0 {
		cfg.P = spec.P
	}
	if spec.T > 0 {
		cfg.T = spec.T
	}
	if spec.BPP > 0 {
		cfg.BlocksPerProc = spec.BPP
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	if spec.RC > 0 {
		cfg.RCFactor = spec.RC
	}
	if spec.NoReorder {
		cfg.Reorder = false
	}
	cfg.Warmup = spec.Warm
	cfg.Gravity = spec.Grav
	cfg.FillHeight = spec.Fill
	cfg.InitVel = spec.Vel
	cfg.Spring.Damp = spec.Damp

	restored := 0
	if spec.Load != "" {
		snap, err := checkpoint.LoadFile(spec.Load)
		if err != nil {
			return core.Config{}, 0, fmt.Errorf("load %s: %w", spec.Load, err)
		}
		if err := snap.Apply(&cfg); err != nil {
			return core.Config{}, 0, fmt.Errorf("load %s: %w", spec.Load, err)
		}
		restored = snap.Iters
		// The checkpointed state already includes the original warm-up;
		// running it again would silently advance the physics.
		cfg.Warmup = 0
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, 0, err
	}
	return cfg, restored, nil
}
