package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/core"
	"hybriddem/internal/mp"
)

// State is a job's position in its lifecycle. Transitions:
//
//	queued ──────▶ running ─▶ done
//	   ▲              ├─────▶ canceled   (Stop hook honoured at a step boundary)
//	   │              ├─────▶ failed
//	   │              └─────▶ queued     (retryable fault, restart budget left:
//	   │                                  re-queued after exponential backoff)
//	   └─────────▶ canceled              (canceled before a worker picked it up)
//
// A daemon restart demotes a journaled running job back to queued (its
// durable checkpoint carries the progress) and re-enqueues it, marked
// recovered.
//
// done, canceled and failed are terminal. A canceled job that was
// given a Checkpoint path is resumable: submit a new job with Load set
// to that path and the same cumulative Iters.
type State int32

const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateCanceled
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateCanceled:
		return "canceled"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Why a job's step loop was asked to stop. Cancellation, a wall-clock
// deadline and a progress stall all pull the same core.Config.Stop
// lever; the reason, recorded first-wins, tells the worker which
// terminal (or retry) path the stopped run takes.
const (
	stopNone int32 = iota
	stopCancel
	stopDeadline
	stopStalled
)

// Job is one submitted simulation: its spec, lifecycle state, stop
// flag, event hub and counters. All mutable fields are either atomics
// or guarded by mu; the worker goroutine, connection handlers and the
// scheduler touch jobs concurrently.
type Job struct {
	ID   string
	Spec JobSpec

	// seq is the numeric part of ID, journaled so job ids stay
	// monotonic across daemon restarts.
	seq int

	mu      sync.Mutex
	state   State
	errMsg  string
	started time.Time // when the worker picked it up

	itersDone  atomic.Int64 // cumulative measured iterations completed
	itersStart int64        // iterations restored at the start of this attempt

	stop       atomic.Bool  // the core.Config.Stop hook reads this
	stopReason atomic.Int32 // first stop* reason to fire wins

	restarts  atomic.Int32 // execution attempts consumed beyond the first
	recovered bool         // re-adopted from the journal (set before workers start)
	cancelReq bool         // journal replay only: a cancel record was seen

	// chaos is the job's armed fault plan, built once so the injected
	// kill fires exactly once across retries (mp.FaultPlan's own
	// semantics) unless the spec asks for a fresh plan per attempt.
	chaosOnce sync.Once
	chaos     *mp.FaultPlan

	hub *hub

	bytesOut  atomic.Int64 // bytes actually written to subscriber conns
	ckWritten atomic.Bool  // a checkpoint exists at Spec.Checkpoint
}

func newJob(id string, seq int, spec JobSpec) *Job {
	return &Job{ID: id, seq: seq, Spec: spec, hub: newHub()}
}

// setState transitions the job, recording the error message (done
// clears a previous attempt's fault message), and returns the previous
// state.
func (j *Job) setState(s State, errMsg string) State {
	j.mu.Lock()
	prev := j.state
	j.state = s
	j.errMsg = errMsg
	if s == StateRunning {
		j.started = time.Now()
	}
	j.mu.Unlock()
	return prev
}

// snapshot returns the current state and error under the lock.
func (j *Job) snapshot() (State, string, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.started
}

// trip asks the step loop to stop for the given reason. The first
// reason to fire wins; later trips (a cancel racing a deadline) keep
// the original classification.
func (j *Job) trip(reason int32) {
	j.stopReason.CompareAndSwap(stopNone, reason)
	j.stop.Store(true)
}

// cancel requests cancellation. A queued job the scheduler has not
// started flips straight to canceled when the worker dequeues it; a
// running one stops at the next step boundary.
func (j *Job) cancel() {
	j.trip(stopCancel)
}

// resetStop re-arms the stop surface for a fresh execution attempt
// (retry after a fault).
func (j *Job) resetStop() {
	j.stop.Store(false)
	j.stopReason.Store(stopNone)
}

// faultPlan returns the job's armed fault plan, or nil when the spec
// injects no faults. The default plan is shared across attempts, so
// the kill fires once and the retry runs clean (a transient fault);
// ChaosEveryAttempt builds a fresh armed plan per call, modeling a
// persistent fault that drains the restart budget.
func (j *Job) faultPlan() *mp.FaultPlan {
	if j.Spec.ChaosKill == "" {
		return nil
	}
	rank, step, err := parseKill(j.Spec.ChaosKill)
	if err != nil {
		return nil // Submit validated this; unreachable for accepted jobs
	}
	if j.Spec.ChaosEveryAttempt {
		p := mp.NewFaultPlan(1)
		p.ArmKill(rank, step)
		return p
	}
	j.chaosOnce.Do(func() {
		j.chaos = mp.NewFaultPlan(1)
		j.chaos.ArmKill(rank, step)
	})
	return j.chaos
}

// parseKill parses a "rank@step" fault-injection spec.
func parseKill(s string) (rank, step int, err error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return 0, 0, fmt.Errorf("chaos kill %q: want rank@step", s)
	}
	rank, err = strconv.Atoi(s[:at])
	if err == nil {
		step, err = strconv.Atoi(s[at+1:])
	}
	if err != nil || rank < 0 || step < 0 {
		return 0, 0, fmt.Errorf("chaos kill %q: want rank@step with non-negative integers", s)
	}
	return rank, step, nil
}

// status assembles the wire-visible JobStatus including counters.
func (j *Job) status() *JobStatus {
	state, errMsg, started := j.snapshot()
	st := &JobStatus{
		ID:            j.ID,
		State:         state.String(),
		Error:         errMsg,
		ItersDone:     int(j.itersDone.Load()),
		ItersTotal:    j.Spec.Iters,
		Subscribers:   j.hub.count(),
		EventsSent:    j.hub.sent.Load(),
		EventsDropped: j.hub.dropped.Load(),
		BytesStreamed: j.bytesOut.Load(),
		Restarts:      int(j.restarts.Load()),
		Recovered:     j.recovered,
	}
	if j.ckWritten.Load() {
		st.Checkpoint = j.Spec.Checkpoint
	}
	if state == StateRunning && !started.IsZero() {
		if el := time.Since(started).Seconds(); el > 0 {
			st.StepsPerS = float64(j.itersDone.Load()-j.itersStart) / el
		}
	}
	return st
}

// publishEvent marshals and fans out one event. The newline framing
// is appended here, once, so every subscriber shares one immutable
// byte slice.
func (j *Job) publishEvent(ev Event) {
	ev.ID = j.ID
	b, err := json.Marshal(ev)
	if err != nil {
		return // the event types marshal by construction
	}
	j.hub.publish(append(b, '\n'))
}

// publishFinalEvent marshals the terminal event and delivers it
// atomically with the stream close (see hub.publishFinal), so every
// attached subscriber sees exactly one terminal state line before EOF.
func (j *Job) publishFinalEvent(ev Event) {
	ev.ID = j.ID
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	j.hub.publishFinal(append(b, '\n'))
}

// config translates the wire spec into a validated core.Config plus
// the iterations already held by the Load checkpoint (0 without Load).
// The run executes spec.Iters minus that count.
func (spec *JobSpec) config() (core.Config, int, error) {
	d := spec.D
	if d == 0 {
		d = 3
	}
	if spec.N < 1 {
		return core.Config{}, 0, fmt.Errorf("job needs n >= 1 (got %d)", spec.N)
	}
	if spec.Iters < 1 {
		return core.Config{}, 0, fmt.Errorf("job needs iters >= 1 (got %d)", spec.Iters)
	}
	cfg := core.Default(d, spec.N)
	if spec.Mode != "" {
		m, err := core.ModeByName(spec.Mode)
		if err != nil {
			return core.Config{}, 0, err
		}
		cfg.Mode = m
	}
	if spec.P > 0 {
		cfg.P = spec.P
	}
	if spec.T > 0 {
		cfg.T = spec.T
	}
	if spec.BPP > 0 {
		cfg.BlocksPerProc = spec.BPP
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	if spec.RC > 0 {
		cfg.RCFactor = spec.RC
	}
	if spec.NoReorder {
		cfg.Reorder = false
	}
	cfg.Warmup = spec.Warm
	cfg.Gravity = spec.Grav
	cfg.FillHeight = spec.Fill
	cfg.InitVel = spec.Vel
	cfg.Spring.Damp = spec.Damp

	restored := 0
	if spec.Load != "" {
		snap, err := checkpoint.LoadFile(spec.Load)
		if err != nil {
			return core.Config{}, 0, fmt.Errorf("load %s: %w", spec.Load, err)
		}
		if err := snap.Apply(&cfg); err != nil {
			return core.Config{}, 0, fmt.Errorf("load %s: %w", spec.Load, err)
		}
		restored = snap.Iters
		// The checkpointed state already includes the original warm-up;
		// running it again would silently advance the physics.
		cfg.Warmup = 0
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, 0, err
	}
	return cfg, restored, nil
}
