// Package server is the simulation-as-a-service daemon behind
// cmd/demd: a long-running process that owns core.Run as a cancellable,
// checkpointed, resumable job. Clients speak a line-oriented JSON
// command protocol over a unix or TCP socket (one JSON object per
// request, one per response — `nc` is a usable client), jobs flow
// through a bounded queue into a fixed worker pool (submissions beyond
// the queue's depth are rejected with a retry-after hint instead of
// piling up), and per-step timeline/energy events fan out to any
// number of subscribers, with slow subscribers dropped rather than
// allowed to stall the simulation. See DESIGN.md §15.
package server

// Request is one client command. Cmd selects the verb; the other
// fields are per-verb arguments.
//
//	{"cmd":"submit","job":{"d":2,"n":400,"iters":50,"mode":"serial"}}
//	{"cmd":"status","id":"j1"}
//	{"cmd":"cancel","id":"j1"}
//	{"cmd":"list"}
//	{"cmd":"subscribe","id":"j1"}
//	{"cmd":"stats"}
//	{"cmd":"shutdown"}
type Request struct {
	Cmd string   `json:"cmd"`
	ID  string   `json:"id,omitempty"`
	Job *JobSpec `json:"job,omitempty"`
}

// JobSpec describes one simulation job over the wire. Zero fields take
// the same defaults core.Default gives the CLI; Iters is cumulative
// when Load resumes a checkpoint, exactly like demrun's -iters.
type JobSpec struct {
	D     int     `json:"d,omitempty"`    // spatial dimensions (default 3)
	N     int     `json:"n"`              // particle count (required)
	Iters int     `json:"iters"`          // measured iterations, cumulative under load (required)
	Mode  string  `json:"mode,omitempty"` // serial | openmp | mpi | hybrid | mpism (default serial)
	P     int     `json:"p,omitempty"`    // ranks (default 1)
	T     int     `json:"t,omitempty"`    // threads per rank (default 1)
	BPP   int     `json:"bpp,omitempty"`  // blocks per process (default 1)
	Seed  int64   `json:"seed,omitempty"` // random seed (default 1)
	Warm  int     `json:"warmup,omitempty"`
	RC    float64 `json:"rc,omitempty"` // cutoff factor rc/rmax (default 1.5)
	Grav  float64 `json:"gravity,omitempty"`
	Fill  float64 `json:"fill,omitempty"` // clustered-bed fill fraction
	Vel   float64 `json:"vel,omitempty"`  // initial velocity scale
	Damp  float64 `json:"damp,omitempty"`

	// NoReorder disables the cache particle reordering. Serial and
	// openmp jobs that should be cancel-and-resume bit-exact need it
	// (see core.Config.Stop); the distributed modes are exact either
	// way.
	NoReorder bool `json:"noreorder,omitempty"`

	// Checkpoint, when set, is the path the job writes crash-safe
	// checkpoints to: the final state on completion, and the partial
	// state when the job is canceled — which is what makes a canceled
	// job resumable. Load, when set, resumes from an existing
	// checkpoint file; the job then runs Iters minus the checkpoint's
	// completed count.
	Checkpoint string `json:"checkpoint,omitempty"`
	Load       string `json:"load,omitempty"`

	// MaxRestarts is the job's retry budget: how many times the daemon
	// re-queues it (with exponential backoff) after a retryable fault
	// before declaring it failed. 0 takes the server default
	// (Options.MaxRestarts); negative means no retries. The count of
	// restarts consumed is journaled, so the budget survives daemon
	// restarts.
	MaxRestarts int `json:"maxRestarts,omitempty"`

	// CheckpointEvery overrides the server's durable checkpoint cadence
	// for this job: every that many measured iterations the job's state
	// is saved under the daemon's data dir, bounding how much work a
	// daemon crash can lose. 0 takes the server default; it only
	// matters when the daemon runs with a data dir.
	CheckpointEvery int `json:"checkpointEvery,omitempty"`

	// DeadlineMs is a wall-clock budget for one execution attempt,
	// measured from when a worker picks the job up. A job over its
	// deadline checkpoints, frees the worker and lands in failed —
	// deadline overruns are not retried (the next attempt would just
	// time out again).
	DeadlineMs int64 `json:"deadlineMs,omitempty"`

	// MinStepsPerS is a progress floor: if, over a sliding window of
	// StallWindowMs (default 2000), the job averages fewer measured
	// steps per second than this, it is declared stalled, checkpointed,
	// and treated as a retryable fault — a stall is often environmental
	// (noisy neighbour, cold cache) and worth another attempt.
	MinStepsPerS  float64 `json:"minStepsPerSec,omitempty"`
	StallWindowMs int64   `json:"stallWindowMs,omitempty"`

	// WatchdogMs arms core.Config.Watchdog for this job: an attempt
	// whose step loop goes silent that long is killed from inside the
	// run with a timeout fault (which is retryable). 0 takes the server
	// default (Options.Watchdog).
	WatchdogMs int64 `json:"watchdogMs,omitempty"`

	// ChaosKill ("rank@step") arms a fault-injection kill for the job,
	// exercising the supervise/retry path end to end. The kill fires
	// once per job — the retry then runs clean — unless
	// ChaosEveryAttempt re-arms it on every attempt, which models a
	// persistent fault and drains the restart budget. Distributed modes
	// only.
	ChaosKill         string `json:"chaosKill,omitempty"`
	ChaosEveryAttempt bool   `json:"chaosEveryAttempt,omitempty"`
}

// Response answers one Request. OK false carries Error; a rejected
// submit additionally carries RetryAfterMs (backpressure: try again
// after that many milliseconds).
type Response struct {
	OK           bool         `json:"ok"`
	Error        string       `json:"error,omitempty"`
	RetryAfterMs int64        `json:"retryAfterMs,omitempty"`
	ID           string       `json:"id,omitempty"`    // submit: the new job's id
	Job          *JobStatus   `json:"job,omitempty"`   // status
	Jobs         []*JobStatus `json:"jobs,omitempty"`  // list
	Stats        *Stats       `json:"stats,omitempty"` // stats
}

// JobStatus is the externally visible state of one job, including the
// per-job counters the observability surface is built on.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // queued | running | done | canceled | failed
	Error string `json:"error,omitempty"`

	ItersDone  int     `json:"itersDone"`  // measured iterations completed (cumulative)
	ItersTotal int     `json:"itersTotal"` // requested cumulative total
	StepsPerS  float64 `json:"stepsPerSec,omitempty"`

	Subscribers   int   `json:"subscribers"`
	EventsSent    int64 `json:"eventsSent"`
	EventsDropped int64 `json:"eventsDropped"` // events lost to slow subscribers
	BytesStreamed int64 `json:"bytesStreamed"`

	Checkpoint string `json:"checkpoint,omitempty"` // path of the last checkpoint written

	// Restarts counts execution attempts consumed beyond the first;
	// Recovered marks a job the daemon re-adopted from its journal
	// after a restart. Both survive daemon restarts.
	Restarts  int  `json:"restarts,omitempty"`
	Recovered bool `json:"recovered,omitempty"`
}

// Stats is the server-wide counter snapshot.
type Stats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queueDepth"` // jobs waiting (bound: QueueCap)
	QueueCap   int   `json:"queueCap"`
	Running    int   `json:"running"`
	Submitted  int64 `json:"submitted"`
	Rejected   int64 `json:"rejected"` // backpressure rejections
	Completed  int64 `json:"completed"`
	Canceled   int64 `json:"canceled"`
	Failed     int64 `json:"failed"`
	Retried    int64 `json:"retried"`   // re-queues after retryable faults
	Recovered  int64 `json:"recovered"` // jobs re-adopted from the journal at startup
}

// Event is one line of a subscription stream. Type "step" carries the
// per-iteration energies; "state" announces lifecycle transitions
// (running, done, canceled, failed). Every stream ends with exactly
// one terminator line: "eof" after a clean end (for a job that already
// finished, the stream is just the terminator), or "dropped" when the
// subscriber fell too far behind and was evicted, losing events.
type Event struct {
	Event string  `json:"event"` // step | state | eof | dropped
	ID    string  `json:"id"`
	Iter  int     `json:"iter,omitempty"`
	Epot  float64 `json:"epot,omitempty"`
	Ekin  float64 `json:"ekin,omitempty"`
	State string  `json:"state,omitempty"`
	Error string  `json:"error,omitempty"`
}
