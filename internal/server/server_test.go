package server

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hybriddem/internal/checkpoint"
)

// startServer builds a server listening on a unix socket in a temp dir
// and tears everything down with the test.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "s.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Shutdown)
	return s, sock
}

func dial(t *testing.T, sock string) (net.Conn, *json.Encoder, *json.Decoder) {
	t.Helper()
	c, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, json.NewEncoder(c), json.NewDecoder(c)
}

func request(t *testing.T, enc *json.Encoder, dec *json.Decoder, req Request) Response {
	t.Helper()
	if err := enc.Encode(&req); err != nil {
		t.Fatalf("send %q: %v", req.Cmd, err)
	}
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("recv %q: %v", req.Cmd, err)
	}
	return resp
}

// waitState polls the server API until the job reaches want or a
// terminal state.
func waitState(t *testing.T, s *Server, id, want string) *JobStatus {
	t.Helper()
	// Generous: the bit-identity specs run tens of thousands of steps,
	// and -race on a single-CPU runner slows them well over 10x.
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp := s.Status(id)
		if !resp.OK {
			t.Fatalf("status %s: %s", id, resp.Error)
		}
		st := resp.Job
		if st.State == want {
			return st
		}
		switch st.State {
		case "done", "canceled", "failed":
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitStreamsToCompletion drives the happy path over the socket:
// submit, subscribe, watch every step event arrive in order, and check
// the final status and counters. A blocker job holds the single worker
// until the subscription is attached, so every event of the watched
// job is provably observed.
func TestSubmitStreamsToCompletion(t *testing.T) {
	s, sock := startServer(t, Options{Workers: 1})
	_, enc, dec := dial(t, sock)

	blocker := request(t, enc, dec, Request{Cmd: "submit", Job: &JobSpec{D: 2, N: 400, Iters: 500000}})
	if !blocker.OK {
		t.Fatalf("submit blocker: %s", blocker.Error)
	}

	const iters = 6
	resp := request(t, enc, dec, Request{Cmd: "submit", Job: &JobSpec{D: 2, N: 100, Iters: iters}})
	if !resp.OK {
		t.Fatalf("submit: %s", resp.Error)
	}
	id := resp.ID

	// Subscribe on a second connection while the job is still queued,
	// then release the worker.
	_, senc, sdec := dial(t, sock)
	if r := request(t, senc, sdec, Request{Cmd: "subscribe", ID: id}); !r.OK {
		t.Fatalf("subscribe: %s", r.Error)
	}
	if r := request(t, enc, dec, Request{Cmd: "cancel", ID: blocker.ID}); !r.OK {
		t.Fatalf("cancel blocker: %s", r.Error)
	}

	steps := 0
	sawDone, sawEOF := false, false
	for !sawEOF {
		var ev Event
		if err := sdec.Decode(&ev); err != nil {
			t.Fatalf("event stream after %d steps: %v", steps, err)
		}
		switch ev.Event {
		case "step":
			if ev.Iter != steps {
				t.Fatalf("step event %d arrived out of order (iter %d)", steps, ev.Iter)
			}
			steps++
		case "state":
			if ev.State == "done" {
				sawDone = true
			}
		case "eof":
			sawEOF = true
		case "dropped":
			t.Fatal("subscriber evicted during a 6-step run")
		}
	}
	if steps != iters {
		t.Fatalf("streamed %d step events, want %d", steps, iters)
	}
	if !sawDone {
		t.Fatal("stream ended without the done event")
	}

	st := waitState(t, s, id, "done")
	if st.ItersDone != iters || st.EventsSent == 0 || st.BytesStreamed == 0 {
		t.Fatalf("final status %+v: want %d iterations and nonzero stream counters", st, iters)
	}
	if r := s.ServerStats(); r.Stats.Completed != 1 || r.Stats.Submitted != 2 {
		t.Fatalf("server stats %+v after one completed and one canceled job", r.Stats)
	}

	// A subscription to a finished job replays the terminal state
	// deterministically: one final status event, then the terminator.
	if r := request(t, senc, sdec, Request{Cmd: "subscribe", ID: id}); !r.OK {
		t.Fatalf("re-subscribe: %s", r.Error)
	}
	var ev Event
	if err := sdec.Decode(&ev); err != nil {
		t.Fatalf("terminal replay: %v", err)
	}
	if ev.Event != "state" || ev.State != "done" || ev.Iter != iters {
		t.Fatalf("subscribe to a finished job streamed %+v, want the done state event", ev)
	}
	if err := sdec.Decode(&ev); err != nil {
		t.Fatalf("terminator: %v", err)
	}
	if ev.Event != "eof" {
		t.Fatalf("terminal replay followed by %q, want eof", ev.Event)
	}
}

// TestQueueFullBackpressure pins the bounded-queue contract: with one
// worker busy and a one-slot queue, a third submission is rejected
// with a retry-after hint instead of queued without bound — and the
// rejection costs nothing (no job id, no table entry).
func TestQueueFullBackpressure(t *testing.T) {
	s, _ := startServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 250 * time.Millisecond})

	long := &JobSpec{D: 2, N: 400, Iters: 500000}
	r1 := s.Submit(long)
	if !r1.OK {
		t.Fatalf("submit 1: %s", r1.Error)
	}
	waitState(t, s, r1.ID, "running")

	r2 := s.Submit(long)
	if !r2.OK {
		t.Fatalf("submit 2 (queued): %s", r2.Error)
	}
	r3 := s.Submit(long)
	if r3.OK {
		t.Fatal("submit 3 accepted with a full queue")
	}
	if r3.RetryAfterMs != 250 {
		t.Fatalf("rejection carries RetryAfterMs=%d, want 250", r3.RetryAfterMs)
	}
	if s.Status(r3.ID).OK {
		t.Fatal("rejected submission left a job behind")
	}
	if st := s.ServerStats().Stats; st.Rejected != 1 || st.Submitted != 2 {
		t.Fatalf("stats after rejection: %+v", st)
	}

	// A queued job cancels instantly — no worker ever claims it.
	if r := s.Cancel(r2.ID); !r.OK {
		t.Fatalf("cancel queued: %s", r.Error)
	}
	if st := waitState(t, s, r2.ID, "canceled"); st.ItersDone != 0 {
		t.Fatalf("queued job ran %d iterations before cancel", st.ItersDone)
	}
	if r := s.Cancel(r1.ID); !r.OK {
		t.Fatalf("cancel running: %s", r.Error)
	}
	waitState(t, s, r1.ID, "canceled")
}

// TestSubmitValidation rejects garbage at the door.
func TestSubmitValidation(t *testing.T) {
	s, _ := startServer(t, Options{MaxN: 1000, MaxIters: 100})
	for name, spec := range map[string]*JobSpec{
		"nil spec":     nil,
		"no particles": {Iters: 5},
		"no iters":     {N: 100},
		"bad mode":     {N: 100, Iters: 5, Mode: "cuda"},
		"over max-n":   {N: 5000, Iters: 5},
		"over max-it":  {N: 100, Iters: 500},
	} {
		if r := s.Submit(spec); r.OK {
			t.Errorf("%s: accepted", name)
		}
	}
	if r := s.Status("j999"); r.OK {
		t.Error("status of an unknown job succeeded")
	}
}

// TestCancelResumeBitIdenticalOverSocket is the daemon-level
// acceptance check: a job canceled mid-run checkpoints its partial
// state, and resubmitting with that checkpoint as the load path lands
// — bit for bit — on the same final state as an uninterrupted job.
func TestCancelResumeBitIdenticalOverSocket(t *testing.T) {
	dir := t.TempDir()
	s, sock := startServer(t, Options{Workers: 1})
	_, enc, dec := dial(t, sock)

	// A lively spec (velocity + tight cutoff) rebuilds its link list
	// every handful of steps, so the latched cancel lands on a rebuild
	// boundary quickly; noreorder because bit-exact resume in the
	// shared modes needs the cache reordering off (see core.Config.Stop).
	// The total is generous because the cancel round-trips over the
	// socket: on a starved single-CPU machine the first streamed step
	// can reach the client tens of milliseconds late, and the job must
	// still be comfortably mid-run when the cancel lands.
	const total = 20000
	spec := JobSpec{D: 2, N: 300, Iters: total, Mode: "openmp", T: 2,
		Warm: 1, Vel: 4, RC: 1.2, NoReorder: true}

	// Reference: an unbroken run of the same spec.
	ref := spec
	ref.Checkpoint = filepath.Join(dir, "ref.ck")
	rr := request(t, enc, dec, Request{Cmd: "submit", Job: &ref})
	if !rr.OK {
		t.Fatalf("submit reference: %s", rr.Error)
	}
	waitState(t, s, rr.ID, "done")

	// Victim: same spec, canceled after the first streamed step. A
	// blocker holds the single worker so the victim stays queued while
	// the subscriber attaches — otherwise the short run could finish
	// before the subscription lands and stream nothing but eof.
	blocker := s.Submit(&JobSpec{D: 2, N: 400, Iters: 500000})
	if !blocker.OK {
		t.Fatalf("submit blocker: %s", blocker.Error)
	}
	victim := spec
	victim.Checkpoint = filepath.Join(dir, "victim.ck")
	rv := request(t, enc, dec, Request{Cmd: "submit", Job: &victim})
	if !rv.OK {
		t.Fatalf("submit victim: %s", rv.Error)
	}
	sc, senc, sdec := dial(t, sock)
	_ = sc
	if r := request(t, senc, sdec, Request{Cmd: "subscribe", ID: rv.ID}); !r.OK {
		t.Fatalf("subscribe: %s", r.Error)
	}
	if r := request(t, enc, dec, Request{Cmd: "cancel", ID: blocker.ID}); !r.OK {
		t.Fatalf("cancel blocker: %s", r.Error)
	}
	for {
		var ev Event
		if err := sdec.Decode(&ev); err != nil {
			t.Fatalf("event stream: %v", err)
		}
		if ev.Event == "step" {
			break
		}
		if ev.Event == "eof" || ev.Event == "dropped" {
			t.Fatalf("stream ended (%s) before any step event", ev.Event)
		}
	}
	if r := request(t, enc, dec, Request{Cmd: "cancel", ID: rv.ID}); !r.OK {
		t.Fatalf("cancel: %s", r.Error)
	}
	st := waitState(t, s, rv.ID, "canceled")
	if st.ItersDone <= 0 || st.ItersDone >= total {
		t.Fatalf("victim canceled after %d iterations, want mid-run", st.ItersDone)
	}
	if st.Checkpoint == "" {
		t.Fatal("canceled victim reports no checkpoint")
	}

	// Resume: load the victim's checkpoint, same cumulative total.
	resume := spec
	resume.Load = victim.Checkpoint
	resume.Checkpoint = filepath.Join(dir, "resumed.ck")
	rs := request(t, enc, dec, Request{Cmd: "submit", Job: &resume})
	if !rs.OK {
		t.Fatalf("submit resume: %s", rs.Error)
	}
	fin := waitState(t, s, rs.ID, "done")
	if fin.ItersDone != total {
		t.Fatalf("resumed job finished at %d cumulative iterations, want %d", fin.ItersDone, total)
	}

	want, err := checkpoint.LoadFile(ref.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.LoadFile(resume.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if want.Iters != total || got.Iters != total {
		t.Fatalf("cumulative counts: reference %d, resumed %d, want %d", want.Iters, got.Iters, total)
	}
	for i := 0; i < want.N; i++ {
		wp, gp := want.Pos.At(i, want.D), got.Pos.At(i, want.D)
		wv, gv := want.Vel.At(i, want.D), got.Vel.At(i, want.D)
		for k := 0; k < want.D; k++ {
			if wp[k] != gp[k] || wv[k] != gv[k] {
				t.Fatalf("particle %d component %d differs: pos %v vs %v, vel %v vs %v",
					i, k, wp[k], gp[k], wv[k], gv[k])
			}
		}
	}
}

// TestResumeExhaustedIters: resubmitting a finished checkpoint with a
// cumulative total it already holds fails instead of silently running.
func TestResumeExhaustedIters(t *testing.T) {
	dir := t.TempDir()
	s, _ := startServer(t, Options{Workers: 1})
	ck := filepath.Join(dir, "done.ck")
	r := s.Submit(&JobSpec{D: 2, N: 100, Iters: 3, Checkpoint: ck})
	if !r.OK {
		t.Fatalf("submit: %s", r.Error)
	}
	waitState(t, s, r.ID, "done")

	r = s.Submit(&JobSpec{D: 2, N: 100, Iters: 3, Load: ck})
	if !r.OK {
		t.Fatalf("submit resume: %s", r.Error)
	}
	resp := s.Status(r.ID)
	deadline := time.Now().Add(10 * time.Second)
	for resp.Job.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("exhausted resume ended %s, want failed", resp.Job.State)
		}
		time.Sleep(2 * time.Millisecond)
		resp = s.Status(r.ID)
	}
}

// TestShutdownCancelsAndCheckpoints: Shutdown drains — the running job
// is canceled at a step boundary and still writes its checkpoint.
func TestShutdownCancelsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "drain.ck")
	s, _ := startServer(t, Options{Workers: 1})
	r := s.Submit(&JobSpec{D: 2, N: 400, Iters: 500000, Checkpoint: ck})
	if !r.OK {
		t.Fatalf("submit: %s", r.Error)
	}
	waitState(t, s, r.ID, "running")
	s.Shutdown()
	st := s.Status(r.ID).Job
	if st.State != "canceled" {
		t.Fatalf("after shutdown the job is %s, want canceled", st.State)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("drained job left no checkpoint: %v", err)
	}
	if rs := s.Submit(&JobSpec{D: 2, N: 100, Iters: 3}); rs.OK {
		t.Fatal("submit accepted after shutdown")
	}
}
