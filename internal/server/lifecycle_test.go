package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hybriddem/internal/checkpoint"
)

// newDurable builds a Server (no listener — these tests drive the API
// directly) over the given data dir and tears it down with the test.
func newDurable(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// waitTerminal polls until the job leaves the live states, returning
// its final status.
func waitTerminal(t *testing.T, s *Server, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp := s.Status(id)
		if !resp.OK {
			t.Fatalf("status %s: %s", id, resp.Error)
		}
		switch resp.Job.State {
		case "done", "canceled", "failed":
			return resp.Job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, resp.Job.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// compareCk loads two checkpoint files and fails unless positions and
// velocities match bit for bit.
func compareCk(t *testing.T, refPath, gotPath string) {
	t.Helper()
	want, err := checkpoint.LoadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.LoadFile(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	if want.Iters != got.Iters || want.N != got.N {
		t.Fatalf("checkpoint shapes differ: %d iters/%d particles vs %d/%d",
			want.Iters, want.N, got.Iters, got.N)
	}
	for i := 0; i < want.N; i++ {
		wp, gp := want.Pos.At(i, want.D), got.Pos.At(i, want.D)
		wv, gv := want.Vel.At(i, want.D), got.Vel.At(i, want.D)
		for k := 0; k < want.D; k++ {
			if wp[k] != gp[k] || wv[k] != gv[k] {
				t.Fatalf("particle %d component %d differs: pos %v vs %v, vel %v vs %v",
					i, k, wp[k], gp[k], wv[k], gv[k])
			}
		}
	}
}

// TestRecoveryResumeBitExact is the crash-recovery acceptance check: a
// daemon that dies mid-job (journal frozen exactly as kill -9 would
// leave it) restarts on the same data dir, re-adopts the job, resumes
// it from the last durable checkpoint, and the final state is bit-for-
// bit the state a never-crashed daemon of the same configuration
// produces. (The reference daemon is durable too: the checkpoint
// cadence defines the chunk grid, which is part of the trajectory —
// see the chunk-alignment note in execute.)
func TestRecoveryResumeBitExact(t *testing.T) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")

	// Lively spec so the link list rebuilds often; noreorder because
	// bit-exact resume needs the cache reordering off. The total is
	// generous so the crash provably lands mid-run on any machine.
	const total = 8000
	spec := JobSpec{D: 2, N: 300, Iters: total, Warm: 1, Vel: 4, RC: 1.2,
		NoReorder: true, CheckpointEvery: 25}

	// Reference: an unbroken run on its own durable daemon.
	ref := newDurable(t, Options{Workers: 1, DataDir: filepath.Join(dir, "refdata")})
	refSpec := spec
	refSpec.Checkpoint = filepath.Join(dir, "ref.ck")
	rr := ref.Submit(&refSpec)
	if !rr.OK {
		t.Fatalf("submit reference: %s", rr.Error)
	}
	if st := waitTerminal(t, ref, rr.ID); st.State != "done" {
		t.Fatalf("reference ended %s: %s", st.State, st.Error)
	}

	// Victim: a durable server crashed mid-run.
	s1, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	vSpec := spec
	vSpec.Checkpoint = filepath.Join(dir, "victim.ck")
	rv := s1.Submit(&vSpec)
	if !rv.OK {
		t.Fatalf("submit victim: %s", rv.Error)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s1.Status(rv.ID).Job
		if st.State == "running" && st.ItersDone >= 100 {
			break
		}
		if st.State == "done" {
			t.Fatal("victim finished before the crash; raise Iters")
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never reached 100 iterations (state %s, %d done)", st.State, st.ItersDone)
		}
		time.Sleep(time.Millisecond)
	}
	s1.crash()

	// Restart on the same data dir: the journal replays, the job comes
	// back queued+recovered and runs to completion.
	s2 := newDurable(t, Options{Workers: 1, DataDir: dataDir})
	if st := s2.ServerStats().Stats; st.Recovered != 1 {
		t.Fatalf("restarted server recovered %d jobs, want 1", st.Recovered)
	}
	fin := waitTerminal(t, s2, rv.ID)
	if fin.State != "done" {
		t.Fatalf("recovered job ended %s: %s", fin.State, fin.Error)
	}
	if !fin.Recovered {
		t.Fatal("recovered job does not report Recovered")
	}
	if fin.ItersDone != total {
		t.Fatalf("recovered job finished at %d iterations, want %d", fin.ItersDone, total)
	}

	// Job ids stay monotonic across the restart: the journal carries the
	// high-water mark, so the next submission cannot reuse the dead
	// incarnation's id.
	rn := s2.Submit(&JobSpec{D: 2, N: 50, Iters: 2})
	if !rn.OK {
		t.Fatalf("post-restart submit: %s", rn.Error)
	}
	if rn.ID == rv.ID || rn.ID != fmt.Sprintf("j%d", 2) {
		t.Fatalf("post-restart submit got id %s after %s; ids must stay monotonic", rn.ID, rv.ID)
	}
	waitTerminal(t, s2, rn.ID)

	compareCk(t, refSpec.Checkpoint, vSpec.Checkpoint)
}

// TestRecoveryRequeuesQueuedJobs: jobs that were still queued when the
// daemon died are re-enqueued on restart in submission order, behind
// the interrupted running job.
func TestRecoveryRequeuesQueuedJobs(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	blocker := s1.Submit(&JobSpec{D: 2, N: 400, Iters: 500000})
	if !blocker.OK {
		t.Fatalf("submit blocker: %s", blocker.Error)
	}
	var queued []string
	for i := 0; i < 2; i++ {
		r := s1.Submit(&JobSpec{D: 2, N: 60, Iters: 3})
		if !r.OK {
			t.Fatalf("submit queued %d: %s", i, r.Error)
		}
		queued = append(queued, r.ID)
	}
	waitState(t, s1, blocker.ID, "running")
	s1.crash()

	s2 := newDurable(t, Options{Workers: 1, DataDir: dataDir})
	if st := s2.ServerStats().Stats; st.Recovered != 3 {
		t.Fatalf("recovered %d jobs, want 3", st.Recovered)
	}
	// The blocker resumed first (single worker); cancel it so the two
	// short jobs behind it get the worker and finish.
	if r := s2.Cancel(blocker.ID); !r.OK {
		t.Fatalf("cancel blocker: %s", r.Error)
	}
	for _, id := range queued {
		if st := waitTerminal(t, s2, id); st.State != "done" {
			t.Fatalf("requeued job %s ended %s: %s", id, st.State, st.Error)
		}
	}
}

// TestRecoveryHonorsDurableCancel: a cancel whose intent reached the
// journal but whose state transition did not (daemon died in between)
// still cancels on recovery — the job must not rise from the dead and
// run.
func TestRecoveryHonorsDurableCancel(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Options{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	blocker := s1.Submit(&JobSpec{D: 2, N: 400, Iters: 500000})
	if !blocker.OK {
		t.Fatalf("submit blocker: %s", blocker.Error)
	}
	victim := s1.Submit(&JobSpec{D: 2, N: 60, Iters: 3})
	if !victim.OK {
		t.Fatalf("submit victim: %s", victim.Error)
	}
	waitState(t, s1, blocker.ID, "running")
	if r := s1.Cancel(victim.ID); !r.OK {
		t.Fatalf("cancel: %s", r.Error)
	}
	s1.crash()

	s2 := newDurable(t, Options{Workers: 1, DataDir: dataDir})
	st := s2.Status(victim.ID)
	if !st.OK || st.Job.State != "canceled" {
		t.Fatalf("canceled-before-crash job recovered as %+v, want canceled", st.Job)
	}
	if recov := s2.ServerStats().Stats.Recovered; recov != 1 {
		t.Fatalf("recovered %d jobs, want 1 (the blocker only)", recov)
	}
}

// TestRetryTransientFaultCompletes: a chaos-killed rank fails the
// attempt (single-rank MPI cannot degrade), the server retries after
// backoff, the shared fault plan has already fired, and the clean
// second attempt completes bit-exactly against an unfaulted reference.
func TestRetryTransientFaultCompletes(t *testing.T) {
	dir := t.TempDir()
	s := newDurable(t, Options{
		Workers: 1, DataDir: filepath.Join(dir, "data"),
		RetryBackoff: 2 * time.Millisecond,
	})

	spec := JobSpec{D: 2, N: 100, Iters: 60, Mode: "mpi", P: 1,
		NoReorder: true, CheckpointEvery: 20}

	refSpec := spec
	refSpec.Checkpoint = filepath.Join(dir, "ref.ck")
	rr := s.Submit(&refSpec)
	if !rr.OK {
		t.Fatalf("submit reference: %s", rr.Error)
	}
	if st := waitTerminal(t, s, rr.ID); st.State != "done" {
		t.Fatalf("reference ended %s: %s", st.State, st.Error)
	}

	faulted := spec
	faulted.Checkpoint = filepath.Join(dir, "faulted.ck")
	faulted.ChaosKill = "0@10"
	rf := s.Submit(&faulted)
	if !rf.OK {
		t.Fatalf("submit faulted: %s", rf.Error)
	}
	fin := waitTerminal(t, s, rf.ID)
	if fin.State != "done" {
		t.Fatalf("faulted job ended %s: %s", fin.State, fin.Error)
	}
	if fin.Restarts != 1 {
		t.Fatalf("faulted job consumed %d restarts, want exactly 1", fin.Restarts)
	}
	if fin.ItersDone != spec.Iters {
		t.Fatalf("faulted job finished at %d iterations, want %d", fin.ItersDone, spec.Iters)
	}
	if st := s.ServerStats().Stats; st.Retried != 1 {
		t.Fatalf("stats.Retried = %d, want 1", st.Retried)
	}
	compareCk(t, refSpec.Checkpoint, faulted.Checkpoint)
}

// TestRestartBudgetSurvivesRestart: the consumed restart count is
// journaled, so a daemon restart cannot refill a job's retry budget. A
// persistent fault (fresh kill every attempt) drains the remaining
// budget after recovery and the job lands failed with the fault class
// in its error.
func TestRestartBudgetSurvivesRestart(t *testing.T) {
	dataDir := t.TempDir()
	spec := JobSpec{D: 2, N: 100, Iters: 60, Mode: "mpi", P: 1,
		MaxRestarts: 3, ChaosKill: "0@10", ChaosEveryAttempt: true}

	// Incarnation 1: a huge backoff parks the job in its first retry
	// wait with one restart consumed and journaled.
	s1, err := New(Options{Workers: 1, DataDir: dataDir, RetryBackoff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	r := s1.Submit(&spec)
	if !r.OK {
		t.Fatalf("submit: %s", r.Error)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s1.Status(r.ID).Job
		if st.State == "queued" && st.Restarts == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never parked in backoff (state %s, restarts %d)", st.State, st.Restarts)
		}
		time.Sleep(time.Millisecond)
	}
	s1.crash()

	// Incarnation 2: short backoff; the remaining 2 restarts drain and
	// the job must fail — 3 was the budget, restart or not.
	s2 := newDurable(t, Options{Workers: 1, DataDir: dataDir, RetryBackoff: 2 * time.Millisecond})
	fin := waitTerminal(t, s2, r.ID)
	if fin.State != "failed" {
		t.Fatalf("persistently faulted job ended %s, want failed", fin.State)
	}
	if fin.Restarts != 3 {
		t.Fatalf("job consumed %d restarts across restarts, want exactly the budget 3", fin.Restarts)
	}
	if !strings.Contains(strings.ToLower(fin.Error), "kill") {
		t.Fatalf("terminal error %q does not carry the fault class", fin.Error)
	}
}

// TestDeadlineWallClock: a job over its wall-clock deadline fails —
// deadline overruns are not retryable — but still checkpoints what it
// had, and the worker is freed for the next job.
func TestDeadlineWallClock(t *testing.T) {
	dir := t.TempDir()
	s := newDurable(t, Options{Workers: 1})
	ck := filepath.Join(dir, "deadline.ck")
	r := s.Submit(&JobSpec{D: 2, N: 400, Iters: 500000, DeadlineMs: 300, Checkpoint: ck})
	if !r.OK {
		t.Fatalf("submit: %s", r.Error)
	}
	fin := waitTerminal(t, s, r.ID)
	if fin.State != "failed" || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("deadline job ended %s (%q), want failed with a deadline error", fin.State, fin.Error)
	}
	if fin.Restarts != 0 {
		t.Fatalf("deadline overrun was retried %d times; it must not be", fin.Restarts)
	}
	if fin.ItersDone <= 0 || fin.ItersDone >= 500000 {
		t.Fatalf("deadline fired after %d iterations, want mid-run", fin.ItersDone)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("deadline-failed job left no checkpoint: %v", err)
	}
	next := s.Submit(&JobSpec{D: 2, N: 60, Iters: 3})
	if !next.OK {
		t.Fatalf("submit after deadline: %s", next.Error)
	}
	if st := waitTerminal(t, s, next.ID); st.State != "done" {
		t.Fatalf("worker not freed after deadline kill: next job %s", st.State)
	}
}

// TestDeadlineShortChunks: the stop latch must survive chunk
// boundaries. With a durable cadence shorter than core's in-run grace
// budget, a chunk can end before a latched stop is honoured (no
// rebuild falls inside it); the worker must then honour the request at
// the boundary instead of re-arming the latch with a fresh budget in
// the next chunk — which would let the job run to completion past its
// deadline.
func TestDeadlineShortChunks(t *testing.T) {
	s := newDurable(t, Options{Workers: 1, CheckpointEvery: 20})
	r := s.Submit(&JobSpec{D: 2, N: 400, Iters: 500000, DeadlineMs: 300})
	if !r.OK {
		t.Fatalf("submit: %s", r.Error)
	}
	fin := waitTerminal(t, s, r.ID)
	if fin.State != "failed" || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("deadline job ended %s (%q) after %d iterations, want failed with a deadline error",
			fin.State, fin.Error, fin.ItersDone)
	}
	if fin.ItersDone >= 500000 {
		t.Fatalf("job ran to completion (%d iterations); the latch leaked across chunks", fin.ItersDone)
	}
}

// TestProgressFloorStalls: a job that cannot hold the requested
// steps/s floor is stopped and — with retries disabled — fails with
// the stall classification.
func TestProgressFloorStalls(t *testing.T) {
	s := newDurable(t, Options{Workers: 1})
	r := s.Submit(&JobSpec{D: 2, N: 400, Iters: 500000,
		MinStepsPerS: 1e12, StallWindowMs: 50, MaxRestarts: -1})
	if !r.OK {
		t.Fatalf("submit: %s", r.Error)
	}
	fin := waitTerminal(t, s, r.ID)
	if fin.State != "failed" || !strings.Contains(fin.Error, "progress") {
		t.Fatalf("stalled job ended %s (%q), want failed with a progress error", fin.State, fin.Error)
	}
	if st := s.ServerStats().Stats; st.Retried != 0 {
		t.Fatalf("stall with MaxRestarts=-1 was retried %d times", st.Retried)
	}
}

// TestLifecycleValidation rejects nonsensical durability fields and
// chaos specs on non-distributed modes at the door.
func TestLifecycleValidation(t *testing.T) {
	s := newDurable(t, Options{})
	for name, spec := range map[string]*JobSpec{
		"negative deadline":    {N: 100, Iters: 5, DeadlineMs: -1},
		"negative stall":       {N: 100, Iters: 5, StallWindowMs: -1},
		"negative floor":       {N: 100, Iters: 5, MinStepsPerS: -2},
		"negative watchdog":    {N: 100, Iters: 5, WatchdogMs: -1},
		"negative ck cadence":  {N: 100, Iters: 5, CheckpointEvery: -1},
		"chaos bad syntax":     {N: 100, Iters: 5, Mode: "mpi", ChaosKill: "nope"},
		"chaos negative rank":  {N: 100, Iters: 5, Mode: "mpi", ChaosKill: "-1@5"},
		"chaos on serial mode": {N: 100, Iters: 5, ChaosKill: "0@5"},
		"chaos on openmp":      {N: 100, Iters: 5, Mode: "openmp", ChaosKill: "0@5"},
	} {
		if r := s.Submit(spec); r.OK {
			t.Errorf("%s: accepted", name)
		}
	}
	if st := s.ServerStats().Stats; st.Rejected != 9 {
		t.Errorf("rejected counter = %d, want 9", st.Rejected)
	}
}
