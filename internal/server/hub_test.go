package server

import (
	"testing"
	"time"
)

// TestSlowSubscriberDropped pins the slow-consumer contract at the hub
// level (the socket layer adds kernel buffering that would make the
// eviction point nondeterministic): a subscriber whose buffer is full
// when an event arrives is evicted on the spot, the drop is counted,
// and publishing never blocks — healthy subscribers keep receiving.
func TestSlowSubscriberDropped(t *testing.T) {
	h := newHub()
	slow, _ := h.subscribe(1)    // never drained
	healthy, _ := h.subscribe(8) // drained below

	h.publish([]byte("e1")) // fills slow's single slot
	h.publish([]byte("e2")) // finds slow full: evict

	if !slow.evicted.Load() {
		t.Fatal("slow subscriber was not evicted")
	}
	if h.dropped.Load() != 1 {
		t.Fatalf("dropped counter = %d, want 1", h.dropped.Load())
	}
	if h.count() != 1 {
		t.Fatalf("%d subscribers attached after eviction, want 1", h.count())
	}

	// The slow subscriber's channel delivers what it buffered, then
	// closes.
	if got := <-slow.ch; string(got) != "e1" {
		t.Fatalf("slow subscriber buffered %q, want e1", got)
	}
	if _, ok := <-slow.ch; ok {
		t.Fatal("slow subscriber's channel not closed after eviction")
	}

	// The healthy subscriber saw both events; publish never blocked.
	for i, want := range []string{"e1", "e2"} {
		select {
		case got := <-healthy.ch:
			if string(got) != want {
				t.Fatalf("healthy event %d = %q, want %q", i, got, want)
			}
		case <-time.After(time.Second):
			t.Fatalf("healthy subscriber missing event %d", i)
		}
	}

	// Stream end: the healthy channel closes, and a late subscriber
	// gets an immediate EOF instead of hanging.
	h.closeAll()
	if _, ok := <-healthy.ch; ok {
		t.Fatal("healthy channel not closed by closeAll")
	}
	late, ended := h.subscribe(1)
	if !ended {
		t.Fatal("late subscriber not told the stream already ended")
	}
	if _, ok := <-late.ch; ok {
		t.Fatal("late subscriber's channel not immediately closed")
	}
	if h.sent.Load() != 3 {
		t.Fatalf("sent counter = %d, want 3 enqueues (e1 twice, e2 once)", h.sent.Load())
	}
}
